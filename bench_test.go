// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment, as indexed in DESIGN.md),
// plus the ablation benches for the design choices DESIGN.md calls
// out and microbenchmarks of the hot codec paths.
//
// Trace synthesis and analysis are cached per benchmark binary run;
// each experiment benchmark then measures regenerating its report from
// the shared analysis, and reports the headline measured quantity as a
// custom metric so `go test -bench .` doubles as a results table.
package uncharted_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"uncharted/internal/cluster"
	"uncharted/internal/core"
	"uncharted/internal/experiments"
	"uncharted/internal/ids"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// benchScale keeps the full `-bench .` sweep in tens of seconds. Raise
// it (or use cmd/benchtables -scale 1) for full-scale runs.
const benchScale = 0.15

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(benchScale, 77)
		// Pre-build both analyses outside the timed sections.
		if _, err := runner.Analyzer(topology.Y1); err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Analyzer(topology.Y2); err != nil {
			b.Fatal(err)
		}
	})
	return runner
}

func benchExperiment(b *testing.B, id string) experiments.Result {
	r := sharedRunner(b)
	var res experiments.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkTable1Scale(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable4Tokens(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkTable5TypeIDs(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkFig6TopologyDiff(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkTable2ChangeReasons(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig7Compliance(b *testing.B)      { benchExperiment(b, "fig7") }

func BenchmarkTable3FlowAnalysis(b *testing.B) {
	r := sharedRunner(b)
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		b.Fatal(err)
	}
	var sum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := a.FlowAnalysis()
		sum = rep.Summary.ShortProportion()
	}
	b.ReportMetric(100*sum, "short-lived_%")
}

func BenchmarkFig8FlowDurations(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9RejectSequence(b *testing.B) { benchExperiment(b, "fig9") }

func BenchmarkFig10Clustering(b *testing.B) {
	r := sharedRunner(b)
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		b.Fatal(err)
	}
	var sil float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := a.ClusterSessions(5, 1202)
		if err != nil {
			b.Fatal(err)
		}
		sil = rep.Sil
	}
	b.ReportMetric(sil, "silhouette")
}

func BenchmarkFig11ClusterProfiles(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12MarkovChains(b *testing.B)    { benchExperiment(b, "fig12") }

func BenchmarkFig13ChainSizes(b *testing.B) {
	r := sharedRunner(b)
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		b.Fatal(err)
	}
	var point11 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := a.MarkovChains()
		point11 = len(rep.Point11)
	}
	b.ReportMetric(float64(point11), "reset-backups")
}

func BenchmarkFig14AbnormalChain(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15InterrogationChain(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16SwitchoverChain(b *testing.B)    { benchExperiment(b, "fig16") }

func BenchmarkTable6Classification(b *testing.B) {
	res := benchExperiment(b, "table6")
	if len(res.Text) == 0 {
		b.Fatal("empty result")
	}
}

func BenchmarkFig17TypeDistribution(b *testing.B) { benchExperiment(b, "fig17") }

func BenchmarkTable7TypeIDs(b *testing.B) {
	r := sharedRunner(b)
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		b.Fatal(err)
	}
	var top float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares := a.TypeDistribution()
		top = shares[0].Percent
	}
	b.ReportMetric(top, "top-type_%")
}

func BenchmarkTable8Semantics(b *testing.B)    { benchExperiment(b, "table8") }
func BenchmarkFig18UnmetLoad(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig19AGCResponse(b *testing.B)   { benchExperiment(b, "fig19") }
func BenchmarkFig20GeneratorSync(b *testing.B) { benchExperiment(b, "fig20") }
func BenchmarkFig21Signature(b *testing.B)     { benchExperiment(b, "fig21") }

// --- Ablations (DESIGN.md "design choices") ---

// BenchmarkAblationDetectVsPinnedProfile quantifies the cost of
// tolerant auto-detection against parsing with a known dialect.
func BenchmarkAblationDetectVsPinnedProfile(b *testing.B) {
	asdu := iec104.NewMeasurement(iec104.MMeTf, 5, 1201, iec104.Value{
		Kind: iec104.KindFloat, Float: 60.0, HasTime: true,
		Time: iec104.CP56Time2a{Time: time.Unix(1700000000, 0).UTC()},
	}, iec104.CauseSpontaneous)
	frame, err := iec104.NewI(1, 1, asdu).Marshal(iec104.LegacyCOT)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("detect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := iec104.DetectProfile(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pinned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := iec104.ParseAPDU(frame, iec104.LegacyCOT); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRetransmissionDedup compares chain sizes with and
// without TCP-retransmission dedup (§6.3.1: repeated tokens were
// retransmissions, not endpoint behaviour).
func BenchmarkAblationRetransmissionDedup(b *testing.B) {
	cfg := scadasim.DefaultConfig(topology.Y1, 5)
	cfg.Duration = 3 * time.Minute
	cfg.RetransmitProb = 0.05 // exaggerate to make the effect visible
	sim, err := scadasim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	var pcapBuf bytes.Buffer
	if err := tr.WritePCAP(&pcapBuf); err != nil {
		b.Fatal(err)
	}
	raw := pcapBuf.Bytes()
	names := core.NamesFromTopology(sim.Network())
	run := func(b *testing.B, dedup bool) {
		var edges int
		for i := 0; i < b.N; i++ {
			a := core.NewAnalyzer(names)
			a.DedupRetransmissions = dedup
			if err := a.ReadPCAP(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
			edges = 0
			for _, cc := range a.MarkovChains().Chains {
				edges += cc.Chain.Edges()
			}
		}
		b.ReportMetric(float64(edges), "total-edges")
	}
	b.Run("dedup", func(b *testing.B) { run(b, true) })
	b.Run("keep-retransmissions", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationKMeansSeeding compares K-means++ against naive
// first-K seeding on the real session features.
func BenchmarkAblationKMeansSeeding(b *testing.B) {
	r := sharedRunner(b)
	a, err := r.Analyzer(topology.Y1)
	if err != nil {
		b.Fatal(err)
	}
	feats := a.SessionFeatures()
	pts := make([][]float64, len(feats))
	for i, f := range feats {
		pts[i] = f.Vector()
	}
	b.Run("plusplus", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			res, err := cluster.KMeans(pts, 5, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			sse = res.SSE
		}
		b.ReportMetric(sse, "SSE")
	})
	b.Run("naive", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			res, err := cluster.KMeansWithSeeds(pts, cluster.SeedNaive(pts, 5))
			if err != nil {
				b.Fatal(err)
			}
			sse = res.SSE
		}
		b.ReportMetric(sse, "SSE")
	})
}

// BenchmarkIDSWhitelist measures training the §7 whitelist and
// scanning an attacked capture against it, reporting how many critical
// alerts the Industroyer-style recon raises.
func BenchmarkIDSWhitelist(b *testing.B) {
	build := func(seed int64, attack *scadasim.AttackConfig) *core.Analyzer {
		cfg := scadasim.DefaultConfig(topology.Y1, seed)
		cfg.Duration = 3 * time.Minute
		cfg.CyclePeriod = 100 * time.Minute
		sim, err := scadasim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		if attack != nil {
			attack.At = cfg.Start.Add(90 * time.Second)
			if _, err := sim.InjectAttack(tr, *attack); err != nil {
				b.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tr.WritePCAP(&buf); err != nil {
			b.Fatal(err)
		}
		a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
		if err := a.ReadPCAP(&buf); err != nil {
			b.Fatal(err)
		}
		return a
	}
	clean := build(21, nil)
	attacked := build(21, &scadasim.AttackConfig{Kind: scadasim.AttackRecon})
	b.Run("train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ids.Train(clean); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		base, err := ids.Train(clean)
		if err != nil {
			b.Fatal(err)
		}
		var crit int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			alerts := base.Scan(attacked)
			crit = ids.CountBySeverity(alerts)[3]
		}
		b.ReportMetric(float64(crit), "critical-alerts")
	})
}

// --- Microbenchmarks of the hot paths ---

func BenchmarkParseAPDUStandard(b *testing.B) {
	asdu := iec104.NewMeasurement(iec104.MMeTf, 5, 1201, iec104.Value{
		Kind: iec104.KindFloat, Float: 60.0, HasTime: true,
		Time: iec104.CP56Time2a{Time: time.Unix(1700000000, 0).UTC()},
	}, iec104.CauseSpontaneous)
	frame, err := iec104.NewI(1, 1, asdu).Marshal(iec104.Standard)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := iec104.ParseAPDU(frame, iec104.Standard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalAPDU(b *testing.B) {
	asdu := iec104.NewMeasurement(iec104.MMeNc, 5, 1201, iec104.Value{
		Kind: iec104.KindFloat, Float: 60.0,
	}, iec104.CausePeriodic)
	apdu := iec104.NewI(1, 1, asdu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apdu.Marshal(iec104.Standard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := scadasim.DefaultConfig(topology.Y1, 3)
	cfg.Duration = 2 * time.Minute
	var packets int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := scadasim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		packets = len(tr.Records)
	}
	b.ReportMetric(float64(packets), "packets")
}

func BenchmarkFullPipeline(b *testing.B) {
	cfg := scadasim.DefaultConfig(topology.Y1, 3)
	cfg.Duration = 2 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	var pcapBuf bytes.Buffer
	if err := tr.WritePCAP(&pcapBuf); err != nil {
		b.Fatal(err)
	}
	raw := pcapBuf.Bytes()
	names := core.NamesFromTopology(sim.Network())
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAnalyzer(names)
		if err := a.ReadPCAP(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovChainBuild(b *testing.B) {
	// A realistic primary-connection token stream.
	var seq []iec104.Token
	for i := 0; i < 3000; i++ {
		seq = append(seq, iec104.IToken(iec104.MMeTf))
		if i%8 == 7 {
			seq = append(seq, iec104.TokenS)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := markov.NewChain()
		ch.Add(seq)
		if ch.Nodes() != 2 {
			b.Fatal("unexpected chain")
		}
	}
}
