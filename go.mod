module uncharted

go 1.22
