package uncharted_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"uncharted"
	"uncharted/internal/topology"
)

func TestFacadeGenerateAndAnalyze(t *testing.T) {
	var buf bytes.Buffer
	if err := uncharted.Generate(&buf, uncharted.Y1, 0.05, 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty capture")
	}
	a, err := uncharted.Analyze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.IECPackets == 0 {
		t.Fatal("no IEC packets analyzed")
	}
	sum := a.FlowAnalysis().Summary
	if sum.Total() == 0 {
		t.Fatal("no flows")
	}
	if len(a.Compliance().NonCompliant) == 0 {
		t.Fatal("legacy stations not detected through the facade")
	}
}

func TestFacadeAnalyzeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "y2.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncharted.Generate(f, uncharted.Y2, 0.05, 5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := uncharted.AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Packets == 0 {
		t.Fatal("no packets")
	}
	if _, err := uncharted.AnalyzeFile(filepath.Join(dir, "missing.pcap")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	r := uncharted.Experiments(0.05, 5)
	ids := r.IDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	res, err := r.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table2" || res.Text == "" {
		t.Fatalf("bad result %+v", res)
	}
	if _, err := r.Trace(topology.Y1); err != nil {
		t.Fatal(err)
	}
}
