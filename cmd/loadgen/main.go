// Command loadgen is the control-room load generator: thousands of
// concurrent clients replaying a mixed read workload — profile reads,
// historian queries, drift checks, statusz polls — against a running
// unchartedd, reporting latency percentiles, error rates and the
// snapshot-cache hit ratio (observed from the X-Cache header).
//
// The report is written as JSON in the committed BENCH_service.json
// format, so a run can be delta-compared by cmd/benchtables. Exit
// status enforces thresholds for CI smoke tests: -max-5xx bounds
// server errors, -require-hit-ratio sets a cache hit-ratio floor.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:9180 -tenants east,west
//	loadgen -base http://127.0.0.1:9180 -tenants east,west \
//	  -clients 1000 -duration 10s -mix profile:8,query:2,statusz:1 \
//	  -out BENCH_service.json -max-5xx 0 -require-hit-ratio 0.9
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"uncharted/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	base := flag.String("base", "http://127.0.0.1:9180", "service base URL")
	tenantsFlag := flag.String("tenants", "", "comma-separated tenant names to load (required)")
	clients := flag.Int("clients", 1000, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	mixFlag := flag.String("mix", "", "endpoint mix as name:weight,... (default profile:8,query:2,drift:1,statusz:1)")
	out := flag.String("out", "", "write the JSON report here (default stdout only)")
	seed := flag.Int64("seed", 1, "per-client workload seed")
	wait := flag.Duration("wait", 30*time.Second, "max time to wait for /readyz before loading (0 = don't wait)")
	max5xx := flag.Int64("max-5xx", -1, "fail when 5xx responses exceed this (-1 = don't enforce)")
	requireHitRatio := flag.Float64("require-hit-ratio", -1, "fail when the cache hit ratio is below this (-1 = don't enforce)")
	flag.Parse()

	tenants := splitNonEmpty(*tenantsFlag)
	if len(tenants) == 0 {
		log.Printf("loadgen: -tenants required")
		flag.Usage()
		return 2
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Printf("loadgen: %v", err)
		return 2
	}

	ctx := context.Background()
	if *wait > 0 {
		if err := service.WaitReady(ctx, *base, *wait); err != nil {
			log.Printf("%v", err)
			return 1
		}
	}

	rep, err := service.RunLoad(ctx, service.LoadOptions{
		BaseURL:  *base,
		Tenants:  tenants,
		Clients:  *clients,
		Duration: *duration,
		Mix:      mix,
		Seed:     *seed,
	})
	if err != nil {
		log.Printf("loadgen: %v", err)
		return 1
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if *out != "" {
		if err := service.WriteLoadReport(*out, rep); err != nil {
			log.Printf("loadgen: write %s: %v", *out, err)
			return 1
		}
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d clients x %.1fs: %d requests (%.0f/s), p50 %.0fus p99 %.0fus, 5xx %d, hit ratio %.3f\n",
		rep.Clients, rep.DurationSec, rep.Requests, rep.RequestsPerSec,
		rep.P50Micros, rep.P99Micros, rep.Errors5xx, rep.CacheHitRatio)

	code := 0
	if *max5xx >= 0 && rep.Errors5xx > *max5xx {
		log.Printf("loadgen: FAIL: %d 5xx responses (max %d)", rep.Errors5xx, *max5xx)
		code = 1
	}
	if *requireHitRatio >= 0 && rep.CacheHitRatio < *requireHitRatio {
		log.Printf("loadgen: FAIL: cache hit ratio %.3f below required %.3f", rep.CacheHitRatio, *requireHitRatio)
		code = 1
	}
	if rep.Requests == 0 {
		log.Printf("loadgen: FAIL: no requests completed")
		code = 1
	}
	return code
}

// splitNonEmpty splits a comma list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseMix parses "profile:8,query:2" into a weight map; empty input
// returns nil so RunLoad applies its default mix.
func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]int)
	for _, part := range splitNonEmpty(s) {
		name, weight, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want name:weight)", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		mix[name] = w
	}
	return mix, nil
}
