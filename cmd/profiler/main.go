// Command profiler runs the paper's full measurement pipeline over a
// capture and prints every §6 report: flow taxonomy, compliance and
// dialect detection, session clusters, Markov chains with the
// outstation classification, the ASDU type distribution, the
// physical-measurement ranking, and the pipeline's own observability
// stats (per-stage wall time and metric counters).
//
// Usage:
//
//	profiler capture.pcap
//	profiler -report flows,markov capture.pcap
//	profiler -report stats -journal events.jsonl capture.pcap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/obs"
	"uncharted/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("profiler: ")

	reports := flag.String("report", "flows,compliance,clusters,markov,types,physical,timing,stats",
		"comma-separated reports to print")
	names := flag.Bool("names", true, "label addresses with the simulated topology's names (C1, O30, ...)")
	journalPath := flag.String("journal", "", "append structured pipeline events to this JSONL file")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Print("usage: profiler [-report list] [-journal events.jsonl] capture.pcap")
		return 2
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Print(err)
		return 1
	}
	defer f.Close()

	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	var analyzer *core.Analyzer
	if *names {
		analyzer = core.NewAnalyzer(core.NamesFromTopology(topology.Build()))
	} else {
		analyzer = core.NewAnalyzer(nil)
	}
	reg := obs.NewRegistry()
	analyzer.Instrument(reg, journal)

	exit := 0
	if err := analyzer.ReadPCAP(f); err != nil {
		// A truncated or partially corrupt capture still carries data:
		// report what parsed, but exit non-zero so scripts notice.
		fmt.Fprintf(os.Stderr, "profiler: warning: capture read stopped early: %v (reporting partial results)\n", err)
		exit = 1
	}

	first, last := analyzer.CaptureWindow()
	fmt.Printf("Capture: %d packets (%d IEC 104), window %s .. %s, parse errors %d\n\n",
		analyzer.Packets, analyzer.IECPackets,
		first.Format("2006-01-02 15:04:05"), last.Format("15:04:05"), analyzer.ParseErrors)
	if analyzer.SeqAnomalies > 0 {
		fmt.Printf("IEC 104 sequence anomalies: %d\n\n", analyzer.SeqAnomalies)
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*reports, ",") {
		want[strings.TrimSpace(r)] = true
	}

	if want["flows"] {
		printFlows(analyzer)
	}
	if want["compliance"] {
		printCompliance(analyzer)
	}
	if want["clusters"] {
		printClusters(analyzer)
	}
	if want["markov"] {
		printMarkov(analyzer)
	}
	if want["types"] {
		fmt.Println("== ASDU type distribution (Table 7) ==")
		fmt.Println(core.FormatTypeTable(analyzer.TypeDistribution()))
	}
	if want["physical"] {
		printPhysical(analyzer)
	}
	if want["timing"] {
		printTiming(analyzer)
	}
	if want["stats"] {
		printStats(reg, journal)
	}
	if err := journal.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "profiler: warning: journal write failed: %v\n", err)
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}

// printStats renders the observability registry: per-stage wall-time
// breakdown, then every counter (the malformed-frame causes and
// strict-invalid dialects appear here as labeled series), then
// histogram summaries.
func printStats(reg *obs.Registry, journal *obs.Journal) {
	snap := reg.Snapshot()
	fmt.Println("== Pipeline stats (observability registry) ==")

	if len(snap.Stages) > 0 {
		fmt.Println("stage timings:")
		fmt.Printf("  %-16s %10s %12s %12s %12s %12s\n", "stage", "calls", "total", "mean", "min", "max")
		for _, st := range snap.Stages {
			fmt.Printf("  %-16s %10d %12s %12s %12s %12s\n",
				st.Name, st.Count, roundDur(st.Total), roundDur(st.Mean), roundDur(st.Min), roundDur(st.Max))
		}
	}

	fmt.Println("counters:")
	for _, c := range snap.Counters {
		fmt.Printf("  %-46s %10d\n", c.Name+labelSuffix(c.Labels), c.Value)
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, g := range snap.Gauges {
			fmt.Printf("  %-46s %10g\n", g.Name+labelSuffix(g.Labels), g.Value)
		}
	}
	var histograms []obs.HistogramSnapshot
	for _, h := range snap.Histograms {
		if h.Name != obs.StageDurationMetric { // stages are summarised above
			histograms = append(histograms, h)
		}
	}
	if len(histograms) > 0 {
		fmt.Println("histograms:")
		for _, h := range histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-46s n=%-8d sum=%-12.4g mean=%.4g\n",
				h.Name+labelSuffix(h.Labels), h.Count, h.Sum, mean)
		}
	}
	if counts := journal.Counts(); len(counts) > 0 {
		types := make([]string, 0, len(counts))
		for t := range counts {
			types = append(types, string(t))
		}
		sort.Strings(types)
		fmt.Println("journal events:")
		for _, t := range types {
			fmt.Printf("  %-46s %10d\n", t, counts[obs.EventType(t)])
		}
	}
	fmt.Println()
}

// labelSuffix renders metric labels as {k=v,...} for the stats report.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// roundDur trims a duration to a readable precision.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}

func printTiming(a *core.Analyzer) {
	fmt.Println("== recovered reporting periods (timing characteristics) ==")
	for _, st := range a.StationTimings(20) {
		periods := "spontaneous-only"
		if len(st.Periods) > 0 {
			parts := make([]string, len(st.Periods))
			for i, p := range st.Periods {
				parts[i] = fmt.Sprintf("%.1fs", p)
			}
			periods = strings.Join(parts, ", ")
		}
		fmt.Printf("%-6s cycles=[%s] periodic=%d spontaneous=%d\n",
			st.Station, periods, st.PeriodicPoints, st.SpontaneousPoints)
	}
}

func printFlows(a *core.Analyzer) {
	rep := a.FlowAnalysis()
	s := rep.Summary
	fmt.Println("== TCP flow analysis (Table 3) ==")
	fmt.Printf("short-lived: %d (%.1f%%), of which <1s: %d (%.1f%%)\n",
		s.ShortLived, 100*s.ShortProportion(), s.ShortLivedSubSec, 100*s.SubSecProportion())
	fmt.Printf("long-lived:  %d (%.1f%%)\n\n", s.LongLived, 100*s.LongProportion())
}

func printCompliance(a *core.Analyzer) {
	rep := a.Compliance()
	fmt.Println("== IEC 104 compliance (§6.1) ==")
	if len(rep.NonCompliant) == 0 {
		fmt.Println("all endpoints standard-compliant")
	}
	for _, sc := range rep.Stations {
		if !sc.NonCompliant() {
			continue
		}
		fmt.Printf("%-16s dialect=%-13s frames=%d strict-invalid=%d\n",
			sc.Name, sc.Profile, sc.Frames, sc.StrictInvalid)
	}
	fmt.Println()
}

func printClusters(a *core.Analyzer) {
	fmt.Println("== Session clustering (Fig. 10/11) ==")
	rep, err := a.ClusterSessions(5, 1202)
	if err != nil {
		fmt.Printf("(skipped: %v)\n\n", err)
		return
	}
	fmt.Printf("sessions=%d K=%d SSE=%.1f silhouette=%.3f sizes=%v\n",
		len(rep.Features), rep.K, rep.SSE, rep.Sil, rep.Sizes)
	fmt.Printf("outlier cluster: %s\n\n", strings.Join(rep.Outliers, ", "))
}

func printMarkov(a *core.Analyzer) {
	rep := a.MarkovChains()
	fmt.Println("== Markov chains (Fig. 13) ==")
	fmt.Printf("connections=%d point(1,1)=%d square=%d ellipse=%d\n",
		len(rep.Chains), len(rep.Point11), len(rep.Square), len(rep.Ellipse))
	if len(rep.Point11) > 0 {
		fmt.Printf("reset backups: %s\n", strings.Join(rep.Point11, ", "))
	}
	if len(rep.Ellipse) > 0 {
		fmt.Printf("interrogating: %s\n", strings.Join(rep.Ellipse, ", "))
	}
	fmt.Println("\n== Outstation classification (Table 6 / Fig. 17) ==")
	for _, c := range rep.Classes {
		fmt.Printf("%-16s Type%d\n", c.Outstation, c.Type)
	}
	fmt.Printf("distribution (types 1-8): %v\n\n", rep.Distribution[1:])
}

func printPhysical(a *core.Analyzer) {
	fmt.Println("== Physical measurements (§6.4) ==")
	st := a.Physical()
	fmt.Printf("series extracted: %d\n", len(st.All()))
	fmt.Println("top normalized-variance series:")
	for i, s := range st.Ranked(10) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-14s %-10s nvar=%.4g samples=%d\n",
			s.Key, s.Type.Acronym(), s.NormalizedVariance(), len(s.Samples))
	}
}
