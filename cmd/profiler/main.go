// Command profiler runs the paper's full measurement pipeline over a
// capture and prints every §6 report: flow taxonomy, compliance and
// dialect detection, session clusters, Markov chains with the
// outstation classification, the ASDU type distribution, the
// physical-measurement ranking, and the pipeline's own observability
// stats (per-stage wall time and metric counters).
//
// With -follow the capture is tailed like `tail -f` through the
// streaming engine: -workers shards analyze concurrently, a rolling
// profile is published at -metrics under /profile, and Ctrl-C drains
// the pipeline and prints the final reports. In streaming mode -trace
// arms the flight recorder: sampled stage spans exported as a Chrome
// trace_event JSON file on drain (or SIGUSR1), with /statusz and
// /readyz served next to /metrics.
//
// Usage:
//
//	profiler capture.pcap
//	profiler -report flows,markov capture.pcap
//	profiler -report stats -journal events.jsonl capture.pcap
//	profiler -follow -workers 4 -metrics :9104 growing.pcap
//	profiler -workers 4 -trace out.json capture.pcap
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/physical"
	"uncharted/internal/pipeline"
	"uncharted/internal/protocol"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// reportHelp documents every -report value.
const reportHelp = `comma-separated reports to print; valid values:
  flows       TCP flow taxonomy and durations (Table 3 / Fig. 8)
  compliance  per-endpoint dialect detection (§6.1 / Fig. 7)
  clusters    session K-means clustering (§6.3 / Fig. 10-11)
  markov      per-connection Markov chains and outstation classes (Fig. 13/17, Table 6)
  types       ASDU type distribution (Table 7)
  physical    measurement series ranked by normalized variance (§6.4)
  timing      recovered per-station reporting periods (offline mode only)
  stats       pipeline observability: stage timings, counters, journal events`

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("profiler: ")

	reports := flag.String("report", "flows,compliance,clusters,markov,types,physical,timing,stats", reportHelp)
	names := flag.Bool("names", true, "label addresses with the simulated topology's names (C1, O30, ...)")
	proto := flag.String("proto", "", "extra dialects to decode, comma-separated (c37118, modbus), or \"auto\" to content-detect every registered dialect")
	journalPath := flag.String("journal", "", "append structured pipeline events to this JSONL file")
	follow := flag.Bool("follow", false, "tail a growing capture with the streaming engine until interrupted")
	workers := flag.Int("workers", 1, "analysis shards for the streaming engine (with -follow, or >1 to shard a finished capture)")
	readers := flag.Int("readers", 0, "parallel segment readers for a finished capture: the file is split at record boundaries and ingested concurrently (0 = match -workers; ignored with -follow)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /profile on this address (e.g. :9104)")
	snapshotEvery := flag.Duration("snapshot", 2*time.Second, "rolling-profile period in streaming mode")
	idleTimeout := flag.Duration("idle-timeout", 0, "evict flows idle this long in streaming mode (0 = keep all)")
	historianDir := flag.String("historian", "", "record every extracted measurement into the durable historian at this directory (adds /query next to /metrics)")
	pointCap := flag.Int("point-cap", 0, "cap in-memory samples per series; pair with -historian so long -follow runs hold steady memory (0 = unbounded)")
	saveProfile := flag.String("save-profile", "", "save the merged analysis state as a versioned profile file for later drift comparison")
	profileLabel := flag.String("profile-label", "", "label stored with -save-profile and -push (default: capture path)")
	pushURL := flag.String("push", "", "probe mode: POST the final merged partial (drift profile codec) to this control-room URL, e.g. http://host:9180/v1/fleet/partial")
	baselinePath := flag.String("baseline", "", "compare against this stored profile and print the drift report; with -follow the rolling profile is diffed live and served at /drift")
	saveBaseline := flag.String("save-baseline", "", "train an IDS whitelist on the capture and persist it (offline single-analyzer mode only)")
	loadBaseline := flag.String("load-baseline", "", "load a persisted IDS whitelist: offline mode scans the capture, streaming mode arms per-shard monitors")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	tracePath := flag.String("trace", "", "streaming mode: record sampled stage spans and write a Chrome trace_event JSON file here on drain (SIGUSR1 dumps mid-run)")
	traceSample := flag.Int("trace-sample", 64, "with -trace, record 1 in N span starts per lane")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Print("usage: profiler [-report list] [-journal events.jsonl] [-follow] [-workers N] [-metrics addr] capture.pcap")
		return 2
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopProfiles()

	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*reports, ",") {
		want[strings.TrimSpace(r)] = true
	}

	label := *profileLabel
	if label == "" {
		label = flag.Arg(0)
	}

	protos, err := stream.ParseProtocols(*proto)
	if err != nil {
		log.Print(err)
		return 2
	}

	// -readers defaults to the shard count: parallel ingest engages
	// exactly when the analysis side fans out too.
	if *readers <= 0 {
		*readers = *workers
	}
	if *follow || *workers > 1 || *readers > 1 {
		if *saveBaseline != "" {
			log.Print("-save-baseline needs the offline single-analyzer mode (raw samples are not retained across shards)")
			return 2
		}
		return runStreaming(streamOpts{
			tracePath:     *tracePath,
			traceSample:   *traceSample,
			protocols:     *proto,
			path:          flag.Arg(0),
			follow:        *follow,
			workers:       *workers,
			readers:       *readers,
			metricsAddr:   *metricsAddr,
			snapshotEvery: *snapshotEvery,
			idleTimeout:   *idleTimeout,
			historianDir:  *historianDir,
			pointCap:      *pointCap,
			names:         *names,
			journal:       journal,
			want:          want,
			saveProfile:   *saveProfile,
			profileLabel:  label,
			pushURL:       *pushURL,
			baselinePath:  *baselinePath,
			loadBaseline:  *loadBaseline,
		})
	}

	if *tracePath != "" {
		log.Print("note: -trace records the streaming pipeline; ignored in offline single-analyzer mode (use -follow or -workers > 1)")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Print(err)
		return 1
	}
	defer f.Close()

	var analyzer *core.Analyzer
	if *names {
		analyzer = core.NewAnalyzer(core.NamesFromTopology(topology.Build()))
	} else {
		analyzer = core.NewAnalyzer(nil)
	}
	if err := analyzer.EnableProtocolNames(protos...); err != nil {
		log.Print(err)
		return 2
	}
	reg := obs.NewRegistry()
	analyzer.Instrument(reg, journal)
	if *pointCap > 0 {
		analyzer.Physical().SetMaxSamplesPerSeries(*pointCap)
	}

	exit := 0
	extra := map[string]http.Handler{}
	var recorder *historian.Recorder
	if *historianDir != "" {
		hist, err := historian.Open(*historianDir, historian.Options{Registry: reg})
		if err != nil {
			log.Print(err)
			return 1
		}
		defer func() {
			if err := hist.Close(); err != nil {
				log.Printf("warning: historian close failed: %v", err)
			}
		}()
		recorder = historian.NewRecorder(hist)
		analyzer.SetFrameObserver(recorder)
		extra["/query"] = historian.QueryHandler(hist)
		log.Printf("recording measurements into historian at %s", *historianDir)
	}
	if *metricsAddr != "" {
		addr, shutdown, err := obs.ServeWith(*metricsAddr, reg, journal, extra)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer shutdown()
		log.Printf("serving metrics on http://%s/", addr)
	}
	if err := analyzer.ReadPCAP(f); err != nil {
		// A truncated or partially corrupt capture still carries data:
		// report what parsed, but exit non-zero so scripts notice.
		fmt.Fprintf(os.Stderr, "profiler: warning: capture read stopped early: %v (reporting partial results)\n", err)
		exit = 1
	}
	if recorder != nil {
		if err := recorder.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: warning: historian write failed: %v\n", err)
			exit = 1
		}
	}

	first, last := analyzer.CaptureWindow()
	fmt.Printf("Capture: %d packets (%d IEC 104), window %s .. %s, parse errors %d\n\n",
		analyzer.Packets, analyzer.IECPackets,
		first.Format("2006-01-02 15:04:05"), last.Format("15:04:05"), analyzer.ParseErrors)
	if analyzer.SeqAnomalies > 0 {
		fmt.Printf("IEC 104 sequence anomalies: %d\n\n", analyzer.SeqAnomalies)
	}

	if want["flows"] {
		printFlows(analyzer)
	}
	if want["compliance"] {
		printCompliance(analyzer)
		printDialects(analyzer.Dialects(), analyzer.StreamCompliance())
	}
	if want["clusters"] {
		printClusters(analyzer)
	}
	if want["markov"] {
		printMarkov(analyzer)
	}
	if want["types"] {
		fmt.Println("== ASDU type distribution (Table 7) ==")
		fmt.Println(core.FormatTypeTable(analyzer.TypeDistribution()))
	}
	if want["physical"] {
		printPhysical(analyzer)
	}
	if want["timing"] {
		printTiming(analyzer)
	}
	if want["stats"] {
		printStats(reg, journal)
	}
	if code := driftActions(analyzer.Partial(), flag.Arg(0), label, *saveProfile, *pushURL, *baselinePath); code != 0 {
		exit = code
	}
	if *saveBaseline != "" {
		base, err := ids.Train(analyzer)
		if err != nil {
			log.Printf("training baseline: %v", err)
			return 1
		}
		if err := drift.SaveBaseline(*saveBaseline, base); err != nil {
			log.Print(err)
			return 1
		}
		eps, conns, points := base.Size()
		log.Printf("saved IDS baseline to %s: %d endpoints, %d connections, %d points",
			*saveBaseline, eps, conns, points)
	}
	if *loadBaseline != "" {
		base, err := drift.LoadBaseline(*loadBaseline)
		if err != nil {
			log.Print(err)
			return 1
		}
		alerts := base.Scan(analyzer)
		fmt.Printf("== IDS scan against %s ==\n", *loadBaseline)
		if len(alerts) == 0 {
			fmt.Println("no deviations from baseline")
		}
		for _, al := range alerts {
			fmt.Println(al)
		}
		fmt.Println()
	}
	if err := journal.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "profiler: warning: journal write failed: %v\n", err)
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}

// driftActions runs the profile-persistence, probe-push and
// baseline-comparison flags over the merged analysis state; both the
// offline and the streaming paths end here.
func driftActions(p core.Partial, source, label, savePath, pushURL, baselinePath string) int {
	if savePath != "" {
		prof := drift.NewProfile(label, source, p, time.Now())
		if err := drift.SaveProfile(savePath, prof); err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("saved profile %q (%d packets, %d connections) to %s",
			label, p.Packets, len(p.Chains), savePath)
	}
	if pushURL != "" {
		if err := pushPartial(pushURL, label, source, p); err != nil {
			log.Print(err)
			return 1
		}
	}
	if baselinePath != "" {
		base, err := drift.LoadProfile(baselinePath)
		if err != nil {
			log.Print(err)
			return 1
		}
		cur := drift.NewProfile(label, source, p, time.Now())
		rep := drift.Compare(base, cur, drift.DefaultThresholds())
		rep.WriteText(os.Stdout)
		fmt.Println()
	}
	return 0
}

// pushPartial is the probe half of the control-room fleet view: the
// merged analysis state, encoded with the drift profile codec, POSTed
// to an unchartedd /v1/{tenant}/partial endpoint where MergePartials
// folds it into the fleet-wide profile.
func pushPartial(url, label, source string, p core.Partial) error {
	prof := drift.NewProfile(label, source, p, time.Now())
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(prof.Encode()))
	if err != nil {
		return fmt.Errorf("push %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	log.Printf("pushed partial %q (%d packets) to %s: %s",
		label, p.Packets, url, strings.TrimSpace(string(body)))
	return nil
}

// printStats renders the observability registry: per-stage wall-time
// breakdown, then every counter (the malformed-frame causes and
// strict-invalid dialects appear here as labeled series), then
// histogram summaries.
func printStats(reg *obs.Registry, journal *obs.Journal) {
	snap := reg.Snapshot()
	fmt.Println("== Pipeline stats (observability registry) ==")

	if len(snap.Stages) > 0 {
		fmt.Println("stage timings:")
		fmt.Printf("  %-16s %10s %12s %12s %12s %12s\n", "stage", "calls", "total", "mean", "min", "max")
		for _, st := range snap.Stages {
			fmt.Printf("  %-16s %10d %12s %12s %12s %12s\n",
				st.Name, st.Count, roundDur(st.Total), roundDur(st.Mean), roundDur(st.Min), roundDur(st.Max))
		}
	}

	fmt.Println("counters:")
	for _, c := range snap.Counters {
		fmt.Printf("  %-46s %10d\n", c.Name+labelSuffix(c.Labels), c.Value)
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, g := range snap.Gauges {
			fmt.Printf("  %-46s %10g\n", g.Name+labelSuffix(g.Labels), g.Value)
		}
	}
	var histograms []obs.HistogramSnapshot
	for _, h := range snap.Histograms {
		if h.Name != obs.StageDurationMetric { // stages are summarised above
			histograms = append(histograms, h)
		}
	}
	if len(histograms) > 0 {
		fmt.Println("histograms:")
		for _, h := range histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-46s n=%-8d sum=%-12.4g mean=%.4g\n",
				h.Name+labelSuffix(h.Labels), h.Count, h.Sum, mean)
		}
	}
	if counts := journal.Counts(); len(counts) > 0 {
		types := make([]string, 0, len(counts))
		for t := range counts {
			types = append(types, string(t))
		}
		sort.Strings(types)
		fmt.Println("journal events:")
		for _, t := range types {
			fmt.Printf("  %-46s %10d\n", t, counts[obs.EventType(t)])
		}
	}
	fmt.Println()
}

// labelSuffix renders metric labels as {k=v,...} for the stats report.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// roundDur trims a duration to a readable precision.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}

func printTiming(a *core.Analyzer) {
	fmt.Println("== recovered reporting periods (timing characteristics) ==")
	for _, st := range a.StationTimings(20) {
		periods := "spontaneous-only"
		if len(st.Periods) > 0 {
			parts := make([]string, len(st.Periods))
			for i, p := range st.Periods {
				parts[i] = fmt.Sprintf("%.1fs", p)
			}
			periods = strings.Join(parts, ", ")
		}
		fmt.Printf("%-6s cycles=[%s] periodic=%d spontaneous=%d\n",
			st.Station, periods, st.PeriodicPoints, st.SpontaneousPoints)
	}
}

func printFlows(a *core.Analyzer) { printFlowReport(a.FlowAnalysis()) }

func printFlowReport(rep core.FlowReport) {
	s := rep.Summary
	fmt.Println("== TCP flow analysis (Table 3) ==")
	fmt.Printf("short-lived: %d (%.1f%%), of which <1s: %d (%.1f%%)\n",
		s.ShortLived, 100*s.ShortProportion(), s.ShortLivedSubSec, 100*s.SubSecProportion())
	fmt.Printf("long-lived:  %d (%.1f%%)\n\n", s.LongLived, 100*s.LongProportion())
}

func printCompliance(a *core.Analyzer) { printComplianceReport(a.Compliance()) }

func printComplianceReport(rep core.ComplianceReport) {
	fmt.Println("== IEC 104 compliance (§6.1) ==")
	if len(rep.NonCompliant) == 0 {
		fmt.Println("all endpoints standard-compliant")
	}
	for _, sc := range rep.Stations {
		if !sc.NonCompliant() {
			continue
		}
		fmt.Printf("%-16s dialect=%-13s frames=%d strict-invalid=%d\n",
			sc.Name, sc.Profile, sc.Frames, sc.StrictInvalid)
	}
	fmt.Println()
}

// printDialects renders the multi-protocol decode tally and the
// per-stream rate compliance; silent on single-protocol runs.
func printDialects(ds []core.DialectStat, streams []protocol.StreamCompliance) {
	if len(ds) == 0 {
		return
	}
	fmt.Println("== Multi-protocol dialects ==")
	for _, d := range ds {
		fmt.Printf("%-8s frames=%d parse-errors=%d bytes=%d tokens=%d\n",
			d.Proto, d.Frames, d.ParseErrors, d.Bytes, len(d.TokenCounts))
	}
	for _, sc := range streams {
		verdict := "ok"
		if !sc.Compliant {
			verdict = "VIOLATION"
		}
		fmt.Printf("%-8s stream %s/%s %s: %s\n", sc.Proto, sc.Conn, sc.Unit, verdict, sc.Detail)
	}
	fmt.Println()
}

func printClusters(a *core.Analyzer) {
	rep, err := a.ClusterSessions(5, 1202)
	printClusterReport(rep, err)
}

func printClusterReport(rep *core.ClusterReport, err error) {
	fmt.Println("== Session clustering (Fig. 10/11) ==")
	if err != nil {
		fmt.Printf("(skipped: %v)\n\n", err)
		return
	}
	fmt.Printf("sessions=%d K=%d SSE=%.1f silhouette=%.3f sizes=%v\n",
		len(rep.Features), rep.K, rep.SSE, rep.Sil, rep.Sizes)
	fmt.Printf("outlier cluster: %s\n\n", strings.Join(rep.Outliers, ", "))
}

func printMarkov(a *core.Analyzer) { printMarkovReport(a.MarkovChains()) }

func printMarkovReport(rep core.MarkovReport) {
	fmt.Println("== Markov chains (Fig. 13) ==")
	fmt.Printf("connections=%d point(1,1)=%d square=%d ellipse=%d\n",
		len(rep.Chains), len(rep.Point11), len(rep.Square), len(rep.Ellipse))
	if len(rep.Point11) > 0 {
		fmt.Printf("reset backups: %s\n", strings.Join(rep.Point11, ", "))
	}
	if len(rep.Ellipse) > 0 {
		fmt.Printf("interrogating: %s\n", strings.Join(rep.Ellipse, ", "))
	}
	fmt.Println("\n== Outstation classification (Table 6 / Fig. 17) ==")
	for _, c := range rep.Classes {
		fmt.Printf("%-16s Type%d\n", c.Outstation, c.Type)
	}
	fmt.Printf("distribution (types 1-8): %v\n\n", rep.Distribution[1:])
}

func printPhysical(a *core.Analyzer) {
	fmt.Println("== Physical measurements (§6.4) ==")
	st := a.Physical()
	fmt.Printf("series extracted: %d\n", len(st.All()))
	fmt.Println("top normalized-variance series:")
	for i, s := range st.Ranked(10) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-14s %-10s nvar=%.4g samples=%d\n",
			s.Key, s.Type.Acronym(), s.NormalizedVariance(), len(s.Samples))
	}
}

// streamOpts carries the flag values into the streaming path.
type streamOpts struct {
	path          string
	protocols     string
	follow        bool
	workers       int
	metricsAddr   string
	snapshotEvery time.Duration
	idleTimeout   time.Duration
	historianDir  string
	pointCap      int
	names         bool
	readers       int
	journal       *obs.Journal
	want          map[string]bool
	saveProfile   string
	pushURL       string
	profileLabel  string
	baselinePath  string
	loadBaseline  string
	tracePath     string
	traceSample   int
}

// runStreaming analyzes the capture through the declared pipeline
// runtime: the ProfilerGraph preset constructs the src→analyzer graph
// the streaming engine used to be hand-wired into, with -follow the
// file is tailed until SIGINT/SIGTERM, otherwise it is read to EOF;
// either way the final merged state renders the same reports as the
// offline path.
func runStreaming(o streamOpts) int {
	reg := obs.NewRegistry()

	var rec *trace.Recorder
	if o.tracePath != "" {
		rec = trace.New(trace.Config{SampleEvery: o.traceSample, Registry: reg})
		stopDump := rec.DumpOnSIGUSR1(o.tracePath, log.Printf)
		defer stopDump()
		log.Printf("flight recorder armed: sampling 1 in %d spans, SIGUSR1 dumps %s", o.traceSample, o.tracePath)
	}
	if o.historianDir != "" {
		log.Printf("recording measurements into historian at %s", o.historianDir)
	}
	if o.baselinePath != "" {
		log.Printf("drift detection armed against stored profile %s", o.baselinePath)
	}

	// The IDS monitors stay cmd-wired (hook, not ids_baseline param) so
	// the alert log lines keep their historical shape.
	var observer func(int) core.FrameObserver
	if o.loadBaseline != "" {
		idsBase, err := drift.LoadBaseline(o.loadBaseline)
		if err != nil {
			log.Print(err)
			return 1
		}
		eps, conns, points := idsBase.Size()
		log.Printf("IDS monitors armed: %d endpoints, %d connections, %d points whitelisted",
			eps, conns, points)
		// Monitors are per shard (lock-free inside); the shared log sink
		// serialises itself.
		var alertMu sync.Mutex
		observer = func(shard int) core.FrameObserver {
			return ids.NewMonitor(idsBase, func(al ids.Alert) {
				alertMu.Lock()
				defer alertMu.Unlock()
				log.Printf("ALERT [shard %d] %v", shard, al)
			})
		}
	}

	graph, hooks := pipeline.ProfilerGraph(pipeline.ProfilerPreset{
		Path:          o.path,
		Follow:        o.follow,
		Workers:       o.workers,
		Readers:       o.readers,
		SnapshotEvery: o.snapshotEvery,
		IdleTimeout:   o.idleTimeout,
		PointCap:      o.pointCap,
		Names:         o.names,
		HistorianDir:  o.historianDir,
		BaselinePath:  o.baselinePath,
		Protocols:     o.protocols,
		Trace:         rec,
		Observer:      observer,
	})
	runner, err := pipeline.NewRunner(graph, pipeline.Options{
		Registry: reg,
		Journal:  o.journal,
		Logf:     log.Printf,
		Hooks:    hooks,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	seg := runner.Segment("profiler", "an").(*pipeline.AnalyzerSegment)
	e := seg.Engine()

	if o.metricsAddr != "" {
		// The historical root endpoints stay, the pipeline surface
		// (/statusz graph view, /pipelines/profiler/...) mounts next to
		// them.
		eps := stream.Endpoints(e, seg.Historian())
		for p, h := range runner.Endpoints() {
			eps[p] = h
		}
		addr, shutdown, err := obs.ServeWith(o.metricsAddr, reg, o.journal, eps)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer shutdown()
		log.Printf("serving metrics, rolling profile and /statusz on http://%s/", addr)
	}

	ctx := context.Background()
	if o.follow {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		log.Printf("following %s with %d worker shard(s); interrupt to drain", o.path, o.workers)
	}

	exit := 0
	if err := runner.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "profiler: warning: stream stopped early: %v (reporting partial results)\n", err)
		exit = 1
	}
	if rec != nil {
		if err := rec.WriteChromeTraceFile(o.tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: warning: trace export failed: %v\n", err)
			exit = 1
		} else {
			log.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)", o.tracePath)
		}
	}

	p := e.Final()
	fmt.Printf("Capture: %d packets (%d IEC 104), window %s .. %s, parse errors %d\n\n",
		p.Packets, p.IECPackets,
		p.First.Format("2006-01-02 15:04:05"), p.Last.Format("15:04:05"), p.ParseErrors)
	if p.SeqAnomalies > 0 {
		fmt.Printf("IEC 104 sequence anomalies: %d\n\n", p.SeqAnomalies)
	}
	if p.FlowsEvicted > 0 {
		fmt.Printf("flows evicted after %s idle: %d\n\n", o.idleTimeout, p.FlowsEvicted)
	}

	if o.want["flows"] {
		printFlowReport(p.FlowReport())
	}
	if o.want["compliance"] {
		printComplianceReport(p.ComplianceReport())
		printDialects(p.Dialects, p.Streams)
	}
	if o.want["clusters"] {
		rep, err := p.ClusterReport(5, 1202)
		printClusterReport(rep, err)
	}
	if o.want["markov"] {
		printMarkovReport(p.MarkovReport())
	}
	if o.want["types"] {
		fmt.Println("== ASDU type distribution (Table 7) ==")
		fmt.Println(core.FormatTypeTable(p.TypeDistribution()))
	}
	if o.want["physical"] {
		printPhysicalDigests(p.Physical)
	}
	if o.want["timing"] {
		fmt.Println("== recovered reporting periods (timing characteristics) ==")
		fmt.Println("(unavailable in streaming mode: raw per-point timestamps are not retained)")
		fmt.Println()
	}
	if o.want["stats"] {
		printStats(reg, o.journal)
	}
	if code := driftActions(p, o.path, o.profileLabel, o.saveProfile, o.pushURL, ""); code != 0 {
		exit = code
	}
	if rep := e.DriftReport(); rep != nil {
		// The engine already diffed the final merged state against the
		// baseline on the last publish; print that report rather than
		// recomputing it.
		rep.WriteText(os.Stdout)
		fmt.Println()
	}
	if err := o.journal.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "profiler: warning: journal write failed: %v\n", err)
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}

// printPhysicalDigests is the streaming analogue of printPhysical,
// rendered from merged moment sketches instead of raw sample series.
func printPhysicalDigests(digests []physical.Digest) {
	fmt.Println("== Physical measurements (§6.4) ==")
	fmt.Printf("series extracted: %d\n", len(digests))
	fmt.Println("top normalized-variance series:")
	for i, d := range physical.RankDigests(digests, 2) {
		if i >= 8 {
			break
		}
		kind := "measurement"
		if d.Command {
			kind = "command"
		}
		fmt.Printf("  %s/%-6d %-11s nvar=%.4g samples=%d\n",
			d.Key.Station, d.Key.IOA, kind, d.NormalizedVariance(), d.Count)
	}
}
