// Command historianctl inspects and maintains a historian directory
// offline — the operational companion to the pipeline's embedded
// store.
//
// Usage:
//
//	historianctl ls -dir hist/
//	historianctl get -dir hist/ -station O29 -ioa 3001 -from 2019-06-01T12:00:00Z
//	historianctl get -dir hist/ -station O29 -ioa 3001 -step 1m
//	historianctl export -dir hist/ -o dump.csv
//	historianctl compact -dir hist/ -retention 8760h -downsample-after 720h
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"uncharted/internal/historian"
	"uncharted/internal/iec104"
)

func main() {
	os.Exit(run())
}

func usage() int {
	log.Print("usage: historianctl <ls|get|export|compact> -dir DIR [options]")
	return 2
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("historianctl: ")
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "ls":
		return runLs(os.Args[2:])
	case "get":
		return runGet(os.Args[2:])
	case "export":
		return runExport(os.Args[2:])
	case "compact":
		return runCompact(os.Args[2:])
	default:
		return usage()
	}
}

// open opens the store read-mostly with defaults; ctl operations never
// need tuned write options.
func open(dir string) (*historian.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	return historian.Open(dir, historian.Options{})
}

// runLs prints the point catalog: one line per stored point with its
// sample count, compressed footprint, and time extent.
func runLs(args []string) int {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "historian directory")
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer st.Close()
	cat := st.Catalog()
	fmt.Printf("%-10s %8s %-10s %-4s %10s %8s %10s  %-20s %-20s\n",
		"STATION", "IOA", "TYPE", "DIR", "SAMPLES", "BLOCKS", "BYTES", "FIRST", "LAST")
	var samples, bytes int64
	for _, pi := range cat {
		dir := "mon"
		if pi.Command {
			dir = "cmd"
		}
		fmt.Printf("%-10s %8d %-10s %-4s %10d %8d %10d  %-20s %-20s\n",
			pi.Key.Station, pi.Key.IOA, iec104.TypeID(pi.Type).Acronym(), dir,
			pi.Samples, pi.Blocks, pi.Bytes,
			pi.First.Format("2006-01-02T15:04:05"), pi.Last.Format("2006-01-02T15:04:05"))
		samples += pi.Samples
		bytes += pi.Bytes
	}
	if samples > 0 {
		fmt.Printf("\n%d points, %d samples, %d compressed bytes (%.1fx vs 16 B/sample raw)\n",
			len(cat), samples, bytes, float64(samples*16)/float64(bytes))
	}
	return 0
}

// pointFlags adds the flags shared by get and export.
func pointFlags(fs *flag.FlagSet) (dir, station *string, ioa *uint, from, to *string, step *time.Duration) {
	dir = fs.String("dir", "", "historian directory")
	station = fs.String("station", "", "station (outstation name or address)")
	ioa = fs.Uint("ioa", 0, "information object address")
	from = fs.String("from", "", "range start (RFC 3339 or unix nanoseconds; empty = unbounded)")
	to = fs.String("to", "", "range end (RFC 3339 or unix nanoseconds; empty = unbounded)")
	step = fs.Duration("step", 0, "downsample into buckets of this width (0 = raw samples)")
	return
}

func parseTimeArg(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(0, n).UTC(), nil
	}
	return time.Parse(time.RFC3339, s)
}

// runGet prints one point's samples (or downsampled buckets) as text.
func runGet(args []string) int {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	dir, station, ioa, fromS, toS, step := pointFlags(fs)
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer st.Close()
	from, err := parseTimeArg(*fromS)
	if err != nil {
		log.Printf("-from: %v", err)
		return 2
	}
	to, err := parseTimeArg(*toS)
	if err != nil {
		log.Printf("-to: %v", err)
		return 2
	}
	key := historian.PointKey{Station: *station, IOA: uint32(*ioa)}
	if *step > 0 {
		buckets, err := st.Downsample(key, from, to, *step)
		if err != nil {
			log.Print(err)
			return 1
		}
		for _, b := range buckets {
			fmt.Printf("%s min=%g max=%g mean=%g n=%d\n",
				b.Start.Format(time.RFC3339), b.Min, b.Max, b.Mean, b.Count)
		}
		return 0
	}
	samples, err := st.Query(key, from, to)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, s := range samples {
		fmt.Printf("%s %g\n", s.T.Format(time.RFC3339Nano), s.V)
	}
	return 0
}

// runExport writes samples as CSV (station,ioa,time,value) — the whole
// store, or one point with -station/-ioa.
func runExport(args []string) int {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir, station, ioa, fromS, toS, _ := pointFlags(fs)
	out := fs.String("o", "-", "output file (- = stdout)")
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer st.Close()
	from, err := parseTimeArg(*fromS)
	if err != nil {
		log.Printf("-from: %v", err)
		return 2
	}
	to, err := parseTimeArg(*toS)
	if err != nil {
		log.Printf("-to: %v", err)
		return 2
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	cw.Write([]string{"station", "ioa", "time", "value"})

	keys := []historian.PointKey{}
	if *station != "" {
		keys = append(keys, historian.PointKey{Station: *station, IOA: uint32(*ioa)})
	} else {
		for _, pi := range st.Catalog() {
			keys = append(keys, pi.Key)
		}
	}
	rows := 0
	for _, key := range keys {
		samples, err := st.Query(key, from, to)
		if err != nil {
			log.Print(err)
			return 1
		}
		ioaStr := strconv.FormatUint(uint64(key.IOA), 10)
		for _, s := range samples {
			cw.Write([]string{key.Station, ioaStr, s.T.Format(time.RFC3339Nano),
				strconv.FormatFloat(s.V, 'g', -1, 64)})
			rows++
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("exported %d samples from %d point(s)", rows, len(keys))
	return 0
}

// runCompact seals the active segment, then applies retention and
// age-based downsampling.
func runCompact(args []string) int {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "historian directory")
	retention := fs.Duration("retention", 0, "drop sealed segments older than this (0 = keep)")
	dsAfter := fs.Duration("downsample-after", 0, "downsample sealed segments older than this (0 = never)")
	dsStep := fs.Duration("downsample-step", time.Minute, "bucket width for downsampling")
	nowS := fs.String("now", "", "reference time (RFC 3339; default wall clock)")
	fs.Parse(args)
	if *dir == "" {
		log.Print("-dir is required")
		return 2
	}
	now := time.Now()
	if *nowS != "" {
		t, err := time.Parse(time.RFC3339, *nowS)
		if err != nil {
			log.Printf("-now: %v", err)
			return 2
		}
		now = t
	}
	st, err := historian.Open(*dir, historian.Options{
		Retention:       *retention,
		DownsampleAfter: *dsAfter,
		DownsampleStep:  *dsStep,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	defer st.Close()
	// Seal the resumed active segment first so a quiescent store can be
	// fully aged out.
	if err := st.Rotate(); err != nil {
		log.Print(err)
		return 1
	}
	if err := st.Compact(now); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("compacted %s (retention=%s downsample-after=%s)", *dir, *retention, *dsAfter)
	return 0
}
