// Command iec104gen synthesizes a bulk-power SCADA capture: it runs
// the paper's network (27 substations, 58 outstations, 4 control
// servers) over the simulated power grid and writes the packets the
// authors' tap would have seen as a libpcap file.
//
// Usage:
//
//	iec104gen -year 1 -scale 0.5 -seed 7 -out y1.pcap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iec104gen: ")

	year := flag.Int("year", 1, "capture year to synthesize (1 or 2)")
	out := flag.String("out", "", "output pcap path (default y<year>.pcap)")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1, "duration scale relative to the default (Y1 40min, Y2 15min)")
	duration := flag.Duration("duration", 0, "explicit capture duration (overrides -scale)")
	journalPath := flag.String("journal", "", "append structured generator events to this JSONL file")
	stats := flag.Bool("stats", false, "print generator metrics to stderr after the run")
	modbus := flag.Bool("modbus", false, "add a Modbus/TCP polling association (mixed-protocol capture)")
	faultTimeout := flag.Float64("fault-timeout", 0, "probability a device response is dropped (lossy field link)")
	faultShortRead := flag.Float64("fault-shortread", 0, "probability a frame is torn across two TCP segments")
	flag.Parse()

	if *year != 1 && *year != 2 {
		log.Fatalf("year must be 1 or 2, got %d", *year)
	}
	cfg := scadasim.DefaultConfig(topology.Year(*year), *seed)
	cfg.EnableModbus = *modbus
	cfg.Faults.TimeoutProb = *faultTimeout
	cfg.Faults.ShortReadProb = *faultShortRead
	switch {
	case *duration > 0:
		cfg.Duration = *duration
	case *scale > 0:
		cfg.Duration = time.Duration(float64(cfg.Duration) * *scale)
	}
	if cfg.CyclePeriod > cfg.Duration/3 {
		cfg.CyclePeriod = cfg.Duration / 3
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("y%d.pcap", *year)
	}

	sim, err := scadasim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}
	if *stats || journal != nil {
		sim.Instrument(reg, journal)
	}
	start := time.Now()
	tr, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.WritePCAP(f); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d packets, %d connections, %v simulated in %v",
		path, len(tr.Records), len(tr.Truth.Connections), cfg.Duration, time.Since(start).Round(time.Millisecond))
	if *stats {
		for _, c := range reg.Snapshot().Counters {
			suffix := ""
			for i := 0; i+1 < len(c.Labels); i += 2 {
				suffix += " " + c.Labels[i] + "=" + c.Labels[i+1]
			}
			log.Printf("stat %s%s %d", c.Name, suffix, c.Value)
		}
	}
	if err := journal.Err(); err != nil {
		log.Fatalf("journal write failed: %v", err)
	}
}
