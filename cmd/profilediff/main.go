// Command profilediff is the longitudinal comparison tool from §6 of
// the paper: it persists behavioral profiles of a bulk-power capture
// and diffs two of them statistically — Markov-chain divergence,
// timing and flow-duration distribution shifts, topology churn,
// compliance-flag churn and physical-range shifts — so the paper's
// Nov 2017 vs Mar 2019 experiment is a two-command reproduction.
//
// Usage:
//
//	profilediff save -out era-a.prof -label 2017-11 capture-a.pcap
//	profilediff save -out era-b.prof -label 2019-03 capture-b.pcap
//	profilediff diff era-a.prof era-b.prof
//	profilediff diff -json era-a.prof era-b.prof > report.json
//	profilediff watch -baseline era-a.prof growing.pcap
//
// Exit status of diff follows the diff(1) convention: 0 when no drift
// is found, 1 when the profiles drifted, 2 on trouble.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

func main() {
	os.Exit(run())
}

func usage() int {
	log.Print(`usage:
  profilediff save  [-out file] [-label text] [-workers N] capture.pcap
  profilediff diff  [-json] [-min-severity N] a.prof b.prof
  profilediff watch -baseline a.prof [-workers N] [-interval d] [-metrics addr] growing.pcap`)
	return 2
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("profilediff: ")
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "save":
		return runSave(os.Args[2:])
	case "diff":
		return runDiff(os.Args[2:])
	case "watch":
		return runWatch(os.Args[2:])
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		return usage()
	}
}

// runSave analyzes a capture and persists the merged state as a
// versioned profile file.
func runSave(args []string) int {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	out := fs.String("out", "profile.prof", "output profile path")
	label := fs.String("label", "", "label stored in the profile (default: capture path)")
	workers := fs.Int("workers", 1, "analysis shards")
	names := fs.Bool("names", true, "label addresses with the simulated topology's names")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	path := fs.Arg(0)
	if *label == "" {
		*label = path
	}

	p, err := analyze(path, *workers, *names)
	if err != nil {
		log.Print(err)
		return 2
	}
	prof := drift.NewProfile(*label, path, p, time.Now())
	if err := drift.SaveProfile(*out, prof); err != nil {
		log.Print(err)
		return 2
	}
	log.Printf("saved profile %q to %s: %d packets, %d connections, %d points, window %s .. %s",
		*label, *out, p.Packets, len(p.Chains), len(p.Physical),
		p.First.Format("2006-01-02 15:04:05"), p.Last.Format("15:04:05"))
	return 0
}

// analyze runs a finished capture through the pipeline: one offline
// analyzer, or the sharded streaming engine when workers > 1 (the
// merge is order-independent, so both produce the same profile).
func analyze(path string, workers int, names bool) (core.Partial, error) {
	var nm map[netip.Addr]string
	if names {
		nm = core.NamesFromTopology(topology.Build())
	}
	f, err := os.Open(path)
	if err != nil {
		return core.Partial{}, err
	}
	defer f.Close()
	if workers <= 1 {
		a := core.NewAnalyzer(nm)
		if err := a.ReadPCAP(f); err != nil {
			return core.Partial{}, fmt.Errorf("reading %s: %w", path, err)
		}
		return a.Partial(), nil
	}
	src, err := stream.NewPCAPSource(f)
	if err != nil {
		return core.Partial{}, err
	}
	e := stream.New(stream.Config{Workers: workers, Names: nm})
	if err := e.Run(context.Background(), src); err != nil {
		return core.Partial{}, err
	}
	return e.Final(), nil
}

// runDiff loads two profiles and prints the drift report.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	minSev := fs.Int("min-severity", drift.SevInfo, "exit 1 only when a finding reaches this severity (1=info 2=warn 3=critical)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return usage()
	}
	a, err := drift.LoadProfile(fs.Arg(0))
	if err != nil {
		log.Print(err)
		return 2
	}
	b, err := drift.LoadProfile(fs.Arg(1))
	if err != nil {
		log.Print(err)
		return 2
	}
	rep := drift.Compare(a, b, drift.DefaultThresholds())
	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Print(err)
			return 2
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	if rep.MaxSeverity() >= *minSev && len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// runWatch tails a growing capture, diffing the rolling profile
// against the stored baseline on every snapshot: the paper's
// longitudinal comparison as a monitor instead of a post-hoc study.
func runWatch(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	basePath := fs.String("baseline", "", "stored profile to diff the live capture against (required)")
	workers := fs.Int("workers", 2, "analysis shards")
	interval := fs.Duration("interval", 2*time.Second, "snapshot and comparison period")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /profile and /drift on this address")
	names := fs.Bool("names", true, "label addresses with the simulated topology's names")
	fs.Parse(args)
	if fs.NArg() != 1 || *basePath == "" {
		return usage()
	}
	baseline, err := drift.LoadProfile(*basePath)
	if err != nil {
		log.Print(err)
		return 2
	}
	log.Printf("watching %s against profile %q (%s)",
		fs.Arg(0), baseline.Meta.Label, baseline.Meta.SavedAt.Format("2006-01-02"))

	var nm map[netip.Addr]string
	if *names {
		nm = core.NamesFromTopology(topology.Build())
	}
	e := stream.New(stream.Config{
		Workers:       *workers,
		SnapshotEvery: *interval,
		Names:         nm,
		Baseline:      baseline,
		DriftAlerts: func(al ids.Alert) {
			log.Printf("DRIFT %v", al)
		},
	})

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		addr, shutdown, err := obs.ServeWith(*metricsAddr, reg, nil, map[string]http.Handler{
			"/profile": e.ProfileHandler(),
			"/drift":   e.DriftHandler(),
		})
		if err != nil {
			log.Print(err)
			return 2
		}
		defer shutdown()
		log.Printf("serving live drift report on http://%s/drift", addr)
	}

	src, err := stream.NewFollowSource(fs.Arg(0))
	if err != nil {
		log.Print(err)
		return 2
	}
	defer src.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Print("interrupt to drain and print the final report")
	if err := e.Run(ctx, src); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("stream stopped early: %v", err)
		return 2
	}
	rep := e.DriftReport()
	if rep == nil {
		log.Print("no snapshot was published before shutdown")
		return 2
	}
	rep.WriteText(os.Stdout)
	if rep.MaxSeverity() >= drift.SevWarn {
		return 1
	}
	return 0
}
