// Command iec104dump prints the industrial traffic of a capture,
// Wireshark-style. The default IEC 104 mode uses the tolerant parser:
// frames from outstations that kept legacy IEC 101 field sizes (the
// paper's O37/O28/O53/O58) decode correctly, with the detected dialect
// reported per endpoint. -proto switches to the protocol registry:
// c37118 or modbus dumps that dialect alone, auto claims each flow by
// registered port (content-sniffing the rest) and dumps the whole
// multi-protocol tap.
//
// Usage:
//
//	iec104dump -n 50 capture.pcap
//	iec104dump -proto auto mixed.pcap
//	iec104dump -proto modbus -q capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"sort"

	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/protocol"

	// Link the non-default dialects for -proto.
	_ "uncharted/internal/c37118"
	_ "uncharted/internal/modbus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iec104dump: ")

	limit := flag.Int("n", 0, "stop after this many printed frames (0 = all)")
	quiet := flag.Bool("q", false, "suppress per-packet lines; print only the endpoint summary")
	proto := flag.String("proto", "iec104", "protocol to dump: iec104 (tolerant parser), c37118, modbus, or auto (registry detection across all dialects)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: iec104dump [-n N] [-q] [-proto auto|iec104|c37118|modbus] capture.pcap")
	}
	if *proto != "iec104" && *proto != "auto" {
		if protocol.ByName(*proto) == nil {
			log.Fatalf("unknown protocol %q (want iec104, c37118, modbus or auto)", *proto)
		}
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	r, err := pcap.NewAutoReader(f)
	if err != nil {
		log.Fatal(err)
	}
	if *proto != "iec104" {
		dumpGeneric(r, *proto, *limit, *quiet)
		return
	}
	parser := iec104.NewTolerantParser()
	stats := map[netip.Addr]*endpointStats{}

	shown := 0
	for {
		data, ci, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil || len(pkt.TCP.Payload) == 0 {
			continue
		}
		if pkt.TCP.SrcPort != 2404 && pkt.TCP.DstPort != 2404 {
			continue
		}
		src := pkt.IP.Src
		es, ok := stats[src]
		if !ok {
			es = &endpointStats{}
			stats[src] = es
		}
		apdus, err := parser.Parse(src.String(), pkt.TCP.Payload)
		if err != nil {
			es.errors++
			continue
		}
		es.frames += len(apdus)
		if *quiet {
			continue
		}
		for _, a := range apdus {
			line := fmt.Sprintf("%s %21s > %-21s %-4s",
				ci.Timestamp.Format("15:04:05.000000"),
				fmt.Sprintf("%s:%d", pkt.IP.Src, pkt.TCP.SrcPort),
				fmt.Sprintf("%s:%d", pkt.IP.Dst, pkt.TCP.DstPort),
				a.Token())
			if a.Format == iec104.FormatI && a.ASDU != nil {
				line += fmt.Sprintf(" %s cot=%s ca=%d objs=%d",
					a.ASDU.Type.Acronym(), a.ASDU.COT.Cause, a.ASDU.CommonAddr, len(a.ASDU.Objects))
				if len(a.ASDU.Objects) > 0 {
					o := a.ASDU.Objects[0]
					line += fmt.Sprintf(" ioa=%d val=%.4g", o.IOA, o.Value.Float)
				}
			}
			fmt.Println(line)
			shown++
			if *limit > 0 && shown >= *limit {
				printSummary(parser, stats)
				return
			}
		}
	}
	printSummary(parser, stats)
}

func printSummary(parser *iec104.TolerantParser, stats map[netip.Addr]*endpointStats) {
	fmt.Println("\nEndpoint dialects:")
	addrs := make([]netip.Addr, 0, len(stats))
	for a := range stats {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	for _, a := range addrs {
		profile := "(control frames only)"
		if p, ok := parser.ProfileFor(a.String()); ok {
			profile = p.String()
		}
		es := stats[a]
		fmt.Printf("  %-16s frames=%-7d parse-errors=%-4d dialect=%s\n", a, es.frames, es.errors, profile)
	}
}

// endpointStats tallies tolerant-parser results per source address.
type endpointStats struct {
	frames int
	errors int
}

// genFlow is one claimed connection's decode state, shared by both
// directions so sessions can pair requests with responses.
type genFlow struct {
	d    protocol.Dialect
	sess protocol.Session
}

// genDir is one direction's view of a flow.
type genDir struct {
	flow        *genFlow
	fromStation bool
	buf         []byte
}

// dumpGeneric prints frames through the protocol registry: mode names
// one dialect ("c37118", "modbus") or "auto" for port+sniff detection
// across every registered dialect, IEC 104 included.
func dumpGeneric(r pcap.PacketReader, mode string, limit int, quiet bool) {
	only := protocol.ByName(mode) // nil in auto mode
	dirs := map[[2]netip.AddrPort]*genDir{}
	tally := map[protocol.ID]*dialectTally{}

	claim := func(src, dst netip.AddrPort, payload []byte) *genDir {
		d := protocol.ByPort(dst.Port())
		if d == nil {
			d = protocol.ByPort(src.Port())
		}
		if d == nil && only != nil && only.Sniff(payload) {
			d = only
		}
		if d == nil && only == nil {
			d = protocol.Detect(payload)
		}
		if d == nil || (only != nil && d.ID() != only.ID()) {
			return nil
		}
		var fromStation bool
		switch {
		case dst.Port() == d.Port():
			fromStation = d.StationInitiates()
		case src.Port() == d.Port():
			fromStation = !d.StationInitiates()
		default:
			fromStation = d.StationInitiates()
		}
		return &genDir{
			flow:        &genFlow{d: d, sess: d.NewSession()},
			fromStation: fromStation,
		}
	}

	shown := 0
	for {
		data, ci, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil || len(pkt.TCP.Payload) == 0 {
			continue
		}
		src := netip.AddrPortFrom(pkt.IP.Src, pkt.TCP.SrcPort)
		dst := netip.AddrPortFrom(pkt.IP.Dst, pkt.TCP.DstPort)
		key := [2]netip.AddrPort{src, dst}
		gd, seen := dirs[key]
		if !seen {
			if rev, ok := dirs[[2]netip.AddrPort{dst, src}]; ok && rev != nil {
				gd = &genDir{flow: rev.flow, fromStation: !rev.fromStation}
			} else {
				gd = claim(src, dst, pkt.TCP.Payload)
			}
			dirs[key] = gd
		}
		if gd == nil {
			continue
		}
		dt := tally[gd.flow.d.ID()]
		if dt == nil {
			dt = &dialectTally{}
			tally[gd.flow.d.ID()] = dt
		}
		gd.buf = append(gd.buf, pkt.TCP.Payload...)
		for {
			ev, rest, _, ok := gd.flow.sess.Next(gd.buf, gd.fromStation)
			if !ok {
				gd.buf = append(gd.buf[:0], rest...)
				break
			}
			gd.buf = rest
			if ev.Err != nil {
				dt.errors++
				continue
			}
			dt.frames++
			dt.points += len(ev.Points)
			if quiet {
				continue
			}
			line := fmt.Sprintf("%s %21s > %-21s %-8s %-5s",
				ci.Timestamp.Format("15:04:05.000000"), src, dst,
				gd.flow.d.Name(), ev.Token)
			if len(ev.Points) > 0 {
				p := ev.Points[0]
				line += fmt.Sprintf(" points=%d first{ioa=%d val=%.4g", len(ev.Points), p.IOA, p.V)
				if p.Command {
					line += " cmd"
				}
				line += "}"
			}
			fmt.Println(line)
			shown++
			if limit > 0 && shown >= limit {
				printGenericSummary(tally)
				return
			}
		}
	}
	printGenericSummary(tally)
}

// dialectTally accumulates per-dialect totals for the -proto summary.
type dialectTally struct{ frames, errors, points int }

func printGenericSummary(tally map[protocol.ID]*dialectTally) {
	fmt.Println("\nDialect summary:")
	ids := make([]protocol.ID, 0, len(tally))
	for id := range tally {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := tally[id]
		fmt.Printf("  %-8s frames=%-8d parse-errors=%-5d points=%d\n", id, t.frames, t.errors, t.points)
	}
}
