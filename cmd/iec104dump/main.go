// Command iec104dump prints the IEC 104 traffic of a capture,
// Wireshark-style, using the tolerant parser: frames from outstations
// that kept legacy IEC 101 field sizes (the paper's O37/O28/O53/O58)
// decode correctly, with the detected dialect reported per endpoint.
//
// Usage:
//
//	iec104dump -n 50 capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"sort"

	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iec104dump: ")

	limit := flag.Int("n", 0, "stop after this many IEC 104 packets (0 = all)")
	quiet := flag.Bool("q", false, "suppress per-packet lines; print only the endpoint summary")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: iec104dump [-n N] [-q] capture.pcap")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	r, err := pcap.NewAutoReader(f)
	if err != nil {
		log.Fatal(err)
	}
	parser := iec104.NewTolerantParser()
	stats := map[netip.Addr]*endpointStats{}

	shown := 0
	for {
		data, ci, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil || len(pkt.TCP.Payload) == 0 {
			continue
		}
		if pkt.TCP.SrcPort != 2404 && pkt.TCP.DstPort != 2404 {
			continue
		}
		src := pkt.IP.Src
		es, ok := stats[src]
		if !ok {
			es = &endpointStats{}
			stats[src] = es
		}
		apdus, err := parser.Parse(src.String(), pkt.TCP.Payload)
		if err != nil {
			es.errors++
			continue
		}
		es.frames += len(apdus)
		if *quiet {
			continue
		}
		for _, a := range apdus {
			line := fmt.Sprintf("%s %21s > %-21s %-4s",
				ci.Timestamp.Format("15:04:05.000000"),
				fmt.Sprintf("%s:%d", pkt.IP.Src, pkt.TCP.SrcPort),
				fmt.Sprintf("%s:%d", pkt.IP.Dst, pkt.TCP.DstPort),
				a.Token())
			if a.Format == iec104.FormatI && a.ASDU != nil {
				line += fmt.Sprintf(" %s cot=%s ca=%d objs=%d",
					a.ASDU.Type.Acronym(), a.ASDU.COT.Cause, a.ASDU.CommonAddr, len(a.ASDU.Objects))
				if len(a.ASDU.Objects) > 0 {
					o := a.ASDU.Objects[0]
					line += fmt.Sprintf(" ioa=%d val=%.4g", o.IOA, o.Value.Float)
				}
			}
			fmt.Println(line)
			shown++
			if *limit > 0 && shown >= *limit {
				printSummary(parser, stats)
				return
			}
		}
	}
	printSummary(parser, stats)
}

func printSummary(parser *iec104.TolerantParser, stats map[netip.Addr]*endpointStats) {
	fmt.Println("\nEndpoint dialects:")
	addrs := make([]netip.Addr, 0, len(stats))
	for a := range stats {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	for _, a := range addrs {
		profile := "(control frames only)"
		if p, ok := parser.ProfileFor(a.String()); ok {
			profile = p.String()
		}
		es := stats[a]
		fmt.Printf("  %-16s frames=%-7d parse-errors=%-4d dialect=%s\n", a, es.frames, es.errors, profile)
	}
}

// endpointStats tallies tolerant-parser results per source address.
type endpointStats struct {
	frames int
	errors int
}
