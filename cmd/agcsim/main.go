// Command agcsim runs the power-system substrate by itself and prints
// the physical time series behind Figs. 18-20 as CSV: system frequency,
// per-generator output, voltages, breaker state and the AGC setpoint
// commands — handy for plotting the scenarios without the network
// layer.
//
// Usage:
//
//	agcsim -duration 10m -gens 4 -unmet-load 5m > series.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uncharted/internal/powersim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agcsim: ")

	duration := flag.Duration("duration", 10*time.Minute, "simulated time")
	step := flag.Duration("step", time.Second, "sample interval")
	gens := flag.Int("gens", 4, "number of generators")
	seed := flag.Int64("seed", 1, "noise seed")
	unmetLoad := flag.Duration("unmet-load", 4*time.Minute, "when to drop 12% of load (0 = never)")
	reconnect := flag.Duration("reconnect", 6*time.Minute, "when the lost load returns (0 = never)")
	syncAt := flag.Duration("sync", 2*time.Minute, "when the last generator synchronises (0 = never)")
	flag.Parse()

	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	grid := powersim.NewGrid(start, *seed)
	agc := powersim.NewAGC(grid)

	for i := 0; i < *gens; i++ {
		name := fmt.Sprintf("G%d", i+1)
		capacity := 120 + float64(i)*60
		online := true
		initial := capacity * 0.55
		if *syncAt > 0 && i == *gens-1 {
			online = false
			initial = 0
		}
		grid.AddGenerator(name, capacity, initial, online)
	}
	if *syncAt > 0 {
		last := fmt.Sprintf("G%d", *gens)
		if err := grid.ScheduleGeneratorSync(start.Add(*syncAt), last, 2*time.Minute, 70); err != nil {
			log.Fatal(err)
		}
	}
	if *unmetLoad > 0 {
		grid.ScheduleLoadStep(start.Add(*unmetLoad), -0.12*grid.BaseLoad)
		if *reconnect > *unmetLoad {
			grid.ScheduleLoadStep(start.Add(*reconnect), 0.12*grid.BaseLoad)
		}
	}

	w := os.Stdout
	fmt.Fprint(w, "t_seconds,frequency_hz,load_mw,total_gen_mw")
	for _, g := range grid.Generators {
		fmt.Fprintf(w, ",%s_mw,%s_setpoint_mw,%s_ugrid_kv,%s_uterm_kv,%s_breaker",
			g.Name, g.Name, g.Name, g.Name, g.Name)
	}
	fmt.Fprintln(w, ",agc_commands")

	commands := 0
	for ts := start; !ts.After(start.Add(*duration)); ts = ts.Add(*step) {
		grid.AdvanceTo(ts)
		commands += len(agc.Run(ts))
		fmt.Fprintf(w, "%.0f,%.5f,%.2f,%.2f",
			ts.Sub(start).Seconds(), grid.Frequency, grid.Load(), grid.TotalGeneration())
		for _, g := range grid.Generators {
			fmt.Fprintf(w, ",%.2f,%.2f,%.2f,%.2f,%d",
				g.Output, g.Setpoint, g.GridVoltage, g.TerminalVoltage, int(g.Breaker))
		}
		fmt.Fprintf(w, ",%d\n", commands)
	}
	log.Printf("simulated %v, %d AGC commands", *duration, commands)
}
