// Command agcsim runs the power-system substrate by itself and prints
// the physical time series behind Figs. 18-20 as CSV: system frequency,
// per-generator output, voltages, breaker state and the AGC setpoint
// commands — handy for plotting the scenarios without the network
// layer.
//
// Usage:
//
//	agcsim -duration 10m -gens 4 -unmet-load 5m > series.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/powersim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agcsim: ")

	duration := flag.Duration("duration", 10*time.Minute, "simulated time")
	step := flag.Duration("step", time.Second, "sample interval")
	gens := flag.Int("gens", 4, "number of generators")
	seed := flag.Int64("seed", 1, "noise seed")
	unmetLoad := flag.Duration("unmet-load", 4*time.Minute, "when to drop 12% of load (0 = never)")
	reconnect := flag.Duration("reconnect", 6*time.Minute, "when the lost load returns (0 = never)")
	syncAt := flag.Duration("sync", 2*time.Minute, "when the last generator synchronises (0 = never)")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics and /debug/vars on this address")
	pace := flag.Duration("pace", 0, "wall-clock delay per sample (use with -metrics to watch the run live)")
	flag.Parse()

	reg := obs.Default
	reg.SetHelp("uncharted_agcsim_frequency_hz", "Current simulated system frequency.")
	reg.SetHelp("uncharted_agcsim_load_mw", "Current simulated system load.")
	reg.SetHelp("uncharted_agcsim_generation_mw", "Current total generation output.")
	reg.SetHelp("uncharted_agcsim_agc_commands_total", "Setpoint commands issued by the AGC loop.")
	reg.SetHelp("uncharted_agcsim_frequency_deviation_hz", "Absolute frequency deviation from nominal, per sample.")
	var (
		freqGauge = reg.Gauge("uncharted_agcsim_frequency_hz")
		loadGauge = reg.Gauge("uncharted_agcsim_load_mw")
		genGauge  = reg.Gauge("uncharted_agcsim_generation_mw")
		cmdTotal  = reg.Counter("uncharted_agcsim_agc_commands_total")
		freqDev   = reg.Histogram("uncharted_agcsim_frequency_deviation_hz",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	)
	if *metrics != "" {
		bound, stop, err := obs.Serve(*metrics, reg, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		log.Printf("metrics on http://%s/metrics", bound)
	}

	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	grid := powersim.NewGrid(start, *seed)
	agc := powersim.NewAGC(grid)

	for i := 0; i < *gens; i++ {
		name := fmt.Sprintf("G%d", i+1)
		capacity := 120 + float64(i)*60
		online := true
		initial := capacity * 0.55
		if *syncAt > 0 && i == *gens-1 {
			online = false
			initial = 0
		}
		grid.AddGenerator(name, capacity, initial, online)
	}
	if *syncAt > 0 {
		last := fmt.Sprintf("G%d", *gens)
		if err := grid.ScheduleGeneratorSync(start.Add(*syncAt), last, 2*time.Minute, 70); err != nil {
			log.Fatal(err)
		}
	}
	if *unmetLoad > 0 {
		grid.ScheduleLoadStep(start.Add(*unmetLoad), -0.12*grid.BaseLoad)
		if *reconnect > *unmetLoad {
			grid.ScheduleLoadStep(start.Add(*reconnect), 0.12*grid.BaseLoad)
		}
	}

	w := os.Stdout
	fmt.Fprint(w, "t_seconds,frequency_hz,load_mw,total_gen_mw")
	for _, g := range grid.Generators {
		fmt.Fprintf(w, ",%s_mw,%s_setpoint_mw,%s_ugrid_kv,%s_uterm_kv,%s_breaker",
			g.Name, g.Name, g.Name, g.Name, g.Name)
	}
	fmt.Fprintln(w, ",agc_commands")

	commands := 0
	for ts := start; !ts.After(start.Add(*duration)); ts = ts.Add(*step) {
		grid.AdvanceTo(ts)
		issued := len(agc.Run(ts))
		commands += issued
		cmdTotal.Add(int64(issued))
		freqGauge.Set(grid.Frequency)
		loadGauge.Set(grid.Load())
		genGauge.Set(grid.TotalGeneration())
		freqDev.Observe(absFloat(grid.Frequency - 60))
		if *pace > 0 {
			time.Sleep(*pace)
		}
		fmt.Fprintf(w, "%.0f,%.5f,%.2f,%.2f",
			ts.Sub(start).Seconds(), grid.Frequency, grid.Load(), grid.TotalGeneration())
		for _, g := range grid.Generators {
			fmt.Fprintf(w, ",%.2f,%.2f,%.2f,%.2f,%d",
				g.Output, g.Setpoint, g.GridVoltage, g.TerminalVoltage, int(g.Breaker))
		}
		fmt.Fprintf(w, ",%d\n", commands)
	}
	log.Printf("simulated %v, %d AGC commands", *duration, commands)
}

func absFloat(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
