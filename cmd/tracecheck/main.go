// Command tracecheck validates a Chrome trace_event JSON file written
// by the flight recorder (-trace on iec104live or profiler): it
// counts complete ("X") span events per stage name, prints the tally,
// and exits non-zero when a required stage recorded no spans. CI uses
// it to prove the traced hot path really covered the whole pipeline.
//
// Usage:
//
//	tracecheck out.json
//	tracecheck -require read,enqueue,feed,merge,publish out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// traceDoc is the slice of the trace_event format the checker reads.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")

	require := flag.String("require", "", "comma-separated stage names that must each have at least one span")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Print("usage: tracecheck [-require stages] trace.json")
		return 2
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Print(err)
		return 1
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		log.Printf("%s: not a Chrome trace JSON document: %v", flag.Arg(0), err)
		return 1
	}

	counts := map[string]int{}
	total := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		counts[ev.Name]++
		total++
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d span events across %d stages\n", flag.Arg(0), total, len(names))
	for _, n := range names {
		fmt.Printf("  %-12s %d\n", n, counts[n])
	}

	var missing []string
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want != "" && counts[want] == 0 {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		log.Printf("missing required stages: %s", strings.Join(missing, ", "))
		return 1
	}
	if total == 0 {
		log.Print("trace contains no span events")
		return 1
	}
	return 0
}
