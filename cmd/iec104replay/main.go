// Command iec104replay turns a capture into a live outstation: it
// extracts one station's monitor-direction APDU stream from a pcap
// (classic or pcapng) and serves it over TCP with original timing —
// re-sequenced, answering STARTDT/TESTFR and general interrogations.
// Point any IEC 104 master, IDS or the profiler's live tooling at it
// to test against historical traffic.
//
// Usage:
//
//	iec104replay -station 10.0.1.39 -listen 127.0.0.1:2404 -speed 10 y1.pcap
//
// The -station address defaults to the busiest outstation in the
// capture.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"os"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/station"
)

// event is one historical I-frame with its capture offset.
type event struct {
	offset time.Duration
	asdu   *iec104.ASDU
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("iec104replay: ")

	stationAddr := flag.String("station", "", "outstation IP to replay (default: busiest in capture)")
	listen := flag.String("listen", "127.0.0.1:2404", "listen address")
	speed := flag.Float64("speed", 1, "time compression factor (10 = 10x faster than recorded)")
	once := flag.Bool("once", false, "exit after serving one connection to completion")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics and /debug/vars on this address")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: iec104replay [-station ip] [-listen addr] [-speed n] capture.pcap")
	}
	if *speed <= 0 {
		log.Fatal("-speed must be positive")
	}

	events, dialect, src, err := loadEvents(flag.Arg(0), *stationAddr)
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatalf("no monitor-direction APDUs from %s in capture", src)
	}
	log.Printf("replaying %d APDUs from %s (dialect %s) over %v of capture time at %gx",
		len(events), src, dialect, events[len(events)-1].offset.Round(time.Second), *speed)

	instrument := false
	if *metrics != "" {
		bound, stop, err := obs.Serve(*metrics, obs.Default, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		log.Printf("metrics on http://%s/metrics", bound)
		instrument = true
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		serve(conn, events, dialect, *speed, instrument)
		if *once {
			return
		}
	}
}

// loadEvents extracts the station's I-frames with capture-relative
// offsets, learning its dialect with the tolerant parser.
func loadEvents(path, want string) ([]event, iec104.Profile, netip.Addr, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, iec104.Profile{}, netip.Addr{}, err
	}
	defer f.Close()
	r, err := pcap.NewAutoReader(f)
	if err != nil {
		return nil, iec104.Profile{}, netip.Addr{}, err
	}

	parser := iec104.NewTolerantParser()
	byStation := map[netip.Addr][]event{}
	var base time.Time
	for {
		data, ci, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, iec104.Profile{}, netip.Addr{}, err
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil || len(pkt.TCP.Payload) == 0 || pkt.TCP.SrcPort != 2404 {
			continue // monitor direction only: outstation side sends from 2404
		}
		if base.IsZero() {
			base = ci.Timestamp
		}
		apdus, err := parser.Parse(pkt.IP.Src.String(), pkt.TCP.Payload)
		if err != nil {
			continue
		}
		for _, a := range apdus {
			if a.Format != iec104.FormatI || a.ASDU == nil || !a.ASDU.Type.IsMonitor() {
				continue
			}
			byStation[pkt.IP.Src] = append(byStation[pkt.IP.Src], event{
				offset: ci.Timestamp.Sub(base),
				asdu:   a.ASDU,
			})
		}
	}

	var src netip.Addr
	if want != "" {
		src, err = netip.ParseAddr(want)
		if err != nil {
			return nil, iec104.Profile{}, netip.Addr{}, fmt.Errorf("bad -station %q: %w", want, err)
		}
	} else {
		// Busiest station wins.
		var addrs []netip.Addr
		for a := range byStation {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool {
			if len(byStation[addrs[i]]) != len(byStation[addrs[j]]) {
				return len(byStation[addrs[i]]) > len(byStation[addrs[j]])
			}
			return addrs[i].Compare(addrs[j]) < 0
		})
		if len(addrs) == 0 {
			return nil, iec104.Profile{}, netip.Addr{}, fmt.Errorf("no IEC 104 outstation traffic in %s", path)
		}
		src = addrs[0]
	}
	events := byStation[src]
	// Rebase offsets to the station's first frame.
	if len(events) > 0 {
		first := events[0].offset
		for i := range events {
			events[i].offset -= first
		}
	}
	dialect := iec104.Standard
	if p, ok := parser.ProfileFor(src.String()); ok {
		dialect = p
	}
	return events, dialect, src, nil
}

// serve replays the stream to one connection using the live-station
// point table for interrogations (latest value per IOA).
func serve(conn net.Conn, events []event, dialect iec104.Profile, speed float64, instrument bool) {
	defer conn.Close()
	log.Printf("connection from %s", conn.RemoteAddr())

	// Build the replay outstation: latest value per IOA answers GIs.
	rtu := station.NewOutstation(events[0].asdu.CommonAddr)
	rtu.Profile = dialect
	if instrument {
		// Per-connection outstations share the process registry, so
		// counters accumulate across replayed connections.
		rtu.Instrument(obs.Default, nil)
	}
	seen := map[uint32]bool{}
	for _, ev := range events {
		for _, obj := range ev.asdu.Objects {
			if !seen[obj.IOA] {
				seen[obj.IOA] = true
				rtu.AddPoint(station.PointDef{IOA: obj.IOA, Type: ev.asdu.Type, Value: obj.Value.Float})
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rtu.ServeConn(conn)
	}()

	// Wait for the master to activate transfer (STARTDT + usually a
	// general interrogation) before the historical clock starts.
	activation := time.Now().Add(30 * time.Second)
	for !rtu.HasActiveLink() {
		if time.Now().After(activation) {
			log.Printf("peer never activated transfer; closing")
			return
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-done:
			log.Printf("peer disconnected before activating")
			return
		}
	}

	start := time.Now()
	played := 0
	for _, ev := range events {
		due := start.Add(time.Duration(float64(ev.offset) / speed))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-done:
				log.Printf("peer disconnected after %d/%d APDUs", played, len(events))
				return
			}
		}
		if err := rtu.Broadcast(ev.asdu); err != nil {
			log.Printf("replay stopped after %d/%d APDUs: %v", played, len(events), err)
			return
		}
		played++
	}
	log.Printf("replayed %d APDUs", played)
	conn.Close()
	<-done
}
