package main

import (
	"strings"
	"testing"
	"time"
)

func mkSample(at time.Time, packets int64) *sample {
	s := &sample{At: at, Addr: "localhost:9104"}
	s.Status = statusDoc{
		State: "running", UptimeSeconds: 42.5, Workers: 2, Policy: "block",
		Packets: packets, Batches: packets / 100, Snapshots: 7,
		DroppedBatches: 1, DroppedPackets: 64,
		Shards: []shardRow{
			{ID: 0, QueueLen: 4, QueueCap: 8, Current: "feed",
				Stalls: map[string]int64{"feed": 3, "decode": 1}},
			{ID: 1, QueueLen: 0, QueueCap: 8, Current: "idle",
				DroppedBatches: 1, DroppedPackets: 64,
				DropCauses: map[string]int64{"idle": 1}},
		},
		Stages: []stageRow{
			{Lane: "0", Stage: "decode", Count: 1200, P50: 12e-6, P99: 85e-6},
			{Lane: "reader", Stage: "read", Count: 4800, P50: 2e-6, P99: 9e-6},
		},
		Readers: []readerRow{
			{ID: 0, SegmentOff: 0, SegmentSize: 2 << 20, BytesRead: 2 << 20, MBPerSec: 120.5, Done: true},
			{ID: 1, SegmentOff: 2 << 20, SegmentSize: 2 << 20, BytesRead: 1 << 20, MBPerSec: 98.2},
		},
	}
	s.Vars.Journal = map[string]int64{"alert": 3, "drift": 1, "span": 900}
	s.Vars.JournalDropped = 2
	return s
}

// TestRenderFirstFrame: with no previous sample the frame still draws
// every section, with rates shown as "-".
func TestRenderFirstFrame(t *testing.T) {
	var b strings.Builder
	render(&b, nil, mkSample(time.Unix(100, 0), 10000))
	out := b.String()
	for _, want := range []string{
		"state running", "policy block", "2 workers",
		"packets 10000 (-)",
		"alerts 3", "drift 1", "journal drops 2",
		"SHARD", "[#####.....] 4/8", "feed",
		"decode:1 feed:3", "idle:1",
		"LANE", "decode", "12.0µs", "85.0µs",
		"READER", "2048/2048 KiB", "120.5 MB/s", "done",
		"1024/2048 KiB", "98.2 MB/s", "reading",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderRates: the second frame turns counter deltas into
// per-second rates over the poll gap.
func TestRenderRates(t *testing.T) {
	prev := mkSample(time.Unix(100, 0), 10000)
	cur := mkSample(time.Unix(102, 0), 13000) // +3000 packets over 2s
	var b strings.Builder
	render(&b, prev, cur)
	out := b.String()
	if !strings.Contains(out, "packets 13000 (1500/s)") {
		t.Errorf("frame missing packet rate:\n%s", out)
	}
	if !strings.Contains(out, "dropped 1 batches / 64 packets (0/s)") {
		t.Errorf("frame missing drop rate:\n%s", out)
	}
}

// TestQueueBar: occupancy clamps and scales.
func TestQueueBar(t *testing.T) {
	for _, tc := range []struct {
		n, cap int
		want   string
	}{
		{0, 8, "[..........] 0/8"},
		{8, 8, "[##########] 8/8"},
		{3, 0, "[..........] 3/0"},
	} {
		if got := queueBar(tc.n, tc.cap); got != tc.want {
			t.Errorf("queueBar(%d,%d) = %q, want %q", tc.n, tc.cap, got, tc.want)
		}
	}
}
