package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// statusDoc mirrors the engine's /statusz JSON document
// (stream.Status); unchartedtop decodes it over the wire rather than
// importing the engine, so it stays a pure HTTP client of the
// observability contract.
type statusDoc struct {
	State          string     `json:"state"`
	UptimeSeconds  float64    `json:"uptime_seconds"`
	Workers        int        `json:"workers"`
	Policy         string     `json:"policy"`
	Packets        int64      `json:"packets"`
	Batches        int64      `json:"batches"`
	Snapshots      int64      `json:"snapshots"`
	DroppedBatches int64      `json:"dropped_batches"`
	DroppedPackets int64      `json:"dropped_packets"`
	Stages         []stageRow  `json:"stages"`
	Shards         []shardRow  `json:"shards"`
	Readers        []readerRow `json:"readers"`
}

type readerRow struct {
	ID          int     `json:"id"`
	SegmentOff  int64   `json:"segment_off"`
	SegmentSize int64   `json:"segment_size"`
	BytesRead   int64   `json:"bytes_read"`
	MBPerSec    float64 `json:"mb_per_sec"`
	Done        bool    `json:"done"`
}

type stageRow struct {
	Stage string  `json:"stage"`
	Lane  string  `json:"lane"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

type shardRow struct {
	ID             int              `json:"id"`
	QueueLen       int              `json:"queue_len"`
	QueueCap       int              `json:"queue_cap"`
	Current        string           `json:"current_stage"`
	DroppedBatches int64            `json:"dropped_batches"`
	DroppedPackets int64            `json:"dropped_packets"`
	Stalls         map[string]int64 `json:"stalls_by_cause"`
	DropCauses     map[string]int64 `json:"drops_by_cause"`
}

// varsDoc is the slice of /debug/vars the dashboard uses.
type varsDoc struct {
	Journal        map[string]int64 `json:"journal_events"`
	JournalDropped int64            `json:"journal_dropped"`
	MemStats       *struct {
		HeapAlloc uint64 `json:"HeapAlloc"`
		NumGC     uint32 `json:"NumGC"`
	} `json:"memstats"`
}

// sample is one poll of the pipeline.
type sample struct {
	At     time.Time
	Addr   string
	Status statusDoc
	Vars   varsDoc
}

// render draws one frame. prev may be nil (first poll: rates show as
// "-"); rates are computed from the counter deltas over the wall time
// between the two samples.
func render(w io.Writer, prev, cur *sample) {
	st := &cur.Status
	fmt.Fprintf(w, "uncharted top — %s — state %s · uptime %s · policy %s · %d workers\n",
		cur.Addr, st.State, fmtUptime(st.UptimeSeconds), st.Policy, st.Workers)

	var dt float64
	if prev != nil {
		dt = cur.At.Sub(prev.At).Seconds()
	}
	rate := func(curV, prevV int64) string {
		if prev == nil || dt <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f/s", float64(curV-prevV)/dt)
	}
	pPrev := statusDoc{}
	if prev != nil {
		pPrev = prev.Status
	}
	fmt.Fprintf(w, "packets %d (%s) · batches %d (%s) · snapshots %d · dropped %d batches / %d packets (%s)\n",
		st.Packets, rate(st.Packets, pPrev.Packets),
		st.Batches, rate(st.Batches, pPrev.Batches),
		st.Snapshots,
		st.DroppedBatches, st.DroppedPackets, rate(st.DroppedPackets, pPrev.DroppedPackets))

	j := cur.Vars.Journal
	heap, gc := "-", "-"
	if ms := cur.Vars.MemStats; ms != nil {
		heap = fmt.Sprintf("%.1f MiB", float64(ms.HeapAlloc)/(1<<20))
		gc = fmt.Sprintf("%d", ms.NumGC)
	}
	fmt.Fprintf(w, "alerts %d · drift %d · journal drops %d · heap %s · gc %s\n\n",
		j["alert"], j["drift"], cur.Vars.JournalDropped, heap, gc)

	fmt.Fprintf(w, "%-5s %-22s %-10s %10s %10s  %-18s %s\n",
		"SHARD", "QUEUE", "STAGE", "DROP-B", "DROP-P", "STALLS", "DROPS-BY-CAUSE")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "%-5d %-22s %-10s %10d %10d  %-18s %s\n",
			sh.ID, queueBar(sh.QueueLen, sh.QueueCap), sh.Current,
			sh.DroppedBatches, sh.DroppedPackets,
			causeString(sh.Stalls), causeString(sh.DropCauses))
	}

	if len(st.Readers) > 0 {
		fmt.Fprintf(w, "\n%-7s %-22s %14s %14s %10s\n",
			"READER", "SEGMENT", "BYTES", "RATE", "STATE")
		for _, r := range st.Readers {
			state := "reading"
			if r.Done {
				state = "done"
			}
			fmt.Fprintf(w, "%-7d %-22s %14s %14s %10s\n",
				r.ID, queueBar(int(r.BytesRead>>10), int(r.SegmentSize>>10)),
				fmt.Sprintf("%d/%d KiB", r.BytesRead>>10, r.SegmentSize>>10),
				fmt.Sprintf("%.1f MB/s", r.MBPerSec), state)
		}
	}

	if len(st.Stages) > 0 {
		fmt.Fprintf(w, "\n%-10s %-10s %10s %10s %10s\n", "LANE", "STAGE", "SPANS", "P50", "P99")
		for _, sg := range st.Stages {
			fmt.Fprintf(w, "%-10s %-10s %10d %10s %10s\n",
				sg.Lane, sg.Stage, sg.Count, fmtLatency(sg.P50), fmtLatency(sg.P99))
		}
	}
}

// queueBar renders occupancy as "[####......] 4/10".
func queueBar(n, capacity int) string {
	const width = 10
	fill := 0
	if capacity > 0 {
		fill = width * n / capacity
		if fill > width {
			fill = width
		}
	}
	return fmt.Sprintf("[%s%s] %d/%d",
		strings.Repeat("#", fill), strings.Repeat(".", width-fill), n, capacity)
}

// causeString renders an attribution map as "feed:3 decode:1".
func causeString(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

func fmtLatency(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	}
	return fmt.Sprintf("%.3fs", s)
}

func fmtUptime(s float64) string {
	d := time.Duration(s * float64(time.Second))
	if d >= time.Minute {
		return d.Round(time.Second).String()
	}
	return d.Round(100 * time.Millisecond).String()
}
