// Command unchartedtop is a top-style terminal dashboard for a running
// uncharted pipeline (iec104live or profiler -follow). It polls the
// process's observability endpoint — /statusz?format=json for the
// engine topology and /debug/vars for metrics, journal counts and
// memstats — and redraws per-shard queue occupancy, backpressure and
// drop attribution, per-stage latency quantiles from the flight
// recorder, and packet/drop rates computed between polls.
//
// Usage:
//
//	unchartedtop -addr localhost:9104
//	unchartedtop -addr localhost:9104 -interval 500ms
//	unchartedtop -addr localhost:9104 -once      # one plain snapshot and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("unchartedtop: ")

	addr := flag.String("addr", "localhost:9104", "host:port (or full http:// URL) of the pipeline's -metrics endpoint")
	interval := flag.Duration("interval", 2*time.Second, "poll and redraw period")
	count := flag.Int("count", 0, "exit after this many polls (0 = run until interrupted)")
	once := flag.Bool("once", false, "print a single plain snapshot and exit (same as -count 1 -plain)")
	plain := flag.Bool("plain", false, "append frames instead of redrawing the terminal (no ANSI escapes)")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if *once {
		*count = 1
		*plain = true
	}

	client := &http.Client{Timeout: 5 * time.Second}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var prev *sample
	polls := 0
	for {
		cur, err := poll(client, base)
		if err != nil {
			log.Print(err)
			return 1
		}
		var b strings.Builder
		render(&b, prev, cur)
		if !*plain {
			// Home the cursor and clear below: a flicker-free redraw.
			fmt.Print("\x1b[H\x1b[2J")
		}
		os.Stdout.WriteString(b.String())
		prev = cur

		polls++
		if *count > 0 && polls >= *count {
			return 0
		}
		select {
		case <-sigs:
			return 0
		case <-time.After(*interval):
		}
	}
}

// poll fetches and decodes both documents, stamping the sample with
// the local receive time so render can turn deltas into rates.
func poll(client *http.Client, base string) (*sample, error) {
	s := &sample{At: time.Now(), Addr: strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")}
	if err := getJSON(client, base+"/statusz?format=json", &s.Status); err != nil {
		return nil, fmt.Errorf("statusz: %w (is the pipeline running with -metrics?)", err)
	}
	if err := getJSON(client, base+"/debug/vars", &s.Vars); err != nil {
		return nil, fmt.Errorf("debug/vars: %w", err)
	}
	return s, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
