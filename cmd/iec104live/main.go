// Command iec104live wires the traffic simulator straight into the
// streaming analysis engine: no pcap on disk, records become decoded
// packets in process and fan out to worker shards while the rolling
// profile is served over HTTP. It is the live-operation demo of the
// pipeline — interrupting it drains the shards gracefully and prints
// the exact final profile as JSON.
//
// With -attack an Industroyer-style scenario is injected mid-feed and
// an online detector (one ids.Monitor per shard, trained on a clean
// run of the same grid) raises alerts the moment the offending frames
// pass through.
//
// With -pcap the identical traffic is also written as a capture, so
// the streamed profile can be cross-checked against the offline
// profiler:
//
//	iec104live -pcap same.pcap >live.json
//	profiler same.pcap
//
// With -trace the flight recorder samples stage spans across the
// whole pipeline and writes a Chrome trace_event JSON file on drain
// (or on SIGUSR1 mid-run) that loads in chrome://tracing and
// Perfetto; -metrics additionally serves /statusz (live pipeline
// topology), /readyz and the pprof endpoints — poll them with
// cmd/unchartedtop for a top-style view.
//
// Usage:
//
//	iec104live                       # 2 simulated minutes, as fast as possible
//	iec104live -speed 60 -metrics :9104
//	iec104live -attack recon -workers 4
//	iec104live -workers 4 -trace out.json   # then open out.json in Perfetto
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pipeline"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("iec104live: ")

	year := flag.Int("year", 1, "capture year to simulate (1 or 2)")
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Duration("duration", 2*time.Minute, "simulated feed length")
	speed := flag.Float64("speed", 0, "replay speed multiple (60 = one simulated minute per wall second; 0 = as fast as possible)")
	workers := flag.Int("workers", 2, "analysis shards")
	readers := flag.Int("readers", 0, "parallel capture readers configured on the engine (0 = match -workers; engages when a seekable capture is handed off, inert on the live sim feed)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /profile on this address (e.g. :9104)")
	snapshotEvery := flag.Duration("snapshot", time.Second, "rolling-profile period")
	attack := flag.String("attack", "", "inject an attack mid-feed and detect it online: recon, breaker or setpoint")
	pcapOut := flag.String("pcap", "", "also write the fed traffic as a capture for offline cross-checking")
	journalPath := flag.String("journal", "", "append structured pipeline events to this JSONL file")
	historianDir := flag.String("historian", "", "record every extracted measurement into the durable historian at this directory (adds /query next to /metrics)")
	pointCap := flag.Int("point-cap", 0, "cap in-memory samples per series; pair with -historian for bounded-memory long feeds (0 = unbounded)")
	tracePath := flag.String("trace", "", "record sampled stage spans and write a Chrome trace_event JSON file here on drain (open in chrome://tracing or Perfetto; SIGUSR1 dumps mid-run)")
	traceSample := flag.Int("trace-sample", 64, "with -trace, record 1 in N span starts per lane")
	flag.Parse()

	y := topology.Y1
	if *year == 2 {
		y = topology.Y2
	}

	var observer func(int) core.FrameObserver
	var alertMu sync.Mutex
	alerts := 0
	if *attack != "" {
		switch *attack {
		case "recon", "breaker", "setpoint":
		default:
			log.Printf("unknown -attack %q (want recon, breaker or setpoint)", *attack)
			return 2
		}
		// Train on a clean run of the same grid and length (a different
		// seed, like training on yesterday's capture).
		baseline, err := pipeline.TrainBaseline(y, *seed+1000, *duration)
		if err != nil {
			log.Print(err)
			return 1
		}
		eps, conns, points := baseline.Size()
		log.Printf("online detector armed: %d endpoints, %d connections, %d physical points whitelisted",
			eps, conns, points)
		// Monitors are per shard (no locking inside), but they share the
		// alert sink, so the sink serialises itself.
		observer = func(shard int) core.FrameObserver {
			return ids.NewMonitor(baseline, func(al ids.Alert) {
				alertMu.Lock()
				defer alertMu.Unlock()
				alerts++
				log.Printf("ALERT [shard %d] %v", shard, al)
			})
		}
	}

	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	reg := obs.NewRegistry()
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.New(trace.Config{SampleEvery: *traceSample, Registry: reg})
		stopDump := rec.DumpOnSIGUSR1(*tracePath, log.Printf)
		defer stopDump()
		log.Printf("flight recorder armed: sampling 1 in %d spans, SIGUSR1 dumps %s", *traceSample, *tracePath)
	}
	if *historianDir != "" {
		log.Printf("recording measurements into historian at %s", *historianDir)
	}

	// The sim→analyzer graph is the same declared pipeline a
	// cmd/pipelined config would build; the simulator runs (and the
	// attack is injected) while the runner constructs the segments.
	graph, hooks := pipeline.LiveGraph(pipeline.LivePreset{
		Year:          *year,
		Seed:          int(*seed),
		Duration:      *duration,
		Speed:         *speed,
		Attack:        *attack,
		Workers:       *workers,
		Readers:       *readers,
		SnapshotEvery: *snapshotEvery,
		HistorianDir:  *historianDir,
		PointCap:      *pointCap,
		Trace:         rec,
		Observer:      observer,
	})
	runner, err := pipeline.NewRunner(graph, pipeline.Options{
		Registry: reg,
		Journal:  journal,
		Logf:     log.Printf,
		Hooks:    hooks,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	simIn := runner.Segment("live", "sim").(*pipeline.SimInput)
	an := runner.Segment("live", "an").(*pipeline.AnalyzerSegment)
	e := an.Engine()

	if *pcapOut != "" {
		pf, err := os.Create(*pcapOut)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := simIn.Trace().WritePCAP(pf); err != nil {
			log.Print(err)
			pf.Close()
			return 1
		}
		if err := pf.Close(); err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("wrote equivalent capture to %s", *pcapOut)
	}

	if *metricsAddr != "" {
		eps := stream.Endpoints(e, an.Historian())
		for p, h := range runner.Endpoints() {
			eps[p] = h
		}
		addr, shutdown, err := obs.ServeWith(*metricsAddr, reg, journal, eps)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer shutdown()
		log.Printf("serving metrics, rolling profile and /statusz on http://%s/", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("feeding %s of simulated traffic (%d records) through %d shard(s); interrupt to drain",
		*duration, len(simIn.Trace().Records), *workers)
	exit := 0
	start := time.Now()
	err = runner.Run(ctx)
	switch {
	case err != nil:
		log.Printf("stream failed: %v", err)
		exit = 1
	case ctx.Err() != nil:
		log.Printf("interrupted after %s, shards drained", time.Since(start).Round(time.Millisecond))
	default:
		log.Printf("feed exhausted in %s", time.Since(start).Round(time.Millisecond))
	}
	if *attack != "" {
		log.Printf("online alerts raised: %d", alerts)
	}
	if rec != nil {
		if err := rec.WriteChromeTraceFile(*tracePath); err != nil {
			log.Printf("warning: trace export failed: %v", err)
			exit = 1
		} else {
			log.Printf("wrote Chrome trace to %s (open in chrome://tracing or Perfetto)", *tracePath)
		}
	}

	// The final profile is exact: every dispatched packet was analyzed
	// before the shards shut down.
	if prof := e.Profile(); prof != nil {
		if err := prof.WriteJSON(os.Stdout); err != nil {
			log.Print(err)
			exit = 1
		}
	}
	if err := journal.Err(); err != nil {
		log.Printf("warning: journal write failed: %v", err)
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}
