// Command unchartedd is the control-room daemon: it hosts N tenants —
// balancing authorities, capture eras, single captures — each with its
// own streaming engine and historian namespace, behind one multi-tenant
// HTTP API with a snapshot-keyed response cache and remote-probe
// aggregation (internal/service).
//
// The tenant list comes from a JSON config file:
//
//	{
//	  "listen": ":9180",
//	  "historian_root": "/var/lib/uncharted",
//	  "tenants": [
//	    {"name": "east", "source": {"kind": "sim", "year": 1, "seed": 7, "speed": 60},
//	     "workers": 2, "historian": true},
//	    {"name": "west", "source": {"kind": "pcap", "path": "west.pcap"}},
//	    {"name": "fleet", "source": {"kind": "probe"}}
//	  ]
//	}
//
// The query surface per tenant is the same one the single-engine
// commands serve — /v1/{tenant}/profile, /drift, /query, /statusz —
// plus /v1/{tenant}/partial, where remote probes (profiler -push) post
// drift-codec partials that merge into the tenant's fleet profile at
// /v1/{tenant}/fleet. /metrics carries every tenant's series with a
// tenant label.
//
// SIGINT/SIGTERM drains every tenant's engine gracefully (shards
// finish their batches, final profiles publish) before exit.
//
// Usage:
//
//	unchartedd -config control-room.json
//	unchartedd -config control-room.json -addr :9180 -journal events.jsonl
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"uncharted/internal/obs"
	"uncharted/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	configPath := flag.String("config", "", "service config file (JSON); required")
	addr := flag.String("addr", "", "HTTP listen address (overrides the config's listen; default :9180)")
	journalPath := flag.String("journal", "", "append structured pipeline events to this JSONL file")
	flag.Parse()

	if *configPath == "" {
		flag.Usage()
		return 2
	}
	cfg, err := service.LoadConfig(*configPath)
	if err != nil {
		log.Printf("load config: %v", err)
		return 1
	}
	listen := cfg.Listen
	if *addr != "" {
		listen = *addr
	}
	if listen == "" {
		listen = ":9180"
	}

	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Printf("journal: %v", err)
			return 1
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	reg := obs.NewRegistry()
	svc, err := service.New(cfg, reg, journal)
	if err != nil {
		log.Printf("%v", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	svc.Start(ctx)

	bound, shutdown, err := obs.ServeWith(listen, reg, journal, svc.Endpoints())
	if err != nil {
		log.Printf("listen %s: %v", listen, err)
		return 1
	}
	log.Printf("unchartedd: serving %d tenants on http://%s/v1/", len(svc.Tenants()), bound)

	<-ctx.Done()
	log.Printf("unchartedd: draining tenants")
	svc.Drain()
	shutdown()
	for _, name := range svc.Tenants() {
		if terr := svc.Tenant(name).Err(); terr != nil {
			log.Printf("tenant %s: %v", name, terr)
		}
	}
	if err := journal.Err(); err != nil {
		log.Printf("warning: journal write failed: %v", err)
	}
	return 0
}
