// Command iec104station runs live IEC 104 endpoints over real TCP: an
// outstation (controlled station) serving a point table, or a control
// station that dials one, interrogates it and tails its reports. The
// two modes interoperate with each other and with third-party IEC 104
// implementations.
//
// Usage:
//
//	iec104station serve -listen :2404 -ca 29 [-dialect legacy-cot8] [-reject]
//	iec104station poll  -addr 127.0.0.1:2404 -ca 29 [-dialect legacy-cot8]
//	iec104station poll  -addr 127.0.0.1:2404 -ca 29 -setpoint 7001=58.5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/station"
)

// serveMetrics starts the observability endpoint when addr is set and
// returns its shutdown function (a no-op for an empty addr). The
// handler also exposes /healthz and the net/http/pprof endpoints, so a
// long-lived station can be probed and profiled in place.
func serveMetrics(addr string) func() error {
	if addr == "" {
		return func() error { return nil }
	}
	bound, stop, err := obs.Serve(addr, obs.Default, nil)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("metrics on http://%s/metrics", bound)
	return stop
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("iec104station: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: iec104station serve|poll [flags]")
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "poll":
		poll(os.Args[2:])
	default:
		log.Fatalf("unknown mode %q (want serve or poll)", os.Args[1])
	}
}

func parseDialect(s string) iec104.Profile {
	switch s {
	case "", "standard":
		return iec104.Standard
	case "legacy-cot8":
		return iec104.LegacyCOT
	case "legacy-ioa16":
		return iec104.LegacyIOA
	}
	log.Fatalf("unknown dialect %q (standard, legacy-cot8, legacy-ioa16)", s)
	return iec104.Standard
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:2404", "listen address")
	ca := fs.Uint("ca", 29, "common (ASDU) address")
	dialect := fs.String("dialect", "standard", "wire dialect")
	reject := fs.Bool("reject", false, "reset connections after the first APDU (the Fig. 9 pathology)")
	wander := fs.Duration("wander", 2*time.Second, "interval between spontaneous value updates (0 = static)")
	metrics := fs.String("metrics", "", "serve Prometheus /metrics and /debug/vars on this address")
	fs.Parse(args)

	rtu := station.NewOutstation(uint16(*ca))
	rtu.Profile = parseDialect(*dialect)
	rtu.RejectConnections = *reject
	rtu.Logf = log.Printf
	rtu.OnCommand = func(ioa uint32, v float64) {
		log.Printf("accepted setpoint IOA %d = %.2f", ioa, v)
	}
	// A generator RTU's point table.
	rtu.AddPoint(station.PointDef{IOA: 1001, Type: iec104.MMeTf, Value: 62})
	rtu.AddPoint(station.PointDef{IOA: 1002, Type: iec104.MMeTf, Value: 60.0})
	rtu.AddPoint(station.PointDef{IOA: 1003, Type: iec104.MMeNc, Value: 129.9})
	rtu.AddPoint(station.PointDef{IOA: 3001, Type: iec104.MDpNa, Value: 2})
	rtu.AddPoint(station.PointDef{IOA: 7001, Type: iec104.CSeNc, Value: 62})

	if *metrics != "" {
		rtu.Instrument(obs.Default, nil)
		defer serveMetrics(*metrics)()
	}
	addr, err := rtu.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("outstation ca=%d dialect=%s listening on %s", *ca, rtu.Profile, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *wander > 0 {
		go func() {
			p := 62.0
			tick := time.NewTicker(*wander)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				p += 0.6 * float64((i%7)-3) / 3
				if err := rtu.SetValue(1001, p); err != nil {
					return
				}
			}
		}()
	}
	<-ctx.Done()
	rtu.Close()
}

func poll(args []string) {
	fs := flag.NewFlagSet("poll", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:2404", "outstation address")
	ca := fs.Uint("ca", 29, "common (ASDU) address")
	dialect := fs.String("dialect", "standard", "wire dialect")
	setpoint := fs.String("setpoint", "", "send one setpoint as ioa=value and exit")
	tail := fs.Duration("tail", 10*time.Second, "how long to tail spontaneous reports")
	metrics := fs.String("metrics", "", "serve Prometheus /metrics and /debug/vars on this address")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	cs, err := station.Dial(dctx, *addr, parseDialect(*dialect))
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	if *metrics != "" {
		cs.Instrument(obs.Default, nil)
		defer serveMetrics(*metrics)()
	}
	cs.OnMeasurement = func(m station.Measurement) {
		fmt.Printf("%s ioa=%-6d %-10s v=%-10.3f cause=%s\n",
			m.At.Format("15:04:05.000"), m.IOA, m.Type.Acronym(), m.Value, m.Cause)
	}

	if *setpoint != "" {
		parts := strings.SplitN(*setpoint, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -setpoint %q, want ioa=value", *setpoint)
		}
		ioa, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			log.Fatal(err)
		}
		val, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := cs.SendSetpoint(ctx, uint16(*ca), uint32(ioa), val); err != nil {
			log.Fatal(err)
		}
		log.Printf("setpoint %d=%.3f confirmed", ioa, val)
		return
	}

	log.Printf("interrogating ca=%d", *ca)
	if err := cs.Interrogate(ctx, uint16(*ca)); err != nil {
		log.Fatal(err)
	}
	log.Printf("tailing spontaneous reports for %v (ctrl-c to stop)", *tail)
	select {
	case <-ctx.Done():
	case <-time.After(*tail):
	}
}
