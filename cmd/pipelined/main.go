// Command pipelined runs declared pipeline graphs: a JSON/JSONC
// config names pipelines as DAGs of registered segments — inputs,
// filters, analysis stages and outputs — and one process hosts the
// whole fleet of them side by side. Interrupting it stops the inputs
// and drains every graph; analyzers publish their exact final state
// on the way out.
//
// The HTTP surface (with -addr) serves /metrics and /debug/vars, a
// combined /statusz showing every pipeline's live graph (per-segment
// state, queue depths, throughput, stalls), and every
// segment-registered endpoint under /pipelines/{pipeline}/...
// (profiles, drift reports, historian queries, probe receivers).
//
// Usage:
//
//	pipelined config.jsonc                 # run until inputs exhaust or SIGINT
//	pipelined -addr :9190 config.jsonc     # with the HTTP surface
//	pipelined -validate config.jsonc ...   # parse + schema + graph checks only
//	pipelined -segments                    # print the segment catalog
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/pipeline"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("pipelined: ")

	addr := flag.String("addr", "", "serve /metrics, /statusz and /pipelines/... on this address (e.g. :9190)")
	journalPath := flag.String("journal", "", "append structured events from every pipeline to this JSONL file")
	queueDepth := flag.Int("queue", 64, "per-edge buffer in messages")
	validate := flag.Bool("validate", false, "parse, schema-check and graph-check the config(s), then exit (0 = valid)")
	segments := flag.Bool("segments", false, "print the segment catalog and exit")
	flag.Parse()

	if *segments {
		printCatalog()
		return 0
	}
	if *validate {
		return runValidate(flag.Args())
	}
	if flag.NArg() != 1 {
		log.Print("usage: pipelined [-addr :9190] [-journal events.jsonl] config.jsonc")
		return 2
	}

	cfg, err := pipeline.Load(flag.Arg(0))
	if err != nil {
		printErrors(err)
		return 1
	}

	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer jf.Close()
		journal = obs.NewJournal(jf)
	}

	reg := obs.NewRegistry()
	runner, err := pipeline.NewRunner(cfg, pipeline.Options{
		Registry:   reg,
		Journal:    journal,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		printErrors(err)
		return 1
	}

	if *addr != "" {
		a, shutdown, err := obs.ServeWith(*addr, reg, journal, runner.Endpoints())
		if err != nil {
			log.Print(err)
			return 1
		}
		defer shutdown()
		log.Printf("serving /metrics, /statusz and /pipelines/... on http://%s/", a)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := runner.Pipelines()
	log.Printf("running %d pipeline(s): %s; interrupt to drain", len(names), strings.Join(names, ", "))
	start := time.Now()
	err = runner.Run(ctx)
	elapsed := time.Since(start).Round(time.Millisecond)

	exit := 0
	if err != nil {
		printErrors(err)
		exit = 1
	}
	if ctx.Err() != nil {
		log.Printf("interrupted after %s, graphs drained", elapsed)
	} else {
		log.Printf("all inputs exhausted in %s", elapsed)
	}
	for _, st := range runner.Status() {
		var pkts, stalls int64
		for _, s := range st.Segments {
			if s.PktsOut > pkts {
				pkts = s.PktsOut
			}
			stalls += s.Stalls
		}
		log.Printf("pipeline %s: %d segments, %d packets at the widest edge, %d stalls",
			st.Name, len(st.Segments), pkts, stalls)
	}
	if journal != nil {
		if jerr := journal.Err(); jerr != nil {
			log.Printf("warning: journal write failed: %v", jerr)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// runValidate dry-runs every config: parse, schema-check and
// graph-check, without building a single segment. Errors name the
// config path and line.
func runValidate(paths []string) int {
	if len(paths) == 0 {
		log.Print("usage: pipelined -validate config.jsonc [more.jsonc ...]")
		return 2
	}
	exit := 0
	for _, path := range paths {
		cfg, err := pipeline.Load(path)
		if err == nil {
			err = cfg.Validate()
		}
		if err != nil {
			printErrors(err)
			exit = 1
			continue
		}
		total := 0
		for _, pc := range cfg.Pipelines {
			total += len(pc.Nodes)
		}
		log.Printf("%s: ok (%d pipelines, %d segments)", path, len(cfg.Pipelines), total)
	}
	return exit
}

// printErrors prints one line per joined error so a config with five
// problems reports all five.
func printErrors(err error) {
	for _, line := range strings.Split(err.Error(), "\n") {
		log.Print(line)
	}
}

// printCatalog renders the segment catalog: every registered kind,
// its role, ports and parameter schema.
func printCatalog() {
	fmt.Println("Registered segments (config key: \"segment\"):")
	fmt.Println()
	role := ""
	for _, s := range pipeline.Catalog() {
		if string(s.Role) != role {
			role = string(s.Role)
			fmt.Printf("%s segments:\n", strings.ToUpper(role[:1])+role[1:])
		}
		ports := portLabel(s.In) + " -> " + portLabel(s.Out)
		fmt.Printf("  %-14s %-22s %s\n", s.Kind, ports, s.Doc)
		for _, p := range s.Params {
			req := ""
			if p.Required {
				req = ", required"
			} else if p.Default != nil {
				req = fmt.Sprintf(", default %v", p.Default)
			}
			fmt.Printf("      %-18s %s%s — %s\n", p.Name, p.Type, req, p.Doc)
		}
		fmt.Println()
	}
}

func portLabel(p pipeline.PortType) string {
	if p == pipeline.PortNone {
		return "(none)"
	}
	return string(p)
}
