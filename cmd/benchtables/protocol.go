package main

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"uncharted/internal/c37118"
	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/modbus"
	"uncharted/internal/protocol"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// protocolBench builds the BENCH_protocol.json rows: per-dialect
// session decode throughput through the registry (the generic path the
// multi-protocol analyzer runs), plus the offline analyzer over a mixed
// IEC 104 + C37.118 + Modbus capture in auto-detect mode. Read
// analyzer_mixed_auto against analyzer_offline_capture in
// BENCH_core.json: the registry fan-out is budgeted to cost under 10%
// of the single-protocol throughput.
func protocolBench(scale float64, seed int64) ([]BenchResult, error) {
	// decodeRow replays a prepared frame stream through a fresh session
	// per iteration — steady-state framing with no TCP layer, so the
	// MB/s is the codec itself.
	decodeRow := func(name string, id protocol.ID, buf []byte) BenchResult {
		d := protocol.Get(id)
		return toBenchResult(name, testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := d.NewSession()
				rest := buf
				for len(rest) > 0 {
					var ok bool
					_, rest, _, ok = sess.Next(rest, true)
					if !ok {
						break
					}
				}
			}
		}))
	}

	const frames = 256

	iframe, err := iec104.NewI(3, 4, iec104.NewMeasurement(
		iec104.MMeTf, 5, 1201, iec104.Value{Kind: iec104.KindFloat, Float: 60.01, HasTime: true},
		iec104.CauseSpontaneous)).Marshal(iec104.Standard)
	if err != nil {
		return nil, err
	}
	iecBuf := bytes.Repeat(iframe, frames)

	cfg := &c37118.Config{
		IDCode: 7,
		Time:   time.Unix(1560000000, 0).UTC(),
		PMUs: []c37118.PMUConfig{{
			StationName: "BENCH", IDCode: 8,
			PhasorNames: []string{"VA", "VB", "IA"}, NominalFreq: 60, ConversionFactor: 0.01,
		}},
		DataRate: 30,
	}
	cfgFrame, err := cfg.Marshal()
	if err != nil {
		return nil, err
	}
	var c37Buf []byte
	c37Buf = append(c37Buf, cfgFrame...)
	for i := 0; i < frames; i++ {
		df, err := (&c37118.Data{
			IDCode: 7,
			Time:   cfg.Time.Add(time.Duration(i) * time.Second / 30),
			PMUs: []c37118.PMUData{{
				Phasors: []c37118.Phasor{{Magnitude: 132000}, {Magnitude: 131900}, {Magnitude: 420}},
				Freq:    60.002,
			}},
		}).Marshal(cfg)
		if err != nil {
			return nil, err
		}
		c37Buf = append(c37Buf, df...)
	}

	var mbBuf []byte
	vals := []uint16{3000, 3040, 3081, 3122, 3160, 3199}
	for i := 0; i < frames/2; i++ {
		mbBuf = append(mbBuf, modbus.ReadRequest(uint16(i), 1, modbus.FuncReadHolding, 100, 6)...)
		mbBuf = append(mbBuf, modbus.ReadRegistersResponse(uint16(i), 1, modbus.FuncReadHolding, vals)...)
	}

	rows := []BenchResult{
		decodeRow("decode_iec104", protocol.IEC104, iecBuf),
		decodeRow("decode_c37118", protocol.C37118, c37Buf),
		decodeRow("decode_modbus", protocol.Modbus, mbBuf),
	}

	// The mixed-capture row: same topology and duration as
	// analyzer_offline_capture plus the Modbus association and the
	// registry running in auto-detect, so the two rows read as
	// single-protocol vs multi-protocol ingest throughput.
	mixedCfg := scadasim.DefaultConfig(topology.Y1, seed)
	mixedCfg.Duration = time.Duration(float64(mixedCfg.Duration) * scale)
	mixedCfg.EnableModbus = true
	sim, err := scadasim.New(mixedCfg)
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run()
	if err != nil {
		return nil, err
	}
	var capture bytes.Buffer
	if err := tr.WritePCAP(&capture); err != nil {
		return nil, err
	}
	names := core.NamesFromTopology(sim.Network())
	rows = append(rows, toBenchResult("analyzer_mixed_auto", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(capture.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.NewAnalyzer(names)
			a.EnableProtocolDetect()
			if err := a.ReadPCAP(bytes.NewReader(capture.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})))
	return rows, nil
}

// printProtocolOverhead reads the mixed-capture analyzer row against
// the single-protocol baseline row and prints the throughput delta the
// 10% budget is judged on.
func printProtocolOverhead(rows, coreRows []BenchResult) string {
	var mixed, base BenchResult
	for _, r := range rows {
		if r.Name == "analyzer_mixed_auto" {
			mixed = r
		}
	}
	for _, r := range coreRows {
		if r.Name == "analyzer_offline_capture" {
			base = r
		}
	}
	if mixed.MBPerSec == 0 || base.MBPerSec == 0 {
		return ""
	}
	return fmt.Sprintf("multi-protocol ingest: %.1f MB/s mixed+auto vs %.1f MB/s iec104-only (%+.1f%%)",
		mixed.MBPerSec, base.MBPerSec, 100*(mixed.MBPerSec-base.MBPerSec)/base.MBPerSec)
}
