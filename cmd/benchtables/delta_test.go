package main

import (
	"strings"
	"testing"
)

// TestPrintScalingWarns: a sublinear 4-shard ratio prints the ratio
// and the warning pointing at the flight recorder.
func TestPrintScalingWarns(t *testing.T) {
	rows := []BenchResult{
		{Name: "engine_1shard", MBPerSec: 67.85},
		{Name: "engine_2shard", MBPerSec: 63.97},
		{Name: "engine_4shard", MBPerSec: 64.74},
	}
	var b strings.Builder
	printScaling(&b, rows)
	out := b.String()
	if !strings.Contains(out, "= 0.95x") {
		t.Errorf("scaling report missing ratio:\n%s", out)
	}
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "-trace") {
		t.Errorf("sublinear scaling did not warn:\n%s", out)
	}
}

// TestPrintScalingBelowBar: a ratio above break-even but under the
// 1.5x bar still warns — with parallel ingest, merely not losing is a
// regression.
func TestPrintScalingBelowBar(t *testing.T) {
	var b strings.Builder
	printScaling(&b, []BenchResult{
		{Name: "engine_1shard", MBPerSec: 50},
		{Name: "engine_4shard", MBPerSec: 60},
	})
	out := b.String()
	if !strings.Contains(out, "= 1.20x") || !strings.Contains(out, "WARNING") {
		t.Errorf("1.2x scaling did not warn against the 1.5x bar:\n%s", out)
	}
}

// TestPrintScalingQuietWhenScaling: a healthy ratio reports without
// warning, and missing rows print nothing at all.
func TestPrintScalingQuietWhenScaling(t *testing.T) {
	var b strings.Builder
	printScaling(&b, []BenchResult{
		{Name: "engine_1shard", MBPerSec: 50},
		{Name: "engine_4shard", MBPerSec: 150},
		{Name: "engine_4shard_4reader", MBPerSec: 175},
	})
	out := b.String()
	if !strings.Contains(out, "= 3.00x") {
		t.Errorf("scaling report missing ratio:\n%s", out)
	}
	if !strings.Contains(out, "engine_4shard_4reader") || !strings.Contains(out, "= 3.50x") {
		t.Errorf("segmented row missing from scaling report:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("healthy scaling warned:\n%s", out)
	}

	b.Reset()
	printScaling(&b, []BenchResult{{Name: "engine_1shard", MBPerSec: 50}})
	if b.Len() != 0 {
		t.Errorf("missing 4-shard row still printed: %q", b.String())
	}
}
