// Command benchtables regenerates every table and figure of the
// paper's evaluation from synthesized captures and prints (or writes)
// the paper-vs-measured reports. EXPERIMENTS.md is produced from this
// tool's output.
//
// Usage:
//
//	benchtables                 # all experiments at default scale
//	benchtables -exp table3     # one experiment
//	benchtables -scale 0.2 -out results/   # faster, write files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"uncharted/internal/experiments"
	"uncharted/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	exp := flag.String("exp", "", "experiment id to regenerate (empty = all); one of: "+
		strings.Join(experiments.NewRunner(1, 1).IDs(), ", "))
	scale := flag.Float64("scale", 1, "capture duration scale (lower = faster)")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("out", "", "directory to write per-experiment .txt files (empty = stdout)")
	asJSON := flag.Bool("json", false, "emit results as a JSON array on stdout")
	bench := flag.Bool("bench", false,
		"run the pipeline benchmarks instead of the experiments and write BENCH_core.json / BENCH_stream.json to -out (default .)")
	baseline := flag.String("baseline", ".",
		"directory with previous BENCH_*.json to print an old-vs-new delta table against in -bench mode (empty disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *bench {
		dir := *out
		if dir == "" {
			dir = "."
		}
		if err := runBench(dir, *baseline, *scale, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	r := experiments.NewRunner(*scale, *seed)
	var results []experiments.Result
	if *exp == "" {
		var err error
		results, err = r.RunAll()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res, err := r.Run(*exp)
		if err != nil {
			log.Fatal(err)
		}
		results = []experiments.Result{res}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, res := range results {
		if *out == "" {
			fmt.Printf("================ %s — %s ================\n%s\n", res.ID, res.Title, res.Text)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, res.ID+".txt")
		body := fmt.Sprintf("%s — %s\n\n%s", res.ID, res.Title, res.Text)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
}
