package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// benchFiles are the benchmark JSON files runBench maintains, in the
// order they are written.
var benchFiles = []string{
	"BENCH_core.json",
	"BENCH_stream.json",
	"BENCH_historian.json",
	"BENCH_drift.json",
	"BENCH_pipeline.json",
	"BENCH_protocol.json",
}

// loadBenchFile reads a previously written benchmark file into a
// name-keyed map for delta reporting.
func loadBenchFile(path string) (map[string]BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []BenchResult
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]BenchResult, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out, nil
}

// printDelta renders the old-vs-new comparison for one benchmark file.
// A missing baseline prints nothing (first run, or -baseline ""); rows
// without a baseline counterpart are marked new.
func printDelta(w io.Writer, title string, old map[string]BenchResult, rows []BenchResult) {
	if len(old) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s vs baseline (old -> new):\n", title)
	fmt.Fprintf(w, "  %-26s %-30s %-28s %s\n", "benchmark", "ns/op", "MB/s", "allocs/op")
	for _, r := range rows {
		o, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(w, "  %-26s (no baseline row)\n", r.Name)
			continue
		}
		fmt.Fprintf(w, "  %-26s %-30s %-28s %s\n", r.Name,
			deltaCell(o.NsPerOp, r.NsPerOp),
			deltaCell(o.MBPerSec, r.MBPerSec),
			deltaCell(float64(o.AllocsPerOp), float64(r.AllocsPerOp)))
	}
}

// deltaCell formats "old -> new (+x.x%)"; a zero pair (e.g. MB/s on a
// row with no byte throughput) collapses to a dash.
func deltaCell(old, new float64) string {
	if old == 0 && new == 0 {
		return "-"
	}
	cell := fmtNum(old) + " -> " + fmtNum(new)
	if old != 0 {
		cell += fmt.Sprintf(" (%+.1f%%)", (new-old)/old*100)
	}
	return cell
}

// scalingWarnBelow is the 4-shard/1-shard throughput ratio under
// which printScaling flags the run. With the segmented N-reader ingest
// the parallel configuration is expected to actually pull ahead on a
// multi-core box, so the bar is 1.5x rather than break-even; a miss
// means the fan-out overhead (routing, queue handoff, merge) ate the
// parallelism — exactly what the flight recorder's stage spans and
// backpressure attribution exist to localise. (On a single-CPU runner
// the warning is informational: no ratio above 1.0 is reachable.)
const scalingWarnBelow = 1.5

// printScaling reports how engine throughput scales from 1 to 4
// shards using the MB/s columns of the BENCH_stream.json rows, and
// warns when the ratio is below scalingWarnBelow. The segmented
// engine_4shard_4reader row is reported against the same 1-shard base
// when present. Missing rows (or rows without throughput) print
// nothing.
func printScaling(w io.Writer, rows []BenchResult) {
	byName := make(map[string]BenchResult, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	one, four := byName["engine_1shard"], byName["engine_4shard"]
	if one.MBPerSec == 0 || four.MBPerSec == 0 {
		return
	}
	ratio := four.MBPerSec / one.MBPerSec
	fmt.Fprintf(w, "\nshard scaling: engine_4shard %.2f MB/s / engine_1shard %.2f MB/s = %.2fx\n",
		four.MBPerSec, one.MBPerSec, ratio)
	if seg := byName["engine_4shard_4reader"]; seg.MBPerSec > 0 {
		fmt.Fprintf(w, "segmented ingest: engine_4shard_4reader %.2f MB/s / engine_1shard %.2f MB/s = %.2fx\n",
			seg.MBPerSec, one.MBPerSec, seg.MBPerSec/one.MBPerSec)
	}
	if ratio < scalingWarnBelow {
		fmt.Fprintf(w, "WARNING: 4-shard scaling below %.1fx (%.2fx); profile the pipeline with -trace / /statusz to attribute the stall\n",
			scalingWarnBelow, ratio)
	}
}

// fmtNum keeps big counts readable without scientific notation.
func fmtNum(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
