package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/service"
)

// serviceP99WarnFactor flags a control-room latency regression: when
// the new overall p99 exceeds the baseline's by more than this factor
// the delta table prints a WARNING, mirroring the shard-scaling check
// on BENCH_stream.json.
const serviceP99WarnFactor = 1.5

// serviceBenchFile is the committed load report the delta compares.
const serviceBenchFile = "BENCH_service.json"

// runServiceBench boots a 2-tenant control-room service in process
// (both tenants fed by the simulator, historian enabled on one),
// drives the mixed read workload against it with the loadgen library,
// writes BENCH_service.json to dir and prints the delta against the
// baseline report.
func runServiceBench(dir, baselineDir string, scale float64, seed int64) error {
	var old *service.LoadReport
	if baselineDir != "" {
		old, _ = service.LoadLoadReport(filepath.Join(baselineDir, serviceBenchFile))
	}

	histRoot, err := os.MkdirTemp("", "benchsvc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(histRoot)

	cfg := service.Config{
		HistorianRoot: histRoot,
		Tenants: []service.TenantConfig{
			{
				Name:      "east",
				Source:    service.SourceConfig{Kind: "sim", Year: 1, Seed: seed},
				Workers:   2,
				Snapshot:  service.Duration(500 * time.Millisecond),
				Historian: true,
			},
			{
				Name:     "west",
				Source:   service.SourceConfig{Kind: "sim", Year: 2, Seed: seed + 1},
				Workers:  2,
				Snapshot: service.Duration(500 * time.Millisecond),
			},
		},
	}
	reg := obs.NewRegistry()
	svc, err := service.New(cfg, reg, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	addr, shutdown, err := obs.ServeWith("127.0.0.1:0", reg, nil, svc.Endpoints())
	if err != nil {
		return err
	}
	defer shutdown()
	base := "http://" + addr.String()

	if err := service.WaitReady(ctx, base, 60*time.Second); err != nil {
		return err
	}

	// Scale the load with the capture scale so -scale 0.05 CI smoke
	// runs stay cheap while a full run exercises 1000 clients.
	clients := int(1000 * scale)
	if clients < 64 {
		clients = 64
	}
	duration := time.Duration(float64(5*time.Second) * scale)
	if duration < time.Second {
		duration = time.Second
	}
	rep, err := service.RunLoad(ctx, service.LoadOptions{
		BaseURL:  base,
		Tenants:  []string{"east", "west"},
		Clients:  clients,
		Duration: duration,
		Mix:      map[string]int{"profile": 8, "query": 2, "statusz": 1},
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	svc.Drain()

	path := filepath.Join(dir, serviceBenchFile)
	if err := service.WriteLoadReport(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchtables: wrote %s\n", path)
	printServiceDelta(os.Stdout, old, rep)
	return nil
}

// printServiceDelta renders the control-room load comparison: overall
// p99 latency, request throughput and cache hit ratio, old vs new,
// warning on a p99 regression beyond serviceP99WarnFactor.
func printServiceDelta(w io.Writer, old, rep *service.LoadReport) {
	fmt.Fprintf(w, "\ncontrol-room service load (%d clients x %.1fs, %d tenants): %d requests, %d 5xx\n",
		rep.Clients, rep.DurationSec, rep.Tenants, rep.Requests, rep.Errors5xx)
	if old == nil {
		fmt.Fprintf(w, "  p99 %s  throughput %.0f req/s  cache hit ratio %.3f (no baseline report)\n",
			fmtMicros(rep.P99Micros), rep.RequestsPerSec, rep.CacheHitRatio)
		return
	}
	fmt.Fprintf(w, "  %-16s %s\n", "p99 latency", deltaCell(old.P99Micros, rep.P99Micros))
	fmt.Fprintf(w, "  %-16s %s\n", "requests/s", deltaCell(old.RequestsPerSec, rep.RequestsPerSec))
	fmt.Fprintf(w, "  %-16s %.3f -> %.3f\n", "cache hit ratio", old.CacheHitRatio, rep.CacheHitRatio)
	if old.P99Micros > 0 && rep.P99Micros > old.P99Micros*serviceP99WarnFactor {
		fmt.Fprintf(w, "WARNING: service p99 regressed %.2fx (%s -> %s); check the snapshot cache hit ratio and /statusz stage timings\n",
			rep.P99Micros/old.P99Micros, fmtMicros(old.P99Micros), fmtMicros(rep.P99Micros))
	}
}

// fmtMicros renders a microsecond latency with a unit.
func fmtMicros(us float64) string {
	if us >= 1000 {
		return fmt.Sprintf("%.2fms", us/1000)
	}
	return fmt.Sprintf("%.0fus", us)
}
