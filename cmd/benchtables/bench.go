package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// BenchResult is one machine-readable benchmark row, the JSON shape of
// a testing.BenchmarkResult. MBPerSec is only set for benchmarks with
// a meaningful byte throughput.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func toBenchResult(name string, r testing.BenchmarkResult) BenchResult {
	out := BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// sliceSource feeds pre-decoded packets so the engine benchmarks
// measure analysis, not capture decoding.
type sliceSource struct {
	pkts []pcap.Packet
	i    int
}

func (s *sliceSource) Next() (pcap.Packet, error) {
	if s.i >= len(s.pkts) {
		return pcap.Packet{}, io.EOF
	}
	pkt := s.pkts[s.i]
	s.i++
	return pkt, nil
}

func (s *sliceSource) Close() error { return nil }

// runBench runs the pipeline micro/throughput benchmarks with
// testing.Benchmark and writes BENCH_core.json (parsers and the
// offline analyzer) and BENCH_stream.json (the sharded engine) to dir.
func runBench(dir string, scale float64, seed int64) error {
	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = time.Duration(float64(cfg.Duration) * scale)
	sim, err := scadasim.New(cfg)
	if err != nil {
		return err
	}
	tr, err := sim.Run()
	if err != nil {
		return err
	}
	names := core.NamesFromTopology(sim.Network())
	var capture bytes.Buffer
	if err := tr.WritePCAP(&capture); err != nil {
		return err
	}
	var pkts []pcap.Packet
	src, err := stream.NewPCAPSource(bytes.NewReader(capture.Bytes()))
	if err != nil {
		return err
	}
	for {
		pkt, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pkts = append(pkts, pkt)
	}
	frame, err := iec104.NewI(3, 4, iec104.NewMeasurement(
		iec104.MMeTf, 5, 1201, iec104.Value{Kind: iec104.KindFloat, Float: 60.01, HasTime: true},
		iec104.CauseSpontaneous)).Marshal(iec104.Standard)
	if err != nil {
		return err
	}

	core104 := []BenchResult{
		toBenchResult("parse_apdu_standard", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := iec104.ParseAPDU(frame, iec104.Standard); err != nil {
					b.Fatal(err)
				}
			}
		})),
		toBenchResult("tolerant_parser_frame", testing.Benchmark(func(b *testing.B) {
			tp := iec104.NewTolerantParser()
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tp.Parse("bench", frame); err != nil {
					b.Fatal(err)
				}
			}
		})),
		toBenchResult("analyzer_offline_capture", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(capture.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(names)
				if err := a.ReadPCAP(bytes.NewReader(capture.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})),
	}

	engineBench := func(workers int) BenchResult {
		name := fmt.Sprintf("engine_%dshard", workers)
		return toBenchResult(name, testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(capture.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := stream.New(stream.Config{Workers: workers, Names: names})
				if err := e.Run(context.Background(), &sliceSource{pkts: pkts}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	stream104 := []BenchResult{engineBench(1), engineBench(2), engineBench(4)}

	write := func(name string, rows []BenchResult) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtables: wrote %s\n", path)
		return nil
	}
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := write("BENCH_core.json", core104); err != nil {
		return err
	}
	return write("BENCH_stream.json", stream104)
}
