package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/iec104"
	"uncharted/internal/physical"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// BenchResult is one machine-readable benchmark row, the JSON shape of
// a testing.BenchmarkResult. MBPerSec is only set for benchmarks with
// a meaningful byte throughput; CompressionRatio only for the historian
// codec rows (raw 16-byte samples vs encoded block bytes).
type BenchResult struct {
	Name             string  `json:"name"`
	N                int     `json:"n"`
	NsPerOp          float64 `json:"ns_per_op"`
	MBPerSec         float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

func toBenchResult(name string, r testing.BenchmarkResult) BenchResult {
	out := BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return out
}

// runBench runs the pipeline micro/throughput benchmarks with
// testing.Benchmark and writes BENCH_core.json (parsers and the
// offline analyzer) and BENCH_stream.json (the sharded engine) to dir.
// When baselineDir holds previous BENCH_*.json files, an old-vs-new
// delta table is printed after each file is written.
func runBench(dir, baselineDir string, scale float64, seed int64) error {
	// Snapshot the baseline rows up front: baselineDir usually is the
	// repo root, i.e. the same files this run is about to overwrite.
	baselines := map[string]map[string]BenchResult{}
	if baselineDir != "" {
		for _, name := range benchFiles {
			if rows, err := loadBenchFile(filepath.Join(baselineDir, name)); err == nil {
				baselines[name] = rows
			}
		}
	}

	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = time.Duration(float64(cfg.Duration) * scale)
	sim, err := scadasim.New(cfg)
	if err != nil {
		return err
	}
	tr, err := sim.Run()
	if err != nil {
		return err
	}
	names := core.NamesFromTopology(sim.Network())
	var capture bytes.Buffer
	if err := tr.WritePCAP(&capture); err != nil {
		return err
	}
	// Release the generator state before any timing starts: the
	// simulator's record buffers are several times the capture size and
	// would otherwise sit in the live heap, taxing every GC cycle the
	// benchmarks trigger.
	tr = nil
	sim = nil
	runtime.GC()
	frame, err := iec104.NewI(3, 4, iec104.NewMeasurement(
		iec104.MMeTf, 5, 1201, iec104.Value{Kind: iec104.KindFloat, Float: 60.01, HasTime: true},
		iec104.CauseSpontaneous)).Marshal(iec104.Standard)
	if err != nil {
		return err
	}

	core104 := []BenchResult{
		toBenchResult("parse_apdu_standard", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := iec104.ParseAPDU(frame, iec104.Standard); err != nil {
					b.Fatal(err)
				}
			}
		})),
		toBenchResult("tolerant_parser_frame", testing.Benchmark(func(b *testing.B) {
			tp := iec104.NewTolerantParser()
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tp.Parse("bench", frame); err != nil {
					b.Fatal(err)
				}
			}
		})),
		toBenchResult("analyzer_offline_capture", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(capture.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(names)
				if err := a.ReadPCAP(bytes.NewReader(capture.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})),
	}

	// The engine rows stream the capture itself (the RawSource pooled
	// path): the reader slices raw frames into recycled slabs and the
	// shard workers decode, so these rows measure the full streaming
	// ingest the way production runs it.
	engineBench := func(workers int) BenchResult {
		name := fmt.Sprintf("engine_%dshard", workers)
		return toBenchResult(name, testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(capture.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src, err := stream.NewPCAPSource(bytes.NewReader(capture.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				e := stream.New(stream.Config{Workers: workers, Names: names})
				if err := e.Run(context.Background(), src); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	// The segmented row adds the parallel-ingest path: the capture is
	// planned into record-aligned segments and N readers feed the shard
	// fan-in concurrently (Config.Readers), the way cmd/profiler
	// -readers runs a finished capture.
	engineSegBench := func(workers, readers int) BenchResult {
		name := fmt.Sprintf("engine_%dshard_%dreader", workers, readers)
		return toBenchResult(name, testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(capture.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := stream.NewReaderAtSource(bytes.NewReader(capture.Bytes()), int64(capture.Len()))
				e := stream.New(stream.Config{Workers: workers, Readers: readers, Names: names})
				if err := e.Run(context.Background(), src); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	stream104 := []BenchResult{engineBench(1), engineBench(2), engineBench(4), engineSegBench(4, 4)}

	hist104, err := historianBench(names, capture.Bytes())
	if err != nil {
		return err
	}

	drift104, err := driftBench(names, capture.Bytes(), scale, seed)
	if err != nil {
		return err
	}

	write := func(name string, rows []BenchResult) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtables: wrote %s\n", path)
		printDelta(os.Stdout, name, baselines[name], rows)
		return nil
	}
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := write("BENCH_core.json", core104); err != nil {
		return err
	}
	if err := write("BENCH_stream.json", stream104); err != nil {
		return err
	}
	printScaling(os.Stdout, stream104)
	if err := write("BENCH_historian.json", hist104); err != nil {
		return err
	}
	if err := write("BENCH_drift.json", drift104); err != nil {
		return err
	}
	pipe104, err := pipelineBench(capture.Bytes())
	if err != nil {
		return err
	}
	if err := write("BENCH_pipeline.json", pipe104); err != nil {
		return err
	}
	printPipelineOverhead(os.Stdout, pipe104)
	proto, err := protocolBench(scale, seed)
	if err != nil {
		return err
	}
	if err := write("BENCH_protocol.json", proto); err != nil {
		return err
	}
	if line := printProtocolOverhead(proto, core104); line != "" {
		fmt.Fprintln(os.Stdout, line)
	}
	return runServiceBench(dir, baselineDir, scale, seed)
}

// driftBench builds the BENCH_drift.json rows: profile codec
// throughput (encode and decode of the full Y1 era profile, bytes per
// op = one encoded profile) and the latency of the §6 era-vs-era
// comparison over the full 58-outstation topology.
func driftBench(names map[netip.Addr]string, capture []byte, scale float64, seed int64) ([]BenchResult, error) {
	a := core.NewAnalyzer(names)
	if err := a.ReadPCAP(bytes.NewReader(capture)); err != nil {
		return nil, err
	}
	profA := drift.NewProfile("bench-y1", "bench", a.Partial(), time.Unix(0, 0).UTC())

	cfgB := scadasim.DefaultConfig(topology.Y2, seed)
	cfgB.Duration = time.Duration(float64(cfgB.Duration) * scale)
	simB, err := scadasim.New(cfgB)
	if err != nil {
		return nil, err
	}
	trB, err := simB.Run()
	if err != nil {
		return nil, err
	}
	var capB bytes.Buffer
	if err := trB.WritePCAP(&capB); err != nil {
		return nil, err
	}
	b2 := core.NewAnalyzer(core.NamesFromTopology(simB.Network()))
	if err := b2.ReadPCAP(bytes.NewReader(capB.Bytes())); err != nil {
		return nil, err
	}
	profB := drift.NewProfile("bench-y2", "bench", b2.Partial(), time.Unix(0, 0).UTC())

	encoded := profA.Encode()
	rows := []BenchResult{
		toBenchResult("profile_encode", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(encoded)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				profA.Encode()
			}
		})),
		toBenchResult("profile_decode", testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(encoded)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := drift.DecodeProfile(encoded); err != nil {
					b.Fatal(err)
				}
			}
		})),
		toBenchResult("profile_diff_eras", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				drift.Compare(profA, profB, drift.DefaultThresholds())
			}
		})),
	}
	return rows, nil
}

// deadbandSamples synthesizes a deadband-reported telemetry series —
// float32 measurands quantized to 0.01, reported on a fixed cadence —
// the shape RTUs actually emit and the one the historian's ≥8x
// compression claim is made on. It mirrors the "regular" golden case
// in internal/historian.
func deadbandSamples(n int) []physical.Sample {
	base := time.Date(2019, 6, 1, 12, 0, 0, 0, time.UTC)
	out := make([]physical.Sample, n)
	for i := range out {
		v := float64(float32(math.Round((60+0.02*math.Sin(float64(i)/20))*100) / 100))
		out[i] = physical.Sample{T: base.Add(time.Duration(i) * 4 * time.Second), V: v}
	}
	return out
}

// historianBench builds the BENCH_historian.json rows: codec
// micro-benchmarks on deadband telemetry (with the compression ratio
// against raw 16-byte samples), bulk ingest of every measurement the
// offline analyzer extracts from the capture, and the 1-shard engine
// re-run with the historian attached so its throughput cost is read
// directly against engine_1shard in BENCH_stream.json.
func historianBench(names map[netip.Addr]string, capture []byte) ([]BenchResult, error) {
	samples := deadbandSamples(512)
	raw := int64(len(samples)) * 16
	encoded := historian.EncodeBlock(samples)
	codecRatio := float64(raw) / float64(len(encoded))

	encodeRow := toBenchResult("historian_encode", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			historian.EncodeBlock(samples)
		}
	}))
	encodeRow.CompressionRatio = codecRatio
	decodeRow := toBenchResult("historian_decode", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := historian.DecodeBlock(encoded); err != nil {
				b.Fatal(err)
			}
		}
	}))
	decodeRow.CompressionRatio = codecRatio

	// Every extracted measurement from the capture, in analyzer order.
	a := core.NewAnalyzer(names)
	if err := a.ReadPCAP(bytes.NewReader(capture)); err != nil {
		return nil, err
	}
	type point struct {
		key     historian.PointKey
		typ     physical.PointType
		command bool
		samples []physical.Sample
	}
	var points []point
	var total int64
	for _, s := range a.Physical().All() {
		points = append(points, point{
			key:     historian.PointKey{Station: s.Key.Station, IOA: s.Key.IOA},
			typ:     s.Type,
			command: s.Command,
			samples: s.Samples,
		})
		total += int64(len(s.Samples))
	}

	ingest := func(dir string) (*historian.Store, error) {
		st, err := historian.Open(dir, historian.Options{})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			for _, s := range p.samples {
				if err := st.Append(p.key, p.typ, p.command, s); err != nil {
					st.Close()
					return nil, err
				}
			}
		}
		if err := st.Flush(); err != nil {
			st.Close()
			return nil, err
		}
		return st, nil
	}

	// The on-disk ratio the capture actually achieves (simulator
	// measurands carry per-sample noise, so this is lower than the
	// deadband codec rows — reported as measured).
	scratch, err := os.MkdirTemp("", "histbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	st, err := ingest(filepath.Join(scratch, "ratio"))
	if err != nil {
		return nil, err
	}
	var diskSamples, diskBytes int64
	for _, pi := range st.Catalog() {
		diskSamples += pi.Samples
		diskBytes += pi.Bytes
	}
	st.Close()
	ingestRatio := 0.0
	if diskBytes > 0 {
		ingestRatio = float64(diskSamples*16) / float64(diskBytes)
	}

	n := 0
	ingestRow := toBenchResult("historian_ingest", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(total * 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(scratch, fmt.Sprintf("ingest-%d", n))
			n++
			b.StartTimer()
			st, err := ingest(dir)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}))
	ingestRow.CompressionRatio = ingestRatio

	engineRow := toBenchResult("engine_1shard_historian", testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(capture)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(scratch, fmt.Sprintf("engine-%d", n))
			n++
			st, err := historian.Open(dir, historian.Options{})
			if err != nil {
				b.Fatal(err)
			}
			src, err := stream.NewPCAPSource(bytes.NewReader(capture))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			e := stream.New(stream.Config{Workers: 1, Names: names, Historian: st})
			if err := e.Run(context.Background(), src); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}))

	return []BenchResult{encodeRow, decodeRow, ingestRow, engineRow}, nil
}
