package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"uncharted/internal/core"
	"uncharted/internal/pipeline"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// pipelineOverheadWarnAbove is the graph-vs-hand-wired ns/op ratio
// above which the bench flags the run: the segment runtime's channel
// handoff, metering and fan-out bookkeeping are supposed to be noise
// next to decode + analysis, so more than 5% overhead means the
// runtime itself regressed.
const pipelineOverheadWarnAbove = 1.05

// pipelineBench builds the BENCH_pipeline.json rows: the same capture
// analyzed by the hand-wired engine (pcap source + stream.New, exactly
// what cmd/profiler did before the runtime existed) and by the
// declared profiler segment graph, at 1 and 4 shards. Both paths read
// the capture from the same file so the comparison isolates the graph
// runtime's cost.
func pipelineBench(capture []byte) ([]BenchResult, error) {
	scratch, err := os.MkdirTemp("", "pipebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	path := filepath.Join(scratch, "capture.pcap")
	if err := os.WriteFile(path, capture, 0o644); err != nil {
		return nil, err
	}
	quiet := func(string, ...any) {}

	bench := func(name string, fn func() error) BenchResult {
		return toBenchResult(name, testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(capture)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	var rows []BenchResult
	for _, workers := range []int{1, 4} {
		rows = append(rows,
			bench(fmt.Sprintf("handwired_%dshard", workers), func() error {
				f, err := os.Open(path)
				if err != nil {
					return err
				}
				defer f.Close()
				src, err := stream.NewPCAPSource(f)
				if err != nil {
					return err
				}
				// One full pre-refactor profiler invocation: name-map
				// construction included, exactly like the graph op's
				// runner construction includes it.
				names := core.NamesFromTopology(topology.Build())
				e := stream.New(stream.Config{Workers: workers, ClusterK: 5, ClusterSeed: 1202, Names: names})
				if err := e.Run(context.Background(), src); err != nil {
					return err
				}
				// Both paths deliver the same product: the final
				// clustered profile (the graph's analyzer publishes it
				// as its last snapshot).
				e.Profile()
				return nil
			}),
			bench(fmt.Sprintf("graph_%dshard", workers), func() error {
				cfg, hooks := pipeline.ProfilerGraph(pipeline.ProfilerPreset{Path: path, Workers: workers, Names: true})
				runner, err := pipeline.NewRunner(cfg, pipeline.Options{Hooks: hooks, Logf: quiet})
				if err != nil {
					return err
				}
				return runner.Run(context.Background())
			}),
		)
	}
	return rows, nil
}

// printPipelineOverhead reports the graph runtime's cost over the
// hand-wired engine per shard count and warns past the 5% budget.
func printPipelineOverhead(w io.Writer, rows []BenchResult) {
	byName := make(map[string]BenchResult, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, workers := range []int{1, 4} {
		hand := byName[fmt.Sprintf("handwired_%dshard", workers)]
		graph := byName[fmt.Sprintf("graph_%dshard", workers)]
		if hand.NsPerOp == 0 || graph.NsPerOp == 0 {
			continue
		}
		ratio := graph.NsPerOp / hand.NsPerOp
		fmt.Fprintf(w, "\npipeline overhead (%d shard): graph %s ns/op / hand-wired %s ns/op = %.3fx\n",
			workers, fmtNum(graph.NsPerOp), fmtNum(hand.NsPerOp), ratio)
		if ratio > pipelineOverheadWarnAbove {
			fmt.Fprintf(w, "WARNING: segment graph is %.1f%% slower than the hand-wired engine at %d shards (budget %.0f%%); check per-segment queue metrics and stall attribution\n",
				(ratio-1)*100, workers, (pipelineOverheadWarnAbove-1)*100)
		}
	}
}
