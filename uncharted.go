// Package uncharted reproduces "Uncharted Networks: A First
// Measurement Study of the Bulk Power System" (IMC 2020) as a Go
// library: an IEC 60870-5-104 codec with tolerant legacy-dialect
// parsing, a synthesized bulk-power SCADA network (the paper's 27
// substations, 58 outstations and 4 control servers over a simulated
// power grid with AGC), and the full measurement pipeline — TCP flow
// taxonomy, compliance analysis, session clustering, Markov-chain
// profiling and physical deep packet inspection.
//
// This top-level package is a thin facade over the internal packages;
// it exposes the workflows a downstream user starts with: synthesize a
// capture, analyze a capture, regenerate the paper's tables and
// figures. The full APIs live in internal/iec104, internal/core,
// internal/scadasim, internal/experiments and friends, and the
// examples/ directory shows each of them in use.
package uncharted

import (
	"fmt"
	"io"
	"os"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/experiments"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// Year selects a capture campaign: 1 or 2.
type Year = topology.Year

// Capture years.
const (
	Y1 = topology.Y1
	Y2 = topology.Y2
)

// Generate synthesizes one capture year at the given duration scale
// (1.0 = 40 min for Y1, 15 min for Y2 — the paper's 8:3 ratio) and
// writes it as a libpcap stream to w.
func Generate(w io.Writer, year Year, scale float64, seed int64) error {
	cfg := scadasim.DefaultConfig(year, seed)
	if scale > 0 {
		cfg.Duration = time.Duration(float64(cfg.Duration) * scale)
	}
	if cfg.CyclePeriod > cfg.Duration/3 {
		cfg.CyclePeriod = cfg.Duration / 3
	}
	sim, err := scadasim.New(cfg)
	if err != nil {
		return err
	}
	tr, err := sim.Run()
	if err != nil {
		return err
	}
	return tr.WritePCAP(w)
}

// Analyze runs the paper's measurement pipeline over a libpcap stream.
// Addresses belonging to the simulated topology are labelled with
// their paper names (C1, O30, ...).
func Analyze(r io.Reader) (*core.Analyzer, error) {
	a := core.NewAnalyzer(core.NamesFromTopology(topology.Build()))
	if err := a.ReadPCAP(r); err != nil {
		return nil, err
	}
	return a, nil
}

// AnalyzeFile is Analyze over a capture file on disk.
func AnalyzeFile(path string) (*core.Analyzer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("uncharted: %w", err)
	}
	defer f.Close()
	return Analyze(f)
}

// Experiments returns a runner that regenerates every table and figure
// of the paper's evaluation at the given scale.
func Experiments(scale float64, seed int64) *experiments.Runner {
	return experiments.NewRunner(scale, seed)
}
