package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJournalSchema checks the JSONL line shape: one object per line
// with ts/type/conn/attrs, timestamps in UTC.
func TestJournalSchema(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	ts := time.Date(2026, 7, 5, 9, 0, 0, 0, time.FixedZone("x", 3600))
	j.Log(ts, EventResync, "10.0.0.1:1>10.0.1.2:2404", map[string]any{"skipped_bytes": 3})
	j.Log(time.Time{}, EventFailover, "10.0.1.2:2404", nil)
	j.Flush()

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e.Type != EventResync || e.Conn != "10.0.0.1:1>10.0.1.2:2404" {
		t.Errorf("event = %+v", e)
	}
	if e.Attrs["skipped_bytes"] != float64(3) {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if e.Time.Location() != time.UTC || !e.Time.Equal(ts) {
		t.Errorf("time = %v, want %v UTC", e.Time, ts)
	}
	var e2 Event
	if err := json.Unmarshal([]byte(lines[1]), &e2); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if e2.Time.IsZero() {
		t.Error("zero event time not replaced with wall time")
	}

	counts := j.Counts()
	if counts[EventResync] != 1 || counts[EventFailover] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// TestJournalNil checks that a nil journal accepts all calls.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Log(time.Now(), EventParseError, "x", nil)
	j.Flush()
	if j.Counts() != nil || j.Err() != nil || j.Dropped() != 0 {
		t.Error("nil journal should return nil counts, nil error, zero drops")
	}
}

// failingWriter fails every write after the first.
type failingWriter struct {
	n int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestJournalWriteError checks that the first write error sticks and
// later events still count.
func TestJournalWriteError(t *testing.T) {
	j := NewJournal(&failingWriter{})
	j.Log(time.Now(), EventResync, "", nil)
	j.Log(time.Now(), EventResync, "", nil)
	j.Log(time.Now(), EventResync, "", nil)
	if j.Err() == nil {
		t.Fatal("write error not recorded")
	}
	if j.Counts()[EventResync] != 3 {
		t.Errorf("counts = %v, want resync=3", j.Counts())
	}
}

// TestJournalConcurrent interleaves writers; run with -race.
func TestJournalConcurrent(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	j := NewJournal(lockedWriter)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Log(time.Now(), EventSeqAnomaly, "c", map[string]any{"i": i})
			}
		}()
	}
	wg.Wait()
	j.Flush()
	mu.Lock()
	defer mu.Unlock()
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("lines = %d, want 800", len(lines))
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("interleaved line is not valid JSON: %q", l)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestJournalSlowWriterDrops: a writer wedged inside Write must not
// stall Log — the queue fills, further events drop and are counted.
func TestJournalSlowWriterDrops(t *testing.T) {
	release := make(chan struct{})
	var wrote sync.WaitGroup
	wrote.Add(1)
	var once sync.Once
	blocked := writerFunc(func(p []byte) (int, error) {
		once.Do(wrote.Done)
		<-release // wedge until the test lets go
		return len(p), nil
	})
	j := NewJournal(blocked)

	// Wedge the writer on the first line, then overrun the queue.
	j.Log(time.Now(), EventResync, "", nil)
	wrote.Wait()
	const extra = 200
	start := time.Now()
	for i := 0; i < journalQueueMax+extra; i++ {
		j.Log(time.Now(), EventSeqAnomaly, "c", map[string]any{"i": i})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Log stalled behind a blocked writer: %v for %d events", elapsed, journalQueueMax+extra)
	}

	if d := j.Dropped(); d < extra {
		t.Errorf("dropped = %d, want >= %d (queue bound %d)", d, extra, journalQueueMax)
	}
	counts := j.Counts()
	if counts[EventSeqAnomaly] != journalQueueMax+extra {
		t.Errorf("counts = %v: dropped events must still be counted", counts)
	}

	close(release) // unwedge; the queued tail drains
	j.Flush()
	if j.Err() != nil {
		t.Fatalf("unexpected write error: %v", j.Err())
	}
}
