package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one TYPE line per family, HELP
// where registered, histograms with cumulative le buckets plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	o := r.owner()
	o.mu.RLock()
	help := make(map[string]string, len(o.help))
	for k, v := range o.help {
		help[k] = v
	}
	o.mu.RUnlock()

	var b strings.Builder
	seen := map[string]bool{}
	header := func(name string, typ MetricType) {
		if seen[name] {
			return
		}
		seen[name] = true
		if h := help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range snap.Counters {
		header(c.Name, TypeCounter)
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, labelString(c.Labels), c.Value)
	}
	for _, g := range snap.Gauges {
		header(g.Name, TypeGauge)
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, labelString(g.Labels), formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		header(h.Name, TypeHistogram)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				h.Name, labelString(append(append([]string(nil), h.Labels...), "le", formatFloat(bound))), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket%s %d\n",
			h.Name, labelString(append(append([]string(nil), h.Labels...), "le", "+Inf")), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, labelString(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, labelString(h.Labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// varsPayload is the expvar-style JSON document served at /debug/vars.
type varsPayload struct {
	Metrics        Snapshot            `json:"metrics"`
	Journal        map[EventType]int64 `json:"journal_events,omitempty"`
	JournalDropped int64               `json:"journal_dropped,omitempty"`
	MemStats       *runtime.MemStats   `json:"memstats,omitempty"`
}

// WriteJSON renders an expvar-style JSON snapshot of the registry
// (plus runtime memstats, mirroring the stdlib expvar handler).
// journal may be nil.
func (r *Registry) WriteJSON(w io.Writer, journal *Journal) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(varsPayload{
		Metrics:        r.Snapshot(),
		Journal:        journal.Counts(),
		JournalDropped: journal.Dropped(),
		MemStats:       &ms,
	})
}

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-style JSON (metrics + memstats)
//	/debug/pprof/  the runtime profiler endpoints
//	/healthz       liveness: 200 as long as the process serves
//	/              a plain-text index
//
// journal may be nil; when set, its per-type event counts are included
// in the JSON document.
func Handler(r *Registry, journal *Journal) http.Handler {
	return HandlerWith(r, journal, nil)
}

// HandlerWith is Handler plus caller-supplied routes (path → handler),
// which appear in the index page. Extra routes must not shadow the
// built-in ones.
func HandlerWith(r *Registry, journal *Journal, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w, journal)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, `{"status":"ok"}`+"\n")
	})
	index := "uncharted observability endpoint\n\n" +
		"/metrics       Prometheus text format\n" +
		"/debug/vars    expvar-style JSON\n" +
		"/debug/pprof/  runtime profiler\n" +
		"/healthz       liveness\n"
	paths := make([]string, 0, len(extra))
	for p := range extra {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		mux.Handle(p, extra[p])
		index += fmt.Sprintf("%-12s (application route)\n", p)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, index)
	})
	return mux
}

// PickFormat resolves a query endpoint's ?format= parameter: an empty
// parameter picks def, a listed value picks itself, anything else
// returns ok=false after writing a 400 JSON error. Every query
// endpoint negotiates through this one helper so the surfaces cannot
// drift.
func PickFormat(w http.ResponseWriter, req *http.Request, def string, allowed ...string) (string, bool) {
	f := req.URL.Query().Get("format")
	if f == "" {
		return def, true
	}
	if f == def {
		return f, true
	}
	for _, a := range allowed {
		if f == a {
			return f, true
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf("unsupported format %q (want %s)", f, strings.Join(append([]string{def}, allowed...), "|")),
	})
	return "", false
}

// ReadyHandler builds a /readyz-style readiness endpoint from a check
// function: 200 with {"ready":true} when check says so, 503 with the
// reason otherwise (e.g. "draining", "engine not started").
func ReadyHandler(check func() (bool, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		ready, reason := check()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason,omitempty"`
		}{ready, reason})
	})
}

// ServeWith is Serve with extra routes, mirroring HandlerWith.
func ServeWith(addr string, r *Registry, journal *Journal, extra map[string]http.Handler) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: HandlerWith(r, journal, extra)}
	go srv.Serve(ln)
	return ln.Addr(), srv.Close, nil
}

// Serve starts an HTTP server for Handler(r, journal) on addr and
// returns the bound address (useful with ":0") plus a shutdown
// function. The server runs until the shutdown function is called.
func Serve(addr string, r *Registry, journal *Journal) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r, journal)}
	go srv.Serve(ln)
	return ln.Addr(), srv.Close, nil
}
