package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry in the Chrome trace_event JSON array
// (the "JSON Array Format" both chrome://tracing and Perfetto load).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object-form trace document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the current ring contents as a Chrome
// trace_event JSON document: one process, one thread per lane (named
// via "M" metadata events), one complete ("X") event per span with
// items and queue depth in args. Nil-safe: a nil recorder writes an
// empty, still-loadable document.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for ti, ls := range r.Snapshot() {
		tid := ti + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": ls.Lane},
		})
		sort.Slice(ls.Spans, func(i, j int) bool { return ls.Spans[i].Start < ls.Spans[j].Start })
		for _, s := range ls.Spans {
			ev := chromeEvent{
				Name: s.Stage.String(), Cat: "pipeline", Ph: "X",
				TS:  float64(s.Start.Nanoseconds()) / 1e3,
				Dur: float64(s.Dur.Nanoseconds()) / 1e3,
				PID: 1, TID: tid,
				Args: map[string]any{"items": s.Items},
			}
			if s.Queue >= 0 {
				ev.Args["queue_depth"] = s.Queue
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	return json.NewEncoder(w).Encode(doc)
}

// WriteChromeTraceFile writes the Chrome trace to path (created or
// truncated). Nil-safe.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
