//go:build !unix

package trace

// DumpOnSIGUSR1 is a no-op on platforms without SIGUSR1; the
// drain-time export still works everywhere.
func (r *Recorder) DumpOnSIGUSR1(path string, logf func(format string, args ...any)) (stop func()) {
	return func() {}
}
