//go:build unix

package trace

import (
	"os"
	"os/signal"
	"syscall"
)

// DumpOnSIGUSR1 arranges for the recorder to write a Chrome trace to
// path each time the process receives SIGUSR1 — the mid-run escape
// hatch when a long capture cannot wait for the drain-time export.
// logf (optional) receives one line per dump or failure. The returned
// stop function unregisters the handler.
func (r *Recorder) DumpOnSIGUSR1(path string, logf func(format string, args ...any)) (stop func()) {
	if r == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if err := r.WriteChromeTraceFile(path); err != nil {
					if logf != nil {
						logf("trace dump: %v", err)
					}
				} else if logf != nil {
					logf("trace dumped to %s", path)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
