// Package trace is the pipeline's flight recorder: a sampling span
// recorder that threads stage context through the streaming hot path
// — source read, route/slab append, channel enqueue (with the queue
// depth observed at enqueue), worker-side decode, analyzer feed,
// historian append, snapshot merge and publish.
//
// Design constraints, in order:
//
//   - Zero steady-state cost when disabled: with the sample rate at 0
//     a Start call is a single atomic load, and the traced hot path
//     stays allocation-free at any rate (guarded by AllocsPerRun
//     tests).
//   - No locks on the hot path: each lane is a single-producer ring
//     buffer of fixed-size slots. Producers never block; old spans are
//     overwritten. Readers (snapshot, drain, Chrome export) validate
//     each slot with a per-slot sequence number, so a torn read is
//     discarded rather than propagated.
//   - Monotonic time: span timestamps are time.Since a per-recorder
//     epoch, so wall-clock steps cannot fold spans over each other.
//
// Spans fan out three ways on top of the same rings: per-stage latency
// histograms (uncharted_stage_seconds{stage,shard}) fed at End time,
// a rolling JSONL journal stream (obs.EventSpan, via DrainNew), and a
// Chrome trace_event JSON export (WriteChromeTrace) that loads in
// chrome://tracing and Perfetto.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"uncharted/internal/obs"
)

// Stage identifies one hot-path pipeline stage.
type Stage uint8

// The stage vocabulary, in pipeline order.
const (
	// StagePlan: segment planning over a seekable capture before
	// parallel readers start (one span per plan).
	StagePlan Stage = iota
	// StageRead: one record pulled from the source (decoded or raw).
	StageRead
	// StageRoute: header peek, shard choice, and slab append for one
	// raw record.
	StageRoute
	// StageEnqueue: one batch handed to a shard channel.
	StageEnqueue
	// StageDecode: worker-side L2-L4 decode of one raw batch.
	StageDecode
	// StageFeed: analyzer feed of one packet.
	StageFeed
	// StageHistorian: historian append for one frame's measurements.
	StageHistorian
	// StageMerge: snapshot fan-out and partial merge.
	StageMerge
	// StagePublish: rolling-profile build and publication.
	StagePublish

	numStages
)

var stageNames = [numStages]string{
	"plan", "read", "route", "enqueue", "decode", "feed", "historian", "merge", "publish",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage name in pipeline order — the vocabulary
// trace validators (cmd/tracecheck) and dashboards iterate.
func Stages() []string {
	return append([]string(nil), stageNames[:]...)
}

// StageSecondsMetric is the per-stage latency histogram family fed by
// sampled spans: uncharted_stage_seconds{stage,shard}. The shard label
// is the lane name ("reader", "0".."N-1", "snapshot").
const StageSecondsMetric = "uncharted_stage_seconds"

// Span is one recorded stage execution.
type Span struct {
	// Start is the span's begin time as an offset from the recorder
	// epoch (monotonic).
	Start time.Duration `json:"start_ns"`
	// Dur is the span's duration.
	Dur time.Duration `json:"dur_ns"`
	// Stage is the pipeline stage.
	Stage Stage `json:"stage"`
	// Items is the payload size (packets or frames), 0 when n/a.
	Items int32 `json:"items"`
	// Queue is the queue depth observed at enqueue, -1 when n/a.
	Queue int32 `json:"queue"`
}

// SpanStart is an in-flight span handle. The zero value means "not
// sampled" and makes the matching End a no-op, so callers start/end
// unconditionally.
type SpanStart struct{ t time.Duration }

// Sampled reports whether this start was actually recorded.
func (s SpanStart) Sampled() bool { return s.t != 0 }

// Config parameterises a Recorder.
type Config struct {
	// SampleEvery records 1 in N span starts per lane; 0 disables
	// recording entirely (a Start call is then one atomic load).
	SampleEvery int
	// RingSize is the per-lane span capacity, rounded up to a power of
	// two (default 4096).
	RingSize int
	// Registry, when set, receives per-stage latency histograms
	// (StageSecondsMetric) fed at span End time.
	Registry *obs.Registry
}

// Recorder owns the lanes. A nil *Recorder is a valid no-op, and so
// are the nil *Lanes it hands out, so instrumented code traces
// unconditionally.
type Recorder struct {
	epoch time.Time
	every atomic.Int64
	ring  int
	reg   *obs.Registry

	mu    sync.Mutex
	lanes []*Lane
}

// New builds a recorder.
func New(cfg Config) *Recorder {
	if cfg.RingSize < 1 {
		cfg.RingSize = 4096
	}
	ring := 1
	for ring < cfg.RingSize {
		ring <<= 1
	}
	r := &Recorder{epoch: time.Now(), ring: ring, reg: cfg.Registry}
	if cfg.SampleEvery > 0 {
		r.every.Store(int64(cfg.SampleEvery))
	}
	if cfg.Registry != nil {
		cfg.Registry.SetHelp(StageSecondsMetric, "Sampled per-stage pipeline latency by shard lane.")
	}
	return r
}

// SetSampleEvery changes the sample rate at runtime (0 disables).
func (r *Recorder) SetSampleEvery(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.every.Store(int64(n))
}

// Lane returns (registering on first use) the named single-producer
// lane. Start/End must stay on one goroutine per lane; every other
// method is safe from anywhere. Nil-safe: a nil recorder returns a nil
// lane, itself a valid no-op.
func (r *Recorder) Lane(name string) *Lane {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.lanes {
		if l.name == name {
			return l
		}
	}
	l := &Lane{
		rec:   r,
		name:  name,
		slots: make([]slot, r.ring),
		mask:  uint64(r.ring - 1),
	}
	if r.reg != nil {
		for st := Stage(0); st < numStages; st++ {
			l.hist[st] = r.reg.Histogram(StageSecondsMetric, obs.DurationBuckets,
				"stage", st.String(), "shard", name)
		}
	}
	r.lanes = append(r.lanes, l)
	return l
}

// slot is one ring entry. Every field is atomic so the seqlock
// protocol (odd seq = write in progress; 2h+2 = span h committed)
// stays free of data races: a reader that loses the race observes a
// mismatched sequence and discards the slot.
type slot struct {
	seq   atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	si    atomic.Uint64 // high 32 bits: stage; low 32: items
	q     atomic.Int64
}

// Lane is one single-producer span ring plus its pre-resolved
// histogram handles.
type Lane struct {
	rec  *Recorder
	name string

	slots []slot
	mask  uint64
	head  atomic.Uint64 // next span index (monotonic, unmasked)

	n       uint64 // producer-local sample counter
	drained uint64 // DrainNew cursor, guarded by rec.mu

	every atomic.Int64 // per-lane rate override; 0 = recorder default

	hist [numStages]*obs.Histogram
}

// SetSampleEvery overrides the recorder's sampling rate for this lane
// (0 restores the default). Cold lanes — one merge per snapshot, one
// publish per run — set 1 so their rare spans always record; the
// recorder's rate 0 still disables everything.
func (l *Lane) SetSampleEvery(n int) {
	if l == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	l.every.Store(int64(n))
}

// Name returns the lane name.
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Start begins a span if this call is sampled. With the rate at 0 the
// cost is a single atomic load; a nil lane costs one branch.
func (l *Lane) Start() SpanStart {
	if l == nil {
		return SpanStart{}
	}
	every := l.rec.every.Load()
	if every == 0 {
		return SpanStart{}
	}
	if o := l.every.Load(); o > 0 {
		every = o
	}
	// Sample the first start of each window, not the last: lanes with
	// few events (one merge per snapshot, one publish per run) must
	// still record their span at any sampling rate.
	l.n++
	if (l.n-1)%uint64(every) != 0 {
		return SpanStart{}
	}
	t := time.Since(l.rec.epoch)
	if t == 0 {
		t = 1 // zero means "not sampled"; never hand it out as a timestamp
	}
	return SpanStart{t: t}
}

// End completes a sampled span: writes it into the ring and feeds the
// stage histogram. A zero SpanStart (unsampled, or from a nil lane)
// makes this a no-op.
func (l *Lane) End(st SpanStart, stage Stage, items, queue int) {
	if st.t == 0 || l == nil {
		return
	}
	dur := time.Since(l.rec.epoch) - st.t
	h := l.head.Load()
	s := &l.slots[h&l.mask]
	s.seq.Store(2*h + 1)
	s.start.Store(int64(st.t))
	s.dur.Store(int64(dur))
	s.si.Store(uint64(stage)<<32 | uint64(uint32(items)))
	s.q.Store(int64(queue))
	s.seq.Store(2*h + 2)
	l.head.Store(h + 1)
	if hs := l.hist[stage]; hs != nil {
		hs.Observe(dur.Seconds())
	}
}

// read copies the validated spans in [from, head) — clamped to the
// ring capacity — and returns them with the head it observed.
func (l *Lane) read(from uint64) ([]Span, uint64) {
	head := l.head.Load()
	lo := from
	if ring := uint64(len(l.slots)); head > ring && lo < head-ring {
		lo = head - ring
	}
	var out []Span
	for h := lo; h < head; h++ {
		s := &l.slots[h&l.mask]
		want := 2*h + 2
		if s.seq.Load() != want {
			continue
		}
		sp := Span{
			Start: time.Duration(s.start.Load()),
			Dur:   time.Duration(s.dur.Load()),
		}
		si := s.si.Load()
		sp.Stage = Stage(si >> 32)
		sp.Items = int32(uint32(si))
		sp.Queue = int32(s.q.Load())
		if s.seq.Load() != want { // overwritten mid-copy: discard
			continue
		}
		out = append(out, sp)
	}
	return out, head
}

// LaneSpans is one lane's drained spans.
type LaneSpans struct {
	Lane  string `json:"lane"`
	Spans []Span `json:"spans"`
}

// Snapshot copies every validated span currently held in the rings,
// one entry per lane in registration order. Nil-safe.
func (r *Recorder) Snapshot() []LaneSpans {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lanes := append([]*Lane(nil), r.lanes...)
	r.mu.Unlock()
	out := make([]LaneSpans, 0, len(lanes))
	for _, l := range lanes {
		spans, _ := l.read(0)
		out = append(out, LaneSpans{Lane: l.name, Spans: spans})
	}
	return out
}

// DrainNew invokes fn for every span recorded since the previous
// drain (journal streaming). Spans overwritten before the drain
// reached them are silently skipped — the rings never block the
// producers. Nil-safe.
func (r *Recorder) DrainNew(fn func(lane string, s Span)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.lanes {
		spans, head := l.read(l.drained)
		l.drained = head
		for _, s := range spans {
			fn(l.name, s)
		}
	}
}
