package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"uncharted/internal/obs"
)

// TestSpanRecording: sampled spans land in the ring with their stage,
// items and queue depth, and feed the per-stage histograms.
func TestSpanRecording(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{SampleEvery: 1, RingSize: 64, Registry: reg})
	lane := r.Lane("0")

	for i := 0; i < 5; i++ {
		sp := lane.Start()
		if !sp.Sampled() {
			t.Fatalf("span %d not sampled at rate 1", i)
		}
		lane.End(sp, StageFeed, 7, 3)
	}
	sp := lane.Start()
	lane.End(sp, StageDecode, 64, -1)

	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Lane != "0" {
		t.Fatalf("snapshot lanes = %+v", snap)
	}
	spans := snap[0].Spans
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	for _, s := range spans[:5] {
		if s.Stage != StageFeed || s.Items != 7 || s.Queue != 3 {
			t.Errorf("span %+v, want feed/7/3", s)
		}
		if s.Start <= 0 || s.Dur < 0 {
			t.Errorf("span timing %+v", s)
		}
	}
	if last := spans[5]; last.Stage != StageDecode || last.Items != 64 || last.Queue != -1 {
		t.Errorf("last span %+v, want decode/64/-1", last)
	}

	h := reg.Histogram(StageSecondsMetric, obs.DurationBuckets, "stage", "feed", "shard", "0")
	if h.Count() != 5 {
		t.Errorf("feed histogram count %d, want 5", h.Count())
	}
}

// TestSampling: 1-in-N sampling records N-th starts only.
func TestSampling(t *testing.T) {
	r := New(Config{SampleEvery: 4, RingSize: 256})
	lane := r.Lane("reader")
	for i := 0; i < 100; i++ {
		sp := lane.Start()
		lane.End(sp, StageRead, 1, -1)
	}
	spans, _ := lane.read(0)
	if len(spans) != 25 {
		t.Fatalf("got %d spans from 100 starts at 1-in-4, want 25", len(spans))
	}
}

// TestLaneSampleOverride: the first start of every sampling window is
// recorded (a cold lane's lone span survives any rate), and a per-lane
// override beats the recorder default — but not a disabled recorder.
func TestLaneSampleOverride(t *testing.T) {
	r := New(Config{SampleEvery: 100, RingSize: 64})
	hot := r.Lane("hot")
	if sp := hot.Start(); !sp.Sampled() {
		t.Error("first start of a window not sampled")
	} else {
		hot.End(sp, StageRead, 1, -1)
	}
	if sp := hot.Start(); sp.Sampled() {
		t.Error("second of 100 sampled")
	}

	cold := r.Lane("cold")
	cold.SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		sp := cold.Start()
		if !sp.Sampled() {
			t.Fatalf("overridden lane start %d not sampled", i)
		}
		cold.End(sp, StageMerge, 1, -1)
	}
	if spans, _ := cold.read(0); len(spans) != 10 {
		t.Fatalf("override lane recorded %d spans, want 10", len(spans))
	}

	// Recorder rate 0 still disables overridden lanes.
	r.SetSampleEvery(0)
	if sp := cold.Start(); sp.Sampled() {
		t.Error("disabled recorder sampled an overridden lane")
	}
}

// TestDisabledSingleLoad: at rate 0 nothing records, and flipping the
// rate at runtime takes effect.
func TestDisabledSingleLoad(t *testing.T) {
	r := New(Config{SampleEvery: 0})
	lane := r.Lane("x")
	for i := 0; i < 50; i++ {
		sp := lane.Start()
		if sp.Sampled() {
			t.Fatal("sampled with rate 0")
		}
		lane.End(sp, StageFeed, 1, -1)
	}
	if spans, _ := lane.read(0); len(spans) != 0 {
		t.Fatalf("rate 0 recorded %d spans", len(spans))
	}
	r.SetSampleEvery(1)
	sp := lane.Start()
	lane.End(sp, StageFeed, 1, -1)
	if spans, _ := lane.read(0); len(spans) != 1 {
		t.Fatalf("after enable got %d spans, want 1", len(spans))
	}
}

// TestTracedPathZeroAllocs guards the acceptance criterion: the traced
// hot path allocates nothing, whether sampling is off or recording
// every span.
func TestTracedPathZeroAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	for _, tc := range []struct {
		name  string
		every int
	}{{"disabled", 0}, {"every", 1}} {
		r := New(Config{SampleEvery: tc.every, RingSize: 1024, Registry: reg})
		lane := r.Lane("0")
		allocs := testing.AllocsPerRun(1000, func() {
			sp := lane.Start()
			lane.End(sp, StageFeed, 1, 2)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op on the traced path, want 0", tc.name, allocs)
		}
	}
	// A nil lane (tracing not configured at all) must also stay free.
	var nl *Lane
	allocs := testing.AllocsPerRun(1000, func() {
		sp := nl.Start()
		nl.End(sp, StageFeed, 1, -1)
	})
	if allocs != 0 {
		t.Errorf("nil lane: %v allocs/op, want 0", allocs)
	}
}

// TestRingWraps: the ring keeps the newest spans once full.
func TestRingWraps(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 8})
	lane := r.Lane("0")
	for i := 0; i < 20; i++ {
		sp := lane.Start()
		lane.End(sp, StageFeed, i, -1)
	}
	spans, _ := lane.read(0)
	if len(spans) != 8 {
		t.Fatalf("got %d spans, ring size 8", len(spans))
	}
	for i, s := range spans {
		if want := int32(12 + i); s.Items != want {
			t.Errorf("span %d items %d, want %d (newest retained)", i, s.Items, want)
		}
	}
}

// TestDrainNew consumes only spans recorded since the previous drain.
func TestDrainNew(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 64})
	lane := r.Lane("0")
	record := func(n int) {
		for i := 0; i < n; i++ {
			sp := lane.Start()
			lane.End(sp, StageRead, 1, -1)
		}
	}
	count := func() int {
		n := 0
		r.DrainNew(func(string, Span) { n++ })
		return n
	}
	record(3)
	if got := count(); got != 3 {
		t.Fatalf("first drain %d, want 3", got)
	}
	record(2)
	if got := count(); got != 2 {
		t.Fatalf("second drain %d, want 2", got)
	}
	if got := count(); got != 0 {
		t.Fatalf("empty drain %d, want 0", got)
	}
}

// TestChromeTraceExport: the export parses as a Chrome trace_event
// document with a named thread per lane and one X event per span.
func TestChromeTraceExport(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 64})
	reader := r.Lane("reader")
	shard := r.Lane("0")
	sp := reader.Start()
	time.Sleep(time.Millisecond)
	reader.End(sp, StageRead, 1, -1)
	sp = shard.Start()
	shard.End(sp, StageFeed, 64, 5)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var threads, spans int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			threads++
			names[ev.Args["name"].(string)] = true
		case "X":
			spans++
			names[ev.Name] = true
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("negative timing in %+v", ev)
			}
		}
	}
	if threads != 2 || spans != 2 {
		t.Fatalf("%d threads / %d spans, want 2/2", threads, spans)
	}
	for _, want := range []string{"reader", "0", "read", "feed"} {
		if !names[want] {
			t.Errorf("export missing %q", want)
		}
	}
	// The queue depth rides along where it was observed.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "feed" {
			if q, ok := ev.Args["queue_depth"].(float64); !ok || q != 5 {
				t.Errorf("feed span args %+v, want queue_depth 5", ev.Args)
			}
		}
	}
}

// TestNilSafety: the whole surface is a no-op on nil receivers.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	lane := r.Lane("anything")
	if lane != nil {
		t.Fatal("nil recorder handed out a lane")
	}
	sp := lane.Start()
	lane.End(sp, StageFeed, 1, -1)
	if lane.Name() != "" {
		t.Fatal("nil lane has a name")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil snapshot = %v", snap)
	}
	r.DrainNew(func(string, Span) { t.Fatal("drained from nil") })
	r.SetSampleEvery(10)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil export is not JSON")
	}
	stop := r.DumpOnSIGUSR1("/nonexistent", nil)
	stop()
}

// TestConcurrentSnapshot: readers racing a producer never see torn
// spans (stage outside the vocabulary, negative durations) and the
// race detector stays quiet.
func TestConcurrentSnapshot(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 16})
	lane := r.Lane("0")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := lane.Start()
			lane.End(sp, Stage(i%int(numStages)), i, i%7)
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ls := range r.Snapshot() {
			for _, s := range ls.Spans {
				if s.Stage >= numStages {
					t.Errorf("torn span stage %d", s.Stage)
				}
				if s.Dur < 0 || s.Start <= 0 {
					t.Errorf("torn span timing %+v", s)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
