package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventType names the structured events the pipeline journals.
type EventType string

// The event vocabulary. Every journal line carries exactly one of
// these in its "type" field.
const (
	// EventParseError: an APDU failed tolerant parsing.
	EventParseError EventType = "parse_error"
	// EventResync: the framing layer skipped garbage to find a start
	// byte.
	EventResync EventType = "resync"
	// EventSeqAnomaly: an I-frame's N(S) broke the per-direction
	// sequence continuity.
	EventSeqAnomaly EventType = "seq_anomaly"
	// EventTimerFired: a protocol timer (T0-T3 or a deadline derived
	// from one) drove an action.
	EventTimerFired EventType = "timer_fired"
	// EventConnState: a connection changed state (opened, activated,
	// closed, dialect pinned, compliance flip).
	EventConnState EventType = "conn_state"
	// EventFailover: a redundancy group promoted its standby.
	EventFailover EventType = "failover"
	// EventSnapshot: the streaming engine published a rolling profile.
	EventSnapshot EventType = "snapshot"
	// EventDrop: the streaming engine shed load (dropped a batch).
	EventDrop EventType = "drop"
	// EventAlert: the online IDS raised an alert.
	EventAlert EventType = "alert"
	// EventHistorianSync: making the historian durable failed (the
	// success path is counted in metrics, not journalled).
	EventHistorianSync EventType = "historian_sync"
	// EventDrift: the rolling profile diverged from the stored
	// baseline profile (one summary event per snapshot comparison,
	// plus one per newly seen finding).
	EventDrift EventType = "drift"
)

// Event is one journal entry.
type Event struct {
	// Time is the event timestamp: capture time for offline analysis,
	// wall time for live endpoints. Zero means "now".
	Time time.Time `json:"ts"`
	// Type is the event's kind.
	Type EventType `json:"type"`
	// Conn identifies the connection or endpoint involved, when one
	// is (e.g. "10.0.0.1:33012>10.0.1.30:2404" or a station name).
	Conn string `json:"conn,omitempty"`
	// Attrs carries event-specific fields. Keys marshal sorted, so
	// journal lines are deterministic for a deterministic input.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Journal is an append-only JSONL event log. A nil *Journal is a
// valid no-op sink, so instrumented code can log unconditionally.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	enc    *json.Encoder
	counts map[EventType]int64
	// writeErr remembers the first write failure; later events are
	// counted but dropped.
	writeErr error
}

// NewJournal writes events to w as one JSON object per line. Callers
// own w's lifecycle (and any buffering/flushing).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w), counts: make(map[EventType]int64)}
}

// Log appends one event. Safe on a nil journal. A zero ts is replaced
// with the current wall time.
func (j *Journal) Log(ts time.Time, typ EventType, conn string, attrs map[string]any) {
	if j == nil {
		return
	}
	if ts.IsZero() {
		ts = time.Now()
	}
	e := Event{Time: ts.UTC(), Type: typ, Conn: conn, Attrs: attrs}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.counts[typ]++
	if j.writeErr != nil {
		return
	}
	j.writeErr = j.enc.Encode(e)
}

// Counts returns how many events of each type were logged (including
// any dropped by a write error). Nil-safe.
func (j *Journal) Counts() map[EventType]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[EventType]int64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Err returns the first write error, if any. Nil-safe.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}
