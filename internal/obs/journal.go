package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventType names the structured events the pipeline journals.
type EventType string

// The event vocabulary. Every journal line carries exactly one of
// these in its "type" field.
const (
	// EventParseError: an APDU failed tolerant parsing.
	EventParseError EventType = "parse_error"
	// EventResync: the framing layer skipped garbage to find a start
	// byte.
	EventResync EventType = "resync"
	// EventSeqAnomaly: an I-frame's N(S) broke the per-direction
	// sequence continuity.
	EventSeqAnomaly EventType = "seq_anomaly"
	// EventTimerFired: a protocol timer (T0-T3 or a deadline derived
	// from one) drove an action.
	EventTimerFired EventType = "timer_fired"
	// EventConnState: a connection changed state (opened, activated,
	// closed, dialect pinned, compliance flip).
	EventConnState EventType = "conn_state"
	// EventFailover: a redundancy group promoted its standby.
	EventFailover EventType = "failover"
	// EventSnapshot: the streaming engine published a rolling profile.
	EventSnapshot EventType = "snapshot"
	// EventDrop: the streaming engine shed load (dropped a batch).
	EventDrop EventType = "drop"
	// EventAlert: the online IDS raised an alert.
	EventAlert EventType = "alert"
	// EventHistorianSync: making the historian durable failed (the
	// success path is counted in metrics, not journalled).
	EventHistorianSync EventType = "historian_sync"
	// EventDrift: the rolling profile diverged from the stored
	// baseline profile (one summary event per snapshot comparison,
	// plus one per newly seen finding).
	EventDrift EventType = "drift"
	// EventSpan: a sampled flight-recorder span (stage, lane, timing)
	// drained from the trace rings at snapshot time.
	EventSpan EventType = "span"
	// EventPartial: the control-room service merged a remote probe's
	// posted partial into a tenant's fleet aggregate.
	EventPartial EventType = "partial"
)

// Event is one journal entry.
type Event struct {
	// Time is the event timestamp: capture time for offline analysis,
	// wall time for live endpoints. Zero means "now".
	Time time.Time `json:"ts"`
	// Type is the event's kind.
	Type EventType `json:"type"`
	// Conn identifies the connection or endpoint involved, when one
	// is (e.g. "10.0.0.1:33012>10.0.1.30:2404" or a station name).
	Conn string `json:"conn,omitempty"`
	// Attrs carries event-specific fields. Keys marshal sorted, so
	// journal lines are deterministic for a deterministic input.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// journalQueueMax bounds the pending-line queue. When the writer
// cannot keep up (slow disk, blocked pipe), further events are counted
// and dropped rather than stalling the pipeline.
const journalQueueMax = 1024

// Journal is an append-only JSONL event log. Events are encoded on
// the calling goroutine (order and key determinism are preserved) but
// written by a background goroutine behind a bounded queue, so a slow
// or blocked writer never stalls the hot path: once the queue is full,
// events are dropped and counted (Dropped). A nil *Journal is a valid
// no-op sink, so instrumented code can log unconditionally.
type Journal struct {
	mu   sync.Mutex
	cond *sync.Cond
	w    io.Writer

	queue    [][]byte
	inflight bool
	counts   map[EventType]int64
	dropped  int64
	// writeErr remembers the first write failure; later events are
	// counted but dropped.
	writeErr error
}

// NewJournal writes events to w as one JSON object per line. Callers
// own w's lifecycle (and any buffering/flushing); call Flush (or Err,
// which flushes) before tearing w down.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w, counts: make(map[EventType]int64)}
	j.cond = sync.NewCond(&j.mu)
	go j.writer()
	return j
}

// writer drains the queue for the journal's lifetime. It holds no
// lock while writing, so Log never waits on w.
func (j *Journal) writer() {
	j.mu.Lock()
	for {
		for len(j.queue) == 0 {
			j.cond.Wait()
		}
		lines := j.queue
		j.queue = nil
		j.inflight = true
		err := j.writeErr
		j.mu.Unlock()
		if err == nil {
			for _, line := range lines {
				if _, werr := j.w.Write(line); werr != nil {
					err = werr
					break
				}
			}
		}
		j.mu.Lock()
		if err != nil && j.writeErr == nil {
			j.writeErr = err
		}
		j.inflight = false
		j.cond.Broadcast()
	}
}

// Log appends one event. Safe on a nil journal. A zero ts is replaced
// with the current wall time. Log never blocks on the underlying
// writer: if the queue is full the event is dropped and counted.
func (j *Journal) Log(ts time.Time, typ EventType, conn string, attrs map[string]any) {
	if j == nil {
		return
	}
	if ts.IsZero() {
		ts = time.Now()
	}
	line, encErr := json.Marshal(Event{Time: ts.UTC(), Type: typ, Conn: conn, Attrs: attrs})
	j.mu.Lock()
	defer j.mu.Unlock()
	j.counts[typ]++
	if encErr != nil || j.writeErr != nil {
		return
	}
	if len(j.queue) >= journalQueueMax {
		j.dropped++
		return
	}
	j.queue = append(j.queue, append(line, '\n'))
	j.cond.Broadcast()
}

// Flush blocks until every queued event has been handed to the
// underlying writer (or the writer failed). Nil-safe. Flush does not
// return while the writer is wedged inside a blocking Write; it is a
// shutdown/teardown aid, not a hot-path call.
func (j *Journal) Flush() {
	if j == nil {
		return
	}
	j.mu.Lock()
	for (len(j.queue) > 0 || j.inflight) && j.writeErr == nil {
		j.cond.Wait()
	}
	j.mu.Unlock()
}

// Counts returns how many events of each type were logged (including
// any dropped by a write error or a full queue). Nil-safe.
func (j *Journal) Counts() map[EventType]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[EventType]int64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Dropped returns how many events were shed because the writer fell
// behind (queue full). Events lost to a write error are not included
// here — those surface through Err. Nil-safe.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Err flushes the queue and returns the first write error, if any.
// Nil-safe.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}
