package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts pprof capture for a CLI run: cpuPath receives a
// CPU profile covering start-to-stop, memPath an allocation profile
// taken at stop (after a GC, so live-heap numbers are accurate). Either
// path may be empty to skip that profile. The returned stop function is
// idempotent-enough for a single deferred call; errors writing the
// allocation profile are reported on stderr rather than lost.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alloc profile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "alloc profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "alloc profile: %v\n", err)
			}
		}
	}, nil
}
