package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race this also proves the registry lookup path is safe.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("test_total", "worker", "shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test_total", "worker", "shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks bucket assignment and totals under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{1, 10, 100}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram("test_hist", bounds)
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%4) * 30) // 0, 30, 60, 90: buckets le=1 and le=100
			}
		}(w)
	}
	wg.Wait()
	h := reg.Histogram("test_hist", bounds)
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms in snapshot = %d, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	// w%4==0 lands in le=1 (value 0); the rest in le=100 (30, 60, 90).
	if hs.Counts[0] != 2*perWorker {
		t.Errorf("le=1 bucket = %d, want %d", hs.Counts[0], 2*perWorker)
	}
	if hs.Counts[2] != 6*perWorker {
		t.Errorf("le=100 bucket = %d, want %d", hs.Counts[2], 6*perWorker)
	}
	if hs.Counts[3] != 0 {
		t.Errorf("+Inf bucket = %d, want 0", hs.Counts[3])
	}
}

// TestGauge checks Set/Add round-trips.
func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

// TestSnapshotConsistency takes snapshots while writers are running:
// a histogram's bucket sum must never exceed its count (buckets are
// read before the total).
func TestSnapshotConsistency(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.Histogram("busy_hist", []float64{1, 2})
			c := reg.Counter("busy_total")
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(1.5)
				c.Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		snap := reg.Snapshot()
		for _, hs := range snap.Histograms {
			var sum uint64
			for _, n := range hs.Counts {
				sum += n
			}
			if sum > hs.Count {
				t.Fatalf("bucket sum %d exceeds count %d", sum, hs.Count)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestStage checks the aggregate wall-time accounting.
func TestStage(t *testing.T) {
	reg := NewRegistry()
	st := reg.Stage("test.stage")
	st.Observe(10 * time.Millisecond)
	st.Observe(30 * time.Millisecond)
	snap := reg.Snapshot()
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(snap.Stages))
	}
	ss := snap.Stages[0]
	if ss.Name != "test.stage" || ss.Count != 2 {
		t.Fatalf("stage snapshot = %+v", ss)
	}
	if ss.Total != 40*time.Millisecond || ss.Mean != 20*time.Millisecond {
		t.Errorf("total=%v mean=%v, want 40ms/20ms", ss.Total, ss.Mean)
	}
	if ss.Min != 10*time.Millisecond || ss.Max != 30*time.Millisecond {
		t.Errorf("min=%v max=%v, want 10ms/30ms", ss.Min, ss.Max)
	}
	// The stage also feeds the shared duration histogram family.
	found := false
	for _, hs := range snap.Histograms {
		if hs.Name == StageDurationMetric && hs.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Error("stage duration histogram missing from snapshot")
	}
}

// TestWritePrometheus pins the exposition format on a small fixed
// registry (the golden output a scraper must be able to parse).
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("app_requests_total", "Requests served.")
	reg.Counter("app_requests_total", "code", "200").Add(3)
	reg.Counter("app_requests_total", "code", "500").Add(1)
	reg.Gauge("app_temperature").Set(36.6)
	h := reg.Histogram("app_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
# TYPE app_temperature gauge
app_temperature 36.6
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.55
app_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping checks Prometheus label-value escaping.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, b.String())
	}
}

// TestTypeMismatchPanics pins the registration-conflict contract.
func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mixed_metric")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter re-registered as gauge")
		}
	}()
	reg.Gauge("mixed_metric")
}
