package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandler drives the HTTP endpoint end to end: /metrics serves
// Prometheus text, /debug/vars serves the JSON snapshot with journal
// counts.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	var sink strings.Builder
	j := NewJournal(&sink)
	j.Log(time.Now(), EventConnState, "c", nil)

	srv := httptest.NewServer(Handler(reg, j))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics Snapshot            `json:"metrics"`
		Journal map[EventType]int64 `json:"journal_events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics.Counters) != 1 || doc.Metrics.Counters[0].Value != 1 {
		t.Errorf("vars counters = %+v", doc.Metrics.Counters)
	}
	if doc.Journal[EventConnState] != 1 {
		t.Errorf("vars journal = %v", doc.Journal)
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

// TestServe checks the real listener path with addr ":0".
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("serving").Set(1)
	addr, stop, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serving 1") {
		t.Errorf("metrics body missing gauge:\n%s", body)
	}
}
