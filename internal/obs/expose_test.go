package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandler drives the HTTP endpoint end to end: /metrics serves
// Prometheus text, /debug/vars serves the JSON snapshot with journal
// counts.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	var sink strings.Builder
	j := NewJournal(&sink)
	j.Log(time.Now(), EventConnState, "c", nil)

	srv := httptest.NewServer(Handler(reg, j))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics Snapshot            `json:"metrics"`
		Journal map[EventType]int64 `json:"journal_events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics.Counters) != 1 || doc.Metrics.Counters[0].Value != 1 {
		t.Errorf("vars counters = %+v", doc.Metrics.Counters)
	}
	if doc.Journal[EventConnState] != 1 {
		t.Errorf("vars journal = %v", doc.Journal)
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

// TestHealthAndProfiling: the handler serves liveness and the pprof
// index out of the box.
func TestHealthAndProfiling(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body lacks profile index", resp.StatusCode)
	}
}

// TestReadyHandler: readiness flips between 200 and 503 with a reason.
func TestReadyHandler(t *testing.T) {
	ready, reason := false, "draining"
	h := ReadyHandler(func() (bool, string) { return ready, reason })

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready status = %d, want 503", rr.Code)
	}
	var doc struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ready || doc.Reason != "draining" {
		t.Errorf("not-ready body = %+v", doc)
	}

	ready, reason = true, ""
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 {
		t.Fatalf("ready status = %d, want 200", rr.Code)
	}
}

// TestHistogramQuantile: the fixed-bucket estimate interpolates within
// the holding bucket and clamps at the last finite bound.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all samples in the (1,2] bucket
	}
	snap := reg.Snapshot().Histograms[0]
	if p50 := snap.Quantile(0.5); p50 <= 1 || p50 > 2 {
		t.Errorf("p50 = %v, want within (1,2]", p50)
	}
	h.Observe(100) // lands beyond the last bound
	snap = reg.Snapshot().Histograms[0]
	if p := snap.Quantile(0.9999); p != 4 {
		t.Errorf("tail quantile = %v, want clamp to 4", p)
	}
	var empty HistogramSnapshot
	if p := empty.Quantile(0.5); p != 0 {
		t.Errorf("empty quantile = %v", p)
	}
	if got := snap.Label("nope"); got != "" {
		t.Errorf("missing label = %q", got)
	}
}

// TestServe checks the real listener path with addr ":0".
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("serving").Set(1)
	addr, stop, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serving 1") {
		t.Errorf("metrics body missing gauge:\n%s", body)
	}
}
