package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryWith covers the label-scoped views the control-room
// service books per-tenant metrics through: base labels are stamped on
// every series, the store is shared (one /metrics shows all tenants),
// and a view's snapshot filters out other tenants' series.
func TestRegistryWith(t *testing.T) {
	root := NewRegistry()
	east := root.With("tenant", "east")
	west := root.With("tenant", "west")

	east.Counter("requests_total").Add(3)
	west.Counter("requests_total").Add(5)
	root.Counter("process_uptime_ticks").Inc()
	east.Counter("requests_total", "code", "200").Inc()

	// The root sees everything, with the views' labels applied.
	snap := root.Snapshot()
	byKey := map[string]int64{}
	for _, c := range snap.Counters {
		byKey[c.Name+"|"+strings.Join(c.Labels, ",")] = c.Value
	}
	want := map[string]int64{
		"requests_total|tenant,east":          3,
		"requests_total|tenant,west":          5,
		"requests_total|tenant,east,code,200": 1,
		"process_uptime_ticks|":               1,
	}
	for k, v := range want {
		if byKey[k] != v {
			t.Errorf("root snapshot %s = %d, want %d (have %v)", k, byKey[k], v, byKey)
		}
	}

	// A view's snapshot only carries its own series.
	esnap := east.Snapshot()
	for _, c := range esnap.Counters {
		if !labelsContain(c.Labels, []string{"tenant", "east"}) {
			t.Errorf("east snapshot leaked series %s %v", c.Name, c.Labels)
		}
	}
	if got := len(esnap.Counters); got != 2 {
		t.Errorf("east snapshot has %d counters, want 2", got)
	}

	// Same (name, labels) through view and root resolve to one series.
	root.Counter("requests_total", "tenant", "east").Inc()
	if got := east.Counter("requests_total").Value(); got != 4 {
		t.Errorf("shared series value %d, want 4", got)
	}

	// Stages booked through a view are label-scoped the same way.
	east.Stage("parse").Observe(time.Millisecond)
	west.Stage("parse").Observe(time.Millisecond)
	if got := len(east.Snapshot().Stages); got != 1 {
		t.Errorf("east snapshot has %d stages, want 1", got)
	}
	if got := len(root.Snapshot().Stages); got != 2 {
		t.Errorf("root snapshot has %d stages, want 2", got)
	}

	// Nested views accumulate base labels.
	deep := east.With("shard", "0")
	deep.Counter("batches_total").Inc()
	found := false
	for _, c := range root.Snapshot().Counters {
		if c.Name == "batches_total" &&
			labelsContain(c.Labels, []string{"tenant", "east", "shard", "0"}) {
			found = true
		}
	}
	if !found {
		t.Error("nested view's series missing both base labels in root snapshot")
	}
}

func TestWithOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	NewRegistry().With("tenant")
}
