// Package obs is the pipeline's zero-dependency observability layer:
// a concurrency-safe metrics registry (counters, gauges, histograms
// with fixed bucket layouts), named-stage wall-time accounting, a
// structured JSONL event journal, and HTTP exposition in Prometheus
// text format plus expvar-style JSON.
//
// Components that sit on hot paths resolve their metric handles once
// (at Instrument time) and then pay only an atomic operation per
// event, so instrumentation stays within a few percent of the
// uninstrumented throughput.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType distinguishes the registry's series kinds.
type MetricType int

// Metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Bounds are
// upper bounds of each bucket; an implicit +Inf bucket is appended.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits
	n      atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Fixed bucket layouts.
var (
	// DurationBuckets covers stage timings from 1µs to ~10s
	// (seconds, exponential).
	DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2.5, 5, 10}
	// SizeBuckets covers frame/payload sizes in bytes.
	SizeBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
)

// Stage aggregates wall time of one named pipeline stage: call count,
// total, min and max, plus a duration histogram.
type Stage struct {
	name string
	hist *Histogram
	// labels carries the base labels of the registry view that booked
	// the stage (empty on a root), so view snapshots can filter.
	labels []string

	mu       sync.Mutex
	count    int64
	total    time.Duration
	min, max time.Duration
}

// Observe records one stage execution.
func (s *Stage) Observe(d time.Duration) {
	s.hist.Observe(d.Seconds())
	s.mu.Lock()
	s.count++
	s.total += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.mu.Unlock()
}

// Time runs fn, recording its wall time.
func (s *Stage) Time(fn func()) {
	start := time.Now()
	fn()
	s.Observe(time.Since(start))
}

// snapshot captures the stage's aggregate under its lock.
func (s *Stage) snapshot() StageSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := StageSnapshot{Name: s.name, Count: s.count, Total: s.total, Min: s.min, Max: s.max}
	if s.count > 0 {
		ss.Mean = s.total / time.Duration(s.count)
	}
	return ss
}

// series is one (name, labels) time series.
type series struct {
	name   string
	labels []string // alternating key, value
	typ    MetricType

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a concurrency-safe collection of metrics and stages.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	help   map[string]string
	stages map[string]*Stage

	// root points at the registry owning the maps above when this
	// value is a label-scoped view created by With; nil on a root.
	root *Registry
	// base is stamped onto every series the view books; a root has
	// none.
	base []string
}

// owner resolves the registry that holds the series store: the root
// for a With view, the receiver itself otherwise.
func (r *Registry) owner() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// With returns a label-scoped view of the registry: every metric or
// stage booked through the view carries the given label pairs in
// addition to its own, and the view's Snapshot reports only series
// carrying them. The underlying store is shared, so a single /metrics
// endpoint on the root exposes every view's series — this is how one
// process hosts many tenants with per-tenant metric labels.
func (r *Registry) With(labels ...string) *Registry {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for registry view: %v", labels))
	}
	base := make([]string, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{root: r.owner(), base: base}
}

// labelsContain reports whether every (key, value) pair of needles
// appears in haystack.
func labelsContain(haystack, needles []string) bool {
	for i := 0; i+1 < len(needles); i += 2 {
		found := false
		for j := 0; j+1 < len(haystack); j += 2 {
			if haystack[j] == needles[i] && haystack[j+1] == needles[i+1] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
		stages: make(map[string]*Stage),
	}
}

// Default is the process-wide registry served by the -metrics
// endpoints of the long-running commands.
var Default = NewRegistry()

// seriesKey builds the unique map key for (name, labels).
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l)
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating it — with
// its metric value, so snapshots never see a half-built series — on
// first use. bounds is only consulted for histograms.
func (r *Registry) lookup(name string, typ MetricType, labels []string, bounds []float64) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	if len(r.base) > 0 {
		merged := make([]string, 0, len(r.base)+len(labels))
		merged = append(merged, r.base...)
		merged = append(merged, labels...)
		labels = merged
	}
	o := r.owner()
	key := seriesKey(name, labels)
	o.mu.RLock()
	s := o.series[key]
	o.mu.RUnlock()
	if s == nil {
		o.mu.Lock()
		if s = o.series[key]; s == nil {
			s = &series{name: name, labels: append([]string(nil), labels...), typ: typ}
			switch typ {
			case TypeCounter:
				s.c = &Counter{}
			case TypeGauge:
				s.g = &Gauge{}
			case TypeHistogram:
				s.h = newHistogram(bounds)
			}
			o.series[key] = s
		}
		o.mu.Unlock()
	}
	if s.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", name, s.typ, typ))
	}
	return s
}

// Counter returns (registering on first use) the counter for name with
// the given alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, TypeCounter, labels, nil).c
}

// Gauge returns (registering on first use) the gauge for name.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, TypeGauge, labels, nil).g
}

// Histogram returns (registering on first use) the histogram for name
// with the given bucket upper bounds. Bounds are fixed at first
// registration; later calls reuse the existing layout.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, TypeHistogram, labels, bounds).h
}

// SetHelp attaches a HELP string to a metric family name.
func (r *Registry) SetHelp(name, help string) {
	o := r.owner()
	o.mu.Lock()
	o.help[name] = help
	o.mu.Unlock()
}

// StageDurationMetric is the histogram family every stage feeds.
const StageDurationMetric = "uncharted_stage_duration_seconds"

// Stage returns (registering on first use) the named stage accumulator.
// Resolve once and call Observe on hot paths. On a With view the
// backing histogram carries the view's base labels, and two views book
// distinct accumulators for the same stage name.
func (r *Registry) Stage(name string) *Stage {
	o := r.owner()
	key := seriesKey(name, r.base)
	o.mu.RLock()
	st := o.stages[key]
	o.mu.RUnlock()
	if st != nil {
		return st
	}
	h := r.Histogram(StageDurationMetric, DurationBuckets, "stage", name)
	o.mu.Lock()
	defer o.mu.Unlock()
	if st = o.stages[key]; st == nil {
		st = &Stage{name: name, hist: h, labels: r.base}
		o.stages[key] = st
	}
	return st
}

// Timer starts timing one execution of a named stage and returns the
// stop function: `defer reg.Timer("analyzer.feed")()`.
func (r *Registry) Timer(stage string) func() {
	st := r.Stage(stage)
	start := time.Now()
	return func() { st.Observe(time.Since(start)) }
}

// CounterSnapshot is one counter's point-in-time state.
type CounterSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  int64    `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time state.
type GaugeSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// HistogramSnapshot is one histogram's point-in-time state. Counts are
// per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Labels []string  `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket that holds it, the standard
// fixed-bucket estimate. Observations beyond the last finite bound
// are reported as that bound. Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := q * float64(h.Count)
	cum := 0.0
	lower := 0.0
	for i, bound := range h.Bounds {
		next := cum + float64(h.Counts[i])
		if next >= target && h.Counts[i] > 0 {
			frac := (target - cum) / float64(h.Counts[i])
			return lower + frac*(bound-lower)
		}
		cum = next
		lower = bound
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Label returns the value of the named label, or "".
func (h HistogramSnapshot) Label(key string) string {
	for i := 0; i+1 < len(h.Labels); i += 2 {
		if h.Labels[i] == key {
			return h.Labels[i+1]
		}
	}
	return ""
}

// StageSnapshot is one stage's aggregate timing.
type StageSnapshot struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot is a consistent-enough point-in-time view of the registry:
// each series is read atomically; a histogram's bucket counts are read
// before its total, so Count may briefly exceed the bucket sum under
// concurrent writes but never the reverse.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Stages     []StageSnapshot     `json:"stages,omitempty"`
}

// Snapshot captures every series, sorted by (name, labels). On a With
// view, only the series and stages carrying the view's base labels are
// included, so a tenant's snapshot never leaks its neighbours'.
func (r *Registry) Snapshot() Snapshot {
	o := r.owner()
	o.mu.RLock()
	all := make([]*series, 0, len(o.series))
	for _, s := range o.series {
		if len(r.base) > 0 && !labelsContain(s.labels, r.base) {
			continue
		}
		all = append(all, s)
	}
	stages := make([]*Stage, 0, len(o.stages))
	for _, st := range o.stages {
		if len(r.base) > 0 && !labelsContain(st.labels, r.base) {
			continue
		}
		stages = append(stages, st)
	}
	o.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelString(all[i].labels) < labelString(all[j].labels)
	})
	sort.Slice(stages, func(i, j int) bool { return stages[i].name < stages[j].name })

	var snap Snapshot
	for _, s := range all {
		switch s.typ {
		case TypeCounter:
			snap.Counters = append(snap.Counters, CounterSnapshot{
				Name: s.name, Labels: s.labels, Value: s.c.Value(),
			})
		case TypeGauge:
			snap.Gauges = append(snap.Gauges, GaugeSnapshot{
				Name: s.name, Labels: s.labels, Value: s.g.Value(),
			})
		case TypeHistogram:
			hs := HistogramSnapshot{
				Name: s.name, Labels: s.labels,
				Bounds: append([]float64(nil), s.h.bounds...),
				Counts: make([]uint64, len(s.h.counts)),
			}
			for i := range s.h.counts {
				hs.Counts[i] = s.h.counts[i].Load()
			}
			hs.Count = s.h.Count()
			hs.Sum = s.h.Sum()
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	for _, st := range stages {
		snap.Stages = append(snap.Stages, st.snapshot())
	}
	return snap
}

// labelString renders labels as {k="v",...} (empty for none).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
