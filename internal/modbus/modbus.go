// Package modbus implements the Modbus/TCP application protocol at the
// depth the measurement pipeline needs: MBAP framing with garbage
// resync, request/response/exception decoding for the register and
// coil function codes, and encode helpers for the traffic simulator.
// The paper's tap carried "other industrial protocols over TCP/IP"
// (§5) alongside IEC 104; Modbus/TCP is the most common of them in
// distribution substations, and this codec lets the multi-protocol
// analysis treat it as a first-class dialect rather than an OtherPorts
// byte tally.
package modbus

import (
	"encoding/binary"
	"errors"
)

// Port is the registered Modbus/TCP server port.
const Port = 502

// Function codes the codec understands structurally. Any other code
// still frames and tokenises; it just yields no measurements.
const (
	FuncReadCoils          uint8 = 1
	FuncReadDiscreteInputs uint8 = 2
	FuncReadHolding        uint8 = 3
	FuncReadInput          uint8 = 4
	FuncWriteSingleCoil    uint8 = 5
	FuncWriteSingleReg     uint8 = 6
	FuncWriteMultipleCoils uint8 = 15
	FuncWriteMultipleRegs  uint8 = 16
)

// ExceptionBit marks a response PDU as an exception reply.
const ExceptionBit uint8 = 0x80

// maxPDU is the Modbus PDU size limit (253 bytes), so the MBAP length
// field (unit id + PDU) is at most 254.
const maxPDU = 253

// Errors.
var (
	ErrShort    = errors.New("modbus: truncated ADU")
	ErrBadProto = errors.New("modbus: MBAP protocol id is not zero")
	ErrBadLen   = errors.New("modbus: MBAP length out of range")
)

// ADU is one decoded Modbus/TCP application data unit.
type ADU struct {
	TxID uint16
	Unit uint8
	// Func is the raw function code, exception bit included.
	Func uint8
	// Data is the PDU body after the function code; it aliases the
	// framed input.
	Data []byte
}

// Exception reports whether the ADU is an exception response.
func (a ADU) Exception() bool { return a.Func&ExceptionBit != 0 }

// BaseFunc strips the exception bit.
func (a ADU) BaseFunc() uint8 { return a.Func &^ ExceptionBit }

// plausibleHeader reports whether b (len >= 8) starts a credible MBAP
// header: protocol id zero, length covering at least unit+function and
// at most a full PDU, and a non-zero function code. MBAP has no magic
// byte, so resync leans on these invariants.
func plausibleHeader(b []byte) bool {
	if b[2] != 0 || b[3] != 0 {
		return false
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < 2 || length > maxPDU+1 {
		return false
	}
	return b[7]&^ExceptionBit != 0
}

// NextFrame extracts one ADU from the front of buf. With no sync byte
// to scan for, resync slides forward one byte at a time until a
// plausible MBAP header lines up; skipped reports the bytes discarded.
// ok=false means more bytes are needed.
func NextFrame(buf []byte) (frame, rest []byte, skipped int, ok bool) {
	for {
		if len(buf) < 8 {
			return nil, buf, skipped, false
		}
		if !plausibleHeader(buf) {
			buf = buf[1:]
			skipped++
			continue
		}
		total := 6 + int(binary.BigEndian.Uint16(buf[4:6]))
		if len(buf) < total {
			return nil, buf, skipped, false
		}
		return buf[:total], buf[total:], skipped, true
	}
}

// DecodeADU parses one framed ADU (as returned by NextFrame).
func DecodeADU(b []byte) (ADU, error) {
	if len(b) < 8 {
		return ADU{}, ErrShort
	}
	if b[2] != 0 || b[3] != 0 {
		return ADU{}, ErrBadProto
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < 2 || length > maxPDU+1 {
		return ADU{}, ErrBadLen
	}
	if len(b) < 6+length {
		return ADU{}, ErrShort
	}
	return ADU{
		TxID: binary.BigEndian.Uint16(b[0:2]),
		Unit: b[6],
		Func: b[7],
		Data: b[8 : 6+length],
	}, nil
}

// MarshalADU renders an ADU with the given PDU body.
func MarshalADU(txid uint16, unit, fn uint8, data []byte) []byte {
	out := make([]byte, 8+len(data))
	binary.BigEndian.PutUint16(out[0:2], txid)
	// Protocol id 0.
	binary.BigEndian.PutUint16(out[4:6], uint16(2+len(data)))
	out[6] = unit
	out[7] = fn
	copy(out[8:], data)
	return out
}

// ReadRequest builds a fc 1-4 read request for count items starting at
// addr.
func ReadRequest(txid uint16, unit, fn uint8, addr, count uint16) []byte {
	var d [4]byte
	binary.BigEndian.PutUint16(d[0:2], addr)
	binary.BigEndian.PutUint16(d[2:4], count)
	return MarshalADU(txid, unit, fn, d[:])
}

// ReadRegistersResponse builds a fc 3/4 response carrying values.
func ReadRegistersResponse(txid uint16, unit, fn uint8, values []uint16) []byte {
	d := make([]byte, 1+2*len(values))
	d[0] = byte(2 * len(values))
	for i, v := range values {
		binary.BigEndian.PutUint16(d[1+2*i:], v)
	}
	return MarshalADU(txid, unit, fn, d)
}

// ReadBitsResponse builds a fc 1/2 response carrying packed bits.
func ReadBitsResponse(txid uint16, unit, fn uint8, bits []bool) []byte {
	nb := (len(bits) + 7) / 8
	d := make([]byte, 1+nb)
	d[0] = byte(nb)
	for i, b := range bits {
		if b {
			d[1+i/8] |= 1 << (i % 8)
		}
	}
	return MarshalADU(txid, unit, fn, d)
}

// WriteSingle builds a fc 5/6 request (the response is an identical
// echo). For fc 5 the conventional ON value is 0xFF00.
func WriteSingle(txid uint16, unit, fn uint8, addr, value uint16) []byte {
	var d [4]byte
	binary.BigEndian.PutUint16(d[0:2], addr)
	binary.BigEndian.PutUint16(d[2:4], value)
	return MarshalADU(txid, unit, fn, d[:])
}

// WriteMultipleRegs builds a fc 16 request.
func WriteMultipleRegs(txid uint16, unit uint8, addr uint16, values []uint16) []byte {
	d := make([]byte, 5+2*len(values))
	binary.BigEndian.PutUint16(d[0:2], addr)
	binary.BigEndian.PutUint16(d[2:4], uint16(len(values)))
	d[4] = byte(2 * len(values))
	for i, v := range values {
		binary.BigEndian.PutUint16(d[5+2*i:], v)
	}
	return MarshalADU(txid, unit, FuncWriteMultipleRegs, d)
}

// WriteMultipleAck builds the fc 15/16 response (start address + item
// count).
func WriteMultipleAck(txid uint16, unit, fn uint8, addr, count uint16) []byte {
	var d [4]byte
	binary.BigEndian.PutUint16(d[0:2], addr)
	binary.BigEndian.PutUint16(d[2:4], count)
	return MarshalADU(txid, unit, fn, d[:])
}

// Exception builds an exception response for a request function code.
func Exception(txid uint16, unit, fn, code uint8) []byte {
	return MarshalADU(txid, unit, fn|ExceptionBit, []byte{code})
}
