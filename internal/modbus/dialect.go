package modbus

import (
	"encoding/binary"

	"uncharted/internal/protocol"
)

// dialect implements protocol.Dialect for Modbus/TCP.
type dialect struct{}

func (dialect) ID() protocol.ID        { return protocol.Modbus }
func (dialect) Name() string           { return "modbus" }
func (dialect) Port() uint16           { return Port }
func (dialect) StationInitiates() bool { return false }
func (dialect) NewSession() protocol.Session {
	return &session{pending: make(map[uint16]request)}
}

// Sniff accepts a plausible MBAP header.
func (dialect) Sniff(b []byte) bool {
	return len(b) >= 8 && plausibleHeader(b)
}

// request remembers an outstanding master request so the matching
// response can be decoded into addressed measurements.
type request struct {
	fn    uint8
	addr  uint16
	count uint16
}

// session is the per-flow protocol.Session. Both directions of the
// flow share it, so register reads pair across directions by MBAP
// transaction id.
type session struct {
	pending map[uint16]request
	pts     []protocol.Point
}

// Token kinds: a request travels master->outstation, so fromStation
// selects response vs request; the exception bit overrides both.
func tokenFor(a ADU, fromStation bool) protocol.Token {
	t := protocol.Token{Proto: protocol.Modbus, Code: uint16(a.BaseFunc())}
	switch {
	case a.Exception():
		t.Kind = protocol.KindModbusException
	case fromStation:
		t.Kind = protocol.KindModbusResponse
	default:
		t.Kind = protocol.KindModbusRequest
	}
	return t
}

func (s *session) Next(buf []byte, fromStation bool) (protocol.Event, []byte, int, bool) {
	frame, rest, skipped, ok := NextFrame(buf)
	if !ok {
		return protocol.Event{}, rest, skipped, false
	}
	a, err := DecodeADU(frame)
	if err != nil {
		return protocol.Event{Err: err}, rest, skipped, true
	}
	ev := protocol.Event{Token: tokenFor(a, fromStation)}
	s.pts = s.pts[:0]
	switch {
	case a.Exception():
		delete(s.pending, a.TxID)
	case fromStation:
		s.respond(a)
	default:
		s.request(a)
	}
	if len(s.pts) > 0 {
		ev.Points = s.pts
	}
	return ev, rest, skipped, true
}

// request books a master->outstation PDU: reads are remembered for
// response pairing, writes yield command points immediately (they are
// the control-direction actions the IDS severity ladder watches).
func (s *session) request(a ADU) {
	switch a.Func {
	case FuncReadCoils, FuncReadDiscreteInputs, FuncReadHolding, FuncReadInput:
		if len(a.Data) < 4 {
			return
		}
		// A master whose responses never arrive (half-duplex capture,
		// dropped direction) must not grow the pairing table without
		// bound.
		if len(s.pending) >= 1024 {
			for k := range s.pending {
				delete(s.pending, k)
				break
			}
		}
		s.pending[a.TxID] = request{
			fn:    a.Func,
			addr:  binary.BigEndian.Uint16(a.Data[0:2]),
			count: binary.BigEndian.Uint16(a.Data[2:4]),
		}
	case FuncWriteSingleCoil:
		if len(a.Data) < 4 {
			return
		}
		v := float64(0)
		if binary.BigEndian.Uint16(a.Data[2:4]) != 0 {
			v = 1
		}
		s.point(binary.BigEndian.Uint16(a.Data[0:2]), a.Func, v, true)
	case FuncWriteSingleReg:
		if len(a.Data) < 4 {
			return
		}
		s.point(binary.BigEndian.Uint16(a.Data[0:2]), a.Func,
			float64(binary.BigEndian.Uint16(a.Data[2:4])), true)
	case FuncWriteMultipleRegs:
		if len(a.Data) < 5 {
			return
		}
		addr := binary.BigEndian.Uint16(a.Data[0:2])
		count := int(binary.BigEndian.Uint16(a.Data[2:4]))
		vals := a.Data[5:]
		for i := 0; i < count && 2*i+1 < len(vals); i++ {
			s.point(addr+uint16(i), a.Func,
				float64(binary.BigEndian.Uint16(vals[2*i:])), true)
		}
	case FuncWriteMultipleCoils:
		if len(a.Data) < 5 {
			return
		}
		addr := binary.BigEndian.Uint16(a.Data[0:2])
		count := int(binary.BigEndian.Uint16(a.Data[2:4]))
		bits := a.Data[5:]
		for i := 0; i < count && i/8 < len(bits); i++ {
			v := float64(0)
			if bits[i/8]&(1<<(i%8)) != 0 {
				v = 1
			}
			s.point(addr+uint16(i), a.Func, v, true)
		}
	}
}

// respond books an outstation->master PDU, pairing it with the pending
// request of the same transaction id to address the returned values.
func (s *session) respond(a ADU) {
	req, ok := s.pending[a.TxID]
	if !ok || req.fn != a.Func {
		return
	}
	delete(s.pending, a.TxID)
	switch a.Func {
	case FuncReadHolding, FuncReadInput:
		if len(a.Data) < 1 {
			return
		}
		vals := a.Data[1:]
		n := int(req.count)
		for i := 0; i < n && 2*i+1 < len(vals); i++ {
			s.point(req.addr+uint16(i), a.Func,
				float64(binary.BigEndian.Uint16(vals[2*i:])), false)
		}
	case FuncReadCoils, FuncReadDiscreteInputs:
		if len(a.Data) < 1 {
			return
		}
		bits := a.Data[1:]
		n := int(req.count)
		for i := 0; i < n && i/8 < len(bits); i++ {
			v := float64(0)
			if bits[i/8]&(1<<(i%8)) != 0 {
				v = 1
			}
			s.point(req.addr+uint16(i), a.Func, v, false)
		}
	}
}

func (s *session) point(addr uint16, fn uint8, v float64, command bool) {
	s.pts = append(s.pts, protocol.Point{
		IOA:     uint32(addr),
		Code:    fn,
		V:       v,
		Command: command,
	})
}

func init() { protocol.Register(dialect{}) }
