package modbus

import (
	"bytes"
	"testing"

	"uncharted/internal/protocol"
)

func TestADURoundTrip(t *testing.T) {
	req := ReadRequest(42, 3, FuncReadHolding, 100, 8)
	a, err := DecodeADU(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.TxID != 42 || a.Unit != 3 || a.Func != FuncReadHolding || len(a.Data) != 4 {
		t.Fatalf("decoded %+v", a)
	}
	ex := Exception(42, 3, FuncReadHolding, 2)
	a, err = DecodeADU(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Exception() || a.BaseFunc() != FuncReadHolding {
		t.Fatalf("exception decode %+v", a)
	}
}

func TestNextFrameResync(t *testing.T) {
	frame := ReadRequest(7, 1, FuncReadInput, 0, 4)
	// Garbage that cannot form a plausible MBAP header (protocol id
	// bytes non-zero), then the real frame.
	buf := append([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0xFF}, frame...)
	got, rest, skipped, ok := NextFrame(buf)
	if !ok {
		t.Fatal("frame not found")
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("wrong frame returned")
	}
	if skipped != 5 || len(rest) != 0 {
		t.Fatalf("skipped=%d rest=%d", skipped, len(rest))
	}
}

// Drive a polling exchange through the session: the response's register
// values must come back addressed by the request's start address.
func TestSessionRegisterRead(t *testing.T) {
	d := protocol.Get(protocol.Modbus)
	if d == nil {
		t.Fatal("modbus dialect not registered")
	}
	sess := d.NewSession()

	ev, _, _, ok := sess.Next(ReadRequest(9, 1, FuncReadHolding, 200, 3), false)
	if !ok || ev.Err != nil {
		t.Fatalf("request: ok=%v err=%v", ok, ev.Err)
	}
	if ev.Token.String() != "F3" {
		t.Fatalf("request token = %v", ev.Token)
	}
	if len(ev.Points) != 0 {
		t.Fatalf("read request yielded %d points", len(ev.Points))
	}

	ev, _, _, ok = sess.Next(ReadRegistersResponse(9, 1, FuncReadHolding, []uint16{11, 22, 33}), true)
	if !ok || ev.Err != nil {
		t.Fatalf("response: ok=%v err=%v", ok, ev.Err)
	}
	if ev.Token.String() != "R3" {
		t.Fatalf("response token = %v", ev.Token)
	}
	if len(ev.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(ev.Points))
	}
	for i, p := range ev.Points {
		if p.IOA != uint32(200+i) || p.Command {
			t.Errorf("point %d: %+v", i, p)
		}
	}
	if ev.Points[1].V != 22 {
		t.Errorf("point 1 value = %v", ev.Points[1].V)
	}

	// An unpaired response (unknown txid) yields a token but no points.
	ev, _, _, _ = sess.Next(ReadRegistersResponse(999, 1, FuncReadHolding, []uint16{5}), true)
	if len(ev.Points) != 0 {
		t.Fatalf("unpaired response yielded points")
	}
}

func TestSessionCoilReadAndWrites(t *testing.T) {
	sess := dialect{}.NewSession()
	if ev, _, _, _ := sess.Next(ReadRequest(1, 1, FuncReadCoils, 10, 10), false); ev.Err != nil {
		t.Fatal(ev.Err)
	}
	bits := []bool{true, false, true, true, false, false, true, false, true, true}
	ev, _, _, _ := sess.Next(ReadBitsResponse(1, 1, FuncReadCoils, bits), true)
	if len(ev.Points) != 10 {
		t.Fatalf("coil points = %d, want 10", len(ev.Points))
	}
	for i, p := range ev.Points {
		want := float64(0)
		if bits[i] {
			want = 1
		}
		if p.V != want || p.IOA != uint32(10+i) {
			t.Errorf("coil %d: %+v", i, p)
		}
	}

	// Writes are command points straight from the request.
	ev, _, _, _ = sess.Next(WriteSingle(2, 1, FuncWriteSingleReg, 50, 1234), false)
	if ev.Token.String() != "F6" || !ev.Token.IsCommand() {
		t.Fatalf("write token = %v, IsCommand = %v", ev.Token, ev.Token.IsCommand())
	}
	if len(ev.Points) != 1 || !ev.Points[0].Command || ev.Points[0].V != 1234 {
		t.Fatalf("write points = %+v", ev.Points)
	}
	ev, _, _, _ = sess.Next(WriteMultipleRegs(3, 1, 60, []uint16{7, 8}), false)
	if ev.Token.String() != "F16" || len(ev.Points) != 2 {
		t.Fatalf("multi-write token=%v points=%d", ev.Token, len(ev.Points))
	}

	// An exception response clears the pending pair and tokenises as X.
	sess.Next(ReadRequest(4, 1, FuncReadHolding, 0, 1), false)
	ev, _, _, _ = sess.Next(Exception(4, 1, FuncReadHolding, 2), true)
	if ev.Token.String() != "X3" || len(ev.Points) != 0 {
		t.Fatalf("exception token=%v points=%d", ev.Token, len(ev.Points))
	}
}

// FuzzDecodeMBAP hammers framing + ADU decoding + session pairing with
// arbitrary bytes: no panics, guaranteed forward progress.
func FuzzDecodeMBAP(f *testing.F) {
	f.Add(ReadRequest(1, 1, FuncReadHolding, 0, 4))
	f.Add(ReadRegistersResponse(1, 1, FuncReadHolding, []uint16{1, 2, 3, 4}))
	f.Add(WriteMultipleRegs(2, 1, 10, []uint16{5}))
	f.Add(Exception(3, 1, FuncReadCoils, 1))
	f.Add([]byte{0, 1, 0, 0, 0, 2, 1})
	// Mixed-garbage corpus: other dialects' frames around valid MBAP —
	// Modbus has no magic byte, so resync relies on plausible-header
	// scanning and these are the realistic false-sync inputs. 0x68… is
	// an IEC 104 S-frame, 0xAA 0x01 opens a C37.118 data frame.
	iecS := []byte{0x68, 0x04, 0x01, 0x00, 0x00, 0x00}
	c37 := []byte{0xAA, 0x01, 0x00, 0x12, 0x00, 0x07, 0x5f, 0x5e, 0x10, 0x00, 0x00, 0x01, 0x86, 0xa0, 0x00, 0x00, 0xab, 0xcd}
	f.Add(append(append([]byte{}, iecS...), ReadRequest(4, 1, FuncReadHolding, 100, 6)...))
	f.Add(append(append([]byte{}, c37...), ReadRegistersResponse(4, 1, FuncReadHolding, []uint16{9})...))
	f.Add(append(append(append([]byte{}, ReadRequest(5, 1, FuncReadCoils, 10, 8)...), iecS...), c37...))
	f.Fuzz(func(t *testing.T, data []byte) {
		sess := dialect{}.NewSession()
		buf := data
		for i := 0; i < len(data)+4; i++ {
			before := len(buf)
			_, rest, skipped, ok := sess.Next(buf, i%2 == 1)
			if skipped < 0 {
				t.Fatalf("negative skip")
			}
			if !ok {
				if len(rest) > before {
					t.Fatalf("rest grew")
				}
				break
			}
			if len(rest) >= before {
				t.Fatalf("no progress: %d -> %d", before, len(rest))
			}
			buf = rest
		}
	})
}
