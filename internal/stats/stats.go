// Package stats provides the small statistical toolkit shared by the
// measurement pipeline: moments, percentiles, histograms (linear and
// logarithmic), and normalized-variance scoring used by the physical
// deep-packet-inspection analysis.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than
// two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// NormalizedVariance returns the variance of xs scaled by the squared
// mean (the squared coefficient of variation). It is the score the paper
// uses (§6.4) to find "interesting" physical time series: quantities that
// fluctuate more than usual relative to their operating point. Series
// with a mean of ~0 are scored by raw variance instead, so a flat-at-zero
// series does not produce an infinite score.
func NormalizedVariance(xs []float64) float64 {
	m := Mean(xs)
	v := Variance(xs)
	if math.Abs(m) < 1e-9 {
		return v
	}
	return v / (m * m)
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Bucket is one bin of a histogram: [Lo, Hi) with Count samples.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins xs into n equal-width buckets between the sample min
// and max. The final bucket is closed on both ends so the maximum value
// is counted.
func Histogram(xs []float64, n int) ([]Bucket, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs n > 0, got %d", n)
	}
	min, max, _ := MinMax(xs)
	if min == max {
		return []Bucket{{Lo: min, Hi: max, Count: len(xs)}}, nil
	}
	width := (max - min) / float64(n)
	if math.IsInf(width, 0) || width == 0 {
		// The sample range overflows float64 (or underflows to zero
		// width); fall back to a single bucket rather than indexing
		// with a non-finite ratio.
		return []Bucket{{Lo: min, Hi: max, Count: len(xs)}}, nil
	}
	bs := make([]Bucket, n)
	for i := range bs {
		bs[i].Lo = min + float64(i)*width
		bs[i].Hi = min + float64(i+1)*width
	}
	bs[n-1].Hi = max
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bs[i].Count++
	}
	return bs, nil
}

// LogHistogram bins strictly positive xs into n buckets equally spaced
// in log10, the layout used by the paper's flow-duration plot (Fig. 8).
// Non-positive samples are counted into the first bucket.
func LogHistogram(xs []float64, n int) ([]Bucket, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if n <= 0 {
		return nil, fmt.Errorf("stats: log histogram needs n > 0, got %d", n)
	}
	minPos := math.Inf(1)
	maxPos := math.Inf(-1)
	for _, x := range xs {
		if x > 0 {
			if x < minPos {
				minPos = x
			}
			if x > maxPos {
				maxPos = x
			}
		}
	}
	if math.IsInf(minPos, 1) {
		// All samples non-positive: single bucket.
		return []Bucket{{Lo: 0, Hi: 0, Count: len(xs)}}, nil
	}
	loExp := math.Floor(math.Log10(minPos))
	hiExp := math.Ceil(math.Log10(maxPos))
	if hiExp <= loExp {
		hiExp = loExp + 1
	}
	width := (hiExp - loExp) / float64(n)
	bs := make([]Bucket, n)
	for i := range bs {
		bs[i].Lo = math.Pow(10, loExp+float64(i)*width)
		bs[i].Hi = math.Pow(10, loExp+float64(i+1)*width)
	}
	for _, x := range xs {
		if x <= 0 {
			bs[0].Count++
			continue
		}
		i := int((math.Log10(x) - loExp) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bs[i].Count++
	}
	return bs, nil
}

// CrossCorrelation returns the Pearson correlation between xs and ys
// with ys shifted by lag samples (positive lag means ys is delayed
// relative to xs). Series must have equal length.
func CrossCorrelation(xs, ys []float64, lag int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series length mismatch %d vs %d", len(xs), len(ys))
	}
	if lag < 0 {
		return CrossCorrelation(ys, xs, -lag)
	}
	if lag >= len(xs) {
		return 0, fmt.Errorf("stats: lag %d exceeds series length %d", lag, len(xs))
	}
	a := xs[:len(xs)-lag]
	b := ys[lag:]
	return Pearson(a, b)
}

// Pearson returns the Pearson correlation coefficient of two
// equal-length series. Constant series correlate as 0.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: series length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x := a[i] - ma
		y := b[i] - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0, nil
	}
	return num / math.Sqrt(da*db), nil
}

// Standardize returns (x - mean) / stddev for every sample, leaving a
// constant series as all zeros. Used to scale clustering features.
func Standardize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}
