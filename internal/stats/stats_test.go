package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5) {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); !almostEqual(v, 4) {
		t.Errorf("variance = %v", v)
	}
	if sd := StdDev(xs); !almostEqual(sd, 2) {
		t.Errorf("stddev = %v", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton moments not zero")
	}
}

func TestNormalizedVariance(t *testing.T) {
	// Same relative fluctuation at different operating points scores
	// the same.
	a := []float64{100, 110, 90, 100}
	b := []float64{1000, 1100, 900, 1000}
	if !almostEqual(NormalizedVariance(a), NormalizedVariance(b)) {
		t.Errorf("scale dependence: %v vs %v", NormalizedVariance(a), NormalizedVariance(b))
	}
	// Zero-mean series falls back to raw variance, not +Inf.
	z := []float64{-1, 1, -1, 1}
	if math.IsInf(NormalizedVariance(z), 0) {
		t.Error("zero-mean series scored infinite")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile succeeded")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile succeeded")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	bs, err := Histogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("histogram total %d, want %d", total, len(xs))
	}
	// Constant series collapses to one bucket.
	bs, err = Histogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].Count != 3 {
		t.Errorf("constant histogram = %+v", bs)
	}
	if _, err := Histogram(nil, 3); err == nil {
		t.Error("empty histogram succeeded")
	}
	if _, err := Histogram(xs, 0); err == nil {
		t.Error("zero-bucket histogram succeeded")
	}
}

func TestHistogramCountsAll(t *testing.T) {
	check := func(raw []float64, n uint8) bool {
		if len(raw) == 0 {
			return true
		}
		buckets := int(n%20) + 1
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		bs, err := Histogram(raw, buckets)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range bs {
			total += b.Count
		}
		return total == len(raw)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHistogram(t *testing.T) {
	// Durations spanning 1ms..1000s (the Fig. 8 spread).
	xs := []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
	bs, err := LogHistogram(xs, 6)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("log histogram total %d, want %d", total, len(xs))
	}
	if bs[0].Lo <= 0 {
		t.Errorf("first bucket lower bound %v not positive", bs[0].Lo)
	}
	// Zero durations fall into the first bucket instead of vanishing.
	bs, err = LogHistogram([]float64{0, 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, b := range bs {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("zero-duration sample lost: total %d", total)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1) {
		t.Errorf("perfect correlation = %v", r)
	}
	inv := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(a, inv)
	if !almostEqual(r, -1) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, _ = Pearson(a, flat)
	if r != 0 {
		t.Errorf("constant series correlation = %v", r)
	}
	if _, err := Pearson(a, a[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCrossCorrelation(t *testing.T) {
	// ys is xs delayed by 2 samples; correlation peaks at lag 2.
	xs := []float64{0, 1, 0, -1, 0, 1, 0, -1, 0, 1, 0, -1}
	ys := make([]float64, len(xs))
	copy(ys[2:], xs[:len(xs)-2])
	at0, _ := CrossCorrelation(xs, ys, 0)
	at2, _ := CrossCorrelation(xs, ys, 2)
	if at2 <= at0 {
		t.Errorf("lag-2 correlation %v not above lag-0 %v", at2, at0)
	}
	if _, err := CrossCorrelation(xs, ys, len(xs)); err == nil {
		t.Error("excessive lag accepted")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if !almostEqual(Mean(z), 0) {
		t.Errorf("standardized mean = %v", Mean(z))
	}
	if !almostEqual(StdDev(z), 1) {
		t.Errorf("standardized stddev = %v", StdDev(z))
	}
	for _, v := range Standardize([]float64{7, 7, 7}) {
		if v != 0 {
			t.Error("constant series must standardize to zeros")
		}
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil || min != -1 || max != 5 {
		t.Fatalf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("empty MinMax succeeded")
	}
}

func TestDetectPeriodCleanCycle(t *testing.T) {
	gaps := make([]float64, 50)
	for i := range gaps {
		gaps[i] = 2.0 + 0.02*float64(i%3) // 2s reporting with jitter
	}
	est, ok := DetectPeriod(gaps, 0.2, 0.8)
	if !ok {
		t.Fatalf("period not detected: %+v", est)
	}
	if est.Period < 1.9 || est.Period > 2.1 {
		t.Fatalf("period %v, want ~2", est.Period)
	}
	if est.Strength < 0.99 {
		t.Fatalf("strength %v", est.Strength)
	}
}

func TestDetectPeriodMixedTraffic(t *testing.T) {
	// Mostly 6s cycle with occasional spontaneous bursts.
	var gaps []float64
	for i := 0; i < 40; i++ {
		gaps = append(gaps, 6.0+0.05*float64(i%2))
	}
	gaps = append(gaps, 0.3, 0.1, 0.2, 17, 0.4)
	est, ok := DetectPeriod(gaps, 0.2, 0.5)
	if !ok {
		t.Fatalf("period not detected: %+v", est)
	}
	if est.Period < 5.5 || est.Period > 6.5 {
		t.Fatalf("period %v, want ~6", est.Period)
	}
}

func TestDetectPeriodAperiodic(t *testing.T) {
	// Geometric spread: no dominant cluster.
	gaps := []float64{0.1, 0.5, 2.5, 12, 60, 300, 0.02, 7, 33}
	if est, ok := DetectPeriod(gaps, 0.2, 0.6); ok {
		t.Fatalf("aperiodic series detected as periodic: %+v", est)
	}
}

func TestDetectPeriodTooFewSamples(t *testing.T) {
	if _, ok := DetectPeriod([]float64{1, 1, 1}, 0.2, 0.5); ok {
		t.Fatal("three gaps accepted")
	}
	if _, ok := DetectPeriod([]float64{-1, 0, -2, 0}, 0.2, 0.5); ok {
		t.Fatal("non-positive gaps accepted")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5, 5}); cv != 0 {
		t.Fatalf("constant series cv %v", cv)
	}
	if cv := CoefficientOfVariation([]float64{-1, 1}); !math.IsInf(cv, 1) {
		t.Fatalf("zero-mean cv %v", cv)
	}
	periodic := CoefficientOfVariation([]float64{2, 2.1, 1.9, 2, 2.05})
	bursty := CoefficientOfVariation([]float64{0.1, 9, 0.2, 30, 0.5})
	if periodic >= bursty {
		t.Fatalf("cv ordering broken: %v vs %v", periodic, bursty)
	}
}
