package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the two-sample KS statistic D: the largest
// absolute distance between the empirical CDFs of a and b. It is the
// distribution-shift test the drift engine applies to flow-duration
// and inter-arrival populations across captures. Returns ErrEmpty when
// either sample set is empty.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Advance past ties so D is evaluated between jump points.
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSSignificance returns the asymptotic p-value for a two-sample KS
// statistic d with sample sizes na and nb (Q_KS of Press et al.):
// small values mean the two samples are unlikely to share a
// distribution. Conservative for small samples.
func KSSignificance(d float64, na, nb int) float64 {
	if na <= 0 || nb <= 0 || d <= 0 {
		return 1
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	var q float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * 2 * math.Exp(-2*lambda*lambda*float64(j*j))
		q += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// JensenShannon returns the Jensen–Shannon divergence between two
// discrete distributions given as weight maps (weights need not be
// normalised; zero-total maps count as empty). Log base 2, so the
// result is bounded [0, 1]: 0 for identical distributions, 1 for
// disjoint support. One empty and one non-empty distribution diverge
// maximally; two empty distributions do not diverge.
func JensenShannon(p, q map[string]float64) float64 {
	var tp, tq float64
	for _, v := range p {
		if v > 0 {
			tp += v
		}
	}
	for _, v := range q {
		if v > 0 {
			tq += v
		}
	}
	if tp == 0 && tq == 0 {
		return 0
	}
	if tp == 0 || tq == 0 {
		return 1
	}
	keys := make(map[string]struct{}, len(p)+len(q))
	for k := range p {
		keys[k] = struct{}{}
	}
	for k := range q {
		keys[k] = struct{}{}
	}
	var js float64
	for k := range keys {
		pp := math.Max(p[k], 0) / tp
		qq := math.Max(q[k], 0) / tq
		m := (pp + qq) / 2
		if pp > 0 {
			js += pp / 2 * math.Log2(pp/m)
		}
		if qq > 0 {
			js += qq / 2 * math.Log2(qq/m)
		}
	}
	if js < 0 {
		return 0
	}
	if js > 1 {
		return 1
	}
	return js
}
