package stats

import (
	"math"
	"sort"
)

// PeriodEstimate is the result of DetectPeriod.
type PeriodEstimate struct {
	// Period is the dominant spacing, in the same unit as the input.
	Period float64
	// Strength is the fraction of gaps within Tolerance of the
	// detected period (1 = perfectly periodic).
	Strength float64
	// Samples is the number of gaps considered.
	Samples int
}

// DetectPeriod finds the dominant reporting period of an event series
// from its inter-arrival gaps. SCADA telemetry is machine-generated:
// cyclic points produce tight clusters of identical gaps, so a robust
// mode estimate beats spectral methods at these sample sizes. Gaps are
// clustered within tolerance (a fraction of the candidate period,
// e.g. 0.2); the cluster with the most mass wins.
//
// Returns ok=false when fewer than 4 gaps exist or no cluster holds at
// least minStrength of the gaps.
func DetectPeriod(gaps []float64, tolerance, minStrength float64) (PeriodEstimate, bool) {
	var positive []float64
	for _, g := range gaps {
		if g > 0 {
			positive = append(positive, g)
		}
	}
	if len(positive) < 4 {
		return PeriodEstimate{}, false
	}
	if tolerance <= 0 {
		tolerance = 0.2
	}
	sorted := append([]float64(nil), positive...)
	sort.Float64s(sorted)

	// Sweep clusters over the sorted gaps: a window [g, g*(1+tol)]
	// anchored at each distinct gap; the densest window's mean is the
	// period.
	bestCount := 0
	bestMean := 0.0
	i := 0
	for i < len(sorted) {
		lo := sorted[i]
		hi := lo * (1 + tolerance)
		j := i
		var sum float64
		for j < len(sorted) && sorted[j] <= hi {
			sum += sorted[j]
			j++
		}
		if n := j - i; n > bestCount {
			bestCount = n
			bestMean = sum / float64(n)
		}
		i++
	}
	est := PeriodEstimate{
		Period:   bestMean,
		Strength: float64(bestCount) / float64(len(positive)),
		Samples:  len(positive),
	}
	if est.Strength < minStrength {
		return est, false
	}
	return est, true
}

// CoefficientOfVariation returns stddev/mean, the dimensionless jitter
// measure used to separate periodic from spontaneous traffic (0 for a
// constant series, undefined mean → +Inf).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.Inf(1)
	}
	return StdDev(xs) / math.Abs(m)
}
