package core

import (
	"errors"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/tcpflow"
)

// Metric names exported by an instrumented Analyzer.
const (
	MetricPackets         = "uncharted_analyzer_packets_total"
	MetricFrames          = "uncharted_analyzer_frames_total"
	MetricParseErrors     = "uncharted_analyzer_parse_errors_total"
	MetricStrictInvalid   = "uncharted_analyzer_strict_invalid_total"
	MetricResyncs         = "uncharted_analyzer_resyncs_total"
	MetricResyncBytes     = "uncharted_analyzer_resync_bytes_total"
	MetricSeqAnomalies    = "uncharted_analyzer_seq_anomalies_total"
	MetricComplianceFlips = "uncharted_analyzer_compliance_flips_total"
	MetricDecodeErrors    = "uncharted_analyzer_decode_errors_total"
)

// Stage names booked by the instrumented ReadPCAP loop.
const (
	StagePcapRead    = "pcap.read"
	StagePcapDecode  = "pcap.decode"
	StageAnalyzeFeed = "analyzer.feed"
)

// analyzerMetrics holds the pre-resolved handles the hot path updates
// plus the registry for the rare labeled paths (parse-error causes,
// per-dialect strict verdicts) that resolve lazily.
type analyzerMetrics struct {
	reg *obs.Registry

	packetsIEC   *obs.Counter
	packetsOther *obs.Counter
	framesI      *obs.Counter
	framesS      *obs.Counter
	framesU      *obs.Counter
	resyncs      *obs.Counter
	resyncBytes  *obs.Counter
	seqAnomalies *obs.Counter
	flips        *obs.Counter
	decodeErrors *obs.Counter

	// strictBy caches the per-dialect strict-invalid handles. The
	// analyzer runs single-goroutine, so a plain map suffices.
	strictBy map[string]*obs.Counter
}

func newAnalyzerMetrics(reg *obs.Registry) *analyzerMetrics {
	reg.SetHelp(MetricPackets, "TCP packets fed to the analyzer, split by whether they touch the IEC 104 port.")
	reg.SetHelp(MetricFrames, "APDUs the tolerant parser accepted, by APCI format.")
	reg.SetHelp(MetricParseErrors, "Frames no candidate dialect could decode, by cause.")
	reg.SetHelp(MetricStrictInvalid, "I-frames a strict standard-profile parser rejects, by the dialect that rescued them.")
	reg.SetHelp(MetricResyncs, "Times the framer skipped garbage to find a 0x68 start byte.")
	reg.SetHelp(MetricResyncBytes, "Bytes discarded while resynchronising on 0x68.")
	reg.SetHelp(MetricSeqAnomalies, "I-frames whose N(S) broke the per-direction sequence continuity.")
	reg.SetHelp(MetricComplianceFlips, "Stations whose detected dialect settled on (or moved to) a new profile.")
	reg.SetHelp(MetricDecodeErrors, "Capture records that failed Ethernet/IP/TCP decoding.")
	// Pre-register the known causes at zero so the malformed-frame
	// breakdown is visible (and rate()-able) before the first error.
	for _, cause := range []string{
		"no_profile", "short_frame", "bad_start_byte", "bad_length", "bad_control",
		"short_asdu", "unsupported_type", "object_count", "no_objects", "trailing_bytes",
	} {
		reg.Counter(MetricParseErrors, "cause", cause)
	}
	return &analyzerMetrics{
		reg:          reg,
		packetsIEC:   reg.Counter(MetricPackets, "proto", "iec104"),
		packetsOther: reg.Counter(MetricPackets, "proto", "other"),
		framesI:      reg.Counter(MetricFrames, "format", "i"),
		framesS:      reg.Counter(MetricFrames, "format", "s"),
		framesU:      reg.Counter(MetricFrames, "format", "u"),
		resyncs:      reg.Counter(MetricResyncs),
		resyncBytes:  reg.Counter(MetricResyncBytes),
		seqAnomalies: reg.Counter(MetricSeqAnomalies),
		flips:        reg.Counter(MetricComplianceFlips),
		decodeErrors: reg.Counter(MetricDecodeErrors),
		strictBy:     make(map[string]*obs.Counter),
	}
}

// notePacket books one fed packet. Nil-safe.
func (m *analyzerMetrics) notePacket(iec bool) {
	if m == nil {
		return
	}
	if iec {
		m.packetsIEC.Inc()
	} else {
		m.packetsOther.Inc()
	}
}

// noteFrame books one accepted APDU by format. Nil-safe.
func (m *analyzerMetrics) noteFrame(format iec104.Format) {
	if m == nil {
		return
	}
	switch format {
	case iec104.FormatI:
		m.framesI.Inc()
	case iec104.FormatS:
		m.framesS.Inc()
	case iec104.FormatU:
		m.framesU.Inc()
	}
}

// noteResync books skipped garbage bytes. Nil-safe.
func (m *analyzerMetrics) noteResync(skipped int) {
	if m == nil || skipped == 0 {
		return
	}
	m.resyncs.Inc()
	m.resyncBytes.Add(int64(skipped))
}

// noteSeqAnomaly books a broken N(S) continuity. Nil-safe.
func (m *analyzerMetrics) noteSeqAnomaly() {
	if m != nil {
		m.seqAnomalies.Inc()
	}
}

// noteFlip books a station settling on a new dialect. Nil-safe.
func (m *analyzerMetrics) noteFlip() {
	if m != nil {
		m.flips.Inc()
	}
}

// noteDecodeError books an undecodable capture record. Nil-safe.
func (m *analyzerMetrics) noteDecodeError() {
	if m != nil {
		m.decodeErrors.Inc()
	}
}

// noteParseError books a rejected frame under its cause label. Parse
// errors are rare, so the labeled series resolves through the registry
// rather than a pre-allocated handle. Nil-safe.
func (m *analyzerMetrics) noteParseError(cause string) {
	if m != nil {
		m.reg.Counter(MetricParseErrors, "cause", cause).Inc()
	}
}

// noteStrictInvalid books a strict-parser rejection under the dialect
// the tolerant parser used. Nil-safe.
func (m *analyzerMetrics) noteStrictInvalid(dialect string) {
	if m == nil {
		return
	}
	c := m.strictBy[dialect]
	if c == nil {
		c = m.reg.Counter(MetricStrictInvalid, "dialect", dialect)
		m.strictBy[dialect] = c
	}
	c.Inc()
}

// parseErrorCause maps a tolerant-parser failure to a stable label for
// the malformed-frame breakdown.
func parseErrorCause(err error) string {
	switch {
	case errors.Is(err, iec104.ErrNoProfile):
		return "no_profile"
	case errors.Is(err, iec104.ErrShortFrame):
		return "short_frame"
	case errors.Is(err, iec104.ErrBadStartByte):
		return "bad_start_byte"
	case errors.Is(err, iec104.ErrBadLength):
		return "bad_length"
	case errors.Is(err, iec104.ErrBadControl):
		return "bad_control"
	case errors.Is(err, iec104.ErrShortASDU):
		return "short_asdu"
	case errors.Is(err, iec104.ErrUnsupportedType):
		return "unsupported_type"
	case errors.Is(err, iec104.ErrObjectCount):
		return "object_count"
	case errors.Is(err, iec104.ErrNoObjects):
		return "no_objects"
	case errors.Is(err, iec104.ErrTrailing):
		return "trailing_bytes"
	case err == nil:
		return "empty_parse"
	}
	return "other"
}

// connLabel renders a flow direction for journal events.
func connLabel(sp tcpflow.StreamPayload) string {
	return sp.Src.String() + ">" + sp.Dst.String()
}

// journalEvent emits an event when a journal is attached. Nil-safe via
// Journal.Log.
func (a *Analyzer) journalEvent(ts time.Time, typ obs.EventType, conn string, attrs map[string]any) {
	a.journal.Log(ts, typ, conn, attrs)
}
