package core

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// shardedPartials splits a capture across n analyzers by unordered IP
// pair — the streaming engine's partitioning — and snapshots each.
func shardedPartials(t *testing.T, n int) []Partial {
	return shardedPartialsMode(t, n, false)
}

// shardedPartialsMode is shardedPartials with an optional mixed-protocol
// capture: multi adds a Modbus association to the trace and runs every
// shard analyzer in registry auto-detect mode, so the resulting partials
// carry cross-protocol Dialects and Streams state.
func shardedPartialsMode(t *testing.T, n int, multi bool) []Partial {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, 17)
	cfg.Duration = 6 * time.Minute
	cfg.EnableModbus = multi
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	names := NamesFromTopology(sim.Network())
	analyzers := make([]*Analyzer, n)
	for i := range analyzers {
		analyzers[i] = NewAnalyzer(names)
		if multi {
			analyzers[i].EnableProtocolDetect()
		}
	}
	rd, err := pcap.NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, ci, err := rd.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(rd.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a, b := pkt.IP.Src, pkt.IP.Dst
		if b.Compare(a) < 0 {
			a, b = b, a
		}
		h := uint64(14695981039346656037)
		for _, by := range a.As16() {
			h = (h ^ uint64(by)) * 1099511628211
		}
		for _, by := range b.As16() {
			h = (h ^ uint64(by)) * 1099511628211
		}
		analyzers[h%uint64(n)].FeedPacket(pkt)
	}
	parts := make([]Partial, n)
	for i, a := range analyzers {
		parts[i] = a.Partial()
	}
	return parts
}

// equalMerged asserts two merged partials describe the same network:
// exact equality for everything integer-valued (counters, chains,
// compliance, type counts, flow taxonomy, features) and tolerance
// equality for the floating-point moment digests, whose Welford/Chan
// merges are order-sensitive in the last bits.
func equalMerged(t *testing.T, label string, a, b Partial) {
	t.Helper()
	if a.Packets != b.Packets || a.IECPackets != b.IECPackets ||
		a.ParseErrors != b.ParseErrors || a.SeqAnomalies != b.SeqAnomalies ||
		a.TotalASDUs != b.TotalASDUs || a.FlowsEvicted != b.FlowsEvicted {
		t.Fatalf("%s: counters differ", label)
	}
	if !a.First.Equal(b.First) || !a.Last.Equal(b.Last) {
		t.Fatalf("%s: capture window differs", label)
	}
	if !reflect.DeepEqual(a.TypeCounts, b.TypeCounts) {
		t.Fatalf("%s: type counts differ", label)
	}
	if !reflect.DeepEqual(a.OtherPorts, b.OtherPorts) {
		t.Fatalf("%s: other-port tallies differ", label)
	}
	if !reflect.DeepEqual(a.Compliance, b.Compliance) {
		t.Fatalf("%s: compliance differs", label)
	}
	if !reflect.DeepEqual(a.Features, b.Features) {
		t.Fatalf("%s: session features differ", label)
	}
	if !reflect.DeepEqual(a.Dialects, b.Dialects) {
		t.Fatalf("%s: dialect stats differ:\n%+v\n%+v", label, a.Dialects, b.Dialects)
	}
	if !reflect.DeepEqual(a.Streams, b.Streams) {
		t.Fatalf("%s: stream compliance differs:\n%+v\n%+v", label, a.Streams, b.Streams)
	}

	fa, fb := a.Flows, b.Flows
	if fa.ShortLived != fb.ShortLived || fa.ShortLivedSubSec != fb.ShortLivedSubSec ||
		fa.ShortLivedOverSec != fb.ShortLivedOverSec || fa.LongLived != fb.LongLived {
		t.Fatalf("%s: flow taxonomy differs", label)
	}
	// Durations concatenate in merge order: compare as multisets.
	da := append([]time.Duration(nil), fa.ShortLivedDuration...)
	db := append([]time.Duration(nil), fb.ShortLivedDuration...)
	sort.Slice(da, func(i, j int) bool { return da[i] < da[j] })
	sort.Slice(db, func(i, j int) bool { return db[i] < db[j] })
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("%s: flow duration populations differ", label)
	}

	if len(a.Chains) != len(b.Chains) {
		t.Fatalf("%s: chain counts differ: %d vs %d", label, len(a.Chains), len(b.Chains))
	}
	for i := range a.Chains {
		ca, cb := a.Chains[i], b.Chains[i]
		if ca.Key != cb.Key || ca.Server != cb.Server || ca.Outstation != cb.Outstation {
			t.Fatalf("%s: chain %d identity differs", label, i)
		}
		if !reflect.DeepEqual(ca.Chain.State(), cb.Chain.State()) {
			t.Fatalf("%s: chain %s>%s counts differ", label, ca.Server, ca.Outstation)
		}
	}

	if len(a.Physical) != len(b.Physical) {
		t.Fatalf("%s: digest counts differ", label)
	}
	relClose := func(x, y float64) bool {
		if x == y {
			return true
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= 1e-9*math.Max(scale, 1)
	}
	for i := range a.Physical {
		da, db := a.Physical[i], b.Physical[i]
		if da.Key != db.Key || da.Type != db.Type || da.Command != db.Command || da.Count != db.Count {
			t.Fatalf("%s: digest %v identity differs", label, da.Key)
		}
		if da.Min != db.Min || da.Max != db.Max {
			t.Fatalf("%s: digest %v min/max differ", label, da.Key)
		}
		if !relClose(da.Mean, db.Mean) || !relClose(da.M2, db.M2) {
			t.Fatalf("%s: digest %v moments differ beyond tolerance: mean %v vs %v, m2 %v vs %v",
				label, da.Key, da.Mean, db.Mean, da.M2, db.M2)
		}
	}
}

// TestMergePartialsCommutativeAssociative: shard merge order must not
// change the merged profile — the property the drift engine depends on
// (a profile saved from a 4-shard stream must not "drift" against the
// same capture analyzed offline).
func TestMergePartialsCommutativeAssociative(t *testing.T) {
	parts := shardedPartials(t, 3)
	p0, p1, p2 := parts[0], parts[1], parts[2]

	base := MergePartials([]Partial{p0, p1, p2})
	perms := [][]Partial{
		{p0, p2, p1},
		{p1, p0, p2},
		{p1, p2, p0},
		{p2, p0, p1},
		{p2, p1, p0},
	}
	for i, perm := range perms {
		equalMerged(t, "commutativity perm "+string(rune('a'+i)), base, MergePartials(perm))
	}

	left := MergePartials([]Partial{MergePartials([]Partial{p0, p1}), p2})
	right := MergePartials([]Partial{p0, MergePartials([]Partial{p1, p2})})
	equalMerged(t, "associativity left", base, left)
	equalMerged(t, "associativity right", base, right)
	equalMerged(t, "associativity left-vs-right", left, right)

	// Identity: merging one partial with nothing changes nothing
	// observable.
	solo := MergePartials([]Partial{p0})
	equalMerged(t, "identity", solo, MergePartials([]Partial{solo}))
}

// TestMergePartialsCrossProtocolCommutative re-runs the merge-order
// property over a mixed-protocol capture: the per-dialect stats, token
// maps, proto-tagged chains and C37.118 stream verdicts must also be
// independent of shard merge order.
func TestMergePartialsCrossProtocolCommutative(t *testing.T) {
	parts := shardedPartialsMode(t, 3, true)
	p0, p1, p2 := parts[0], parts[1], parts[2]

	base := MergePartials([]Partial{p0, p1, p2})
	if len(base.Dialects) < 2 {
		t.Fatalf("mixed capture produced too few dialects to test: %+v", base.Dialects)
	}
	if len(base.Streams) == 0 {
		t.Fatal("mixed capture produced no stream compliance verdicts")
	}

	perms := [][]Partial{
		{p0, p2, p1},
		{p1, p0, p2},
		{p1, p2, p0},
		{p2, p0, p1},
		{p2, p1, p0},
	}
	for i, perm := range perms {
		equalMerged(t, "cross-proto commutativity perm "+string(rune('a'+i)), base, MergePartials(perm))
	}
	left := MergePartials([]Partial{MergePartials([]Partial{p0, p1}), p2})
	right := MergePartials([]Partial{p0, MergePartials([]Partial{p1, p2})})
	equalMerged(t, "cross-proto associativity", left, right)
	equalMerged(t, "cross-proto associativity vs flat", base, left)
}
