package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"uncharted/internal/cluster"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/protocol"
	"uncharted/internal/stats"
	"uncharted/internal/tcpflow"
)

// FlowReport is Table 3 plus the Fig. 8 histogram.
type FlowReport struct {
	Summary tcpflow.Summary
	// DurationHistogram bins short-lived flow durations in log space.
	DurationHistogram []stats.Bucket
}

// FlowAnalysis computes the §6.2 report.
func (a *Analyzer) FlowAnalysis() FlowReport {
	return FlowReportFromSummary(a.tracker.Summarize())
}

// FlowReportFromSummary builds the §6.2 report from a (possibly
// merged) flow summary.
func FlowReportFromSummary(sum tcpflow.Summary) FlowReport {
	var secs []float64
	for _, d := range sum.ShortLivedDuration {
		secs = append(secs, d.Seconds())
	}
	var hist []stats.Bucket
	if len(secs) > 0 {
		hist, _ = stats.LogHistogram(secs, 12)
	}
	return FlowReport{Summary: sum, DurationHistogram: hist}
}

// ComplianceReport is the §6.1 / Fig. 7 analysis.
type ComplianceReport struct {
	Stations []StationCompliance
	// NonCompliant lists the stations needing a legacy dialect.
	NonCompliant []string
}

// Compliance summarises dialect detection across all endpoints.
func (a *Analyzer) Compliance() ComplianceReport {
	var rep ComplianceReport
	for _, sc := range a.compliance {
		rep.Stations = append(rep.Stations, *sc)
	}
	sort.Slice(rep.Stations, func(i, j int) bool { return rep.Stations[i].Name < rep.Stations[j].Name })
	for _, sc := range rep.Stations {
		if sc.NonCompliant() {
			rep.NonCompliant = append(rep.NonCompliant, sc.Name)
		}
	}
	return rep
}

// SessionFeature is one clustering input row (§6.3): the five features
// the paper kept after silhouette-based selection.
type SessionFeature struct {
	Src, Dst string
	// DeltaT is the mean inter-arrival time in seconds.
	DeltaT float64
	// Num is the packet count of the session.
	Num float64
	// PctI, PctS, PctU are the APDU format fractions.
	PctI, PctS, PctU float64
}

// Vector renders the standardizable feature vector.
func (f SessionFeature) Vector() []float64 {
	return []float64{f.DeltaT, f.Num, f.PctI, f.PctS, f.PctU}
}

// SessionFeatures extracts one row per directional session that
// carried at least one APDU.
func (a *Analyzer) SessionFeatures() []SessionFeature {
	var out []SessionFeature
	for _, s := range a.sessions.Sorted() {
		key := tcpflow.SessionKey{Src: s.Key.Src, Dst: s.Key.Dst}
		dc, ok := a.sessionAPDUs[key]
		if !ok || dc.Total() == 0 {
			continue
		}
		total := float64(dc.Total())
		out = append(out, SessionFeature{
			Src:    a.Name(s.Key.Src),
			Dst:    a.Name(s.Key.Dst),
			DeltaT: s.MeanInterArrival(),
			Num:    float64(s.Packets),
			PctI:   float64(dc.I) / total,
			PctS:   float64(dc.S) / total,
			PctU:   float64(dc.U) / total,
		})
	}
	return out
}

// ClusterReport is Fig. 10/11: the fitted clusters, their PCA
// projection and per-cluster interpretation.
type ClusterReport struct {
	Features  []SessionFeature
	K         int
	Assign    []int
	Sizes     []int
	SSE       float64
	Sil       float64
	Projected [][]float64 // 2-D PCA coordinates per feature row
	// Elbow is the K-sweep used for model selection.
	Elbow []cluster.ElbowPoint
	// Outliers lists the members of the smallest cluster (cluster 0 in
	// the paper was two sessions: C2→O30 and C4↔O22).
	Outliers []string
}

// ClusterSessions runs the paper's K=5 K-means++ clustering over
// standardized session features, with model selection diagnostics.
func (a *Analyzer) ClusterSessions(k int, seed int64) (*ClusterReport, error) {
	return ClusterFeatures(a.SessionFeatures(), k, seed)
}

// ClusterFeatures clusters a prepared feature set — the entry point
// shard-merged streaming profiles use.
func ClusterFeatures(feats []SessionFeature, k int, seed int64) (*ClusterReport, error) {
	if len(feats) < k {
		return nil, fmt.Errorf("core: %d sessions with APDUs, need at least %d", len(feats), k)
	}
	raw := make([][]float64, len(feats))
	for i, f := range feats {
		raw[i] = f.Vector()
	}
	std := standardizeColumns(raw)

	rng := rand.New(rand.NewSource(seed))
	elbow, _, err := cluster.Sweep(std, min(8, len(std)), rng)
	if err != nil {
		return nil, err
	}
	res, err := cluster.KMeans(std, k, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	sil, err := cluster.Silhouette(std, res.Assign, k)
	if err != nil {
		return nil, err
	}
	pca, err := cluster.PCA(std)
	if err != nil {
		return nil, err
	}
	rep := &ClusterReport{
		Features:  feats,
		K:         k,
		Assign:    res.Assign,
		Sizes:     res.Sizes(),
		SSE:       res.SSE,
		Sil:       sil,
		Projected: pca.Project(std, 2),
		Elbow:     elbow,
	}
	// Outliers: members of the smallest non-empty cluster.
	smallest, smallestSize := -1, 1<<31
	for c, n := range rep.Sizes {
		if n > 0 && n < smallestSize {
			smallest, smallestSize = c, n
		}
	}
	for i, asg := range res.Assign {
		if asg == smallest {
			rep.Outliers = append(rep.Outliers, feats[i].Src+">"+feats[i].Dst)
		}
	}
	return rep, nil
}

func standardizeColumns(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	dim := len(rows[0])
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, dim)
	}
	col := make([]float64, len(rows))
	for j := 0; j < dim; j++ {
		for i := range rows {
			col[i] = rows[i][j]
		}
		std := stats.Standardize(col)
		for i := range rows {
			out[i][j] = std[i]
		}
	}
	return out
}

// ConnChain couples a logical connection with its Markov chain.
type ConnChain struct {
	Key        ConnKey
	Server     string
	Outstation string
	// Proto is the dialect whose tokens feed the chain; the zero value
	// is IEC 104, keeping single-protocol snapshots unchanged.
	Proto   protocol.ID
	Chain   *markov.Chain
	Cluster markov.SizeCluster
}

// MarkovReport is Figs. 12-17 and Table 6.
type MarkovReport struct {
	Chains []ConnChain
	// Point11 / Square / Ellipse membership (Fig. 13).
	Point11, Square, Ellipse []string
	// Classes per outstation and the Fig. 17 distribution.
	Classes      []markov.OutstationClass
	Distribution [9]int
}

// MarkovChains builds per-connection chains and classifies every
// outstation.
func (a *Analyzer) MarkovChains() MarkovReport {
	var chains []ConnChain
	for _, key := range a.ConnKeys() {
		ch := markov.NewChain()
		ch.Add(a.TokenStream(key))
		chains = append(chains, ConnChain{
			Key:        key,
			Server:     a.Name(key.Server),
			Outstation: a.Name(key.Outstation),
			Chain:      ch,
		})
	}
	return MarkovFromChains(chains)
}

// MarkovFromChains classifies a prepared per-connection chain set —
// the entry point shard-merged streaming profiles use. Each chain's
// Cluster field is (re)computed.
func MarkovFromChains(chains []ConnChain) MarkovReport {
	var rep MarkovReport
	var summaries []markov.ConnSummary
	for _, cc := range chains {
		cc.Cluster = markov.Classify11SquareEllipse(cc.Chain)
		rep.Chains = append(rep.Chains, cc)
		label := cc.Server + "-" + cc.Outstation
		switch cc.Cluster {
		case markov.ClusterPoint11:
			rep.Point11 = append(rep.Point11, label)
		case markov.ClusterEllipse:
			rep.Ellipse = append(rep.Ellipse, label)
		default:
			rep.Square = append(rep.Square, label)
		}
		summaries = append(summaries, markov.ConnSummary{
			Server: cc.Server, Outstation: cc.Outstation, Chain: cc.Chain,
		})
	}
	rep.Classes = markov.ClassifyAll(summaries)
	rep.Distribution = markov.TypeDistribution(rep.Classes)
	return rep
}

// TypeIDShare is one Table 7 row.
type TypeIDShare struct {
	Type    iec104.TypeID
	Count   int
	Percent float64
}

// TypeDistribution returns the observed ASDU type shares, descending.
func (a *Analyzer) TypeDistribution() []TypeIDShare {
	return TypeSharesFromCounts(a.typeCounts, a.totalASDUs)
}

// TypeSharesFromCounts renders (possibly merged) per-type ASDU counts
// as the Table 7 shares, descending.
func TypeSharesFromCounts(counts map[iec104.TypeID]int, total int) []TypeIDShare {
	var out []TypeIDShare
	for t, c := range counts {
		out = append(out, TypeIDShare{
			Type: t, Count: c, Percent: 100 * float64(c) / float64(total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// ObservedTypeCount returns how many distinct type IDs appeared (the
// paper observed 13 of the 54).
func (a *Analyzer) ObservedTypeCount() int { return len(a.typeCounts) }

// FormatTypeTable renders Table 7 as text.
func FormatTypeTable(shares []TypeIDShare) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %10s %10s\n", "Token", "Acronym", "Count", "Percent")
	for _, s := range shares {
		fmt.Fprintf(&b, "I%-5d %-10s %10d %9.4f%%\n", uint8(s.Type), s.Type.Acronym(), s.Count, s.Percent)
	}
	return b.String()
}
