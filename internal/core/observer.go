package core

// Observers composes frame observers into one that fans each event
// out in argument order. Nil entries are skipped; zero or one useful
// observer collapses to nil or the observer itself, so the hot path
// never pays for an empty fan-out.
func Observers(obs ...FrameObserver) FrameObserver {
	var live []FrameObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []FrameObserver

func (m multiObserver) ObserveFrame(ev FrameEvent) {
	for _, o := range m {
		o.ObserveFrame(ev)
	}
}
