package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"uncharted/internal/cluster"
	"uncharted/internal/stats"
	"uncharted/internal/tcpflow"
)

// ErrTooFewSessions is returned when a capture holds too few sessions
// for feature selection or clustering to be meaningful.
var ErrTooFewSessions = errors.New("core: too few sessions with APDU traffic")

// FeatureName identifies one of the ten candidate session features the
// paper started from (§6.3) before silhouette-based selection reduced
// them to five.
type FeatureName string

// The ten candidate features.
const (
	FeatDirection    FeatureName = "direction"     // from server (1) or outstation (0)
	FeatMeanInterArr FeatureName = "mean-delta-t"  // kept by the paper
	FeatStdInterArr  FeatureName = "std-delta-t"   //
	FeatTotalBytes   FeatureName = "total-bytes"   //
	FeatTotalPackets FeatureName = "num-packets"   // kept by the paper
	FeatMeanPktSize  FeatureName = "mean-pkt-size" //
	FeatIOACount     FeatureName = "ioa-count"     //
	FeatPctI         FeatureName = "pct-i"         // kept by the paper
	FeatPctS         FeatureName = "pct-s"         // kept by the paper
	FeatPctU         FeatureName = "pct-u"         // kept by the paper
)

// AllFeatureNames lists the candidates in a stable order.
var AllFeatureNames = []FeatureName{
	FeatDirection, FeatMeanInterArr, FeatStdInterArr, FeatTotalBytes,
	FeatTotalPackets, FeatMeanPktSize, FeatIOACount, FeatPctI, FeatPctS, FeatPctU,
}

// ExtendedFeature is one session's full ten-dimensional feature row.
type ExtendedFeature struct {
	Src, Dst string
	Values   map[FeatureName]float64
}

// ExtendedSessionFeatures computes all ten candidate features per
// directional session.
func (a *Analyzer) ExtendedSessionFeatures() []ExtendedFeature {
	var out []ExtendedFeature
	for _, s := range a.sessions.Sorted() {
		key := tcpflow.SessionKey{Src: s.Key.Src, Dst: s.Key.Dst}
		dc, ok := a.sessionAPDUs[key]
		if !ok || dc.Total() == 0 {
			continue
		}
		total := float64(dc.Total())
		dir := 0.0
		if _, isServer := a.names[s.Key.Src]; isServer && a.Name(s.Key.Src)[0] == 'C' {
			dir = 1
		}
		meanPkt := 0.0
		if s.Packets > 0 {
			meanPkt = float64(s.Bytes) / float64(s.Packets)
		}
		inter := interArrivals(s)
		out = append(out, ExtendedFeature{
			Src: a.Name(s.Key.Src), Dst: a.Name(s.Key.Dst),
			Values: map[FeatureName]float64{
				FeatDirection:    dir,
				FeatMeanInterArr: s.MeanInterArrival(),
				FeatStdInterArr:  stats.StdDev(inter),
				FeatTotalBytes:   float64(s.Bytes),
				FeatTotalPackets: float64(s.Packets),
				FeatMeanPktSize:  meanPkt,
				FeatIOACount:     float64(len(a.sessionIOAs[key])),
				FeatPctI:         float64(dc.I) / total,
				FeatPctS:         float64(dc.S) / total,
				FeatPctU:         float64(dc.U) / total,
			},
		})
	}
	return out
}

// interArrivals reconstructs the gap series from the mean and count;
// tcpflow keeps the raw gaps private, so approximate the spread from
// first/last and packet count when unavailable.
func interArrivals(s *tcpflow.Session) []float64 {
	return s.InterArrivals()
}

// FeatureScore is one row of the selection report.
type FeatureScore struct {
	Name       FeatureName
	Silhouette float64
	Selected   bool
}

// SelectFeatures reproduces the paper's dimensionality reduction: each
// candidate feature is clustered on its own (1-D K-means) and scored
// with the silhouette coefficient; the five best-separating features
// survive. The paper reports that mean inter-arrival time, packet
// count and the three APDU-format percentages won.
func (a *Analyzer) SelectFeatures(seed int64) ([]FeatureScore, error) {
	feats := a.ExtendedSessionFeatures()
	if len(feats) < 6 {
		return nil, ErrTooFewSessions
	}
	var scores []FeatureScore
	for _, name := range AllFeatureNames {
		col := make([][]float64, len(feats))
		raw := make([]float64, len(feats))
		for i, f := range feats {
			raw[i] = f.Values[name]
		}
		std := stats.Standardize(raw)
		for i, v := range std {
			col[i] = []float64{v}
		}
		sil := bestSilhouette1D(col, seed)
		scores = append(scores, FeatureScore{Name: name, Silhouette: sil})
	}
	// Select the top five.
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return scores[order[x]].Silhouette > scores[order[y]].Silhouette
	})
	for rank, idx := range order {
		if rank < 5 {
			scores[idx].Selected = true
		}
	}
	return scores, nil
}

// bestSilhouette1D clusters one standardized feature with k = 2..4 and
// returns the best silhouette (constant features score 0).
func bestSilhouette1D(col [][]float64, seed int64) float64 {
	allEqual := true
	for i := 1; i < len(col); i++ {
		if col[i][0] != col[0][0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return 0
	}
	best := math.Inf(-1)
	for k := 2; k <= 4 && k < len(col); k++ {
		res, err := cluster.KMeans(col, k, rand.New(rand.NewSource(seed+int64(k))))
		if err != nil {
			continue
		}
		sil, err := cluster.Silhouette(col, res.Assign, k)
		if err != nil {
			continue
		}
		if sil > best {
			best = sil
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
