package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"uncharted/internal/pcap"
	"uncharted/internal/physical"
	"uncharted/internal/protocol"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"

	// Register the non-default dialects the detect-mode tests exercise.
	_ "uncharted/internal/c37118"
	_ "uncharted/internal/modbus"
)

// mixedAnalyzer runs a Y1 capture with the Modbus association enabled
// through one analyzer, optionally in registry auto-detect mode.
func mixedAnalyzer(t *testing.T, detect bool) *Analyzer {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, 11)
	cfg.Duration = 5 * time.Minute
	cfg.EnableModbus = true
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(NamesFromTopology(sim.Network()))
	if detect {
		a.EnableProtocolDetect()
	}
	rd, err := pcap.NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, ci, err := rd.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(rd.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a.FeedPacket(pkt)
	}
	return a
}

// TestMixedCaptureDialects: a capture carrying IEC 104, C37.118 and
// Modbus traffic analyzed in auto-detect mode must book every dialect —
// frames, token alphabets, Markov chains, physical series and the
// C37.118 rate-compliance verdicts — while the IEC 104 aggregates stay
// intact.
func TestMixedCaptureDialects(t *testing.T) {
	a := mixedAnalyzer(t, true)
	p := a.Partial()

	if p.IECPackets == 0 || p.TotalASDUs == 0 {
		t.Fatal("IEC 104 analysis broke under detect mode")
	}

	stats := make(map[protocol.ID]DialectStat)
	for _, ds := range p.Dialects {
		stats[ds.Proto] = ds
	}
	for _, want := range []protocol.ID{protocol.C37118, protocol.Modbus} {
		ds, ok := stats[want]
		if !ok {
			t.Fatalf("no dialect stats for %s: %+v", want, p.Dialects)
		}
		if ds.Frames == 0 || ds.Bytes == 0 {
			t.Errorf("%s: empty decode: %+v", want, ds)
		}
		if ds.ParseErrors != 0 {
			t.Errorf("%s: %d parse errors on a healthy capture", want, ds.ParseErrors)
		}
		if len(ds.TokenCounts) == 0 {
			t.Errorf("%s: no tokens booked", want)
		}
	}
	if stats[protocol.C37118].TokenCounts["D"] == 0 {
		t.Errorf("C37.118 data frames missing from token counts: %v", stats[protocol.C37118].TokenCounts)
	}
	if stats[protocol.Modbus].TokenCounts["R3"] == 0 {
		t.Errorf("Modbus ReadHolding responses missing from token counts: %v", stats[protocol.Modbus].TokenCounts)
	}

	// Every dialect contributes Markov chains, tagged with its proto.
	chains := make(map[protocol.ID]int)
	for _, cc := range p.Chains {
		chains[cc.Proto]++
	}
	if chains[protocol.IEC104] == 0 || chains[protocol.C37118] == 0 || chains[protocol.Modbus] == 0 {
		t.Fatalf("per-dialect chain counts incomplete: %v", chains)
	}

	// Physical series from at least two non-IEC dialects: PMU phasors
	// and Modbus holding registers.
	series := make(map[protocol.ID]int)
	for _, d := range p.Physical {
		series[d.Type.Proto()]++
	}
	if series[protocol.C37118] == 0 || series[protocol.Modbus] == 0 {
		t.Fatalf("per-dialect physical series incomplete: %v", series)
	}
	if series[protocol.IEC104] == 0 {
		t.Fatal("IEC 104 physical series vanished in detect mode")
	}

	// The PMU streams declare a data rate; the healthy capture must be
	// compliant against it.
	var pmuStreams int
	for _, sc := range p.Streams {
		if sc.Proto != protocol.C37118 {
			continue
		}
		pmuStreams++
		if sc.ConfiguredRate == 0 || sc.Frames == 0 {
			t.Errorf("stream %s/%s: empty rate state: %+v", sc.Conn, sc.Unit, sc)
		}
		if !sc.Compliant {
			t.Errorf("stream %s/%s: rate violation on a healthy capture: %s", sc.Conn, sc.Unit, sc.Detail)
		}
	}
	if pmuStreams == 0 {
		t.Fatalf("no C37.118 stream compliance verdicts: %+v", p.Streams)
	}
}

// TestDialectsOffByDefault: without EnableProtocols the same mixed
// capture books nothing in the generic path — the non-IEC traffic lands
// in OtherPorts exactly as before the refactor.
func TestDialectsOffByDefault(t *testing.T) {
	a := mixedAnalyzer(t, false)
	p := a.Partial()
	if len(p.Dialects) != 0 || len(p.Streams) != 0 {
		t.Fatalf("generic decode ran without enabling: %+v %+v", p.Dialects, p.Streams)
	}
	for _, d := range p.Physical {
		if d.Type.Proto() != protocol.IEC104 {
			t.Fatalf("non-IEC physical series without enabling: %+v", d.Key)
		}
	}
	if p.OtherPorts[scadasim.PortModbus] == 0 {
		t.Fatalf("Modbus traffic not tallied under OtherPorts: %v", p.OtherPorts)
	}
}

// TestLossyMixedCaptureDrains: with the fault model degrading every
// server (dropped responses, torn frames) the analyzer must still drain
// the capture: sessions resynchronise, pairing survives lost responses,
// and the dialect stats stay sane.
func TestLossyMixedCaptureDrains(t *testing.T) {
	cfg := scadasim.DefaultConfig(topology.Y1, 23)
	cfg.Duration = 5 * time.Minute
	cfg.EnableModbus = true
	cfg.Faults = scadasim.Faults{TimeoutProb: 0.2, ShortReadProb: 0.3}
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(NamesFromTopology(sim.Network()))
	a.EnableProtocolDetect()
	rd, err := pcap.NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, ci, err := rd.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(rd.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a.FeedPacket(pkt)
	}
	p := a.Partial()
	stats := make(map[protocol.ID]DialectStat)
	for _, ds := range p.Dialects {
		stats[ds.Proto] = ds
	}
	// Torn frames reassemble: requests still decode, and the responses
	// that did arrive still pair and yield measurements.
	if stats[protocol.Modbus].Frames == 0 || stats[protocol.C37118].Frames == 0 {
		t.Fatalf("lossy capture decoded no frames: %+v", p.Dialects)
	}
	if stats[protocol.Modbus].TokenCounts["F3"] == 0 || stats[protocol.Modbus].TokenCounts["R3"] == 0 {
		t.Fatalf("modbus pairing lost under faults: %v", stats[protocol.Modbus].TokenCounts)
	}
	var modbusSeries int
	for _, d := range p.Physical {
		if d.Type.Proto() == protocol.Modbus {
			modbusSeries++
		}
	}
	if modbusSeries == 0 {
		t.Fatal("no modbus measurements survived the lossy link")
	}
}

// TestPhysicalTypeOfRoundTrip pins the PointType packing the mixed
// tests rely on.
func TestPhysicalTypeOfRoundTrip(t *testing.T) {
	pt := physical.TypeOf(protocol.Modbus, 3)
	if pt.Proto() != protocol.Modbus || pt.Code() != 3 {
		t.Fatalf("TypeOf round trip broke: %v -> %v/%v", pt, pt.Proto(), pt.Code())
	}
}
