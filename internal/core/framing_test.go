package core

import (
	"bytes"
	"testing"

	"uncharted/internal/iec104"
)

func mustFrame(t *testing.T) []byte {
	t.Helper()
	asdu := iec104.NewMeasurement(iec104.MMeNc, 1, 100,
		iec104.Value{Kind: iec104.KindFloat, Float: 1}, iec104.CausePeriodic)
	b, err := iec104.NewI(0, 0, asdu).Marshal(iec104.Standard)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNextFrameExact(t *testing.T) {
	frame := mustFrame(t)
	got, rest, skipped, ok := nextFrame(frame)
	if !ok || !bytes.Equal(got, frame) || len(rest) != 0 || skipped != 0 {
		t.Fatalf("ok=%v got=%d rest=%d skipped=%d", ok, len(got), len(rest), skipped)
	}
}

func TestNextFramePartial(t *testing.T) {
	frame := mustFrame(t)
	_, rest, skipped, ok := nextFrame(frame[:4])
	if ok {
		t.Fatal("partial frame extracted")
	}
	if len(rest) != 4 {
		t.Fatalf("partial buffer trimmed to %d", len(rest))
	}
	if skipped != 0 {
		t.Fatalf("skipped %d bytes of a clean partial frame", skipped)
	}
}

func TestNextFrameSkipsLeadingGarbage(t *testing.T) {
	frame := mustFrame(t)
	buf := append([]byte{0x00, 0x11, 0x22}, frame...)
	got, rest, skipped, ok := nextFrame(buf)
	if !ok || !bytes.Equal(got, frame) || len(rest) != 0 {
		t.Fatalf("resync failed: ok=%v got=%d rest=%d", ok, len(got), len(rest))
	}
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
}

func TestNextFrameBadLengthResync(t *testing.T) {
	frame := mustFrame(t)
	// A false 0x68 followed by a too-small length, then a real frame.
	buf := append([]byte{0x68, 0x01}, frame...)
	// First call drops the false start byte.
	_, rest, skipped, ok := nextFrame(buf)
	if ok {
		t.Fatal("corrupt header extracted")
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the false start byte)", skipped)
	}
	got, rest2, skipped, ok := nextFrame(rest)
	if !ok || !bytes.Equal(got, frame) || len(rest2) != 0 {
		t.Fatalf("second resync failed: ok=%v", ok)
	}
	if skipped != 1 {
		t.Fatalf("second skipped = %d, want 1 (the stray length octet)", skipped)
	}
}

func TestNextFrameMultiple(t *testing.T) {
	frame := mustFrame(t)
	buf := append(append([]byte{}, frame...), frame...)
	n := 0
	for {
		got, rest, _, ok := nextFrame(buf)
		if !ok {
			break
		}
		if !bytes.Equal(got, frame) {
			t.Fatal("frame mismatch")
		}
		buf = rest
		n++
	}
	if n != 2 {
		t.Fatalf("extracted %d frames", n)
	}
}

func TestDirCountsTotal(t *testing.T) {
	dc := DirCounts{I: 2, S: 3, U: 5}
	if dc.Total() != 10 {
		t.Fatalf("total %d", dc.Total())
	}
}

func TestStrictPlausible(t *testing.T) {
	std := mustFrame(t)
	if !strictPlausible(std) {
		t.Error("standard frame reported implausible")
	}
	asdu := iec104.NewMeasurement(iec104.MMeNc, 1, 100,
		iec104.Value{Kind: iec104.KindFloat, Float: 1}, iec104.CausePeriodic)
	legacy, err := iec104.NewI(0, 0, asdu).Marshal(iec104.LegacyCOT)
	if err != nil {
		t.Fatal(err)
	}
	if strictPlausible(legacy) {
		t.Error("legacy frame reported plausible")
	}
	// Control frames are always fine.
	u, _ := iec104.NewU(iec104.UTestFRAct).Marshal(iec104.Standard)
	if !strictPlausible(u) {
		t.Error("U frame reported implausible")
	}
}
