package core

import (
	"sort"

	"uncharted/internal/physical"
	"uncharted/internal/stats"
)

// PointTiming is the recovered reporting behaviour of one monitored
// point: cyclic points expose their configured period through the
// capture's timestamps alone; spontaneous points do not.
type PointTiming struct {
	Key physical.SeriesKey
	// Periodic is true when a dominant reporting period was found.
	Periodic bool
	// PeriodSeconds is the recovered cycle (0 when not periodic).
	PeriodSeconds float64
	// Strength is the fraction of gaps at the dominant period.
	Strength float64
	// CV is the coefficient of variation of the gaps: near 0 for
	// clean cycles, large for event-driven reporting.
	CV      float64
	Samples int
}

// PointTimings recovers the reporting behaviour of every monitor-
// direction point with at least minSamples reports. This is the
// "timing characteristics" analysis of §6: without reading a single
// configuration file, the tap reveals each RTU's scan rates — and the
// Type 5 outstation stands out because nothing about it is periodic.
func (a *Analyzer) PointTimings(minSamples int) []PointTiming {
	var out []PointTiming
	for _, s := range a.store.All() {
		if s.Command || len(s.Samples) < minSamples {
			continue
		}
		gaps := make([]float64, 0, len(s.Samples)-1)
		for i := 1; i < len(s.Samples); i++ {
			gaps = append(gaps, s.Samples[i].T.Sub(s.Samples[i-1].T).Seconds())
		}
		pt := PointTiming{
			Key:     s.Key,
			CV:      stats.CoefficientOfVariation(gaps),
			Samples: len(s.Samples),
		}
		if est, ok := stats.DetectPeriod(gaps, 0.2, 0.6); ok {
			pt.Periodic = true
			pt.PeriodSeconds = est.Period
			pt.Strength = est.Strength
		}
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Station != out[j].Key.Station {
			return out[i].Key.Station < out[j].Key.Station
		}
		return out[i].Key.IOA < out[j].Key.IOA
	})
	return out
}

// StationTiming aggregates point timings per station.
type StationTiming struct {
	Station string
	// Periods are the distinct recovered cycles, ascending.
	Periods []float64
	// PeriodicPoints / SpontaneousPoints count the point mix.
	PeriodicPoints    int
	SpontaneousPoints int
}

// StationTimings groups PointTimings by station and collapses the
// recovered periods (within 20%) into a small set per station.
func (a *Analyzer) StationTimings(minSamples int) []StationTiming {
	byStation := map[string]*StationTiming{}
	var order []string
	for _, pt := range a.PointTimings(minSamples) {
		st, ok := byStation[pt.Key.Station]
		if !ok {
			st = &StationTiming{Station: pt.Key.Station}
			byStation[pt.Key.Station] = st
			order = append(order, pt.Key.Station)
		}
		if !pt.Periodic {
			st.SpontaneousPoints++
			continue
		}
		st.PeriodicPoints++
		merged := false
		for i, p := range st.Periods {
			if pt.PeriodSeconds > p*0.8 && pt.PeriodSeconds < p*1.2 {
				st.Periods[i] = (p + pt.PeriodSeconds) / 2
				merged = true
				break
			}
		}
		if !merged {
			st.Periods = append(st.Periods, pt.PeriodSeconds)
		}
	}
	var out []StationTiming
	sort.Strings(order)
	for _, name := range order {
		st := byStation[name]
		sort.Float64s(st.Periods)
		out = append(out, *st)
	}
	return out
}
