// Package core is the paper's measurement pipeline as a library: feed
// it a capture (synthesized or real) and it produces every analysis of
// §6 — the TCP flow taxonomy, IEC 104 compliance report with tolerant
// dialect detection, session features and clusters, per-connection
// Markov chains with the eight-way outstation classification, the ASDU
// type distribution, and the physical time series with event
// signatures.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pcap"
	"uncharted/internal/physical"
	"uncharted/internal/tcpflow"
	"uncharted/internal/topology"
)

// IEC104Port is the registered TCP port of IEC 60870-5-104.
const IEC104Port = 2404

// ConnKey identifies a control-server / outstation relationship at the
// host level: every reconnection (fresh ephemeral port) belongs to the
// same logical connection, the way the paper labels them "C2-O30".
type ConnKey struct {
	Server     netip.Addr
	Outstation netip.Addr
}

// DirCounts tallies APDU formats for one directional session.
type DirCounts struct {
	I, S, U int
}

// Total returns the APDU count.
func (d DirCounts) Total() int { return d.I + d.S + d.U }

// dirKey identifies one flow direction (src half-connection to dst)
// for the framing buffers. Keying by struct instead of a rendered
// string keeps the per-segment map lookup allocation-free.
type dirKey struct {
	src, dst netip.AddrPort
}

// endpointState holds the APDU framing buffer and IEC 104 sequence
// state of one flow direction.
type endpointState struct {
	buf []byte
	// nextNS is the expected N(S) of the next I-frame; nsSeen arms
	// the check after the first I-frame.
	nextNS uint16
	nsSeen bool
	// dir caches the direction-constant lookups of consumeFrame.
	dir dirCache
}

// dirCache memoizes the lookups whose result depends only on the flow
// direction (source/destination address pair), so the per-frame path
// stops re-hashing map keys for them. The eagerly filled fields mirror
// state consumeFrame creates for every frame regardless of parse
// outcome; dc, toks and ioas stay lazy because their map entries must
// only exist once a frame (or I-frame) has actually been accepted.
type dirCache struct {
	filled         bool
	fromOutstation bool
	command        bool
	sc             *StationCompliance
	srcKey         string
	ck             ConnKey
	skey           tcpflow.SessionKey
	serverName     string
	outName        string
	station        string
	stationAddr    netip.Addr
	dc             *DirCounts
	toks           *tokenList
	ioas           map[uint32]bool
}

// tokenList is the token accumulator of one logical connection; the
// map holds pointers so appends do not rewrite the map slot.
type tokenList struct {
	toks []iec104.Token
}

// framingRef is one entry of the analyzer's framing-lookup memo.
type framingRef struct {
	key dirKey
	st  *endpointState
}

// Analyzer ingests decoded packets and accumulates every §6 analysis.
type Analyzer struct {
	names map[netip.Addr]string

	parser   *iec104.TolerantParser
	tracker  *tcpflow.Tracker
	sessions *tcpflow.Sessions
	store    *physical.Store

	// tokens per logical connection, in arrival order.
	tokens map[ConnKey]*tokenList
	// sessionAPDUs tallies formats per directional host pair.
	sessionAPDUs map[tcpflow.SessionKey]*DirCounts
	// sessionIOAs tracks distinct information object addresses per
	// directional session (one of the ten candidate features of §6.3).
	sessionIOAs map[tcpflow.SessionKey]map[uint32]bool

	typeCounts map[iec104.TypeID]int
	totalASDUs int
	// typeStations tracks, per ASDU type, the outstations involved:
	// the sender for monitor-direction types, the target for commands
	// (Table 8's "transmitting station count").
	typeStations map[iec104.TypeID]map[netip.Addr]bool

	compliance map[netip.Addr]*StationCompliance

	// framing buffers keyed by flow + direction. lastFraming memoizes
	// the two most recent lookups (request/response traffic alternates
	// between exactly two directions), skipping the map hash on most
	// segments.
	framing     map[dirKey]*endpointState
	lastFraming [2]framingRef

	// endpointKeys interns the "ip" endpoint strings handed to the
	// tolerant parser; nameCache interns rendered addresses for
	// endpoints the address book does not know. Both exist so the
	// per-frame path never calls netip.Addr.String.
	endpointKeys map[netip.Addr]string
	nameCache    map[netip.Addr]string

	// scratchAPDU / scratchASDU are the caller-owned decode targets of
	// consumeFrame's tolerant parse. They are reused for every frame,
	// which is safe because every consumer of an accepted frame
	// (accumulators, physical store, observers) extracts what it needs
	// before the next frame is parsed.
	scratchAPDU iec104.APDU
	scratchASDU iec104.ASDU

	// Errors the pipeline tolerated (non-IEC payloads, undecodable
	// frames), for reporting.
	ParseErrors int
	Packets     int
	IECPackets  int
	// SeqAnomalies counts I-frames whose N(S) did not continue the
	// per-connection sequence: lost packets the tap missed, capture
	// truncation, or a misbehaving stack.
	SeqAnomalies int
	// otherPorts tallies payload bytes of non-IEC-104 streams by
	// their well-known (lower) port — ICCP on 102, C37.118 on 4712...
	otherPorts map[uint16]int

	// DedupRetransmissions drops TCP-retransmitted APDU tokens (the
	// paper found repeated U16/U32 tokens were TCP retransmissions,
	// not endpoint behaviour). The ablation bench flips this off.
	DedupRetransmissions bool

	// metrics and journal are nil until Instrument attaches them; every
	// note* helper and Journal.Log is nil-safe, so the uninstrumented
	// hot path pays only a pointer test.
	metrics *analyzerMetrics
	journal *obs.Journal

	// lane is the flight-recorder lane FeedPacket spans land on; nil
	// (the default) costs one branch per packet.
	lane *trace.Lane

	// observer, when set, sees every accepted APDU as it is consumed —
	// the hook online detectors (ids.Monitor) attach to.
	observer FrameObserver
}

// FrameEvent describes one accepted APDU for live observers.
type FrameEvent struct {
	Time time.Time
	// Conn is the logical server/outstation relationship.
	Conn ConnKey
	// Server / Outstation are the resolved names of the endpoints.
	Server, Outstation string
	// FromOutstation is true for monitor-direction frames.
	FromOutstation bool
	Token          iec104.Token
	// ASDU is set for I-format frames only.
	ASDU *iec104.ASDU
}

// FrameObserver receives every accepted APDU in arrival order. It is
// called synchronously on the analysis path, so implementations must
// be fast and must not retain the ASDU.
type FrameObserver interface {
	ObserveFrame(FrameEvent)
}

// SetFrameObserver attaches (or, with nil, detaches) a live observer.
func (a *Analyzer) SetFrameObserver(o FrameObserver) { a.observer = o }

// StationCompliance is the §6.1 verdict for one endpoint.
type StationCompliance struct {
	Addr   netip.Addr
	Name   string
	Frames int
	// StrictInvalid counts I-frames a standard-profile parser rejects
	// or misreads.
	StrictInvalid int
	// Profile is the dialect the tolerant parser settled on.
	Profile iec104.Profile
	// Detected is false until an I-frame fixed the dialect.
	Detected bool
}

// NonCompliant reports whether the station needs a legacy dialect.
func (sc *StationCompliance) NonCompliant() bool {
	return sc.Detected && !sc.Profile.IsStandard()
}

// NewAnalyzer builds an empty pipeline. names maps addresses to the
// topology's labels (C1, O30, ...); unknown addresses are rendered
// numerically.
func NewAnalyzer(names map[netip.Addr]string) *Analyzer {
	a := &Analyzer{
		names:                names,
		parser:               iec104.NewTolerantParser(),
		sessions:             tcpflow.NewSessions(),
		store:                physical.NewStore(),
		tokens:               make(map[ConnKey]*tokenList),
		sessionAPDUs:         make(map[tcpflow.SessionKey]*DirCounts),
		sessionIOAs:          make(map[tcpflow.SessionKey]map[uint32]bool),
		typeCounts:           make(map[iec104.TypeID]int),
		typeStations:         make(map[iec104.TypeID]map[netip.Addr]bool),
		compliance:           make(map[netip.Addr]*StationCompliance),
		framing:              make(map[dirKey]*endpointState),
		endpointKeys:         make(map[netip.Addr]string),
		nameCache:            make(map[netip.Addr]string),
		otherPorts:           make(map[uint16]int),
		DedupRetransmissions: true,
	}
	a.tracker = tcpflow.NewTracker(a)
	return a
}

// Instrument books the analyzer's counters into reg, instruments the
// flow tracker, and attaches an optional event journal. Either argument
// may be nil; ReadPCAP additionally instruments the capture reader and
// books per-stage wall time once a registry is attached.
func (a *Analyzer) Instrument(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		a.metrics = newAnalyzerMetrics(reg)
		a.tracker.Instrument(reg)
	}
	a.journal = j
}

// NamesFromTopology builds the address book of the simulated network.
func NamesFromTopology(net *topology.Network) map[netip.Addr]string {
	m := make(map[netip.Addr]string)
	for _, s := range net.Servers {
		m[s.Addr] = string(s.ID)
	}
	for _, o := range net.Outstations() {
		m[o.Addr] = string(o.ID)
	}
	return m
}

// Name renders an address through the address book. Unknown addresses
// are rendered numerically once and interned, so repeated lookups on
// the frame path do not allocate.
func (a *Analyzer) Name(addr netip.Addr) string {
	if n, ok := a.names[addr]; ok {
		return n
	}
	if n, ok := a.nameCache[addr]; ok {
		return n
	}
	n := addr.String()
	a.nameCache[addr] = n
	return n
}

// endpointKey interns the parser's per-endpoint cache key.
func (a *Analyzer) endpointKey(addr netip.Addr) string {
	if k, ok := a.endpointKeys[addr]; ok {
		return k
	}
	k := addr.String()
	a.endpointKeys[addr] = k
	return k
}

// SetTraceLane attaches (or, with nil, detaches) a flight-recorder
// lane: FeedPacket then records one sampled StageFeed span per packet.
// The lane is single-producer, so it must belong to the goroutine that
// calls FeedPacket — in the streaming engine, the owning shard's lane.
func (a *Analyzer) SetTraceLane(l *trace.Lane) { a.lane = l }

// FeedPacket ingests one decoded TCP packet.
func (a *Analyzer) FeedPacket(pkt pcap.Packet) {
	sp := a.lane.Start()
	a.Packets++
	iec := pkt.TCP.SrcPort == IEC104Port || pkt.TCP.DstPort == IEC104Port
	if iec {
		a.IECPackets++
	}
	a.metrics.notePacket(iec)
	a.tracker.Feed(pkt)
	a.sessions.Feed(pkt)
	a.lane.End(sp, trace.StageFeed, 1, -1)
}

// OnPayload implements tcpflow.Consumer: it receives reassembled
// in-order stream data and runs APDU framing plus tolerant parsing.
// Streams that do not touch the IEC 104 port (the tap also carries
// C37.118 synchrophasors, ICCP and other plant traffic) are tallied
// and skipped.
func (a *Analyzer) OnPayload(sp tcpflow.StreamPayload) {
	if sp.Src.Port() != IEC104Port && sp.Dst.Port() != IEC104Port {
		a.notePortTraffic(sp)
		return
	}
	if sp.Retransmit {
		if a.DedupRetransmissions {
			return
		}
		// Ablation mode: process the retransmitted segment's raw
		// bytes as if they were fresh traffic. Real captures analysed
		// packet-by-packet (no reassembly) see exactly this, which is
		// how the paper first mistook repeated U16/U32 tokens for
		// endpoint behaviour (§6.3.1). The bytes bypass the framing
		// buffer so they cannot desynchronise the live stream.
		for buf := sp.Raw; len(buf) > 0; {
			// Resyncs inside a replay re-skip bytes the live stream
			// already counted, so they stay out of the metrics.
			frame, rest, _, ok := nextFrame(buf)
			if !ok {
				break
			}
			buf = rest
			// nil sequence state: retransmitted frames must not
			// trip the continuity check.
			a.consumeFrame(sp, frame, nil)
		}
		return
	}
	if len(sp.Data) == 0 {
		return
	}
	key := dirKey{src: sp.Src, dst: sp.Dst}
	var st *endpointState
	switch {
	case a.lastFraming[0].st != nil && a.lastFraming[0].key == key:
		st = a.lastFraming[0].st
	case a.lastFraming[1].st != nil && a.lastFraming[1].key == key:
		st = a.lastFraming[1].st
	default:
		var ok bool
		st, ok = a.framing[key]
		if !ok {
			st = &endpointState{}
			a.framing[key] = st
		}
		a.lastFraming[0], a.lastFraming[1] = framingRef{key, st}, a.lastFraming[0]
	}
	// Fast path: with no partial frame pending, scan the segment in
	// place instead of copying it into the framing buffer. Only a
	// trailing partial frame (or resync tail) is retained. sp.Data may
	// live in a pooled buffer that is recycled after this call, so the
	// tail must be copied out before returning.
	buf := sp.Data
	if len(st.buf) > 0 {
		st.buf = append(st.buf, sp.Data...)
		buf = st.buf
	}
	for {
		frame, rest, skipped, ok := nextFrame(buf)
		if skipped > 0 {
			a.metrics.noteResync(skipped)
			if a.journal != nil {
				a.journalEvent(sp.Time, obs.EventResync, connLabel(sp), map[string]any{
					"skipped_bytes": skipped,
				})
			}
		}
		if !ok {
			// Copy-to-front also bounds the buffer: the consumed prefix
			// is reclaimed instead of the backing array growing with
			// the stream. rest may overlap st.buf; copy is a memmove.
			st.buf = append(st.buf[:0], rest...)
			return
		}
		buf = rest
		a.consumeFrame(sp, frame, st)
	}
}

// nextFrame extracts one APDU from the front of buf. It resynchronises
// on 0x68 if leading garbage is present; skipped reports how many bytes
// were discarded doing so (including a false start byte on a corrupt
// length octet).
func nextFrame(buf []byte) (frame, rest []byte, skipped int, ok bool) {
	// Drop bytes until a start byte.
	i := 0
	for i < len(buf) && buf[i] != iec104.StartByte {
		i++
	}
	buf = buf[i:]
	if len(buf) < 2 {
		return nil, buf, i, false
	}
	total := 2 + int(buf[1])
	if int(buf[1]) < 4 {
		// Corrupt length; skip the false start byte.
		return nil, buf[1:], i + 1, false
	}
	if len(buf) < total {
		return nil, buf, i, false
	}
	return buf[:total], buf[total:], i, true
}

// consumeFrame parses one APDU and updates every accumulator. st
// carries the flow direction's sequence state (nil when the frame is a
// retransmission replay that must not advance it).
func (a *Analyzer) consumeFrame(sp tcpflow.StreamPayload, frame []byte, st *endpointState) {
	var c *dirCache
	if st != nil {
		c = &st.dir
	} else {
		c = &dirCache{}
	}
	if !c.filled {
		a.fillDirCache(c, sp)
	}

	sc := c.sc
	sc.Frames++

	_, err := a.parser.ParseFrameInto(c.srcKey, frame, &a.scratchAPDU, &a.scratchASDU)
	if err != nil {
		a.ParseErrors++
		if a.metrics != nil || a.journal != nil {
			cause := parseErrorCause(err)
			a.metrics.noteParseError(cause)
			a.journalEvent(sp.Time, obs.EventParseError, connLabel(sp), map[string]any{
				"cause":     cause,
				"frame_len": len(frame),
			})
		}
		return
	}
	// apdu (and its ASDU) are the analyzer's scratch: valid only until
	// the next frame is parsed, never retained past this function.
	apdu := &a.scratchAPDU
	a.metrics.noteFrame(apdu.Format)

	if apdu.Format == iec104.FormatI {
		// Record the strict-parser verdict for the compliance report.
		// Once the tolerant parser has pinned the endpoint's dialect,
		// the verdict is a constant of the dialect — running the full
		// 5-profile detection per frame would dominate large-capture
		// analysis time for no information.
		strictInvalid := false
		if sc.Detected {
			if !sc.Profile.IsStandard() {
				sc.StrictInvalid++
				strictInvalid = true
			}
		} else if !strictPlausible(frame) {
			sc.StrictInvalid++
			strictInvalid = true
		}
		if p, ok := a.parser.ProfileFor(c.srcKey); ok {
			newlyDetected := !sc.Detected
			// A flip is the station settling on a legacy dialect, or a
			// pinned dialect changing; first detection of the standard
			// profile is the expected case, not a flip.
			flipped := (newlyDetected && !p.IsStandard()) ||
				(!newlyDetected && sc.Profile != p)
			sc.Profile = p
			sc.Detected = true
			if newlyDetected || flipped {
				a.journalEvent(sp.Time, obs.EventConnState, connLabel(sp), map[string]any{
					"state":   "dialect_detected",
					"station": sc.Name,
					"dialect": p.String(),
				})
			}
			if flipped {
				a.metrics.noteFlip()
			}
		}
		if strictInvalid && a.metrics != nil {
			// Label by the dialect that rescued the frame; detection
			// above may have just pinned it.
			dialect := "undetected"
			if sc.Detected {
				dialect = sc.Profile.String()
			}
			a.metrics.noteStrictInvalid(dialect)
		}
		// N(S) continuity per flow direction.
		if st != nil {
			if st.nsSeen && apdu.SendSeq != st.nextNS {
				a.SeqAnomalies++
				a.metrics.noteSeqAnomaly()
				if a.journal != nil {
					a.journalEvent(sp.Time, obs.EventSeqAnomaly, connLabel(sp), map[string]any{
						"expected_ns": st.nextNS,
						"got_ns":      apdu.SendSeq,
					})
				}
			}
			st.nsSeen = true
			st.nextNS = (apdu.SendSeq + 1) & 0x7FFF
		}
	}

	// Token stream per logical connection. The list is created on the
	// first accepted frame only, so parse-error-only directions keep no
	// entry (exactly as before the cache).
	tok := apdu.Token()
	if c.toks == nil {
		tl, ok := a.tokens[c.ck]
		if !ok {
			tl = &tokenList{}
			a.tokens[c.ck] = tl
		}
		c.toks = tl
	}
	c.toks.toks = append(c.toks.toks, tok)
	if a.observer != nil {
		a.observer.ObserveFrame(FrameEvent{
			Time:           sp.Time,
			Conn:           c.ck,
			Server:         c.serverName,
			Outstation:     c.outName,
			FromOutstation: c.fromOutstation,
			Token:          tok,
			ASDU:           apdu.ASDU,
		})
	}

	// Directional session APDU mix.
	if c.dc == nil {
		dc, ok := a.sessionAPDUs[c.skey]
		if !ok {
			dc = &DirCounts{}
			a.sessionAPDUs[c.skey] = dc
		}
		c.dc = dc
	}
	switch apdu.Format {
	case iec104.FormatI:
		c.dc.I++
	case iec104.FormatS:
		c.dc.S++
	case iec104.FormatU:
		c.dc.U++
	}

	if apdu.Format == iec104.FormatI && apdu.ASDU != nil {
		a.typeCounts[apdu.ASDU.Type]++
		a.totalASDUs++
		if c.ioas == nil {
			ioas, ok := a.sessionIOAs[c.skey]
			if !ok {
				ioas = make(map[uint32]bool)
				a.sessionIOAs[c.skey] = ioas
			}
			c.ioas = ioas
		}
		for _, obj := range apdu.ASDU.Objects {
			c.ioas[obj.IOA] = true
		}
		ts, ok := a.typeStations[apdu.ASDU.Type]
		if !ok {
			ts = make(map[netip.Addr]bool)
			a.typeStations[apdu.ASDU.Type] = ts
		}
		ts[c.stationAddr] = true
		a.store.Feed(c.station, apdu.ASDU, sp.Time, c.command)
	}
}

// fillDirCache computes the direction-constant half of consumeFrame
// once per flow direction. Everything created here (the compliance
// entry, interned strings) is state consumeFrame previously created on
// every frame regardless of parse outcome, so eager filling changes no
// observable behaviour.
func (a *Analyzer) fillDirCache(c *dirCache, sp tcpflow.StreamPayload) {
	srcAddr := sp.Src.Addr()
	dstAddr := sp.Dst.Addr()
	c.fromOutstation = sp.Src.Port() == IEC104Port
	c.sc = a.complianceFor(srcAddr)
	c.srcKey = a.endpointKey(srcAddr)
	c.ck = ConnKey{Server: srcAddr, Outstation: dstAddr}
	if c.fromOutstation {
		c.ck = ConnKey{Server: dstAddr, Outstation: srcAddr}
	}
	c.serverName = a.Name(c.ck.Server)
	c.outName = a.Name(c.ck.Outstation)
	c.skey = tcpflow.SessionKey{Src: srcAddr, Dst: dstAddr}
	c.station = a.Name(srcAddr)
	c.stationAddr = srcAddr
	if !c.fromOutstation {
		c.station = a.Name(dstAddr)
		c.stationAddr = dstAddr
		c.command = true
	}
	c.filled = true
}

// strictPlausible checks whether a standard-profile parse of the frame
// both succeeds and looks sane — the §6.1 Wireshark test.
func strictPlausible(frame []byte) bool {
	apdu, _, err := iec104.ParseAPDU(frame, iec104.Standard)
	if err != nil {
		return false
	}
	if apdu.Format != iec104.FormatI {
		return true
	}
	detected, _, err := iec104.DetectProfile(frame)
	if err != nil {
		return false
	}
	return detected.IsStandard()
}

func (a *Analyzer) complianceFor(addr netip.Addr) *StationCompliance {
	sc, ok := a.compliance[addr]
	if !ok {
		sc = &StationCompliance{Addr: addr, Name: a.Name(addr), Profile: iec104.Standard}
		a.compliance[addr] = sc
	}
	return sc
}

// ReadPCAP runs the whole pipeline over a capture stream in either
// classic pcap or pcapng format. Packets that are not IPv4/TCP are
// skipped (taps also carry ARP, ICCP, C37.118 and other plant traffic
// the paper leaves to future work). When the analyzer is instrumented,
// the capture reader is instrumented too and the read / decode / feed
// stages are individually timed.
func (a *Analyzer) ReadPCAP(r io.Reader) error {
	pr, err := pcap.NewAutoReader(r)
	if err != nil {
		return err
	}
	if a.metrics != nil {
		if ir, ok := pr.(interface{ Instrument(*obs.Registry) }); ok {
			ir.Instrument(a.metrics.reg)
		}
		return a.readInstrumented(pr)
	}
	// One scratch buffer serves the whole capture: nothing downstream
	// of FeedPacket retains packet bytes past the call (reassembly and
	// framing copy what they buffer), so each record may overwrite the
	// previous one.
	var scratch []byte
	for {
		data, ci, err := pr.ReadPacketInto(scratch)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading capture: %w", err)
		}
		scratch = data
		pkt, err := pcap.DecodePacket(pr.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a.FeedPacket(pkt)
	}
}

// readInstrumented is ReadPCAP's loop with per-stage wall-time
// accounting. The clock reads live here — not in FeedPacket — so the
// FeedPacket hot path itself stays free of timing overhead.
func (a *Analyzer) readInstrumented(pr pcap.PacketReader) error {
	var (
		readStage   = a.metrics.reg.Stage(StagePcapRead)
		decodeStage = a.metrics.reg.Stage(StagePcapDecode)
		feedStage   = a.metrics.reg.Stage(StageAnalyzeFeed)
		scratch     []byte
	)
	for {
		t0 := time.Now()
		data, ci, err := pr.ReadPacketInto(scratch)
		readStage.Observe(time.Since(t0))
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading capture: %w", err)
		}
		scratch = data
		t0 = time.Now()
		pkt, err := pcap.DecodePacket(pr.LinkType(), ci, data)
		decodeStage.Observe(time.Since(t0))
		if err != nil {
			a.metrics.noteDecodeError()
			continue
		}
		t0 = time.Now()
		a.FeedPacket(pkt)
		feedStage.Observe(time.Since(t0))
	}
}

// notePortTraffic accounts a non-IEC stream chunk under the lower
// (well-known) port of the pair.
func (a *Analyzer) notePortTraffic(sp tcpflow.StreamPayload) {
	port := sp.Src.Port()
	if sp.Dst.Port() < port {
		port = sp.Dst.Port()
	}
	a.otherPorts[port] += len(sp.Data)
}

// OtherProtocols returns payload byte counts of non-IEC-104 streams by
// well-known port (the ICCP / C37.118 traffic the paper's tap also
// carried and left for future work).
func (a *Analyzer) OtherProtocols() map[uint16]int {
	out := make(map[uint16]int, len(a.otherPorts))
	for p, n := range a.otherPorts {
		out[p] = n
	}
	return out
}

// TypeStations returns, per ASDU type, the distinct outstations
// involved (Table 8's "transmitting station count"). For commands the
// addressed outstation is counted, matching the paper's per-station
// semantics.
func (a *Analyzer) TypeStations() map[iec104.TypeID][]string {
	out := make(map[iec104.TypeID][]string, len(a.typeStations))
	for t, m := range a.typeStations {
		for addr := range m {
			out[t] = append(out[t], a.Name(addr))
		}
		sort.Strings(out[t])
	}
	return out
}

// Flows exposes the flow tracker (Table 3 / Fig 8).
func (a *Analyzer) Flows() *tcpflow.Tracker { return a.tracker }

// Sessions exposes the directional host-pair sessions.
func (a *Analyzer) Sessions() *tcpflow.Sessions { return a.sessions }

// Physical exposes the extracted time-series store.
func (a *Analyzer) Physical() *physical.Store { return a.store }

// TokenStream returns the token sequence of one logical connection.
func (a *Analyzer) TokenStream(k ConnKey) []iec104.Token {
	if tl, ok := a.tokens[k]; ok {
		return tl.toks
	}
	return nil
}

// ConnKeys returns every logical connection sorted by name.
func (a *Analyzer) ConnKeys() []ConnKey {
	out := make([]ConnKey, 0, len(a.tokens))
	for k := range a.tokens {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Server.Compare(out[j].Server); c != 0 {
			return c < 0
		}
		return out[i].Outstation.Compare(out[j].Outstation) < 0
	})
	return out
}

// CaptureWindow returns the first/last packet timestamps seen. The
// window comes from the flow tracker's packet clock, so it survives
// streaming-mode flow eviction.
func (a *Analyzer) CaptureWindow() (time.Time, time.Time) {
	return a.tracker.Window()
}

// EnableFlowEviction turns on idle-flow eviction in the tracker for
// streaming over endless captures: flows (and their APDU framing
// buffers) idle longer than timeout are dropped, keeping memory
// bounded. The flow taxonomy stays exact; a flow that wakes up after
// eviction re-enters as a fresh long-lived flow.
func (a *Analyzer) EnableFlowEviction(timeout time.Duration) {
	a.tracker.SetIdleTimeout(timeout)
	a.tracker.OnEvict(func(f *tcpflow.Flow) {
		delete(a.framing, dirKey{src: f.Key.A, dst: f.Key.B})
		delete(a.framing, dirKey{src: f.Key.B, dst: f.Key.A})
		// The memo may point at the states just deleted.
		a.lastFraming = [2]framingRef{}
	})
}
