// Package core is the paper's measurement pipeline as a library: feed
// it a capture (synthesized or real) and it produces every analysis of
// §6 — the TCP flow taxonomy, IEC 104 compliance report with tolerant
// dialect detection, session features and clusters, per-connection
// Markov chains with the eight-way outstation classification, the ASDU
// type distribution, and the physical time series with event
// signatures.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pcap"
	"uncharted/internal/physical"
	"uncharted/internal/protocol"
	"uncharted/internal/tcpflow"
	"uncharted/internal/topology"
)

// IEC104Port is the registered TCP port of IEC 60870-5-104.
const IEC104Port = 2404

// ConnKey identifies a control-server / outstation relationship at the
// host level: every reconnection (fresh ephemeral port) belongs to the
// same logical connection, the way the paper labels them "C2-O30".
type ConnKey struct {
	Server     netip.Addr
	Outstation netip.Addr
}

// DirCounts tallies APDU formats for one directional session.
type DirCounts struct {
	I, S, U int
}

// Total returns the APDU count.
func (d DirCounts) Total() int { return d.I + d.S + d.U }

// dirKey identifies one flow direction (src half-connection to dst)
// for the framing buffers. Keying by struct instead of a rendered
// string keeps the per-segment map lookup allocation-free.
type dirKey struct {
	src, dst netip.AddrPort
}

// endpointState holds the APDU framing buffer and IEC 104 sequence
// state of one flow direction.
type endpointState struct {
	buf []byte
	// nextNS is the expected N(S) of the next I-frame; nsSeen arms
	// the check after the first I-frame.
	nextNS uint16
	nsSeen bool
	// dir caches the direction-constant lookups of consumeFrame.
	dir dirCache
}

// dirCache memoizes the lookups whose result depends only on the flow
// direction (source/destination address pair), so the per-frame path
// stops re-hashing map keys for them. The eagerly filled fields mirror
// state consumeFrame creates for every frame regardless of parse
// outcome; dc, toks and ioas stay lazy because their map entries must
// only exist once a frame (or I-frame) has actually been accepted.
type dirCache struct {
	filled         bool
	fromOutstation bool
	command        bool
	sc             *StationCompliance
	srcKey         string
	ck             ConnKey
	skey           tcpflow.SessionKey
	serverName     string
	outName        string
	station        string
	stationAddr    netip.Addr
	dc             *DirCounts
	toks           *tokenList
	ioas           map[uint32]bool
}

// tokenList is the token accumulator of one logical connection; the
// map holds pointers so appends do not rewrite the map slot.
type tokenList struct {
	toks []iec104.Token
}

// framingRef is one entry of the analyzer's framing-lookup memo.
type framingRef struct {
	key dirKey
	st  *endpointState
}

// Analyzer ingests decoded packets and accumulates every §6 analysis.
type Analyzer struct {
	names map[netip.Addr]string

	parser   *iec104.TolerantParser
	tracker  *tcpflow.Tracker
	sessions *tcpflow.Sessions
	store    *physical.Store

	// tokens per logical connection, in arrival order.
	tokens map[ConnKey]*tokenList
	// sessionAPDUs tallies formats per directional host pair.
	sessionAPDUs map[tcpflow.SessionKey]*DirCounts
	// sessionIOAs tracks distinct information object addresses per
	// directional session (one of the ten candidate features of §6.3).
	sessionIOAs map[tcpflow.SessionKey]map[uint32]bool

	typeCounts map[iec104.TypeID]int
	totalASDUs int
	// typeStations tracks, per ASDU type, the outstations involved:
	// the sender for monitor-direction types, the target for commands
	// (Table 8's "transmitting station count").
	typeStations map[iec104.TypeID]map[netip.Addr]bool

	compliance map[netip.Addr]*StationCompliance

	// framing buffers keyed by flow + direction. lastFraming memoizes
	// the two most recent lookups (request/response traffic alternates
	// between exactly two directions), skipping the map hash on most
	// segments.
	framing     map[dirKey]*endpointState
	lastFraming [2]framingRef

	// endpointKeys interns the "ip" endpoint strings handed to the
	// tolerant parser; nameCache interns rendered addresses for
	// endpoints the address book does not know. Both exist so the
	// per-frame path never calls netip.Addr.String.
	endpointKeys map[netip.Addr]string
	nameCache    map[netip.Addr]string

	// scratchAPDU / scratchASDU are the caller-owned decode targets of
	// consumeFrame's tolerant parse. They are reused for every frame,
	// which is safe because every consumer of an accepted frame
	// (accumulators, physical store, observers) extracts what it needs
	// before the next frame is parsed.
	scratchAPDU iec104.APDU
	scratchASDU iec104.ASDU

	// Errors the pipeline tolerated (non-IEC payloads, undecodable
	// frames), for reporting.
	ParseErrors int
	Packets     int
	IECPackets  int
	// SeqAnomalies counts I-frames whose N(S) did not continue the
	// per-connection sequence: lost packets the tap missed, capture
	// truncation, or a misbehaving stack.
	SeqAnomalies int
	// otherPorts tallies payload bytes of non-IEC-104 streams by
	// their well-known (lower) port — ICCP on 102, C37.118 on 4712...
	otherPorts map[uint16]int

	// DedupRetransmissions drops TCP-retransmitted APDU tokens (the
	// paper found repeated U16/U32 tokens were TCP retransmissions,
	// not endpoint behaviour). The ablation bench flips this off.
	DedupRetransmissions bool

	// metrics and journal are nil until Instrument attaches them; every
	// note* helper and Journal.Log is nil-safe, so the uninstrumented
	// hot path pays only a pointer test.
	metrics *analyzerMetrics
	journal *obs.Journal

	// lane is the flight-recorder lane FeedPacket spans land on; nil
	// (the default) costs one branch per packet.
	lane *trace.Lane

	// observer, when set, sees every accepted APDU as it is consumed —
	// the hook online detectors (ids.Monitor) attach to.
	observer FrameObserver

	// Multi-protocol state. protocols marks dialects enabled beyond
	// IEC 104 (which keeps its specialised path above); detectUnknown
	// additionally content-sniffs streams on ports no dialect owns.
	// Both are off by default, so an un-configured analyzer behaves —
	// byte for byte — like the IEC 104-only one.
	protocols     map[protocol.ID]bool
	detectUnknown bool
	// protoDirs maps each flow direction to its generic decode state;
	// both directions share one *protoFlow (dialects pair requests with
	// responses across directions). A nil value is the negative cache:
	// the flow was inspected and claimed by no enabled dialect.
	protoDirs map[dirKey]*protoDir
	// protoFlowList keeps every claimed flow for snapshot-time
	// compliance collection.
	protoFlowList []*protoFlow
	// connProto records the dialect of each non-IEC-104 logical
	// connection (absent = IEC 104).
	connProto map[ConnKey]protocol.ID
	// dialectStats accumulates per-dialect frame/error/byte tallies.
	dialectStats map[protocol.ID]*DialectStat
}

// DialectStat is one dialect's traffic summary in a snapshot.
type DialectStat struct {
	Proto       protocol.ID
	Frames      int
	ParseErrors int
	// Bytes counts reassembled payload bytes fed to the dialect.
	Bytes int
	// TokenCounts tallies the dialect's emitted tokens by their textual
	// form.
	TokenCounts map[string]int
}

// protoDir is one flow direction's generic decode state.
type protoDir struct {
	flow        *protoFlow
	fromStation bool
	// skey / dc mirror the IEC 104 dirCache: the directional session
	// tally this direction books into.
	skey tcpflow.SessionKey
	dc   *DirCounts
	buf  []byte
}

// protoFlow is the per-flow state shared by both directions.
type protoFlow struct {
	proto protocol.ID
	sess  protocol.Session
	ck    ConnKey
	// serverName / outName / station are resolved once per flow.
	serverName, outName, station string
	toks                         *tokenList
}

// FrameEvent describes one accepted application frame for live
// observers.
type FrameEvent struct {
	Time time.Time
	// Proto is the dialect the frame belongs to (IEC 104 unless the
	// analyzer has other protocols enabled).
	Proto protocol.ID
	// Conn is the logical server/outstation relationship.
	Conn ConnKey
	// Server / Outstation are the resolved names of the endpoints.
	Server, Outstation string
	// FromOutstation is true for monitor-direction frames.
	FromOutstation bool
	Token          iec104.Token
	// ASDU is set for IEC 104 I-format frames only.
	ASDU *iec104.ASDU
	// Points carries the frame's extracted measurements for non-IEC-104
	// dialects (IEC 104 observers extract from the ASDU). Like the
	// ASDU, the slice is scratch: valid only during the ObserveFrame
	// call.
	Points []protocol.Point
}

// FrameObserver receives every accepted APDU in arrival order. It is
// called synchronously on the analysis path, so implementations must
// be fast and must not retain the ASDU.
type FrameObserver interface {
	ObserveFrame(FrameEvent)
}

// SetFrameObserver attaches (or, with nil, detaches) a live observer.
func (a *Analyzer) SetFrameObserver(o FrameObserver) { a.observer = o }

// EnableProtocols turns on generic registry decoding for the given
// dialects: streams on an enabled dialect's registered port are framed
// and tokenised by that dialect's Session instead of landing in the
// OtherPorts tally. IEC 104 needs no enabling — it always runs through
// the analyzer's specialised path — and unregistered IDs are ignored.
// With no protocols enabled the analyzer's output is byte-identical to
// the IEC 104-only pipeline.
func (a *Analyzer) EnableProtocols(ids ...protocol.ID) {
	if a.protocols == nil {
		a.protocols = make(map[protocol.ID]bool)
		a.protoDirs = make(map[dirKey]*protoDir)
		a.connProto = make(map[ConnKey]protocol.ID)
		a.dialectStats = make(map[protocol.ID]*DialectStat)
	}
	for _, id := range ids {
		if id == protocol.IEC104 {
			continue
		}
		if protocol.Get(id) != nil {
			a.protocols[id] = true
		}
	}
}

// EnableProtocolDetect enables every registered dialect and
// additionally content-sniffs streams on ports no dialect owns,
// claiming them for the first dialect whose Sniff accepts the first
// payload — the mixed-capture auto-detect mode.
func (a *Analyzer) EnableProtocolDetect() {
	var ids []protocol.ID
	for _, d := range protocol.All() {
		ids = append(ids, d.ID())
	}
	a.EnableProtocols(ids...)
	a.detectUnknown = true
}

// EnableProtocolNames applies a -proto style protocol list: each name
// enables that dialect, "auto" switches on full auto-detection, and
// "iec104" alone is the (default) single-protocol mode.
func (a *Analyzer) EnableProtocolNames(names ...string) error {
	for _, name := range names {
		if name == "auto" {
			a.EnableProtocolDetect()
			continue
		}
		id, ok := protocol.ParseID(name)
		if !ok {
			return fmt.Errorf("unknown protocol %q", name)
		}
		if id == protocol.IEC104 {
			continue
		}
		a.EnableProtocols(id)
	}
	return nil
}

// enabledByPort resolves the enabled dialect owning a TCP port.
func (a *Analyzer) enabledByPort(port uint16) protocol.Dialect {
	d := protocol.ByPort(port)
	if d == nil || !a.protocols[d.ID()] {
		return nil
	}
	return d
}

// claimFlow decides whether an enabled dialect owns a new flow
// direction and builds its decode state. Returns nil when no dialect
// claims the flow (the negative-cache entry).
func (a *Analyzer) claimFlow(sp tcpflow.StreamPayload) *protoDir {
	// The reverse direction may already be claimed; both directions
	// share one session so dialects can pair requests with responses.
	if rev, ok := a.protoDirs[dirKey{src: sp.Dst, dst: sp.Src}]; ok {
		if rev == nil {
			return nil
		}
		return &protoDir{
			flow:        rev.flow,
			fromStation: !rev.fromStation,
			skey:        tcpflow.SessionKey{Src: sp.Src.Addr(), Dst: sp.Dst.Addr()},
		}
	}
	d := a.enabledByPort(sp.Dst.Port())
	if d == nil {
		d = a.enabledByPort(sp.Src.Port())
	}
	if d == nil {
		if !a.detectUnknown {
			return nil
		}
		if d = protocol.Detect(sp.Data); d == nil || !a.protocols[d.ID()] {
			return nil
		}
	}
	srcAddr, dstAddr := sp.Src.Addr(), sp.Dst.Addr()
	var fromStation bool
	var server, station netip.Addr
	switch {
	case sp.Dst.Port() == d.Port():
		// src dialled the port owner.
		if d.StationInitiates() {
			fromStation, server, station = true, dstAddr, srcAddr
		} else {
			fromStation, server, station = false, srcAddr, dstAddr
		}
	case sp.Src.Port() == d.Port():
		if d.StationInitiates() {
			fromStation, server, station = false, srcAddr, dstAddr
		} else {
			fromStation, server, station = true, dstAddr, srcAddr
		}
	default:
		// Content-sniffed flow with no registered port on either side:
		// orient by the dialect's initiation convention — the first
		// talker is the station exactly when stations dial out.
		fromStation = d.StationInitiates()
		server, station = dstAddr, srcAddr
		if !fromStation {
			server, station = srcAddr, dstAddr
		}
	}
	pf := &protoFlow{
		proto:      d.ID(),
		sess:       d.NewSession(),
		ck:         ConnKey{Server: server, Outstation: station},
		serverName: a.Name(server),
		outName:    a.Name(station),
		station:    a.Name(station),
	}
	a.protoFlowList = append(a.protoFlowList, pf)
	return &protoDir{
		flow:        pf,
		fromStation: fromStation,
		skey:        tcpflow.SessionKey{Src: srcAddr, Dst: dstAddr},
	}
}

// feedDialect routes a non-IEC-104 stream chunk through the registry.
// It reports whether an enabled dialect consumed the chunk.
func (a *Analyzer) feedDialect(sp tcpflow.StreamPayload) bool {
	key := dirKey{src: sp.Src, dst: sp.Dst}
	pd, seen := a.protoDirs[key]
	if !seen {
		pd = a.claimFlow(sp)
		a.protoDirs[key] = pd
	}
	if pd == nil {
		return false
	}
	if sp.Retransmit {
		// Generic sessions are stateful across frames (config frames,
		// transaction pairing), so retransmitted bytes are dropped
		// rather than replayed through the session.
		return true
	}
	if len(sp.Data) == 0 {
		return true
	}
	ds := a.dialectStatFor(pd.flow.proto)
	ds.Bytes += len(sp.Data)
	buf := sp.Data
	if len(pd.buf) > 0 {
		pd.buf = append(pd.buf, sp.Data...)
		buf = pd.buf
	}
	for {
		ev, rest, skipped, ok := pd.flow.sess.Next(buf, pd.fromStation)
		if skipped > 0 {
			a.metrics.noteResync(skipped)
		}
		if !ok {
			pd.buf = append(pd.buf[:0], rest...)
			return true
		}
		buf = rest
		a.consumeDialectEvent(pd, sp, ev)
	}
}

// consumeDialectEvent books one generic decoded frame into the shared
// accumulators — the dialect-neutral mirror of consumeFrame.
func (a *Analyzer) consumeDialectEvent(pd *protoDir, sp tcpflow.StreamPayload, ev protocol.Event) {
	pf := pd.flow
	ds := a.dialectStatFor(pf.proto)
	if ev.Err != nil {
		ds.ParseErrors++
		a.ParseErrors++
		return
	}
	ds.Frames++
	if ds.TokenCounts == nil {
		ds.TokenCounts = make(map[string]int)
	}
	ds.TokenCounts[ev.Token.String()]++

	if pf.toks == nil {
		tl, ok := a.tokens[pf.ck]
		if !ok {
			tl = &tokenList{}
			a.tokens[pf.ck] = tl
		}
		pf.toks = tl
		a.connProto[pf.ck] = pf.proto
	}
	pf.toks.toks = append(pf.toks.toks, ev.Token)

	if pd.dc == nil {
		dc, ok := a.sessionAPDUs[pd.skey]
		if !ok {
			dc = &DirCounts{}
			a.sessionAPDUs[pd.skey] = dc
		}
		pd.dc = dc
	}
	// The session feature vector keys on the I/S/U role mix; other
	// dialects map through the token's class.
	switch ev.Token.Class() {
	case protocol.ClassAck:
		pd.dc.S++
	case protocol.ClassControl:
		pd.dc.U++
	default:
		pd.dc.I++
	}

	if len(ev.Points) > 0 {
		a.store.FeedPoints(pf.station, pf.proto, ev.Points, sp.Time)
	}
	if a.observer != nil {
		a.observer.ObserveFrame(FrameEvent{
			Time:           sp.Time,
			Proto:          pf.proto,
			Conn:           pf.ck,
			Server:         pf.serverName,
			Outstation:     pf.outName,
			FromOutstation: pd.fromStation,
			Token:          ev.Token,
			Points:         ev.Points,
		})
	}
}

func (a *Analyzer) dialectStatFor(id protocol.ID) *DialectStat {
	ds, ok := a.dialectStats[id]
	if !ok {
		ds = &DialectStat{Proto: id}
		a.dialectStats[id] = ds
	}
	return ds
}

// Dialects returns per-dialect traffic summaries sorted by dialect ID.
// Empty unless EnableProtocols saw traffic.
func (a *Analyzer) Dialects() []DialectStat {
	out := make([]DialectStat, 0, len(a.dialectStats))
	for _, ds := range a.dialectStats {
		cp := *ds
		cp.TokenCounts = make(map[string]int, len(ds.TokenCounts))
		for t, n := range ds.TokenCounts {
			cp.TokenCounts[t] = n
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proto < out[j].Proto })
	return out
}

// StreamCompliance collects per-stream dialect-compliance verdicts
// from every claimed flow whose session reports them (e.g. C37.118
// data-rate conformance). Entries for the same (dialect, connection,
// unit) — a flow that dropped and re-dialled — are folded together.
func (a *Analyzer) StreamCompliance() []protocol.StreamCompliance {
	type key struct {
		proto protocol.ID
		conn  string
		unit  string
	}
	merged := make(map[key]*protocol.StreamCompliance)
	var order []key
	for _, pf := range a.protoFlowList {
		cr, ok := pf.sess.(protocol.ComplianceReporter)
		if !ok {
			continue
		}
		conn := pf.serverName + "-" + pf.outName
		for _, sc := range cr.Compliance() {
			sc.Proto = pf.proto
			sc.Conn = conn
			k := key{sc.Proto, sc.Conn, sc.Unit}
			cur, ok := merged[k]
			if !ok {
				cp := sc
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			if sc.Frames > cur.Frames {
				cur.ConfiguredRate, cur.ObservedRate = sc.ConfiguredRate, sc.ObservedRate
				cur.Compliant, cur.Detail = sc.Compliant, sc.Detail
			}
			cur.Frames += sc.Frames
			cur.Errors += sc.Errors
		}
	}
	out := make([]protocol.StreamCompliance, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		return a.Unit < b.Unit
	})
	return out
}

// ConnProto returns the dialect of a logical connection (IEC 104 when
// never claimed by another dialect).
func (a *Analyzer) ConnProto(k ConnKey) protocol.ID {
	return a.connProto[k]
}

// StationCompliance is the §6.1 verdict for one endpoint.
type StationCompliance struct {
	Addr   netip.Addr
	Name   string
	Frames int
	// StrictInvalid counts I-frames a standard-profile parser rejects
	// or misreads.
	StrictInvalid int
	// Profile is the dialect the tolerant parser settled on.
	Profile iec104.Profile
	// Detected is false until an I-frame fixed the dialect.
	Detected bool
}

// NonCompliant reports whether the station needs a legacy dialect.
func (sc *StationCompliance) NonCompliant() bool {
	return sc.Detected && !sc.Profile.IsStandard()
}

// NewAnalyzer builds an empty pipeline. names maps addresses to the
// topology's labels (C1, O30, ...); unknown addresses are rendered
// numerically.
func NewAnalyzer(names map[netip.Addr]string) *Analyzer {
	a := &Analyzer{
		names:                names,
		parser:               iec104.NewTolerantParser(),
		sessions:             tcpflow.NewSessions(),
		store:                physical.NewStore(),
		tokens:               make(map[ConnKey]*tokenList),
		sessionAPDUs:         make(map[tcpflow.SessionKey]*DirCounts),
		sessionIOAs:          make(map[tcpflow.SessionKey]map[uint32]bool),
		typeCounts:           make(map[iec104.TypeID]int),
		typeStations:         make(map[iec104.TypeID]map[netip.Addr]bool),
		compliance:           make(map[netip.Addr]*StationCompliance),
		framing:              make(map[dirKey]*endpointState),
		endpointKeys:         make(map[netip.Addr]string),
		nameCache:            make(map[netip.Addr]string),
		otherPorts:           make(map[uint16]int),
		DedupRetransmissions: true,
	}
	a.tracker = tcpflow.NewTracker(a)
	return a
}

// Instrument books the analyzer's counters into reg, instruments the
// flow tracker, and attaches an optional event journal. Either argument
// may be nil; ReadPCAP additionally instruments the capture reader and
// books per-stage wall time once a registry is attached.
func (a *Analyzer) Instrument(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		a.metrics = newAnalyzerMetrics(reg)
		a.tracker.Instrument(reg)
	}
	a.journal = j
}

// NamesFromTopology builds the address book of the simulated network.
func NamesFromTopology(net *topology.Network) map[netip.Addr]string {
	m := make(map[netip.Addr]string)
	for _, s := range net.Servers {
		m[s.Addr] = string(s.ID)
	}
	for _, o := range net.Outstations() {
		m[o.Addr] = string(o.ID)
	}
	return m
}

// Name renders an address through the address book. Unknown addresses
// are rendered numerically once and interned, so repeated lookups on
// the frame path do not allocate.
func (a *Analyzer) Name(addr netip.Addr) string {
	if n, ok := a.names[addr]; ok {
		return n
	}
	if n, ok := a.nameCache[addr]; ok {
		return n
	}
	n := addr.String()
	a.nameCache[addr] = n
	return n
}

// endpointKey interns the parser's per-endpoint cache key.
func (a *Analyzer) endpointKey(addr netip.Addr) string {
	if k, ok := a.endpointKeys[addr]; ok {
		return k
	}
	k := addr.String()
	a.endpointKeys[addr] = k
	return k
}

// SetTraceLane attaches (or, with nil, detaches) a flight-recorder
// lane: FeedPacket then records one sampled StageFeed span per packet.
// The lane is single-producer, so it must belong to the goroutine that
// calls FeedPacket — in the streaming engine, the owning shard's lane.
func (a *Analyzer) SetTraceLane(l *trace.Lane) { a.lane = l }

// FeedPacket ingests one decoded TCP packet.
func (a *Analyzer) FeedPacket(pkt pcap.Packet) {
	sp := a.lane.Start()
	a.Packets++
	iec := pkt.TCP.SrcPort == IEC104Port || pkt.TCP.DstPort == IEC104Port
	if iec {
		a.IECPackets++
	}
	a.metrics.notePacket(iec)
	a.tracker.Feed(pkt)
	a.sessions.Feed(pkt)
	a.lane.End(sp, trace.StageFeed, 1, -1)
}

// OnPayload implements tcpflow.Consumer: it receives reassembled
// in-order stream data and runs APDU framing plus tolerant parsing.
// Streams that do not touch the IEC 104 port (the tap also carries
// C37.118 synchrophasors, ICCP and other plant traffic) are tallied
// and skipped.
func (a *Analyzer) OnPayload(sp tcpflow.StreamPayload) {
	if sp.Src.Port() != IEC104Port && sp.Dst.Port() != IEC104Port {
		if a.protocols != nil && a.feedDialect(sp) {
			return
		}
		a.notePortTraffic(sp)
		return
	}
	if sp.Retransmit {
		if a.DedupRetransmissions {
			return
		}
		// Ablation mode: process the retransmitted segment's raw
		// bytes as if they were fresh traffic. Real captures analysed
		// packet-by-packet (no reassembly) see exactly this, which is
		// how the paper first mistook repeated U16/U32 tokens for
		// endpoint behaviour (§6.3.1). The bytes bypass the framing
		// buffer so they cannot desynchronise the live stream.
		for buf := sp.Raw; len(buf) > 0; {
			// Resyncs inside a replay re-skip bytes the live stream
			// already counted, so they stay out of the metrics.
			frame, rest, _, ok := nextFrame(buf)
			if !ok {
				break
			}
			buf = rest
			// nil sequence state: retransmitted frames must not
			// trip the continuity check.
			a.consumeFrame(sp, frame, nil)
		}
		return
	}
	if len(sp.Data) == 0 {
		return
	}
	key := dirKey{src: sp.Src, dst: sp.Dst}
	var st *endpointState
	switch {
	case a.lastFraming[0].st != nil && a.lastFraming[0].key == key:
		st = a.lastFraming[0].st
	case a.lastFraming[1].st != nil && a.lastFraming[1].key == key:
		st = a.lastFraming[1].st
	default:
		var ok bool
		st, ok = a.framing[key]
		if !ok {
			st = &endpointState{}
			a.framing[key] = st
		}
		a.lastFraming[0], a.lastFraming[1] = framingRef{key, st}, a.lastFraming[0]
	}
	// Fast path: with no partial frame pending, scan the segment in
	// place instead of copying it into the framing buffer. Only a
	// trailing partial frame (or resync tail) is retained. sp.Data may
	// live in a pooled buffer that is recycled after this call, so the
	// tail must be copied out before returning.
	buf := sp.Data
	if len(st.buf) > 0 {
		st.buf = append(st.buf, sp.Data...)
		buf = st.buf
	}
	for {
		frame, rest, skipped, ok := nextFrame(buf)
		if skipped > 0 {
			a.metrics.noteResync(skipped)
			if a.journal != nil {
				a.journalEvent(sp.Time, obs.EventResync, connLabel(sp), map[string]any{
					"skipped_bytes": skipped,
				})
			}
		}
		if !ok {
			// Copy-to-front also bounds the buffer: the consumed prefix
			// is reclaimed instead of the backing array growing with
			// the stream. rest may overlap st.buf; copy is a memmove.
			st.buf = append(st.buf[:0], rest...)
			return
		}
		buf = rest
		a.consumeFrame(sp, frame, st)
	}
}

// nextFrame extracts one APDU from the front of buf. The framing and
// garbage-skip live with the codec (iec104.NextFrame), so the
// analyzer's specialised IEC 104 path and the generic protocol.Session
// path can never drift in resync behaviour.
func nextFrame(buf []byte) (frame, rest []byte, skipped int, ok bool) {
	return iec104.NextFrame(buf)
}

// consumeFrame parses one APDU and updates every accumulator. st
// carries the flow direction's sequence state (nil when the frame is a
// retransmission replay that must not advance it).
func (a *Analyzer) consumeFrame(sp tcpflow.StreamPayload, frame []byte, st *endpointState) {
	var c *dirCache
	if st != nil {
		c = &st.dir
	} else {
		c = &dirCache{}
	}
	if !c.filled {
		a.fillDirCache(c, sp)
	}

	sc := c.sc
	sc.Frames++

	_, err := a.parser.ParseFrameInto(c.srcKey, frame, &a.scratchAPDU, &a.scratchASDU)
	if err != nil {
		a.ParseErrors++
		if a.metrics != nil || a.journal != nil {
			cause := parseErrorCause(err)
			a.metrics.noteParseError(cause)
			a.journalEvent(sp.Time, obs.EventParseError, connLabel(sp), map[string]any{
				"cause":     cause,
				"frame_len": len(frame),
			})
		}
		return
	}
	// apdu (and its ASDU) are the analyzer's scratch: valid only until
	// the next frame is parsed, never retained past this function.
	apdu := &a.scratchAPDU
	a.metrics.noteFrame(apdu.Format)

	if apdu.Format == iec104.FormatI {
		// Record the strict-parser verdict for the compliance report.
		// Once the tolerant parser has pinned the endpoint's dialect,
		// the verdict is a constant of the dialect — running the full
		// 5-profile detection per frame would dominate large-capture
		// analysis time for no information.
		strictInvalid := false
		if sc.Detected {
			if !sc.Profile.IsStandard() {
				sc.StrictInvalid++
				strictInvalid = true
			}
		} else if !a.parser.StrictPlausible(frame) {
			sc.StrictInvalid++
			strictInvalid = true
		}
		if p, ok := a.parser.ProfileFor(c.srcKey); ok {
			newlyDetected := !sc.Detected
			// A flip is the station settling on a legacy dialect, or a
			// pinned dialect changing; first detection of the standard
			// profile is the expected case, not a flip.
			flipped := (newlyDetected && !p.IsStandard()) ||
				(!newlyDetected && sc.Profile != p)
			sc.Profile = p
			sc.Detected = true
			if newlyDetected || flipped {
				a.journalEvent(sp.Time, obs.EventConnState, connLabel(sp), map[string]any{
					"state":   "dialect_detected",
					"station": sc.Name,
					"dialect": p.String(),
				})
			}
			if flipped {
				a.metrics.noteFlip()
			}
		}
		if strictInvalid && a.metrics != nil {
			// Label by the dialect that rescued the frame; detection
			// above may have just pinned it.
			dialect := "undetected"
			if sc.Detected {
				dialect = sc.Profile.String()
			}
			a.metrics.noteStrictInvalid(dialect)
		}
		// N(S) continuity per flow direction.
		if st != nil {
			if st.nsSeen && apdu.SendSeq != st.nextNS {
				a.SeqAnomalies++
				a.metrics.noteSeqAnomaly()
				if a.journal != nil {
					a.journalEvent(sp.Time, obs.EventSeqAnomaly, connLabel(sp), map[string]any{
						"expected_ns": st.nextNS,
						"got_ns":      apdu.SendSeq,
					})
				}
			}
			st.nsSeen = true
			st.nextNS = (apdu.SendSeq + 1) & 0x7FFF
		}
	}

	// Token stream per logical connection. The list is created on the
	// first accepted frame only, so parse-error-only directions keep no
	// entry (exactly as before the cache).
	tok := apdu.Token()
	if c.toks == nil {
		tl, ok := a.tokens[c.ck]
		if !ok {
			tl = &tokenList{}
			a.tokens[c.ck] = tl
		}
		c.toks = tl
	}
	c.toks.toks = append(c.toks.toks, tok)
	if a.observer != nil {
		a.observer.ObserveFrame(FrameEvent{
			Time:           sp.Time,
			Conn:           c.ck,
			Server:         c.serverName,
			Outstation:     c.outName,
			FromOutstation: c.fromOutstation,
			Token:          tok,
			ASDU:           apdu.ASDU,
		})
	}

	// Directional session APDU mix.
	if c.dc == nil {
		dc, ok := a.sessionAPDUs[c.skey]
		if !ok {
			dc = &DirCounts{}
			a.sessionAPDUs[c.skey] = dc
		}
		c.dc = dc
	}
	switch apdu.Format {
	case iec104.FormatI:
		c.dc.I++
	case iec104.FormatS:
		c.dc.S++
	case iec104.FormatU:
		c.dc.U++
	}

	if apdu.Format == iec104.FormatI && apdu.ASDU != nil {
		a.typeCounts[apdu.ASDU.Type]++
		a.totalASDUs++
		if c.ioas == nil {
			ioas, ok := a.sessionIOAs[c.skey]
			if !ok {
				ioas = make(map[uint32]bool)
				a.sessionIOAs[c.skey] = ioas
			}
			c.ioas = ioas
		}
		for _, obj := range apdu.ASDU.Objects {
			c.ioas[obj.IOA] = true
		}
		ts, ok := a.typeStations[apdu.ASDU.Type]
		if !ok {
			ts = make(map[netip.Addr]bool)
			a.typeStations[apdu.ASDU.Type] = ts
		}
		ts[c.stationAddr] = true
		a.store.Feed(c.station, apdu.ASDU, sp.Time, c.command)
	}
}

// fillDirCache computes the direction-constant half of consumeFrame
// once per flow direction. Everything created here (the compliance
// entry, interned strings) is state consumeFrame previously created on
// every frame regardless of parse outcome, so eager filling changes no
// observable behaviour.
func (a *Analyzer) fillDirCache(c *dirCache, sp tcpflow.StreamPayload) {
	srcAddr := sp.Src.Addr()
	dstAddr := sp.Dst.Addr()
	c.fromOutstation = sp.Src.Port() == IEC104Port
	c.sc = a.complianceFor(srcAddr)
	c.srcKey = a.endpointKey(srcAddr)
	c.ck = ConnKey{Server: srcAddr, Outstation: dstAddr}
	if c.fromOutstation {
		c.ck = ConnKey{Server: dstAddr, Outstation: srcAddr}
	}
	c.serverName = a.Name(c.ck.Server)
	c.outName = a.Name(c.ck.Outstation)
	c.skey = tcpflow.SessionKey{Src: srcAddr, Dst: dstAddr}
	c.station = a.Name(srcAddr)
	c.stationAddr = srcAddr
	if !c.fromOutstation {
		c.station = a.Name(dstAddr)
		c.stationAddr = dstAddr
		c.command = true
	}
	c.filled = true
}

// strictPlausible checks whether a standard-profile parse of the frame
// both succeeds and looks sane — the §6.1 Wireshark test. The analyzer
// hot path calls the method on its own parser so the check reuses that
// parser's detection scratch; this wrapper exists for callers without
// one.
func strictPlausible(frame []byte) bool {
	var tp iec104.TolerantParser
	return tp.StrictPlausible(frame)
}

func (a *Analyzer) complianceFor(addr netip.Addr) *StationCompliance {
	sc, ok := a.compliance[addr]
	if !ok {
		sc = &StationCompliance{Addr: addr, Name: a.Name(addr), Profile: iec104.Standard}
		a.compliance[addr] = sc
	}
	return sc
}

// ReadPCAP runs the whole pipeline over a capture stream in either
// classic pcap or pcapng format. Packets that are not IPv4/TCP are
// skipped (taps also carry ARP, ICCP, C37.118 and other plant traffic
// the paper leaves to future work). When the analyzer is instrumented,
// the capture reader is instrumented too and the read / decode / feed
// stages are individually timed.
func (a *Analyzer) ReadPCAP(r io.Reader) error {
	pr, err := pcap.NewAutoReader(r)
	if err != nil {
		return err
	}
	if a.metrics != nil {
		if ir, ok := pr.(interface{ Instrument(*obs.Registry) }); ok {
			ir.Instrument(a.metrics.reg)
		}
		return a.readInstrumented(pr)
	}
	// One scratch buffer serves the whole capture: nothing downstream
	// of FeedPacket retains packet bytes past the call (reassembly and
	// framing copy what they buffer), so each record may overwrite the
	// previous one.
	var scratch []byte
	for {
		data, ci, err := pr.ReadPacketInto(scratch)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading capture: %w", err)
		}
		scratch = data
		pkt, err := pcap.DecodePacket(pr.LinkType(), ci, data)
		if err != nil {
			continue
		}
		a.FeedPacket(pkt)
	}
}

// readInstrumented is ReadPCAP's loop with per-stage wall-time
// accounting. The clock reads live here — not in FeedPacket — so the
// FeedPacket hot path itself stays free of timing overhead.
func (a *Analyzer) readInstrumented(pr pcap.PacketReader) error {
	var (
		readStage   = a.metrics.reg.Stage(StagePcapRead)
		decodeStage = a.metrics.reg.Stage(StagePcapDecode)
		feedStage   = a.metrics.reg.Stage(StageAnalyzeFeed)
		scratch     []byte
	)
	for {
		t0 := time.Now()
		data, ci, err := pr.ReadPacketInto(scratch)
		readStage.Observe(time.Since(t0))
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading capture: %w", err)
		}
		scratch = data
		t0 = time.Now()
		pkt, err := pcap.DecodePacket(pr.LinkType(), ci, data)
		decodeStage.Observe(time.Since(t0))
		if err != nil {
			a.metrics.noteDecodeError()
			continue
		}
		t0 = time.Now()
		a.FeedPacket(pkt)
		feedStage.Observe(time.Since(t0))
	}
}

// notePortTraffic accounts a non-IEC stream chunk under the lower
// (well-known) port of the pair.
func (a *Analyzer) notePortTraffic(sp tcpflow.StreamPayload) {
	port := sp.Src.Port()
	if sp.Dst.Port() < port {
		port = sp.Dst.Port()
	}
	a.otherPorts[port] += len(sp.Data)
}

// OtherProtocols returns payload byte counts of non-IEC-104 streams by
// well-known port (the ICCP / C37.118 traffic the paper's tap also
// carried and left for future work).
func (a *Analyzer) OtherProtocols() map[uint16]int {
	out := make(map[uint16]int, len(a.otherPorts))
	for p, n := range a.otherPorts {
		out[p] = n
	}
	return out
}

// TypeStations returns, per ASDU type, the distinct outstations
// involved (Table 8's "transmitting station count"). For commands the
// addressed outstation is counted, matching the paper's per-station
// semantics.
func (a *Analyzer) TypeStations() map[iec104.TypeID][]string {
	out := make(map[iec104.TypeID][]string, len(a.typeStations))
	for t, m := range a.typeStations {
		for addr := range m {
			out[t] = append(out[t], a.Name(addr))
		}
		sort.Strings(out[t])
	}
	return out
}

// Flows exposes the flow tracker (Table 3 / Fig 8).
func (a *Analyzer) Flows() *tcpflow.Tracker { return a.tracker }

// Sessions exposes the directional host-pair sessions.
func (a *Analyzer) Sessions() *tcpflow.Sessions { return a.sessions }

// Physical exposes the extracted time-series store.
func (a *Analyzer) Physical() *physical.Store { return a.store }

// TokenStream returns the token sequence of one logical connection.
func (a *Analyzer) TokenStream(k ConnKey) []iec104.Token {
	if tl, ok := a.tokens[k]; ok {
		return tl.toks
	}
	return nil
}

// ConnKeys returns every logical connection sorted by name.
func (a *Analyzer) ConnKeys() []ConnKey {
	out := make([]ConnKey, 0, len(a.tokens))
	for k := range a.tokens {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Server.Compare(out[j].Server); c != 0 {
			return c < 0
		}
		return out[i].Outstation.Compare(out[j].Outstation) < 0
	})
	return out
}

// CaptureWindow returns the first/last packet timestamps seen. The
// window comes from the flow tracker's packet clock, so it survives
// streaming-mode flow eviction.
func (a *Analyzer) CaptureWindow() (time.Time, time.Time) {
	return a.tracker.Window()
}

// EnableFlowEviction turns on idle-flow eviction in the tracker for
// streaming over endless captures: flows (and their APDU framing
// buffers) idle longer than timeout are dropped, keeping memory
// bounded. The flow taxonomy stays exact; a flow that wakes up after
// eviction re-enters as a fresh long-lived flow.
func (a *Analyzer) EnableFlowEviction(timeout time.Duration) {
	a.tracker.SetIdleTimeout(timeout)
	a.tracker.OnEvict(func(f *tcpflow.Flow) {
		delete(a.framing, dirKey{src: f.Key.A, dst: f.Key.B})
		delete(a.framing, dirKey{src: f.Key.B, dst: f.Key.A})
		// The memo may point at the states just deleted.
		a.lastFraming = [2]framingRef{}
		// Generic-dialect decode state (including negative-cache
		// entries) goes too; compliance already lives on the flow
		// record, which survives in protoFlowList.
		delete(a.protoDirs, dirKey{src: f.Key.A, dst: f.Key.B})
		delete(a.protoDirs, dirKey{src: f.Key.B, dst: f.Key.A})
	})
}
