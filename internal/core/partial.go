package core

import (
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/physical"
	"uncharted/internal/protocol"
	"uncharted/internal/tcpflow"
)

// Partial is one analyzer's mergeable snapshot: every §6 aggregate in
// a form that (a) no longer aliases the live analyzer's mutable state
// and (b) combines exactly across analysis shards. The streaming
// engine partitions traffic so each flow, logical connection and
// directional session is owned by one shard; merging partials then
// reproduces the single-analyzer result.
type Partial struct {
	Packets      int
	IECPackets   int
	ParseErrors  int
	SeqAnomalies int
	// First / Last bound every packet seen (the capture window).
	First, Last time.Time

	Flows        tcpflow.Summary
	FlowsEvicted int
	Compliance   []StationCompliance
	TypeCounts   map[iec104.TypeID]int
	TotalASDUs   int
	// Chains carries one freshly built Markov chain per logical
	// connection; chains never alias analyzer state.
	Chains []ConnChain
	// Features is one clustering row per directional session.
	Features []SessionFeature
	// Physical summarises every extracted series as a moment sketch.
	Physical []physical.Digest
	// OtherPorts tallies non-IEC-104 payload bytes by well-known port.
	OtherPorts map[uint16]int
	// Dialects summarises generic-registry traffic per dialect; empty
	// unless EnableProtocols saw frames (multi-protocol analyses only).
	Dialects []DialectStat
	// Streams carries per-stream dialect-compliance verdicts (e.g.
	// C37.118 data-rate conformance).
	Streams []protocol.StreamCompliance
}

// Partial snapshots the analyzer. The result shares nothing mutable
// with the analyzer, so the caller may keep it while analysis
// continues.
func (a *Analyzer) Partial() Partial {
	first, last := a.tracker.Window()
	p := Partial{
		Packets:      a.Packets,
		IECPackets:   a.IECPackets,
		ParseErrors:  a.ParseErrors,
		SeqAnomalies: a.SeqAnomalies,
		First:        first,
		Last:         last,
		Flows:        a.tracker.Summarize(),
		FlowsEvicted: a.tracker.EvictedFlows(),
		TotalASDUs:   a.totalASDUs,
		TypeCounts:   make(map[iec104.TypeID]int, len(a.typeCounts)),
		Features:     a.SessionFeatures(),
		// MergeDigests on a single list just sorts by series key, so a
		// lone Partial and a merged one order Physical identically.
		Physical:   physical.MergeDigests(a.store.Digests()),
		OtherPorts: a.OtherProtocols(),
	}
	for t, c := range a.typeCounts {
		p.TypeCounts[t] = c
	}
	for _, sc := range a.compliance {
		p.Compliance = append(p.Compliance, *sc)
	}
	sort.Slice(p.Compliance, func(i, j int) bool {
		return p.Compliance[i].Name < p.Compliance[j].Name
	})
	for _, key := range a.ConnKeys() {
		ch := markov.NewChain()
		ch.Add(a.TokenStream(key))
		p.Chains = append(p.Chains, ConnChain{
			Key:        key,
			Server:     a.Name(key.Server),
			Outstation: a.Name(key.Outstation),
			Proto:      a.connProto[key],
			Chain:      ch,
		})
	}
	p.Dialects = a.Dialects()
	p.Streams = a.StreamCompliance()
	return p
}

// MergePartials combines shard snapshots into one. Counters add;
// compliance verdicts merge per endpoint; chains, features and
// physical digests concatenate (deduplicating by key, which only
// triggers if two shards somehow saw the same flow) and are sorted so
// the merged result is deterministic regardless of shard count or
// scheduling.
func MergePartials(parts []Partial) Partial {
	var out Partial
	out.TypeCounts = make(map[iec104.TypeID]int)
	out.OtherPorts = make(map[uint16]int)
	compliance := make(map[netip.Addr]*StationCompliance)
	chains := make(map[ConnKey]*ConnChain)
	dialects := make(map[protocol.ID]*DialectStat)
	type streamKey struct {
		proto protocol.ID
		conn  string
		unit  string
	}
	streams := make(map[streamKey]*protocol.StreamCompliance)
	var physLists [][]physical.Digest

	for _, p := range parts {
		out.Packets += p.Packets
		out.IECPackets += p.IECPackets
		out.ParseErrors += p.ParseErrors
		out.SeqAnomalies += p.SeqAnomalies
		out.TotalASDUs += p.TotalASDUs
		out.FlowsEvicted += p.FlowsEvicted
		if !p.First.IsZero() && (out.First.IsZero() || p.First.Before(out.First)) {
			out.First = p.First
		}
		if p.Last.After(out.Last) {
			out.Last = p.Last
		}
		out.Flows = out.Flows.Merge(p.Flows)
		for t, c := range p.TypeCounts {
			out.TypeCounts[t] += c
		}
		for port, n := range p.OtherPorts {
			out.OtherPorts[port] += n
		}
		for i := range p.Compliance {
			sc := p.Compliance[i]
			cur, ok := compliance[sc.Addr]
			if !ok {
				cp := sc
				compliance[sc.Addr] = &cp
				continue
			}
			mergeCompliance(cur, sc)
		}
		for i := range p.Chains {
			cc := p.Chains[i]
			cur, ok := chains[cc.Key]
			if !ok {
				cp := cc
				chains[cc.Key] = &cp
				continue
			}
			if cur.Proto == 0 {
				cur.Proto = cc.Proto
			}
			cur.Chain.Merge(cc.Chain)
		}
		for i := range p.Dialects {
			ds := p.Dialects[i]
			cur, ok := dialects[ds.Proto]
			if !ok {
				cp := ds
				cp.TokenCounts = make(map[string]int, len(ds.TokenCounts))
				for t, n := range ds.TokenCounts {
					cp.TokenCounts[t] = n
				}
				dialects[ds.Proto] = &cp
				continue
			}
			cur.Frames += ds.Frames
			cur.ParseErrors += ds.ParseErrors
			cur.Bytes += ds.Bytes
			for t, n := range ds.TokenCounts {
				cur.TokenCounts[t] += n
			}
		}
		for i := range p.Streams {
			sc := p.Streams[i]
			k := streamKey{sc.Proto, sc.Conn, sc.Unit}
			cur, ok := streams[k]
			if !ok {
				cp := sc
				streams[k] = &cp
				continue
			}
			if sc.Frames > cur.Frames {
				cur.ConfiguredRate, cur.ObservedRate = sc.ConfiguredRate, sc.ObservedRate
				cur.Compliant, cur.Detail = sc.Compliant, sc.Detail
			}
			cur.Frames += sc.Frames
			cur.Errors += sc.Errors
		}
		out.Features = append(out.Features, p.Features...)
		physLists = append(physLists, p.Physical)
	}

	for _, sc := range compliance {
		out.Compliance = append(out.Compliance, *sc)
	}
	sort.Slice(out.Compliance, func(i, j int) bool {
		return out.Compliance[i].Name < out.Compliance[j].Name
	})
	for _, cc := range chains {
		out.Chains = append(out.Chains, *cc)
	}
	sort.Slice(out.Chains, func(i, j int) bool {
		a, b := out.Chains[i].Key, out.Chains[j].Key
		if c := a.Server.Compare(b.Server); c != 0 {
			return c < 0
		}
		return a.Outstation.Compare(b.Outstation) < 0
	})
	sort.Slice(out.Features, func(i, j int) bool {
		a, b := out.Features[i], out.Features[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	for _, ds := range dialects {
		out.Dialects = append(out.Dialects, *ds)
	}
	sort.Slice(out.Dialects, func(i, j int) bool {
		return out.Dialects[i].Proto < out.Dialects[j].Proto
	})
	for _, sc := range streams {
		out.Streams = append(out.Streams, *sc)
	}
	sort.Slice(out.Streams, func(i, j int) bool {
		a, b := out.Streams[i], out.Streams[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		return a.Unit < b.Unit
	})
	out.Physical = physical.MergeDigests(physLists...)
	return out
}

// mergeCompliance folds one shard's verdict for an endpoint into the
// accumulated one. Frame tallies add; when both shards pinned a
// dialect the verdict of the shard that saw more frames wins (an
// endpoint talking through two shards detects independently on each).
func mergeCompliance(dst *StationCompliance, src StationCompliance) {
	if src.Detected && (!dst.Detected || src.Frames > dst.Frames) {
		dst.Profile = src.Profile
		dst.Detected = true
	}
	dst.Frames += src.Frames
	dst.StrictInvalid += src.StrictInvalid
}

// FlowReport renders the §6.2 report from the snapshot.
func (p *Partial) FlowReport() FlowReport { return FlowReportFromSummary(p.Flows) }

// ComplianceReport renders the §6.1 report from the snapshot.
func (p *Partial) ComplianceReport() ComplianceReport {
	rep := ComplianceReport{Stations: append([]StationCompliance(nil), p.Compliance...)}
	for _, sc := range rep.Stations {
		if sc.NonCompliant() {
			rep.NonCompliant = append(rep.NonCompliant, sc.Name)
		}
	}
	return rep
}

// TypeDistribution renders the Table 7 shares from the snapshot.
func (p *Partial) TypeDistribution() []TypeIDShare {
	return TypeSharesFromCounts(p.TypeCounts, p.TotalASDUs)
}

// MarkovReport classifies the snapshot's per-connection chains.
func (p *Partial) MarkovReport() MarkovReport {
	return MarkovFromChains(p.Chains)
}

// ClusterReport clusters the snapshot's session features.
func (p *Partial) ClusterReport(k int, seed int64) (*ClusterReport, error) {
	return ClusterFeatures(p.Features, k, seed)
}
