package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// benchPackets synthesizes a capture once and pre-decodes it, so the
// benchmark loop measures FeedPacket alone.
var benchPackets []pcap.Packet

func loadBenchPackets(b *testing.B) []pcap.Packet {
	if benchPackets != nil {
		return benchPackets
	}
	cfg := scadasim.DefaultConfig(topology.Y1, 3)
	cfg.Duration = 2 * time.Minute
	cfg.CyclePeriod = time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		b.Fatal(err)
	}
	r, err := pcap.NewAutoReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	for {
		data, ci, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		pkt, err := pcap.DecodePacket(r.LinkType(), ci, data)
		if err != nil {
			b.Fatal(err)
		}
		benchPackets = append(benchPackets, pkt)
	}
	return benchPackets
}

func feedAll(b *testing.B, instrument bool) {
	pkts := loadBenchPackets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer(nil)
		if instrument {
			a.Instrument(obs.NewRegistry(), nil)
		}
		for _, pkt := range pkts {
			a.FeedPacket(pkt)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(len(pkts)*b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkFeedPacket is the uninstrumented baseline.
func BenchmarkFeedPacket(b *testing.B) { feedAll(b, false) }

// BenchmarkFeedPacketInstrumented measures the same workload with the
// metrics registry attached; the acceptance budget is within 5% of the
// baseline.
func BenchmarkFeedPacketInstrumented(b *testing.B) { feedAll(b, true) }
