package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/physical"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// analyzeYear generates a small capture and runs the full pipeline.
// The result is cached per year because the simulation dominates test
// time.
var cache = map[topology.Year]*Analyzer{}

func analyzeYear(t testing.TB, year topology.Year) *Analyzer {
	if a, ok := cache[year]; ok {
		return a
	}
	cfg := scadasim.DefaultConfig(year, 11)
	cfg.Duration = 6 * time.Minute
	cfg.CyclePeriod = 2 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(&buf); err != nil {
		t.Fatal(err)
	}
	cache[year] = a
	return a
}

func TestPipelineIngestsEverything(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	if a.Packets == 0 || a.IECPackets == 0 {
		t.Fatalf("packets=%d iec=%d", a.Packets, a.IECPackets)
	}
	if a.ParseErrors > a.IECPackets/100 {
		t.Fatalf("%d parse errors out of %d IEC packets", a.ParseErrors, a.IECPackets)
	}
	if a.totalASDUs == 0 {
		t.Fatal("no ASDUs decoded")
	}
}

func TestFlowShapesMatchPaper(t *testing.T) {
	// Table 3, Y1: short-lived flows dominate (74.4%) and nearly all
	// of them are sub-second (99.8%). We assert the shape, not the
	// absolute counts.
	rep := analyzeYear(t, topology.Y1).FlowAnalysis()
	s := rep.Summary
	if s.Total() == 0 {
		t.Fatal("no flows")
	}
	if p := s.ShortProportion(); p < 0.55 || p > 0.9 {
		t.Errorf("Y1 short-lived proportion %.3f, want ~0.74", p)
	}
	if p := s.SubSecProportion(); p < 0.95 {
		t.Errorf("Y1 sub-second proportion %.3f, want ~0.998", p)
	}
	if p := s.LongProportion(); p < 0.1 || p > 0.45 {
		t.Errorf("Y1 long-lived proportion %.3f, want ~0.256", p)
	}
	if len(rep.DurationHistogram) == 0 {
		t.Error("no duration histogram")
	}
}

func TestFlowShapesY2(t *testing.T) {
	// Table 3, Y2: short-lived share rises to ~93.8%, long-lived drops
	// to ~6.2%, and the over-one-second share of short flows grows to
	// ~6.5%.
	s := analyzeYear(t, topology.Y2).FlowAnalysis().Summary
	if p := s.ShortProportion(); p < 0.85 {
		t.Errorf("Y2 short-lived proportion %.3f, want ~0.938", p)
	}
	if p := s.SubSecProportion(); p < 0.8 || p > 0.99 {
		t.Errorf("Y2 sub-second proportion %.3f, want ~0.935", p)
	}
	y1 := analyzeYear(t, topology.Y1).FlowAnalysis().Summary
	if s.LongProportion() >= y1.LongProportion() {
		t.Errorf("Y2 long-lived proportion %.3f not below Y1's %.3f",
			s.LongProportion(), y1.LongProportion())
	}
}

func TestComplianceFindsLegacyStations(t *testing.T) {
	rep := analyzeYear(t, topology.Y1).Compliance()
	nc := strings.Join(rep.NonCompliant, ",")
	// Y1 legacy stations: O37 (IOA16) and O28 (COT8).
	for _, want := range []string{"O37", "O28"} {
		if !strings.Contains(nc, want) {
			t.Errorf("non-compliant list %q missing %s", nc, want)
		}
	}
	for _, sc := range rep.Stations {
		switch sc.Name {
		case "O37":
			if sc.Profile != iec104.LegacyIOA {
				t.Errorf("O37 profile %v", sc.Profile)
			}
			if sc.StrictInvalid == 0 {
				t.Error("O37 strict-invalid count is zero")
			}
		case "O28":
			if sc.Profile != iec104.LegacyCOT {
				t.Errorf("O28 profile %v", sc.Profile)
			}
		case "O1":
			if sc.NonCompliant() {
				t.Error("O1 flagged non-compliant")
			}
		}
	}
}

func TestComplianceY2LegacyStations(t *testing.T) {
	rep := analyzeYear(t, topology.Y2).Compliance()
	nc := strings.Join(rep.NonCompliant, ",")
	for _, want := range []string{"O37", "O53", "O58"} {
		if !strings.Contains(nc, want) {
			t.Errorf("Y2 non-compliant list %q missing %s", nc, want)
		}
	}
	if strings.Contains(nc, "O28") {
		t.Error("O28 present in Y2 but was removed")
	}
}

func TestMarkovReportShapes(t *testing.T) {
	rep := analyzeYear(t, topology.Y1).MarkovChains()
	if len(rep.Chains) == 0 {
		t.Fatal("no chains")
	}
	// Point (1,1): the reset backups. C2-O30 must be there; C1-O5..O9
	// too.
	p11 := strings.Join(rep.Point11, ",")
	for _, want := range []string{"C2-O30", "C1-O5", "C1-O7", "C2-O28"} {
		if !strings.Contains(p11, want) {
			t.Errorf("point(1,1) %q missing %s", p11, want)
		}
	}
	// The ellipse must contain the switchover stations.
	el := strings.Join(rep.Ellipse, ",")
	for _, want := range []string{"O20", "O29"} {
		if !strings.Contains(el, want) {
			t.Errorf("ellipse %q missing %s", el, want)
		}
	}
	if len(rep.Square) == 0 {
		t.Error("square cluster empty")
	}
}

func TestOutstationClassification(t *testing.T) {
	rep := analyzeYear(t, topology.Y1).MarkovChains()
	byName := map[string]int{}
	for _, c := range rep.Classes {
		byName[c.Outstation] = c.Type
	}
	cases := map[string]int{
		"O1":  1, // primary only
		"O4":  2, // ideal
		"O11": 3, // backup RTU
		"O40": 5, // stale spontaneous
		"O5":  6, // refused secondary
		"O7":  7, // reset backup
		"O29": 8, // switchover
	}
	for name, want := range cases {
		if got := byName[name]; got != want {
			t.Errorf("%s classified Type%d, want Type%d", name, got, want)
		}
	}
	// Fig. 17: Type 3 is the most common class.
	dist := rep.Distribution
	maxType, maxN := 0, -1
	for ty := 1; ty <= 8; ty++ {
		if dist[ty] > maxN {
			maxType, maxN = ty, dist[ty]
		}
	}
	if maxType != 3 {
		t.Errorf("most common class Type%d (dist %v), want Type3", maxType, dist)
	}
}

func TestTypeDistributionShape(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	shares := a.TypeDistribution()
	if len(shares) < 6 {
		t.Fatalf("only %d type IDs observed", len(shares))
	}
	// Table 7: I36 and I13 dominate (together ~97%).
	top2 := map[iec104.TypeID]bool{shares[0].Type: true, shares[1].Type: true}
	if !top2[iec104.MMeTf] || !top2[iec104.MMeNc] {
		t.Errorf("top types %v and %v, want I36 and I13", shares[0].Type, shares[1].Type)
	}
	if sum := shares[0].Percent + shares[1].Percent; sum < 80 {
		t.Errorf("top-2 share %.1f%%, want dominant (~97%%)", sum)
	}
	// I100 must be present but rare.
	for _, s := range shares {
		if s.Type == iec104.CIcNa && s.Percent > 2 {
			t.Errorf("I100 share %.3f%%, want rare", s.Percent)
		}
	}
	if txt := FormatTypeTable(shares); !strings.Contains(txt, "M_ME_TF_1") {
		t.Error("formatted table missing I36 acronym")
	}
}

func TestClusterSessions(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	rep, err := a.ClusterSessions(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 5 || len(rep.Assign) != len(rep.Features) {
		t.Fatalf("report shape: %d assigns, %d features", len(rep.Assign), len(rep.Features))
	}
	if len(rep.Projected) != len(rep.Features) || len(rep.Projected[0]) != 2 {
		t.Fatal("PCA projection shape wrong")
	}
	nonEmpty := 0
	for _, n := range rep.Sizes {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d non-empty clusters", nonEmpty)
	}
	// The outlier cluster should contain the C2→O30 or C4↔O22
	// sessions (the paper's cluster 0).
	outliers := strings.Join(rep.Outliers, ",")
	if !strings.Contains(outliers, "O30") && !strings.Contains(outliers, "O22") {
		t.Errorf("outlier cluster %q does not contain O30 or O22", outliers)
	}
	if len(rep.Elbow) == 0 {
		t.Error("no elbow sweep")
	}
}

func TestPhysicalExtraction(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	st := a.Physical()
	if len(st.All()) == 0 {
		t.Fatal("no physical series extracted")
	}
	// The AGC stations must show command-direction setpoint series.
	var sawSetpoint bool
	for _, s := range st.All() {
		if s.Command && s.Type == physical.IEC104Type(iec104.CSeNc) {
			sawSetpoint = true
			break
		}
	}
	if !sawSetpoint {
		t.Error("no AGC setpoint series extracted")
	}
	// Table 8: station counts per type. I36 and I13 must come from
	// many stations.
	counts := st.TypeStations()
	if counts[physical.IEC104Type(iec104.MMeTf)] < 5 {
		t.Errorf("I36 stations = %d", counts[physical.IEC104Type(iec104.MMeTf)])
	}
	if counts[physical.IEC104Type(iec104.MMeNc)] < 5 {
		t.Errorf("I13 stations = %d", counts[physical.IEC104Type(iec104.MMeNc)])
	}
}

func TestObservedTypeSubset(t *testing.T) {
	// The paper observed 13 of 54 type IDs; our traces should observe
	// a similar small subset (10-16).
	a := analyzeYear(t, topology.Y1)
	n := a.ObservedTypeCount()
	if n < 8 || n > 20 {
		t.Errorf("observed %d type IDs, want a paper-like subset", n)
	}
}

func TestCaptureWindow(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	first, last := a.CaptureWindow()
	if !first.Before(last) {
		t.Fatalf("window %v..%v", first, last)
	}
	if d := last.Sub(first); d < 4*time.Minute || d > 8*time.Minute {
		t.Fatalf("window %v, want ~6 minutes", d)
	}
}

func TestExtendedFeaturesAndSelection(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	feats := a.ExtendedSessionFeatures()
	if len(feats) == 0 {
		t.Fatal("no extended features")
	}
	for _, f := range feats[:3] {
		if len(f.Values) != len(AllFeatureNames) {
			t.Fatalf("feature row has %d values", len(f.Values))
		}
		if f.Values[FeatPctI]+f.Values[FeatPctS]+f.Values[FeatPctU] > 1.0001 {
			t.Fatalf("format percentages exceed 1: %+v", f.Values)
		}
	}
	// Sessions from servers carry direction 1; ones from outstations 0.
	var sawDir0, sawDir1 bool
	for _, f := range feats {
		switch f.Values[FeatDirection] {
		case 0:
			sawDir0 = true
		case 1:
			sawDir1 = true
		}
	}
	if !sawDir0 || !sawDir1 {
		t.Error("direction feature not populated for both directions")
	}

	scores, err := a.SelectFeatures(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(AllFeatureNames) {
		t.Fatalf("%d scores", len(scores))
	}
	selected := map[FeatureName]bool{}
	n := 0
	for _, s := range scores {
		if s.Selected {
			selected[s.Name] = true
			n++
		}
		if s.Silhouette < 0 || s.Silhouette > 1 {
			t.Errorf("%s silhouette %v out of range", s.Name, s.Silhouette)
		}
	}
	if n != 5 {
		t.Fatalf("selected %d features, want 5", n)
	}
	// The paper's winners included the format percentages; at least
	// two of them must survive selection here too.
	kept := 0
	for _, f := range []FeatureName{FeatPctI, FeatPctS, FeatPctU, FeatMeanInterArr, FeatTotalPackets} {
		if selected[f] {
			kept++
		}
	}
	if kept < 3 {
		t.Errorf("only %d of the paper's five features selected: %v", kept, selected)
	}
}

func TestPointTimingsRecoverConfiguredPeriods(t *testing.T) {
	a := analyzeYear(t, topology.Y1)
	stations := a.StationTimings(20)
	if len(stations) == 0 {
		t.Fatal("no station timings")
	}
	byName := map[string]StationTiming{}
	for _, st := range stations {
		byName[st.Station] = st
	}
	// O29 (a "modern" generator RTU) reports every point at 2s; the
	// capture alone must recover that cycle.
	o29, ok := byName["O29"]
	if !ok {
		t.Fatal("O29 missing from timings")
	}
	found := false
	for _, p := range o29.Periods {
		if p > 1.7 && p < 2.4 {
			found = true
		}
	}
	if !found || o29.PeriodicPoints == 0 {
		t.Fatalf("O29 2s cycle not recovered: %+v", o29)
	}
	// The Type 5 stale-data outstation (O40) is spontaneous-only:
	// no point may look periodic.
	if o40, ok := byName["O40"]; ok {
		if o40.PeriodicPoints > 0 {
			t.Fatalf("O40 reported periodic points: %+v", o40)
		}
	}
}

func TestSequenceContinuity(t *testing.T) {
	// Synthesized traffic carries continuous N(S) per connection;
	// the analyzer must not invent anomalies.
	a := analyzeYear(t, topology.Y1)
	if a.SeqAnomalies > a.IECPackets/200 {
		t.Fatalf("%d sequence anomalies on clean traffic (%d IEC packets)",
			a.SeqAnomalies, a.IECPackets)
	}
}
