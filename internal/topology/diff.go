package topology

// Change is one Table 2 row: an outstation added to or removed from the
// network between the capture years, with the operator's explanation.
type Change struct {
	Outstation OutstationID
	Added      bool
	Reason     ChangeReason
}

// IOADelta describes a Fig. 6 arrow: the change in observed IOAs for an
// outstation present in both years.
type IOADelta struct {
	Outstation OutstationID
	Y1, Y2     int
}

// Direction renders the Fig. 6 arrow.
func (d IOADelta) Direction() string {
	switch {
	case d.Y2 > d.Y1:
		return "up"
	case d.Y2 < d.Y1:
		return "down"
	}
	return "same"
}

// Diff is the full Y1→Y2 comparison (§6's Hypothesis 1 analysis).
type Diff struct {
	Added   []Change
	Removed []Change
	// Deltas lists every outstation present in both years.
	Deltas []IOADelta
	// StableOutstations are those reporting the same IOA count in both
	// years; StableSubstations had every RTU stable and unchanged.
	StableOutstations []OutstationID
	StableSubstations []SubstationID
	// Totals for the stability ratios the paper quotes (25% of
	// outstations, 26% of substations).
	TotalOutstations int
	TotalSubstations int
}

// OutstationStability returns the fraction of all observed outstations
// that remained connected with an identical IOA count.
func (d Diff) OutstationStability() float64 {
	if d.TotalOutstations == 0 {
		return 0
	}
	return float64(len(d.StableOutstations)) / float64(d.TotalOutstations)
}

// SubstationStability returns the fraction of substations that were
// fully stable.
func (d Diff) SubstationStability() float64 {
	if d.TotalSubstations == 0 {
		return 0
	}
	return float64(len(d.StableSubstations)) / float64(d.TotalSubstations)
}

// ComputeDiff compares the two capture years of the network.
func ComputeDiff(n *Network) Diff {
	var d Diff
	d.TotalOutstations = len(n.order)
	d.TotalSubstations = len(n.Substations)
	for _, o := range n.Outstations() {
		switch {
		case o.PresentY1 && !o.PresentY2:
			d.Removed = append(d.Removed, Change{Outstation: o.ID, Reason: o.RemoveReason})
		case !o.PresentY1 && o.PresentY2:
			d.Added = append(d.Added, Change{Outstation: o.ID, Added: true, Reason: o.AddReason})
		case o.PresentY1 && o.PresentY2:
			d.Deltas = append(d.Deltas, IOADelta{Outstation: o.ID, Y1: o.IOACountY1, Y2: o.IOACountY2})
			if o.IOACountY1 == o.IOACountY2 {
				d.StableOutstations = append(d.StableOutstations, o.ID)
			}
		}
	}
	for _, s := range n.Substations {
		stable := len(s.Outstations) > 0
		for _, id := range s.Outstations {
			o := n.outstations[id]
			if !o.PresentY1 || !o.PresentY2 || o.IOACountY1 != o.IOACountY2 {
				stable = false
				break
			}
		}
		if stable {
			d.StableSubstations = append(d.StableSubstations, s.ID)
		}
	}
	return d
}
