package topology

import (
	"fmt"
	"net/netip"
	"time"

	"uncharted/internal/iec104"
)

// substationPlan pins every outstation to a substation. S10 is the
// "newer substation with 14 RTUs" of the paper (redundant RTU pairs per
// generator); Y2 additions O51, O56-O58 are backup RTUs placed next to
// the stations they back up.
var substationPlan = map[SubstationID][]int{
	"S1":  {1},
	"S2":  {2},
	"S3":  {3, 4},
	"S4":  {5},
	"S5":  {6, 7},
	"S6":  {8, 9, 15},
	"S7":  {24, 25},
	"S8":  {26, 27},
	"S9":  {28, 29, 51},
	"S10": {10, 11, 12, 13, 14, 16, 17, 18, 19, 20, 21, 22, 23, 33, 56, 57},
	"S11": {30},
	"S12": {31, 32},
	"S13": {34, 35},
	"S14": {36, 37},
	"S15": {38, 39},
	"S16": {40},
	"S17": {41, 42},
	"S18": {43},
	"S19": {44, 45},
	"S20": {46, 47},
	"S21": {48, 58},
	"S22": {49},
	"S23": {52},
	"S24": {50},
	"S25": {54},
	"S26": {55},
	"S27": {53},
}

// Substations served by the C3/C4 server pair; all others use C1/C2.
// The assignment honours every connection the paper names: the reset
// backups C1-O5..C2-O30 live on C1/C2, the under-test C4-O22 and the
// switchover pair O20-C3/C4 live on C3/C4.
var pair34 = map[SubstationID]bool{
	"S3": true, "S10": true, "S12": true, "S14": true, "S15": true,
	"S17": true, "S18": true, "S19": true, "S20": true, "S21": true,
	"S22": true, "S24": true, "S25": true, "S27": true,
}

// connTypePlan assigns the Table 6 / Fig. 17 interaction type to every
// outstation. Memberships named by the paper: Type 5 is the single
// stale-data outstation; Type 6 contains O5 and O8 (plus O28, which the
// paper separately reports sending legacy-COT I-frames while its C2
// backup connection sits at the Markov point (1,1)); Type 7 holds the
// remaining reset-backup RTUs; Type 8 holds the observed switchovers
// (O20, O29 among them). Type 3 is the most common (~34%).
var connTypePlan = map[ConnType][]int{
	Type1: {1, 2, 32, 42, 45},
	Type2: {4, 10, 14, 18, 25, 27},
	Type3: {11, 13, 17, 19, 21, 22, 23, 26, 31, 33, 36, 38, 41, 44, 46, 48, 49, 51, 56, 57},
	Type4: {3, 12, 16, 34, 37, 39, 50, 52, 53, 54, 55, 58},
	Type5: {40},
	Type6: {5, 8, 28},
	Type7: {6, 7, 9, 15, 24, 30, 35},
	Type8: {20, 29, 43, 47},
}

// Table 2 membership.
var (
	removedY2 = map[int]ChangeReason{
		15: ReasonRedundantRTU, 20: ReasonRedundantRTU, 22: ReasonRedundantRTU,
		28: ReasonRedundantRTU, 33: ReasonRedundantRTU, 38: ReasonRedundantRTU,
		2: ReasonNoSupervision,
	}
	addedY2 = map[int]ChangeReason{
		50: ReasonNewSubstation, 53: ReasonNewSubstation,
		52: ReasonUpgraded101, 55: ReasonUpgraded101,
		51: ReasonBackupRTU, 56: ReasonBackupRTU, 57: ReasonBackupRTU, 58: ReasonBackupRTU,
		54: ReasonMaintenance,
	}
)

// stableOutstations are the 14 RTUs (25% of 58) that stayed connected
// and reported the same number of IOAs across both years; they are
// chosen so exactly 7 substations (26% of 27) are fully stable:
// S1, S3, S4, S8, S13, S18, S22.
var stableOutstations = map[int]bool{
	1: true, 3: true, 4: true, 5: true, 8: true, 10: true, 11: true,
	13: true, 26: true, 27: true, 34: true, 35: true, 43: true, 49: true,
}

// legacyProfiles pins the non-compliant dialects of §6.1.
var legacyProfiles = map[int]iec104.Profile{
	37: iec104.LegacyIOA, // 2-octet information object addresses
	28: iec104.LegacyCOT, // 1-octet cause of transmission
	53: iec104.LegacyCOT,
	58: iec104.LegacyCOT,
}

// transmissionOnly marks substations without a generator (auxiliary
// network measurements only). The paper: most substations sit next to a
// generator; a few report transmission equipment only, among them S2
// (whose loss was tolerable because AGC does not control it).
var transmissionOnly = map[SubstationID]bool{
	"S2": true, "S11": true, "S16": true, "S22": true,
}

// modernStations report time-tagged short floats (I36); the rest use
// plain short floats (I13). 13 stations transmit I36 per Table 8.
var modernStations = map[int]bool{
	3: true, 4: true, 10: true, 12: true, 16: true, 29: true, 34: true,
	39: true, 43: true, 47: true, 50: true, 53: true, 55: true,
}

// Build constructs the full two-year network.
func Build() *Network {
	n := &Network{outstations: make(map[OutstationID]*Outstation)}
	for i := 1; i <= 4; i++ {
		n.Servers = append(n.Servers, Server{
			ID:   serverID(i),
			Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		})
	}

	typeOf := make(map[int]ConnType)
	for ct, ids := range connTypePlan {
		for _, id := range ids {
			typeOf[id] = ct
		}
	}

	for si := 1; si <= 27; si++ {
		sid := substationID(si)
		nums := substationPlan[sid]
		sub := Substation{ID: sid, HasGenerator: !transmissionOnly[sid]}
		for _, num := range nums {
			oid := outstationID(num)
			sub.Outstations = append(sub.Outstations, oid)
			o := buildOutstation(num, sid, sub.HasGenerator, typeOf[num])
			n.outstations[oid] = o
			n.order = append(n.order, oid)
		}
		n.Substations = append(n.Substations, sub)
	}
	SortOutstationIDs(n.order)
	return n
}

func buildOutstation(num int, sid SubstationID, hasGen bool, ct ConnType) *Outstation {
	o := &Outstation{
		ID:         outstationID(num),
		Substation: sid,
		Profile:    iec104.Standard,
		CommonAddr: uint16(num),
		Addr:       netip.AddrFrom4([4]byte{10, 0, byte(1 + num/200), byte(10 + num%200)}),
		ConnType:   ct,
	}
	if p, ok := legacyProfiles[num]; ok {
		o.Profile = p
	}
	if pair34[sid] {
		o.Servers = [2]ServerID{"C3", "C4"}
	} else {
		o.Servers = [2]ServerID{"C1", "C2"}
	}
	o.HasGenerator = hasGen
	// AGC setpoint receivers: 4 generator stations (Table 8).
	switch num {
	case 4, 10, 29, 39:
		o.ReceivesAGC = true
	}

	// Presence per year.
	o.PresentY1 = num <= 49
	o.PresentY2 = true
	if r, ok := removedY2[num]; ok {
		o.PresentY2 = false
		o.RemoveReason = r
	}
	if r, ok := addedY2[num]; ok {
		o.AddReason = r
	}

	// IOA counts: a deterministic base, equal across years for the 14
	// stable RTUs, otherwise drifting up or down (Fig. 6 arrows).
	base := 6 + (num*7)%22
	if hasGen {
		base += 6
	}
	// Backup RTUs transmit only keep-alives; their observed IOA count
	// is the small set they would expose when interrogated.
	if ct == Type3 || ct == Type7 {
		base = 3 + num%6
	}
	o.IOACountY1 = base
	o.IOACountY2 = base
	if !stableOutstations[num] {
		delta := 1 + num%4
		if num%2 == 0 || base-delta < 3 {
			o.IOACountY2 = base + delta
		} else {
			o.IOACountY2 = base - delta
		}
	}
	if !o.PresentY1 {
		o.IOACountY1 = 0
	}
	if !o.PresentY2 {
		o.IOACountY2 = 0
	}

	// Pathologies named by the paper.
	switch ct {
	case Type6, Type7:
		// The reset-backup connections of Fig. 9 / point (1,1). The
		// named list (C1-O5..C2-O30) alternates between the two
		// servers of the pair.
		reject := o.Servers[1]
		switch num {
		case 24, 28, 30:
			reject = o.Servers[1] // C2 side
		case 5, 6, 7, 8, 9, 15, 35:
			reject = o.Servers[0] // C1 side
		}
		o.Behavior.RejectBackupFrom = reject
	}
	if num == 30 {
		// The misconfigured T3 timer: 430s between keep-alives where
		// the rest of the network averages ~30s.
		o.Behavior.KeepAliveInterval = 430 * time.Second
	}
	if num == 22 {
		o.Behavior.TestingOnly = true
	}
	if ct == Type5 {
		o.Behavior.SpontaneousOnly = true
	}
	// A couple of RTUs drop backup SYNs without answering, which the
	// flow analysis sees as long-lived flows (no lifecycle pair).
	if num == 24 || num == 35 {
		o.Behavior.SilentDropBackup = true
	}
	return o
}

// buildPoints derives the measurement point list. Point IOAs start at
// 1001 for analog telemetry, 3001 for status points, and 7001 for the
// AGC setpoint objects.
func buildPoints(o *Outstation, y Year) []Point {
	count := o.IOACount(y)
	if count == 0 {
		return nil
	}
	var pts []Point
	add := func(t iec104.TypeID, k PointKind, period time.Duration) {
		ioa := uint32(1001 + len(pts))
		if k == KindStatus {
			ioa = uint32(3001 + len(pts))
		}
		if k == KindSetpoint {
			ioa = uint32(7001)
		}
		pts = append(pts, Point{IOA: ioa, Type: t, Kind: k, Period: period})
	}

	num := Num(o.ID)
	// The Table 8 long tail: specific stations carry the rare types.
	// I36 (float + time tag) is reported by the 13 "modern" stations,
	// which also produce most of the traffic volume (Table 7's 65%).
	modern := modernStations[num]

	fast := 2 * time.Second
	slow := 6 * time.Second
	if o.Behavior.SpontaneousOnly {
		fast, slow = 0, 0
	}

	analogType := iec104.MMeNc // I13
	if modern {
		analogType = iec104.MMeTf // I36
		slow = fast
	}
	if num == 45 {
		// The single station reporting normalized values (I9, Table 8)
		// — a legacy RTU whose share of traffic the paper puts near 3%.
		analogType = iec104.MMeNa
		slow = fast
	}
	if o.HasGenerator {
		add(analogType, KindActivePower, fast)
		add(analogType, KindReactivePower, fast)
		add(analogType, KindVoltage, slow)
		add(analogType, KindCurrent, slow)
		add(analogType, KindFrequency, slow)
		// Breaker status: double point, time-tagged on a few stations.
		// Plain double points refresh cyclically every 45s (the I3
		// share of Table 7); time-tagged variants are event-driven.
		switch num % 13 {
		case 0, 1, 3:
			add(iec104.MDpNa, KindStatus, 45*time.Second) // I3 stations
		case 4, 5:
			add(iec104.MDpTb, KindStatus, 0) // I31 stations
		case 6:
			add(iec104.MSpNa, KindStatus, 0) // I1 stations
		}
		if o.ReceivesAGC {
			add(iec104.CSeNc, KindSetpoint, 0) // I50 target object
		}
	} else {
		add(analogType, KindVoltage, slow)
		add(analogType, KindFrequency, slow)
		add(analogType, KindActivePower, fast)
	}
	// One station apiece for the rare monitor types.
	switch num {
	case 45:
		add(iec104.MMeNa, KindOther, slow) // I9: normalized values
	case 42:
		add(iec104.MStNa, KindOther, slow+4*time.Second) // I5: tap changer position
	case 32:
		add(iec104.MBoNa, KindOther, 0) // I7: bitstring
	case 16:
		add(iec104.MSpTb, KindStatus, 0) // I30: time-tagged single point
	}
	// Pad with generic analog telemetry up to the observed IOA count.
	for len(pts) < count {
		k := KindCurrent
		if len(pts)%2 == 0 {
			k = KindVoltage
		}
		add(analogType, k, slow)
	}
	if len(pts) > count {
		pts = pts[:count]
	}
	return pts
}

var _ = fmt.Sprintf // keep fmt imported for debug helpers
