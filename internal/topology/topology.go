// Package topology models the federated SCADA network of the paper's
// bulk power system (Fig. 6): four control servers (C1-C4) in the
// system operator's control room, 27 substations (S1-S27) and 58
// outstations / RTUs (O1-O58) observed across two capture years, plus
// the Y1→Y2 diff of Table 2.
//
// The paper names the special cases (which outstations were added or
// removed and why, which speak legacy dialects, which reset backup
// connections, which had a misconfigured keep-alive timer); everything
// the paper leaves unnamed is filled deterministically so the whole
// network is reproducible from code.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"uncharted/internal/iec104"
)

// Year selects one of the two capture campaigns.
type Year int

// Capture years.
const (
	Y1 Year = 1
	Y2 Year = 2
)

func (y Year) String() string { return fmt.Sprintf("Y%d", int(y)) }

// ServerID names a control server, "C1".."C4".
type ServerID string

// OutstationID names an outstation / RTU, "O1".."O58".
type OutstationID string

// SubstationID names a substation, "S1".."S27".
type SubstationID string

// ConnType is the paper's eight-way outstation interaction taxonomy
// (Table 6 plus the two extra types of Fig. 17).
type ConnType int

// Outstation interaction types.
const (
	TypeUnknown ConnType = iota
	Type1                // no secondary connection, I-format only
	Type2                // ideal: primary I + secondary U16/U32 keep-alives
	Type3                // U-format only (redundant backup RTU)
	Type4                // I-format only, to both servers across captures
	Type5                // single server, both I and U (T3 fires between sparse spontaneous I)
	Type6                // primary I + refused secondary (U16 without U32)
	Type7                // backup that resets every connection attempt: the (1,1) Markov point
	Type8                // switchover observed: secondary becomes primary, I100 interrogation
)

func (t ConnType) String() string {
	if t >= Type1 && t <= Type8 {
		return fmt.Sprintf("Type%d", int(t))
	}
	return "TypeUnknown"
}

// PointKind is the physical quantity a measurement point reports
// (Table 8's "physical symbols").
type PointKind string

// Physical symbols.
const (
	KindActivePower   PointKind = "P"
	KindReactivePower PointKind = "Q"
	KindVoltage       PointKind = "U"
	KindCurrent       PointKind = "I"
	KindFrequency     PointKind = "Freq"
	KindStatus        PointKind = "Status"
	KindSetpoint      PointKind = "AGC-SP"
	KindOther         PointKind = "-"
)

// Point is one information object a station reports or accepts.
type Point struct {
	IOA  uint32
	Type iec104.TypeID
	Kind PointKind
	// Period is the cyclic reporting interval; zero means the point is
	// reported spontaneously (threshold crossings) only.
	Period time.Duration
}

// Behavior collects the pathologies the paper observed in the field.
type Behavior struct {
	// RejectBackupFrom names the server whose backup connection this
	// outstation resets (Fig. 9 / the Markov point (1,1)).
	RejectBackupFrom ServerID
	// SilentDropBackup makes rejected backup SYNs disappear without
	// an RST (contributes long-lived flows without lifecycle pairs).
	SilentDropBackup bool
	// KeepAliveInterval overrides the secondary-connection keep-alive
	// cadence (the C2-O30 misconfiguration: 430s instead of ~30s).
	KeepAliveInterval time.Duration
	// TestingOnly marks an RTU that was merely being commissioned
	// (C4-O22 exchanged four packets in Y1).
	TestingOnly bool
	// SpontaneousOnly marks the Type 5 outstation configured with
	// large reporting thresholds (stale data in the control room).
	SpontaneousOnly bool
}

// ChangeReason explains a Table 2 row.
type ChangeReason string

// Table 2 reasons.
const (
	ReasonNewSubstation ChangeReason = "New substation"
	ReasonUpgraded101   ChangeReason = "Updated from 101 to 104"
	ReasonBackupRTU     ChangeReason = "Backup RTU"
	ReasonMaintenance   ChangeReason = "Under maintenance in year 1"
	ReasonRedundantRTU  ChangeReason = "Redundant RTU in operation"
	ReasonNoSupervision ChangeReason = "Substation without supervision"
	ReasonNone          ChangeReason = ""
)

// Outstation is one RTU with everything the simulator and the analysis
// ground truth need.
type Outstation struct {
	ID         OutstationID
	Substation SubstationID
	// Servers is the primary/secondary control server pair (C1/C2 or
	// C3/C4); Servers[0] is the initially-primary one.
	Servers [2]ServerID
	// Profile is the wire dialect the RTU speaks (legacy encodings for
	// O37, O28, O53, O58).
	Profile    iec104.Profile
	CommonAddr uint16
	Addr       netip.Addr

	PresentY1, PresentY2 bool
	// IOACountY1/Y2 are the observed distinct information object
	// addresses per year (the "cloud" numbers of Fig. 6).
	IOACountY1, IOACountY2 int

	HasGenerator bool
	// ReceivesAGC marks generator outstations the operator steers with
	// C_SE_NC_1 setpoints (the I50 stations of Table 8).
	ReceivesAGC bool

	ConnType ConnType
	Behavior Behavior
	// AddReason / RemoveReason explain Table 2 membership.
	AddReason    ChangeReason
	RemoveReason ChangeReason
}

// PresentIn reports presence in the given capture year.
func (o *Outstation) PresentIn(y Year) bool {
	if y == Y1 {
		return o.PresentY1
	}
	return o.PresentY2
}

// IOACount returns the per-year IOA count.
func (o *Outstation) IOACount(y Year) int {
	if y == Y1 {
		return o.IOACountY1
	}
	return o.IOACountY2
}

// SendsIFormat reports whether the outstation transmits I-format data
// (as opposed to being a keep-alive-only backup).
func (o *Outstation) SendsIFormat() bool {
	switch o.ConnType {
	case Type3, Type7:
		return false
	}
	return !o.Behavior.TestingOnly
}

// Server is one control server of the system operator.
type Server struct {
	ID   ServerID
	Addr netip.Addr
}

// Substation groups outstations.
type Substation struct {
	ID           SubstationID
	HasGenerator bool
	Outstations  []OutstationID
}

// Network is the full two-year topology.
type Network struct {
	Servers     []Server
	Substations []Substation
	outstations map[OutstationID]*Outstation
	order       []OutstationID
}

// Outstation looks up one RTU.
func (n *Network) Outstation(id OutstationID) (*Outstation, bool) {
	o, ok := n.outstations[id]
	return o, ok
}

// Outstations returns every RTU in ID order.
func (n *Network) Outstations() []*Outstation {
	out := make([]*Outstation, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.outstations[id])
	}
	return out
}

// OutstationsIn returns the RTUs present in year y, in ID order.
func (n *Network) OutstationsIn(y Year) []*Outstation {
	var out []*Outstation
	for _, id := range n.order {
		if o := n.outstations[id]; o.PresentIn(y) {
			out = append(out, o)
		}
	}
	return out
}

// SubstationsIn returns the substations with at least one RTU in year y.
func (n *Network) SubstationsIn(y Year) []Substation {
	var out []Substation
	for _, s := range n.Substations {
		present := Substation{ID: s.ID, HasGenerator: s.HasGenerator}
		for _, id := range s.Outstations {
			if n.outstations[id].PresentIn(y) {
				present.Outstations = append(present.Outstations, id)
			}
		}
		if len(present.Outstations) > 0 {
			out = append(out, present)
		}
	}
	return out
}

// ServerAddr returns a server's IP address.
func (n *Network) ServerAddr(id ServerID) netip.Addr {
	for _, s := range n.Servers {
		if s.ID == id {
			return s.Addr
		}
	}
	return netip.Addr{}
}

// Points returns the deterministic measurement point list for an
// outstation in a given year. The point mix is what calibrates the
// paper's Table 7 type distribution: short-float-with-time-tag (I36)
// and short-float (I13) measurements dominate; normalized values (I9),
// step positions (I5), double points (I3/I31), single points (I1/I30),
// bitstrings (I7) and clock syncs appear in the long tail.
func (n *Network) Points(id OutstationID, y Year) []Point {
	o, ok := n.outstations[id]
	if !ok || !o.PresentIn(y) {
		return nil
	}
	return buildPoints(o, y)
}

// String renders "C1", "O12" style IDs from indices.
func serverID(i int) ServerID         { return ServerID(fmt.Sprintf("C%d", i)) }
func outstationID(i int) OutstationID { return OutstationID(fmt.Sprintf("O%d", i)) }
func substationID(i int) SubstationID { return SubstationID(fmt.Sprintf("S%d", i)) }

// Num extracts the numeric suffix of an outstation ID.
func Num(id OutstationID) int {
	var n int
	fmt.Sscanf(string(id), "O%d", &n)
	return n
}

// SortOutstationIDs orders IDs numerically (O2 before O10).
func SortOutstationIDs(ids []OutstationID) {
	sort.Slice(ids, func(i, j int) bool { return Num(ids[i]) < Num(ids[j]) })
}
