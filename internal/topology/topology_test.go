package topology

import (
	"testing"
	"time"

	"uncharted/internal/iec104"
)

func TestBuildShape(t *testing.T) {
	n := Build()
	if got := len(n.Servers); got != 4 {
		t.Fatalf("servers = %d, want 4", got)
	}
	if got := len(n.Substations); got != 27 {
		t.Fatalf("substations = %d, want 27", got)
	}
	if got := len(n.Outstations()); got != 58 {
		t.Fatalf("outstations = %d, want 58", got)
	}
	if got := len(n.OutstationsIn(Y1)); got != 49 {
		t.Fatalf("Y1 outstations = %d, want 49", got)
	}
	if got := len(n.OutstationsIn(Y2)); got != 51 {
		t.Fatalf("Y2 outstations = %d, want 51", got)
	}
}

func TestS10Has14RTUsInY1(t *testing.T) {
	n := Build()
	for _, s := range n.SubstationsIn(Y1) {
		if s.ID == "S10" {
			if len(s.Outstations) != 14 {
				t.Fatalf("S10 Y1 RTUs = %d, want 14", len(s.Outstations))
			}
			return
		}
	}
	t.Fatal("S10 missing in Y1")
}

func TestTable2Memberships(t *testing.T) {
	n := Build()
	d := ComputeDiff(n)

	wantRemoved := map[OutstationID]ChangeReason{
		"O15": ReasonRedundantRTU, "O20": ReasonRedundantRTU, "O22": ReasonRedundantRTU,
		"O28": ReasonRedundantRTU, "O33": ReasonRedundantRTU, "O38": ReasonRedundantRTU,
		"O2": ReasonNoSupervision,
	}
	if len(d.Removed) != len(wantRemoved) {
		t.Fatalf("removed = %d, want %d", len(d.Removed), len(wantRemoved))
	}
	for _, c := range d.Removed {
		if wantRemoved[c.Outstation] != c.Reason {
			t.Errorf("removed %s reason %q", c.Outstation, c.Reason)
		}
	}

	wantAdded := map[OutstationID]ChangeReason{
		"O50": ReasonNewSubstation, "O53": ReasonNewSubstation,
		"O52": ReasonUpgraded101, "O55": ReasonUpgraded101,
		"O51": ReasonBackupRTU, "O56": ReasonBackupRTU, "O57": ReasonBackupRTU, "O58": ReasonBackupRTU,
		"O54": ReasonMaintenance,
	}
	if len(d.Added) != len(wantAdded) {
		t.Fatalf("added = %d, want %d", len(d.Added), len(wantAdded))
	}
	for _, c := range d.Added {
		if wantAdded[c.Outstation] != c.Reason {
			t.Errorf("added %s reason %q", c.Outstation, c.Reason)
		}
	}
}

func TestStabilityRatios(t *testing.T) {
	n := Build()
	d := ComputeDiff(n)
	// The paper: 14 of 58 outstations (25%) and 7 of 27 substations
	// (26%) remained stable.
	if got := len(d.StableOutstations); got != 14 {
		t.Fatalf("stable outstations = %d, want 14", got)
	}
	if got := len(d.StableSubstations); got != 7 {
		t.Fatalf("stable substations = %d, want 7: %v", got, d.StableSubstations)
	}
	if r := d.OutstationStability(); r < 0.24 || r > 0.26 {
		t.Errorf("outstation stability = %v", r)
	}
	if r := d.SubstationStability(); r < 0.25 || r > 0.27 {
		t.Errorf("substation stability = %v", r)
	}
}

func TestLegacyProfiles(t *testing.T) {
	n := Build()
	cases := map[OutstationID]iec104.Profile{
		"O37": iec104.LegacyIOA,
		"O28": iec104.LegacyCOT,
		"O53": iec104.LegacyCOT,
		"O58": iec104.LegacyCOT,
		"O1":  iec104.Standard,
	}
	for id, want := range cases {
		o, ok := n.Outstation(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		if o.Profile != want {
			t.Errorf("%s profile = %v, want %v", id, o.Profile, want)
		}
	}
}

func TestNamedPathologies(t *testing.T) {
	n := Build()
	o30, _ := n.Outstation("O30")
	if o30.Behavior.KeepAliveInterval != 430*time.Second {
		t.Errorf("O30 keep-alive = %v", o30.Behavior.KeepAliveInterval)
	}
	if o30.Behavior.RejectBackupFrom != "C2" {
		t.Errorf("O30 rejects %q, want C2", o30.Behavior.RejectBackupFrom)
	}
	o22, _ := n.Outstation("O22")
	if !o22.Behavior.TestingOnly {
		t.Error("O22 not marked testing-only")
	}
	if o22.Servers != [2]ServerID{"C3", "C4"} {
		t.Errorf("O22 servers = %v", o22.Servers)
	}
	o40, _ := n.Outstation("O40")
	if !o40.Behavior.SpontaneousOnly || o40.ConnType != Type5 {
		t.Errorf("O40 = %+v", o40)
	}
	for _, id := range []OutstationID{"O5", "O6", "O7", "O8", "O9", "O15", "O35"} {
		o, _ := n.Outstation(id)
		if o.Behavior.RejectBackupFrom != "C1" {
			t.Errorf("%s rejects %q, want C1", id, o.Behavior.RejectBackupFrom)
		}
	}
	for _, id := range []OutstationID{"O24", "O28"} {
		o, _ := n.Outstation(id)
		if o.Behavior.RejectBackupFrom != "C2" {
			t.Errorf("%s rejects %q, want C2", id, o.Behavior.RejectBackupFrom)
		}
	}
}

func TestConnTypeDistribution(t *testing.T) {
	n := Build()
	counts := map[ConnType]int{}
	for _, o := range n.Outstations() {
		counts[o.ConnType]++
	}
	if counts[TypeUnknown] != 0 {
		t.Fatalf("%d outstations without a type", counts[TypeUnknown])
	}
	// Type 3 is the most common (~34% per Fig. 17).
	if counts[Type3] != 20 {
		t.Errorf("Type3 = %d, want 20", counts[Type3])
	}
	for ct, want := range map[ConnType]int{Type1: 5, Type2: 6, Type4: 12, Type5: 1, Type6: 3, Type7: 7, Type8: 4} {
		if counts[ct] != want {
			t.Errorf("%v = %d, want %d", ct, counts[ct], want)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 58 {
		t.Fatalf("total typed = %d", total)
	}
}

func TestServerPairsHonourNamedConnections(t *testing.T) {
	n := Build()
	// O20 switches between C3 and C4; O29 between C1 and C2.
	o20, _ := n.Outstation("O20")
	if o20.Servers != [2]ServerID{"C3", "C4"} {
		t.Errorf("O20 servers %v", o20.Servers)
	}
	o29, _ := n.Outstation("O29")
	if o29.Servers != [2]ServerID{"C1", "C2"} {
		t.Errorf("O29 servers %v", o29.Servers)
	}
}

func TestPointsRespectIOACounts(t *testing.T) {
	n := Build()
	for _, y := range []Year{Y1, Y2} {
		for _, o := range n.OutstationsIn(y) {
			pts := n.Points(o.ID, y)
			if len(pts) != o.IOACount(y) {
				t.Errorf("%s %v: %d points, want %d", o.ID, y, len(pts), o.IOACount(y))
			}
			seen := map[uint32]bool{}
			for _, p := range pts {
				if seen[p.IOA] {
					t.Errorf("%s %v: duplicate IOA %d", o.ID, y, p.IOA)
				}
				seen[p.IOA] = true
			}
		}
	}
	// Absent outstations expose no points.
	if pts := n.Points("O2", Y2); pts != nil {
		t.Errorf("O2 Y2 points = %d", len(pts))
	}
	if pts := n.Points("O99", Y1); pts != nil {
		t.Error("unknown outstation returned points")
	}
}

func TestAGCStationCount(t *testing.T) {
	n := Build()
	cnt := 0
	for _, o := range n.Outstations() {
		if o.ReceivesAGC {
			cnt++
			if !o.HasGenerator {
				t.Errorf("%s receives AGC without a generator", o.ID)
			}
		}
	}
	if cnt != 4 {
		t.Fatalf("AGC stations = %d, want 4 (Table 8)", cnt)
	}
}

func TestIOADeltaDirections(t *testing.T) {
	d := ComputeDiff(Build())
	ups, downs, sames := 0, 0, 0
	for _, dl := range d.Deltas {
		switch dl.Direction() {
		case "up":
			ups++
		case "down":
			downs++
		default:
			sames++
		}
	}
	if sames != 14 {
		t.Fatalf("same = %d, want 14", sames)
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("expected both up (%d) and down (%d) arrows", ups, downs)
	}
	if ups+downs+sames != 42 {
		t.Fatalf("deltas = %d, want 42", ups+downs+sames)
	}
}

func TestNumAndSort(t *testing.T) {
	ids := []OutstationID{"O10", "O2", "O1"}
	SortOutstationIDs(ids)
	if ids[0] != "O1" || ids[1] != "O2" || ids[2] != "O10" {
		t.Fatalf("sorted %v", ids)
	}
	if Num("O58") != 58 {
		t.Fatal("Num broken")
	}
}
