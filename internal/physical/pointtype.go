package physical

import (
	"fmt"

	"uncharted/internal/iec104"
	"uncharted/internal/protocol"
)

// PointType identifies the value type of a series across dialects: the
// high byte is the protocol.ID, the low byte the dialect-local code
// (an IEC 104 TypeID, a C37.118 channel kind, a Modbus function code).
// IEC 104 is protocol zero, so an IEC 104 PointType is numerically
// identical to its raw TypeID — which keeps serialized digests and
// point ranges byte-identical for IEC 104-only captures.
type PointType uint16

// TypeOf composes a PointType from a dialect and its local code.
func TypeOf(proto protocol.ID, code uint8) PointType {
	return PointType(proto)<<8 | PointType(code)
}

// IEC104Type converts an IEC 104 TypeID to its PointType (numerically
// the identity).
func IEC104Type(t iec104.TypeID) PointType { return PointType(t) }

// Proto returns the dialect the type belongs to.
func (t PointType) Proto() protocol.ID { return protocol.ID(t >> 8) }

// Code returns the dialect-local type code.
func (t PointType) Code() uint8 { return uint8(t) }

// Acronym renders the short human label used in rankings and reports:
// the standard acronym for IEC 104 types, channel names for C37.118,
// table names for Modbus.
func (t PointType) Acronym() string {
	code := t.Code()
	switch t.Proto() {
	case protocol.IEC104:
		return iec104.TypeID(code).Acronym()
	case protocol.C37118:
		switch code {
		case protocol.C37PointFreq:
			return "FREQ"
		case protocol.C37PointROCOF:
			return "ROCOF"
		case protocol.C37PointPhasor:
			return "PHASOR"
		}
		return fmt.Sprintf("C37_%d", code)
	case protocol.Modbus:
		switch code {
		case 1:
			return "COIL"
		case 2:
			return "DISCRETE"
		case 3:
			return "HOLDING"
		case 4:
			return "INPUT"
		case 5, 15:
			return "W_COIL"
		case 6, 16:
			return "W_REG"
		}
		return fmt.Sprintf("FC_%d", code)
	}
	return fmt.Sprintf("PT_%d", uint16(t))
}

func (t PointType) String() string { return t.Acronym() }
