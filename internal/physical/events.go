package physical

import (
	"time"

	"uncharted/internal/stats"
)

// UnmetLoadEvent is the Figs. 18/19 incident: lost electric load causes
// surplus generation and a frequency rise; AGC commands generation
// down, then back up when the load reconnects.
type UnmetLoadEvent struct {
	Start, End time.Time
	// PeakFrequency is the largest excursion above nominal observed.
	PeakFrequency float64
	// AGCReduced / AGCRestored report whether setpoint commands moved
	// down during the excursion and up afterwards.
	AGCReduced  bool
	AGCRestored bool
}

// DetectUnmetLoad scans a frequency series for sustained excursions
// above nominal+threshold and checks the AGC setpoint series for the
// down-then-up response. setpoints may be nil (the event is still
// reported, with the AGC flags false).
func DetectUnmetLoad(freq *Series, setpoints []*Series, nominal, threshold float64) []UnmetLoadEvent {
	if freq == nil || len(freq.Samples) == 0 {
		return nil
	}
	var events []UnmetLoadEvent
	var cur *UnmetLoadEvent
	for _, s := range freq.Samples {
		dev := s.V - nominal
		switch {
		case cur == nil && dev > threshold:
			cur = &UnmetLoadEvent{Start: s.T, PeakFrequency: s.V}
		case cur != nil && dev > threshold/2:
			if s.V > cur.PeakFrequency {
				cur.PeakFrequency = s.V
			}
		case cur != nil:
			cur.End = s.T
			annotateAGC(cur, setpoints)
			events = append(events, *cur)
			cur = nil
		}
	}
	if cur != nil {
		cur.End = freq.Samples[len(freq.Samples)-1].T
		annotateAGC(cur, setpoints)
		events = append(events, *cur)
	}
	return events
}

// annotateAGC checks whether setpoints moved down inside the window
// and up within a window after it.
func annotateAGC(ev *UnmetLoadEvent, setpoints []*Series) {
	for _, sp := range setpoints {
		var before, minDuring, after float64
		var haveBefore, haveDuring, haveAfter bool
		for _, s := range sp.Samples {
			switch {
			case s.T.Before(ev.Start):
				before = s.V
				haveBefore = true
			case !s.T.After(ev.End):
				if !haveDuring || s.V < minDuring {
					minDuring = s.V
				}
				haveDuring = true
			default:
				after = s.V
				haveAfter = true
			}
		}
		if haveBefore && haveDuring && minDuring < before-0.5 {
			ev.AGCReduced = true
		}
		if haveDuring && haveAfter && after > minDuring+0.5 {
			ev.AGCRestored = true
		}
	}
}

// AGCResponse quantifies how generator output tracks setpoint commands
// (Fig. 19): the peak cross-correlation between the setpoint staircase
// and the measured output, searched over non-negative lags.
type AGCResponse struct {
	Station     string
	BestLag     int
	Correlation float64
}

// CorrelateAGC resamples both series onto a common 1-sample grid (the
// shorter length wins) and finds the lag 0..maxLag with the highest
// correlation.
func CorrelateAGC(station string, setpoint, output *Series, maxLag int) (AGCResponse, error) {
	resp := AGCResponse{Station: station}
	a := resampleOnto(setpoint, output)
	b := output.Values()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	best := -2.0
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		r, err := stats.CrossCorrelation(a, b, lag)
		if err != nil {
			return resp, err
		}
		if r > best {
			best = r
			resp.BestLag = lag
		}
	}
	resp.Correlation = best
	return resp, nil
}

// resampleOnto samples the step function of s at the timestamps of ref.
func resampleOnto(s, ref *Series) []float64 {
	out := make([]float64, 0, len(ref.Samples))
	for _, r := range ref.Samples {
		v, ok := s.At(r.T)
		if !ok && len(s.Samples) > 0 {
			v = s.Samples[0].V
		}
		out = append(out, v)
	}
	return out
}
