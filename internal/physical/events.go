package physical

import (
	"time"

	"uncharted/internal/stats"
)

// UnmetLoadEvent is the Figs. 18/19 incident: lost electric load causes
// surplus generation and a frequency rise; AGC commands generation
// down, then back up when the load reconnects.
type UnmetLoadEvent struct {
	Start, End time.Time
	// PeakFrequency is the largest excursion above nominal observed.
	PeakFrequency float64
	// AGCReduced / AGCRestored report whether setpoint commands moved
	// down during the excursion and up afterwards.
	AGCReduced  bool
	AGCRestored bool
}

// DetectUnmetLoad scans a frequency series for sustained excursions
// above nominal+threshold and checks the AGC setpoint series for the
// down-then-up response. The detectors take Views, so the same scan
// runs over in-memory series and historian-backed query results.
// setpoints may be nil (the event is still reported, with the AGC
// flags false).
func DetectUnmetLoad(freq View, setpoints []View, nominal, threshold float64) []UnmetLoadEvent {
	if viewEmpty(freq) {
		return nil
	}
	var events []UnmetLoadEvent
	var cur *UnmetLoadEvent
	for i := 0; i < freq.Len(); i++ {
		s := freq.Sample(i)
		dev := s.V - nominal
		switch {
		case cur == nil && dev > threshold:
			cur = &UnmetLoadEvent{Start: s.T, PeakFrequency: s.V}
		case cur != nil && dev > threshold/2:
			if s.V > cur.PeakFrequency {
				cur.PeakFrequency = s.V
			}
		case cur != nil:
			cur.End = s.T
			annotateAGC(cur, setpoints)
			events = append(events, *cur)
			cur = nil
		}
	}
	if cur != nil {
		cur.End = freq.Sample(freq.Len() - 1).T
		annotateAGC(cur, setpoints)
		events = append(events, *cur)
	}
	return events
}

// annotateAGC checks whether setpoints moved down inside the window
// and up within a window after it.
func annotateAGC(ev *UnmetLoadEvent, setpoints []View) {
	for _, sp := range setpoints {
		if viewEmpty(sp) {
			continue
		}
		var before, minDuring, after float64
		var haveBefore, haveDuring, haveAfter bool
		for i := 0; i < sp.Len(); i++ {
			s := sp.Sample(i)
			switch {
			case s.T.Before(ev.Start):
				before = s.V
				haveBefore = true
			case !s.T.After(ev.End):
				if !haveDuring || s.V < minDuring {
					minDuring = s.V
				}
				haveDuring = true
			default:
				after = s.V
				haveAfter = true
			}
		}
		if haveBefore && haveDuring && minDuring < before-0.5 {
			ev.AGCReduced = true
		}
		if haveDuring && haveAfter && after > minDuring+0.5 {
			ev.AGCRestored = true
		}
	}
}

// AGCResponse quantifies how generator output tracks setpoint commands
// (Fig. 19): the peak cross-correlation between the setpoint staircase
// and the measured output, searched over non-negative lags.
type AGCResponse struct {
	Station     string
	BestLag     int
	Correlation float64
}

// CorrelateAGC resamples both series onto a common 1-sample grid (the
// shorter length wins) and finds the lag 0..maxLag with the highest
// correlation.
func CorrelateAGC(station string, setpoint, output View, maxLag int) (AGCResponse, error) {
	resp := AGCResponse{Station: station}
	a := resampleOnto(setpoint, output)
	n := output.Len()
	if len(a) < n {
		n = len(a)
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = output.Sample(i).V
	}
	a = a[:n]
	best := -2.0
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		r, err := stats.CrossCorrelation(a, b, lag)
		if err != nil {
			return resp, err
		}
		if r > best {
			best = r
			resp.BestLag = lag
		}
	}
	resp.Correlation = best
	return resp, nil
}

// resampleOnto samples the step function of s at the timestamps of ref.
func resampleOnto(s, ref View) []float64 {
	out := make([]float64, 0, ref.Len())
	for i := 0; i < ref.Len(); i++ {
		v, ok := viewAt(s, ref.Sample(i).T)
		if !ok && !viewEmpty(s) {
			v = s.Sample(0).V
		}
		out = append(out, v)
	}
	return out
}
