// Package physical implements §6.4 of the paper: extracting physical
// time series (power, voltage, frequency, breaker status, AGC
// setpoints) from I-format APDUs seen at a network tap, scoring them by
// normalized variance to find "interesting" events, and matching the
// event signatures the paper builds — the generator-synchronisation
// state machine of Fig. 21 and the unmet-load incident of Figs. 18/19.
package physical

import (
	"fmt"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/stats"
)

// SeriesKey identifies one monitored point.
type SeriesKey struct {
	Station string // outstation ID or address
	IOA     uint32
}

func (k SeriesKey) String() string { return fmt.Sprintf("%s/%d", k.Station, k.IOA) }

// Sample is one extracted value.
type Sample struct {
	T time.Time
	V float64
}

// Series is the extracted history of one point.
type Series struct {
	Key  SeriesKey
	Type iec104.TypeID
	// Direction is true for control-direction objects (commands).
	Command bool
	Samples []Sample
}

// Values returns the raw values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.V
	}
	return out
}

// NormalizedVariance scores the series the way §6.4 ranks candidates.
func (s *Series) NormalizedVariance() float64 {
	return stats.NormalizedVariance(s.Values())
}

// At returns the value in force at t (last sample not after t).
func (s *Series) At(t time.Time) (float64, bool) {
	if len(s.Samples) == 0 || t.Before(s.Samples[0].T) {
		return 0, false
	}
	idx := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T.After(t) })
	return s.Samples[idx-1].V, true
}

// Store accumulates series from parsed traffic.
type Store struct {
	m     map[SeriesKey]*Series
	order []SeriesKey
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[SeriesKey]*Series)} }

// Feed extracts every value-bearing information object of an ASDU.
// station names the outstation (or its IP); at is the capture
// timestamp, used when the object carries no time tag. command flags
// control-direction frames (setpoints), which are stored as separate
// series so AGC commands and telemetry never mix.
func (st *Store) Feed(station string, a *iec104.ASDU, at time.Time, command bool) {
	for _, obj := range a.Objects {
		var v float64
		switch obj.Value.Kind {
		case iec104.KindFloat, iec104.KindNormalized, iec104.KindScaled,
			iec104.KindSingle, iec104.KindDouble, iec104.KindStep, iec104.KindCounter:
			v = obj.Value.Float
		case iec104.KindCommand:
			v = obj.Value.Float
		default:
			continue
		}
		ts := at
		if obj.Value.HasTime && !obj.Value.Time.Invalid {
			ts = obj.Value.Time.Time
		}
		key := SeriesKey{Station: station, IOA: obj.IOA}
		s, ok := st.m[key]
		if !ok {
			s = &Series{Key: key, Type: a.Type, Command: command}
			st.m[key] = s
			st.order = append(st.order, key)
		}
		// Series.At binary-searches by time, so keep Samples sorted:
		// time-tagged retransmissions (ablation mode) or reordered
		// captures may deliver an older timestamp late.
		if n := len(s.Samples); n > 0 && ts.Before(s.Samples[n-1].T) {
			idx := sort.Search(n, func(i int) bool { return s.Samples[i].T.After(ts) })
			s.Samples = append(s.Samples, Sample{})
			copy(s.Samples[idx+1:], s.Samples[idx:])
			s.Samples[idx] = Sample{T: ts, V: v}
			continue
		}
		s.Samples = append(s.Samples, Sample{T: ts, V: v})
	}
}

// Get returns one series.
func (st *Store) Get(key SeriesKey) (*Series, bool) {
	s, ok := st.m[key]
	return s, ok
}

// All returns every series in first-seen order.
func (st *Store) All() []*Series {
	out := make([]*Series, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.m[k])
	}
	return out
}

// ByStation returns the series of one station.
func (st *Store) ByStation(station string) []*Series {
	var out []*Series
	for _, k := range st.order {
		if k.Station == station {
			out = append(out, st.m[k])
		}
	}
	return out
}

// Ranked returns all series with at least minSamples, ordered by
// decreasing normalized variance — the paper's shortlist of
// "interesting" physical behaviour.
func (st *Store) Ranked(minSamples int) []*Series {
	var out []*Series
	for _, k := range st.order {
		if s := st.m[k]; len(s.Samples) >= minSamples {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].NormalizedVariance() > out[j].NormalizedVariance()
	})
	return out
}

// TypeStations returns, per ASDU type, the number of distinct stations
// transmitting it (Table 8's "Transmitting Station Count").
func (st *Store) TypeStations() map[iec104.TypeID]int {
	byType := map[iec104.TypeID]map[string]bool{}
	for _, k := range st.order {
		s := st.m[k]
		m, ok := byType[s.Type]
		if !ok {
			m = map[string]bool{}
			byType[s.Type] = m
		}
		m[k.Station] = true
	}
	out := make(map[iec104.TypeID]int, len(byType))
	for t, m := range byType {
		out[t] = len(m)
	}
	return out
}
