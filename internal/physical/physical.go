// Package physical implements §6.4 of the paper: extracting physical
// time series (power, voltage, frequency, breaker status, AGC
// setpoints) from I-format APDUs seen at a network tap, scoring them by
// normalized variance to find "interesting" events, and matching the
// event signatures the paper builds — the generator-synchronisation
// state machine of Fig. 21 and the unmet-load incident of Figs. 18/19.
package physical

import (
	"fmt"
	"sort"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/protocol"
	"uncharted/internal/stats"
)

// SeriesKey identifies one monitored point.
type SeriesKey struct {
	Station string // outstation ID or address
	IOA     uint32
}

func (k SeriesKey) String() string { return fmt.Sprintf("%s/%d", k.Station, k.IOA) }

// Sample is one extracted value.
type Sample struct {
	T time.Time
	V float64
}

// View is a read-only, time-ordered sample sequence. The in-memory
// *Series satisfies it, and so do historian-backed query results, so
// the event-signature detectors run identically over live state and
// replayed on-disk history.
type View interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th sample in time order.
	Sample(i int) Sample
}

// Views adapts a slice of series to a slice of Views (Go does not
// convert slice element types implicitly).
func Views(series ...*Series) []View {
	out := make([]View, len(series))
	for i, s := range series {
		out[i] = s
	}
	return out
}

// viewEmpty reports whether v holds no samples; it tolerates both nil
// interfaces and typed-nil *Series values.
func viewEmpty(v View) bool { return v == nil || v.Len() == 0 }

// viewAt returns the value in force at t (last sample not after t),
// the View counterpart of Series.At.
func viewAt(v View, t time.Time) (float64, bool) {
	if viewEmpty(v) || t.Before(v.Sample(0).T) {
		return 0, false
	}
	idx := sort.Search(v.Len(), func(i int) bool { return v.Sample(i).T.After(t) })
	return v.Sample(idx - 1).V, true
}

// Series is the extracted history of one point.
type Series struct {
	Key  SeriesKey
	Type PointType
	// Direction is true for control-direction objects (commands).
	Command bool
	Samples []Sample

	// evicted summarises samples dropped under a store-level cap
	// (SetMaxSamplesPerSeries), so moment statistics stay exact over
	// the full history even when only a bounded window is retained.
	evicted  Digest
	nEvicted int
}

// Len implements View. It is nil-receiver-safe so a typed-nil *Series
// passed through the View interface behaves like an empty series.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Samples)
}

// Sample implements View.
func (s *Series) Sample(i int) Sample { return s.Samples[i] }

// Evicted returns how many samples were dropped under the store's
// per-series cap (zero when uncapped).
func (s *Series) Evicted() int { return s.nEvicted }

// Values returns the raw retained values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.V
	}
	return out
}

// NormalizedVariance scores the series the way §6.4 ranks candidates.
// Under a sample cap it is computed from the full-history digest, so
// eviction never changes a series' ranking.
func (s *Series) NormalizedVariance() float64 {
	if s.nEvicted > 0 {
		return s.Digest().NormalizedVariance()
	}
	return stats.NormalizedVariance(s.Values())
}

// At returns the value in force at t (last sample not after t).
func (s *Series) At(t time.Time) (float64, bool) {
	if len(s.Samples) == 0 || t.Before(s.Samples[0].T) {
		return 0, false
	}
	idx := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T.After(t) })
	return s.Samples[idx-1].V, true
}

// Store accumulates series from parsed traffic.
type Store struct {
	m     map[SeriesKey]*Series
	order []SeriesKey
	// maxSamples, when non-zero, bounds retained samples per series:
	// the oldest are folded into the series' digest and dropped.
	maxSamples int
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[SeriesKey]*Series)} }

// SetMaxSamplesPerSeries bounds the retained in-memory samples per
// series (minimum 2). Evicted samples keep contributing to each
// series' digest — count, min/max, mean and variance stay exact over
// the full history — but raw values older than the window are gone, so
// time-domain scans (event signatures, At) only see the window. Long
// -follow runs pair this with the historian, which retains the full
// history on disk. n <= 0 restores unbounded growth.
func (st *Store) SetMaxSamplesPerSeries(n int) {
	if n > 0 && n < 2 {
		n = 2
	}
	st.maxSamples = n
}

// EachValue calls fn for every value-bearing information object of an
// ASDU, resolving each object's timestamp (its CP56 time tag when
// present and valid, otherwise the capture timestamp at). Store.Feed
// and the historian write path share this extraction, so the in-memory
// series and the durable history see identical samples.
func EachValue(a *iec104.ASDU, at time.Time, fn func(ioa uint32, t time.Time, v float64)) {
	for _, obj := range a.Objects {
		var v float64
		switch obj.Value.Kind {
		case iec104.KindFloat, iec104.KindNormalized, iec104.KindScaled,
			iec104.KindSingle, iec104.KindDouble, iec104.KindStep, iec104.KindCounter,
			iec104.KindCommand:
			v = obj.Value.Float
		default:
			continue
		}
		ts := at
		if obj.Value.HasTime && !obj.Value.Time.Invalid {
			ts = obj.Value.Time.Time
		}
		fn(obj.IOA, ts, v)
	}
}

// Feed extracts every value-bearing information object of an ASDU.
// station names the outstation (or its IP); at is the capture
// timestamp, used when the object carries no time tag. command flags
// control-direction frames (setpoints), which are stored as separate
// series so AGC commands and telemetry never mix.
func (st *Store) Feed(station string, a *iec104.ASDU, at time.Time, command bool) {
	EachValue(a, at, func(ioa uint32, ts time.Time, v float64) {
		key := SeriesKey{Station: station, IOA: ioa}
		s, ok := st.m[key]
		if !ok {
			// Pre-size the sample buffer: telemetry series accumulate
			// hundreds of points, and starting append's doubling at 64
			// skips the six smallest growth steps — which otherwise
			// repeat per series per analysis shard.
			s = &Series{Key: key, Type: IEC104Type(a.Type), Command: command,
				Samples: make([]Sample, 0, 64)}
			st.m[key] = s
			st.order = append(st.order, key)
		}
		// Series.At binary-searches by time, so keep Samples sorted:
		// time-tagged retransmissions (ablation mode) or reordered
		// captures may deliver an older timestamp late.
		if n := len(s.Samples); n > 0 && ts.Before(s.Samples[n-1].T) {
			idx := sort.Search(n, func(i int) bool { return s.Samples[i].T.After(ts) })
			s.Samples = append(s.Samples, Sample{})
			copy(s.Samples[idx+1:], s.Samples[idx:])
			s.Samples[idx] = Sample{T: ts, V: v}
		} else {
			s.Samples = append(s.Samples, Sample{T: ts, V: v})
		}
		if st.maxSamples > 0 && len(s.Samples) > st.maxSamples {
			s.evictOldest(len(s.Samples) - st.maxSamples/2)
		}
	})
}

// evictOldest folds the first n samples into the series' digest and
// drops them, sliding the retained window forward. Evicting down to
// half the cap (rather than one sample at a time) keeps the amortized
// cost O(1) per fed sample.
func (s *Series) evictOldest(n int) {
	if n <= 0 {
		return
	}
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	for _, smp := range s.Samples[:n] {
		s.evicted.observe(smp.T, smp.V)
	}
	s.nEvicted += n
	kept := copy(s.Samples, s.Samples[n:])
	s.Samples = s.Samples[:kept]
}

// Get returns one series.
func (st *Store) Get(key SeriesKey) (*Series, bool) {
	s, ok := st.m[key]
	return s, ok
}

// All returns every series in first-seen order.
func (st *Store) All() []*Series {
	out := make([]*Series, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.m[k])
	}
	return out
}

// ByStation returns the series of one station.
func (st *Store) ByStation(station string) []*Series {
	var out []*Series
	for _, k := range st.order {
		if k.Station == station {
			out = append(out, st.m[k])
		}
	}
	return out
}

// Ranked returns all series with at least minSamples (counting evicted
// ones), ordered by decreasing normalized variance — the paper's
// shortlist of "interesting" physical behaviour.
func (st *Store) Ranked(minSamples int) []*Series {
	var out []*Series
	for _, k := range st.order {
		if s := st.m[k]; len(s.Samples)+s.nEvicted >= minSamples {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].NormalizedVariance() > out[j].NormalizedVariance()
	})
	return out
}

// TypeStations returns, per point type, the number of distinct
// stations transmitting it (Table 8's "Transmitting Station Count").
func (st *Store) TypeStations() map[PointType]int {
	byType := map[PointType]map[string]bool{}
	for _, k := range st.order {
		s := st.m[k]
		m, ok := byType[s.Type]
		if !ok {
			m = map[string]bool{}
			byType[s.Type] = m
		}
		m[k.Station] = true
	}
	out := make(map[PointType]int, len(byType))
	for t, m := range byType {
		out[t] = len(m)
	}
	return out
}

// FeedPoints stores dialect-extracted measurements — the
// multi-protocol analogue of Feed. station names the measurement
// owner; at is the capture timestamp, used when a point carries no
// embedded time. Each point's series is typed TypeOf(proto, Code), so
// dialects never collide in the type namespace even when register and
// IOA numbers overlap.
func (st *Store) FeedPoints(station string, proto protocol.ID, pts []protocol.Point, at time.Time) {
	for _, p := range pts {
		key := SeriesKey{Station: station, IOA: p.IOA}
		s, ok := st.m[key]
		if !ok {
			s = &Series{Key: key, Type: TypeOf(proto, p.Code), Command: p.Command}
			st.m[key] = s
			st.order = append(st.order, key)
		}
		ts := p.T
		if ts.IsZero() {
			ts = at
		}
		if n := len(s.Samples); n > 0 && ts.Before(s.Samples[n-1].T) {
			idx := sort.Search(n, func(i int) bool { return s.Samples[i].T.After(ts) })
			s.Samples = append(s.Samples, Sample{})
			copy(s.Samples[idx+1:], s.Samples[idx:])
			s.Samples[idx] = Sample{T: ts, V: p.V}
		} else {
			s.Samples = append(s.Samples, Sample{T: ts, V: p.V})
		}
		if st.maxSamples > 0 && len(s.Samples) > st.maxSamples {
			s.evictOldest(len(s.Samples) - st.maxSamples/2)
		}
	}
}
