package physical

import (
	"math"
	"sort"
	"time"
)

// Digest is a mergeable moment sketch of one series: enough state to
// rank series by normalized variance across analysis shards without
// shipping raw samples. Mean/M2 follow Welford's accumulation, merged
// with the parallel (Chan et al.) update.
type Digest struct {
	Key     SeriesKey `json:"key"`
	Type    PointType `json:"type"`
	Command bool      `json:"command"`
	Count   int       `json:"count"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Mean    float64   `json:"mean"`
	M2      float64   `json:"-"` // sum of squared deviations from Mean
	First   time.Time `json:"first"`
	Last    time.Time `json:"last"`
}

// Variance returns the population variance, matching
// stats.Variance (zero below two samples).
func (d Digest) Variance() float64 {
	if d.Count < 2 {
		return 0
	}
	return d.M2 / float64(d.Count)
}

// NormalizedVariance matches stats.NormalizedVariance: variance over
// squared mean, or the raw variance for near-zero means.
func (d Digest) NormalizedVariance() float64 {
	v := d.Variance()
	if math.Abs(d.Mean) < 1e-9 {
		return v
	}
	return v / (d.Mean * d.Mean)
}

// merge folds another digest of the same series into d.
func (d *Digest) merge(o Digest) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 {
		*d = o
		return
	}
	if o.Min < d.Min {
		d.Min = o.Min
	}
	if o.Max > d.Max {
		d.Max = o.Max
	}
	if o.First.Before(d.First) {
		d.First = o.First
	}
	if o.Last.After(d.Last) {
		d.Last = o.Last
	}
	n1, n2 := float64(d.Count), float64(o.Count)
	delta := o.Mean - d.Mean
	n := n1 + n2
	d.M2 = d.M2 + o.M2 + delta*delta*n1*n2/n
	d.Mean = d.Mean + delta*n2/n
	d.Count += o.Count
}

// observe folds one sample into the digest (Welford's single-sample
// update).
func (d *Digest) observe(t time.Time, v float64) {
	d.Count++
	if d.Count == 1 {
		d.Min, d.Max = v, v
		d.First, d.Last = t, t
	} else {
		if v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
		if t.Before(d.First) {
			d.First = t
		}
		if t.After(d.Last) {
			d.Last = t
		}
	}
	delta := v - d.Mean
	d.Mean += delta / float64(d.Count)
	d.M2 += delta * (v - d.Mean)
}

// Digest summarises one series over its full history: the retained
// window plus any samples evicted under the store's per-series cap.
func (s *Series) Digest() Digest {
	d := s.evicted
	d.Key, d.Type, d.Command = s.Key, s.Type, s.Command
	for _, smp := range s.Samples {
		d.observe(smp.T, smp.V)
	}
	return d
}

// Digests summarises every series in first-seen order.
func (st *Store) Digests() []Digest {
	out := make([]Digest, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.m[k].Digest())
	}
	return out
}

// MergeDigests combines digest lists from several shards: digests of
// the same series are folded together, and the result is sorted by
// series key for deterministic output.
func MergeDigests(lists ...[]Digest) []Digest {
	// One backing array holds every distinct digest; total is an upper
	// bound and the slice never regrows, so the map's pointers into it
	// stay valid. This keeps the merge to O(1) allocations rather than
	// one boxed Digest per series per call.
	total := 0
	for _, list := range lists {
		total += len(list)
	}
	merged := make([]Digest, 0, total)
	byKey := make(map[SeriesKey]*Digest, total)
	for _, list := range lists {
		for _, d := range list {
			if cur, ok := byKey[d.Key]; ok {
				cur.merge(d)
				continue
			}
			merged = append(merged, d)
			byKey[d.Key] = &merged[len(merged)-1]
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Key.Station != merged[j].Key.Station {
			return merged[i].Key.Station < merged[j].Key.Station
		}
		return merged[i].Key.IOA < merged[j].Key.IOA
	})
	return merged
}

// RankDigests orders digests with at least minSamples by decreasing
// normalized variance — the streaming counterpart of Store.Ranked.
func RankDigests(ds []Digest, minSamples int) []Digest {
	var out []Digest
	for _, d := range ds {
		if d.Count >= minSamples {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].NormalizedVariance() > out[j].NormalizedVariance()
	})
	return out
}
