package physical

import (
	"time"
)

// SyncState is one state of the Fig. 21 generator-activation signature
// machine.
type SyncState int

// Signature machine states.
const (
	SyncIdle SyncState = iota
	// SyncVoltageRamp: the measured voltage leaves zero and climbs
	// toward its nominal value while no power flows.
	SyncVoltageRamp
	// SyncBreakerClosed: the breaker status point changed to 2
	// (closed) after the voltage reached nominal.
	SyncBreakerClosed
	// SyncPowerFlow: active power started deviating from zero — the
	// generator is delivering; the activation followed the expected
	// pattern.
	SyncPowerFlow
)

func (s SyncState) String() string {
	switch s {
	case SyncIdle:
		return "idle"
	case SyncVoltageRamp:
		return "voltage-ramp"
	case SyncBreakerClosed:
		return "breaker-closed"
	case SyncPowerFlow:
		return "power-flow"
	}
	return "?"
}

// SyncEvent is one detected generator activation.
type SyncEvent struct {
	Station      string
	RampStart    time.Time
	BreakerClose time.Time
	PowerStart   time.Time
	// NominalVoltage is the plateau the ramp reached.
	NominalVoltage float64
	// Compliant is true when the three phases occurred in the Fig. 21
	// order; the machine rejects power flowing before breaker close.
	Compliant bool
}

// SyncDetectorConfig tunes the signature machine.
type SyncDetectorConfig struct {
	// VoltageZero is the "dead" level below which a bus is considered
	// de-energised.
	VoltageZero float64
	// VoltageNominalFrac: the ramp completes when voltage exceeds
	// this fraction of the eventual plateau.
	VoltageNominalFrac float64
	// PowerThreshold: active power beyond this means the unit is
	// delivering.
	PowerThreshold float64
	// BreakerClosedValue is the double-point value meaning closed.
	BreakerClosedValue float64
}

// DefaultSyncConfig matches the traces in the paper: 0 → ~120-130 kV
// ramps and tens of MW of post-sync output.
func DefaultSyncConfig() SyncDetectorConfig {
	return SyncDetectorConfig{
		VoltageZero:        5,
		VoltageNominalFrac: 0.9,
		PowerThreshold:     2,
		BreakerClosedValue: 2,
	}
}

// DetectSync runs the Fig. 21 machine over aligned voltage, breaker
// and power series of one station. The series are Views, so the same
// machine runs over in-memory series and historian-backed queries. It
// returns every completed activation. Non-compliant activations (power
// before breaker close) are returned with Compliant=false — exactly
// the anomaly a SOC would alert on.
func DetectSync(station string, voltage, breaker, power View, cfg SyncDetectorConfig) []SyncEvent {
	if viewEmpty(voltage) || breaker == nil || power == nil {
		return nil
	}
	// The plateau estimate: the maximum voltage seen.
	var vmax float64
	for i := 0; i < voltage.Len(); i++ {
		if v := voltage.Sample(i).V; v > vmax {
			vmax = v
		}
	}
	if vmax <= cfg.VoltageZero {
		return nil
	}

	var events []SyncEvent
	state := SyncIdle
	var cur SyncEvent
	// The machine arms only after observing the bus de-energised: a
	// capture that starts with the unit already at nominal voltage is
	// not an activation.
	dead := false

	for i := 0; i < voltage.Len(); i++ {
		s := voltage.Sample(i)
		switch state {
		case SyncIdle:
			if s.V <= cfg.VoltageZero {
				dead = true
				continue
			}
			if dead && s.V > cfg.VoltageZero {
				// Leaving zero: the ramp begins.
				cur = SyncEvent{Station: station, RampStart: s.T}
				state = SyncVoltageRamp
			}
		case SyncVoltageRamp:
			if s.V <= cfg.VoltageZero {
				// Ramp aborted.
				state = SyncIdle
				dead = true
				continue
			}
			if s.V >= cfg.VoltageNominalFrac*vmax {
				cur.NominalVoltage = vmax
				// Voltage nominal: wait for the breaker.
				if ct, ok := firstCrossing(breaker, cur.RampStart, func(v float64) bool {
					return v == cfg.BreakerClosedValue
				}); ok {
					cur.BreakerClose = ct
					state = SyncBreakerClosed
				} else {
					// No breaker close observed; stay and re-check on
					// later samples (the breaker report may be late).
					continue
				}
			}
		case SyncBreakerClosed:
			if pt, ok := firstCrossing(power, cur.BreakerClose, func(v float64) bool {
				return v > cfg.PowerThreshold
			}); ok {
				cur.PowerStart = pt
				cur.Compliant = !pt.Before(cur.BreakerClose)
				// Guard: power must not have been flowing before the
				// breaker closed.
				if et, flowing := firstCrossing(power, cur.RampStart, func(v float64) bool {
					return v > cfg.PowerThreshold
				}); flowing && et.Before(cur.BreakerClose) {
					cur.Compliant = false
				}
				events = append(events, cur)
				state = SyncIdle
				dead = false
			}
		}
	}
	return events
}

// firstCrossing returns the first sample at or after t satisfying pred.
func firstCrossing(s View, t time.Time, pred func(float64) bool) (time.Time, bool) {
	if s == nil {
		return time.Time{}, false
	}
	for i := 0; i < s.Len(); i++ {
		smp := s.Sample(i)
		if smp.T.Before(t) {
			continue
		}
		if pred(smp.V) {
			return smp.T, true
		}
	}
	return time.Time{}, false
}
