package physical_test

import (
	"fmt"
	"time"

	"uncharted/internal/iec104"
	"uncharted/internal/physical"
)

// Extract a time series from parsed I-frames and score it: the §6.4
// normalized-variance scan that surfaced the paper's unmet-load event.
func ExampleStore() {
	store := physical.NewStore()
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	for i, mw := range []float64{80, 81, 79, 120, 40, 80} {
		asdu := iec104.NewMeasurement(iec104.MMeNc, 29, 1001,
			iec104.Value{Kind: iec104.KindFloat, Float: mw}, iec104.CauseSpontaneous)
		store.Feed("O29", asdu, base.Add(time.Duration(i)*time.Second), false)
	}
	s, _ := store.Get(physical.SeriesKey{Station: "O29", IOA: 1001})
	fmt.Printf("samples=%d nvar>0.05: %t\n", len(s.Samples), s.NormalizedVariance() > 0.05)
	// Output: samples=6 nvar>0.05: true
}

// Run the Fig. 21 signature machine over a generator activation:
// voltage ramp, breaker close, then power flow.
func ExampleDetectSync() {
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	mk := func(ioa uint32, vals []float64) *physical.Series {
		s := &physical.Series{Key: physical.SeriesKey{Station: "O29", IOA: ioa}}
		for i, v := range vals {
			s.Samples = append(s.Samples, physical.Sample{T: base.Add(time.Duration(i) * 10 * time.Second), V: v})
		}
		return s
	}
	voltage := mk(1, []float64{0, 0, 30, 65, 100, 128, 130, 130, 130, 130})
	breaker := mk(2, []float64{0, 0, 0, 0, 0, 0, 2, 2, 2, 2})
	power := mk(3, []float64{0, 0, 0, 0, 0, 0, 0, 12, 25, 40})

	events := physical.DetectSync("O29", voltage, breaker, power, physical.DefaultSyncConfig())
	for _, ev := range events {
		fmt.Printf("activation compliant=%t nominal=%.0fkV\n", ev.Compliant, ev.NominalVoltage)
	}
	// Output: activation compliant=true nominal=130kV
}
