package physical

import (
	"testing"
	"time"

	"uncharted/internal/iec104"
)

var t0 = time.Date(2026, 7, 5, 8, 0, 0, 0, time.UTC)

func mkSeries(station string, ioa uint32, vals []float64, step time.Duration) *Series {
	s := &Series{Key: SeriesKey{Station: station, IOA: ioa}}
	for i, v := range vals {
		s.Samples = append(s.Samples, Sample{T: t0.Add(time.Duration(i) * step), V: v})
	}
	return s
}

func TestStoreFeedAndExtract(t *testing.T) {
	st := NewStore()
	a := iec104.NewMeasurement(iec104.MMeNc, 1, 1001, iec104.Value{Kind: iec104.KindFloat, Float: 59.98}, iec104.CauseSpontaneous)
	st.Feed("O3", a, t0, false)
	a2 := iec104.NewMeasurement(iec104.MMeNc, 1, 1001, iec104.Value{Kind: iec104.KindFloat, Float: 60.02}, iec104.CauseSpontaneous)
	st.Feed("O3", a2, t0.Add(time.Second), false)

	s, ok := st.Get(SeriesKey{Station: "O3", IOA: 1001})
	if !ok || len(s.Samples) != 2 {
		t.Fatalf("series %+v", s)
	}
	if s.Samples[1].V != 60.02 {
		t.Fatalf("value %v", s.Samples[1].V)
	}
	if len(st.ByStation("O3")) != 1 || len(st.ByStation("O4")) != 0 {
		t.Fatal("ByStation broken")
	}
}

func TestStoreUsesTimeTag(t *testing.T) {
	st := NewStore()
	tagged := t0.Add(-30 * time.Second)
	a := iec104.NewMeasurement(iec104.MMeTf, 1, 9, iec104.Value{
		Kind: iec104.KindFloat, Float: 1, HasTime: true,
		Time: iec104.CP56Time2a{Time: tagged},
	}, iec104.CausePeriodic)
	st.Feed("O1", a, t0, false)
	s, _ := st.Get(SeriesKey{Station: "O1", IOA: 9})
	if !s.Samples[0].T.Equal(tagged) {
		t.Fatalf("timestamp %v, want tag %v", s.Samples[0].T, tagged)
	}
	// An invalid tag falls back to capture time.
	b := iec104.NewMeasurement(iec104.MMeTf, 1, 10, iec104.Value{
		Kind: iec104.KindFloat, Float: 1, HasTime: true,
		Time: iec104.CP56Time2a{Time: tagged, Invalid: true},
	}, iec104.CausePeriodic)
	st.Feed("O1", b, t0, false)
	s2, _ := st.Get(SeriesKey{Station: "O1", IOA: 10})
	if !s2.Samples[0].T.Equal(t0) {
		t.Fatalf("invalid tag not ignored: %v", s2.Samples[0].T)
	}
}

func TestStoreSkipsRawKinds(t *testing.T) {
	st := NewStore()
	a := &iec104.ASDU{Type: iec104.FSgNa, COT: iec104.COT{Cause: iec104.CauseFile}, CommonAddr: 1,
		Objects: []iec104.InfoObject{{IOA: 1, Value: iec104.Value{Kind: iec104.KindRaw}, Raw: []byte{1, 2}}}}
	st.Feed("O1", a, t0, false)
	if len(st.All()) != 0 {
		t.Fatal("raw element produced a series")
	}
}

func TestRankedByNormalizedVariance(t *testing.T) {
	st := NewStore()
	flat := mkSeries("O1", 1, []float64{100, 100.1, 99.9, 100, 100.05}, time.Second)
	wild := mkSeries("O1", 2, []float64{100, 160, 40, 150, 60}, time.Second)
	st.m[flat.Key] = flat
	st.order = append(st.order, flat.Key)
	st.m[wild.Key] = wild
	st.order = append(st.order, wild.Key)

	ranked := st.Ranked(3)
	if len(ranked) != 2 {
		t.Fatalf("%d ranked", len(ranked))
	}
	if ranked[0].Key.IOA != 2 {
		t.Fatalf("wild series not ranked first: %v", ranked[0].Key)
	}
	if got := st.Ranked(10); len(got) != 0 {
		t.Fatal("minSamples filter broken")
	}
}

func TestTypeStations(t *testing.T) {
	st := NewStore()
	mk := func(station string, ioa uint32, typ iec104.TypeID) {
		a := iec104.NewMeasurement(typ, 1, ioa, iec104.Value{Kind: iec104.KindFloat, Float: 1}, iec104.CausePeriodic)
		st.Feed(station, a, t0, false)
	}
	mk("O1", 1, iec104.MMeNc)
	mk("O1", 2, iec104.MMeNc)
	mk("O2", 1, iec104.MMeNc)
	mk("O3", 1, iec104.MMeTf)
	counts := st.TypeStations()
	if counts[IEC104Type(iec104.MMeNc)] != 2 {
		t.Fatalf("I13 stations = %d, want 2", counts[IEC104Type(iec104.MMeNc)])
	}
	if counts[IEC104Type(iec104.MMeTf)] != 1 {
		t.Fatalf("I36 stations = %d", counts[IEC104Type(iec104.MMeTf)])
	}
}

// syncSeries builds the Fig. 20 shape: voltage 0→130, breaker 0→2,
// power 0→60.
func syncSeries(powerBeforeBreaker bool) (v, b, p *Series) {
	var volts, brk, pow []float64
	for i := 0; i < 60; i++ {
		switch {
		case i < 10: // dead bus
			volts = append(volts, 0.3)
			brk = append(brk, 0)
			pow = append(pow, 0)
		case i < 30: // ramp
			volts = append(volts, float64(i-10)*6.5)
			brk = append(brk, 0)
			if powerBeforeBreaker && i > 20 {
				pow = append(pow, 25)
			} else {
				pow = append(pow, 0)
			}
		case i < 35: // nominal, breaker closes at i=32
			volts = append(volts, 130)
			if i >= 32 {
				brk = append(brk, 2)
			} else {
				brk = append(brk, 0)
			}
			pow = append(pow, 0)
		default: // delivering
			volts = append(volts, 129.5)
			brk = append(brk, 2)
			pow = append(pow, float64(i-34)*3)
		}
	}
	return mkSeries("O29", 1, volts, 2*time.Second),
		mkSeries("O29", 2, brk, 2*time.Second),
		mkSeries("O29", 3, pow, 2*time.Second)
}

func TestDetectSyncCompliant(t *testing.T) {
	v, b, p := syncSeries(false)
	events := DetectSync("O29", v, b, p, DefaultSyncConfig())
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	ev := events[0]
	if !ev.Compliant {
		t.Fatal("compliant activation flagged non-compliant")
	}
	if !ev.RampStart.Before(ev.BreakerClose) || !ev.BreakerClose.Before(ev.PowerStart) {
		t.Fatalf("event ordering broken: %+v", ev)
	}
	if ev.NominalVoltage < 120 {
		t.Fatalf("nominal voltage %v", ev.NominalVoltage)
	}
}

func TestDetectSyncNonCompliant(t *testing.T) {
	v, b, p := syncSeries(true)
	events := DetectSync("O29", v, b, p, DefaultSyncConfig())
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].Compliant {
		t.Fatal("power-before-breaker activation reported compliant")
	}
}

func TestDetectSyncNoEventOnSteadyBus(t *testing.T) {
	v := mkSeries("O1", 1, []float64{130, 130, 129.8, 130.1}, time.Second)
	b := mkSeries("O1", 2, []float64{2, 2, 2, 2}, time.Second)
	p := mkSeries("O1", 3, []float64{50, 51, 49, 50}, time.Second)
	if ev := DetectSync("O1", v, b, p, DefaultSyncConfig()); len(ev) != 0 {
		t.Fatalf("steady bus produced %d events", len(ev))
	}
	if ev := DetectSync("O1", nil, b, p, DefaultSyncConfig()); ev != nil {
		t.Fatal("nil series produced events")
	}
}

func TestDetectUnmetLoad(t *testing.T) {
	// Frequency bump 60 → 60.08 → 60.
	var freq []float64
	for i := 0; i < 100; i++ {
		f := 60.0
		if i >= 30 && i < 60 {
			f = 60.08
		}
		freq = append(freq, f)
	}
	fs := mkSeries("grid", 1, freq, time.Second)
	// Setpoints step down during the excursion, up after.
	sp := &Series{Key: SeriesKey{Station: "O29", IOA: 7001}, Command: true}
	sp.Samples = []Sample{
		{T: t0.Add(10 * time.Second), V: 100},
		{T: t0.Add(40 * time.Second), V: 80},
		{T: t0.Add(80 * time.Second), V: 100},
	}
	events := DetectUnmetLoad(fs, Views(sp), 60, 0.04)
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	ev := events[0]
	if ev.PeakFrequency < 60.07 {
		t.Fatalf("peak %v", ev.PeakFrequency)
	}
	if !ev.AGCReduced || !ev.AGCRestored {
		t.Fatalf("AGC flags %+v", ev)
	}
}

func TestDetectUnmetLoadQuietGrid(t *testing.T) {
	fs := mkSeries("grid", 1, []float64{60, 60.004, 59.998, 60.001}, time.Second)
	if ev := DetectUnmetLoad(fs, nil, 60, 0.04); len(ev) != 0 {
		t.Fatalf("quiet grid produced %d events", len(ev))
	}
}

func TestCorrelateAGC(t *testing.T) {
	// Output follows the setpoint with a 3-sample delay.
	sp := mkSeries("O29", 7001, []float64{100, 100, 80, 80, 80, 80, 100, 100, 100, 100, 100, 100}, time.Second)
	out := mkSeries("O29", 1001, []float64{100, 100, 100, 100, 100, 82, 80, 80, 80, 95, 100, 100}, time.Second)
	resp, err := CorrelateAGC("O29", sp, out, 6)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Correlation < 0.6 {
		t.Fatalf("correlation %v", resp.Correlation)
	}
	if resp.BestLag == 0 {
		t.Fatalf("lag %d, want > 0", resp.BestLag)
	}
}

func TestStoreCapBoundsMemory(t *testing.T) {
	const n = 1_000_000
	const cap = 1000
	capped := NewStore()
	capped.SetMaxSamplesPerSeries(cap)
	exact := NewStore()

	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := 60 + 0.05*float64(i%37) - 0.9
		vals = append(vals, v)
		a := iec104.NewMeasurement(iec104.MMeNc, 1, 1001,
			iec104.Value{Kind: iec104.KindFloat, Float: v}, iec104.CausePeriodic)
		at := t0.Add(time.Duration(i) * time.Millisecond)
		capped.Feed("O1", a, at, false)
		if i%101 == 0 { // sparse exact reference to keep the test fast
			exact.Feed("O1", a, at, false)
		}
	}

	s, ok := capped.Get(SeriesKey{Station: "O1", IOA: 1001})
	if !ok {
		t.Fatal("series missing")
	}
	if len(s.Samples) > cap {
		t.Fatalf("retained %d samples, cap %d", len(s.Samples), cap)
	}
	if got := s.Evicted() + len(s.Samples); got != n {
		t.Fatalf("digest coverage %d, want %d", got, n)
	}
	d := s.Digest()
	if d.Count != n {
		t.Fatalf("digest count %d, want %d", d.Count, n)
	}
	// The digest stays exact over the full history despite eviction.
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if diff := d.Mean - mean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("digest mean %v, exact mean %v", d.Mean, mean)
	}
	if d.First != t0 || d.Last != t0.Add((n-1)*time.Millisecond) {
		t.Fatalf("digest window %v..%v", d.First, d.Last)
	}
	// Ranking still counts evicted samples toward minSamples.
	if ranked := capped.Ranked(n); len(ranked) != 1 {
		t.Fatalf("capped series fell out of the ranking: %d", len(ranked))
	}
}

func TestSeriesAt(t *testing.T) {
	s := mkSeries("O1", 1, []float64{1, 2, 3}, time.Second)
	if _, ok := s.At(t0.Add(-time.Second)); ok {
		t.Fatal("value before first sample")
	}
	if v, ok := s.At(t0.Add(1500 * time.Millisecond)); !ok || v != 2 {
		t.Fatalf("At = %v,%v", v, ok)
	}
	if v, _ := s.At(t0.Add(time.Hour)); v != 3 {
		t.Fatalf("At far future = %v", v)
	}
}
