package c37118

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testConfig() *Config {
	return &Config{
		IDCode: 7,
		Time:   time.Date(2026, 7, 5, 10, 0, 0, 250e6, time.UTC),
		PMUs: []PMUConfig{
			{
				StationName:      "PMU-NORTH",
				IDCode:           71,
				PhasorNames:      []string{"VA", "VB", "IA"},
				NominalFreq:      60,
				ConversionFactor: 0.01,
			},
			{
				StationName:      "PMU-SOUTH",
				IDCode:           72,
				PhasorNames:      []string{"VA"},
				NominalFreq:      60,
				ConversionFactor: 0.01,
			},
		},
		DataRate: 30,
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := testConfig()
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.IDCode != 7 || len(got.PMUs) != 2 || got.DataRate != 30 {
		t.Fatalf("decoded %+v", got)
	}
	if got.PMUs[0].StationName != "PMU-NORTH" || got.PMUs[0].IDCode != 71 {
		t.Fatalf("PMU 0: %+v", got.PMUs[0])
	}
	if len(got.PMUs[0].PhasorNames) != 3 || got.PMUs[0].PhasorNames[2] != "IA" {
		t.Fatalf("phasor names %v", got.PMUs[0].PhasorNames)
	}
	if got.PMUs[0].NominalFreq != 60 {
		t.Fatalf("fnom %d", got.PMUs[0].NominalFreq)
	}
	if math.Abs(got.PMUs[0].ConversionFactor-0.01) > 1e-9 {
		t.Fatalf("factor %v", got.PMUs[0].ConversionFactor)
	}
	if !got.Time.Equal(cfg.Time.Truncate(time.Microsecond)) {
		t.Fatalf("time %v", got.Time)
	}
}

func TestDataRoundTrip(t *testing.T) {
	cfg := testConfig()
	d := &Data{
		IDCode: 7,
		Time:   time.Date(2026, 7, 5, 10, 0, 1, 0, time.UTC),
		PMUs: []PMUData{
			{
				Stat: 0,
				Phasors: []Phasor{
					{Name: "VA", Magnitude: 132.8, AngleRad: 0.1},
					{Name: "VB", Magnitude: 132.1, AngleRad: -2.0},
					{Name: "IA", Magnitude: 45.0, AngleRad: 0.4},
				},
				Freq:  60.012,
				ROCOF: -0.02,
			},
			{
				Stat:    0,
				Phasors: []Phasor{{Name: "VA", Magnitude: 131.0, AngleRad: 1.2}},
				Freq:    59.995,
				ROCOF:   0.01,
			},
		},
	}
	raw, err := d.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseData(raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PMUs) != 2 {
		t.Fatalf("%d PMUs", len(got.PMUs))
	}
	p0 := got.PMUs[0]
	if math.Abs(p0.Phasors[0].Magnitude-132.8) > 0.2 {
		t.Fatalf("magnitude %v", p0.Phasors[0].Magnitude)
	}
	if math.Abs(p0.Phasors[1].AngleRad+2.0) > 0.01 {
		t.Fatalf("angle %v", p0.Phasors[1].AngleRad)
	}
	if math.Abs(p0.Freq-60.012) > 0.0005 {
		t.Fatalf("freq %v", p0.Freq)
	}
	if math.Abs(p0.ROCOF+0.02) > 0.005 {
		t.Fatalf("rocof %v", p0.ROCOF)
	}
}

func TestCRCDetection(t *testing.T) {
	cfg := testConfig()
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF
	if _, err := ParseConfig(raw); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestPeekFrame(t *testing.T) {
	cfg := testConfig()
	raw, _ := cfg.Marshal()
	info, err := PeekFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.Type != FrameConfig2 || info.FrameSize != len(raw) || info.IDCode != 7 {
		t.Fatalf("info %+v (len %d)", info, len(raw))
	}
	if _, err := PeekFrame(raw[:5]); err == nil {
		t.Fatal("short peek accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 0x68
	if _, err := PeekFrame(bad); err == nil {
		t.Fatal("bad sync accepted")
	}
}

func TestMismatchedShapesRejected(t *testing.T) {
	cfg := testConfig()
	d := &Data{IDCode: 7, Time: time.Now(), PMUs: []PMUData{{}}}
	if _, err := d.Marshal(cfg); err == nil {
		t.Fatal("PMU count mismatch accepted")
	}
	d = &Data{IDCode: 7, Time: time.Now(), PMUs: []PMUData{
		{Phasors: []Phasor{{}}}, {Phasors: []Phasor{{}}},
	}}
	if _, err := d.Marshal(cfg); err == nil {
		t.Fatal("phasor count mismatch accepted")
	}
	if _, err := (&Config{IDCode: 1}).Marshal(); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDataQuick(t *testing.T) {
	cfg := &Config{
		IDCode: 1, Time: time.Unix(1700000000, 0).UTC(),
		PMUs: []PMUConfig{{
			StationName: "P", IDCode: 2, PhasorNames: []string{"VA"},
			NominalFreq: 60, ConversionFactor: 0.01,
		}},
		DataRate: 30,
	}
	check := func(magRaw uint16, angleRaw uint8, freqDev int16) bool {
		mag := float64(magRaw%30000) * 0.01
		angle := (float64(angleRaw)/255 - 0.5) * math.Pi
		freq := 60 + float64(freqDev%500)/1000
		d := &Data{IDCode: 1, Time: time.Unix(1700000001, 0).UTC(), PMUs: []PMUData{{
			Phasors: []Phasor{{Name: "VA", Magnitude: mag, AngleRad: angle}},
			Freq:    freq,
		}}}
		raw, err := d.Marshal(cfg)
		if err != nil {
			return false
		}
		got, err := ParseData(raw, cfg)
		if err != nil {
			return false
		}
		ph := got.PMUs[0].Phasors[0]
		if math.Abs(ph.Magnitude-mag) > 0.02+mag*0.001 {
			return false
		}
		if mag > 1 && math.Abs(ph.AngleRad-angle) > 0.01 {
			return false
		}
		return math.Abs(got.PMUs[0].Freq-freq) < 0.0015
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCRCCCITTKnownValue(t *testing.T) {
	// Standard CRC-CCITT (FFFF) test vector: "123456789" -> 0x29B1.
	if got := crcCCITT([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc = %#04x, want 0x29B1", got)
	}
}
