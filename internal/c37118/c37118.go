// Package c37118 implements the parts of IEEE C37.118.2 (synchrophasor
// data transfer) that appear in the paper's capture: the tap between
// the substations and the SCADA servers also carried phasor
// measurement units reporting to the control centre ("our capture
// included other industrial protocols over TCP/IP such as ICCP and
// C37.118" — §5). The paper leaves their analysis to future work; this
// package exists so the synthesized captures contain realistic
// non-IEC-104 industrial traffic that the measurement pipeline must
// recognise and skip, and so a future analysis has a real codec to
// build on.
//
// Implemented: configuration-2 and data frames with 16-bit integer
// phasors, frequency/ROCOF words and the CRC-CCITT trailer. Command
// and header frames are framed but carry opaque bodies.
package c37118

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// SyncByte opens every C37.118 frame.
const SyncByte = 0xAA

// FrameType distinguishes the five frame types.
type FrameType uint8

// Frame types (SYNC bits 6-4).
const (
	FrameData    FrameType = 0
	FrameHeader  FrameType = 1
	FrameConfig1 FrameType = 2
	FrameConfig2 FrameType = 3
	FrameCommand FrameType = 4
)

func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameHeader:
		return "header"
	case FrameConfig1:
		return "cfg-1"
	case FrameConfig2:
		return "cfg-2"
	case FrameCommand:
		return "command"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Errors.
var (
	ErrShortFrame = errors.New("c37118: truncated frame")
	ErrBadSync    = errors.New("c37118: bad sync byte")
	ErrBadCRC     = errors.New("c37118: CRC mismatch")
	ErrBadSize    = errors.New("c37118: frame size field out of range")
)

// Phasor is one phasor channel value.
type Phasor struct {
	Name      string
	Magnitude float64 // engineering units after scaling
	AngleRad  float64
}

// PMUConfig describes one PMU inside a configuration frame.
type PMUConfig struct {
	StationName string // up to 16 bytes
	IDCode      uint16
	// PhasorNames names the phasor channels.
	PhasorNames []string
	// NominalFreq is 50 or 60.
	NominalFreq uint16
	// ConversionFactor scales the 16-bit integer magnitude to
	// engineering units (volts/amps * 1e-5 per the standard; kept as
	// a plain multiplier here).
	ConversionFactor float64
}

// Config is a configuration-2 frame.
type Config struct {
	IDCode   uint16
	Time     time.Time
	TimeBase uint32
	PMUs     []PMUConfig
	DataRate int16 // frames per second (negative: seconds per frame)
}

// PMUData is one PMU's payload inside a data frame.
type PMUData struct {
	Stat    uint16
	Phasors []Phasor
	Freq    float64 // Hz
	ROCOF   float64 // Hz/s
}

// Data is a data frame.
type Data struct {
	IDCode uint16
	Time   time.Time
	PMUs   []PMUData
}

// crcCCITT computes the CRC-CCITT (0xFFFF seed, polynomial 0x1021)
// used by the standard's CHK field.
func crcCCITT(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// header renders SYNC..FRACSEC (14 bytes) into dst.
func putHeader(dst []byte, t FrameType, frameSize int, idCode uint16, at time.Time) {
	dst[0] = SyncByte
	dst[1] = byte(t)<<4 | 0x01 // version 1
	binary.BigEndian.PutUint16(dst[2:4], uint16(frameSize))
	binary.BigEndian.PutUint16(dst[4:6], idCode)
	binary.BigEndian.PutUint32(dst[6:10], uint32(at.Unix()))
	// FRACSEC: fraction of second over a 1e6 time base, no quality
	// flags.
	frac := uint32(at.Nanosecond() / 1000)
	binary.BigEndian.PutUint32(dst[10:14], frac&0x00FFFFFF)
}

// FrameInfo is the decoded common header of any frame.
type FrameInfo struct {
	Type      FrameType
	FrameSize int
	IDCode    uint16
	Time      time.Time
}

// PeekFrame decodes the common header without validating the CRC; it
// reports how many bytes the whole frame occupies, for stream framing.
func PeekFrame(b []byte) (FrameInfo, error) {
	if len(b) < 14 {
		return FrameInfo{}, ErrShortFrame
	}
	if b[0] != SyncByte {
		return FrameInfo{}, ErrBadSync
	}
	size := int(binary.BigEndian.Uint16(b[2:4]))
	if size < 16 {
		return FrameInfo{}, ErrBadSize
	}
	sec := int64(binary.BigEndian.Uint32(b[6:10]))
	frac := binary.BigEndian.Uint32(b[10:14]) & 0x00FFFFFF
	return FrameInfo{
		Type:      FrameType(b[1] >> 4 & 0x07),
		FrameSize: size,
		IDCode:    binary.BigEndian.Uint16(b[4:6]),
		Time:      time.Unix(sec, int64(frac)*1000).UTC(),
	}, nil
}

// checkFrame validates length and CRC, returning the body (after the
// 14-byte header, before the 2-byte CHK).
func checkFrame(b []byte) (FrameInfo, []byte, error) {
	info, err := PeekFrame(b)
	if err != nil {
		return info, nil, err
	}
	if len(b) < info.FrameSize {
		return info, nil, ErrShortFrame
	}
	frame := b[:info.FrameSize]
	want := binary.BigEndian.Uint16(frame[info.FrameSize-2:])
	if got := crcCCITT(frame[:info.FrameSize-2]); got != want {
		return info, nil, fmt.Errorf("%w: got %#04x want %#04x", ErrBadCRC, got, want)
	}
	return info, frame[14 : info.FrameSize-2], nil
}

// MarshalConfig renders a configuration-2 frame.
func (c *Config) Marshal() ([]byte, error) {
	if len(c.PMUs) == 0 {
		return nil, errors.New("c37118: config frame needs at least one PMU")
	}
	body := make([]byte, 0, 128)
	var u16 [2]byte
	var u32 [4]byte
	app16 := func(v uint16) {
		binary.BigEndian.PutUint16(u16[:], v)
		body = append(body, u16[:]...)
	}
	app32 := func(v uint32) {
		binary.BigEndian.PutUint32(u32[:], v)
		body = append(body, u32[:]...)
	}
	tb := c.TimeBase
	if tb == 0 {
		tb = 1_000_000
	}
	app32(tb)
	app16(uint16(len(c.PMUs)))
	for _, p := range c.PMUs {
		body = append(body, padName(p.StationName, 16)...)
		app16(p.IDCode)
		app16(0) // FORMAT: 16-bit integer phasors, polar? bit0=0 rectangular; use 0
		app16(uint16(len(p.PhasorNames)))
		app16(0) // analogs
		app16(0) // digital words
		for _, n := range p.PhasorNames {
			body = append(body, padName(n, 16)...)
		}
		// PHUNIT conversion factors: flag byte + 24-bit factor.
		for range p.PhasorNames {
			factor := uint32(p.ConversionFactor * 1e5)
			if factor == 0 {
				factor = 1
			}
			app32(factor & 0x00FFFFFF)
		}
		fnom := uint16(0)
		if p.NominalFreq == 50 {
			fnom = 1
		}
		app16(fnom)
		app16(1) // CFGCNT
	}
	app16(uint16(c.DataRate))

	size := 14 + len(body) + 2
	out := make([]byte, size)
	putHeader(out, FrameConfig2, size, c.IDCode, c.Time)
	copy(out[14:], body)
	binary.BigEndian.PutUint16(out[size-2:], crcCCITT(out[:size-2]))
	return out, nil
}

// ParseConfig decodes a configuration-2 frame.
func ParseConfig(b []byte) (*Config, error) {
	info, body, err := checkFrame(b)
	if err != nil {
		return nil, err
	}
	if info.Type != FrameConfig2 && info.Type != FrameConfig1 {
		return nil, fmt.Errorf("c37118: frame type %v is not a configuration", info.Type)
	}
	c := &Config{IDCode: info.IDCode, Time: info.Time}
	if len(body) < 6 {
		return nil, ErrShortFrame
	}
	c.TimeBase = binary.BigEndian.Uint32(body[0:4])
	numPMU := int(binary.BigEndian.Uint16(body[4:6]))
	off := 6
	for i := 0; i < numPMU; i++ {
		if len(body) < off+26 {
			return nil, ErrShortFrame
		}
		var p PMUConfig
		p.StationName = trimName(body[off : off+16])
		p.IDCode = binary.BigEndian.Uint16(body[off+16 : off+18])
		// FORMAT skipped (we emit integer rectangular only).
		phnmr := int(binary.BigEndian.Uint16(body[off+20 : off+22]))
		annmr := int(binary.BigEndian.Uint16(body[off+22 : off+24]))
		dgnmr := int(binary.BigEndian.Uint16(body[off+24 : off+26]))
		off += 26
		need := phnmr*16 + annmr*16 + dgnmr*16*16
		if len(body) < off+need {
			return nil, ErrShortFrame
		}
		for j := 0; j < phnmr; j++ {
			p.PhasorNames = append(p.PhasorNames, trimName(body[off:off+16]))
			off += 16
		}
		off += annmr*16 + dgnmr*16*16
		// Unit words.
		unitWords := phnmr + annmr + dgnmr
		if len(body) < off+unitWords*4+4 {
			return nil, ErrShortFrame
		}
		if phnmr > 0 {
			factor := binary.BigEndian.Uint32(body[off:off+4]) & 0x00FFFFFF
			p.ConversionFactor = float64(factor) / 1e5
		}
		off += unitWords * 4
		fnom := binary.BigEndian.Uint16(body[off : off+2])
		p.NominalFreq = 60
		if fnom&1 == 1 {
			p.NominalFreq = 50
		}
		off += 4 // FNOM + CFGCNT
		c.PMUs = append(c.PMUs, p)
	}
	if len(body) < off+2 {
		return nil, ErrShortFrame
	}
	c.DataRate = int16(binary.BigEndian.Uint16(body[off : off+2]))
	return c, nil
}

// MarshalData renders a data frame laid out per cfg.
func (d *Data) Marshal(cfg *Config) ([]byte, error) {
	if len(d.PMUs) != len(cfg.PMUs) {
		return nil, fmt.Errorf("c37118: %d PMU payloads for %d configured PMUs", len(d.PMUs), len(cfg.PMUs))
	}
	body := make([]byte, 0, 64)
	var u16 [2]byte
	app16 := func(v uint16) {
		binary.BigEndian.PutUint16(u16[:], v)
		body = append(body, u16[:]...)
	}
	for i, pd := range d.PMUs {
		pc := cfg.PMUs[i]
		if len(pd.Phasors) != len(pc.PhasorNames) {
			return nil, fmt.Errorf("c37118: PMU %d has %d phasors, config says %d",
				i, len(pd.Phasors), len(pc.PhasorNames))
		}
		app16(pd.Stat)
		for _, ph := range pd.Phasors {
			mag := ph.Magnitude / cfgFactor(pc)
			re := mag * math.Cos(ph.AngleRad)
			im := mag * math.Sin(ph.AngleRad)
			app16(uint16(int16(clamp16(re))))
			app16(uint16(int16(clamp16(im))))
		}
		// FREQ: deviation from nominal in mHz; DFREQ: ROCOF in
		// hundredths of Hz/s.
		app16(uint16(int16((pd.Freq - float64(pc.NominalFreq)) * 1000)))
		app16(uint16(int16(pd.ROCOF * 100)))
	}
	size := 14 + len(body) + 2
	out := make([]byte, size)
	putHeader(out, FrameData, size, d.IDCode, d.Time)
	copy(out[14:], body)
	binary.BigEndian.PutUint16(out[size-2:], crcCCITT(out[:size-2]))
	return out, nil
}

// ParseData decodes a data frame using its configuration.
func ParseData(b []byte, cfg *Config) (*Data, error) {
	info, body, err := checkFrame(b)
	if err != nil {
		return nil, err
	}
	if info.Type != FrameData {
		return nil, fmt.Errorf("c37118: frame type %v is not data", info.Type)
	}
	d := &Data{IDCode: info.IDCode, Time: info.Time}
	off := 0
	for _, pc := range cfg.PMUs {
		need := 2 + len(pc.PhasorNames)*4 + 4
		if len(body) < off+need {
			return nil, ErrShortFrame
		}
		var pd PMUData
		pd.Stat = binary.BigEndian.Uint16(body[off : off+2])
		off += 2
		for _, name := range pc.PhasorNames {
			re := float64(int16(binary.BigEndian.Uint16(body[off : off+2])))
			im := float64(int16(binary.BigEndian.Uint16(body[off+2 : off+4])))
			off += 4
			pd.Phasors = append(pd.Phasors, Phasor{
				Name:      name,
				Magnitude: math.Hypot(re, im) * cfgFactor(pc),
				AngleRad:  math.Atan2(im, re),
			})
		}
		freqDev := float64(int16(binary.BigEndian.Uint16(body[off : off+2])))
		rocof := float64(int16(binary.BigEndian.Uint16(body[off+2 : off+4])))
		off += 4
		pd.Freq = float64(pc.NominalFreq) + freqDev/1000
		pd.ROCOF = rocof / 100
		d.PMUs = append(d.PMUs, pd)
	}
	return d, nil
}

func cfgFactor(pc PMUConfig) float64 {
	if pc.ConversionFactor <= 0 {
		return 1
	}
	return pc.ConversionFactor
}

func clamp16(f float64) float64 {
	if f > 32767 {
		return 32767
	}
	if f < -32768 {
		return -32768
	}
	return f
}

func padName(s string, n int) []byte {
	out := make([]byte, n)
	copy(out, s)
	for i := len(s); i < n; i++ {
		out[i] = ' '
	}
	return out
}

func trimName(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == ' ' || b[end-1] == 0) {
		end--
	}
	return string(b[:end])
}
