package c37118

import (
	"fmt"
	"math"
	"time"

	"uncharted/internal/protocol"
)

// Port is the registered TCP port for C37.118 data transfer.
const Port = 4712

// NextFrame extracts one C37.118 frame from the front of buf,
// resynchronising on the 0xAA sync byte. A sync byte followed by an
// implausible header (reserved frame type or a size below the minimum)
// is treated as a false sync and skipped. skipped reports the garbage
// byte count; ok=false means more bytes are needed.
func NextFrame(buf []byte) (frame, rest []byte, skipped int, ok bool) {
	skipped = 0
	for {
		i := 0
		for i < len(buf) && buf[i] != SyncByte {
			i++
		}
		skipped += i
		buf = buf[i:]
		if len(buf) < 4 {
			return nil, buf, skipped, false
		}
		size := int(buf[2])<<8 | int(buf[3])
		if FrameType(buf[1]>>4&0x07) > FrameCommand || size < 16 {
			// False sync: skip the 0xAA and rescan.
			buf = buf[1:]
			skipped++
			continue
		}
		if len(buf) < size {
			return nil, buf, skipped, false
		}
		return buf[:size], buf[size:], skipped, true
	}
}

// ValidateFrame validates a framed byte slice (length and CRC) and
// returns its header plus the body between the common header and the
// CHK trailer — the exported entry point generic decoders use.
func ValidateFrame(b []byte) (FrameInfo, []byte, error) {
	return checkFrame(b)
}

// RateHz converts the DATA_RATE field to frames per second: positive
// values are fps, negative values are seconds per frame.
func RateHz(r int16) float64 {
	switch {
	case r > 0:
		return float64(r)
	case r < 0:
		return -1.0 / float64(r)
	}
	return 0
}

// dialect implements protocol.Dialect for IEEE C37.118.
type dialect struct{}

func (dialect) ID() protocol.ID { return protocol.C37118 }
func (dialect) Name() string    { return "c37118" }
func (dialect) Port() uint16    { return Port }
func (dialect) NewSession() protocol.Session {
	return &session{streams: make(map[uint16]*streamStat)}
}

// StationInitiates: PMUs dial out and stream to a listening collector,
// the inverse of the IEC 104 / Modbus server model.
func (dialect) StationInitiates() bool { return true }

// Sniff accepts a plausible frame head: sync byte, a defined frame
// type, and a size of at least the empty-frame minimum.
func (dialect) Sniff(b []byte) bool {
	if len(b) < 4 || b[0] != SyncByte {
		return false
	}
	size := int(b[2])<<8 | int(b[3])
	return FrameType(b[1]>>4&0x07) <= FrameCommand && size >= 16
}

// streamStat tracks one synchrophasor stream (one IDCode) inside a
// flow: its latest configuration and the observed data-frame cadence,
// measured on the frames' own GPS timestamps so capture jitter cannot
// fail a healthy stream.
type streamStat struct {
	cfg         *Config
	dataFrames  int
	errors      int
	first, last time.Time
}

// session is the per-flow protocol.Session. Configuration frames are
// tracked per stream IDCode, so data frames decode into measurements
// once their stream's config-2 frame has passed the tap.
type session struct {
	streams map[uint16]*streamStat
	order   []uint16
	pts     []protocol.Point
}

func (s *session) stream(id uint16) *streamStat {
	st, ok := s.streams[id]
	if !ok {
		st = &streamStat{}
		s.streams[id] = st
		s.order = append(s.order, id)
	}
	return st
}

func (s *session) Next(buf []byte, fromStation bool) (protocol.Event, []byte, int, bool) {
	frame, rest, skipped, ok := NextFrame(buf)
	if !ok {
		return protocol.Event{}, rest, skipped, false
	}
	info, _, err := checkFrame(frame)
	if err != nil {
		if info.IDCode != 0 || len(s.streams) > 0 {
			s.stream(info.IDCode).errors++
		}
		return protocol.Event{Err: err}, rest, skipped, true
	}
	// Token kinds mirror FrameType values (pinned by test).
	ev := protocol.Event{Token: protocol.Token{Proto: protocol.C37118, Kind: uint8(info.Type)}}
	switch info.Type {
	case FrameConfig1, FrameConfig2:
		cfg, err := ParseConfig(frame)
		if err != nil {
			s.stream(info.IDCode).errors++
			return protocol.Event{Err: err}, rest, skipped, true
		}
		s.stream(info.IDCode).cfg = cfg
	case FrameData:
		st := s.stream(info.IDCode)
		st.dataFrames++
		if st.first.IsZero() {
			st.first = info.Time
		}
		st.last = info.Time
		if st.cfg == nil {
			break // no measurements until the config frame passes
		}
		d, err := ParseData(frame, st.cfg)
		if err != nil {
			st.errors++
			return protocol.Event{Err: err}, rest, skipped, true
		}
		s.pts = s.pts[:0]
		for pi, pd := range d.PMUs {
			pc := st.cfg.PMUs[pi]
			// Point addresses pack the PMU IDCode with a channel slot:
			// 1 = frequency, 2 = ROCOF, 16+i = phasor i magnitude.
			base := uint32(pc.IDCode) << 8
			s.pts = append(s.pts,
				protocol.Point{IOA: base | 1, Code: protocol.C37PointFreq, T: d.Time, V: pd.Freq},
				protocol.Point{IOA: base | 2, Code: protocol.C37PointROCOF, T: d.Time, V: pd.ROCOF},
			)
			for j, ph := range pd.Phasors {
				s.pts = append(s.pts, protocol.Point{
					IOA: base | uint32(16+j), Code: protocol.C37PointPhasor,
					T: d.Time, V: ph.Magnitude,
				})
			}
		}
		ev.Points = s.pts
	}
	return ev, rest, skipped, true
}

// Compliance reports data-rate conformance per synchrophasor stream:
// the observed data-frame rate must stay within 10% of the rate the
// stream's configuration frame declares.
func (s *session) Compliance() []protocol.StreamCompliance {
	var out []protocol.StreamCompliance
	for _, id := range s.order {
		st := s.streams[id]
		sc := protocol.StreamCompliance{
			Proto:  protocol.C37118,
			Unit:   fmt.Sprintf("pmu-%d", id),
			Frames: st.dataFrames,
			Errors: st.errors,
		}
		if st.cfg != nil {
			sc.ConfiguredRate = RateHz(st.cfg.DataRate)
		}
		if span := st.last.Sub(st.first); span > 0 && st.dataFrames > 1 {
			sc.ObservedRate = float64(st.dataFrames-1) / span.Seconds()
		}
		switch {
		case st.cfg == nil:
			sc.Detail = "no configuration frame observed"
		case sc.ConfiguredRate == 0:
			sc.Detail = "configuration declares no data rate"
		case sc.ObservedRate == 0:
			sc.Detail = "too few data frames to estimate rate"
		default:
			dev := (sc.ObservedRate - sc.ConfiguredRate) / sc.ConfiguredRate
			sc.Compliant = math.Abs(dev) <= 0.1
			sc.Detail = fmt.Sprintf("observed %.2f fps vs configured %.2f fps (%+.1f%%)",
				sc.ObservedRate, sc.ConfiguredRate, dev*100)
		}
		out = append(out, sc)
	}
	return out
}

func init() { protocol.Register(dialect{}) }
