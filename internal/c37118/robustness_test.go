package c37118

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnRandomBytes: synchrophasor frames come off the
// same tap; garbage must fail cleanly.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := &Config{
		IDCode: 1,
		PMUs: []PMUConfig{{StationName: "P", IDCode: 2,
			PhasorNames: []string{"VA"}, NominalFreq: 60, ConversionFactor: 0.01}},
		DataRate: 30,
	}
	for i := 0; i < 20000; i++ {
		n := rng.Intn(96)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		if n > 0 && rng.Intn(2) == 0 {
			buf[0] = SyncByte
		}
		_, _ = PeekFrame(buf)
		_, _ = ParseConfig(buf)
		_, _ = ParseData(buf, cfg)
	}
}
