package c37118

import (
	"bytes"
	"math"
	"testing"
	"time"

	"uncharted/internal/protocol"
)

// The generic token kinds must mirror the wire frame types byte for
// byte — session.Next casts FrameType straight into Token.Kind.
func TestTokenKindsMirrorFrameTypes(t *testing.T) {
	pairs := []struct {
		ft   FrameType
		kind uint8
	}{
		{FrameData, protocol.KindC37Data},
		{FrameHeader, protocol.KindC37Header},
		{FrameConfig1, protocol.KindC37Config1},
		{FrameConfig2, protocol.KindC37Config2},
		{FrameCommand, protocol.KindC37Command},
	}
	for _, p := range pairs {
		if uint8(p.ft) != p.kind {
			t.Errorf("FrameType %v = %d, protocol kind = %d", p.ft, p.ft, p.kind)
		}
	}
}

func dialectTestCfg(rate int16) *Config {
	return &Config{
		IDCode: 7,
		Time:   time.Unix(1500000000, 0).UTC(),
		PMUs: []PMUConfig{{
			StationName:      "PMU-A",
			IDCode:           21,
			PhasorNames:      []string{"VA", "VB"},
			NominalFreq:      50,
			ConversionFactor: 0.01,
		}},
		DataRate: rate,
	}
}

func TestNextFrameResync(t *testing.T) {
	cfg := dialectTestCfg(25)
	frame, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Garbage with an embedded false sync (0xAA followed by a reserved
	// frame type) before the real frame.
	buf := append([]byte{0x01, 0xAA, 0xFF, 0x00, 0x00, 0x02}, frame...)
	got, rest, skipped, ok := NextFrame(buf)
	if !ok {
		t.Fatalf("NextFrame did not find the frame")
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("NextFrame returned wrong frame")
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes, want 0", len(rest))
	}
	if skipped != 6 {
		t.Fatalf("skipped = %d, want 6", skipped)
	}
}

// Drive a config + data-frame stream through the dialect session and
// require tokens, extracted measurements and a data-rate verdict.
func TestSessionDecodeAndCompliance(t *testing.T) {
	d := protocol.Get(protocol.C37118)
	if d == nil {
		t.Fatal("c37118 dialect not registered")
	}
	cfg := dialectTestCfg(25)
	var stream []byte
	cf, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, cf...)
	base := cfg.Time
	const frames = 51
	for i := 0; i < frames; i++ {
		df, err := (&Data{
			IDCode: cfg.IDCode,
			Time:   base.Add(time.Duration(i) * 40 * time.Millisecond), // 25 fps
			PMUs: []PMUData{{
				Stat: 0,
				Phasors: []Phasor{
					{Name: "VA", Magnitude: 120, AngleRad: 0.1},
					{Name: "VB", Magnitude: 121, AngleRad: -0.1},
				},
				Freq:  50.01,
				ROCOF: 0.02,
			}},
		}).Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, df...)
	}

	sess := d.NewSession()
	var toks []protocol.Token
	var points int
	var lastPts []protocol.Point
	buf := stream
	for {
		ev, rest, _, ok := sess.Next(buf, true)
		if !ok {
			break
		}
		buf = rest
		if ev.Err != nil {
			t.Fatalf("decode error: %v", ev.Err)
		}
		toks = append(toks, ev.Token)
		points += len(ev.Points)
		if len(ev.Points) > 0 {
			lastPts = append(lastPts[:0], ev.Points...)
		}
	}
	if len(toks) != frames+1 {
		t.Fatalf("tokens = %d, want %d", len(toks), frames+1)
	}
	if toks[0].String() != "C2" || toks[1].String() != "D" {
		t.Fatalf("token stream starts %v %v, want C2 D", toks[0], toks[1])
	}
	// 2 phasors + freq + rocof per data frame.
	if points != frames*4 {
		t.Fatalf("points = %d, want %d", points, frames*4)
	}
	var sawFreq, sawPhasor bool
	for _, p := range lastPts {
		switch p.Code {
		case protocol.C37PointFreq:
			sawFreq = true
			if math.Abs(p.V-50.01) > 0.01 {
				t.Errorf("freq = %v, want ~50.01", p.V)
			}
			if p.IOA != uint32(21)<<8|1 {
				t.Errorf("freq IOA = %d, want %d", p.IOA, uint32(21)<<8|1)
			}
		case protocol.C37PointPhasor:
			sawPhasor = true
		}
		if p.T.IsZero() {
			t.Error("point carries no frame timestamp")
		}
	}
	if !sawFreq || !sawPhasor {
		t.Fatalf("missing point kinds: freq=%v phasor=%v", sawFreq, sawPhasor)
	}

	scs := sess.(protocol.ComplianceReporter).Compliance()
	if len(scs) != 1 {
		t.Fatalf("compliance entries = %d, want 1", len(scs))
	}
	sc := scs[0]
	if sc.Unit != "pmu-7" {
		t.Errorf("unit = %q", sc.Unit)
	}
	if !sc.Compliant {
		t.Errorf("stream at nominal rate judged non-compliant: %s", sc.Detail)
	}
	if sc.ConfiguredRate != 25 {
		t.Errorf("configured rate = %v, want 25", sc.ConfiguredRate)
	}
	if math.Abs(sc.ObservedRate-25) > 1 {
		t.Errorf("observed rate = %v, want ~25", sc.ObservedRate)
	}
}

// A stream running far below its configured rate must fail compliance.
func TestSessionRateViolation(t *testing.T) {
	cfg := dialectTestCfg(50) // declares 50 fps
	sess := dialect{}.NewSession()
	cf, _ := cfg.Marshal()
	var stream []byte
	stream = append(stream, cf...)
	for i := 0; i < 20; i++ {
		df, _ := (&Data{
			IDCode: cfg.IDCode,
			Time:   cfg.Time.Add(time.Duration(i) * 100 * time.Millisecond), // 10 fps
			PMUs: []PMUData{{
				Phasors: []Phasor{{Magnitude: 1}, {Magnitude: 1}},
				Freq:    50,
			}},
		}).Marshal(cfg)
		stream = append(stream, df...)
	}
	buf := stream
	for {
		ev, rest, _, ok := sess.Next(buf, true)
		if !ok {
			break
		}
		if ev.Err != nil {
			t.Fatal(ev.Err)
		}
		buf = rest
	}
	scs := sess.(protocol.ComplianceReporter).Compliance()
	if len(scs) != 1 || scs[0].Compliant {
		t.Fatalf("10 fps stream against 50 fps config judged compliant: %+v", scs)
	}
}

// A truncated or corrupted frame must surface as an error event, not a
// stall or a panic, and the stream must resynchronise on the next
// frame.
func TestSessionRecoversFromCorruption(t *testing.T) {
	cfg := dialectTestCfg(25)
	sess := dialect{}.NewSession()
	cf, _ := cfg.Marshal()
	corrupt := append([]byte(nil), cf...)
	corrupt[len(corrupt)-1] ^= 0xFF // break CRC
	stream := append(corrupt, cf...)

	var errs, good int
	buf := stream
	for {
		ev, rest, _, ok := sess.Next(buf, true)
		if !ok {
			break
		}
		buf = rest
		if ev.Err != nil {
			errs++
		} else {
			good++
		}
	}
	if errs != 1 || good != 1 {
		t.Fatalf("errs=%d good=%d, want 1/1", errs, good)
	}
}

// FuzzSessionNext hammers the framing + decode loop with arbitrary
// bytes: it must never panic, never loop without consuming input, and
// always account skipped garbage.
func FuzzSessionNext(f *testing.F) {
	cfg := dialectTestCfg(25)
	cf, _ := cfg.Marshal()
	df, _ := (&Data{
		IDCode: cfg.IDCode,
		Time:   cfg.Time,
		PMUs: []PMUData{{
			Phasors: []Phasor{{Magnitude: 1}, {Magnitude: 2}},
			Freq:    50,
		}},
	}).Marshal(cfg)
	f.Add(append(append([]byte{}, cf...), df...))
	f.Add(append([]byte{0xAA, 0x01, 0x00, 0x10}, bytes.Repeat([]byte{0}, 12)...))
	f.Add([]byte{0xAA})
	f.Add(append([]byte{0x00, 0xAA, 0xFF}, cf...))
	// Mixed-garbage corpus: frames of the *other* registered dialects
	// spliced around valid C37.118 bytes — the misrouted-flow resync
	// cases a mixed tap produces. 0x68… is an IEC 104 S-frame, the
	// 00 01 00 00 00 06 prefix is an MBAP read request.
	iecS := []byte{0x68, 0x04, 0x01, 0x00, 0x00, 0x00}
	mbap := []byte{0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x64, 0x00, 0x06}
	f.Add(append(append(append([]byte{}, iecS...), cf...), df...))
	f.Add(append(append(append([]byte{}, mbap...), df...), iecS...))
	f.Add(append(append(append([]byte{}, cf...), mbap...), df...))
	f.Fuzz(func(t *testing.T, data []byte) {
		sess := dialect{}.NewSession()
		buf := data
		for i := 0; i < len(data)+4; i++ {
			before := len(buf)
			ev, rest, skipped, ok := sess.Next(buf, i%2 == 0)
			if skipped < 0 {
				t.Fatalf("negative skip %d", skipped)
			}
			if !ok {
				if len(rest) > before {
					t.Fatalf("rest grew: %d -> %d", before, len(rest))
				}
				break
			}
			if len(rest) >= before {
				t.Fatalf("no progress: %d -> %d", before, len(rest))
			}
			_ = ev
			buf = rest
		}
	})
}
