package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// buildClassic writes a classic pcap with the given payload sizes and
// returns the file bytes plus the byte offset of every record.
func buildClassic(t *testing.T, payloads [][]byte) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 11, 3, 12, 0, 0, 0, time.UTC)
	var offs []int64
	for i, pl := range payloads {
		offs = append(offs, int64(buf.Len()))
		ci := CaptureInfo{Timestamp: base.Add(time.Duration(i) * 250 * time.Millisecond)}
		if err := w.WritePacket(ci, pl); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), offs
}

// readAll drains a PacketReader into (data, ci) pairs.
func readAll(t *testing.T, pr PacketReader) ([][]byte, []CaptureInfo) {
	t.Helper()
	var datas [][]byte
	var cis []CaptureInfo
	for {
		data, ci, err := pr.ReadPacket()
		if err == io.EOF {
			return datas, cis
		}
		if err != nil {
			t.Fatalf("ReadPacket: %v", err)
		}
		datas = append(datas, append([]byte(nil), data...))
		cis = append(cis, ci)
	}
}

// planAndReadAll plans n segments and concatenates every segment's
// records in order.
func planAndReadAll(t *testing.T, file []byte, n int) ([][]byte, []CaptureInfo, *SegmentPlan) {
	t.Helper()
	plan, err := PlanSegments(bytes.NewReader(file), int64(len(file)), n)
	if err != nil {
		t.Fatal(err)
	}
	var datas [][]byte
	var cis []CaptureInfo
	for i := 0; i < plan.Len(); i++ {
		pr, err := plan.Open(i)
		if err != nil {
			t.Fatal(err)
		}
		d, c := readAll(t, pr)
		datas = append(datas, d...)
		cis = append(cis, c...)
	}
	return datas, cis, plan
}

// assertSameRecords requires the segmented read to reproduce the
// sequential read exactly.
func assertSameRecords(t *testing.T, file []byte, n int) *SegmentPlan {
	t.Helper()
	pr, err := NewAutoReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	wantD, wantC := readAll(t, pr)
	gotD, gotC, plan := planAndReadAll(t, file, n)
	if len(gotD) != len(wantD) {
		t.Fatalf("segmented read yielded %d records, sequential %d (plan %d segs)", len(gotD), len(wantD), plan.Len())
	}
	for i := range wantD {
		if !bytes.Equal(gotD[i], wantD[i]) {
			t.Fatalf("record %d bytes differ", i)
		}
		if !gotC[i].Timestamp.Equal(wantC[i].Timestamp) || gotC[i].CaptureLength != wantC[i].CaptureLength || gotC[i].Length != wantC[i].Length {
			t.Fatalf("record %d capture info %+v != %+v", i, gotC[i], wantC[i])
		}
	}
	return plan
}

// TestPlanClassicBoundariesAreRecordStarts: every planned boundary in
// a classic pcap must be a true record offset, across segment counts.
func TestPlanClassicBoundariesAreRecordStarts(t *testing.T) {
	payloads := make([][]byte, 400)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i), 0xAB}, 20+(i%37))
	}
	file, offs := buildClassic(t, payloads)
	isRecord := map[int64]bool{}
	for _, o := range offs {
		isRecord[o] = true
	}
	for _, n := range []int{2, 3, 4, 7, 16} {
		plan := assertSameRecords(t, file, n)
		for i := 0; i < plan.Len(); i++ {
			if off := plan.Segment(i).Off; !isRecord[off] {
				t.Errorf("n=%d: segment %d starts at %d, not a record boundary", n, i, off)
			}
		}
		if plan.Len() < 2 {
			t.Errorf("n=%d: plan collapsed to %d segments on a 400-record file", n, plan.Len())
		}
	}
}

// TestPlanClassicFakeValidatingPayload plants byte sequences inside
// packet bodies that parse as plausible record headers (sane lengths,
// a timestamp inside the capture's window) — a single-header check
// would bite; the chain validation must step over them.
func TestPlanClassicFakeValidatingPayload(t *testing.T) {
	base := time.Date(2017, 11, 3, 12, 0, 0, 0, time.UTC)
	fake := make([]byte, 16)
	binary.LittleEndian.PutUint32(fake[0:4], uint32(base.Unix())+5) // in-window timestamp
	binary.LittleEndian.PutUint32(fake[4:8], 123456)
	binary.LittleEndian.PutUint32(fake[8:12], 52)  // capLen: plausible
	binary.LittleEndian.PutUint32(fake[12:16], 52) // origLen == capLen
	payloads := make([][]byte, 200)
	for i := range payloads {
		// Payload = back-to-back fake headers, so nearly every probe
		// offset inside a body lands on one.
		payloads[i] = bytes.Repeat(fake, 4)
	}
	file, offs := buildClassic(t, payloads)
	isRecord := map[int64]bool{}
	for _, o := range offs {
		isRecord[o] = true
	}
	for _, n := range []int{2, 4, 8} {
		plan := assertSameRecords(t, file, n)
		for i := 0; i < plan.Len(); i++ {
			if off := plan.Segment(i).Off; !isRecord[off] {
				t.Errorf("n=%d: segment %d starts inside a packet body at %d", n, i, off)
			}
		}
	}
}

// TestPlanClassicTruncatedFinalSegment: a capture cut mid-record still
// yields every whole record, and the reader of the last segment
// reports the same truncation error a sequential read does.
func TestPlanClassicTruncatedFinalSegment(t *testing.T) {
	payloads := make([][]byte, 120)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 60)
	}
	file, _ := buildClassic(t, payloads)
	trunc := file[:len(file)-30] // tear the final record's body

	plan, err := PlanSegments(bytes.NewReader(trunc), int64(len(trunc)), 4)
	if err != nil {
		t.Fatal(err)
	}
	var whole int
	var segErr error
	for i := 0; i < plan.Len(); i++ {
		pr, err := plan.Open(i)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, err := pr.ReadPacket()
			if err == io.EOF {
				break
			}
			if err != nil {
				segErr = err
				break
			}
			whole++
		}
	}
	if whole != len(payloads)-1 {
		t.Errorf("whole records = %d, want %d", whole, len(payloads)-1)
	}
	if segErr == nil {
		t.Fatal("truncated final record surfaced no error")
	}
	// Sequential read errors the same way (modulo the record index).
	seq, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var wantErr error
	for {
		_, _, err := seq.ReadPacket()
		if err != nil {
			wantErr = err
			break
		}
	}
	if wantErr == nil || !truncated(segErr) || !truncated(wantErr) {
		t.Errorf("segment error %v vs sequential %v: both should be truncation", segErr, wantErr)
	}
}

// TestPlanClassicSingleRecordAndOversplit: one record, many requested
// segments — the plan must degrade to one segment, never tear.
func TestPlanClassicSingleRecordAndOversplit(t *testing.T) {
	file, _ := buildClassic(t, [][]byte{bytes.Repeat([]byte{0x42}, 80)})
	plan := assertSameRecords(t, file, 8)
	if plan.Len() != 1 {
		t.Errorf("single-record plan has %d segments, want 1", plan.Len())
	}

	// More segments than records on a small multi-record file: every
	// record still appears exactly once.
	file2, _ := buildClassic(t, [][]byte{{1, 2, 3}, {4, 5}, {6}})
	assertSameRecords(t, file2, 16)
}

// TestPlanClassicEmptyCapture: header, no records.
func TestPlanClassicEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	d, _, plan := planAndReadAll(t, buf.Bytes(), 4)
	if len(d) != 0 || plan.Len() != 1 {
		t.Errorf("empty capture: %d records, %d segments", len(d), plan.Len())
	}
}

// TestPlanNgMidFileSHB: a second section header mid-file resets the
// interface table; segments starting after it must decode with the
// new section's interfaces (different link type and ts resolution),
// exactly like a sequential read.
func TestPlanNgMidFileSHB(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeEthernet, 0) // µs resolution
	base := time.Date(2019, 3, 9, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		w.epb(0, base.Add(time.Duration(i)*time.Second), 1_000_000, bytes.Repeat([]byte{byte(i)}, 40))
	}
	// New section: interface 0 is now raw-IP with ns resolution.
	w.shb()
	w.idb(LinkTypeRaw, 9) // 10^-9
	for i := 0; i < 50; i++ {
		w.epb(0, base.Add(time.Duration(100+i)*time.Second), 1_000_000_000, bytes.Repeat([]byte{0xFF, byte(i)}, 25))
	}
	file := w.buf.Bytes()

	for _, n := range []int{2, 3, 4, 8} {
		assertSameRecords(t, file, n)
	}

	// At least one plan cuts inside the second section and its seeded
	// reader must answer the new link type.
	plan, err := PlanSegments(bytes.NewReader(file), int64(len(file)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() < 2 {
		t.Fatalf("plan has %d segments, want >= 2", plan.Len())
	}
	last, err := plan.Open(plan.Len() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := last.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if lt := last.LinkType(); lt != LinkTypeRaw {
		t.Errorf("last segment link type = %d, want raw (%d)", lt, LinkTypeRaw)
	}
}

// TestPlanNgOversplit: segment count far above the block count.
func TestPlanNgOversplit(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeEthernet, 0)
	base := time.Date(2019, 3, 9, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		w.epb(0, base.Add(time.Duration(i)*time.Second), 1_000_000, []byte{byte(i), 1, 2})
	}
	assertSameRecords(t, w.buf.Bytes(), 32)
}

// TestPlanBigEndianNanos: the seeded classic reader carries byte
// order and timestamp resolution across segments.
func TestPlanBigEndianNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture (the Writer only
	// emits little-endian µs).
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicNanos)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 262144)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(LinkTypeEthernet))
	buf.Write(hdr[:])
	base := time.Date(2017, 11, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 64; i++ {
		pl := bytes.Repeat([]byte{byte(i)}, 30+i%11)
		var rec [16]byte
		ts := base.Add(time.Duration(i) * 125 * time.Millisecond)
		binary.BigEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
		binary.BigEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()))
		binary.BigEndian.PutUint32(rec[8:12], uint32(len(pl)))
		binary.BigEndian.PutUint32(rec[12:16], uint32(len(pl)))
		buf.Write(rec[:])
		buf.Write(pl)
	}
	for _, n := range []int{2, 4} {
		assertSameRecords(t, buf.Bytes(), n)
	}
}
