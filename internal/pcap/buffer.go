package pcap

import "sync"

// Buffer is a pooled byte buffer for packet data. Ownership is
// explicit: whoever holds the *Buffer may read and append to Data;
// calling Release returns it to its pool, after which Data must not be
// touched — the backing array will be handed to another reader. The
// zero-copy contract through the pipeline is built on this: a slice of
// Buffer.Data is valid exactly as long as the Buffer is unreleased.
type Buffer struct {
	Data []byte
	pool *BufferPool
}

// Release recycles the buffer into the pool it came from. Safe to call
// on a nil Buffer; calling it twice hands the same backing array to two
// owners, which the poison mode in tests is designed to catch.
func (b *Buffer) Release() {
	if b == nil || b.pool == nil {
		return
	}
	p := b.pool
	if p.poison {
		for i := range b.Data {
			b.Data[i] = 0xDB
		}
	}
	b.Data = b.Data[:0]
	p.pool.Put(b)
}

// BufferPool hands out reusable Buffers. The zero value is ready to
// use. Buffers come back with Data length 0 but retain their grown
// capacity, so a steady-state pipeline stops allocating once its
// buffers have grown to the working-set size.
type BufferPool struct {
	pool   sync.Pool
	poison bool
}

// Get returns a Buffer with empty Data (capacity retained from earlier
// use). The caller must Release it exactly once when done.
func (p *BufferPool) Get() *Buffer {
	if b, ok := p.pool.Get().(*Buffer); ok {
		return b
	}
	return &Buffer{Data: make([]byte, 0, 64<<10), pool: p}
}

// SetPoison toggles overwrite-on-release: every Release fills the
// buffer with 0xDB before pooling it, so any consumer that wrongly
// retains a slice past Release sees garbage instead of stale frame
// bytes. Intended for tests (it costs a memset per release); must be
// set before the pool is shared across goroutines.
func (p *BufferPool) SetPoison(on bool) { p.poison = on }

// Poisoned reports whether overwrite-on-release is on, so callers that
// recycle Buffers through their own free lists (bypassing Release) can
// honor the same use-after-release tripwire.
func (p *BufferPool) Poisoned() bool { return p.poison }
