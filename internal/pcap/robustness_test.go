package pcap

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnRandomBytes: layer decoders are fed raw tap
// bytes; they must reject garbage without crashing.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		_, _ = DecodeEthernet(buf)
		_, _ = DecodeIPv4(buf)
		_, _ = DecodeTCP(buf)
		_, _ = DecodePacket(LinkTypeEthernet, CaptureInfo{}, buf)
		_, _ = DecodePacket(LinkTypeRaw, CaptureInfo{}, buf)
	}
}

// TestReaderNeverPanicsOnTruncatedFiles reads random prefixes of a
// valid capture.
func TestReaderNeverPanicsOnTruncatedFiles(t *testing.T) {
	var full bytes.Buffer
	w := NewWriter(&full, LinkTypeEthernet)
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(CaptureInfo{}, bytes.Repeat([]byte{byte(i)}, 40+i)); err != nil {
			t.Fatal(err)
		}
	}
	raw := full.Bytes()
	for cut := 0; cut <= len(raw); cut += 3 {
		r, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			if _, _, err := r.ReadPacket(); err != nil {
				break
			}
		}
	}
}
