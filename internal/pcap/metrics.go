package pcap

import (
	"errors"
	"io"

	"uncharted/internal/obs"
)

// Metric names exported by instrumented readers.
const (
	MetricPacketsRead = "uncharted_pcap_packets_read_total"
	MetricBytesRead   = "uncharted_pcap_bytes_read_total"
	MetricTruncated   = "uncharted_pcap_truncated_records_total"
	MetricRecordBytes = "uncharted_pcap_record_bytes"
)

// readerMetrics holds the pre-resolved handles one reader updates.
type readerMetrics struct {
	packets *obs.Counter
	bytes   *obs.Counter
	// sizes is the capture-length distribution — the input-shape half
	// of the flight recorder's per-stage timings (a latency shift with
	// an unchanged size profile points at the pipeline, not the tap).
	sizes *obs.Histogram
	// truncated by cause: a record header cut short, a record body cut
	// short, or a record longer than the declared snap length.
	truncHeader  *obs.Counter
	truncBody    *obs.Counter
	truncSnapLen *obs.Counter
}

func newReaderMetrics(reg *obs.Registry) *readerMetrics {
	reg.SetHelp(MetricPacketsRead, "Capture records decoded from the pcap/pcapng stream.")
	reg.SetHelp(MetricBytesRead, "Captured packet bytes read (capture lengths, not wire lengths).")
	reg.SetHelp(MetricTruncated, "Records the reader could not fully read, by cause.")
	reg.SetHelp(MetricRecordBytes, "Capture-length distribution of decoded records.")
	return &readerMetrics{
		packets:      reg.Counter(MetricPacketsRead),
		bytes:        reg.Counter(MetricBytesRead),
		sizes:        reg.Histogram(MetricRecordBytes, obs.SizeBuckets),
		truncHeader:  reg.Counter(MetricTruncated, "cause", "short_header"),
		truncBody:    reg.Counter(MetricTruncated, "cause", "short_body"),
		truncSnapLen: reg.Counter(MetricTruncated, "cause", "snaplen_exceeded"),
	}
}

// noteRead books one successfully decoded record. Nil-safe.
func (m *readerMetrics) noteRead(capLen int) {
	if m == nil {
		return
	}
	m.packets.Inc()
	m.bytes.Add(int64(capLen))
	m.sizes.Observe(float64(capLen))
}

// noteShortHeader books a record header cut off mid-read. Nil-safe.
func (m *readerMetrics) noteShortHeader() {
	if m != nil {
		m.truncHeader.Inc()
	}
}

// noteShortBody books a record body shorter than its declared capture
// length — the classic symptom of a tap or disk filling up. Nil-safe.
func (m *readerMetrics) noteShortBody() {
	if m != nil {
		m.truncBody.Inc()
	}
}

// noteSnapLen books a record that claims more bytes than the declared
// snap length allows. Nil-safe.
func (m *readerMetrics) noteSnapLen() {
	if m != nil {
		m.truncSnapLen.Inc()
	}
}

// truncated reports whether err looks like a cut-off record rather
// than corrupt framing.
func truncated(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}
