package pcap

import (
	"bytes"
	"io"
	"testing"
)

func TestBufferPoolPoisonOnRelease(t *testing.T) {
	var pool BufferPool
	pool.SetPoison(true)
	b := pool.Get()
	b.Data = append(b.Data, 0x01, 0x02, 0x03)
	stale := b.Data[:3]
	b.Release()
	for i, v := range stale {
		if v != 0xDB {
			t.Fatalf("released byte %d = %#02x, want poison 0xDB", i, v)
		}
	}
	if reused := pool.Get(); len(reused.Data) != 0 {
		t.Fatalf("recycled buffer has %d stale bytes, want 0", len(reused.Data))
	}
}

func TestBufferReleaseNilSafe(t *testing.T) {
	var b *Buffer
	b.Release() // must not panic
}

func TestReadPacketBuffer(t *testing.T) {
	capture := buildCapture(t, 3)
	r, err := NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var pool BufferPool
	var seen int
	for {
		b, ci, err := ReadPacketBuffer(r, &pool)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Data) != ci.CaptureLength {
			t.Fatalf("buffer holds %d bytes, capture info says %d", len(b.Data), ci.CaptureLength)
		}
		seen++
		b.Release()
	}
	if seen != 3 {
		t.Fatalf("read %d packets, want 3", seen)
	}
}
