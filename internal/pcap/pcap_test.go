package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	payloads := [][]byte{
		{0x01},
		{0x02, 0x03},
		bytes.Repeat([]byte{0xAA}, 1500),
	}
	for i, p := range payloads {
		ci := CaptureInfo{Timestamp: base.Add(time.Duration(i) * time.Millisecond * 1500)}
		if err := w.WritePacket(ci, p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type = %v", r.LinkType())
	}
	for i, want := range payloads {
		data, ci, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("packet %d data mismatch", i)
		}
		wantTS := base.Add(time.Duration(i) * time.Millisecond * 1500)
		if !ci.Timestamp.Equal(wantTS) {
			t.Fatalf("packet %d timestamp %v, want %v", i, ci.Timestamp, wantTS)
		}
		if ci.CaptureLength != len(want) || ci.Length != len(want) {
			t.Fatalf("packet %d lengths %d/%d", i, ci.CaptureLength, ci.Length)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderBigEndianAndNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one record.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNanosSwapped) // stored LE, read as swapped → big-endian file
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(LinkTypeRaw))
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1700000000)
	binary.BigEndian.PutUint32(rec[4:8], 123456789)
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec[:])
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data, ci, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{9, 8, 7}) {
		t.Fatalf("data = % x", data)
	}
	want := time.Unix(1700000000, 123456789).UTC()
	if !ci.Timestamp.Equal(want) {
		t.Fatalf("timestamp %v, want %v", ci.Timestamp, want)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Fatalf("link type %v", r.LinkType())
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestWriterRejectsLengthMismatch(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, LinkTypeEthernet)
	err := w.WritePacket(CaptureInfo{Timestamp: time.Now(), CaptureLength: 5}, []byte{1, 2})
	if err == nil {
		t.Fatal("mismatched capture length accepted")
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x", got)
	}
	// Odd-length input must not panic and must include the final byte.
	if Checksum([]byte{0xFF}) == Checksum([]byte{0x00}) {
		t.Fatal("odd trailing byte ignored")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	src := netip.MustParseAddr("10.1.2.3")
	dst := netip.MustParseAddr("10.4.5.6")
	p := IPv4{
		TOS: 0x10, ID: 0x1234, Flags: 2, TTL: 61,
		Protocol: IPProtoTCP, Src: src, Dst: dst,
		Payload: []byte{1, 2, 3, 4, 5},
	}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != src || got.Dst != dst || got.Protocol != IPProtoTCP ||
		got.ID != 0x1234 || got.TTL != 61 || got.Flags != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	p := IPv4{Protocol: IPProtoTCP,
		Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2")}
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xFF // corrupt TTL
	if _, err := DecodeIPv4(raw); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	tc := TCP{
		SrcPort: 49152, DstPort: 2404,
		Seq: 0xDEADBEEF, Ack: 0xCAFEBABE,
		Flags: FlagPSH | FlagACK, Window: 8192,
		Payload: []byte{0x68, 0x04, 0x43, 0x00, 0x00, 0x00},
	}
	raw, err := tc.Serialize(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTCPChecksum(raw, src, dst); err != nil {
		t.Fatalf("checksum: %v", err)
	}
	got, err := DecodeTCP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != tc.SrcPort || got.DstPort != tc.DstPort ||
		got.Seq != tc.Seq || got.Ack != tc.Ack || got.Flags != tc.Flags {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(got.Payload, tc.Payload) {
		t.Fatal("payload mismatch")
	}
	if got.FlagString() != "PSH,ACK" {
		t.Fatalf("flag string %q", got.FlagString())
	}
	raw[len(raw)-1] ^= 0x01
	if err := VerifyTCPChecksum(raw, src, dst); err == nil {
		t.Fatal("corrupted payload passed checksum")
	}
}

func TestBuildAndDecodePacket(t *testing.T) {
	src := netip.MustParseAddrPort("192.168.10.5:40001")
	dst := netip.MustParseAddrPort("192.168.10.1:2404")
	frame, err := BuildTCPPacket(src, dst, TCP{
		Seq: 100, Ack: 200, Flags: FlagSYN,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := DecodePacket(LinkTypeEthernet, CaptureInfo{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.IP.Src != src.Addr() || pkt.IP.Dst != dst.Addr() {
		t.Fatalf("addresses %v -> %v", pkt.IP.Src, pkt.IP.Dst)
	}
	if pkt.TCP.SrcPort != src.Port() || pkt.TCP.DstPort != dst.Port() {
		t.Fatalf("ports %d -> %d", pkt.TCP.SrcPort, pkt.TCP.DstPort)
	}
	if !pkt.TCP.SYN() || pkt.TCP.ACK() {
		t.Fatalf("flags %s", pkt.TCP.FlagString())
	}
	if err := VerifyTCPChecksum(pkt.IP.Payload, pkt.IP.Src, pkt.IP.Dst); err != nil {
		t.Fatalf("built packet checksum: %v", err)
	}
}

func TestDecodePacketSkipsNonTCP(t *testing.T) {
	// An ARP-ish frame (wrong ethertype) must be rejected, not panic.
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x06
	if _, err := DecodePacket(LinkTypeEthernet, CaptureInfo{}, frame); err == nil {
		t.Fatal("ARP frame decoded as TCP")
	}
}

func TestTCPPayloadQuick(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	check := func(payload []byte, seq, ack uint32) bool {
		tc := TCP{SrcPort: 1, DstPort: 2, Seq: seq, Ack: ack, Flags: FlagACK, Payload: payload}
		raw, err := tc.Serialize(src, dst)
		if err != nil {
			return false
		}
		if err := VerifyTCPChecksum(raw, src, dst); err != nil {
			return false
		}
		got, err := DecodeTCP(raw)
		return err == nil && bytes.Equal(got.Payload, payload) && got.Seq == seq && got.Ack == ack
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
