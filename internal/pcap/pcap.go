// Package pcap reads and writes libpcap capture files and decodes /
// serializes the Ethernet, IPv4 and TCP layers the measurement pipeline
// needs. It is a from-scratch, stdlib-only substrate standing in for
// libpcap bindings: the synthesized bulk-power traces are written in
// this format, and the analysis side reads either those or real
// captures.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"uncharted/internal/obs"
)

// Magic numbers of the classic libpcap file header.
const (
	magicMicros        = 0xa1b2c3d4 // microsecond timestamps, writer byte order
	magicNanos         = 0xa1b23c4d // nanosecond timestamps
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1
)

// LinkType identifies the capture's link layer.
type LinkType uint32

// Link types used here.
const (
	LinkTypeEthernet LinkType = 1
	LinkTypeRaw      LinkType = 101 // raw IP
)

// CaptureInfo carries the per-packet record header fields.
type CaptureInfo struct {
	Timestamp     time.Time
	CaptureLength int // bytes present in the file
	Length        int // original wire length
}

// Reader decodes a libpcap stream.
type Reader struct {
	r         io.Reader
	order     binary.ByteOrder
	nanos     bool
	linkType  LinkType
	snapLen   uint32
	recHdr    [16]byte
	packetNum int
	metrics   *readerMetrics
}

// Instrument books per-record counters (packets, bytes, truncated
// records) into reg under the uncharted_pcap_* names.
func (r *Reader) Instrument(reg *obs.Registry) {
	r.metrics = newReaderMetrics(reg)
}

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: unrecognised magic number")
	ErrSnapLen  = errors.New("pcap: record exceeds snap length")
)

// buffered wraps r in a bufio.Reader unless it is already buffered.
// Implementing io.ByteReader is the signal that r serves small reads
// cheaply itself (bufio.Reader, bytes.Reader, strings.Reader, and the
// stream package's tailing source all do); wrapping those again would
// either waste a copy or, for the tailing source, read ahead past the
// bytes its framing gate has admitted.
func buffered(r io.Reader) io.Reader {
	if _, ok := r.(io.ByteReader); ok {
		return r
	}
	return bufio.NewReaderSize(r, 64<<10)
}

// NewReader parses the global header from r. Unless r is already
// buffered (implements io.ByteReader) it is wrapped in a bufio.Reader
// so per-record header reads do not hit the underlying file.
func NewReader(r io.Reader) (*Reader, error) {
	r = buffered(r)
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	pr := &Reader{r: r}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case magicMicros:
		pr.order = binary.LittleEndian
	case magicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		pr.order = binary.BigEndian
	case magicNanosSwapped:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	pr.snapLen = pr.order.Uint32(hdr[16:20])
	pr.linkType = LinkType(pr.order.Uint32(hdr[20:24]))
	return pr, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() LinkType { return r.linkType }

// SnapLen returns the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// ReadPacket returns the next record in a freshly allocated buffer the
// caller owns outright. It returns io.EOF cleanly at the end of the
// stream. Hot paths should prefer ReadPacketInto, which reuses a
// caller-supplied scratch buffer instead of allocating per packet.
func (r *Reader) ReadPacket() ([]byte, CaptureInfo, error) {
	return r.ReadPacketInto(nil)
}

// ReadPacketInto reads the next record into scratch, growing it if
// needed, and returns the (possibly reallocated) slice holding exactly
// the record bytes. The returned slice shares scratch's backing array:
// it is only valid until the next ReadPacketInto call that reuses it.
// Callers keep the returned slice as the scratch for the next call to
// amortize the allocation to zero. Passing nil always allocates, which
// is what ReadPacket does.
func (r *Reader) ReadPacketInto(scratch []byte) ([]byte, CaptureInfo, error) {
	if _, err := io.ReadFull(r.r, r.recHdr[:]); err != nil {
		if err == io.EOF {
			return nil, CaptureInfo{}, io.EOF
		}
		r.metrics.noteShortHeader()
		return nil, CaptureInfo{}, fmt.Errorf("pcap: record %d header: %w", r.packetNum, err)
	}
	sec := r.order.Uint32(r.recHdr[0:4])
	frac := r.order.Uint32(r.recHdr[4:8])
	capLen := r.order.Uint32(r.recHdr[8:12])
	origLen := r.order.Uint32(r.recHdr[12:16])
	if r.snapLen != 0 && capLen > r.snapLen {
		r.metrics.noteSnapLen()
		return nil, CaptureInfo{}, fmt.Errorf("%w: %d > %d", ErrSnapLen, capLen, r.snapLen)
	}
	data := grow(scratch, int(capLen))
	if _, err := io.ReadFull(r.r, data); err != nil {
		if truncated(err) {
			r.metrics.noteShortBody()
		}
		return nil, CaptureInfo{}, fmt.Errorf("pcap: record %d body: %w", r.packetNum, err)
	}
	r.metrics.noteRead(int(capLen))
	nanos := int64(frac) * 1000
	if r.nanos {
		nanos = int64(frac)
	}
	r.packetNum++
	return data, CaptureInfo{
		Timestamp:     time.Unix(int64(sec), nanos).UTC(),
		CaptureLength: int(capLen),
		Length:        int(origLen),
	}, nil
}

// grow returns a length-n slice backed by scratch when its capacity
// allows, allocating otherwise.
func grow(scratch []byte, n int) []byte {
	if cap(scratch) >= n {
		return scratch[:n]
	}
	return make([]byte, n)
}

// Writer emits a libpcap stream with microsecond timestamps in little-
// endian byte order.
type Writer struct {
	w       io.Writer
	snapLen uint32
	wrote   bool
	link    LinkType
}

// NewWriter returns a Writer targeting w. The global header is written
// lazily by the first WritePacket (or explicitly by WriteHeader).
func NewWriter(w io.Writer, link LinkType) *Writer {
	return &Writer{w: w, snapLen: 262144, link: link}
}

// WriteHeader writes the global file header.
func (w *Writer) WriteHeader() error {
	if w.wrote {
		return nil
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(w.link))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing global header: %w", err)
	}
	w.wrote = true
	return nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(ci CaptureInfo, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	if ci.CaptureLength == 0 {
		ci.CaptureLength = len(data)
	}
	if ci.Length == 0 {
		ci.Length = ci.CaptureLength
	}
	if ci.CaptureLength != len(data) {
		return fmt.Errorf("pcap: capture length %d != data length %d", ci.CaptureLength, len(data))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ci.Timestamp.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ci.Timestamp.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(ci.CaptureLength))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(ci.Length))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record body: %w", err)
	}
	return nil
}
