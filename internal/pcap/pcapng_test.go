package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// ngWriter builds pcapng streams for tests (the library itself only
// reads the format).
type ngWriter struct {
	buf   bytes.Buffer
	order binary.ByteOrder
}

func newNgWriter(order binary.ByteOrder) *ngWriter { return &ngWriter{order: order} }

func (w *ngWriter) block(typ uint32, body []byte) {
	pad := (4 - len(body)%4) % 4
	total := uint32(12 + len(body) + pad)
	var u32 [4]byte
	w.order.PutUint32(u32[:], typ)
	w.buf.Write(u32[:])
	w.order.PutUint32(u32[:], total)
	w.buf.Write(u32[:])
	w.buf.Write(body)
	w.buf.Write(make([]byte, pad))
	w.order.PutUint32(u32[:], total)
	w.buf.Write(u32[:])
}

func (w *ngWriter) shb() {
	body := make([]byte, 16)
	w.order.PutUint32(body[0:4], byteOrderMagic)
	w.order.PutUint16(body[4:6], 1) // major
	w.order.PutUint16(body[6:8], 0) // minor
	// section length: -1 (unknown)
	w.order.PutUint32(body[8:12], 0xFFFFFFFF)
	w.order.PutUint32(body[12:16], 0xFFFFFFFF)
	w.block(blockSHB, body)
}

func (w *ngWriter) idb(link LinkType, tsresol byte) {
	body := make([]byte, 8)
	w.order.PutUint16(body[0:2], uint16(link))
	w.order.PutUint32(body[4:8], 262144)
	if tsresol != 0 {
		opt := make([]byte, 8)
		w.order.PutUint16(opt[0:2], 9) // if_tsresol
		w.order.PutUint16(opt[2:4], 1)
		opt[4] = tsresol
		// opt_endofopt implied by running out of options.
		body = append(body, opt...)
	}
	w.block(blockIDB, body)
}

func (w *ngWriter) epb(iface uint32, ts time.Time, divisor uint64, data []byte) {
	raw := uint64(ts.Unix())*divisor + uint64(ts.Nanosecond())*divisor/1_000_000_000
	body := make([]byte, 20+len(data))
	w.order.PutUint32(body[0:4], iface)
	w.order.PutUint32(body[4:8], uint32(raw>>32))
	w.order.PutUint32(body[8:12], uint32(raw))
	w.order.PutUint32(body[12:16], uint32(len(data)))
	w.order.PutUint32(body[16:20], uint32(len(data)))
	copy(body[20:], data)
	w.block(blockEPB, body)
}

func TestNgReaderRoundTrip(t *testing.T) {
	for _, order := range []binary.ByteOrder{binary.LittleEndian, binary.BigEndian} {
		w := newNgWriter(order)
		w.shb()
		w.idb(LinkTypeEthernet, 0) // default µs resolution
		ts := time.Date(2026, 7, 5, 12, 0, 0, 250000000, time.UTC)
		w.epb(0, ts, 1_000_000, []byte{1, 2, 3, 4})
		w.epb(0, ts.Add(time.Second), 1_000_000, []byte{5, 6})

		r, err := NewNgReader(bytes.NewReader(w.buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		data, ci, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if !bytes.Equal(data, []byte{1, 2, 3, 4}) {
			t.Fatalf("%v: data % x", order, data)
		}
		if !ci.Timestamp.Equal(ts) {
			t.Fatalf("%v: ts %v, want %v", order, ci.Timestamp, ts)
		}
		if r.LinkType() != LinkTypeEthernet {
			t.Fatalf("%v: link %v", order, r.LinkType())
		}
		if _, _, err := r.ReadPacket(); err != nil {
			t.Fatalf("%v: second packet: %v", order, err)
		}
		if _, _, err := r.ReadPacket(); err != io.EOF {
			t.Fatalf("%v: want EOF, got %v", order, err)
		}
	}
}

func TestNgReaderNanosecondResolution(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeEthernet, 9) // 10^-9
	ts := time.Date(2026, 7, 5, 12, 0, 0, 123456789, time.UTC)
	w.epb(0, ts, 1_000_000_000, []byte{0xAA})
	r, err := NewNgReader(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, ci, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Timestamp.Equal(ts) {
		t.Fatalf("ts %v, want %v", ci.Timestamp, ts)
	}
}

func TestNgReaderSkipsUnknownBlocks(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeEthernet, 0)
	w.block(0x00000004, make([]byte, 8)) // name resolution block: skipped
	w.epb(0, time.Unix(1700000000, 0), 1_000_000, []byte{7})
	r, err := NewNgReader(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := r.ReadPacket()
	if err != nil || len(data) != 1 || data[0] != 7 {
		t.Fatalf("data % x err %v", data, err)
	}
}

func TestNgReaderRejectsGarbage(t *testing.T) {
	if _, err := NewNgReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	// A classic pcap file is not pcapng.
	var classic bytes.Buffer
	cw := NewWriter(&classic, LinkTypeEthernet)
	if err := cw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNgReader(bytes.NewReader(classic.Bytes())); err == nil {
		t.Fatal("classic pcap accepted as pcapng")
	}
}

func TestNgReaderPacketBeforeInterface(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.epb(0, time.Unix(1700000000, 0), 1_000_000, []byte{1})
	r, err := NewNgReader(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		return // rejected at open time: fine
	}
	if _, _, err := r.ReadPacket(); err == nil {
		t.Fatal("packet without interface accepted")
	}
}

func TestNewAutoReader(t *testing.T) {
	// Classic pcap.
	var classic bytes.Buffer
	cw := NewWriter(&classic, LinkTypeEthernet)
	if err := cw.WritePacket(CaptureInfo{Timestamp: time.Unix(1700000000, 0)}, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	r, err := NewAutoReader(bytes.NewReader(classic.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if data, _, err := r.ReadPacket(); err != nil || len(data) != 2 {
		t.Fatalf("classic via auto: % x %v", data, err)
	}

	// pcapng.
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeRaw, 0)
	w.epb(0, time.Unix(1700000000, 0), 1_000_000, []byte{1, 2, 3})
	r, err = NewAutoReader(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Fatalf("link %v", r.LinkType())
	}
	if data, _, err := r.ReadPacket(); err != nil || len(data) != 3 {
		t.Fatalf("ng via auto: % x %v", data, err)
	}

	// Garbage.
	if _, err := NewAutoReader(bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0})); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNgReaderNeverPanicsOnTruncation(t *testing.T) {
	w := newNgWriter(binary.LittleEndian)
	w.shb()
	w.idb(LinkTypeEthernet, 0)
	w.epb(0, time.Unix(1700000000, 0), 1_000_000, bytes.Repeat([]byte{1}, 30))
	raw := w.buf.Bytes()
	for cut := 0; cut <= len(raw); cut++ {
		r, err := NewNgReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			if _, _, err := r.ReadPacket(); err != nil {
				break
			}
		}
	}
}
