package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the segment planner behind the streaming engine's
// parallel ingest: it splits a seekable capture into record-aligned
// byte ranges so N readers can pull from the same file concurrently,
// each through its own state-seeded PacketReader.
//
// Classic pcap has no framing magic per record, so boundaries are
// found by probing: from a candidate offset, walk successive record
// headers and accept the candidate only when a chain of them
// validates (sane lengths, sane and near-monotonic timestamps) or the
// walk lands exactly on EOF. pcapng is self-framing — every block
// carries its type, a length and a trailing length copy — so the
// planner hops block to block from the start of the file, tracking
// the per-section byte order and interface table, and cuts at block
// boundaries with a snapshot of that state. A section header (SHB)
// in the middle of the file resets the interface table exactly as a
// sequential read would.

// Segment is one planned byte range of a capture. Off/End delimit the
// range; records never straddle segments.
type Segment struct {
	Off int64
	End int64
}

// Size returns the segment's byte length.
func (s Segment) Size() int64 { return s.End - s.Off }

// SegmentPlan is a record-aligned split of one seekable capture.
// Open returns an independent PacketReader per segment; reading all
// segments in order yields exactly the records a sequential read of
// the whole file would.
type SegmentPlan struct {
	ra   io.ReaderAt
	segs []Segment

	// classic pcap state (nil ngStates means classic).
	order   binary.ByteOrder
	nanos   bool
	link    LinkType
	snapLen uint32

	// pcapng per-segment state snapshots, parallel to segs.
	ngStates []ngState
}

// ngState is the section state a pcapng segment starts in.
type ngState struct {
	order  binary.ByteOrder
	ifaces []ngInterface
}

// Planner tuning constants.
const (
	// segChainHops is how many successive record headers must validate
	// before a classic-pcap probe offset is accepted as a boundary
	// (reaching exact EOF sooner also accepts). One plausible-looking
	// 16-byte run inside a packet body is cheap to fake; four chained
	// headers with consistent lengths and near-monotonic timestamps are
	// not.
	segChainHops = 4
	// segMaxScan bounds the forward scan from a probe offset. If no
	// boundary validates within it, the candidate boundary is dropped
	// and the previous segment absorbs the range (correctness first:
	// fewer readers, never a torn record).
	segMaxScan = 1 << 20
	// segSaneLen caps believable capture/wire lengths during probing.
	segSaneLen = 1 << 22
)

// PlanSegments splits a capture of the given size into up to n
// record-aligned segments. It sniffs the format itself (classic pcap
// either endianness, µs or ns; pcapng) and may return fewer than n
// segments — always at least one covering the whole record area —
// when the file is too small or boundaries cannot be validated.
func PlanSegments(ra io.ReaderAt, size int64, n int) (*SegmentPlan, error) {
	if n < 1 {
		n = 1
	}
	var magic [4]byte
	if _, err := ra.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("pcap: sniffing capture format: %w", err)
	}
	if binary.BigEndian.Uint32(magic[:]) == blockSHB {
		return planNg(ra, size, n)
	}
	return planClassic(ra, size, n)
}

// Len returns the number of planned segments.
func (p *SegmentPlan) Len() int { return len(p.segs) }

// Segment returns the i-th planned byte range.
func (p *SegmentPlan) Segment(i int) Segment { return p.segs[i] }

// Open returns a fresh PacketReader over segment i, seeded with the
// capture state (byte order, link type, interface table) a sequential
// read would have at the segment's start. Readers from different
// segments are fully independent and may be used concurrently.
func (p *SegmentPlan) Open(i int) (PacketReader, error) {
	if i < 0 || i >= len(p.segs) {
		return nil, fmt.Errorf("pcap: segment %d out of range [0,%d)", i, len(p.segs))
	}
	seg := p.segs[i]
	sec := io.NewSectionReader(p.ra, seg.Off, seg.Size())
	if p.ngStates != nil {
		st := p.ngStates[i]
		return newNgReaderAt(sec, st.order, st.ifaces), nil
	}
	return newReaderAt(sec, p.order, p.nanos, p.link, p.snapLen), nil
}

// planClassic probes for record boundaries in a classic pcap file.
func planClassic(ra io.ReaderAt, size int64, n int) (*SegmentPlan, error) {
	var hdr [24]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	p := &SegmentPlan{ra: ra}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case magicMicros:
		p.order = binary.LittleEndian
	case magicNanos:
		p.order, p.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		p.order = binary.BigEndian
	case magicNanosSwapped:
		p.order, p.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	p.snapLen = p.order.Uint32(hdr[16:20])
	p.link = LinkType(p.order.Uint32(hdr[20:24]))

	const dataOff = 24
	if size <= dataOff || n == 1 {
		p.segs = []Segment{{Off: dataOff, End: max64(size, dataOff)}}
		return p, nil
	}

	// The first record's timestamp anchors the sanity window for every
	// probe: captures span hours to months, not decades.
	refSec, haveRef := int64(0), false
	var rec [16]byte
	if _, err := ra.ReadAt(rec[:], dataOff); err == nil {
		refSec, haveRef = int64(p.order.Uint32(rec[0:4])), true
	}

	v := &segValidator{ra: ra, size: size, order: p.order, snapLen: p.snapLen, refSec: refSec, haveRef: haveRef}
	bounds := []int64{dataOff}
	span := size - dataOff
	for k := 1; k < n; k++ {
		target := dataOff + span*int64(k)/int64(n)
		if target <= bounds[len(bounds)-1] {
			continue
		}
		if off, ok := v.findBoundary(target); ok && off > bounds[len(bounds)-1] && off < size {
			bounds = append(bounds, off)
		}
		// A failed probe drops this boundary: the previous segment
		// simply extends further. Fewer readers, never a torn record.
	}
	for i, off := range bounds {
		end := size
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		p.segs = append(p.segs, Segment{Off: off, End: end})
	}
	return p, nil
}

// segValidator validates candidate record offsets in a classic pcap.
type segValidator struct {
	ra      io.ReaderAt
	size    int64
	order   binary.ByteOrder
	snapLen uint32
	refSec  int64
	haveRef bool

	win    []byte // scan window, so byte-wise probing does not ReadAt per byte
	winOff int64
}

// findBoundary scans forward from target for the first offset where a
// record-header chain validates.
func (v *segValidator) findBoundary(target int64) (int64, bool) {
	end := min64(target+segMaxScan, v.size)
	n := int(end - target)
	if n <= 0 {
		return 0, false
	}
	if cap(v.win) < n {
		v.win = make([]byte, n)
	}
	v.win = v.win[:n]
	if rn, err := v.ra.ReadAt(v.win, target); rn < n {
		if err != nil && err != io.EOF {
			return 0, false
		}
		v.win = v.win[:rn]
	}
	v.winOff = target
	for off := target; off < end; off++ {
		if v.validChain(off) {
			return off, true
		}
	}
	return 0, false
}

// header reads a 16-byte record header at off, from the window when
// possible.
func (v *segValidator) header(off int64) (sec, capLen, origLen uint32, ok bool) {
	if off+16 > v.size {
		return 0, 0, 0, false
	}
	var hdr [16]byte
	if w := off - v.winOff; w >= 0 && int(w)+16 <= len(v.win) {
		copy(hdr[:], v.win[w:w+16])
	} else if _, err := v.ra.ReadAt(hdr[:], off); err != nil {
		return 0, 0, 0, false
	}
	return v.order.Uint32(hdr[0:4]), v.order.Uint32(hdr[8:12]), v.order.Uint32(hdr[12:16]), true
}

// validChain accepts off as a record boundary when segChainHops
// successive headers pass the length and timestamp checks, or a
// shorter chain lands exactly on EOF (the tail of the file).
// Overrunning EOF mid-chain — a truncated record, or garbage — rejects
// the candidate.
func (v *segValidator) validChain(off int64) bool {
	snapBound := uint32(segSaneLen)
	if v.snapLen != 0 && v.snapLen < snapBound {
		snapBound = v.snapLen
	}
	prevSec := int64(-1)
	cur := off
	for hop := 0; hop < segChainHops; hop++ {
		sec32, capLen, origLen, ok := v.header(cur)
		if !ok {
			return false
		}
		if capLen > snapBound || origLen > segSaneLen || origLen < capLen {
			return false
		}
		sec := int64(sec32)
		if v.haveRef {
			// Within two days before the capture start to ~20 years
			// after: generous for multi-month captures, tight against
			// payload bytes masquerading as timestamps.
			if sec < v.refSec-2*86400 || sec > v.refSec+20*365*86400 {
				return false
			}
		}
		if prevSec >= 0 && (sec < prevSec-3600 || sec > prevSec+30*86400) {
			// Records are near-monotonic; allow reordering slack and
			// capture gaps, reject wild jumps.
			return false
		}
		prevSec = sec
		cur += 16 + int64(capLen)
		if cur == v.size {
			return true
		}
		if cur > v.size {
			return false
		}
	}
	return true
}

// planNg hops the self-framing pcapng block chain from the start of
// the file, snapshotting section state at each cut.
func planNg(ra io.ReaderAt, size int64, n int) (*SegmentPlan, error) {
	p := &SegmentPlan{ra: ra}
	st := &NgReader{}

	var off int64
	var hdr [8]byte
	var body []byte
	// first pass target spacing
	cutEvery := size / int64(n)
	if cutEvery < 1 {
		cutEvery = size
	}
	nextCut := cutEvery

	startSeg := func(at int64) {
		p.segs = append(p.segs, Segment{Off: at})
		snap := make([]ngInterface, len(st.ifaces))
		copy(snap, st.ifaces)
		p.ngStates = append(p.ngStates, ngState{order: st.order, ifaces: snap})
	}
	startSeg(0)

	for off < size {
		if _, err := ra.ReadAt(hdr[:], off); err != nil {
			return nil, fmt.Errorf("pcap: reading pcapng block header at %d: %w", off, err)
		}
		var typ, total uint32
		if st.order == nil {
			if binary.BigEndian.Uint32(hdr[0:4]) != blockSHB {
				return nil, ErrNotPcapNg
			}
			var magic [4]byte
			if _, err := ra.ReadAt(magic[:], off+8); err != nil {
				return nil, fmt.Errorf("pcap: reading byte-order magic: %w", err)
			}
			switch {
			case binary.LittleEndian.Uint32(magic[:]) == byteOrderMagic:
				st.order = binary.LittleEndian
			case binary.BigEndian.Uint32(magic[:]) == byteOrderMagic:
				st.order = binary.BigEndian
			default:
				return nil, fmt.Errorf("%w: byte-order magic % x", ErrNotPcapNg, magic)
			}
			typ = blockSHB
			total = st.order.Uint32(hdr[4:8])
			if total < 28 || total > 1<<24 {
				return nil, fmt.Errorf("%w: SHB length %d", ErrNgCorrupt, total)
			}
		} else {
			typ = st.order.Uint32(hdr[0:4])
			total = st.order.Uint32(hdr[4:8])
			if total < 12 || total%4 != 0 || total > 1<<24 {
				return nil, fmt.Errorf("%w: block %#08x length %d", ErrNgCorrupt, typ, total)
			}
		}
		if off+int64(total) > size {
			// Truncated final block: the plan stops at the last whole
			// block; the segment reader surfaces the same behavior a
			// sequential read would (EOF after the last whole block for
			// SectionReader semantics is close enough — the tail bytes
			// are unreadable either way). Extend the last segment to
			// cover the tail so the reader reports the truncation.
			break
		}
		// Trailing length self-check, mirroring the sequential reader.
		var trailer [4]byte
		if _, err := ra.ReadAt(trailer[:], off+int64(total)-4); err != nil {
			return nil, fmt.Errorf("pcap: reading pcapng block trailer at %d: %w", off, err)
		}
		if st.order.Uint32(trailer[:]) != total {
			return nil, fmt.Errorf("%w: trailing length mismatch at %d", ErrNgCorrupt, off)
		}
		// State-bearing blocks get a full body parse.
		switch typ {
		case blockSHB:
			if cap(body) < int(total) {
				body = make([]byte, total)
			}
			body = body[:total]
			if _, err := ra.ReadAt(body, off); err != nil {
				return nil, fmt.Errorf("pcap: reading SHB at %d: %w", off, err)
			}
			if err := st.parseSHB(body[8 : total-4]); err != nil {
				return nil, err
			}
		case blockIDB:
			if cap(body) < int(total) {
				body = make([]byte, total)
			}
			body = body[:total]
			if _, err := ra.ReadAt(body, off); err != nil {
				return nil, fmt.Errorf("pcap: reading IDB at %d: %w", off, err)
			}
			if err := st.parseIDB(body[8 : total-4]); err != nil {
				return nil, err
			}
		}
		off += int64(total)
		if off >= nextCut && off < size && len(p.segs) < n {
			p.segs[len(p.segs)-1].End = off
			startSeg(off)
			for nextCut <= off {
				nextCut += cutEvery
			}
		}
	}
	p.segs[len(p.segs)-1].End = size
	// Drop empty trailing segments (cut landed exactly at EOF).
	for len(p.segs) > 1 && p.segs[len(p.segs)-1].Size() <= 0 {
		p.segs = p.segs[:len(p.segs)-1]
		p.ngStates = p.ngStates[:len(p.ngStates)-1]
		p.segs[len(p.segs)-1].End = size
	}
	return p, nil
}

// newReaderAt builds a classic pcap Reader over a mid-file range,
// seeded with the global-header state instead of parsing one.
func newReaderAt(r io.Reader, order binary.ByteOrder, nanos bool, link LinkType, snapLen uint32) *Reader {
	return &Reader{r: buffered(r), order: order, nanos: nanos, linkType: link, snapLen: snapLen}
}

// newNgReaderAt builds a pcapng reader over a mid-file range, seeded
// with the section state a sequential read would have there.
func newNgReaderAt(r io.Reader, order binary.ByteOrder, ifaces []ngInterface) *NgReader {
	return &NgReader{r: buffered(r), order: order, ifaces: ifaces}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
