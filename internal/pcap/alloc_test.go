package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// buildCapture writes n same-sized records into a classic pcap byte
// slice for the allocation guards below.
func buildCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	payload := bytes.Repeat([]byte{0x5A}, 600)
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ci := CaptureInfo{Timestamp: base.Add(time.Duration(i) * time.Millisecond)}
		if err := w.WritePacket(ci, payload); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReadPacketIntoAllocCeiling pins the scratch-reusing read path:
// draining a whole capture through one reused buffer must cost a small
// per-capture constant (reader setup plus the single scratch growth),
// not a per-packet allocation. 256 packets per run would blow the
// ceiling immediately if any per-record make() crept back in.
func TestReadPacketIntoAllocCeiling(t *testing.T) {
	capture := buildCapture(t, 256)
	allocs := testing.AllocsPerRun(20, func() {
		r, err := NewReader(bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		var scratch []byte
		for {
			data, _, err := r.ReadPacketInto(scratch)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			scratch = data
		}
	})
	if allocs > 8 {
		t.Errorf("draining 256 packets cost %.1f allocations, want <= 8 per capture", allocs)
	}
}
