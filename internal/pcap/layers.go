package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Layer decode errors.
var (
	ErrShortEthernet = errors.New("pcap: frame shorter than Ethernet header")
	ErrShortIPv4     = errors.New("pcap: packet shorter than IPv4 header")
	ErrShortTCP      = errors.New("pcap: segment shorter than TCP header")
	ErrNotIPv4       = errors.New("pcap: not an IPv4 packet")
	ErrNotTCP        = errors.New("pcap: not a TCP segment")
)

// EtherType values used by the decoder.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers used by the decoder.
const (
	IPProtoTCP = 6
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
	Payload   []byte
}

// DecodeEthernet parses an Ethernet II frame.
func DecodeEthernet(data []byte) (Ethernet, error) {
	if len(data) < 14 {
		return Ethernet{}, ErrShortEthernet
	}
	var e Ethernet
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.Payload = data[14:]
	return e, nil
}

// Serialize renders the frame (header plus payload).
func (e Ethernet) Serialize() []byte {
	out := make([]byte, 14+len(e.Payload))
	copy(out[0:6], e.Dst[:])
	copy(out[6:12], e.Src[:])
	binary.BigEndian.PutUint16(out[12:14], e.EtherType)
	copy(out[14:], e.Payload)
	return out
}

// IPv4 is a decoded IPv4 header. Options are retained raw.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	Options  []byte
	Payload  []byte
}

// DecodeIPv4 parses an IPv4 packet and validates its header checksum.
func DecodeIPv4(data []byte) (IPv4, error) {
	if len(data) < 20 {
		return IPv4{}, ErrShortIPv4
	}
	if data[0]>>4 != 4 {
		return IPv4{}, ErrNotIPv4
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < 20 || len(data) < ihl {
		return IPv4{}, fmt.Errorf("%w: IHL %d", ErrShortIPv4, ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ihl || totalLen > len(data) {
		return IPv4{}, fmt.Errorf("pcap: IPv4 total length %d outside [%d,%d]", totalLen, ihl, len(data))
	}
	if Checksum(data[:ihl]) != 0 {
		return IPv4{}, errors.New("pcap: IPv4 header checksum mismatch")
	}
	var p IPv4
	p.TOS = data[1]
	p.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	p.Flags = uint8(ff >> 13)
	p.FragOff = ff & 0x1FFF
	p.TTL = data[8]
	p.Protocol = data[9]
	src, _ := netip.AddrFromSlice(data[12:16])
	dst, _ := netip.AddrFromSlice(data[16:20])
	p.Src, p.Dst = src, dst
	p.Options = data[20:ihl]
	p.Payload = data[ihl:totalLen]
	return p, nil
}

// Serialize renders the packet with a freshly computed header checksum.
func (p IPv4) Serialize() ([]byte, error) {
	if !p.Src.Is4() || !p.Dst.Is4() {
		return nil, errors.New("pcap: IPv4 serialize requires 4-byte addresses")
	}
	if len(p.Options)%4 != 0 {
		return nil, errors.New("pcap: IPv4 options must pad to 32-bit words")
	}
	ihl := 20 + len(p.Options)
	totalLen := ihl + len(p.Payload)
	if totalLen > 0xFFFF {
		return nil, fmt.Errorf("pcap: IPv4 packet length %d overflows", totalLen)
	}
	out := make([]byte, totalLen)
	out[0] = 0x40 | uint8(ihl/4)
	out[1] = p.TOS
	binary.BigEndian.PutUint16(out[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(out[4:6], p.ID)
	binary.BigEndian.PutUint16(out[6:8], uint16(p.Flags)<<13|p.FragOff&0x1FFF)
	ttl := p.TTL
	if ttl == 0 {
		ttl = 64
	}
	out[8] = ttl
	out[9] = p.Protocol
	src := p.Src.As4()
	dst := p.Dst.As4()
	copy(out[12:16], src[:])
	copy(out[16:20], dst[:])
	copy(out[20:ihl], p.Options)
	binary.BigEndian.PutUint16(out[10:12], Checksum(out[:ihl]))
	copy(out[ihl:], p.Payload)
	return out, nil
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// TCP is a decoded TCP header plus payload.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Urgent           uint16
	Options          []byte
	Payload          []byte
}

// Flag accessors.
func (t TCP) SYN() bool { return t.Flags&FlagSYN != 0 }
func (t TCP) ACK() bool { return t.Flags&FlagACK != 0 }
func (t TCP) FIN() bool { return t.Flags&FlagFIN != 0 }
func (t TCP) RST() bool { return t.Flags&FlagRST != 0 }
func (t TCP) PSH() bool { return t.Flags&FlagPSH != 0 }

// FlagString renders the flags Wireshark-style, e.g. "SYN,ACK".
func (t TCP) FlagString() string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if t.Flags&n.bit != 0 {
			if out != "" {
				out += ","
			}
			out += n.name
		}
	}
	return out
}

// DecodeTCP parses a TCP segment. The checksum is not verified here
// because verification needs the IP pseudo-header; use VerifyTCPChecksum.
func DecodeTCP(data []byte) (TCP, error) {
	if len(data) < 20 {
		return TCP{}, ErrShortTCP
	}
	off := int(data[12]>>4) * 4
	if off < 20 || len(data) < off {
		return TCP{}, fmt.Errorf("%w: data offset %d", ErrShortTCP, off)
	}
	return TCP{
		SrcPort: binary.BigEndian.Uint16(data[0:2]),
		DstPort: binary.BigEndian.Uint16(data[2:4]),
		Seq:     binary.BigEndian.Uint32(data[4:8]),
		Ack:     binary.BigEndian.Uint32(data[8:12]),
		Flags:   data[13] & 0x3F,
		Window:  binary.BigEndian.Uint16(data[14:16]),
		Urgent:  binary.BigEndian.Uint16(data[18:20]),
		Options: data[20:off],
		Payload: data[off:],
	}, nil
}

// Serialize renders the segment with the checksum computed against the
// given source and destination addresses.
func (t TCP) Serialize(src, dst netip.Addr) ([]byte, error) {
	if len(t.Options)%4 != 0 {
		return nil, errors.New("pcap: TCP options must pad to 32-bit words")
	}
	off := 20 + len(t.Options)
	out := make([]byte, off+len(t.Payload))
	binary.BigEndian.PutUint16(out[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], t.DstPort)
	binary.BigEndian.PutUint32(out[4:8], t.Seq)
	binary.BigEndian.PutUint32(out[8:12], t.Ack)
	out[12] = uint8(off/4) << 4
	out[13] = t.Flags
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(out[14:16], win)
	binary.BigEndian.PutUint16(out[18:20], t.Urgent)
	copy(out[20:off], t.Options)
	copy(out[off:], t.Payload)
	cs, err := tcpChecksum(out, src, dst)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(out[16:18], cs)
	return out, nil
}

// VerifyTCPChecksum checks a raw TCP segment against its pseudo-header.
func VerifyTCPChecksum(segment []byte, src, dst netip.Addr) error {
	if len(segment) < 20 {
		return ErrShortTCP
	}
	cs, err := tcpChecksum(segment, src, dst)
	if err != nil {
		return err
	}
	got := binary.BigEndian.Uint16(segment[16:18])
	// tcpChecksum computes over the segment including its checksum
	// field; for a valid segment the folded sum is zero, meaning the
	// computed value equals the stored one.
	if cs != got {
		return fmt.Errorf("pcap: TCP checksum %#04x, want %#04x", got, cs)
	}
	return nil
}

// tcpChecksum computes the TCP checksum for segment with the checksum
// field treated as zero.
func tcpChecksum(segment []byte, src, dst netip.Addr) (uint16, error) {
	if !src.Is4() || !dst.Is4() {
		return 0, errors.New("pcap: TCP checksum requires IPv4 addresses")
	}
	s4 := src.As4()
	d4 := dst.As4()
	var pseudo [12]byte
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = IPProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	sum := checksumPartial(pseudo[:], 0)
	sum = checksumPartial(segment[:16], sum)
	// Skip the checksum field itself (bytes 16-17).
	sum = checksumPartial(segment[18:], sum)
	return foldChecksum(sum), nil
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	return foldChecksum(checksumPartial(data, 0))
}

func checksumPartial(data []byte, sum uint32) uint32 {
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}

// Packet bundles the decoded layers of one captured frame. Eth is the
// zero value (HasEth false) on raw-IP captures; it is held by value so
// decoding a packet performs no heap allocation.
type Packet struct {
	Info   CaptureInfo
	Eth    Ethernet
	HasEth bool
	IP     IPv4
	TCP    TCP
}

// DecodePacket parses one record according to the capture's link type.
// Frames that are not IPv4/TCP return an error; callers typically skip
// them (SCADA taps also see ARP, ICCP on other ports, etc.).
func DecodePacket(link LinkType, ci CaptureInfo, data []byte) (Packet, error) {
	p := Packet{Info: ci}
	ipBytes := data
	if link == LinkTypeEthernet {
		eth, err := DecodeEthernet(data)
		if err != nil {
			return p, err
		}
		if eth.EtherType != EtherTypeIPv4 {
			return p, fmt.Errorf("%w: ethertype %#04x", ErrNotIPv4, eth.EtherType)
		}
		p.Eth, p.HasEth = eth, true
		ipBytes = eth.Payload
	}
	ip, err := DecodeIPv4(ipBytes)
	if err != nil {
		return p, err
	}
	if ip.Protocol != IPProtoTCP {
		return p, fmt.Errorf("%w: protocol %d", ErrNotTCP, ip.Protocol)
	}
	p.IP = ip
	tcp, err := DecodeTCP(ip.Payload)
	if err != nil {
		return p, err
	}
	p.TCP = tcp
	return p, nil
}

// PeekIPv4Pair extracts the IPv4 source and destination addresses from
// a raw frame without decoding or validating the full packet. It is the
// cheap routing peek the streaming reader uses to pick a shard before
// handing the frame to a worker for the real decode. ok is false only
// when DecodePacket would certainly fail too (frame too short, not
// IPv4), so every packet the offline path would analyze gets a valid
// pair; frames that fail the peek still fail the worker-side decode and
// are skipped identically to the offline path.
func PeekIPv4Pair(link LinkType, data []byte) (src, dst netip.Addr, ok bool) {
	if link == LinkTypeEthernet {
		if len(data) < 14 || binary.BigEndian.Uint16(data[12:14]) != EtherTypeIPv4 {
			return netip.Addr{}, netip.Addr{}, false
		}
		data = data[14:]
	}
	if len(data) < 20 || data[0]>>4 != 4 {
		return netip.Addr{}, netip.Addr{}, false
	}
	src, _ = netip.AddrFromSlice(data[12:16])
	dst, _ = netip.AddrFromSlice(data[16:20])
	return src, dst, true
}

// BuildTCPPacket serializes a full Ethernet/IPv4/TCP frame. MAC
// addresses are derived from the IPv4 addresses so frames are stable
// and self-consistent across a synthetic capture.
func BuildTCPPacket(src, dst netip.AddrPort, tcp TCP) ([]byte, error) {
	tcp.SrcPort = src.Port()
	tcp.DstPort = dst.Port()
	seg, err := tcp.Serialize(src.Addr(), dst.Addr())
	if err != nil {
		return nil, err
	}
	ip := IPv4{
		TTL:      64,
		Protocol: IPProtoTCP,
		Src:      src.Addr(),
		Dst:      dst.Addr(),
		Payload:  seg,
	}
	ipBytes, err := ip.Serialize()
	if err != nil {
		return nil, err
	}
	eth := Ethernet{
		Src:       macFor(src.Addr()),
		Dst:       macFor(dst.Addr()),
		EtherType: EtherTypeIPv4,
		Payload:   ipBytes,
	}
	return eth.Serialize(), nil
}

// macFor derives a locally administered MAC from an IPv4 address.
func macFor(a netip.Addr) [6]byte {
	b := a.As4()
	return [6]byte{0x02, 0x00, b[0], b[1], b[2], b[3]}
}
