package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"uncharted/internal/obs"
)

// pcapng block types.
const (
	blockSHB = 0x0A0D0D0A // section header
	blockIDB = 0x00000001 // interface description
	blockEPB = 0x00000006 // enhanced packet
	blockSPB = 0x00000003 // simple packet
)

// byteOrderMagic inside a section header block.
const byteOrderMagic = 0x1A2B3C4D

// NgReader decodes pcapng capture streams (the format Wireshark writes
// by default since 1.8). Only reading is supported; the synthesizer
// always writes classic pcap.
type NgReader struct {
	r     io.Reader
	order binary.ByteOrder
	// interfaces seen in the current section, in declaration order.
	ifaces  []ngInterface
	metrics *readerMetrics
	// scratch holds the current block body; it grows to the largest
	// block seen and is reused for every subsequent block, so steady-
	// state block reads allocate nothing.
	scratch []byte
}

// Instrument books per-record counters (packets, bytes, truncated
// records) into reg under the uncharted_pcap_* names.
func (ng *NgReader) Instrument(reg *obs.Registry) {
	ng.metrics = newReaderMetrics(reg)
}

type ngInterface struct {
	link    LinkType
	snapLen uint32
	// tsDivisor converts raw timestamps to seconds (units per second).
	tsDivisor uint64
}

// pcapng errors.
var (
	ErrNotPcapNg   = errors.New("pcap: not a pcapng stream")
	ErrNgCorrupt   = errors.New("pcap: corrupt pcapng block")
	ErrNgInterface = errors.New("pcap: packet references an undeclared interface")
)

// NewNgReader parses the leading section header block. Unless r is
// already buffered (implements io.ByteReader) it is wrapped in a
// bufio.Reader.
func NewNgReader(r io.Reader) (*NgReader, error) {
	ng := &NgReader{r: buffered(r)}
	typ, body, err := ng.readBlockHeader()
	if err != nil {
		return nil, err
	}
	if typ != blockSHB {
		return nil, fmt.Errorf("%w: first block type %#08x", ErrNotPcapNg, typ)
	}
	if err := ng.parseSHB(body); err != nil {
		return nil, err
	}
	// Scan ahead to the first interface description so LinkType is
	// answerable before the first packet; packet blocks cannot
	// legally precede their interface.
	for len(ng.ifaces) == 0 {
		typ, body, err := ng.readBlockHeader()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch typ {
		case blockIDB:
			if err := ng.parseIDB(body); err != nil {
				return nil, err
			}
		case blockEPB, blockSPB:
			return nil, ErrNgInterface
		default:
			// skip
		}
	}
	return ng, nil
}

// readBlockHeader reads one block and returns its type and body
// (between the leading and trailing length fields). Byte order for the
// very first SHB is sniffed from the byte-order magic.
func (ng *NgReader) readBlockHeader() (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(ng.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: reading pcapng block header: %w", err)
	}
	if ng.order == nil {
		// The SHB starts 0A 0D 0D 0A regardless of endianness; the
		// byte-order magic is the first body word. Peek at it.
		if binary.BigEndian.Uint32(hdr[0:4]) != blockSHB {
			return 0, nil, ErrNotPcapNg
		}
		var magic [4]byte
		if _, err := io.ReadFull(ng.r, magic[:]); err != nil {
			return 0, nil, fmt.Errorf("pcap: reading byte-order magic: %w", err)
		}
		switch binary.LittleEndian.Uint32(magic[:]) {
		case byteOrderMagic:
			ng.order = binary.LittleEndian
		default:
			if binary.BigEndian.Uint32(magic[:]) != byteOrderMagic {
				return 0, nil, fmt.Errorf("%w: byte-order magic % x", ErrNotPcapNg, magic)
			}
			ng.order = binary.BigEndian
		}
		total := ng.order.Uint32(hdr[4:8])
		if total < 28 || total > 1<<24 {
			return 0, nil, fmt.Errorf("%w: SHB length %d", ErrNgCorrupt, total)
		}
		body := ng.growScratch(int(total - 12))
		if _, err := io.ReadFull(ng.r, body); err != nil {
			return 0, nil, fmt.Errorf("pcap: reading SHB: %w", err)
		}
		// body = byte-order magic already consumed; body holds
		// version + section length + options + trailing length.
		full := append(magic[:], body[:len(body)-4]...)
		return blockSHB, full, nil
	}
	typ := ng.order.Uint32(hdr[0:4])
	total := ng.order.Uint32(hdr[4:8])
	if total < 12 || total%4 != 0 || total > 1<<24 {
		return 0, nil, fmt.Errorf("%w: block %#08x length %d", ErrNgCorrupt, typ, total)
	}
	body := ng.growScratch(int(total - 8))
	if _, err := io.ReadFull(ng.r, body); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading block %#08x: %w", typ, err)
	}
	// Verify the trailing length copy.
	if ng.order.Uint32(body[len(body)-4:]) != total {
		return 0, nil, fmt.Errorf("%w: trailing length mismatch", ErrNgCorrupt)
	}
	return typ, body[:len(body)-4], nil
}

// growScratch returns the reader's scratch buffer sized to n bytes,
// growing it when a larger block arrives. The returned slice is only
// valid until the next block read.
func (ng *NgReader) growScratch(n int) []byte {
	if cap(ng.scratch) < n {
		ng.scratch = make([]byte, n)
	}
	ng.scratch = ng.scratch[:n]
	return ng.scratch
}

func (ng *NgReader) parseSHB(body []byte) error {
	if len(body) < 16 {
		return ErrNgCorrupt
	}
	major := ng.order.Uint16(body[4:6])
	if major != 1 {
		return fmt.Errorf("pcap: unsupported pcapng major version %d", major)
	}
	// New section: interfaces reset.
	ng.ifaces = nil
	return nil
}

func (ng *NgReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return ErrNgCorrupt
	}
	iface := ngInterface{
		link:      LinkType(ng.order.Uint16(body[0:2])),
		snapLen:   ng.order.Uint32(body[4:8]),
		tsDivisor: 1_000_000, // default microseconds
	}
	// Options: code(2) len(2) value(padded to 4)...
	opts := body[8:]
	for len(opts) >= 4 {
		code := ng.order.Uint16(opts[0:2])
		olen := int(ng.order.Uint16(opts[2:4]))
		opts = opts[4:]
		if olen > len(opts) {
			return ErrNgCorrupt
		}
		val := opts[:olen]
		if code == 0 { // opt_endofopt
			break
		}
		if code == 9 && olen >= 1 { // if_tsresol
			res := val[0]
			if exp := res & 0x7F; res&0x80 != 0 {
				if exp < 63 {
					iface.tsDivisor = 1 << exp
				}
			} else {
				d := uint64(1)
				for i := byte(0); i < exp && d < math.MaxUint64/10; i++ {
					d *= 10
				}
				iface.tsDivisor = d
			}
		}
		pad := (4 - olen%4) % 4
		if olen+pad > len(opts) {
			break
		}
		opts = opts[olen+pad:]
	}
	if iface.tsDivisor == 0 {
		iface.tsDivisor = 1_000_000
	}
	ng.ifaces = append(ng.ifaces, iface)
	return nil
}

// ReadPacket returns the next captured packet in a freshly allocated
// buffer, skipping non-packet blocks. io.EOF signals a clean end of
// stream. Hot paths should prefer ReadPacketInto.
func (ng *NgReader) ReadPacket() ([]byte, CaptureInfo, error) {
	return ng.ReadPacketInto(nil)
}

// ReadPacketInto reads the next packet into scratch (grown as needed)
// and returns the slice holding exactly the packet bytes. Same
// ownership contract as Reader.ReadPacketInto: the result is valid
// until the scratch is reused, and passing nil allocates.
func (ng *NgReader) ReadPacketInto(scratch []byte) ([]byte, CaptureInfo, error) {
	for {
		typ, body, err := ng.readBlockHeader()
		if err != nil {
			if err != io.EOF && truncated(err) {
				ng.metrics.noteShortBody()
			}
			return nil, CaptureInfo{}, err
		}
		switch typ {
		case blockSHB:
			if err := ng.parseSHB(body); err != nil {
				return nil, CaptureInfo{}, err
			}
		case blockIDB:
			if err := ng.parseIDB(body); err != nil {
				return nil, CaptureInfo{}, err
			}
		case blockEPB:
			data, ci, err := ng.parseEPB(body, scratch)
			if err == nil {
				ng.metrics.noteRead(ci.CaptureLength)
			} else {
				ng.metrics.noteShortHeader()
			}
			return data, ci, err
		case blockSPB:
			data, ci, err := ng.parseSPB(body, scratch)
			if err == nil {
				ng.metrics.noteRead(ci.CaptureLength)
			} else {
				ng.metrics.noteShortHeader()
			}
			return data, ci, err
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

func (ng *NgReader) parseEPB(body, scratch []byte) ([]byte, CaptureInfo, error) {
	if len(body) < 20 {
		return nil, CaptureInfo{}, ErrNgCorrupt
	}
	ifaceID := ng.order.Uint32(body[0:4])
	if int(ifaceID) >= len(ng.ifaces) {
		return nil, CaptureInfo{}, ErrNgInterface
	}
	iface := ng.ifaces[ifaceID]
	tsRaw := uint64(ng.order.Uint32(body[4:8]))<<32 | uint64(ng.order.Uint32(body[8:12]))
	capLen := int(ng.order.Uint32(body[12:16]))
	origLen := int(ng.order.Uint32(body[16:20]))
	if capLen < 0 || 20+capLen > len(body) {
		return nil, CaptureInfo{}, ErrNgCorrupt
	}
	// The block body lives in the reader's scratch; copy the packet out
	// into the caller's buffer before the next block overwrites it.
	data := grow(scratch, capLen)
	copy(data, body[20:20+capLen])
	div := iface.tsDivisor
	sec := tsRaw / div
	frac := tsRaw % div
	nanos := int64(frac) * int64(time.Second) / int64(div)
	return data, CaptureInfo{
		Timestamp:     time.Unix(int64(sec), nanos).UTC(),
		CaptureLength: capLen,
		Length:        origLen,
	}, nil
}

func (ng *NgReader) parseSPB(body, scratch []byte) ([]byte, CaptureInfo, error) {
	if len(body) < 4 || len(ng.ifaces) == 0 {
		return nil, CaptureInfo{}, ErrNgCorrupt
	}
	origLen := int(ng.order.Uint32(body[0:4]))
	capLen := origLen
	iface := ng.ifaces[0]
	if iface.snapLen != 0 && capLen > int(iface.snapLen) {
		capLen = int(iface.snapLen)
	}
	if 4+capLen > len(body) {
		capLen = len(body) - 4
	}
	data := grow(scratch, capLen)
	copy(data, body[4:4+capLen])
	return data, CaptureInfo{CaptureLength: capLen, Length: origLen}, nil
}

// LinkType returns the first interface's link type (Ethernet when no
// interface block has been seen yet).
func (ng *NgReader) LinkType() LinkType {
	if len(ng.ifaces) == 0 {
		return LinkTypeEthernet
	}
	return ng.ifaces[0].link
}

// PacketReader is the common surface of the classic and pcapng
// readers. ReadPacket hands back a freshly allocated buffer;
// ReadPacketInto reuses a caller-supplied scratch (see
// Reader.ReadPacketInto for the ownership contract).
type PacketReader interface {
	ReadPacket() ([]byte, CaptureInfo, error)
	ReadPacketInto(scratch []byte) ([]byte, CaptureInfo, error)
	LinkType() LinkType
}

// ReadPacketBuffer reads the next packet from pr into a Buffer drawn
// from pool. On success the caller owns the Buffer and must Release it
// exactly once when the packet bytes are no longer needed; on error
// (including io.EOF) the buffer has already been recycled.
func ReadPacketBuffer(pr PacketReader, pool *BufferPool) (*Buffer, CaptureInfo, error) {
	b := pool.Get()
	data, ci, err := pr.ReadPacketInto(b.Data[:cap(b.Data)])
	if err != nil {
		b.Release()
		return nil, CaptureInfo{}, err
	}
	b.Data = data
	return b, ci, nil
}

// NewAutoReader sniffs the capture format (classic pcap in either
// endianness, with µs or ns timestamps, or pcapng) and returns the
// matching reader.
func NewAutoReader(r io.Reader) (PacketReader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("pcap: sniffing capture format: %w", err)
	}
	if binary.BigEndian.Uint32(magic) == blockSHB {
		return NewNgReader(br)
	}
	return NewReader(br)
}
