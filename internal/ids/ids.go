// Package ids implements the paper's future-work proposal (§7): a
// whitelisting intrusion detection system for IEC 104 networks that
// correlates *cyber* profiles (the Markov / N-gram message-sequence
// models of §6.3) with *physical* profiles (the measurement semantics
// and event signatures of §6.4).
//
// A Baseline is trained from a known-good capture: which endpoints
// exist, which APDU tokens each logical connection uses, the global
// bigram language model, which (station, IOA, type) points are
// legitimate, and each point's operating range. Scanning a later
// capture against the baseline yields typed alerts; the package
// detects exactly the Industroyer-style behaviours the paper warns
// about — reconnaissance via interrogation or iterative reads from
// unexpected parties, control commands from new endpoints, setpoints
// outside physical ranges and breaker commands that contradict the
// whitelisted activation signature.
package ids

import (
	"fmt"
	"math"
	"net/netip"
	"sort"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/physical"
)

// AlertKind classifies a finding.
type AlertKind string

// Alert kinds.
const (
	// AlertNewEndpoint: an address never seen in the baseline speaks
	// IEC 104.
	AlertNewEndpoint AlertKind = "new-endpoint"
	// AlertNewConnection: a known server/outstation pair that never
	// communicated before.
	AlertNewConnection AlertKind = "new-connection"
	// AlertNewToken: a connection used an APDU token outside its
	// baseline vocabulary (e.g. a command type on a monitoring link).
	AlertNewToken AlertKind = "new-token"
	// AlertSequence: the connection's token stream scores far above
	// the baseline bigram model's perplexity.
	AlertSequence AlertKind = "sequence-anomaly"
	// AlertUnknownPoint: an information object address never reported
	// in the baseline (Industroyer's IOA scanning).
	AlertUnknownPoint AlertKind = "unknown-point"
	// AlertValueRange: a measurement or setpoint left its baseline
	// operating envelope.
	AlertValueRange AlertKind = "value-out-of-range"
	// AlertCommandBurst: a connection issued far more control-
	// direction commands than the baseline rate allows.
	AlertCommandBurst AlertKind = "command-burst"
	// AlertDialectChange: an endpoint switched wire dialect (a
	// different device answering on the same address).
	AlertDialectChange AlertKind = "dialect-change"
	// AlertDrift: the streaming engine's rolling profile diverged from
	// its stored baseline profile (raised by the drift engine, not by
	// per-shard monitors — drift is a property of the merged state).
	AlertDrift AlertKind = "drift"
)

// Alert is one finding.
type Alert struct {
	Kind     AlertKind
	Severity int // 1 (info) .. 3 (critical)
	Subject  string
	Detail   string
}

func (a Alert) String() string {
	return fmt.Sprintf("[sev%d %s] %s: %s", a.Severity, a.Kind, a.Subject, a.Detail)
}

// pointKey identifies one whitelisted information object.
type pointKey struct {
	Station string
	IOA     uint32
}

// valueRange is a point's baseline operating envelope.
type valueRange struct {
	Min, Max float64
	Type     physical.PointType
	Command  bool
	Samples  int
}

// connKey identifies a logical connection by names.
type connKey struct {
	Server, Outstation string
}

// Baseline is the trained whitelist.
type Baseline struct {
	endpoints map[netip.Addr]bool
	conns     map[connKey]map[string]bool // allowed token vocabulary
	bigram    *markov.NGram
	points    map[pointKey]*valueRange
	profiles  map[string]iec104.Profile
	// commandRate is the per-connection commands-per-ASDU baseline.
	commandRate map[connKey]float64

	// PerplexityFactor: a scanned connection alerts when its bigram
	// perplexity exceeds this multiple of the worst baseline
	// connection. Default 2.
	PerplexityFactor float64
	// RangeMargin widens [min,max] by this fraction of the span
	// before alerting. Default 0.25.
	RangeMargin float64

	worstPerplexity float64
}

// Train builds a baseline from an analyzed known-good capture.
func Train(a *core.Analyzer) (*Baseline, error) {
	b := &Baseline{
		endpoints:        make(map[netip.Addr]bool),
		conns:            make(map[connKey]map[string]bool),
		points:           make(map[pointKey]*valueRange),
		profiles:         make(map[string]iec104.Profile),
		commandRate:      make(map[connKey]float64),
		PerplexityFactor: 2,
		RangeMargin:      0.25,
	}
	var err error
	b.bigram, err = markov.NewNGram(2)
	if err != nil {
		return nil, err
	}

	for _, key := range a.ConnKeys() {
		b.endpoints[key.Server] = true
		b.endpoints[key.Outstation] = true
		ck := connKey{Server: a.Name(key.Server), Outstation: a.Name(key.Outstation)}
		vocab, ok := b.conns[ck]
		if !ok {
			vocab = make(map[string]bool)
			b.conns[ck] = vocab
		}
		stream := a.TokenStream(key)
		b.bigram.Train(stream)
		commands := 0
		for _, t := range stream {
			vocab[t.String()] = true
			if t.IsCommand() {
				commands++
			}
		}
		if len(stream) > 0 {
			rate := float64(commands) / float64(len(stream))
			if rate > b.commandRate[ck] {
				b.commandRate[ck] = rate
			}
		}
	}
	// Baseline perplexity: the worst-scoring baseline connection sets
	// the detection floor.
	for _, key := range a.ConnKeys() {
		stream := a.TokenStream(key)
		if len(stream) < 2 {
			continue
		}
		p, err := b.bigram.Perplexity(stream)
		if err == nil && p > b.worstPerplexity {
			b.worstPerplexity = p
		}
	}

	for _, s := range a.Physical().All() {
		pk := pointKey{Station: s.Key.Station, IOA: s.Key.IOA}
		vr, ok := b.points[pk]
		if !ok {
			vr = &valueRange{Min: math.Inf(1), Max: math.Inf(-1), Type: s.Type, Command: s.Command}
			b.points[pk] = vr
		}
		for _, smp := range s.Samples {
			if smp.V < vr.Min {
				vr.Min = smp.V
			}
			if smp.V > vr.Max {
				vr.Max = smp.V
			}
			vr.Samples++
		}
	}

	for _, sc := range a.Compliance().Stations {
		if sc.Detected {
			b.profiles[sc.Name] = sc.Profile
		}
	}
	return b, nil
}

// Size summarises the trained whitelist (for reports).
func (b *Baseline) Size() (endpoints, connections, points int) {
	return len(b.endpoints), len(b.conns), len(b.points)
}

// Scan evaluates an analyzed capture against the baseline.
func (b *Baseline) Scan(a *core.Analyzer) []Alert {
	var alerts []Alert
	add := func(kind AlertKind, sev int, subject, format string, args ...any) {
		alerts = append(alerts, Alert{
			Kind: kind, Severity: sev, Subject: subject,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Deduplicate per-scan without mutating the trained baseline: a
	// rogue endpoint must alert again on every capture it appears in.
	alerted := map[netip.Addr]bool{}
	for _, key := range a.ConnKeys() {
		serverName := a.Name(key.Server)
		outName := a.Name(key.Outstation)
		label := serverName + "-" + outName
		for _, addr := range []netip.Addr{key.Server, key.Outstation} {
			if !b.endpoints[addr] && !alerted[addr] {
				add(AlertNewEndpoint, 3, a.Name(addr),
					"address %s speaks IEC 104 but is not in the baseline", addr)
				alerted[addr] = true
			}
		}
		ck := connKey{Server: serverName, Outstation: outName}
		vocab, known := b.conns[ck]
		if !known {
			add(AlertNewConnection, 2, label, "no baseline traffic between these endpoints")
		}
		stream := a.TokenStream(key)
		commands := 0
		newTokens := map[string]bool{}
		for _, t := range stream {
			if known && !vocab[t.String()] && !newTokens[t.String()] {
				newTokens[t.String()] = true
				sev := 1
				if t.IsCommand() {
					sev = 3 // a brand-new command type is the Industroyer pattern
				}
				add(AlertNewToken, sev, label, "token %s outside baseline vocabulary", t)
			}
			if t.IsCommand() {
				commands++
			}
		}
		if len(stream) >= 4 {
			if p, err := b.bigram.Perplexity(stream); err == nil &&
				b.worstPerplexity > 0 && p > b.PerplexityFactor*b.worstPerplexity {
				add(AlertSequence, 2, label,
					"token-sequence perplexity %.1f exceeds baseline ceiling %.1f", p, b.worstPerplexity)
			}
			rate := float64(commands) / float64(len(stream))
			base := b.commandRate[ck]
			if rate > 0.2 && rate > 4*base+0.05 {
				add(AlertCommandBurst, 3, label,
					"command rate %.0f%% of APDUs (baseline %.0f%%)", 100*rate, 100*base)
			}
		}
	}

	for _, s := range a.Physical().All() {
		pk := pointKey{Station: s.Key.Station, IOA: s.Key.IOA}
		vr, known := b.points[pk]
		if !known {
			sev := 1
			if s.Command {
				sev = 3
			}
			add(AlertUnknownPoint, sev, pk.Station,
				"IOA %d (%s) never seen in baseline", pk.IOA, s.Type.Acronym())
			continue
		}
		lo, hi := b.bounds(vr)
		for _, smp := range s.Samples {
			if smp.V < lo || smp.V > hi {
				sev := 2
				if s.Command {
					sev = 3
				}
				add(AlertValueRange, sev, fmt.Sprintf("%s/%d", pk.Station, pk.IOA),
					"value %.4g outside baseline [%.4g, %.4g]", smp.V, vr.Min, vr.Max)
				break // one alert per series
			}
		}
	}

	for _, sc := range a.Compliance().Stations {
		if !sc.Detected {
			continue
		}
		if prev, ok := b.profiles[sc.Name]; ok && prev != sc.Profile {
			add(AlertDialectChange, 2, sc.Name,
				"dialect changed %s -> %s (different device answering?)", prev, sc.Profile)
		}
	}

	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].Severity != alerts[j].Severity {
			return alerts[i].Severity > alerts[j].Severity
		}
		if alerts[i].Kind != alerts[j].Kind {
			return alerts[i].Kind < alerts[j].Kind
		}
		return alerts[i].Subject < alerts[j].Subject
	})
	return alerts
}

// CountBySeverity tallies alerts per severity 1..3.
func CountBySeverity(alerts []Alert) [4]int {
	var out [4]int
	for _, a := range alerts {
		if a.Severity >= 1 && a.Severity <= 3 {
			out[a.Severity]++
		}
	}
	return out
}
