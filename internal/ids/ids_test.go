package ids

import (
	"bytes"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// buildAnalyzer synthesizes a capture (optionally with an injected
// attack) and runs the pipeline.
func buildAnalyzer(t testing.TB, seed int64, attack *scadasim.AttackConfig) (*core.Analyzer, *scadasim.Trace) {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = 4 * time.Minute
	cfg.CyclePeriod = 100 * time.Minute // keep baseline vocabularies stable
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attack != nil {
		if attack.At.IsZero() {
			attack.At = cfg.Start.Add(2 * time.Minute)
		}
		if _, err := sim.InjectAttack(tr, *attack); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(&buf); err != nil {
		t.Fatal(err)
	}
	return a, tr
}

func TestCleanTrafficScansQuiet(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	eps, conns, points := b.Size()
	if eps == 0 || conns == 0 || points == 0 {
		t.Fatalf("empty baseline: %d/%d/%d", eps, conns, points)
	}
	// A re-run with a different seed (same network, different noise)
	// must stay almost silent: no critical alerts.
	otherA, _ := buildAnalyzer(t, 22, nil)
	alerts := b.Scan(otherA)
	sev := CountBySeverity(alerts)
	if sev[3] != 0 {
		for _, al := range alerts {
			if al.Severity == 3 {
				t.Errorf("critical alert on clean traffic: %v", al)
			}
		}
	}
}

func TestDetectsReconAttack(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	attackedA, tr := buildAnalyzer(t, 21, &scadasim.AttackConfig{Kind: scadasim.AttackRecon})
	if tr.Truth.Attack == nil || tr.Truth.Attack.Packets == 0 {
		t.Fatal("attack not injected")
	}
	alerts := b.Scan(attackedA)
	kinds := map[AlertKind]int{}
	for _, al := range alerts {
		kinds[al.Kind]++
	}
	if kinds[AlertNewEndpoint] == 0 {
		t.Errorf("rogue endpoint not flagged: %v", kinds)
	}
	if kinds[AlertNewConnection] == 0 {
		t.Errorf("rogue connections not flagged: %v", kinds)
	}
	if CountBySeverity(alerts)[3] == 0 {
		t.Error("no critical alert for recon attack")
	}
}

func TestDetectsInsiderBreakerTrip(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	// Insider: the attacker uses control server C1's address, so no
	// new-endpoint alert is possible — detection must come from the
	// cyber profile (new command tokens / command burst).
	net := topology.Build()
	attackedA, _ := buildAnalyzer(t, 21, &scadasim.AttackConfig{
		Kind:     scadasim.AttackBreakerTrip,
		Attacker: net.ServerAddr("C1"),
		Targets:  []topology.OutstationID{"O1"},
	})
	alerts := b.Scan(attackedA)
	var sawCommandToken bool
	for _, al := range alerts {
		if al.Kind == AlertNewToken && al.Severity == 3 && al.Subject == "C1-O1" {
			sawCommandToken = true
		}
	}
	if !sawCommandToken {
		t.Errorf("insider breaker commands not flagged; alerts: %v", alerts)
	}
}

func TestDetectsSetpointTamper(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	net := topology.Build()
	// Tamper with a legitimate AGC station from its legitimate server
	// so the only signal is the physical envelope.
	attackedA, _ := buildAnalyzer(t, 21, &scadasim.AttackConfig{
		Kind:     scadasim.AttackSetpointTamper,
		Attacker: net.ServerAddr("C1"),
		Targets:  []topology.OutstationID{"O29"},
	})
	alerts := b.Scan(attackedA)
	var sawRange bool
	for _, al := range alerts {
		if al.Kind == AlertValueRange && al.Severity == 3 {
			sawRange = true
		}
	}
	if !sawRange {
		t.Errorf("tampered setpoint not flagged; alerts: %v", alerts)
	}
}

func TestInjectAttackValidation(t *testing.T) {
	cfg := scadasim.DefaultConfig(topology.Y1, 9)
	cfg.Duration = 2 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Attack outside the window.
	_, err = sim.InjectAttack(tr, scadasim.AttackConfig{
		Kind: scadasim.AttackRecon,
		At:   cfg.Start.Add(-time.Minute),
	})
	if err == nil {
		t.Error("attack before capture accepted")
	}
	// Unknown target.
	_, err = sim.InjectAttack(tr, scadasim.AttackConfig{
		Kind:    scadasim.AttackRecon,
		At:      cfg.Start.Add(time.Minute),
		Targets: []topology.OutstationID{"O99"},
	})
	if err == nil {
		t.Error("unknown target accepted")
	}
	// Removed-in-Y2 target against a Y2 simulator.
	cfg2 := scadasim.DefaultConfig(topology.Y2, 9)
	cfg2.Duration = 2 * time.Minute
	sim2, _ := scadasim.New(cfg2)
	tr2, _ := sim2.Run()
	_, err = sim2.InjectAttack(tr2, scadasim.AttackConfig{
		Kind:    scadasim.AttackRecon,
		At:      cfg2.Start.Add(time.Minute),
		Targets: []topology.OutstationID{"O2"},
	})
	if err == nil {
		t.Error("absent target accepted")
	}
}

func TestAttackOrderingPreserved(t *testing.T) {
	_, tr := buildAnalyzer(t, 33, &scadasim.AttackConfig{Kind: scadasim.AttackBreakerTrip})
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Time.Before(tr.Records[i-1].Time) {
			t.Fatalf("records out of order after injection at %d", i)
		}
	}
}
