package ids

import (
	"fmt"
	"net/netip"
	"sort"

	"uncharted/internal/iec104"
	"uncharted/internal/markov"
	"uncharted/internal/physical"
)

// BaselineState is a Baseline's full serializable state in canonical
// (sorted) order: the form the drift codec persists so live monitors
// can start from a trained whitelist without re-reading the training
// capture. Building the same State twice yields identical values, so
// save → load → save through a deterministic codec is bit-exact.
type BaselineState struct {
	Endpoints []netip.Addr
	Conns     []ConnVocab
	Bigram    markov.NGramState
	Points    []PointRange
	Profiles  []StationProfile
	Rates     []ConnRate

	PerplexityFactor float64
	RangeMargin      float64
	WorstPerplexity  float64
}

// ConnVocab is one connection's allowed token vocabulary.
type ConnVocab struct {
	Server, Outstation string
	Tokens             []string
}

// PointRange is one whitelisted point's operating envelope.
type PointRange struct {
	Station string
	IOA     uint32
	Min     float64
	Max     float64
	Type    physical.PointType
	Command bool
	Samples int
}

// StationProfile is one endpoint's pinned wire dialect.
type StationProfile struct {
	Name    string
	Profile iec104.Profile
}

// ConnRate is one connection's baseline commands-per-APDU rate.
type ConnRate struct {
	Server, Outstation string
	Rate               float64
}

// State snapshots the baseline. The result shares nothing with b.
func (b *Baseline) State() BaselineState {
	s := BaselineState{
		PerplexityFactor: b.PerplexityFactor,
		RangeMargin:      b.RangeMargin,
		WorstPerplexity:  b.worstPerplexity,
	}
	if b.bigram != nil {
		s.Bigram = b.bigram.State()
	}
	for a := range b.endpoints {
		s.Endpoints = append(s.Endpoints, a)
	}
	sort.Slice(s.Endpoints, func(i, j int) bool { return s.Endpoints[i].Compare(s.Endpoints[j]) < 0 })
	for ck, vocab := range b.conns {
		cv := ConnVocab{Server: ck.Server, Outstation: ck.Outstation}
		for t := range vocab {
			cv.Tokens = append(cv.Tokens, t)
		}
		sort.Strings(cv.Tokens)
		s.Conns = append(s.Conns, cv)
	}
	sort.Slice(s.Conns, func(i, j int) bool {
		if s.Conns[i].Server != s.Conns[j].Server {
			return s.Conns[i].Server < s.Conns[j].Server
		}
		return s.Conns[i].Outstation < s.Conns[j].Outstation
	})
	for pk, vr := range b.points {
		s.Points = append(s.Points, PointRange{
			Station: pk.Station, IOA: pk.IOA,
			Min: vr.Min, Max: vr.Max,
			Type: vr.Type, Command: vr.Command, Samples: vr.Samples,
		})
	}
	sort.Slice(s.Points, func(i, j int) bool {
		if s.Points[i].Station != s.Points[j].Station {
			return s.Points[i].Station < s.Points[j].Station
		}
		return s.Points[i].IOA < s.Points[j].IOA
	})
	for name, p := range b.profiles {
		s.Profiles = append(s.Profiles, StationProfile{Name: name, Profile: p})
	}
	sort.Slice(s.Profiles, func(i, j int) bool { return s.Profiles[i].Name < s.Profiles[j].Name })
	for ck, r := range b.commandRate {
		s.Rates = append(s.Rates, ConnRate{Server: ck.Server, Outstation: ck.Outstation, Rate: r})
	}
	sort.Slice(s.Rates, func(i, j int) bool {
		if s.Rates[i].Server != s.Rates[j].Server {
			return s.Rates[i].Server < s.Rates[j].Server
		}
		return s.Rates[i].Outstation < s.Rates[j].Outstation
	})
	return s
}

// BaselineFromState rebuilds a trained baseline from a snapshot.
func BaselineFromState(s BaselineState) (*Baseline, error) {
	b := &Baseline{
		endpoints:        make(map[netip.Addr]bool, len(s.Endpoints)),
		conns:            make(map[connKey]map[string]bool, len(s.Conns)),
		points:           make(map[pointKey]*valueRange, len(s.Points)),
		profiles:         make(map[string]iec104.Profile, len(s.Profiles)),
		commandRate:      make(map[connKey]float64, len(s.Rates)),
		PerplexityFactor: s.PerplexityFactor,
		RangeMargin:      s.RangeMargin,
		worstPerplexity:  s.WorstPerplexity,
	}
	var err error
	b.bigram, err = markov.NGramFromState(s.Bigram)
	if err != nil {
		return nil, fmt.Errorf("ids: restore baseline: %w", err)
	}
	for _, a := range s.Endpoints {
		b.endpoints[a] = true
	}
	for _, cv := range s.Conns {
		vocab := make(map[string]bool, len(cv.Tokens))
		for _, t := range cv.Tokens {
			vocab[t] = true
		}
		b.conns[connKey{Server: cv.Server, Outstation: cv.Outstation}] = vocab
	}
	for _, pr := range s.Points {
		b.points[pointKey{Station: pr.Station, IOA: pr.IOA}] = &valueRange{
			Min: pr.Min, Max: pr.Max, Type: pr.Type, Command: pr.Command, Samples: pr.Samples,
		}
	}
	for _, sp := range s.Profiles {
		b.profiles[sp.Name] = sp.Profile
	}
	for _, cr := range s.Rates {
		b.commandRate[connKey{Server: cr.Server, Outstation: cr.Outstation}] = cr.Rate
	}
	return b, nil
}
