package ids

import (
	"bytes"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// runMonitored replays a (possibly attacked) capture through a fresh
// analyzer with a Monitor attached and returns the alerts in firing
// order.
func runMonitored(t *testing.T, b *Baseline, seed int64, attack *scadasim.AttackConfig) []Alert {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = 4 * time.Minute
	cfg.CyclePeriod = 100 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attack != nil {
		if attack.At.IsZero() {
			attack.At = cfg.Start.Add(2 * time.Minute)
		}
		if _, err := sim.InjectAttack(tr, *attack); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	var alerts []Alert
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	mon := NewMonitor(b, func(al Alert) { alerts = append(alerts, al) })
	a.SetFrameObserver(mon)
	if err := a.ReadPCAP(&buf); err != nil {
		t.Fatal(err)
	}
	if mon.Alerts() != len(alerts) {
		t.Fatalf("monitor counted %d alerts, sink saw %d", mon.Alerts(), len(alerts))
	}
	return alerts
}

func TestMonitorQuietOnCleanTraffic(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	alerts := runMonitored(t, b, 22, nil)
	if sev := CountBySeverity(alerts); sev[3] != 0 {
		for _, al := range alerts {
			if al.Severity == 3 {
				t.Errorf("critical alert on clean traffic: %v", al)
			}
		}
	}
}

func TestMonitorDetectsReconLive(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	alerts := runMonitored(t, b, 21, &scadasim.AttackConfig{Kind: scadasim.AttackRecon})
	kinds := map[AlertKind]int{}
	for _, al := range alerts {
		kinds[al.Kind]++
	}
	if kinds[AlertNewEndpoint] == 0 {
		t.Errorf("rogue endpoint not flagged live: %v", kinds)
	}
	if kinds[AlertNewConnection] == 0 {
		t.Errorf("rogue connections not flagged live: %v", kinds)
	}
	// Dedup: the rogue address must alert exactly once however many
	// frames it sends.
	if kinds[AlertNewEndpoint] != 1 {
		t.Errorf("new-endpoint alert fired %d times, want 1", kinds[AlertNewEndpoint])
	}
}

func TestMonitorDetectsInsiderBreakerTripLive(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	net := topology.Build()
	alerts := runMonitored(t, b, 21, &scadasim.AttackConfig{
		Kind:     scadasim.AttackBreakerTrip,
		Attacker: net.ServerAddr("C1"),
		Targets:  []topology.OutstationID{"O1"},
	})
	var sawCommandToken bool
	for _, al := range alerts {
		if al.Kind == AlertNewToken && al.Severity == 3 && al.Subject == "C1-O1" {
			sawCommandToken = true
		}
	}
	if !sawCommandToken {
		t.Errorf("insider breaker commands not flagged live; alerts: %v", alerts)
	}
}

func TestMonitorDetectsSetpointTamperLive(t *testing.T) {
	baselineA, _ := buildAnalyzer(t, 21, nil)
	b, err := Train(baselineA)
	if err != nil {
		t.Fatal(err)
	}
	net := topology.Build()
	alerts := runMonitored(t, b, 21, &scadasim.AttackConfig{
		Kind:     scadasim.AttackSetpointTamper,
		Attacker: net.ServerAddr("C1"),
		Targets:  []topology.OutstationID{"O29"},
	})
	var sawRange bool
	for _, al := range alerts {
		if al.Kind == AlertValueRange && al.Severity == 3 {
			sawRange = true
		}
	}
	if !sawRange {
		t.Errorf("tampered setpoint not flagged live; alerts: %v", alerts)
	}
}
