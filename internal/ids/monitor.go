package ids

import (
	"fmt"
	"math"
	"net/netip"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
)

// Monitor is the online counterpart of Baseline.Scan: it implements
// core.FrameObserver so a live analyzer raises alerts as frames
// arrive instead of after the capture ends. Each check fires at most
// once per subject (endpoint, connection, token, point) so a noisy
// intruder does not flood the sink; the frame-level checks match the
// offline scanner's thresholds exactly. Dialect-change detection needs
// a settled per-endpoint profile and stays a Scan-time check.
//
// A Monitor is not safe for concurrent use: attach one per analyzer
// (the streaming engine runs one per shard) and serialise the sink if
// alerts from several monitors converge.
type Monitor struct {
	b    *Baseline
	sink func(Alert)

	alertedEndpoint map[netip.Addr]bool
	alertedConn     map[connKey]bool
	alertedToken    map[connKey]map[string]bool
	alertedPoint    map[pointKey]bool
	alertedRange    map[pointKey]bool
	alertedBurst    map[connKey]bool
	alertedSeq      map[connKey]bool

	conns map[connKey]*connState

	alerts int
}

// connState is the rolling per-connection window the sequence and
// command-burst checks score.
type connState struct {
	tokens   int
	commands int
	recent   []iec104.Token
}

// seqWindow bounds the token window scored for perplexity;
// seqCheckEvery is how often (in tokens) the score is recomputed.
// minBurstTokens matches Scan's minimum stream length before rate
// checks apply.
const (
	seqWindow      = 256
	seqCheckEvery  = 64
	minBurstTokens = 20
)

// NewMonitor wraps a trained baseline for live checking. sink receives
// every alert as it fires; a nil sink only counts.
func NewMonitor(b *Baseline, sink func(Alert)) *Monitor {
	return &Monitor{
		b:               b,
		sink:            sink,
		alertedEndpoint: make(map[netip.Addr]bool),
		alertedConn:     make(map[connKey]bool),
		alertedToken:    make(map[connKey]map[string]bool),
		alertedPoint:    make(map[pointKey]bool),
		alertedRange:    make(map[pointKey]bool),
		alertedBurst:    make(map[connKey]bool),
		alertedSeq:      make(map[connKey]bool),
		conns:           make(map[connKey]*connState),
	}
}

// Alerts returns how many alerts have fired so far.
func (m *Monitor) Alerts() int { return m.alerts }

func (m *Monitor) emit(kind AlertKind, sev int, subject, format string, args ...any) {
	m.alerts++
	if m.sink != nil {
		m.sink(Alert{Kind: kind, Severity: sev, Subject: subject, Detail: fmt.Sprintf(format, args...)})
	}
}

// ObserveFrame implements core.FrameObserver.
func (m *Monitor) ObserveFrame(ev core.FrameEvent) {
	for _, addr := range []netip.Addr{ev.Conn.Server, ev.Conn.Outstation} {
		if !m.b.endpoints[addr] && !m.alertedEndpoint[addr] {
			m.alertedEndpoint[addr] = true
			name := ev.Server
			if addr == ev.Conn.Outstation {
				name = ev.Outstation
			}
			m.emit(AlertNewEndpoint, 3, name,
				"address %s speaks IEC 104 but is not in the baseline", addr)
		}
	}

	ck := connKey{Server: ev.Server, Outstation: ev.Outstation}
	label := ev.Server + "-" + ev.Outstation
	vocab, known := m.b.conns[ck]
	if !known && !m.alertedConn[ck] {
		m.alertedConn[ck] = true
		m.emit(AlertNewConnection, 2, label, "no baseline traffic between these endpoints")
	}

	tok := ev.Token
	isCommand := tok.IsCommand()
	if known && !vocab[tok.String()] {
		seen := m.alertedToken[ck]
		if seen == nil {
			seen = make(map[string]bool)
			m.alertedToken[ck] = seen
		}
		if !seen[tok.String()] {
			seen[tok.String()] = true
			sev := 1
			if isCommand {
				sev = 3 // a brand-new command type is the Industroyer pattern
			}
			m.emit(AlertNewToken, sev, label, "token %s outside baseline vocabulary", tok)
		}
	}

	cs := m.conns[ck]
	if cs == nil {
		cs = &connState{}
		m.conns[ck] = cs
	}
	cs.tokens++
	if isCommand {
		cs.commands++
	}
	cs.recent = append(cs.recent, tok)
	if len(cs.recent) > seqWindow {
		cs.recent = cs.recent[len(cs.recent)-seqWindow:]
	}

	if cs.tokens >= minBurstTokens && !m.alertedBurst[ck] {
		rate := float64(cs.commands) / float64(cs.tokens)
		base := m.b.commandRate[ck]
		if rate > 0.2 && rate > 4*base+0.05 {
			m.alertedBurst[ck] = true
			m.emit(AlertCommandBurst, 3, label,
				"command rate %.0f%% of APDUs (baseline %.0f%%)", 100*rate, 100*base)
		}
	}

	if cs.tokens%seqCheckEvery == 0 && !m.alertedSeq[ck] && m.b.worstPerplexity > 0 {
		if p, err := m.b.bigram.Perplexity(cs.recent); err == nil &&
			p > m.b.PerplexityFactor*m.b.worstPerplexity {
			m.alertedSeq[ck] = true
			m.emit(AlertSequence, 2, label,
				"token-sequence perplexity %.1f exceeds baseline ceiling %.1f",
				p, m.b.worstPerplexity)
		}
	}

	if ev.ASDU != nil {
		m.observeObjects(ev)
	}
}

// observeObjects applies the point-whitelist and operating-envelope
// checks to each value-bearing information object, mirroring the
// extraction rules of physical.Store.Feed: the station is always the
// outstation side, control-direction frames are commands.
func (m *Monitor) observeObjects(ev core.FrameEvent) {
	command := !ev.FromOutstation
	for _, obj := range ev.ASDU.Objects {
		var v float64
		switch obj.Value.Kind {
		case iec104.KindFloat, iec104.KindNormalized, iec104.KindScaled,
			iec104.KindSingle, iec104.KindDouble, iec104.KindStep,
			iec104.KindCounter, iec104.KindCommand:
			v = obj.Value.Float
		default:
			continue
		}
		pk := pointKey{Station: ev.Outstation, IOA: obj.IOA}
		vr, knownPoint := m.b.points[pk]
		if !knownPoint {
			if !m.alertedPoint[pk] {
				m.alertedPoint[pk] = true
				sev := 1
				if command {
					sev = 3
				}
				m.emit(AlertUnknownPoint, sev, pk.Station,
					"IOA %d (%s) never seen in baseline", pk.IOA, ev.ASDU.Type.Acronym())
			}
			continue
		}
		if m.alertedRange[pk] {
			continue
		}
		lo, hi := m.b.bounds(vr)
		if v < lo || v > hi {
			m.alertedRange[pk] = true
			sev := 2
			if command {
				sev = 3
			}
			m.emit(AlertValueRange, sev, fmt.Sprintf("%s/%d", pk.Station, pk.IOA),
				"value %.4g outside baseline [%.4g, %.4g]", v, vr.Min, vr.Max)
		}
	}
}

// bounds widens a point's baseline envelope by the configured margin:
// a fraction of the observed span, floored at a small fraction of the
// operating magnitude so near-constant series (a bus voltage pinned at
// nominal) do not alert on normal measurement noise.
func (b *Baseline) bounds(vr *valueRange) (lo, hi float64) {
	span := vr.Max - vr.Min
	margin := b.RangeMargin * span
	if floor := 0.05 * math.Max(math.Abs(vr.Min), math.Abs(vr.Max)); margin < floor {
		margin = floor
	}
	if margin < 0.01 {
		margin = 0.01
	}
	return vr.Min - margin, vr.Max + margin
}
