package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs builds well-separated clusters for deterministic tests.
func threeBlobs(rng *rand.Rand, per int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var pts [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, labels := threeBlobs(rng, 30)
	res, err := KMeans(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Build the label → cluster mapping from the first point of each
	// blob, then verify consistency.
	mapping := map[int]int{}
	for i, l := range labels {
		if _, ok := mapping[l]; !ok {
			mapping[l] = res.Assign[i]
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping %v", mapping)
	}
	for i, l := range labels {
		if res.Assign[i] != mapping[l] {
			t.Fatalf("point %d assigned %d, want %d", i, res.Assign[i], mapping[l])
		}
	}
	sizes := res.Sizes()
	for c, n := range sizes {
		if n != 30 {
			t.Fatalf("cluster %d size %d", c, n)
		}
	}
	if res.SSE <= 0 || res.SSE > 200 {
		t.Fatalf("SSE %v", res.SSE)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 2, rng); err == nil {
		t.Error("empty points accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 3, rng); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, rng); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKMeansK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := KMeans(pts, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 || math.Abs(res.Centroids[0][1]-1) > 1e-9 {
		t.Fatalf("centroid %v", res.Centroids[0])
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	pts, _ := threeBlobs(rand.New(rand.NewSource(3)), 20)
	a, err := KMeans(pts, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.SSE != b.SSE {
		t.Fatalf("SSE differs: %v vs %v", a.SSE, b.SSE)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ")
		}
	}
}

func TestSilhouetteSeparatedVsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, labels := threeBlobs(rng, 20)
	good, err := Silhouette(pts, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.8 {
		t.Fatalf("well-separated blobs scored %v", good)
	}
	// A deliberately wrong 2-cluster split scores worse.
	bad := make([]int, len(pts))
	for i := range bad {
		bad[i] = i % 2
	}
	worse, err := Silhouette(pts, bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Fatalf("random split %v >= true split %v", worse, good)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil, 2); err == nil {
		t.Error("empty accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := Silhouette(pts, []int{0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Silhouette(pts, []int{0, 1}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Silhouette(pts, []int{0, 5}, 2); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestExplainedVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(rng, 20)
	res, err := KMeans(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ExplainedVariance(pts, res)
	if err != nil {
		t.Fatal(err)
	}
	if ev < 0.95 {
		t.Fatalf("explained variance %v for perfect blobs", ev)
	}
}

func TestSweepFindsK3(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := threeBlobs(rng, 25)
	elbow, bestK, err := Sweep(pts, 6, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if bestK != 3 {
		t.Fatalf("bestK = %d, want 3 (%+v)", bestK, elbow)
	}
	// SSE must be non-increasing in k (allowing tiny numerical slack).
	for i := 1; i < len(elbow); i++ {
		if elbow[i].SSE > elbow[i-1].SSE*1.05 {
			t.Fatalf("SSE not shrinking: %+v", elbow)
		}
	}
}

func TestKMeansPlusPlusBeatsNaiveSeeding(t *testing.T) {
	// Adversarial data: naive first-k seeding starts all centroids in
	// the same blob; K-means++ spreads them out. Compare average SSE.
	rng := rand.New(rand.NewSource(8))
	pts, _ := threeBlobs(rng, 30)
	naive, err := KMeansWithSeeds(pts, SeedNaive(pts, 3))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := KMeans(pts, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if pp.SSE > naive.SSE {
		t.Fatalf("k-means++ SSE %v worse than naive %v", pp.SSE, naive.SSE)
	}
}

func TestPCAAxisAligned(t *testing.T) {
	// Data varying mostly along x: first component ≈ (±1, 0).
	rng := rand.New(rand.NewSource(10))
	var pts [][]float64
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 0.3})
	}
	res, err := PCA(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Components[0][0]) < 0.99 {
		t.Fatalf("first component %v not x-aligned", res.Components[0])
	}
	if res.Eigenvalues[0] < res.Eigenvalues[1] {
		t.Fatal("eigenvalues not sorted")
	}
	if ve := res.VarianceExplained(1); ve < 0.95 {
		t.Fatalf("first component explains %v", ve)
	}
}

func TestPCAProjectionPreservesSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, labels := threeBlobs(rng, 20)
	// Embed in 5-D with noise dims (like the paper's 5 features).
	var hi [][]float64
	for _, p := range pts {
		hi = append(hi, []float64{p[0], p[1], rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1, 0})
	}
	res, err := PCA(hi)
	if err != nil {
		t.Fatal(err)
	}
	proj := res.Project(hi, 2)
	if len(proj) != len(hi) || len(proj[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
	// Blob structure must survive: the 2-D silhouette stays high.
	sil, err := Silhouette(proj, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sil < 0.8 {
		t.Fatalf("projected silhouette %v", sil)
	}
}

func TestPCAOrthonormalComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var pts [][]float64
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{rng.Float64(), rng.Float64() * 3, rng.Float64() * 0.5})
	}
	res, err := PCA(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Components {
		for j := range res.Components {
			var dot float64
			for k := range res.Components[i] {
				dot += res.Components[i][k] * res.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d·%d = %v", i, j, dot)
			}
		}
	}
}
