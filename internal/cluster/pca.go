package cluster

import (
	"errors"
	"math"
)

// PCAResult holds the principal components of a data matrix.
type PCAResult struct {
	// Components is the orthonormal basis, one row per component,
	// ordered by decreasing eigenvalue.
	Components [][]float64
	// Eigenvalues of the covariance matrix, same order.
	Eigenvalues []float64
	// Mean of the input columns (subtracted before projection).
	Mean []float64
}

// VarianceExplained returns the fraction of variance captured by the
// first n components.
func (p *PCAResult) VarianceExplained(n int) float64 {
	var total, head float64
	for i, v := range p.Eigenvalues {
		total += v
		if i < n {
			head += v
		}
	}
	if total == 0 {
		return 0
	}
	return head / total
}

// Project maps points onto the first n principal components.
func (p *PCAResult) Project(points [][]float64, n int) [][]float64 {
	if n > len(p.Components) {
		n = len(p.Components)
	}
	out := make([][]float64, len(points))
	for i, pt := range points {
		row := make([]float64, n)
		for c := 0; c < n; c++ {
			var dot float64
			for j := range pt {
				dot += (pt[j] - p.Mean[j]) * p.Components[c][j]
			}
			row[c] = dot
		}
		out[i] = row
	}
	return out
}

// PCA computes principal components via Jacobi eigendecomposition of
// the covariance matrix — dimension counts here are tiny (the paper
// uses five session features), so the classic O(d³) sweep is plenty.
func PCA(points [][]float64) (*PCAResult, error) {
	dim, err := checkPoints(points)
	if err != nil {
		return nil, err
	}
	n := float64(len(points))
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	// Covariance matrix.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, p := range points {
		for i := 0; i < dim; i++ {
			di := p[i] - mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (p[j] - mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= n
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs, err := jacobiEigen(cov)
	if err != nil {
		return nil, err
	}
	// Sort by decreasing eigenvalue.
	order := make([]int, dim)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			if vals[order[j]] > vals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	res := &PCAResult{Mean: mean}
	for _, idx := range order {
		comp := make([]float64, dim)
		for r := 0; r < dim; r++ {
			comp[r] = vecs[r][idx] // eigenvectors are columns
		}
		res.Components = append(res.Components, comp)
		v := vals[idx]
		if v < 0 && v > -1e-12 {
			v = 0 // numerical noise
		}
		res.Eigenvalues = append(res.Eigenvalues, v)
	}
	return res, nil
}

// jacobiEigen diagonalises a symmetric matrix with cyclic Jacobi
// rotations, returning eigenvalues and the accumulated rotation matrix
// (eigenvectors as columns).
func jacobiEigen(a [][]float64) ([]float64, [][]float64, error) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		if len(a[i]) != n {
			return nil, nil, errors.New("cluster: jacobi needs a square matrix")
		}
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-30 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to m.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v, nil
}
