package cluster_test

import (
	"fmt"
	"math/rand"

	"uncharted/internal/cluster"
)

// Cluster session feature vectors with K-means++ and check the model
// with the silhouette score, as the paper does for Fig. 10.
func ExampleKMeans() {
	// Two obvious behaviours: chatty I-reporters and slow keep-alives.
	points := [][]float64{
		{0.5, 2000, 0.99}, {0.6, 1800, 0.98}, {0.4, 2100, 0.99},
		{30, 50, 0.01}, {29, 48, 0.02}, {31, 52, 0.01},
	}
	res, err := cluster.KMeans(points, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	sil, err := cluster.Silhouette(points, res.Assign, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sizes=%v silhouette>0.9: %t\n", res.Sizes(), sil > 0.9)
	// Output: sizes=[3 3] silhouette>0.9: true
}

// Project high-dimensional features to 2-D for plotting, as the
// paper's PCA visualisation does.
func ExamplePCA() {
	points := [][]float64{
		{1, 10, 0}, {2, 20, 0}, {3, 30, 0}, {4, 40, 0}, {5, 50, 0},
	}
	res, err := cluster.PCA(points)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first component explains %.0f%% of variance\n", 100*res.VarianceExplained(1))
	// Output: first component explains 100% of variance
}
