// Package cluster implements the unsupervised toolkit of the paper's
// traffic analysis (§6.3): K-means++ clustering with the elbow method
// (sum of squared error), explained variance and silhouette scores for
// model selection, and principal component analysis for 2-D
// visualisation of the session feature space.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors.
var (
	ErrNoPoints  = errors.New("cluster: no points")
	ErrBadK      = errors.New("cluster: k must be in [1, len(points)]")
	ErrDimension = errors.New("cluster: inconsistent point dimensions")
)

// Result is a fitted K-means model.
type Result struct {
	K         int
	Centroids [][]float64
	// Assign maps each input point to its cluster index.
	Assign []int
	// SSE is the sum of squared distances to assigned centroids (the
	// elbow-method quantity).
	SSE float64
	// Iterations actually used by Lloyd's algorithm.
	Iterations int
}

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	out := make([]int, r.K)
	for _, a := range r.Assign {
		out[a]++
	}
	return out
}

func checkPoints(points [][]float64) (dim int, err error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	dim = len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return 0, fmt.Errorf("%w: point %d has %d dims, want %d", ErrDimension, i, len(p), dim)
		}
	}
	return dim, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k groups using K-means++ seeding and
// Lloyd iterations. The rng makes runs reproducible; pass
// rand.New(rand.NewSource(seed)).
func KMeans(points [][]float64, k int, rng *rand.Rand) (*Result, error) {
	dim, err := checkPoints(points)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > len(points) {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, k, len(points))
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	const maxIter = 200
	res := &Result{K: k}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty clusters keep their previous
		// position (K-means++ seeding makes them rare).
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	res.Centroids = centroids
	res.Assign = assign
	for i, p := range points {
		res.SSE += sqDist(p, centroids[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks initial centroids with the K-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		idx := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					idx = i
					break
				}
			}
		} else {
			// All points coincide with centroids; pick any.
			idx = rng.Intn(len(points))
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

// SeedNaive picks the first k points as centroids — the baseline the
// ablation bench compares K-means++ against.
func SeedNaive(points [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	for i := 0; i < k; i++ {
		centroids = append(centroids, append([]float64(nil), points[i]...))
	}
	return centroids
}

// KMeansWithSeeds runs Lloyd iterations from the given centroids
// (copied), for ablation comparisons.
func KMeansWithSeeds(points [][]float64, seeds [][]float64) (*Result, error) {
	if _, err := checkPoints(points); err != nil {
		return nil, err
	}
	if len(seeds) == 0 || len(seeds) > len(points) {
		return nil, ErrBadK
	}
	centroids := make([][]float64, len(seeds))
	for i, s := range seeds {
		centroids[i] = append([]float64(nil), s...)
	}
	// Reuse KMeans's Lloyd loop by faking the seeding: simplest is to
	// duplicate the loop here.
	assign := make([]int, len(points))
	res := &Result{K: len(seeds)}
	dim := len(points[0])
	for iter := 0; iter < 200; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
		sums := make([][]float64, len(seeds))
		counts := make([]int, len(seeds))
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	res.Centroids = centroids
	res.Assign = assign
	for i, p := range points {
		res.SSE += sqDist(p, centroids[assign[i]])
	}
	return res, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering:
// (b-a)/max(a,b) per point, where a is the mean intra-cluster distance
// and b the smallest mean distance to another cluster. Single-member
// clusters contribute 0, matching scikit-learn's convention.
func Silhouette(points [][]float64, assign []int, k int) (float64, error) {
	if len(points) != len(assign) {
		return 0, fmt.Errorf("cluster: %d points but %d assignments", len(points), len(assign))
	}
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs k >= 2, got %d", k)
	}
	sizes := make([]int, k)
	for _, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d out of range", a)
		}
		sizes[a]++
	}
	var total float64
	for i, p := range points {
		// Mean distance to each cluster.
		sums := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(p, q))
		}
		own := assign[i]
		if sizes[own] <= 1 {
			continue // silhouette 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(points)), nil
}

// ExplainedVariance returns 1 - SSE/TSS: the fraction of total variance
// the clustering explains.
func ExplainedVariance(points [][]float64, res *Result) (float64, error) {
	dim, err := checkPoints(points)
	if err != nil {
		return 0, err
	}
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(points))
	}
	var tss float64
	for _, p := range points {
		tss += sqDist(p, mean)
	}
	if tss == 0 {
		return 1, nil
	}
	return 1 - res.SSE/tss, nil
}

// ElbowPoint is one K-sweep entry for model selection.
type ElbowPoint struct {
	K          int
	SSE        float64
	Silhouette float64
	Explained  float64
}

// Sweep fits K = 2..maxK and reports the selection criteria the paper
// used (elbow on SSE, explained variance, silhouette). The returned
// BestK maximises the silhouette score.
func Sweep(points [][]float64, maxK int, rng *rand.Rand) (elbow []ElbowPoint, bestK int, err error) {
	if maxK < 2 {
		return nil, 0, fmt.Errorf("cluster: sweep needs maxK >= 2")
	}
	bestSil := math.Inf(-1)
	for k := 2; k <= maxK && k <= len(points); k++ {
		res, err := KMeans(points, k, rng)
		if err != nil {
			return nil, 0, err
		}
		sil, err := Silhouette(points, res.Assign, k)
		if err != nil {
			return nil, 0, err
		}
		ev, err := ExplainedVariance(points, res)
		if err != nil {
			return nil, 0, err
		}
		elbow = append(elbow, ElbowPoint{K: k, SSE: res.SSE, Silhouette: sil, Explained: ev})
		if sil > bestSil {
			bestSil = sil
			bestK = k
		}
	}
	return elbow, bestK, nil
}
