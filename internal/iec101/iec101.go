// Package iec101 implements the serial-link ancestor of IEC 104:
// IEC 60870-5-101 with its FT1.2 link-layer framing. The paper's
// network still contained substations on serial links (§5), and the
// §6.1 malformed packets are exactly what happens when a substation is
// "upgraded" to IEC 104 by tunnelling its existing IEC 101 application
// data over TCP without reconfiguring the field sizes: IEC 101 allows
// a 1-octet cause of transmission and a 2-octet information object
// address, both of which this package models.
//
// Implemented: FT1.2 fixed-length and variable-length frames with the
// checksum and control field, the link-layer function codes needed for
// a polled balanced link, and ASDU payload transport. The ASDU itself
// is shared with package iec104 through a Profile (IEC 101's native
// field sizes are a Profile too), which is what makes the gateway in
// gateway.go a five-line re-encapsulation — faithfully reproducing the
// misconfiguration the paper found in the field.
package iec101

import (
	"errors"
	"fmt"
)

// FT1.2 start characters.
const (
	StartVariable = 0x68 // variable-length frame
	StartFixed    = 0x10 // fixed-length frame
	EndChar       = 0x16
)

// FuncCode is the link-layer function code (primary→secondary,
// PRM = 1).
type FuncCode uint8

// Link function codes used on a balanced link.
const (
	FuncResetLink  FuncCode = 0 // reset of remote link
	FuncTestLink   FuncCode = 2 // test function for link
	FuncUserData   FuncCode = 3 // user data, confirm expected
	FuncUserDataNC FuncCode = 4 // user data, no confirm
	FuncReqStatus  FuncCode = 9 // request status of link
	// Secondary→primary (PRM = 0) codes.
	FuncAckConfirm FuncCode = 0  // positive acknowledgement
	FuncNack       FuncCode = 1  // message not accepted
	FuncStatus     FuncCode = 11 // status of link
)

// Frame is one FT1.2 link-layer frame.
type Frame struct {
	// Primary is the PRM bit: true when sent by the initiating
	// station.
	Primary bool
	// FCB and FCV are the frame-count bit and its validity, used to
	// deduplicate on noisy serial links.
	FCB, FCV bool
	Func     FuncCode
	// Addr is the link address (1 octet in this profile).
	Addr uint8
	// ASDU is the application payload (nil for fixed-length frames).
	ASDU []byte
}

// Errors.
var (
	ErrShort    = errors.New("iec101: truncated frame")
	ErrBadStart = errors.New("iec101: bad start character")
	ErrBadEnd   = errors.New("iec101: bad end character")
	ErrChecksum = errors.New("iec101: checksum mismatch")
	ErrLength   = errors.New("iec101: length fields disagree")
)

func (f *Frame) control() byte {
	c := byte(f.Func) & 0x0F
	if f.Primary {
		c |= 0x40
	}
	if f.FCB {
		c |= 0x20
	}
	if f.FCV {
		c |= 0x10
	}
	return c
}

func parseControl(c byte, f *Frame) {
	f.Primary = c&0x40 != 0
	f.FCB = c&0x20 != 0
	f.FCV = c&0x10 != 0
	f.Func = FuncCode(c & 0x0F)
}

// checksum is the FT1.2 arithmetic checksum (mod 256 sum).
func checksum(data []byte) byte {
	var s byte
	for _, b := range data {
		s += b
	}
	return s
}

// Marshal renders the frame: fixed-length when it carries no ASDU,
// variable-length otherwise.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.ASDU) == 0 {
		// Fixed: 10 C A CS 16
		out := []byte{StartFixed, f.control(), f.Addr, 0, EndChar}
		out[3] = checksum(out[1:3])
		return out, nil
	}
	// Variable: 68 L L 68 C A ASDU... CS 16
	l := 2 + len(f.ASDU)
	if l > 255 {
		return nil, fmt.Errorf("iec101: ASDU of %d bytes overflows the length octet", len(f.ASDU))
	}
	out := make([]byte, 0, 6+l)
	out = append(out, StartVariable, byte(l), byte(l), StartVariable, f.control(), f.Addr)
	out = append(out, f.ASDU...)
	out = append(out, checksum(out[4:]), EndChar)
	return out, nil
}

// Parse decodes one frame from the front of data, returning the frame
// and bytes consumed.
func Parse(data []byte) (*Frame, int, error) {
	if len(data) == 0 {
		return nil, 0, ErrShort
	}
	var f Frame
	switch data[0] {
	case StartFixed:
		if len(data) < 5 {
			return nil, 0, ErrShort
		}
		if data[4] != EndChar {
			return nil, 0, ErrBadEnd
		}
		if checksum(data[1:3]) != data[3] {
			return nil, 0, ErrChecksum
		}
		parseControl(data[1], &f)
		f.Addr = data[2]
		return &f, 5, nil
	case StartVariable:
		if len(data) < 6 {
			return nil, 0, ErrShort
		}
		if data[1] != data[2] || data[3] != StartVariable {
			return nil, 0, ErrLength
		}
		l := int(data[1])
		total := 4 + l + 2
		if l < 2 {
			return nil, 0, ErrLength
		}
		if len(data) < total {
			return nil, 0, ErrShort
		}
		if data[total-1] != EndChar {
			return nil, 0, ErrBadEnd
		}
		if checksum(data[4:4+l]) != data[total-2] {
			return nil, 0, ErrChecksum
		}
		parseControl(data[4], &f)
		f.Addr = data[5]
		f.ASDU = append([]byte(nil), data[6:4+l]...)
		return &f, total, nil
	default:
		return nil, 0, fmt.Errorf("%w: %#02x", ErrBadStart, data[0])
	}
}

// NewUserData wraps an ASDU in a primary user-data frame.
func NewUserData(addr uint8, fcb bool, asdu []byte) *Frame {
	return &Frame{Primary: true, FCB: fcb, FCV: true, Func: FuncUserData, Addr: addr, ASDU: asdu}
}

// NewAck builds the secondary station's positive confirm.
func NewAck(addr uint8) *Frame {
	return &Frame{Func: FuncAckConfirm, Addr: addr}
}
