package iec101

import (
	"fmt"

	"uncharted/internal/iec104"
)

// NativeProfile is IEC 101's classic unbalanced field sizing: 1-octet
// cause of transmission, 1-octet common address, 2-octet information
// object address. (Standards allow configuring each; this is the
// minimal legacy layout.)
var NativeProfile = iec104.Profile{COTSize: 1, CommonAddrSize: 1, IOASize: 2}

// Gateway models a serial-to-TCP converter: the box a utility installs
// when "upgrading" a substation from IEC 101 to IEC 104. It strips the
// FT1.2 link layer from serial frames and re-encapsulates the ASDUs in
// IEC 104 APCI framing.
//
// The crucial knob is Reencode: a correctly commissioned gateway
// re-encodes the ASDU into the standard IEC 104 field sizes; a lazy
// configuration copies the ASDU bytes verbatim, producing exactly the
// §6.1 malformed packets (legacy COT / IOA sizes inside IEC 104
// frames) that broke Wireshark's parser in the paper.
type Gateway struct {
	// SerialProfile is the field sizing used on the serial side.
	SerialProfile iec104.Profile
	// Reencode converts ASDUs to the standard IEC 104 layout; when
	// false the ASDU bytes pass through untouched (the field
	// misconfiguration).
	Reencode bool

	sendSeq, recvSeq uint16
}

// NewGateway returns a pass-through (misconfigured) gateway for the
// given serial dialect.
func NewGateway(serial iec104.Profile, reencode bool) *Gateway {
	return &Gateway{SerialProfile: serial, Reencode: reencode}
}

// FromSerial converts one FT1.2 frame into an IEC 104 APDU byte
// stream. Link-layer-only frames (acks, tests) map to nothing: IEC 104
// handles liveness with its own U frames.
func (g *Gateway) FromSerial(frame []byte) ([]byte, error) {
	f, _, err := Parse(frame)
	if err != nil {
		return nil, err
	}
	if len(f.ASDU) == 0 {
		return nil, nil
	}
	asduBytes := f.ASDU
	if g.Reencode {
		asdu, err := iec104.ParseASDU(f.ASDU, g.SerialProfile)
		if err != nil {
			return nil, fmt.Errorf("iec101: gateway re-encode: %w", err)
		}
		asduBytes, err = asdu.Marshal(iec104.Standard)
		if err != nil {
			return nil, fmt.Errorf("iec101: gateway re-encode: %w", err)
		}
	}
	apdu := make([]byte, 6+len(asduBytes))
	hdr := &iec104.APDU{Format: iec104.FormatI, SendSeq: g.sendSeq, RecvSeq: g.recvSeq}
	if _, err := hdr.EncodeAPCI(apdu, len(asduBytes)); err != nil {
		return nil, err
	}
	copy(apdu[6:], asduBytes)
	g.sendSeq = (g.sendSeq + 1) & 0x7FFF
	return apdu, nil
}

// ToSerial converts an IEC 104 I-frame back into an FT1.2 user-data
// frame for the serial side (commands heading to the legacy RTU). The
// frame's dialect follows the same Reencode setting.
func (g *Gateway) ToSerial(apduBytes []byte, linkAddr uint8, fcb bool) ([]byte, error) {
	wireProfile := g.wireProfile()
	apdu, _, err := iec104.ParseAPDU(apduBytes, wireProfile)
	if err != nil {
		return nil, err
	}
	if apdu.Format != iec104.FormatI {
		return nil, nil // U/S frames stay on the TCP side
	}
	g.recvSeq = (g.recvSeq + 1) & 0x7FFF
	asduBytes, err := apdu.ASDU.Marshal(g.SerialProfile)
	if err != nil {
		return nil, fmt.Errorf("iec101: gateway to-serial: %w", err)
	}
	return NewUserData(linkAddr, fcb, asduBytes).Marshal()
}

// wireProfile is the dialect visible on the TCP side.
func (g *Gateway) wireProfile() iec104.Profile {
	if g.Reencode {
		return iec104.Standard
	}
	// Pass-through keeps the serial field sizes, but IEC 104 framing
	// is unchanged; common addresses in the field were already 2
	// octets in the paper's captures, so model the common case where
	// only COT or IOA kept the legacy width.
	return g.SerialProfile
}
