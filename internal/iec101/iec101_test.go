package iec101

import (
	"bytes"
	"testing"
	"testing/quick"

	"uncharted/internal/iec104"
)

func TestFixedFrameRoundTrip(t *testing.T) {
	f := NewAck(13)
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 5 || raw[0] != StartFixed || raw[4] != EndChar {
		t.Fatalf("frame % x", raw)
	}
	got, n, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || got.Addr != 13 || got.Func != FuncAckConfirm || got.Primary {
		t.Fatalf("decoded %+v", got)
	}
}

func TestVariableFrameRoundTrip(t *testing.T) {
	asdu := []byte{13, 1, 3, 9, 100, 0, 0x12, 0x34, 0x56, 0x78, 0x00}
	f := NewUserData(7, true, asdu)
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if !got.Primary || !got.FCB || !got.FCV || got.Func != FuncUserData || got.Addr != 7 {
		t.Fatalf("control decoded %+v", got)
	}
	if !bytes.Equal(got.ASDU, asdu) {
		t.Fatalf("ASDU % x", got.ASDU)
	}
}

func TestParseErrors(t *testing.T) {
	good, _ := NewUserData(1, false, []byte{1, 2, 3}).Marshal()
	cases := map[string][]byte{
		"empty":         nil,
		"bad start":     {0x99, 0, 0, 0, 0},
		"short fixed":   {StartFixed, 0, 0},
		"bad end fixed": {StartFixed, 0x40, 1, 0x41, 0x17},
		"bad cs fixed":  {StartFixed, 0x40, 1, 0x99, EndChar},
		"length mismatch": func() []byte {
			b := append([]byte{}, good...)
			b[1]++
			return b
		}(),
		"bad cs variable": func() []byte {
			b := append([]byte{}, good...)
			b[6] ^= 0xFF
			return b
		}(),
		"bad end variable": func() []byte {
			b := append([]byte{}, good...)
			b[len(b)-1] = 0x17
			return b
		}(),
		"truncated variable": good[:len(good)-3],
	}
	for name, data := range cases {
		if _, _, err := Parse(data); err == nil {
			t.Errorf("%s: accepted % x", name, data)
		}
	}
}

func TestFrameQuick(t *testing.T) {
	check := func(addr uint8, fcb bool, payload []byte) bool {
		if len(payload) == 0 || len(payload) > 200 {
			return true
		}
		f := NewUserData(addr, fcb, payload)
		raw, err := f.Marshal()
		if err != nil {
			return false
		}
		got, n, err := Parse(raw)
		if err != nil || n != len(raw) {
			return false
		}
		return got.Addr == addr && got.FCB == fcb && bytes.Equal(got.ASDU, payload)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestOversizeASDURejected(t *testing.T) {
	f := NewUserData(1, false, make([]byte, 300))
	if _, err := f.Marshal(); err == nil {
		t.Fatal("oversize ASDU accepted")
	}
}

// serialASDU builds an IEC 101-native measurement ASDU.
func serialASDU(t *testing.T) []byte {
	t.Helper()
	a := iec104.NewMeasurement(iec104.MMeNc, 9, 1201,
		iec104.Value{Kind: iec104.KindFloat, Float: 117.75}, iec104.CauseSpontaneous)
	b, err := a.Marshal(NativeProfile)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGatewayReencodeProducesStandard104(t *testing.T) {
	gw := NewGateway(NativeProfile, true)
	serial, err := NewUserData(9, false, serialASDU(t)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	apdu, err := gw.FromSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := iec104.ParseAPDU(apdu, iec104.Standard)
	if err != nil {
		t.Fatalf("re-encoded frame not standard: %v", err)
	}
	if got.ASDU.Objects[0].IOA != 1201 || got.ASDU.CommonAddr != 9 {
		t.Fatalf("decoded %+v", got.ASDU)
	}
	if got.ASDU.COT.Cause != iec104.CauseSpontaneous {
		t.Fatalf("cause %v", got.ASDU.COT.Cause)
	}
}

func TestGatewayPassThroughProducesLegacyDialect(t *testing.T) {
	// The §6.1 misconfiguration: the gateway copies IEC 101 ASDU bytes
	// into IEC 104 frames. A strict parser must reject or misread
	// them; the tolerant detector must identify the legacy layout.
	gw := NewGateway(NativeProfile, false)
	serial, err := NewUserData(9, false, serialASDU(t)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	apdu, err := gw.FromSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := iec104.ParseAPDU(apdu, NativeProfile); err != nil {
		t.Fatalf("legacy parse failed: %v", err)
	}
	detected, _, err := iec104.DetectProfile(apdu)
	if err != nil {
		t.Fatalf("detector gave up: %v", err)
	}
	if detected.IsStandard() {
		t.Fatal("pass-through frame detected as standard")
	}
}

func TestGatewayDropsLinkOnlyFrames(t *testing.T) {
	gw := NewGateway(NativeProfile, true)
	ack, _ := NewAck(9).Marshal()
	apdu, err := gw.FromSerial(ack)
	if err != nil {
		t.Fatal(err)
	}
	if apdu != nil {
		t.Fatalf("link ack produced APDU % x", apdu)
	}
}

func TestGatewaySequenceNumbersAdvance(t *testing.T) {
	gw := NewGateway(NativeProfile, true)
	serial, _ := NewUserData(9, false, serialASDU(t)).Marshal()
	var last uint16
	for i := 0; i < 3; i++ {
		apdu, err := gw.FromSerial(serial)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := iec104.ParseAPDU(apdu, iec104.Standard)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && got.SendSeq != last+1 {
			t.Fatalf("send seq %d after %d", got.SendSeq, last)
		}
		last = got.SendSeq
	}
}

func TestGatewayToSerial(t *testing.T) {
	gw := NewGateway(NativeProfile, true)
	// A setpoint command arriving over TCP heads down the serial link.
	sp := iec104.NewSetpointFloat(9, 7001, 55.5, iec104.CauseActivation)
	apdu, err := iec104.NewI(0, 0, sp).Marshal(iec104.Standard)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := gw.ToSerial(apdu, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := Parse(serial)
	if err != nil {
		t.Fatal(err)
	}
	asdu, err := iec104.ParseASDU(f.ASDU, NativeProfile)
	if err != nil {
		t.Fatalf("serial-side ASDU not native: %v", err)
	}
	if asdu.Objects[0].IOA != 7001 || asdu.Objects[0].Value.Float != 55.5 {
		t.Fatalf("decoded %+v", asdu.Objects[0])
	}
	// U frames do not cross the gateway.
	u, _ := iec104.NewU(iec104.UTestFRAct).Marshal(iec104.Standard)
	out, err := gw.ToSerial(u, 9, false)
	if err != nil || out != nil {
		t.Fatalf("U frame crossed: % x err=%v", out, err)
	}
}

func TestGatewayRoundTripThroughBothDirections(t *testing.T) {
	gw := NewGateway(NativeProfile, true)
	serial, _ := NewUserData(9, false, serialASDU(t)).Marshal()
	apdu, err := gw.FromSerial(serial)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gw.ToSerial(apdu, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := Parse(back)
	if err != nil {
		t.Fatal(err)
	}
	orig, _, _ := Parse(serial)
	if !bytes.Equal(f.ASDU, orig.ASDU) {
		t.Fatalf("ASDU changed across the gateway:\n% x\n% x", orig.ASDU, f.ASDU)
	}
}
