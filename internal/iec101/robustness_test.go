package iec101

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnRandomBytes: FT1.2 came from noisy serial
// links; the parser must survive anything.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		if n > 0 && rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				buf[0] = StartVariable
			} else {
				buf[0] = StartFixed
			}
		}
		_, _, _ = Parse(buf)
	}
}
