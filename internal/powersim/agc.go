package powersim

import (
	"time"
)

// SetpointCommand is one AGC dispatch decision: the control server
// sends it to a generator outstation as a C_SE_NC_1 (I50) set point.
type SetpointCommand struct {
	Time      time.Time
	Generator string
	MW        float64
}

// AGC implements the balancing authority's Automatic Generation
// Control loop: it watches the system frequency and redispatches the
// participating generators to restore the set point, the paper's §2
// "ask different electric generation companies to ramp up or slow
// down".
type AGC struct {
	grid *Grid
	// Interval is the control period (typical AGC runs every 2-4 s).
	Interval time.Duration
	// Kp and Ki are the proportional and integral gains on the
	// frequency error in MW/Hz and MW/(Hz·s).
	Kp, Ki float64
	// Deadband suppresses dispatch for tiny frequency errors so the
	// command stream is quiet in steady state.
	Deadband float64

	integral float64
	lastRun  time.Time
	// lastSent caches the last setpoint per generator so commands are
	// only emitted when the target actually moves.
	lastSent map[string]float64
}

// NewAGC wires a controller to the grid.
func NewAGC(g *Grid) *AGC {
	return &AGC{
		grid:     g,
		Interval: 4 * time.Second,
		Kp:       600,
		Ki:       20,
		Deadband: 0.004,
		lastSent: make(map[string]float64),
	}
}

// Run advances the controller to now and returns any setpoint commands
// issued. Call it after Grid.AdvanceTo.
func (a *AGC) Run(now time.Time) []SetpointCommand {
	var cmds []SetpointCommand
	if a.lastRun.IsZero() {
		a.lastRun = now
		return nil
	}
	for !a.lastRun.Add(a.Interval).After(now) {
		a.lastRun = a.lastRun.Add(a.Interval)
		cmds = append(cmds, a.dispatch(a.lastRun)...)
	}
	return cmds
}

func (a *AGC) dispatch(at time.Time) []SetpointCommand {
	g := a.grid
	err := g.Frequency - g.NominalFrequency
	if absf(err) < a.Deadband {
		// Inside the deadband: bleed the integral term slowly so the
		// system does not wind up.
		a.integral *= 0.98
		return nil
	}
	a.integral += err * a.Interval.Seconds()
	// Clamp the integral so ramp-rate-limited units do not wind it up.
	if a.integral > 1 {
		a.integral = 1
	}
	if a.integral < -1 {
		a.integral = -1
	}
	// Positive frequency error means surplus generation: reduce.
	adjust := -(a.Kp*err + a.Ki*a.integral)

	var totalPart float64
	for _, gen := range g.Generators {
		if gen.Participating() {
			totalPart += gen.participation
		}
	}
	if totalPart == 0 {
		return nil
	}
	var cmds []SetpointCommand
	for _, gen := range g.Generators {
		if !gen.Participating() {
			continue
		}
		// Dispatch relative to the unit's *actual* output rather than
		// its previous setpoint: while a ramp-limited unit chases a
		// target, setpoint-relative dispatch would keep stacking the
		// same correction every cycle.
		target := gen.Output + adjust*gen.participation/totalPart
		if target < 0 {
			target = 0
		}
		if target > gen.Capacity {
			target = gen.Capacity
		}
		// Quantise to 0.1 MW so chattering micro-adjustments do not
		// flood the network.
		target = float64(int(target*10+0.5)) / 10
		if prev, ok := a.lastSent[gen.Name]; ok && absf(prev-target) < 0.05 {
			continue
		}
		gen.Setpoint = target
		a.lastSent[gen.Name] = target
		cmds = append(cmds, SetpointCommand{Time: at, Generator: gen.Name, MW: target})
	}
	return cmds
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
