package powersim

import (
	"math"
	"testing"
	"time"
)

var start = time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)

func newTestGrid() *Grid {
	g := NewGrid(start, 1)
	g.AddGenerator("G1", 500, 300, true)
	g.AddGenerator("G2", 400, 200, true)
	g.AddGenerator("G3", 300, 0, false)
	return g
}

func TestSteadyStateHoldsFrequency(t *testing.T) {
	g := newTestGrid()
	g.AdvanceTo(start.Add(5 * time.Minute))
	if d := math.Abs(g.Frequency - g.NominalFrequency); d > 0.05 {
		t.Fatalf("steady-state frequency drifted %.4f Hz", d)
	}
	if got := g.TotalGeneration(); math.Abs(got-500) > 5 {
		t.Fatalf("total generation %.1f, want ~500", got)
	}
}

func TestLoadLossRaisesFrequency(t *testing.T) {
	// The paper's unmet-load event: lost load → surplus generation →
	// frequency rises.
	g := newTestGrid()
	g.AdvanceTo(start.Add(30 * time.Second))
	before := g.Frequency
	g.ScheduleLoadStep(start.Add(31*time.Second), -80)
	g.AdvanceTo(start.Add(60 * time.Second))
	if g.Frequency <= before+0.01 {
		t.Fatalf("frequency %.4f did not rise after load loss (was %.4f)", g.Frequency, before)
	}
}

func TestLoadGainLowersFrequency(t *testing.T) {
	g := newTestGrid()
	g.AdvanceTo(start.Add(30 * time.Second))
	g.ScheduleLoadStep(start.Add(31*time.Second), 80)
	g.AdvanceTo(start.Add(60 * time.Second))
	if g.Frequency >= g.NominalFrequency-0.01 {
		t.Fatalf("frequency %.4f did not fall after load gain", g.Frequency)
	}
}

func TestAGCRestoresFrequencyAfterLoadLoss(t *testing.T) {
	g := newTestGrid()
	agc := NewAGC(g)
	g.ScheduleLoadStep(start.Add(60*time.Second), -80)

	var commands []SetpointCommand
	for ts := start; ts.Before(start.Add(10 * time.Minute)); ts = ts.Add(2 * time.Second) {
		g.AdvanceTo(ts)
		commands = append(commands, agc.Run(ts)...)
	}
	if len(commands) == 0 {
		t.Fatal("AGC issued no commands after a load loss")
	}
	// AGC must have ramped generation down toward the new load.
	if gen := g.TotalGeneration(); math.Abs(gen-420) > 25 {
		t.Fatalf("post-AGC generation %.1f, want ~420", gen)
	}
	if d := math.Abs(g.Frequency - g.NominalFrequency); d > 0.05 {
		t.Fatalf("post-AGC frequency error %.4f Hz", d)
	}
	// The first commands must reduce setpoints (surplus generation).
	first := commands[0]
	if first.MW >= 300 && first.Generator == "G1" {
		t.Fatalf("first AGC command raised G1 to %.1f MW", first.MW)
	}
}

func TestAGCQuietInSteadyState(t *testing.T) {
	g := newTestGrid()
	agc := NewAGC(g)
	var commands []SetpointCommand
	for ts := start; ts.Before(start.Add(3 * time.Minute)); ts = ts.Add(2 * time.Second) {
		g.AdvanceTo(ts)
		commands = append(commands, agc.Run(ts)...)
	}
	if len(commands) > 12 {
		t.Fatalf("AGC chattered %d commands in steady state", len(commands))
	}
}

func TestGeneratorSyncSequence(t *testing.T) {
	g := newTestGrid()
	gen, _ := g.Generator("G3")
	if gen.Online || gen.TerminalVoltage != 0 {
		t.Fatalf("G3 should start offline: %+v", gen)
	}
	if err := g.ScheduleGeneratorSync(start.Add(10*time.Second), "G3", time.Minute, 150); err != nil {
		t.Fatal(err)
	}

	// Mid-ramp: voltage rising, breaker open, no power.
	g.AdvanceTo(start.Add(40 * time.Second))
	if gen.Breaker != BreakerIntermediate {
		t.Fatalf("mid-ramp breaker %v", gen.Breaker)
	}
	if gen.TerminalVoltage <= 0 || gen.TerminalVoltage >= gen.NominalVoltage {
		t.Fatalf("mid-ramp terminal voltage %.1f", gen.TerminalVoltage)
	}
	if gen.Output != 0 {
		t.Fatalf("power flowing before sync: %.1f", gen.Output)
	}

	// After the ramp: breaker closed, power ramping toward 150 MW.
	g.AdvanceTo(start.Add(4 * time.Minute))
	if gen.Breaker != BreakerClosed || !gen.Online {
		t.Fatalf("post-sync breaker %v online %v", gen.Breaker, gen.Online)
	}
	if gen.Output < 50 {
		t.Fatalf("post-sync output %.1f, want ramping toward 150", gen.Output)
	}
	if math.Abs(gen.GridVoltage-gen.NominalVoltage) > 2 {
		t.Fatalf("post-sync grid voltage %.1f", gen.GridVoltage)
	}
}

func TestScheduleSyncUnknownGenerator(t *testing.T) {
	g := newTestGrid()
	if err := g.ScheduleGeneratorSync(start, "nope", time.Minute, 10); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestRampRateLimitsOutput(t *testing.T) {
	g := NewGrid(start, 2)
	gen := g.AddGenerator("G", 600, 100, true)
	gen.RampRate = 1 // MW/s
	gen.Setpoint = 200
	g.AdvanceTo(start.Add(10 * time.Second))
	if gen.Output > 115 {
		t.Fatalf("output %.1f outran the 1 MW/s ramp", gen.Output)
	}
	if gen.Output < 105 {
		t.Fatalf("output %.1f did not ramp", gen.Output)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		g := NewGrid(start, 7)
		g.AddGenerator("G1", 500, 300, true)
		agc := NewAGC(g)
		g.ScheduleLoadStep(start.Add(20*time.Second), -30)
		for ts := start; ts.Before(start.Add(2 * time.Minute)); ts = ts.Add(time.Second) {
			g.AdvanceTo(ts)
			agc.Run(ts)
		}
		return g.Frequency
	}
	if run() != run() {
		t.Fatal("simulation not deterministic for a fixed seed")
	}
}

func TestOfflineGeneratorProducesNothing(t *testing.T) {
	g := newTestGrid()
	g.AdvanceTo(start.Add(time.Minute))
	gen, _ := g.Generator("G3")
	if gen.Output != 0 || gen.GridVoltage != 0 || gen.Current != 0 {
		t.Fatalf("offline unit has live measurements: %+v", gen)
	}
}
