// Package powersim is the physical substrate behind the synthesized
// SCADA traces: an aggregate power-grid frequency model, generator
// models with ramp limits and synchronisation sequences, loads with
// scriptable events (including the paper's "unmet load" incident), and
// an AGC controller that issues setpoint commands — the physical
// signals the paper extracts from the network with deep packet
// inspection (§6.4, Figs. 18-21).
//
// The model is intentionally coarse (a single-area swing equation with
// proportional damping): the paper's analyses consume the *shape* of
// the time series — nominal-vs-fluctuating voltages, frequency
// excursions answered by AGC commands, the 0→nominal voltage ramp and
// breaker closure of a generator coming online — not solver-grade
// dynamics.
package powersim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Defaults for a 60 Hz bulk system.
const (
	DefaultNominalFrequency = 60.0  // Hz
	DefaultNominalVoltage   = 130.0 // kV at the step-up transformer
)

// BreakerStatus mirrors IEC 104 double-point semantics: the paper's
// Fig. 20 shows the generator breaker moving from 0 (intermediate /
// open during ramp-up) to 2 (closed).
type BreakerStatus int

// Breaker states.
const (
	BreakerIntermediate BreakerStatus = 0
	BreakerOpen         BreakerStatus = 1
	BreakerClosed       BreakerStatus = 2
)

// Generator models one AGC-controllable unit.
type Generator struct {
	Name     string
	Capacity float64 // MW
	RampRate float64 // MW/s toward the setpoint

	Setpoint float64 // MW, written by AGC
	Output   float64 // MW produced (0 when offline)

	Online          bool
	Breaker         BreakerStatus
	TerminalVoltage float64 // kV, generator side
	GridVoltage     float64 // kV, transformer output side
	NominalVoltage  float64 // kV
	ReactivePower   float64 // MVAr
	Current         float64 // kA equivalent

	// Synchronisation sequence state (Fig. 20/21): voltage ramps from
	// zero to nominal, the breaker closes, then power flows.
	syncing   bool
	syncStart time.Time
	syncRamp  time.Duration
	// participation weights AGC dispatch; zero excludes the unit.
	participation float64
}

// Participating reports whether AGC steers this unit.
func (g *Generator) Participating() bool { return g.participation > 0 && g.Online }

// SetParticipation adjusts the unit's AGC dispatch weight; zero
// removes it from the control loop (self-dispatched units).
func (g *Generator) SetParticipation(w float64) { g.participation = w }

// Grid is the single-area system model.
type Grid struct {
	NominalFrequency float64
	Frequency        float64
	// Inertia converts MW imbalance into Hz/s (df/dt = imbalance/Inertia).
	Inertia float64
	// Damping pulls frequency toward nominal proportionally to the
	// deviation (load/frequency sensitivity).
	Damping float64

	BaseLoad float64 // MW
	loadBias float64 // scripted load deviations (unmet load events)

	Generators []*Generator

	now    time.Time
	rng    *rand.Rand
	events []scheduledEvent

	// noise magnitudes
	LoadNoise    float64
	VoltageNoise float64
}

// scheduledEvent is a scripted scenario entry.
type scheduledEvent struct {
	at    time.Time
	apply func(*Grid)
}

// NewGrid builds a grid starting at start with deterministic noise
// drawn from seed.
func NewGrid(start time.Time, seed int64) *Grid {
	return &Grid{
		NominalFrequency: DefaultNominalFrequency,
		Frequency:        DefaultNominalFrequency,
		Inertia:          8000, // MW per (Hz/s)
		Damping:          900,  // MW per Hz
		BaseLoad:         0,
		now:              start,
		rng:              rand.New(rand.NewSource(seed)),
		LoadNoise:        0.4,
		VoltageNoise:     0.15,
	}
}

// Now returns the simulation clock.
func (g *Grid) Now() time.Time { return g.now }

// AddGenerator registers a unit. Online units start at their setpoint.
func (g *Grid) AddGenerator(name string, capacity, initialMW float64, online bool) *Generator {
	gen := &Generator{
		Name:           name,
		Capacity:       capacity,
		RampRate:       capacity / 300, // full range in five minutes
		Setpoint:       initialMW,
		NominalVoltage: DefaultNominalVoltage,
		participation:  capacity,
	}
	if online {
		gen.Online = true
		gen.Breaker = BreakerClosed
		gen.Output = initialMW
		gen.TerminalVoltage = gen.NominalVoltage * 0.97
		gen.GridVoltage = gen.NominalVoltage
	}
	g.Generators = append(g.Generators, gen)
	g.BaseLoad += initialMW
	return gen
}

// Generator looks a unit up by name.
func (g *Grid) Generator(name string) (*Generator, bool) {
	for _, gen := range g.Generators {
		if gen.Name == name {
			return gen, true
		}
	}
	return nil, false
}

// ScheduleLoadStep scripts a load change of delta MW at time at. A
// negative delta models the paper's unmet-load incident: lost load,
// surplus generation, rising frequency.
func (g *Grid) ScheduleLoadStep(at time.Time, delta float64) {
	g.events = append(g.events, scheduledEvent{at: at, apply: func(gr *Grid) {
		gr.loadBias += delta
	}})
	g.sortEvents()
}

// ScheduleGeneratorSync scripts the Fig. 20 sequence: starting at `at`
// the unit's terminal voltage ramps from zero to nominal over ramp;
// the breaker then closes and the unit begins delivering power toward
// targetMW.
func (g *Grid) ScheduleGeneratorSync(at time.Time, name string, ramp time.Duration, targetMW float64) error {
	gen, ok := g.Generator(name)
	if !ok {
		return fmt.Errorf("powersim: unknown generator %q", name)
	}
	g.events = append(g.events, scheduledEvent{at: at, apply: func(gr *Grid) {
		gen.syncing = true
		gen.syncStart = gr.now
		gen.syncRamp = ramp
		gen.Breaker = BreakerIntermediate
		gen.Setpoint = targetMW
	}})
	g.sortEvents()
	return nil
}

func (g *Grid) sortEvents() {
	sort.SliceStable(g.events, func(i, j int) bool { return g.events[i].at.Before(g.events[j].at) })
}

// Load returns the current system load in MW.
func (g *Grid) Load() float64 { return g.BaseLoad + g.loadBias }

// TotalGeneration sums online unit outputs.
func (g *Grid) TotalGeneration() float64 {
	var sum float64
	for _, gen := range g.Generators {
		if gen.Online {
			sum += gen.Output
		}
	}
	return sum
}

// AdvanceTo steps the simulation to t using fixed sub-steps.
func (g *Grid) AdvanceTo(t time.Time) {
	const dt = 500 * time.Millisecond
	for g.now.Before(t) {
		step := dt
		if rem := t.Sub(g.now); rem < dt {
			step = rem
		}
		g.step(step)
	}
}

func (g *Grid) step(dt time.Duration) {
	g.now = g.now.Add(dt)
	for len(g.events) > 0 && !g.events[0].at.After(g.now) {
		g.events[0].apply(g)
		g.events = g.events[1:]
	}
	sec := dt.Seconds()

	for _, gen := range g.Generators {
		g.stepGenerator(gen, sec)
	}

	load := g.Load() + g.rng.NormFloat64()*g.LoadNoise
	imbalance := g.TotalGeneration() - load
	df := (imbalance - g.Damping*(g.Frequency-g.NominalFrequency)) / g.Inertia
	g.Frequency += df * sec
}

func (g *Grid) stepGenerator(gen *Generator, sec float64) {
	if gen.syncing {
		elapsed := g.now.Sub(gen.syncStart)
		frac := float64(elapsed) / float64(gen.syncRamp)
		switch {
		case frac < 1:
			// Voltage ramp: terminal voltage rises toward nominal
			// while the breaker stays open and no power flows.
			gen.TerminalVoltage = gen.NominalVoltage * frac
			gen.GridVoltage = 0
			gen.Output = 0
		default:
			// Synchronised: close the breaker, start delivering.
			gen.syncing = false
			gen.Online = true
			gen.Breaker = BreakerClosed
			gen.TerminalVoltage = gen.NominalVoltage * 0.97
			gen.GridVoltage = gen.NominalVoltage
		}
		return
	}
	if !gen.Online {
		gen.Output = 0
		gen.TerminalVoltage = 0
		gen.GridVoltage = 0
		gen.ReactivePower = 0
		gen.Current = 0
		return
	}
	// Ramp output toward the setpoint.
	diff := gen.Setpoint - gen.Output
	maxStep := gen.RampRate * sec
	if diff > maxStep {
		diff = maxStep
	}
	if diff < -maxStep {
		diff = -maxStep
	}
	gen.Output += diff
	if gen.Output < 0 {
		gen.Output = 0
	}
	if gen.Output > gen.Capacity {
		gen.Output = gen.Capacity
	}
	// Voltages hover near nominal with small noise; reactive power
	// follows voltage support needs (can be negative).
	gen.GridVoltage = gen.NominalVoltage + g.rng.NormFloat64()*g.VoltageNoise
	gen.TerminalVoltage = gen.GridVoltage * 0.97
	gen.ReactivePower = 0.15*gen.Output + g.rng.NormFloat64()*0.5
	if gen.GridVoltage > 0 {
		gen.Current = gen.Output / (gen.GridVoltage * math.Sqrt(3) / 1000)
	}
}
