package markov

import (
	"math"
	"testing"

	"uncharted/internal/iec104"
)

func toks(names ...string) []iec104.Token {
	out := make([]iec104.Token, len(names))
	for i, n := range names {
		t, err := iec104.ParseToken(n)
		if err != nil {
			panic(err)
		}
		out[i] = t
	}
	return out
}

func TestChainPrimaryPattern(t *testing.T) {
	// Fig. 12 left: I36 reports acknowledged by S.
	c := NewChain()
	c.Add(toks("I36", "I36", "S", "I36", "I36", "S", "I36"))
	if c.Nodes() != 2 {
		t.Fatalf("nodes %d", c.Nodes())
	}
	// Edges: I36->I36, I36->S, S->I36.
	if c.Edges() != 3 {
		t.Fatalf("edges %d", c.Edges())
	}
	pII := c.Prob(toks("I36")[0], toks("I36")[0])
	pIS := c.Prob(toks("I36")[0], toks("S")[0])
	if math.Abs(pII+pIS-1) > 1e-9 {
		t.Fatalf("outgoing probabilities %v + %v != 1", pII, pIS)
	}
	if pSI := c.Prob(toks("S")[0], toks("I36")[0]); pSI != 1 {
		t.Fatalf("S->I36 = %v", pSI)
	}
}

func TestChainSecondaryPattern(t *testing.T) {
	// Fig. 12 right: U16/U32 keep-alive ping-pong.
	c := NewChain()
	c.Add(toks("U16", "U32", "U16", "U32", "U16", "U32"))
	if c.Nodes() != 2 || c.Edges() != 2 {
		t.Fatalf("nodes %d edges %d", c.Nodes(), c.Edges())
	}
	if Classify11SquareEllipse(c) != ClusterSquare {
		t.Fatalf("healthy secondary classified %v", Classify11SquareEllipse(c))
	}
}

func TestChainPoint11(t *testing.T) {
	// Fig. 14: repeated U16 without acknowledgement.
	c := NewChain()
	c.Add(toks("U16", "U16", "U16", "U16"))
	if !c.IsPoint11() {
		t.Fatalf("nodes %d edges %d", c.Nodes(), c.Edges())
	}
	if Classify11SquareEllipse(c) != ClusterPoint11 {
		t.Fatal("not classified as point (1,1)")
	}
}

func TestChainEllipse(t *testing.T) {
	// Fig. 15: activation, interrogation, then data.
	c := NewChain()
	c.Add(toks("U1", "U2", "I100", "I13", "I36", "I13", "S", "I13"))
	if !c.HasInterrogation() {
		t.Fatal("I100 not detected")
	}
	if Classify11SquareEllipse(c) != ClusterEllipse {
		t.Fatal("not classified as ellipse")
	}
	if c.Nodes() < 5 {
		t.Fatalf("nodes %d", c.Nodes())
	}
}

func TestChainSeparateSequencesNotStitched(t *testing.T) {
	c := NewChain()
	c.Add(toks("I13"))
	c.Add(toks("S"))
	if c.Edges() != 0 {
		t.Fatalf("cross-sequence edge created: %d", c.Edges())
	}
	if c.Nodes() != 2 || c.TotalTokens() != 2 {
		t.Fatalf("nodes %d total %d", c.Nodes(), c.TotalTokens())
	}
}

func TestChainEdgeListDeterministic(t *testing.T) {
	c := NewChain()
	c.Add(toks("U16", "U32", "U16", "U32", "I13", "S"))
	e1 := c.EdgeList()
	e2 := c.EdgeList()
	if len(e1) != len(e2) {
		t.Fatal("edge list unstable")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edge list order unstable")
		}
	}
	for _, e := range e1 {
		if e.Prob <= 0 || e.Prob > 1 {
			t.Fatalf("edge %v prob %v", e, e.Prob)
		}
	}
}

func TestNGramMLE(t *testing.T) {
	m, err := NewNGram(2)
	if err != nil {
		t.Fatal(err)
	}
	// (S, I36) and (I13, I13) examples straight from §6.3.1.
	m.Train(toks("S", "I36", "S", "I36", "S", "I13", "I13"))
	p, err := m.Prob(toks("S", "I36"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-2.0/3.0) > 1e-9 {
		t.Fatalf("P(I36|S) = %v, want 2/3", p)
	}
	p, _ = m.Prob(toks("I13", "I13"))
	if p != 1 {
		t.Fatalf("P(I13|I13) = %v", p)
	}
	p, _ = m.Prob(toks("I36", "U16"))
	if p != 0 {
		t.Fatalf("unseen gram probability %v", p)
	}
}

func TestNGramErrors(t *testing.T) {
	if _, err := NewNGram(0); err == nil {
		t.Error("order 0 accepted")
	}
	m, _ := NewNGram(3)
	if _, err := m.Prob(toks("S", "I36")); err == nil {
		t.Error("wrong gram length accepted")
	}
	if _, err := m.SequenceLogProb(toks("S")); err == nil {
		t.Error("too-short sequence accepted")
	}
}

func TestNGramPerplexityDiscriminates(t *testing.T) {
	m, _ := NewNGram(2)
	// Train on healthy primary traffic.
	var healthy []iec104.Token
	for i := 0; i < 50; i++ {
		healthy = append(healthy, toks("I36", "I36", "S")...)
	}
	m.Train(healthy)
	inDist, err := m.Perplexity(toks("I36", "I36", "S", "I36", "I36", "S"))
	if err != nil {
		t.Fatal(err)
	}
	attack, err := m.Perplexity(toks("I100", "I45", "I46", "I100", "I45"))
	if err != nil {
		t.Fatal(err)
	}
	if attack <= inDist {
		t.Fatalf("attack perplexity %v <= in-distribution %v", attack, inDist)
	}
}

func TestNGramTrigram(t *testing.T) {
	m, _ := NewNGram(3)
	m.Train(toks("U16", "U32", "U16", "U32", "U16", "U32"))
	p, err := m.Prob(toks("U16", "U32", "U16"))
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("P(U16|U16 U32) = %v", p)
	}
}

func chainOf(names ...string) *Chain {
	c := NewChain()
	c.Add(toks(names...))
	return c
}

func TestClassifyTypes(t *testing.T) {
	cases := []struct {
		name  string
		conns []ConnSummary
		want  int
	}{
		{"type1 primary only", []ConnSummary{
			{Server: "C1", Outstation: "O1", Chain: chainOf("I36", "I36", "S")},
		}, 1},
		{"type2 ideal", []ConnSummary{
			{Server: "C1", Outstation: "O4", Chain: chainOf("I36", "S", "I36")},
			{Server: "C2", Outstation: "O4", Chain: chainOf("U16", "U32", "U16", "U32")},
		}, 2},
		{"type3 backup RTU", []ConnSummary{
			{Server: "C1", Outstation: "O11", Chain: chainOf("U16", "U32")},
			{Server: "C2", Outstation: "O11", Chain: chainOf("U16", "U32")},
		}, 3},
		{"type4 both servers", []ConnSummary{
			{Server: "C1", Outstation: "O12", Chain: chainOf("I13", "S", "I13")},
			{Server: "C2", Outstation: "O12", Chain: chainOf("I13", "I13")},
		}, 4},
		{"type5 single with I and U", []ConnSummary{
			{Server: "C1", Outstation: "O40", Chain: chainOf("I13", "U16", "U32", "I13", "S")},
		}, 5},
		{"type6 refused secondary", []ConnSummary{
			{Server: "C2", Outstation: "O5", Chain: chainOf("I36", "S")},
			{Server: "C1", Outstation: "O5", Chain: chainOf("U16", "U16", "U16")},
		}, 6},
		{"type7 reset backup", []ConnSummary{
			{Server: "C2", Outstation: "O7", Chain: chainOf("U16", "U32")},
			{Server: "C1", Outstation: "O7", Chain: chainOf("U16", "U16")},
		}, 7},
		{"type8 switchover", []ConnSummary{
			{Server: "C1", Outstation: "O29", Chain: chainOf("I36", "S", "I36")},
			{Server: "C2", Outstation: "O29", Chain: chainOf("U16", "U32", "U16", "U32", "U1", "U2", "I100", "I13", "I36", "S")},
		}, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ClassifyOutstation(c.conns)
			if got.Type != c.want {
				t.Fatalf("classified type %d, want %d", got.Type, c.want)
			}
		})
	}
}

func TestClassifyAllAndDistribution(t *testing.T) {
	conns := []ConnSummary{
		{Server: "C1", Outstation: "O1", Chain: chainOf("I36", "S")},
		{Server: "C1", Outstation: "O11", Chain: chainOf("U16", "U32")},
		{Server: "C2", Outstation: "O11", Chain: chainOf("U16", "U32")},
	}
	classes := ClassifyAll(conns)
	if len(classes) != 2 {
		t.Fatalf("%d classes", len(classes))
	}
	if classes[0].Outstation != "O1" || classes[1].Outstation != "O11" {
		t.Fatalf("order %v", classes)
	}
	dist := TypeDistribution(classes)
	if dist[1] != 1 || dist[3] != 1 {
		t.Fatalf("distribution %v", dist)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := ClassifyOutstation(nil); got.Type != 0 {
		t.Fatalf("empty classified %d", got.Type)
	}
}
