package markov

import "uncharted/internal/stats"

// TokenJSD returns the Jensen–Shannon divergence between the unigram
// token distributions of two chains, in bits ([0, 1]). It measures
// whether a connection still *speaks* the same token mix — the coarse
// half of the drift engine's per-connection comparison.
func TokenJSD(a, b *Chain) float64 {
	return stats.JensenShannon(tokenDist(a), tokenDist(b))
}

// TransitionJSD returns the Jensen–Shannon divergence between the
// joint transition distributions P(from, to) of two chains, in bits
// ([0, 1]). Comparing joint rather than conditional probabilities
// keeps the metric well-defined when the chains have different node
// sets, and weights each transition by how often it actually occurs.
func TransitionJSD(a, b *Chain) float64 {
	return stats.JensenShannon(edgeDist(a), edgeDist(b))
}

func tokenDist(c *Chain) map[string]float64 {
	if c == nil {
		return nil
	}
	out := make(map[string]float64, len(c.nodes))
	for tok, n := range c.nodes {
		out[tok.String()] = float64(n)
	}
	return out
}

func edgeDist(c *Chain) map[string]float64 {
	if c == nil {
		return nil
	}
	out := make(map[string]float64)
	for from, m := range c.counts {
		for to, n := range m {
			out[from.String()+" "+to.String()] = float64(n)
		}
	}
	return out
}
