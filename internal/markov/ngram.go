package markov

import (
	"fmt"
	"math"
	"strings"

	"uncharted/internal/iec104"
)

// NGram is an order-n language model over APDU tokens with maximum
// likelihood estimation (the paper's equations (1) and (2)) and
// optional add-one smoothing for scoring unseen sequences.
type NGram struct {
	n      int
	counts map[string]int // n-gram joint counts
	ctx    map[string]int // (n-1)-gram context counts
	vocab  map[string]bool
}

// NewNGram builds an empty model of order n (n >= 1).
func NewNGram(n int) (*NGram, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: n-gram order %d < 1", n)
	}
	return &NGram{
		n:      n,
		counts: make(map[string]int),
		ctx:    make(map[string]int),
		vocab:  make(map[string]bool),
	}, nil
}

// Order returns n.
func (m *NGram) Order() int { return m.n }

func key(toks []iec104.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Train adds one token sequence to the model.
func (m *NGram) Train(seq []iec104.Token) {
	for _, t := range seq {
		m.vocab[t.String()] = true
	}
	if len(seq) < m.n {
		return
	}
	for i := 0; i+m.n <= len(seq); i++ {
		gram := seq[i : i+m.n]
		m.counts[key(gram)]++
		m.ctx[key(gram[:m.n-1])]++
	}
}

// VocabSize returns the number of distinct tokens seen.
func (m *NGram) VocabSize() int { return len(m.vocab) }

// Prob returns the MLE conditional probability of the last token of
// gram given its n-1 predecessors. gram must have length n.
func (m *NGram) Prob(gram []iec104.Token) (float64, error) {
	if len(gram) != m.n {
		return 0, fmt.Errorf("markov: gram length %d, model order %d", len(gram), m.n)
	}
	c := m.ctx[key(gram[:m.n-1])]
	if c == 0 {
		return 0, nil
	}
	return float64(m.counts[key(gram)]) / float64(c), nil
}

// SmoothedProb is Prob with add-one (Laplace) smoothing, usable for
// scoring sequences containing unseen transitions.
func (m *NGram) SmoothedProb(gram []iec104.Token) (float64, error) {
	if len(gram) != m.n {
		return 0, fmt.Errorf("markov: gram length %d, model order %d", len(gram), m.n)
	}
	v := len(m.vocab)
	if v == 0 {
		return 0, fmt.Errorf("markov: empty model")
	}
	c := m.ctx[key(gram[:m.n-1])]
	return (float64(m.counts[key(gram)]) + 1) / (float64(c) + float64(v)), nil
}

// SequenceLogProb scores a whole sequence via the chain rule (the
// paper's equation (1)) using smoothed probabilities, returning the
// natural-log probability.
func (m *NGram) SequenceLogProb(seq []iec104.Token) (float64, error) {
	if len(seq) < m.n {
		return 0, fmt.Errorf("markov: sequence shorter than model order")
	}
	var lp float64
	for i := 0; i+m.n <= len(seq); i++ {
		p, err := m.SmoothedProb(seq[i : i+m.n])
		if err != nil {
			return 0, err
		}
		if p == 0 {
			return math.Inf(-1), nil
		}
		lp += math.Log(p)
	}
	return lp, nil
}

// Perplexity returns exp(-logprob / #grams) for a sequence: lower
// means the sequence looks more like the training traffic. This is the
// anomaly score a whitelisting IDS would use (the paper's future-work
// direction).
func (m *NGram) Perplexity(seq []iec104.Token) (float64, error) {
	lp, err := m.SequenceLogProb(seq)
	if err != nil {
		return 0, err
	}
	grams := len(seq) - m.n + 1
	return math.Exp(-lp / float64(grams)), nil
}
