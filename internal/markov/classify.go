package markov

import (
	"sort"

	"uncharted/internal/iec104"
	"uncharted/internal/protocol"
)

// ConnSummary condenses one server↔outstation token stream for
// classification.
type ConnSummary struct {
	Server     string
	Outstation string
	Chain      *Chain
}

// flags derived from a chain.
type connFlags struct {
	hasI, hasI100, hasU16, hasU32, hasS bool
}

func flagsOf(c *Chain) connFlags {
	var f connFlags
	for _, t := range c.Tokens() {
		// The Table 6 rules are defined over the IEC 104 alphabet; other
		// dialects' tokens in a mixed chain carry no classification signal.
		if t.Proto != protocol.IEC104 {
			continue
		}
		switch t.Kind {
		case protocol.KindIEC104I:
			f.hasI = true
			if iec104.TypeID(t.Code) == iec104.CIcNa {
				f.hasI100 = true
			}
		case protocol.KindIEC104S:
			f.hasS = true
		case protocol.KindIEC104U:
			switch iec104.UFunc(t.Code) {
			case iec104.UTestFRAct:
				f.hasU16 = true
			case iec104.UTestFRCon:
				f.hasU32 = true
			}
		}
	}
	return f
}

// OutstationClass is the classification verdict for one RTU.
type OutstationClass struct {
	Outstation string
	Type       int // 1..8, 0 = unclassifiable
	// Connections counts the server relationships considered.
	Connections int
}

// ClassifyOutstation applies the Table 6 / Fig. 17 rules to every
// connection of one outstation (across both control servers and, when
// the caller merges campaigns, across captures):
//
//	Type 8: a connection that was a keep-alive secondary and then
//	        carried an interrogation and I data — an observed
//	        switchover.
//	Type 7: only keep-alive-style connections, at least one of which
//	        shows U16 without the U32 acknowledgement (reset backups).
//	Type 6: an I-format primary plus a refused secondary (U16, no U32).
//	Type 5: a single connection carrying both I and complete keep-alive
//	        pairs (T3 firing between sparse spontaneous reports).
//	Type 2: an I-format primary plus a healthy U16/U32 secondary.
//	Type 4: I-format connections to two different servers.
//	Type 3: only healthy keep-alive connections (backup RTU).
//	Type 1: a single I-format connection, no secondary.
func ClassifyOutstation(conns []ConnSummary) OutstationClass {
	if len(conns) == 0 {
		return OutstationClass{}
	}
	out := OutstationClass{Outstation: conns[0].Outstation, Connections: len(conns)}

	perServer := map[string]connFlags{}
	for _, c := range conns {
		f := flagsOf(c.Chain)
		prev := perServer[c.Server]
		perServer[c.Server] = connFlags{
			hasI:    prev.hasI || f.hasI,
			hasI100: prev.hasI100 || f.hasI100,
			hasU16:  prev.hasU16 || f.hasU16,
			hasU32:  prev.hasU32 || f.hasU32,
			hasS:    prev.hasS || f.hasS,
		}
	}

	var iServers, keepAliveServers, refusedServers, switchoverServers int
	var soloBoth bool
	for _, f := range perServer {
		switch {
		case f.hasI && f.hasU16 && f.hasU32 && f.hasI100:
			switchoverServers++
		case f.hasI:
			iServers++
			if f.hasU16 {
				soloBoth = true
			}
		case f.hasU16 && !f.hasU32:
			refusedServers++
		case f.hasU16 && f.hasU32:
			keepAliveServers++
		}
	}

	switch {
	case switchoverServers > 0:
		out.Type = 8
	case refusedServers > 0 && iServers+switchoverServers == 0 && !soloBoth:
		out.Type = 7
	case refusedServers > 0:
		out.Type = 6
	case soloBoth && iServers == 1 && keepAliveServers == 0:
		out.Type = 5
	case iServers == 1 && keepAliveServers > 0:
		out.Type = 2
	case iServers >= 2:
		out.Type = 4
	case iServers == 0 && keepAliveServers > 0:
		out.Type = 3
	case iServers == 1:
		out.Type = 1
	}
	return out
}

// ClassifyAll groups connection summaries by outstation and classifies
// each, returning results sorted by outstation name.
func ClassifyAll(conns []ConnSummary) []OutstationClass {
	byOut := map[string][]ConnSummary{}
	for _, c := range conns {
		byOut[c.Outstation] = append(byOut[c.Outstation], c)
	}
	var out []OutstationClass
	for _, group := range byOut {
		out = append(out, ClassifyOutstation(group))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Outstation < out[j].Outstation })
	return out
}

// TypeDistribution tallies classes 1..8 (index 0 collects
// unclassifiable stations).
func TypeDistribution(classes []OutstationClass) [9]int {
	var dist [9]int
	for _, c := range classes {
		if c.Type >= 0 && c.Type <= 8 {
			dist[c.Type]++
		}
	}
	return dist
}
