// Package markov models APDU token sequences the way the paper does in
// §6.3.1: N-gram language models with maximum-likelihood transition
// probabilities, per-connection Markov chains whose node/edge counts
// reproduce the Fig. 13 scatter, and the eight-way connection-type
// classifier of Table 6 / Fig. 17.
package markov

import (
	"fmt"
	"sort"
	"strings"

	"uncharted/internal/iec104"
)

// Edge is one observed transition with its MLE probability.
type Edge struct {
	From, To iec104.Token
	Count    int
	Prob     float64
}

// Chain is a first-order Markov chain over APDU tokens.
type Chain struct {
	counts map[iec104.Token]map[iec104.Token]int
	outs   map[iec104.Token]int
	nodes  map[iec104.Token]int
	total  int
}

// NewChain returns an empty chain.
func NewChain() *Chain {
	return &Chain{
		counts: make(map[iec104.Token]map[iec104.Token]int),
		outs:   make(map[iec104.Token]int),
		nodes:  make(map[iec104.Token]int),
	}
}

// Add extends the chain with a token sequence. Sequences added
// separately are not stitched together (no cross-sequence bigram).
func (c *Chain) Add(seq []iec104.Token) {
	for i, tok := range seq {
		c.nodes[tok]++
		c.total++
		if i == 0 {
			continue
		}
		prev := seq[i-1]
		m, ok := c.counts[prev]
		if !ok {
			m = make(map[iec104.Token]int)
			c.counts[prev] = m
		}
		m[tok]++
		c.outs[prev]++
	}
}

// Merge folds another chain's counts into c: node, edge and total
// counts add. Sequences observed separately stay unstitched — no
// cross-chain bigram is invented, matching Add's semantics.
func (c *Chain) Merge(o *Chain) {
	if o == nil {
		return
	}
	for tok, n := range o.nodes {
		c.nodes[tok] += n
	}
	c.total += o.total
	for from, m := range o.counts {
		dst, ok := c.counts[from]
		if !ok {
			dst = make(map[iec104.Token]int, len(m))
			c.counts[from] = dst
		}
		for to, n := range m {
			dst[to] += n
		}
	}
	for from, n := range o.outs {
		c.outs[from] += n
	}
}

// Nodes returns the number of distinct tokens observed.
func (c *Chain) Nodes() int { return len(c.nodes) }

// Edges returns the number of distinct transitions observed.
func (c *Chain) Edges() int {
	n := 0
	for _, m := range c.counts {
		n += len(m)
	}
	return n
}

// Tokens returns the distinct tokens in canonical order.
func (c *Chain) Tokens() []iec104.Token {
	out := make([]iec104.Token, 0, len(c.nodes))
	for t := range c.nodes {
		out = append(out, t)
	}
	iec104.SortTokens(out)
	return out
}

// TotalTokens returns the number of token observations.
func (c *Chain) TotalTokens() int { return c.total }

// Count returns how often token t was observed.
func (c *Chain) Count(t iec104.Token) int { return c.nodes[t] }

// Prob returns the MLE transition probability P(to | from), equation
// (2) of the paper: C(from,to) / C(from,·).
func (c *Chain) Prob(from, to iec104.Token) float64 {
	if c.outs[from] == 0 {
		return 0
	}
	return float64(c.counts[from][to]) / float64(c.outs[from])
}

// EdgeList returns every transition sorted by (from, to).
func (c *Chain) EdgeList() []Edge {
	var out []Edge
	for from, m := range c.counts {
		for to, cnt := range m {
			out = append(out, Edge{From: from, To: to, Count: cnt, Prob: c.Prob(from, to)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From.String() != out[j].From.String() {
			return out[i].From.String() < out[j].From.String()
		}
		return out[i].To.String() < out[j].To.String()
	})
	return out
}

// Has reports whether the token appears in the chain.
func (c *Chain) Has(t iec104.Token) bool { return c.nodes[t] > 0 }

// HasInterrogation reports whether the chain contains I100 — the
// discriminator of the Fig. 13 ellipse.
func (c *Chain) HasInterrogation() bool { return c.Has(iec104.TokenInterro) }

// IsPoint11 reports whether the chain sits at Fig. 13's point (1,1):
// a single node with a self-edge — the repeated unanswered U16 of the
// reset backup connections (Fig. 14). A capture so short it caught
// only one unanswered U16 (one node, zero edges) counts too: the
// defining symptom is "nothing but TESTFR act".
func (c *Chain) IsPoint11() bool {
	if c.Nodes() != 1 || c.Edges() > 1 {
		return false
	}
	return c.nodes[iec104.TokenTestFRAct] > 0
}

// String renders a compact dot-like description for reports.
func (c *Chain) String() string {
	var b strings.Builder
	for _, e := range c.EdgeList() {
		fmt.Fprintf(&b, "%s->%s(%.2f) ", e.From, e.To, e.Prob)
	}
	return strings.TrimSpace(b.String())
}

// SizeCluster buckets a connection for the Fig. 13 scatter.
type SizeCluster int

// Fig. 13 regions.
const (
	ClusterPoint11 SizeCluster = iota // abnormal reset backups
	ClusterSquare                     // regular chains without interrogation
	ClusterEllipse                    // chains containing I100
)

func (s SizeCluster) String() string {
	switch s {
	case ClusterPoint11:
		return "point(1,1)"
	case ClusterSquare:
		return "square"
	default:
		return "ellipse"
	}
}

// Classify11SquareEllipse places a chain in its Fig. 13 region.
func Classify11SquareEllipse(c *Chain) SizeCluster {
	switch {
	case c.IsPoint11():
		return ClusterPoint11
	case c.HasInterrogation():
		return ClusterEllipse
	default:
		return ClusterSquare
	}
}
