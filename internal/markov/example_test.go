package markov_test

import (
	"fmt"

	"uncharted/internal/iec104"
	"uncharted/internal/markov"
)

func toks(names ...string) []iec104.Token {
	out := make([]iec104.Token, len(names))
	for i, n := range names {
		t, err := iec104.ParseToken(n)
		if err != nil {
			panic(err)
		}
		out[i] = t
	}
	return out
}

// Build the Markov chain of a healthy secondary connection: the
// U16/U32 keep-alive ping-pong of the paper's Fig. 12.
func ExampleChain() {
	ch := markov.NewChain()
	ch.Add(toks("U16", "U32", "U16", "U32", "U16", "U32"))
	fmt.Printf("nodes=%d edges=%d P(U32|U16)=%.2f region=%s\n",
		ch.Nodes(), ch.Edges(),
		ch.Prob(toks("U16")[0], toks("U32")[0]),
		markov.Classify11SquareEllipse(ch))
	// Output: nodes=2 edges=2 P(U32|U16)=1.00 region=square
}

// The reset-backup pathology: only unanswered TESTFR keep-alives — the
// point (1,1) of the paper's Fig. 13.
func ExampleChain_IsPoint11() {
	ch := markov.NewChain()
	ch.Add(toks("U16", "U16", "U16"))
	fmt.Println(ch.IsPoint11())
	// Output: true
}

// Classify an outstation from its per-server connection chains: a
// primary data link plus a healthy keep-alive secondary is the
// standard's ideal Type 2.
func ExampleClassifyOutstation() {
	primary := markov.NewChain()
	primary.Add(toks("I36", "I36", "S", "I36"))
	secondary := markov.NewChain()
	secondary.Add(toks("U16", "U32", "U16", "U32"))

	class := markov.ClassifyOutstation([]markov.ConnSummary{
		{Server: "C1", Outstation: "O4", Chain: primary},
		{Server: "C2", Outstation: "O4", Chain: secondary},
	})
	fmt.Printf("%s is Type%d\n", class.Outstation, class.Type)
	// Output: O4 is Type2
}

// Score traffic against a bigram language model: an interrogation
// burst looks nothing like steady reporting.
func ExampleNGram_Perplexity() {
	m, _ := markov.NewNGram(2)
	var stream []string
	for i := 0; i < 20; i++ {
		stream = append(stream, "I36", "I36", "S")
	}
	m.Train(toks(stream...))
	normal, _ := m.Perplexity(toks("I36", "I36", "S", "I36"))
	weird, _ := m.Perplexity(toks("I100", "I45", "I100", "I45"))
	fmt.Println(normal < weird)
	// Output: true
}
