package markov

import (
	"fmt"
	"sort"

	"uncharted/internal/iec104"
)

// TokenCount is one token's observation count in a ChainState.
type TokenCount struct {
	Token iec104.Token
	Count int
}

// EdgeCount is one transition's observation count in a ChainState.
type EdgeCount struct {
	From, To iec104.Token
	Count    int
}

// ChainState is a Chain's full serializable state: node and edge
// counts in canonical (sorted) order. Out-degrees and the total token
// count are derivable and rebuilt on restore, so two chains with equal
// states are behaviourally identical. Building the same State twice —
// or once before and once after a round trip — yields identical
// values, which is what makes the drift codec's output bit-exact.
type ChainState struct {
	Nodes []TokenCount
	Edges []EdgeCount
}

// State snapshots the chain. The result shares nothing with c.
func (c *Chain) State() ChainState {
	var s ChainState
	for tok, n := range c.nodes {
		s.Nodes = append(s.Nodes, TokenCount{Token: tok, Count: n})
	}
	sort.Slice(s.Nodes, func(i, j int) bool {
		return s.Nodes[i].Token.String() < s.Nodes[j].Token.String()
	})
	for from, m := range c.counts {
		for to, n := range m {
			s.Edges = append(s.Edges, EdgeCount{From: from, To: to, Count: n})
		}
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].From.String() != s.Edges[j].From.String() {
			return s.Edges[i].From.String() < s.Edges[j].From.String()
		}
		return s.Edges[i].To.String() < s.Edges[j].To.String()
	})
	return s
}

// ChainFromState rebuilds a chain from a snapshot, rederiving the
// out-degree and total-token counters.
func ChainFromState(s ChainState) *Chain {
	c := NewChain()
	for _, nc := range s.Nodes {
		c.nodes[nc.Token] += nc.Count
		c.total += nc.Count
	}
	for _, ec := range s.Edges {
		m, ok := c.counts[ec.From]
		if !ok {
			m = make(map[iec104.Token]int)
			c.counts[ec.From] = m
		}
		m[ec.To] += ec.Count
		c.outs[ec.From] += ec.Count
	}
	return c
}

// StringCount is one string-keyed count in an NGramState.
type StringCount struct {
	Key   string
	Count int
}

// NGramState is an NGram's full serializable state. Counts, contexts
// and vocabulary are kept explicitly (vocabulary covers tokens from
// sequences shorter than the model order, so it is not derivable from
// the gram counts) in sorted order for deterministic encoding.
type NGramState struct {
	N        int
	Counts   []StringCount
	Contexts []StringCount
	Vocab    []string
}

func sortedCounts(m map[string]int) []StringCount {
	out := make([]StringCount, 0, len(m))
	for k, v := range m {
		out = append(out, StringCount{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// State snapshots the model. The result shares nothing with m.
func (m *NGram) State() NGramState {
	s := NGramState{
		N:        m.n,
		Counts:   sortedCounts(m.counts),
		Contexts: sortedCounts(m.ctx),
	}
	for t := range m.vocab {
		s.Vocab = append(s.Vocab, t)
	}
	sort.Strings(s.Vocab)
	return s
}

// NGramFromState rebuilds a model from a snapshot.
func NGramFromState(s NGramState) (*NGram, error) {
	m, err := NewNGram(s.N)
	if err != nil {
		return nil, fmt.Errorf("markov: restore n-gram: %w", err)
	}
	for _, c := range s.Counts {
		m.counts[c.Key] = c.Count
	}
	for _, c := range s.Contexts {
		m.ctx[c.Key] = c.Count
	}
	for _, t := range s.Vocab {
		m.vocab[t] = true
	}
	return m, nil
}
