package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
)

// ErrNotReady is returned by a live Source when no packet is available
// yet: the caller should flush in-flight work and poll again shortly.
// It is a flow-control signal, not a failure.
var ErrNotReady = errors.New("stream: no packet available yet")

// Source yields decoded packets to the engine. Next returns io.EOF
// when the source is exhausted for good and ErrNotReady when a live
// source has nothing right now. Sources are used from a single
// goroutine (the engine's reader stage).
type Source interface {
	Next() (pcap.Packet, error)
	Close() error
}

// RawSource is the zero-copy fast path a Source may additionally
// implement: NextRaw returns the next capture record undecoded, read
// into scratch (grown as needed — same ownership contract as
// pcap.ReadPacketInto). Unlike Next it does NOT skip undecodable
// records; the engine routes every record to a shard whose worker
// performs the decode and skips failures there, which keeps the skip
// semantics identical to the decoded path while moving the L2-L4
// decode work off the reader goroutine.
type RawSource interface {
	Source
	NextRaw(scratch []byte) (data []byte, ci pcap.CaptureInfo, link pcap.LinkType, err error)
}

// PCAPSource reads a finished capture (classic pcap or pcapng) as
// fast as the engine consumes it.
type PCAPSource struct {
	pr pcap.PacketReader
}

// NewPCAPSource parses the capture header from r.
func NewPCAPSource(r io.Reader) (*PCAPSource, error) {
	pr, err := pcap.NewAutoReader(r)
	if err != nil {
		return nil, err
	}
	return &PCAPSource{pr: pr}, nil
}

// Next returns the next decodable packet. Records that fail link-layer
// decoding are skipped, matching the offline Analyzer.ReadPCAP path.
func (s *PCAPSource) Next() (pcap.Packet, error) {
	for {
		data, ci, err := s.pr.ReadPacket()
		if err != nil {
			if err == io.EOF {
				return pcap.Packet{}, io.EOF
			}
			return pcap.Packet{}, fmt.Errorf("stream: reading capture: %w", err)
		}
		pkt, err := pcap.DecodePacket(s.pr.LinkType(), ci, data)
		if err != nil {
			continue
		}
		return pkt, nil
	}
}

// NextRaw implements RawSource: it returns the next record undecoded,
// read into scratch.
func (s *PCAPSource) NextRaw(scratch []byte) ([]byte, pcap.CaptureInfo, pcap.LinkType, error) {
	data, ci, err := s.pr.ReadPacketInto(scratch)
	if err != nil {
		if err == io.EOF {
			return nil, ci, s.pr.LinkType(), io.EOF
		}
		return nil, ci, s.pr.LinkType(), fmt.Errorf("stream: reading capture: %w", err)
	}
	return data, ci, s.pr.LinkType(), nil
}

// Close implements Source; the underlying reader is caller-owned.
func (s *PCAPSource) Close() error { return nil }

// FollowSource tails a growing classic-pcap file (`tail -f` for
// captures): it serves every complete record already on disk and
// returns ErrNotReady at the write frontier instead of tearing down.
// A record half-written by the capturing process is left untouched
// until the rest arrives, so the embedded reader never sees a short
// read.
type FollowSource struct {
	f       *os.File
	pending []byte // bytes read from the file, not yet fully consumed
	head    int    // consumed prefix of pending
	order   binary.ByteOrder
	pr      *pcap.Reader
}

// NewFollowSource opens path for tailing. The file may be empty or
// not yet have a complete header; parsing starts once enough bytes
// exist.
func NewFollowSource(path string) (*FollowSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &FollowSource{f: f}, nil
}

// Read serves the pcap.Reader from the buffered window. The framing
// check in Next guarantees the reader only asks for bytes that are
// already buffered.
func (s *FollowSource) Read(p []byte) (int, error) {
	if s.head >= len(s.pending) {
		return 0, io.EOF
	}
	n := copy(p, s.pending[s.head:])
	s.head += n
	return n, nil
}

// ReadByte marks the source as already buffered: pcap.NewReader wraps
// plain readers in a bufio.Reader, which would read ahead past the
// bytes the framing gate in nextRecord has admitted and desynchronise
// the window accounting. Serving byte reads directly keeps the reader
// unwrapped.
func (s *FollowSource) ReadByte() (byte, error) {
	if s.head >= len(s.pending) {
		return 0, io.EOF
	}
	b := s.pending[s.head]
	s.head++
	return b, nil
}

// fill appends newly written file bytes to the window, compacting the
// consumed prefix first so the buffer stays proportional to the
// unparsed tail.
func (s *FollowSource) fill() error {
	if s.head > 0 && s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	} else if s.head > 1<<16 {
		s.pending = append(s.pending[:0], s.pending[s.head:]...)
		s.head = 0
	}
	var chunk [64 * 1024]byte
	for {
		n, err := s.f.Read(chunk[:])
		s.pending = append(s.pending, chunk[:n]...)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if n < len(chunk) {
			return nil
		}
	}
}

func (s *FollowSource) avail() int { return len(s.pending) - s.head }

// nextRecord returns the next fully buffered record (read into
// scratch), ErrNotReady at the write frontier, and never io.EOF: a
// followed file has no end until the caller stops.
func (s *FollowSource) nextRecord(scratch []byte) ([]byte, pcap.CaptureInfo, error) {
	if err := s.fill(); err != nil {
		return nil, pcap.CaptureInfo{}, err
	}
	if s.pr == nil {
		if s.avail() < 24 {
			return nil, pcap.CaptureInfo{}, ErrNotReady
		}
		switch binary.LittleEndian.Uint32(s.pending[s.head : s.head+4]) {
		case 0xa1b2c3d4, 0xa1b23c4d:
			s.order = binary.LittleEndian
		case 0xd4c3b2a1, 0x4d3cb2a1:
			s.order = binary.BigEndian
		default:
			return nil, pcap.CaptureInfo{}, fmt.Errorf("stream: %s is not a classic pcap file", s.f.Name())
		}
		pr, err := pcap.NewReader(s)
		if err != nil {
			return nil, pcap.CaptureInfo{}, err
		}
		s.pr = pr
	}
	// Gate ReadPacket on a fully buffered record: 16-byte record
	// header plus the captured length it declares.
	if s.avail() < 16 {
		return nil, pcap.CaptureInfo{}, ErrNotReady
	}
	capLen := int(s.order.Uint32(s.pending[s.head+8 : s.head+12]))
	if s.avail() < 16+capLen {
		return nil, pcap.CaptureInfo{}, ErrNotReady
	}
	return s.pr.ReadPacketInto(scratch)
}

// Next returns the next decodable packet, ErrNotReady at the write
// frontier, and never io.EOF.
func (s *FollowSource) Next() (pcap.Packet, error) {
	for {
		data, ci, err := s.nextRecord(nil)
		if err != nil {
			return pcap.Packet{}, err
		}
		pkt, err := pcap.DecodePacket(s.pr.LinkType(), ci, data)
		if err != nil {
			continue
		}
		return pkt, nil
	}
}

// NextRaw implements RawSource with the same write-frontier gating as
// Next, minus the decode.
func (s *FollowSource) NextRaw(scratch []byte) ([]byte, pcap.CaptureInfo, pcap.LinkType, error) {
	data, ci, err := s.nextRecord(scratch)
	var link pcap.LinkType
	if s.pr != nil {
		link = s.pr.LinkType()
	}
	return data, ci, link, err
}

// Close releases the tailed file.
func (s *FollowSource) Close() error { return s.f.Close() }

// ReplaySource replays a finished capture against the wall clock,
// scaled by Speed: a packet captured Δt after the first is released
// Δt/Speed after the replay started. It turns any recorded capture
// into a live feed for exercising the engine's follow machinery.
type ReplaySource struct {
	inner   *PCAPSource
	speed   float64
	now     func() time.Time
	started time.Time
	base    time.Time
	pending *pcap.Packet
}

// NewReplaySource wraps the capture read from r. speed <= 0 means
// "as fast as possible".
func NewReplaySource(r io.Reader, speed float64) (*ReplaySource, error) {
	inner, err := NewPCAPSource(r)
	if err != nil {
		return nil, err
	}
	return &ReplaySource{inner: inner, speed: speed, now: time.Now}, nil
}

// Next returns the next packet once its scaled capture offset has
// elapsed, ErrNotReady before that, io.EOF at the end of the capture.
func (s *ReplaySource) Next() (pcap.Packet, error) {
	if s.pending == nil {
		pkt, err := s.inner.Next()
		if err != nil {
			return pcap.Packet{}, err
		}
		s.pending = &pkt
	}
	if s.speed > 0 {
		if s.started.IsZero() {
			s.started = s.now()
			s.base = s.pending.Info.Timestamp
		}
		due := s.started.Add(time.Duration(float64(s.pending.Info.Timestamp.Sub(s.base)) / s.speed))
		if s.now().Before(due) {
			return pcap.Packet{}, ErrNotReady
		}
	}
	pkt := *s.pending
	s.pending = nil
	return pkt, nil
}

// Close implements Source.
func (s *ReplaySource) Close() error { return s.inner.Close() }

// RecordSource feeds simulator records straight into the engine with
// no pcap round-trip: each record is serialized and decoded exactly
// like Trace.WritePCAP followed by Analyzer.ReadPCAP, so the streamed
// profile is comparable with the offline one. Speed works like
// ReplaySource's.
type RecordSource struct {
	recs    []scadasim.Record
	i       int
	speed   float64
	now     func() time.Time
	started time.Time
	base    time.Time
}

// NewRecordSource wraps a simulated trace's records. speed <= 0 means
// "as fast as possible".
func NewRecordSource(recs []scadasim.Record, speed float64) *RecordSource {
	return &RecordSource{recs: recs, speed: speed, now: time.Now}
}

// Next serializes and decodes the next record.
func (s *RecordSource) Next() (pcap.Packet, error) {
	for {
		if s.i >= len(s.recs) {
			return pcap.Packet{}, io.EOF
		}
		r := &s.recs[s.i]
		if s.speed > 0 {
			if s.started.IsZero() {
				s.started = s.now()
				s.base = r.Time
			}
			due := s.started.Add(time.Duration(float64(r.Time.Sub(s.base)) / s.speed))
			if s.now().Before(due) {
				return pcap.Packet{}, ErrNotReady
			}
		}
		s.i++
		frame, err := pcap.BuildTCPPacket(r.Src, r.Dst, pcap.TCP{
			Seq: r.Seq, Ack: r.Ack, Flags: r.Flags, Payload: r.Payload,
		})
		if err != nil {
			return pcap.Packet{}, err
		}
		// The pcap writer floors timestamps to microseconds; match it
		// so streamed and recorded profiles agree to the last bit.
		ts := r.Time.Truncate(time.Microsecond).UTC()
		ci := pcap.CaptureInfo{Timestamp: ts, CaptureLength: len(frame), Length: len(frame)}
		pkt, err := pcap.DecodePacket(pcap.LinkTypeEthernet, ci, frame)
		if err != nil {
			continue
		}
		return pkt, nil
	}
}

// Close implements Source.
func (s *RecordSource) Close() error { return nil }
