package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// simulateYear synthesizes a deterministic trace for either campaign.
func simulateYear(t testing.TB, year topology.Year, dur time.Duration) (*scadasim.Simulator, []byte) {
	t.Helper()
	cfg := scadasim.DefaultConfig(year, 1)
	cfg.Duration = dur
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sim, tracePCAP(t, tr)
}

// TestEngineDriftDetection: an engine given the Y1 profile as baseline
// and fed the Y2 capture must publish a drift report, journal it,
// serve it at /drift, and raise drift-kind alerts — the paper's §6
// longitudinal comparison running live instead of post hoc.
func TestEngineDriftDetection(t *testing.T) {
	dur := 10 * time.Minute
	simA, capA := simulateYear(t, topology.Y1, dur)
	simB, capB := simulateYear(t, topology.Y2, dur)
	baseline := drift.NewProfile("2017-11", "test", offlinePartial(t, simA, capA),
		time.Date(2017, 11, 7, 0, 0, 0, 0, time.UTC))

	var journal bytes.Buffer
	var alerts []ids.Alert
	src, err := NewPCAPSource(bytes.NewReader(capB))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	j := obs.NewJournal(&journal)
	e := New(Config{
		Workers:     3,
		Names:       core.NamesFromTopology(simB.Network()),
		Registry:    reg,
		Journal:     j,
		Baseline:    baseline,
		DriftAlerts: func(a ids.Alert) { alerts = append(alerts, a) },
	})
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	rep := e.DriftReport()
	if rep == nil {
		t.Fatal("no drift report published")
	}
	if len(rep.Findings) == 0 {
		t.Fatal("era change produced no findings")
	}
	if rep.MaxSeverity() < drift.SevWarn {
		t.Errorf("max severity %d, want at least warn for an era change", rep.MaxSeverity())
	}
	if len(alerts) != len(rep.Findings) {
		t.Errorf("%d alerts for %d findings", len(alerts), len(rep.Findings))
	}
	for _, a := range alerts {
		if a.Kind != ids.AlertDrift {
			t.Fatalf("alert kind %q, want %q", a.Kind, ids.AlertDrift)
		}
	}

	// The /drift endpoint serves the same report.
	rr := httptest.NewRecorder()
	e.DriftHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/drift", nil))
	if rr.Code != 200 {
		t.Fatalf("/drift status %d", rr.Code)
	}
	var served drift.DriftReport
	if err := json.Unmarshal(rr.Body.Bytes(), &served); err != nil {
		t.Fatalf("/drift body: %v", err)
	}
	if len(served.Findings) != len(rep.Findings) {
		t.Errorf("/drift served %d findings, engine holds %d", len(served.Findings), len(rep.Findings))
	}

	// The journal carries the drift events.
	if !bytes.Contains(journal.Bytes(), []byte(string(obs.EventDrift))) {
		t.Error("journal has no drift events")
	}

	// And the metrics reflect the comparison.
	if got := reg.Counter(MetricDriftCompares).Value(); got < 1 {
		t.Errorf("drift compares metric %d, want >= 1", got)
	}
}

// TestEngineDriftSelfBaselineQuiet: streaming the very capture the
// baseline was built from must stay quiet — shard merge noise is not
// drift (Welford digests merge in shard order, so this also exercises
// the tolerance in the physical comparison).
func TestEngineDriftSelfBaselineQuiet(t *testing.T) {
	sim, capture := simulateYear(t, topology.Y1, 10*time.Minute)
	baseline := drift.NewProfile("self", "test", offlinePartial(t, sim, capture), time.Time{})

	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	alerted := 0
	e := New(Config{
		Workers:     4,
		Names:       core.NamesFromTopology(sim.Network()),
		Baseline:    baseline,
		DriftAlerts: func(ids.Alert) { alerted++ },
	})
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	rep := e.DriftReport()
	if rep == nil {
		t.Fatal("no drift report published")
	}
	if len(rep.Findings) != 0 || alerted != 0 {
		t.Fatalf("self-comparison drifted: %d findings, %d alerts: %v",
			len(rep.Findings), alerted, rep.Findings)
	}
}

// TestEngineNoBaselineNoDrift: without a baseline the drift path stays
// inert — no report, 503 from the handler.
func TestEngineNoBaselineNoDrift(t *testing.T) {
	sim, capture := simulateYear(t, topology.Y1, 2*time.Minute)
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, Names: core.NamesFromTopology(sim.Network())})
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if e.DriftReport() != nil {
		t.Fatal("drift report published without a baseline")
	}
	rr := httptest.NewRecorder()
	e.DriftHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/drift", nil))
	if rr.Code != 503 {
		t.Fatalf("/drift without baseline: status %d, want 503", rr.Code)
	}
}
