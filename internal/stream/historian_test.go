package stream

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/historian"
	"uncharted/internal/obs"
)

// TestHistorianFlushOnShutdown covers the -follow + SIGINT path: an
// engine recording into the historian is canceled mid-tail; the drain
// must flush and fsync every buffered sample, and a reopened store
// must carry the complete history with zero torn bytes.
func TestHistorianFlushOnShutdown(t *testing.T) {
	sim, tr := simulate(t, 16, 90*time.Second)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)
	memStore := offlineAnalyzer(t, sim, capture).Physical()

	path := filepath.Join(t.TempDir(), "grow.pcap")
	if err := os.WriteFile(path, capture, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewFollowSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	histDir := t.TempDir()
	hist, err := historian.Open(histDir, historian.Options{FlushSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Workers:         2,
		PollInterval:    time.Millisecond,
		Names:           core.NamesFromTopology(sim.Network()),
		Historian:       hist,
		MaxPointSamples: 10, // bounded shard memory: disk holds the full history
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, src) }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if p := e.Snapshot(); p.Packets == want.Packets {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine saw %d packets, want %d", e.Snapshot().Packets, want.Packets)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: a clean drain leaves the active segment resumable.
	reg := obs.NewRegistry()
	hist2, err := historian.Open(histDir, historian.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer hist2.Close()
	if torn := reg.Counter(historian.MetricTornBytes).Value(); torn != 0 {
		t.Fatalf("clean shutdown left %d torn bytes", torn)
	}

	// Every sample the offline analyzer extracted must be on disk —
	// even though each shard retained at most 10 per series in memory.
	capExceeded := false
	for _, s := range memStore.All() {
		key := historian.PointKey{Station: s.Key.Station, IOA: s.Key.IOA}
		got, err := hist2.Query(key, time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(s.Samples) {
			t.Fatalf("%s: historian has %d samples after shutdown, offline store has %d",
				s.Key, len(got), len(s.Samples))
		}
		if len(got) > 10 {
			capExceeded = true
		}
	}
	if !capExceeded {
		t.Fatal("no series outgrew the in-memory cap; the durability check is vacuous")
	}
}
