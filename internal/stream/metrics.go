package stream

import (
	"strconv"

	"uncharted/internal/drift"
	"uncharted/internal/obs"
)

// Metric names exported by the engine.
const (
	MetricPackets        = "uncharted_stream_packets_total"
	MetricBatches        = "uncharted_stream_batches_total"
	MetricDroppedBatches = "uncharted_stream_dropped_batches_total"
	MetricDroppedPackets = "uncharted_stream_dropped_packets_total"
	MetricShardDropped   = "uncharted_stream_shard_dropped_batches_total"
	MetricSnapshots      = "uncharted_stream_snapshots_total"
	MetricWorkers        = "uncharted_stream_workers"
	MetricDriftFindings  = "uncharted_stream_drift_findings"
	MetricDriftSeverity  = "uncharted_stream_drift_max_severity"
	MetricDriftCompares  = "uncharted_stream_drift_compares_total"
)

// engineMetrics books the engine's counters; a nil receiver (no
// registry configured) is a no-op, mirroring the other packages.
type engineMetrics struct {
	packets       *obs.Counter
	batches       *obs.Counter
	snapshots     *obs.Counter
	dropB         *obs.Counter
	dropP         *obs.Counter
	perShardB     []*obs.Counter
	driftCompares *obs.Counter
	driftFindings *obs.Gauge
	driftSeverity *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry, workers int) *engineMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp(MetricPackets, "Packets dispatched to analysis shards.")
	reg.SetHelp(MetricBatches, "Batches dispatched to analysis shards.")
	reg.SetHelp(MetricDroppedBatches, "Batches shed under the drop policy.")
	reg.SetHelp(MetricDroppedPackets, "Packets shed under the drop policy.")
	reg.SetHelp(MetricShardDropped, "Batches shed per shard under the drop policy.")
	reg.SetHelp(MetricSnapshots, "Rolling profiles published.")
	reg.SetHelp(MetricWorkers, "Configured analysis shard count.")
	reg.SetHelp(MetricDriftFindings, "Findings in the latest baseline comparison.")
	reg.SetHelp(MetricDriftSeverity, "Maximum severity in the latest baseline comparison.")
	reg.SetHelp(MetricDriftCompares, "Baseline comparisons performed.")
	m := &engineMetrics{
		packets:       reg.Counter(MetricPackets),
		batches:       reg.Counter(MetricBatches),
		snapshots:     reg.Counter(MetricSnapshots),
		dropB:         reg.Counter(MetricDroppedBatches),
		dropP:         reg.Counter(MetricDroppedPackets),
		driftCompares: reg.Counter(MetricDriftCompares),
		driftFindings: reg.Gauge(MetricDriftFindings),
		driftSeverity: reg.Gauge(MetricDriftSeverity),
	}
	for i := 0; i < workers; i++ {
		m.perShardB = append(m.perShardB, reg.Counter(MetricShardDropped, "shard", strconv.Itoa(i)))
	}
	reg.Gauge(MetricWorkers).Set(float64(workers))
	return m
}

func (m *engineMetrics) noteBatch(packets int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.packets.Add(int64(packets))
}

func (m *engineMetrics) noteDropped(shard, packets int) {
	if m == nil {
		return
	}
	m.dropB.Inc()
	m.dropP.Add(int64(packets))
	if shard < len(m.perShardB) {
		m.perShardB[shard].Inc()
	}
}

func (m *engineMetrics) noteDrift(rep *drift.DriftReport) {
	if m == nil {
		return
	}
	m.driftCompares.Inc()
	m.driftFindings.Set(float64(len(rep.Findings)))
	m.driftSeverity.Set(float64(rep.MaxSeverity()))
}

func (m *engineMetrics) noteSnapshot() {
	if m == nil {
		return
	}
	m.snapshots.Inc()
}

// dropped returns the total shed batch/packet counts for the profile.
func (m *engineMetrics) dropped() (batches, packets int64) {
	if m == nil {
		return 0, 0
	}
	return m.dropB.Value(), m.dropP.Value()
}
