package stream

import (
	"strconv"
	"time"

	"uncharted/internal/drift"
	"uncharted/internal/obs"
)

// Metric names exported by the engine. Drop, depth and backpressure
// series carry a "shard" label so per-shard overload is visible
// instead of one aggregate; attribution series add a "cause" label
// naming the stage the blocked shard was in.
const (
	MetricPackets        = "uncharted_stream_packets_total"
	MetricBatches        = "uncharted_stream_batches_total"
	MetricDroppedBatches = "uncharted_stream_dropped_batches_total"
	MetricDroppedPackets = "uncharted_stream_dropped_packets_total"
	MetricSnapshots      = "uncharted_stream_snapshots_total"
	MetricWorkers        = "uncharted_stream_workers"
	MetricQueueDepth     = "uncharted_stream_queue_depth"
	MetricStalls         = "uncharted_stream_backpressure_stalls_total"
	MetricStallSeconds   = "uncharted_stream_stall_seconds"
	MetricDropCause      = "uncharted_stream_backpressure_drops_total"
	MetricDriftFindings  = "uncharted_stream_drift_findings"
	MetricDriftSeverity  = "uncharted_stream_drift_max_severity"
	MetricDriftCompares  = "uncharted_stream_drift_compares_total"
	MetricReaders        = "uncharted_stream_readers"
	MetricReaderBytes    = "uncharted_stream_reader_bytes_total"
)

// stallCauses is the attribution vocabulary: the stage a shard can be
// observed in when its queue backs up onto the reader, plus "order" —
// the shard is fine but still draining an earlier segment's queue, so
// the blocked reader is simply ahead of the in-order fan-in.
var stallCauses = []string{"idle", "decode", "feed", "order"}

// shardMetrics pre-resolves one shard's labeled series.
type shardMetrics struct {
	dropB    *obs.Counter
	dropP    *obs.Counter
	depth    *obs.Gauge
	stallSec *obs.Histogram
	stalls   map[string]*obs.Counter
	dropBy   map[string]*obs.Counter
}

// engineMetrics books the engine's counters; a nil receiver (no
// registry configured) is a no-op, mirroring the other packages.
type engineMetrics struct {
	reg           *obs.Registry
	packets       *obs.Counter
	batches       *obs.Counter
	snapshots     *obs.Counter
	shards        []shardMetrics
	driftCompares *obs.Counter
	driftFindings *obs.Gauge
	driftSeverity *obs.Gauge
	readers       *obs.Gauge
	readerBytes   []*obs.Counter // lazily widened by noteReaders
}

func newEngineMetrics(reg *obs.Registry, workers int) *engineMetrics {
	if reg == nil {
		return nil
	}
	reg.SetHelp(MetricPackets, "Packets dispatched to analysis shards.")
	reg.SetHelp(MetricBatches, "Batches dispatched to analysis shards.")
	reg.SetHelp(MetricDroppedBatches, "Batches shed under the drop policy, by shard.")
	reg.SetHelp(MetricDroppedPackets, "Packets shed under the drop policy, by shard.")
	reg.SetHelp(MetricSnapshots, "Rolling profiles published.")
	reg.SetHelp(MetricWorkers, "Configured analysis shard count.")
	reg.SetHelp(MetricQueueDepth, "Shard queue depth observed at the latest enqueue.")
	reg.SetHelp(MetricStalls, "Reader stalls under the Block policy, by shard and the stage that caused them.")
	reg.SetHelp(MetricStallSeconds, "Time the reader spent blocked on a full shard queue.")
	reg.SetHelp(MetricDropCause, "DropNewest losses by shard and the stage that caused them.")
	reg.SetHelp(MetricDriftFindings, "Findings in the latest baseline comparison.")
	reg.SetHelp(MetricDriftSeverity, "Maximum severity in the latest baseline comparison.")
	reg.SetHelp(MetricDriftCompares, "Baseline comparisons performed.")
	reg.SetHelp(MetricReaders, "Parallel segment readers in the current run.")
	reg.SetHelp(MetricReaderBytes, "Capture bytes consumed, by reader.")
	m := &engineMetrics{
		reg:           reg,
		packets:       reg.Counter(MetricPackets),
		batches:       reg.Counter(MetricBatches),
		snapshots:     reg.Counter(MetricSnapshots),
		driftCompares: reg.Counter(MetricDriftCompares),
		driftFindings: reg.Gauge(MetricDriftFindings),
		driftSeverity: reg.Gauge(MetricDriftSeverity),
	}
	for i := 0; i < workers; i++ {
		shard := strconv.Itoa(i)
		sm := shardMetrics{
			dropB:    reg.Counter(MetricDroppedBatches, "shard", shard),
			dropP:    reg.Counter(MetricDroppedPackets, "shard", shard),
			depth:    reg.Gauge(MetricQueueDepth, "shard", shard),
			stallSec: reg.Histogram(MetricStallSeconds, obs.DurationBuckets, "shard", shard),
			stalls:   make(map[string]*obs.Counter, len(stallCauses)),
			dropBy:   make(map[string]*obs.Counter, len(stallCauses)),
		}
		for _, cause := range stallCauses {
			sm.stalls[cause] = reg.Counter(MetricStalls, "shard", shard, "cause", cause)
			sm.dropBy[cause] = reg.Counter(MetricDropCause, "shard", shard, "cause", cause)
		}
		m.shards = append(m.shards, sm)
	}
	reg.Gauge(MetricWorkers).Set(float64(workers))
	m.readers = reg.Gauge(MetricReaders)
	m.readers.Set(1)
	return m
}

// noteReaders records the parallel-reader count for a segmented run
// and pre-resolves one byte counter per reader. Called once, before
// the reader goroutines start.
func (m *engineMetrics) noteReaders(n int) {
	if m == nil {
		return
	}
	m.readers.Set(float64(n))
	for r := len(m.readerBytes); r < n; r++ {
		m.readerBytes = append(m.readerBytes, m.reg.Counter(MetricReaderBytes, "reader", strconv.Itoa(r)))
	}
}

// noteReaderBytes advances reader r's progress by n capture bytes:
// the readerState's statusz counter always, the metric series when a
// registry is attached. Called once per flushed batch, not per record.
func (m *engineMetrics) noteReaderBytes(r int, st *readerState, n int) {
	if st != nil {
		st.bytes.Add(int64(n))
	}
	if m == nil || r >= len(m.readerBytes) {
		return
	}
	m.readerBytes[r].Add(int64(n))
}

func (m *engineMetrics) noteBatch(packets int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.packets.Add(int64(packets))
}

func (m *engineMetrics) noteDepth(shard, depth int) {
	if m == nil || shard >= len(m.shards) {
		return
	}
	m.shards[shard].depth.Set(float64(depth))
}

func (m *engineMetrics) noteDropped(shard, packets int, cause string) {
	if m == nil || shard >= len(m.shards) {
		return
	}
	sm := &m.shards[shard]
	sm.dropB.Inc()
	sm.dropP.Add(int64(packets))
	if c := sm.dropBy[cause]; c != nil {
		c.Inc()
	}
}

func (m *engineMetrics) noteStall(shard int, cause string, d time.Duration) {
	if m == nil || shard >= len(m.shards) {
		return
	}
	sm := &m.shards[shard]
	if c := sm.stalls[cause]; c != nil {
		c.Inc()
	}
	sm.stallSec.Observe(d.Seconds())
}

func (m *engineMetrics) noteDrift(rep *drift.DriftReport) {
	if m == nil {
		return
	}
	m.driftCompares.Inc()
	m.driftFindings.Set(float64(len(rep.Findings)))
	m.driftSeverity.Set(float64(rep.MaxSeverity()))
}

func (m *engineMetrics) noteSnapshot() {
	if m == nil {
		return
	}
	m.snapshots.Inc()
}

// dropped returns the total shed batch/packet counts for the profile,
// summed across shards.
func (m *engineMetrics) dropped() (batches, packets int64) {
	if m == nil {
		return 0, 0
	}
	for i := range m.shards {
		batches += m.shards[i].dropB.Value()
		packets += m.shards[i].dropP.Value()
	}
	return batches, packets
}
