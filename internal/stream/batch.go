package stream

import (
	"sync"
	"time"

	"uncharted/internal/pcap"
)

// batch is one unit of work on a shard queue: either decoded packets
// (from a plain Source) or raw frames packed into a pooled slab (from a
// RawSource). Exactly one of dec / raw is set.
type batch struct {
	dec *pktBatch
	raw *rawBatch
}

// size returns how many packets/frames the batch carries.
func (b batch) size() int {
	if b.raw != nil {
		return len(b.raw.frames)
	}
	return len(b.dec.pkts)
}

// firstTime returns the capture timestamp of the batch's first entry.
func (b batch) firstTime() time.Time {
	if b.raw != nil {
		return b.raw.frames[0].ci.Timestamp
	}
	return b.dec.pkts[0].Info.Timestamp
}

// recycle returns a batch of either kind to the pools it came from.
func (b batch) recycle() {
	if b.raw != nil {
		b.raw.pools.putRaw(b.raw)
		return
	}
	b.dec.pools.putDec(b.dec)
}

// pktBatch is a pooled decoded-packet slice. Pooling the wrapper (not
// the bare slice) keeps pool round-trips allocation-free.
type pktBatch struct {
	pkts  []pcap.Packet
	pools *batchPools // owning pools, for the consumer-side return
}

// rawFrame locates one record inside a rawBatch slab. Offsets, not
// subslices: the slab's backing array may move while the reader is
// still appending frames to the batch.
type rawFrame struct {
	off, end int
	ci       pcap.CaptureInfo
}

// rawBatch carries undecoded records for one shard: the frame bytes
// live back to back in slab (a pcap.Buffer drawn from the owning
// pools), located by the frames index. The consuming shard releases
// the slab and returns the batch to the pools it came from, so a
// steady-state run cycles a fixed set of buffers with no per-batch
// allocation.
type rawBatch struct {
	link   pcap.LinkType
	frames []rawFrame
	slab   *pcap.Buffer
	pools  *batchPools
}

// batchPools hold the recycled batch carriers shared by one reader
// (producer) and the shards (consumers). Recycling goes through plain
// mutex-guarded free lists rather than sync.Pool: the producer Gets on
// its own goroutine while consumers Put from shard goroutines, and
// sync.Pool's per-P caches turn that steady cross-goroutine flow into
// misses — which is exactly the allocs/op-grows-with-shards regression
// the committed BENCH_stream.json used to show. A single uncontended
// lock per batch (amortized over BatchSize packets) is far cheaper
// than re-allocating 64 KiB slabs.
type batchPools struct {
	slabs pcap.BufferPool // slab allocator + poison mode for tests

	mu   sync.Mutex
	bufs []*pcap.Buffer
	raw  []*rawBatch
	dec  []*pktBatch
}

func (p *batchPools) getRaw(link pcap.LinkType) *rawBatch {
	p.mu.Lock()
	var rb *rawBatch
	if n := len(p.raw); n > 0 {
		rb, p.raw = p.raw[n-1], p.raw[:n-1]
	}
	var slab *pcap.Buffer
	if n := len(p.bufs); n > 0 {
		slab, p.bufs = p.bufs[n-1], p.bufs[:n-1]
	}
	p.mu.Unlock()
	if rb == nil {
		rb = &rawBatch{}
	}
	if slab == nil {
		slab = p.slabs.Get()
	}
	rb.link = link
	rb.slab = slab
	rb.pools = p
	return rb
}

// putRaw recycles the slab and the batch. The caller must be done with
// every frame: slab bytes are invalid from here on (and poisoned in
// tests, honoring the BufferPool's poison mode even though the slab
// never passes through Release).
func (p *batchPools) putRaw(rb *rawBatch) {
	slab := rb.slab
	if p.slabs.Poisoned() {
		for i := range slab.Data {
			slab.Data[i] = 0xDB
		}
	}
	slab.Data = slab.Data[:0]
	rb.slab = nil
	rb.frames = rb.frames[:0]
	p.mu.Lock()
	p.bufs = append(p.bufs, slab)
	p.raw = append(p.raw, rb)
	p.mu.Unlock()
}

func (p *batchPools) getDec() *pktBatch {
	p.mu.Lock()
	var pb *pktBatch
	if n := len(p.dec); n > 0 {
		pb, p.dec = p.dec[n-1], p.dec[:n-1]
	}
	p.mu.Unlock()
	if pb == nil {
		pb = &pktBatch{}
	}
	pb.pools = p
	return pb
}

// putDec zeroes the packet entries (dropping their payload references)
// and recycles the batch.
func (p *batchPools) putDec(pb *pktBatch) {
	clear(pb.pkts)
	pb.pkts = pb.pkts[:0]
	p.mu.Lock()
	p.dec = append(p.dec, pb)
	p.mu.Unlock()
}

// recycle returns a batch of either kind to this pool set. Kept for
// call sites that hold the pools anyway; batches returned by a shard
// use batch.recycle, which routes to the owning reader's pools.
func (p *batchPools) recycle(b batch) { b.recycle() }
