package stream

import (
	"sync"
	"time"

	"uncharted/internal/pcap"
)

// batch is one unit of work on a shard queue: either decoded packets
// (from a plain Source) or raw frames packed into a pooled slab (from a
// RawSource). Exactly one of dec / raw is set.
type batch struct {
	dec *pktBatch
	raw *rawBatch
}

// size returns how many packets/frames the batch carries.
func (b batch) size() int {
	if b.raw != nil {
		return len(b.raw.frames)
	}
	return len(b.dec.pkts)
}

// firstTime returns the capture timestamp of the batch's first entry.
func (b batch) firstTime() time.Time {
	if b.raw != nil {
		return b.raw.frames[0].ci.Timestamp
	}
	return b.dec.pkts[0].Info.Timestamp
}

// pktBatch is a pooled decoded-packet slice. Pooling the wrapper (not
// the bare slice) keeps sync.Pool round-trips allocation-free.
type pktBatch struct {
	pkts []pcap.Packet
}

// rawFrame locates one record inside a rawBatch slab. Offsets, not
// subslices: the slab's backing array may move while the reader is
// still appending frames to the batch.
type rawFrame struct {
	off, end int
	ci       pcap.CaptureInfo
}

// rawBatch carries undecoded records for one shard: the frame bytes
// live back to back in slab (a pcap.Buffer drawn from the engine's
// pool), located by the frames index. The consuming shard releases the
// slab and returns the batch to the pool, so a steady-state run cycles
// a fixed set of buffers with no per-batch allocation.
type rawBatch struct {
	link   pcap.LinkType
	frames []rawFrame
	slab   *pcap.Buffer
}

// batchPools hold the recycled batch carriers shared by the reader
// (producer) and shards (consumers).
type batchPools struct {
	slabs pcap.BufferPool
	raw   sync.Pool // *rawBatch
	dec   sync.Pool // *pktBatch
}

func (p *batchPools) getRaw(link pcap.LinkType) *rawBatch {
	rb, ok := p.raw.Get().(*rawBatch)
	if !ok {
		rb = &rawBatch{}
	}
	rb.link = link
	rb.slab = p.slabs.Get()
	return rb
}

// putRaw releases the slab back to the buffer pool and recycles the
// batch. The caller must be done with every frame: slab bytes are
// invalid from here on (and poisoned in tests).
func (p *batchPools) putRaw(rb *rawBatch) {
	rb.slab.Release()
	rb.slab = nil
	rb.frames = rb.frames[:0]
	p.raw.Put(rb)
}

func (p *batchPools) getDec() *pktBatch {
	if pb, ok := p.dec.Get().(*pktBatch); ok {
		return pb
	}
	return &pktBatch{}
}

// putDec zeroes the packet entries (dropping their payload references)
// and recycles the batch.
func (p *batchPools) putDec(pb *pktBatch) {
	clear(pb.pkts)
	pb.pkts = pb.pkts[:0]
	p.dec.Put(pb)
}

// recycle returns a batch of either kind to its pool.
func (p *batchPools) recycle(b batch) {
	if b.raw != nil {
		p.putRaw(b.raw)
		return
	}
	p.putDec(b.dec)
}
