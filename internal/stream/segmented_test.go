package stream

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// runSegmented streams a capture through an engine with the given
// reader fan-out over a seekable source and returns the final state
// plus the engine (for status assertions).
func runSegmented(t testing.TB, capture []byte, cfg Config) (*Engine, core.Partial) {
	t.Helper()
	src := NewReaderAtSource(bytes.NewReader(capture), int64(len(capture)))
	e := New(cfg)
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	return e, e.Final()
}

// TestSegmentedEquivalence is the tentpole's correctness pin: the
// N-reader segmented engine must produce a final Partial that
// DeepEquals the single-reader engine at the same shard count — the
// in-order fan-in reproduces the sequential packet order per shard
// exactly, so even order-sensitive state (Markov token chains,
// dialect pinning moments, flow lifetimes) is identical. Checked on
// the deterministic IEC 104 capture and on a mixed-protocol capture
// in auto-detect mode, at 1 and 4 shards.
func TestSegmentedEquivalence(t *testing.T) {
	iecSim, iecTr := simulate(t, 7, 3*time.Minute)
	iecCapture := tracePCAP(t, iecTr)

	mixCfg := scadasim.DefaultConfig(topology.Y1, 7)
	mixCfg.Duration = 3 * time.Minute
	mixCfg.EnableModbus = true
	mixSim, err := scadasim.New(mixCfg)
	if err != nil {
		t.Fatal(err)
	}
	mixTr, err := mixSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	mixCapture := tracePCAP(t, mixTr)

	cases := []struct {
		name    string
		capture []byte
		cfg     Config
	}{
		{"iec104", iecCapture, Config{Names: core.NamesFromTopology(iecSim.Network())}},
		{"mixed", mixCapture, Config{Names: core.NamesFromTopology(mixSim.Network()), Protocols: []string{"auto"}}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s_%dshard", tc.name, workers), func(t *testing.T) {
				base := tc.cfg
				base.Workers = workers
				base.Readers = 1
				_, want := runSegmented(t, tc.capture, base)

				seg := tc.cfg
				seg.Workers = workers
				seg.Readers = 4
				e, got := runSegmented(t, tc.capture, seg)

				if n := len(e.Status().Readers); n < 2 {
					t.Fatalf("segmented run used %d readers, parallel path did not engage", n)
				}
				if want.Packets == 0 {
					t.Fatal("capture produced no packets")
				}
				if !reflect.DeepEqual(want, got) {
					diffPartials(t, want, got)
					t.Errorf("segmented %d-reader final state differs from single-reader at %d shards", 4, workers)
				}
				// Belt and braces: the canonical drift encoding must be
				// byte-identical too (the property the golden fixtures pin).
				we := drift.NewProfile("seg", "equiv", want, goldenSavedAt).Encode()
				ge := drift.NewProfile("seg", "equiv", got, goldenSavedAt).Encode()
				if !bytes.Equal(we, ge) {
					t.Errorf("drift encodings differ (%d vs %d bytes)", len(we), len(ge))
				}
			})
		}
	}
}

// TestSegmentedReaderStatus pins the per-reader progress surface: a
// finished segmented run reports every reader done, with byte ranges
// that tile the capture and byte counts that sum to the record bytes.
func TestSegmentedReaderStatus(t *testing.T) {
	sim, tr := simulate(t, 11, 2*time.Minute)
	capture := tracePCAP(t, tr)
	e, part := runSegmented(t, capture, Config{
		Workers: 2,
		Readers: 4,
		Names:   core.NamesFromTopology(sim.Network()),
	})
	if part.Packets == 0 {
		t.Fatal("no packets analyzed")
	}
	rs := e.Status().Readers
	if len(rs) < 2 {
		t.Fatalf("got %d readers, want >= 2", len(rs))
	}
	next := rs[0].SegmentOff
	for _, r := range rs {
		if !r.Done {
			t.Errorf("reader %d not done after Run returned", r.ID)
		}
		if r.SegmentOff != next {
			t.Errorf("reader %d segment starts at %d, want %d (segments must tile)", r.ID, r.SegmentOff, next)
		}
		if r.BytesRead <= 0 || r.BytesRead > r.SegmentSize {
			t.Errorf("reader %d read %d bytes of a %d-byte segment", r.ID, r.BytesRead, r.SegmentSize)
		}
		next = r.SegmentOff + r.SegmentSize
	}
	if next != int64(len(capture)) {
		t.Errorf("segments end at %d, capture is %d bytes", next, len(capture))
	}
}

// TestSegmentedAllocsGuard is the alloc-regression tripwire: per-MB
// allocations at 4 shards must not exceed the 1-shard figure by more
// than 10%. The per-reader free-list pools exist precisely so that
// adding shards (more consumers recycling into the producer's pools)
// does not turn slab reuse into fresh allocation; this guard is
// hardware-independent — it counts allocations, not time.
func TestSegmentedAllocsGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement skipped in -short mode")
	}
	// The big bench capture, so per-run fixed costs (engine setup, the
	// four analyzers' empty maps) amortize out and the figure reflects
	// the steady-state hot path.
	loadBenchCapture(t)
	mb := float64(benchCapture.bytes) / (1 << 20)

	perMB := func(workers int) float64 {
		allocs := testing.AllocsPerRun(3, func() {
			if p := runBenchEngineRaw(t, workers, 4); p.Packets == 0 {
				t.Fatal("no packets analyzed")
			}
		})
		return allocs / mb
	}

	one := perMB(1)
	four := perMB(4)
	t.Logf("GOMAXPROCS=%d: allocs/MB 1 shard %.0f, 4 shards %.0f (%.2fx)",
		runtime.GOMAXPROCS(0), one, four, four/one)
	if four > 1.10*one {
		t.Errorf("4-shard run allocates %.0f/MB, more than 10%% over the 1-shard %.0f/MB", four, one)
	}
}

// TestReaderScalingSmoke is the CI scaling check over the raw
// segmented path: 4 shards with 4 readers against 1 shard with 4
// readers. It fails only on a genuine inversion — the parallel
// configuration falling below 0.9x the single-shard throughput — so
// it stays meaningful on small CI machines where near-linear speedups
// cannot manifest.
func TestReaderScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	loadBenchCapture(t)

	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			p := runBenchEngineRaw(t, workers, 4)
			el := time.Since(start)
			if p.Packets != len(benchCapture.pkts) {
				t.Fatalf("engine(%d workers) processed %d packets, want %d", workers, p.Packets, len(benchCapture.pkts))
			}
			if el < best {
				best = el
			}
		}
		return best
	}

	one := measure(1)
	four := measure(4)
	mbps := func(d time.Duration) float64 {
		return float64(benchCapture.bytes) / (1 << 20) / d.Seconds()
	}
	t.Logf("GOMAXPROCS=%d: 4 readers, 1 shard %v (%.1f MB/s); 4 shards %v (%.1f MB/s); ratio %.2fx",
		runtime.GOMAXPROCS(0), one, mbps(one), four, mbps(four), float64(one)/float64(four))
	if float64(four) > float64(one)/0.9 {
		t.Errorf("scaling inversion: 4 shards %v is below 0.9x the 1-shard throughput (%v)", four, one)
	}
}
