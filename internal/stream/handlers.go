package stream

import (
	"net/http"

	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/obs"
)

// This file holds the reusable HTTP handler constructors for the
// engine's query surface. The single-engine commands (profiler
// -follow, iec104live) and the multi-tenant control-room service
// (internal/service) all mount these same constructors, so the two
// surfaces cannot drift apart: one implementation decides status
// codes, Content-Type headers and the ?format=json|text negotiation.

// NewProfileHandler serves the profile returned by get as JSON
// (default) or a plain-text operator summary with ?format=text. A nil
// profile — nothing published yet — is 503, the signal load balancers
// and the readiness probes expect from a warming engine.
func NewProfileHandler(get func() *Profile) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format, ok := obs.PickFormat(w, req, "json", "text")
		if !ok {
			return
		}
		prof := get()
		if prof == nil {
			http.Error(w, "no profile published yet", http.StatusServiceUnavailable)
			return
		}
		if format == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			prof.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		prof.WriteJSON(w)
	})
}

// NewDriftHandler serves the drift report returned by get as JSON
// (default) or the profilediff-style text rendering with ?format=text.
// A nil report — no baseline configured, or nothing published yet —
// is 503.
func NewDriftHandler(get func() *drift.DriftReport) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format, ok := obs.PickFormat(w, req, "json", "text")
		if !ok {
			return
		}
		rep := get()
		if rep == nil {
			http.Error(w, "no drift report published yet", http.StatusServiceUnavailable)
			return
		}
		if format == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		rep.WriteJSON(w)
	})
}

// NewStatusHandler serves the live pipeline topology returned by get:
// auto-refreshing HTML by default, ?format=json for machines
// (cmd/unchartedtop polls this), ?format=text for terminals.
func NewStatusHandler(get func() Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format, ok := obs.PickFormat(w, req, "html", "json", "text")
		if !ok {
			return
		}
		st := get()
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			st.WriteJSON(w)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			st.WriteText(w)
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeStatusHTML(w, st)
		}
	})
}

// Endpoints assembles the engine's full query surface as a path →
// handler map ready for obs.ServeWith (or for per-tenant mounting by
// the control-room service): /profile and /statusz always, /readyz
// from the engine lifecycle, /drift when a baseline is configured, and
// /query when a historian is attached.
func Endpoints(e *Engine, hist *historian.Store) map[string]http.Handler {
	eps := map[string]http.Handler{
		"/profile": e.ProfileHandler(),
		"/statusz": e.StatuszHandler(),
		"/readyz":  obs.ReadyHandler(e.Ready),
	}
	if e.cfg.Baseline != nil {
		eps["/drift"] = e.DriftHandler()
	}
	if hist != nil {
		eps["/query"] = historian.QueryHandler(hist)
	}
	return eps
}
