package stream

import (
	"fmt"
	"strings"

	"uncharted/internal/protocol"

	// Link every built-in dialect so Config.Protocols names always
	// resolve at this surface, whatever else the binary imports.
	_ "uncharted/internal/c37118"
	_ "uncharted/internal/modbus"
)

// ParseProtocols parses a -proto style comma-separated dialect list
// ("c37118,modbus", or "auto" for full content detection) into a
// validated Config.Protocols value. Empty input means IEC 104 only.
func ParseProtocols(s string) ([]string, error) {
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name != "auto" {
			if _, ok := protocol.ParseID(name); !ok {
				return nil, fmt.Errorf("unknown protocol %q (want iec104, c37118, modbus or auto)", name)
			}
		}
		out = append(out, name)
	}
	return out, nil
}
