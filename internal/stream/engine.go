// Package stream turns the offline measurement pipeline into a
// long-running service: one or more reader stages pull records from a
// Source (a finished capture, a growing capture being tailed, a
// time-scaled replay, or an in-process simulator feed) and fan
// batches out to N analysis shards over bounded channels. Seekable
// captures can be ingested by N parallel readers over independent
// record-aligned segments (Config.Readers, pcap.PlanSegments), with
// per-reader→per-shard dedicated queues so no channel or lock is
// shared across readers.
//
// Traffic is partitioned by unordered IP pair, so every TCP flow,
// every logical server/outstation connection and every directional
// session is owned by exactly one shard: each shard runs an ordinary
// *core.Analyzer with no locks on the hot path, and the per-connection
// token order the §6.3 Markov models depend on is preserved — under
// parallel ingest each shard drains its per-reader queues strictly in
// segment order, so it sees exactly the packet order a sequential
// read would deliver. Shard snapshots are core.Partial values, merged
// into a rolling Profile that is published over HTTP next to the
// /metrics endpoint and journalled as JSONL; snapshots use a sealed-
// epoch protocol (each shard publishes its own partial between
// batches) so publishing never stops the world. Bounded queues give
// backpressure: a reader either blocks (lossless, default) or sheds
// whole batches with an explicit drop counter when a shard falls
// behind.
package stream

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pcap"
)

// DropPolicy says what the reader does when a shard's queue is full.
type DropPolicy int

// Policies.
const (
	// Block waits for the shard: lossless, backpressure propagates to
	// the source. The right choice for replay and bounded captures.
	Block DropPolicy = iota
	// DropNewest sheds the incoming batch and counts it: the profile
	// becomes approximate but the reader never stalls. The right
	// choice when the source is an unstoppable live feed.
	DropNewest
)

// Config parameterises an Engine.
type Config struct {
	// Workers is the shard count; minimum (and default) 1.
	Workers int
	// Readers is how many parallel segment readers ingest a seekable
	// capture. It only engages when the source implements
	// SegmentedSource (FileSource does) and the capture splits into
	// more than one record-aligned segment; every other source keeps
	// the single-reader stage. Minimum (and default) 1.
	Readers int
	// BatchSize is how many packets ride one channel send (default 64).
	BatchSize int
	// QueueDepth is each reader's buffering budget in batches (default
	// 64), split across its per-shard queues. Splitting — rather than
	// giving every queue the full budget — keeps the in-flight slab
	// working set, and with it the engine's allocation count, flat as
	// shards are added: a reader that sprints ahead of the analysis can
	// pin at most QueueDepth batches regardless of the shard count.
	QueueDepth int
	// Policy picks Block (default) or DropNewest.
	Policy DropPolicy
	// SnapshotEvery is the rolling-profile period; 0 disables the
	// periodic snapshotter (a final profile is still produced).
	SnapshotEvery time.Duration
	// PollInterval is how long the reader sleeps on ErrNotReady
	// (default 25ms).
	PollInterval time.Duration
	// IdleTimeout, when set, evicts flows idle for that long from the
	// per-shard trackers (streaming memory bound; taxonomy is kept).
	IdleTimeout time.Duration
	// ClusterK / ClusterSeed parameterise the profile's session
	// clustering; K 0 disables it.
	ClusterK    int
	ClusterSeed int64
	// Names resolves endpoint addresses for reports.
	Names map[netip.Addr]string
	// Protocols lists additional dialects each shard decodes beyond
	// IEC 104 ("c37118", "modbus"), or "auto" for content detection of
	// every registered dialect. Empty keeps the single-protocol
	// pipeline, byte-identical with earlier releases.
	Protocols []string
	// Registry / Journal instrument the engine and its analyzers; both
	// optional.
	Registry *obs.Registry
	Journal  *obs.Journal
	// Trace, when set, attaches the flight recorder: each reader, each
	// shard, the segment planner and the snapshot path get their own
	// lanes, sampled spans feed uncharted_stage_seconds{stage,shard},
	// and every published snapshot drains new spans into the Journal
	// as obs.EventSpan lines. Export the rings with
	// Trace.WriteChromeTrace after Run.
	Trace *trace.Recorder
	// Observer, when set, attaches a core.FrameObserver to each shard
	// (e.g. an ids.Monitor). Called once per shard at start; monitors
	// are per-shard, so no locking is needed inside them, but a shared
	// alert sink must be serialised by the caller.
	Observer func(shard int) core.FrameObserver
	// Historian, when set, records every extracted measurement into the
	// durable store: each shard gets a historian.Recorder composed with
	// its Observer, and every Snapshot flushes and fsyncs the store so
	// the on-disk history trails the live profile by at most one
	// snapshot period.
	Historian *historian.Store
	// MaxPointSamples, when positive, caps each shard's in-memory
	// samples per series (physical.Store.SetMaxSamplesPerSeries): the
	// bound that lets -follow runs hold steady-state memory while the
	// historian keeps the full history on disk.
	MaxPointSamples int
	// Baseline, when set, turns on live drift detection: every
	// published snapshot is compared against this stored profile and
	// the resulting DriftReport is served at /drift, journalled, and
	// fed to DriftAlerts.
	Baseline *drift.Profile
	// DriftThresholds overrides drift.DefaultThresholds for the live
	// comparison; nil uses the defaults.
	DriftThresholds *drift.Thresholds
	// DriftAlerts receives one ids.Alert per finding the first time it
	// appears in this run. Called from the snapshot path with the
	// engine lock held: keep it fast and do not call back into the
	// engine.
	DriftAlerts func(ids.Alert)
	// OnSnapshot receives every published snapshot: the merged Partial,
	// the derived Profile and whether this is the final end-of-stream
	// publish. Called from the snapshot path with the engine lock held:
	// keep it fast (hand off to a channel) and do not call back into
	// the engine. The pipeline runtime uses it to forward snapshots
	// down profiles edges.
	OnSnapshot func(p core.Partial, prof *Profile, final bool)
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Readers < 1 {
		c.Readers = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
}

// queueCap is one per-(reader,shard) queue's capacity: the reader's
// QueueDepth budget split across the shard queues, minimum 1.
func (c *Config) queueCap() int {
	if d := c.QueueDepth / c.Workers; d > 1 {
		return d
	}
	return 1
}

// curIdle is the shard's published stage while it waits on its queue;
// any other value is the int32 of the trace.Stage it is executing.
// A reader loads it when a queue backs up to attribute the stall or
// loss to the stage actually holding the shard.
const curIdle int32 = -1

// causeName renders a shard's published stage for attribution labels.
func causeName(cur int32) string {
	if cur < 0 {
		return "idle"
	}
	return trace.Stage(cur).String()
}

// sealedForever is the sealed-epoch sentinel a shard publishes on
// exit: every pending and future snapshot request is satisfied by its
// final partial.
const sealedForever = math.MaxInt64

// shard owns one analyzer. Readers communicate with it only through
// its per-reader queues, so analyzer state needs no locks. Under
// parallel ingest ins holds one dedicated bounded queue per reader;
// the shard drains them strictly in segment order (queue r is read to
// exhaustion — the reader closes it at its segment's end — before
// queue r+1 is touched), which reproduces the sequential capture
// order exactly. Readers ahead of the shard's current segment block
// on their own queue, so segment prefetch is pipelined but never
// reordered.
type shard struct {
	id int
	an *core.Analyzer
	// ins is the per-reader queue fan-in, held behind an atomic pointer
	// because Run widens it to the planned reader count after the
	// engine is already visible to Status() callers.
	ins  atomic.Pointer[[]chan batch]
	wake chan struct{} // capacity 1: pokes the shard to seal a snapshot
	done chan struct{}

	// lane is this shard's flight-recorder lane (nil when tracing is
	// off); cur is the stage the worker is in right now, read by the
	// readers for backpressure attribution; curSeg is the queue index
	// being drained, so a blocked reader can tell "shard is slow" from
	// "shard has not reached my segment yet".
	lane   *trace.Lane
	cur    atomic.Int32
	curSeg atomic.Int32
	// scratch holds one batch's decoded packets between the decode and
	// feed passes; reused across batches.
	scratch []pcap.Packet

	// Sealed-epoch snapshot protocol: the engine bumps epoch and pokes
	// wake; the shard, between batches (or while idle), stores a fresh
	// Partial in sealed and advances sealedSeq. Snapshot never stops
	// the shard — it waits for the seal and merges off the hot path.
	epoch     *atomic.Int64 // the engine's snapshot epoch counter
	sealedSeq atomic.Int64
	sealed    atomic.Pointer[core.Partial]
}

// queues returns the current per-reader fan-in.
func (s *shard) queues() []chan batch { return *s.ins.Load() }

func (s *shard) run() {
	defer func() {
		// Final seal, lazily: publish the forever mark and exit.
		// Building a Partial here would cost a full aggregate copy per
		// shard per run whether or not anyone asked; a Snapshot that
		// observes the mark waits for done and reads the quiescent
		// analyzer directly instead.
		s.sealedSeq.Store(sealedForever)
		close(s.done)
	}()
	qs := s.queues()
	for qi := range qs {
		s.curSeg.Store(int32(qi))
		for in := qs[qi]; in != nil; {
			select {
			case b, ok := <-in:
				if !ok {
					in = nil
					break
				}
				s.consume(b)
				s.maybeSeal()
			case <-s.wake:
				s.maybeSeal()
			}
		}
	}
}

// maybeSeal publishes a fresh partial when a snapshot epoch newer than
// the last seal is pending. Called between batches and when poked, so
// the analyzer is always quiescent here.
func (s *shard) maybeSeal() {
	want := s.epoch.Load()
	if want <= s.sealedSeq.Load() {
		return
	}
	p := s.an.Partial()
	s.sealed.Store(&p)
	s.sealedSeq.Store(want)
}

// poke nudges the shard's seal check without blocking; a pending poke
// is as good as another.
func (s *shard) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// consume feeds one batch into the shard's analyzer and recycles the
// batch to the pools it came from. Raw batches are decoded here — on
// the shard worker, off the reader goroutine — and records that fail
// link-layer decoding are skipped, matching the offline ReadPCAP path
// exactly. Decode and feed run as separate passes so each gets its
// own span and the published stage tells the reader which one a
// backlog is stuck in.
func (s *shard) consume(b batch) {
	if rb := b.raw; rb != nil {
		s.cur.Store(int32(trace.StageDecode))
		sp := s.lane.Start()
		pkts := s.scratch[:0]
		for i := range rb.frames {
			fr := &rb.frames[i]
			pkt, err := pcap.DecodePacket(rb.link, fr.ci, rb.slab.Data[fr.off:fr.end])
			if err != nil {
				continue
			}
			pkts = append(pkts, pkt)
		}
		s.lane.End(sp, trace.StageDecode, len(rb.frames), -1)
		s.cur.Store(int32(trace.StageFeed))
		for i := range pkts {
			s.an.FeedPacket(pkts[i])
		}
		// The packets reference slab bytes: drop them before the slab
		// goes back to the pool.
		clear(pkts)
		s.scratch = pkts[:0]
		rb.pools.putRaw(rb)
		s.cur.Store(curIdle)
		return
	}
	s.cur.Store(int32(trace.StageFeed))
	for i := range b.dec.pkts {
		s.an.FeedPacket(b.dec.pkts[i])
	}
	b.dec.pools.putDec(b.dec)
	s.cur.Store(curIdle)
}

// readerState tracks one parallel segment reader: its own batch pools
// (no pool is shared across readers), its trace lane, and progress
// for statusz.
type readerState struct {
	lane  *trace.Lane
	pools batchPools
	info  SegmentInfo
	start time.Time
	bytes atomic.Int64 // record payload bytes consumed so far
	endNs atomic.Int64 // unix nanos when the segment finished; 0 while running
}

// Engine is the streaming pipeline. Create with New, drive with Run;
// Profile and Snapshot may be called from other goroutines while Run
// is in flight.
type Engine struct {
	cfg     Config
	shards  []*shard
	pools   batchPools // the single-reader stage's pools
	metrics *engineMetrics

	trcReader *trace.Lane
	trcSnap   *trace.Lane
	trcPlan   *trace.Lane
	state     atomic.Int32
	started   atomic.Int64 // unix nanos at Run start; 0 before

	snapEpoch atomic.Int64
	readers   atomic.Pointer[[]*readerState] // nil until a segmented Run

	profile  atomic.Pointer[Profile]
	lastPart atomic.Pointer[core.Partial]
	driftRep atomic.Pointer[drift.DriftReport]
	seq      int

	mu        sync.Mutex
	running   bool
	final     core.Partial
	driftSeen map[string]bool
}

// Engine lifecycle states, published for readiness probes.
const (
	stateIdle int32 = iota
	stateRunning
	stateDraining
	stateDone
)

// New builds an engine; Run starts it.
func New(cfg Config) *Engine {
	cfg.fill()
	e := &Engine{cfg: cfg, metrics: newEngineMetrics(cfg.Registry, cfg.Workers)}
	if cfg.Baseline != nil {
		e.driftSeen = make(map[string]bool)
	}
	e.trcReader = cfg.Trace.Lane("reader")
	e.trcSnap = cfg.Trace.Lane("snapshot")
	e.trcPlan = cfg.Trace.Lane("plan")
	// Merges, publishes and segment plans are rare and off the hot
	// path; record every one of them regardless of the sampling rate.
	e.trcSnap.SetSampleEvery(1)
	e.trcPlan.SetSampleEvery(1)
	for i := 0; i < cfg.Workers; i++ {
		lane := cfg.Trace.Lane(strconv.Itoa(i))
		an := core.NewAnalyzer(cfg.Names)
		if err := an.EnableProtocolNames(cfg.Protocols...); err != nil {
			// Config.Protocols is validated by the surfaces that accept
			// user input (pipeline configs, -proto flags); an unknown
			// name reaching this far is a programming error.
			panic("stream: " + err.Error())
		}
		if cfg.Registry != nil || cfg.Journal != nil {
			an.Instrument(cfg.Registry, cfg.Journal)
		}
		an.SetTraceLane(lane)
		if cfg.IdleTimeout > 0 {
			an.EnableFlowEviction(cfg.IdleTimeout)
		}
		if cfg.MaxPointSamples > 0 {
			an.Physical().SetMaxSamplesPerSeries(cfg.MaxPointSamples)
		}
		var observer core.FrameObserver
		if cfg.Observer != nil {
			observer = cfg.Observer(i)
		}
		if cfg.Historian != nil {
			rec := historian.NewRecorder(cfg.Historian)
			rec.SetTraceLane(lane)
			observer = core.Observers(observer, rec)
		}
		if observer != nil {
			an.SetFrameObserver(observer)
		}
		sh := &shard{
			id:    i,
			an:    an,
			wake:  make(chan struct{}, 1),
			done:  make(chan struct{}),
			lane:  lane,
			epoch: &e.snapEpoch,
		}
		sh.ins.Store(&[]chan batch{make(chan batch, cfg.queueCap())})
		sh.cur.Store(curIdle)
		e.shards = append(e.shards, sh)
	}
	return e
}

// shardFor partitions by unordered IP pair: both directions of a flow
// — and every flow between the same two hosts, so reconnects of one
// logical connection too — land on the same shard.
func (e *Engine) shardFor(pkt pcap.Packet) int {
	return e.shardForPair(pkt.IP.Src, pkt.IP.Dst)
}

func (e *Engine) shardForPair(a, b netip.Addr) int {
	if len(e.shards) == 1 {
		return 0
	}
	if b.Compare(a) < 0 {
		a, b = b, a
	}
	h := uint64(14695981039346656037) // FNV-1a
	for _, by := range a.As16() {
		h = (h ^ uint64(by)) * 1099511628211
	}
	for _, by := range b.As16() {
		h = (h ^ uint64(by)) * 1099511628211
	}
	return int(h % uint64(len(e.shards)))
}

// Run consumes the source until io.EOF or ctx cancellation, then
// drains the shards and publishes the final profile. It returns nil on
// clean exhaustion, ctx.Err() on cancellation, or the source's error.
//
// When Config.Readers > 1 and the source is segmented (FileSource
// over a seekable capture), Run plans record-aligned segments and
// ingests them with one reader goroutine per segment; on any planning
// shortfall it downgrades silently to the sequential single-reader
// stage.
func (e *Engine) Run(ctx context.Context, src Source) error {
	// Plan before the shards start so the queue fan-in width is known.
	var segs []RawSource
	if e.cfg.Readers > 1 {
		psp := e.trcPlan.Start()
		segs = segmentsOrNil(src, e.cfg.Readers)
		e.trcPlan.End(psp, trace.StagePlan, len(segs), -1)
	}
	nReaders := 1
	if len(segs) > 1 {
		nReaders = len(segs)
	}

	e.mu.Lock()
	e.running = true
	e.mu.Unlock()
	e.started.Store(time.Now().UnixNano())
	e.state.Store(stateRunning)

	for _, sh := range e.shards {
		if len(sh.queues()) != nReaders {
			nq := make([]chan batch, nReaders)
			for r := range nq {
				nq[r] = make(chan batch, e.cfg.queueCap())
			}
			sh.ins.Store(&nq)
		}
		go sh.run()
	}

	stopSnap := make(chan struct{})
	var snapWG sync.WaitGroup
	if e.cfg.SnapshotEvery > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(e.cfg.SnapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					e.Snapshot()
				case <-stopSnap:
					return
				}
			}
		}()
	}

	var srcErr error
	if nReaders > 1 {
		srcErr = e.readSegments(ctx, segs)
	} else {
		srcErr = e.readLoop(ctx, src)
	}

	e.state.Store(stateDraining)
	close(stopSnap)
	snapWG.Wait()

	// Shut down: from here Snapshot serves the final profile instead of
	// waiting on seals, so no request can race the closing queues.
	e.mu.Lock()
	e.running = false
	if nReaders == 1 {
		// Parallel readers close their own queues as each segment ends.
		for _, sh := range e.shards {
			close(sh.queues()[0])
		}
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	msp := e.trcSnap.Start()
	parts := make([]core.Partial, len(e.shards))
	for i, sh := range e.shards {
		parts[i] = sh.an.Partial()
	}
	e.final = core.MergePartials(parts)
	e.trcSnap.End(msp, trace.StageMerge, len(parts), -1)
	e.seq++
	e.publish(e.final, e.seq, true)
	e.mu.Unlock()
	// The drain is complete: every observed frame has passed through
	// the shard observers, so the historian tail can be made durable.
	e.syncHistorian(e.final.Last)
	e.state.Store(stateDone)
	return srcErr
}

// Ready reports whether the engine is serving fresh data — the reader
// attached and the shards running — with a reason when it is not. The
// obs.ReadyHandler adapter turns it into a /readyz endpoint.
func (e *Engine) Ready() (bool, string) {
	switch e.state.Load() {
	case stateRunning:
		return true, ""
	case stateDraining:
		return false, "draining"
	case stateDone:
		return false, "stopped"
	}
	return false, "engine not started"
}

// readLoop drives the single-reader stage: it pulls records from the
// source, routes them to shards, and flushes pending batches at quiet
// points. Sources that implement RawSource take the fast path where
// the reader only copies raw frames into pooled per-shard slabs and
// the shard workers do the L2-L4 decoding.
func (e *Engine) readLoop(ctx context.Context, src Source) error {
	if rs, ok := src.(RawSource); ok {
		return e.readRaw(ctx, rs)
	}
	return e.readDecoded(ctx, src)
}

func (e *Engine) readDecoded(ctx context.Context, src Source) error {
	pending := make([]*pktBatch, len(e.shards))
	flush := func(i int) bool {
		pb := pending[i]
		if pb == nil {
			return true
		}
		pending[i] = nil
		return e.dispatch(ctx, i, batch{dec: pb})
	}
	flushAll := func() bool {
		for i := range pending {
			if !flush(i) {
				return false
			}
		}
		return true
	}

	var srcErr error
read:
	for {
		select {
		case <-ctx.Done():
			srcErr = ctx.Err()
			break read
		default:
		}
		sp := e.trcReader.Start()
		pkt, err := src.Next()
		switch {
		case err == nil:
			e.trcReader.End(sp, trace.StageRead, 1, -1)
			i := e.shardFor(pkt)
			pb := pending[i]
			if pb == nil {
				pb = e.pools.getDec()
				pending[i] = pb
			}
			pb.pkts = append(pb.pkts, pkt)
			if len(pb.pkts) >= e.cfg.BatchSize {
				if !flush(i) {
					srcErr = ctx.Err()
					break read
				}
			}
		case errors.Is(err, ErrNotReady):
			if !flushAll() {
				srcErr = ctx.Err()
				break read
			}
			select {
			case <-ctx.Done():
				srcErr = ctx.Err()
				break read
			case <-time.After(e.cfg.PollInterval):
			}
		case errors.Is(err, io.EOF):
			flushAll()
			break read
		default:
			srcErr = err
			break read
		}
	}
	if srcErr == nil || errors.Is(srcErr, context.Canceled) {
		flushAll()
	}
	return srcErr
}

func (e *Engine) readRaw(ctx context.Context, src RawSource) error {
	return e.readRawInto(ctx, src, e.trcReader, &e.pools, 0, nil)
}

// readSegments runs one reader goroutine per planned segment. Each
// reader owns its pools, its trace lane and its per-shard queues;
// nothing is shared across readers but the shards themselves. The
// first error in segment order is returned (every other segment still
// drains, so an intact tail is analyzed even when a middle segment is
// corrupt).
func (e *Engine) readSegments(ctx context.Context, segs []RawSource) error {
	states := make([]*readerState, len(segs))
	poison := e.pools.slabs.Poisoned()
	for r, src := range segs {
		st := &readerState{start: time.Now()}
		st.lane = e.cfg.Trace.Lane("reader" + strconv.Itoa(r))
		st.pools.slabs.SetPoison(poison)
		if ext, ok := src.(segmentExtent); ok {
			st.info = ext.Extent()
		}
		states[r] = st
	}
	e.readers.Store(&states)
	e.metrics.noteReaders(len(segs))

	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for r := range segs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = e.readSegment(ctx, r, segs[r], states[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readSegment is one parallel reader: the raw read loop over one
// segment, dispatching into queue column r. Its deferred queue close
// is the in-order fan-in's progress signal — shards move to queue r+1
// the moment queue r is drained and closed.
func (e *Engine) readSegment(ctx context.Context, r int, src RawSource, st *readerState) error {
	defer func() {
		for _, sh := range e.shards {
			close(sh.queues()[r])
		}
		st.endNs.Store(time.Now().UnixNano())
	}()
	return e.readRawInto(ctx, src, st.lane, &st.pools, r, st)
}

// readRawInto is the raw read loop shared by the single-reader stage
// (r=0, engine pools, reader lane) and every parallel segment reader
// (their own pools and lanes). st is nil for the single-reader stage.
func (e *Engine) readRawInto(ctx context.Context, src RawSource, lane *trace.Lane, pools *batchPools, r int, st *readerState) error {
	pending := make([]*rawBatch, len(e.shards))
	flush := func(i int) bool {
		rb := pending[i]
		if rb == nil {
			return true
		}
		pending[i] = nil
		e.metrics.noteReaderBytes(r, st, len(rb.slab.Data))
		return e.dispatchTo(ctx, lane, r, i, batch{raw: rb})
	}
	flushAll := func() bool {
		for i := range pending {
			if !flush(i) {
				return false
			}
		}
		return true
	}

	// scratch is the reader's record buffer: each record is read into
	// it, then copied into the owning shard's pending slab, so a single
	// buffer serves the whole run.
	var scratch []byte
	var srcErr error
read:
	for {
		select {
		case <-ctx.Done():
			srcErr = ctx.Err()
			break read
		default:
		}
		sp := lane.Start()
		data, ci, link, err := src.NextRaw(scratch)
		switch {
		case err == nil:
			lane.End(sp, trace.StageRead, 1, -1)
			scratch = data
			rsp := lane.Start()
			// Route by the cheap header peek; records the peek cannot
			// classify go to shard 0, whose worker-side decode then skips
			// them exactly like the offline path would.
			i := 0
			if len(e.shards) > 1 {
				if sa, da, ok := pcap.PeekIPv4Pair(link, data); ok {
					i = e.shardForPair(sa, da)
				}
			}
			rb := pending[i]
			if rb == nil {
				rb = pools.getRaw(link)
				pending[i] = rb
			}
			off := len(rb.slab.Data)
			rb.slab.Data = append(rb.slab.Data, data...)
			rb.frames = append(rb.frames, rawFrame{off: off, end: off + len(data), ci: ci})
			lane.End(rsp, trace.StageRoute, 1, -1)
			if len(rb.frames) >= e.cfg.BatchSize {
				if !flush(i) {
					srcErr = ctx.Err()
					break read
				}
			}
		case errors.Is(err, ErrNotReady):
			if !flushAll() {
				srcErr = ctx.Err()
				break read
			}
			select {
			case <-ctx.Done():
				srcErr = ctx.Err()
				break read
			case <-time.After(e.cfg.PollInterval):
			}
		case errors.Is(err, io.EOF):
			flushAll()
			break read
		default:
			srcErr = err
			break read
		}
	}
	if srcErr == nil || errors.Is(srcErr, context.Canceled) {
		flushAll()
	}
	return srcErr
}

// dispatch hands a batch to a shard on the single-reader queue; kept
// as the narrow entry point the decoded path and tests use.
func (e *Engine) dispatch(ctx context.Context, i int, b batch) bool {
	return e.dispatchTo(ctx, e.trcReader, 0, i, b)
}

// dispatchTo hands a batch from reader r to shard i under the
// configured policy. The false return means the context died while
// blocked. Every outcome is attributed: a clean enqueue records the
// queue depth it saw; a full queue reads the shard's published stage
// so the stall (Block) or the loss (DropNewest) is counted against
// the stage that caused it — or against "order" when the shard simply
// has not reached this reader's segment yet.
func (e *Engine) dispatchTo(ctx context.Context, lane *trace.Lane, r, i int, b batch) bool {
	n := b.size()
	e.metrics.noteBatch(n)
	sh := e.shards[i]
	q := sh.queues()[r]
	sp := lane.Start()
	if e.cfg.Policy == DropNewest {
		select {
		case q <- b:
			depth := len(q)
			e.metrics.noteDepth(i, depth)
			lane.End(sp, trace.StageEnqueue, n, depth)
		default:
			cause := stallCause(sh, r)
			e.metrics.noteDropped(i, n, cause)
			e.metrics.noteDepth(i, cap(q))
			e.cfg.Journal.Log(b.firstTime(), obs.EventDrop, "", map[string]any{
				"shard": i, "packets": n, "cause": cause,
			})
			b.recycle()
			lane.End(sp, trace.StageEnqueue, n, cap(q))
		}
		return true
	}
	select {
	case q <- b:
		depth := len(q)
		e.metrics.noteDepth(i, depth)
		lane.End(sp, trace.StageEnqueue, n, depth)
		return true
	default:
	}
	// The queue is full: a real reader stall begins here.
	cause := stallCause(sh, r)
	stallStart := time.Now()
	select {
	case q <- b:
		e.metrics.noteStall(i, cause, time.Since(stallStart))
		depth := len(q)
		e.metrics.noteDepth(i, depth)
		lane.End(sp, trace.StageEnqueue, n, depth)
		return true
	case <-ctx.Done():
		return false
	}
}

// stallCause attributes a full queue: "order" when the shard is still
// draining an earlier segment's queue (the reader is ahead of the
// in-order fan-in, not the shard slow), otherwise the stage the shard
// published.
func stallCause(sh *shard, r int) string {
	if int32(r) > sh.curSeg.Load() {
		return "order"
	}
	return causeName(sh.cur.Load())
}

// Snapshot merges a consistent-enough cut of all shards into a
// Partial, publishes the derived rolling Profile, and returns the
// Partial. After Run finishes it returns the exact final state.
//
// Publishing does not stop the world: each shard seals its own
// partial at its next between-batches point (sealed-epoch protocol)
// and keeps consuming; only the merge and profile build run here,
// off the hot path.
func (e *Engine) Snapshot() core.Partial {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.running {
		return e.final
	}
	msp := e.trcSnap.Start()
	epoch := e.snapEpoch.Add(1)
	parts := make([]core.Partial, len(e.shards))
	for _, sh := range e.shards {
		sh.poke()
	}
	for i, sh := range e.shards {
		wait := 10 * time.Microsecond
		for {
			seq := sh.sealedSeq.Load()
			if seq == sealedForever {
				// The shard exited without sealing for this epoch. Once
				// done is closed its goroutine is gone, so the analyzer
				// is quiescent and can be read directly.
				<-sh.done
				parts[i] = sh.an.Partial()
				break
			}
			if seq >= epoch {
				parts[i] = *sh.sealed.Load()
				break
			}
			sh.poke()
			time.Sleep(wait)
			if wait < time.Millisecond {
				wait *= 2
			}
		}
	}
	merged := core.MergePartials(parts)
	e.trcSnap.End(msp, trace.StageMerge, len(parts), -1)
	e.seq++
	e.publish(merged, e.seq, false)
	e.syncHistorian(merged.Last)
	return merged
}

// syncHistorian makes the on-disk history durable up to the samples
// recorded so far — the snapshot-stage fsync point.
func (e *Engine) syncHistorian(at time.Time) {
	if e.cfg.Historian == nil {
		return
	}
	if err := e.cfg.Historian.Sync(); err != nil {
		e.cfg.Journal.Log(at, obs.EventHistorianSync, "", map[string]any{"error": err.Error()})
	}
}

// publish derives and stores the rolling profile. Called with e.mu
// held (or single-threaded at shutdown).
func (e *Engine) publish(p core.Partial, seq int, final bool) {
	psp := e.trcSnap.Start()
	prof := BuildProfile(p, seq, e.cfg.ClusterK, e.cfg.ClusterSeed)
	prof.Workers = e.cfg.Workers
	prof.DroppedBatches, prof.DroppedPackets = e.metrics.dropped()
	e.profile.Store(prof)
	pp := p
	e.lastPart.Store(&pp)
	e.metrics.noteSnapshot()
	e.cfg.Journal.Log(p.Last, obs.EventSnapshot, "", map[string]any{
		"seq":          seq,
		"packets":      p.Packets,
		"iec":          p.IECPackets,
		"flows":        p.Flows.Total(),
		"asdus":        p.TotalASDUs,
		"parse_errors": p.ParseErrors,
	})
	e.noteDrift(p, seq)
	if e.cfg.OnSnapshot != nil {
		e.cfg.OnSnapshot(p, prof, final)
	}
	e.trcSnap.End(psp, trace.StagePublish, 0, -1)
	// Stream the spans recorded since the last snapshot into the
	// journal. The journal's bounded queue sheds overload, so a burst
	// of spans can never stall the snapshot path.
	if e.cfg.Trace != nil && e.cfg.Journal != nil {
		e.cfg.Trace.DrainNew(func(lane string, s trace.Span) {
			e.cfg.Journal.Log(p.Last, obs.EventSpan, "", map[string]any{
				"lane":     lane,
				"stage":    s.Stage.String(),
				"start_us": s.Start.Microseconds(),
				"dur_us":   s.Dur.Microseconds(),
				"items":    s.Items,
				"queue":    s.Queue,
			})
		})
	}
}

// Profile returns the latest published rolling profile, or nil before
// the first snapshot.
func (e *Engine) Profile() *Profile { return e.profile.Load() }

// Final returns the exact end-of-stream state; valid after Run
// returns.
func (e *Engine) Final() core.Partial {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.final
}

// LastPartial returns the merged analyzer state behind the most
// recently published snapshot, or ok=false before the first one. The
// value is detached from the shards (Partial snapshots share nothing
// mutable), so callers may merge it further — the control-room service
// folds it into fleet-wide aggregates — but must not mutate it.
func (e *Engine) LastPartial() (core.Partial, bool) {
	p := e.lastPart.Load()
	if p == nil {
		return core.Partial{}, false
	}
	return *p, true
}

// ProfileHandler serves the rolling profile — mount it at /profile
// next to the obs handler. JSON by default, ?format=text for the
// operator summary.
func (e *Engine) ProfileHandler() http.Handler {
	return NewProfileHandler(e.Profile)
}
