package stream

import (
	"io"
	"os"

	"uncharted/internal/pcap"
)

// SegmentedSource is the parallel-ingest face a RawSource may
// implement when its backing capture is seekable: Segments plans up
// to n record-aligned sub-sources that together yield exactly the
// records a sequential read would, in order within each segment. The
// engine runs one reader goroutine per returned source.
type SegmentedSource interface {
	RawSource
	Segments(n int) ([]RawSource, error)
}

// SegmentInfo describes one parallel reader's byte range, for
// progress reporting.
type SegmentInfo struct {
	Off  int64 // byte offset of the segment in the capture
	Size int64 // segment length in bytes
}

// segmentExtent is implemented by segment sources that know their
// byte range; statusz uses it for per-reader progress.
type segmentExtent interface {
	Extent() SegmentInfo
}

// FileSource reads a finished capture from a seekable backing store.
// It behaves exactly like PCAPSource when read sequentially, and
// additionally implements SegmentedSource so the engine can ingest
// it with N parallel readers (Config.Readers).
type FileSource struct {
	ra   io.ReaderAt
	size int64
	f    *os.File // set when opened from a path; closed by Close

	inner *PCAPSource // lazy sequential face
}

// NewFileSource opens a capture file for (optionally parallel)
// reading. The returned source owns the file handle; Close releases
// it.
func NewFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{ra: f, size: st.Size(), f: f}, nil
}

// NewReaderAtSource wraps an in-memory or otherwise seekable capture
// of the given size (bytes.Reader satisfies io.ReaderAt).
func NewReaderAtSource(ra io.ReaderAt, size int64) *FileSource {
	return &FileSource{ra: ra, size: size}
}

func (s *FileSource) sequential() (*PCAPSource, error) {
	if s.inner == nil {
		inner, err := NewPCAPSource(io.NewSectionReader(s.ra, 0, s.size))
		if err != nil {
			return nil, err
		}
		s.inner = inner
	}
	return s.inner, nil
}

// Next implements Source via a sequential read of the whole capture.
func (s *FileSource) Next() (pcap.Packet, error) {
	inner, err := s.sequential()
	if err != nil {
		return pcap.Packet{}, err
	}
	return inner.Next()
}

// NextRaw implements RawSource via a sequential read.
func (s *FileSource) NextRaw(scratch []byte) ([]byte, pcap.CaptureInfo, pcap.LinkType, error) {
	inner, err := s.sequential()
	if err != nil {
		return nil, pcap.CaptureInfo{}, 0, err
	}
	return inner.NextRaw(scratch)
}

// Segments plans up to n record-aligned segments and opens an
// independent reader over each. Fewer than n sources come back when
// the capture is too small to split further; reading them in order
// reproduces the sequential record stream exactly.
func (s *FileSource) Segments(n int) ([]RawSource, error) {
	plan, err := pcap.PlanSegments(s.ra, s.size, n)
	if err != nil {
		return nil, err
	}
	out := make([]RawSource, plan.Len())
	for i := range out {
		pr, err := plan.Open(i)
		if err != nil {
			return nil, err
		}
		seg := plan.Segment(i)
		out[i] = &segmentSource{
			PCAPSource: PCAPSource{pr: pr},
			info:       SegmentInfo{Off: seg.Off, Size: seg.Size()},
		}
	}
	return out, nil
}

// Close releases the file handle when the source owns one.
func (s *FileSource) Close() error {
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// segmentSource is one planned byte range of a FileSource: a plain
// PCAPSource over a state-seeded range reader, plus its extent.
type segmentSource struct {
	PCAPSource
	info SegmentInfo
}

func (s *segmentSource) Extent() SegmentInfo { return s.info }

// segmentsOrNil plans parallel sub-sources for src, or returns nil
// when src is not segmented, n does not ask for parallelism, or the
// capture cannot be split — all of which downgrade cleanly to the
// sequential single-reader path.
func segmentsOrNil(src Source, n int) []RawSource {
	ss, ok := src.(SegmentedSource)
	if !ok || n <= 1 {
		return nil
	}
	segs, err := ss.Segments(n)
	if err != nil || len(segs) <= 1 {
		return nil
	}
	return segs
}
