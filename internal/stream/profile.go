package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/physical"
)

// Profile is the rolling JSON document the engine publishes: every §6
// aggregate the offline profiler reports, derived from a merged
// shard snapshot. It is what -follow mode serves at /profile and what
// cmd/iec104live prints when it drains.
type Profile struct {
	// Seq increments per published snapshot; the final profile has the
	// highest Seq.
	Seq int `json:"seq"`
	// Workers is the shard count that produced this profile.
	Workers int `json:"workers"`
	// First / Last bound the capture window seen so far.
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`

	Packets      int `json:"packets"`
	IECPackets   int `json:"iec_packets"`
	ParseErrors  int `json:"parse_errors"`
	SeqAnomalies int `json:"seq_anomalies"`
	TotalASDUs   int `json:"total_asdus"`
	FlowsEvicted int `json:"flows_evicted,omitempty"`

	// DroppedBatches / DroppedPackets count load shed under
	// DropNewest; both zero under Block.
	DroppedBatches int64 `json:"dropped_batches,omitempty"`
	DroppedPackets int64 `json:"dropped_packets,omitempty"`

	// Flows is the Table 3 taxonomy.
	Flows FlowProfile `json:"flows"`
	// Compliance is the §6.1 verdict per endpoint.
	Compliance ComplianceProfile `json:"compliance"`
	// Types is Table 7, descending.
	Types []core.TypeIDShare `json:"types,omitempty"`
	// Markov summarises the per-connection chains (Fig. 13/17).
	Markov MarkovProfile `json:"markov"`
	// Clusters summarises session clustering when enabled and enough
	// sessions exist.
	Clusters *ClusterProfile `json:"clusters,omitempty"`
	// Physical ranks measurement series by normalized variance.
	Physical []PhysicalPoint `json:"physical,omitempty"`
	// Dialects tallies the generic decode path per protocol; present
	// only on multi-protocol runs, so single-protocol documents are
	// unchanged.
	Dialects []DialectProfile `json:"dialects,omitempty"`
	// Streams is the per-stream rate compliance (C37.118 PMU data
	// streams against their configured frame rate).
	Streams []StreamProfile `json:"streams,omitempty"`
}

// DialectProfile is one protocol's decode summary.
type DialectProfile struct {
	Proto       string         `json:"proto"`
	Frames      int            `json:"frames"`
	ParseErrors int            `json:"parse_errors,omitempty"`
	Bytes       int            `json:"bytes"`
	Tokens      map[string]int `json:"tokens,omitempty"`
}

// StreamProfile is one measurement stream's rate-compliance verdict.
type StreamProfile struct {
	Proto          string  `json:"proto"`
	Conn           string  `json:"conn"`
	Unit           string  `json:"unit"`
	ConfiguredRate float64 `json:"configured_rate,omitempty"`
	ObservedRate   float64 `json:"observed_rate,omitempty"`
	Frames         int     `json:"frames"`
	Errors         int     `json:"errors,omitempty"`
	Compliant      bool    `json:"compliant"`
	Detail         string  `json:"detail,omitempty"`
}

// FlowProfile is the JSON rendering of the flow taxonomy.
type FlowProfile struct {
	Total            int     `json:"total"`
	ShortLived       int     `json:"short_lived"`
	LongLived        int     `json:"long_lived"`
	ShortLivedSubSec int     `json:"short_lived_subsec"`
	SubSecProportion float64 `json:"subsec_proportion"`
}

// ComplianceProfile is the JSON rendering of the §6.1 report.
type ComplianceProfile struct {
	Stations     int               `json:"stations"`
	NonCompliant []string          `json:"non_compliant,omitempty"`
	Dialects     map[string]string `json:"dialects,omitempty"`
}

// ConnProfile is one connection's chain shape.
type ConnProfile struct {
	Server     string `json:"server"`
	Outstation string `json:"outstation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Tokens     int    `json:"tokens"`
	Cluster    string `json:"cluster"`
}

// MarkovProfile summarises Figs. 13 and 17.
type MarkovProfile struct {
	Connections  []ConnProfile `json:"connections,omitempty"`
	Point11      []string      `json:"point11,omitempty"`
	Square       []string      `json:"square,omitempty"`
	Ellipse      []string      `json:"ellipse,omitempty"`
	Distribution [9]int        `json:"distribution"`
}

// ClusterProfile summarises the §6.3 session clustering.
type ClusterProfile struct {
	K          int      `json:"k"`
	Sizes      []int    `json:"sizes"`
	Silhouette float64  `json:"silhouette"`
	Outliers   []string `json:"outliers,omitempty"`
}

// PhysicalPoint is one ranked measurement series.
type PhysicalPoint struct {
	Station            string  `json:"station"`
	IOA                uint32  `json:"ioa"`
	Count              int     `json:"count"`
	Min                float64 `json:"min"`
	Max                float64 `json:"max"`
	Mean               float64 `json:"mean"`
	NormalizedVariance float64 `json:"normalized_variance"`
	Command            bool    `json:"command,omitempty"`
}

// BuildProfile derives the published document from a merged snapshot.
// k ≤ 0 skips clustering; clustering also degrades gracefully (to
// absent) while fewer than k sessions exist.
func BuildProfile(p core.Partial, seq, k int, seed int64) *Profile {
	prof := &Profile{
		Seq:          seq,
		First:        p.First,
		Last:         p.Last,
		Packets:      p.Packets,
		IECPackets:   p.IECPackets,
		ParseErrors:  p.ParseErrors,
		SeqAnomalies: p.SeqAnomalies,
		TotalASDUs:   p.TotalASDUs,
		FlowsEvicted: p.FlowsEvicted,
		Types:        p.TypeDistribution(),
	}
	prof.Flows = FlowProfile{
		Total:            p.Flows.Total(),
		ShortLived:       p.Flows.ShortLived,
		LongLived:        p.Flows.LongLived,
		ShortLivedSubSec: p.Flows.ShortLivedSubSec,
		SubSecProportion: p.Flows.SubSecProportion(),
	}

	comp := p.ComplianceReport()
	prof.Compliance = ComplianceProfile{
		Stations:     len(comp.Stations),
		NonCompliant: comp.NonCompliant,
		Dialects:     make(map[string]string, len(comp.Stations)),
	}
	for _, sc := range comp.Stations {
		if sc.Detected {
			prof.Compliance.Dialects[sc.Name] = sc.Profile.String()
		}
	}

	mk := p.MarkovReport()
	prof.Markov = MarkovProfile{
		Point11:      mk.Point11,
		Square:       mk.Square,
		Ellipse:      mk.Ellipse,
		Distribution: mk.Distribution,
	}
	for _, cc := range mk.Chains {
		prof.Markov.Connections = append(prof.Markov.Connections, ConnProfile{
			Server:     cc.Server,
			Outstation: cc.Outstation,
			Nodes:      cc.Chain.Nodes(),
			Edges:      cc.Chain.Edges(),
			Tokens:     cc.Chain.TotalTokens(),
			Cluster:    cc.Cluster.String(),
		})
	}

	if k > 0 {
		if cr, err := p.ClusterReport(k, seed); err == nil {
			prof.Clusters = &ClusterProfile{
				K:          cr.K,
				Sizes:      cr.Sizes,
				Silhouette: cr.Sil,
				Outliers:   cr.Outliers,
			}
		}
	}

	for _, ds := range p.Dialects {
		prof.Dialects = append(prof.Dialects, DialectProfile{
			Proto:       ds.Proto.String(),
			Frames:      ds.Frames,
			ParseErrors: ds.ParseErrors,
			Bytes:       ds.Bytes,
			Tokens:      ds.TokenCounts,
		})
	}
	for _, sc := range p.Streams {
		prof.Streams = append(prof.Streams, StreamProfile{
			Proto:          sc.Proto.String(),
			Conn:           sc.Conn,
			Unit:           sc.Unit,
			ConfiguredRate: sc.ConfiguredRate,
			ObservedRate:   sc.ObservedRate,
			Frames:         sc.Frames,
			Errors:         sc.Errors,
			Compliant:      sc.Compliant,
			Detail:         sc.Detail,
		})
	}

	for _, d := range physical.RankDigests(p.Physical, 2) {
		prof.Physical = append(prof.Physical, PhysicalPoint{
			Station:            d.Key.Station,
			IOA:                d.Key.IOA,
			Count:              d.Count,
			Min:                d.Min,
			Max:                d.Max,
			Mean:               d.Mean,
			NormalizedVariance: d.NormalizedVariance(),
			Command:            d.Command,
		})
	}
	return prof
}

// WriteJSON renders the profile, indented for human consumption.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteText renders the profile as a compact plain-text operator
// summary — the ?format=text rendering of every /profile surface.
func (p *Profile) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "rolling profile seq %d (%d workers)\n", p.Seq, p.Workers)
	fmt.Fprintf(w, "window   %s .. %s\n", p.First.Format(time.RFC3339), p.Last.Format(time.RFC3339))
	fmt.Fprintf(w, "packets  %d (iec %d, asdus %d, parse errors %d, seq anomalies %d)\n",
		p.Packets, p.IECPackets, p.TotalASDUs, p.ParseErrors, p.SeqAnomalies)
	fmt.Fprintf(w, "flows    total %d  short %d  long %d  subsec %.2f\n",
		p.Flows.Total, p.Flows.ShortLived, p.Flows.LongLived, p.Flows.SubSecProportion)
	fmt.Fprintf(w, "stations %d", p.Compliance.Stations)
	if len(p.Compliance.NonCompliant) > 0 {
		fmt.Fprintf(w, " (non-compliant: %s)", strings.Join(p.Compliance.NonCompliant, " "))
	}
	fmt.Fprintln(w)
	if len(p.Types) > 0 {
		fmt.Fprint(w, "types   ")
		for i, t := range p.Types {
			if i >= 5 {
				break
			}
			fmt.Fprintf(w, " I%d %.1f%%", int(t.Type), t.Percent)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "markov   %d connections, type distribution %v\n",
		len(p.Markov.Connections), p.Markov.Distribution)
	if p.Clusters != nil {
		fmt.Fprintf(w, "clusters k=%d sizes %v silhouette %.3f\n",
			p.Clusters.K, p.Clusters.Sizes, p.Clusters.Silhouette)
	}
	if len(p.Dialects) > 0 {
		fmt.Fprint(w, "dialects")
		for _, d := range p.Dialects {
			fmt.Fprintf(w, " %s %d frames (%d errors)", d.Proto, d.Frames, d.ParseErrors)
		}
		fmt.Fprintln(w)
	}
	for _, sc := range p.Streams {
		verdict := "ok"
		if !sc.Compliant {
			verdict = "VIOLATION"
		}
		fmt.Fprintf(w, "stream   %s %s/%s %s: %s\n", sc.Proto, sc.Conn, sc.Unit, verdict, sc.Detail)
	}
	if len(p.Physical) > 0 {
		d := p.Physical[0]
		fmt.Fprintf(w, "physical %d ranked series, top %s/%d nvar %.4g\n",
			len(p.Physical), d.Station, d.IOA, d.NormalizedVariance)
	}
	if p.DroppedBatches > 0 || p.DroppedPackets > 0 {
		fmt.Fprintf(w, "dropped  %d batches / %d packets\n", p.DroppedBatches, p.DroppedPackets)
	}
	return nil
}
