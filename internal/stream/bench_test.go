package stream

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// benchCapture lazily synthesizes the shared benchmark input: an
// ~18-minute Y1 trace, which carries ≈100k APDUs.
var benchCapture struct {
	once    sync.Once
	pkts    []pcap.Packet
	raw     []byte // the capture file bytes, for segmented-reader runs
	bytes   int64
	apdus   int
	network *topology.Network
}

func loadBenchCapture(tb testing.TB) {
	benchCapture.once.Do(func() {
		cfg := scadasim.DefaultConfig(topology.Y1, 99)
		cfg.Duration = 18 * time.Minute
		sim, err := scadasim.New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		tr, err := sim.Run()
		if err != nil {
			tb.Fatal(err)
		}
		benchCapture.network = sim.Network()
		var buf bytes.Buffer
		if err := tr.WritePCAP(&buf); err != nil {
			tb.Fatal(err)
		}
		benchCapture.bytes = int64(buf.Len())
		benchCapture.raw = buf.Bytes()
		src, err := NewPCAPSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			tb.Fatal(err)
		}
		for {
			pkt, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				tb.Fatal(err)
			}
			benchCapture.pkts = append(benchCapture.pkts, pkt)
		}
		for _, r := range tr.Records {
			if len(r.Payload) > 0 {
				benchCapture.apdus++
			}
		}
		if benchCapture.apdus < 100000 {
			tb.Fatalf("benchmark capture has only %d APDUs, want >= 100k", benchCapture.apdus)
		}
	})
}

// memSource serves pre-decoded packets, so the benchmark measures the
// engine and analyzers, not pcap decoding.
type memSource struct {
	pkts []pcap.Packet
	i    int
}

func (s *memSource) Next() (pcap.Packet, error) {
	if s.i >= len(s.pkts) {
		return pcap.Packet{}, io.EOF
	}
	pkt := s.pkts[s.i]
	s.i++
	return pkt, nil
}

func (s *memSource) Close() error { return nil }

func runBenchEngine(tb testing.TB, workers int) core.Partial {
	e := New(Config{Workers: workers, Names: core.NamesFromTopology(benchCapture.network)})
	if err := e.Run(context.Background(), &memSource{pkts: benchCapture.pkts}); err != nil {
		tb.Fatal(err)
	}
	return e.Final()
}

func benchmarkEngine(b *testing.B, workers int) {
	loadBenchCapture(b)
	b.SetBytes(benchCapture.bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchEngine(b, workers)
	}
	b.ReportMetric(float64(benchCapture.apdus)*float64(b.N)/b.Elapsed().Seconds(), "apdus/s")
}

// runBenchEngineRaw streams the capture bytes through the raw
// (undecoded) path with the given reader fan-out, exercising the
// segment planner and the per-reader pools.
func runBenchEngineRaw(tb testing.TB, workers, readers int) core.Partial {
	src := NewReaderAtSource(bytes.NewReader(benchCapture.raw), benchCapture.bytes)
	e := New(Config{Workers: workers, Readers: readers, Names: core.NamesFromTopology(benchCapture.network)})
	if err := e.Run(context.Background(), src); err != nil {
		tb.Fatal(err)
	}
	return e.Final()
}

func benchmarkEngineRaw(b *testing.B, workers, readers int) {
	loadBenchCapture(b)
	b.SetBytes(benchCapture.bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchEngineRaw(b, workers, readers)
	}
	b.ReportMetric(float64(benchCapture.apdus)*float64(b.N)/b.Elapsed().Seconds(), "apdus/s")
}

func BenchmarkEngine1Shard(b *testing.B)        { benchmarkEngine(b, 1) }
func BenchmarkEngine4Shard(b *testing.B)        { benchmarkEngine(b, 4) }
func BenchmarkEngine1Shard4Reader(b *testing.B) { benchmarkEngineRaw(b, 1, 4) }
func BenchmarkEngine4Shard4Reader(b *testing.B) { benchmarkEngineRaw(b, 4, 4) }

// TestShardScalingNotSlower is the throughput guard: on a multi-core
// machine the sharded engine must beat one shard; on a single-CPU
// machine (GOMAXPROCS=1) sharding cannot win, so the guard bounds the
// coordination overhead instead.
func TestShardScalingNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	loadBenchCapture(t)

	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			p := runBenchEngine(t, workers)
			el := time.Since(start)
			if p.Packets != len(benchCapture.pkts) {
				t.Fatalf("engine(%d) processed %d packets, want %d", workers, p.Packets, len(benchCapture.pkts))
			}
			if el < best {
				best = el
			}
		}
		return best
	}

	one := measure(1)
	four := measure(4)
	t.Logf("GOMAXPROCS=%d: 1 shard %v, 4 shards %v (%.0f / %.0f apdus/s)",
		runtime.GOMAXPROCS(0), one, four,
		float64(benchCapture.apdus)/one.Seconds(), float64(benchCapture.apdus)/four.Seconds())

	if runtime.GOMAXPROCS(0) >= 2 {
		// Real parallelism available: sharding must not lose. 10%
		// headroom absorbs scheduler noise.
		if float64(four) > 1.10*float64(one) {
			t.Errorf("4-shard run slower than 1-shard: %v vs %v", four, one)
		}
	} else {
		// Single CPU: concurrency cannot pay for itself, but the
		// batching must keep coordination overhead bounded.
		if float64(four) > 1.5*float64(one) {
			t.Errorf("4-shard overhead too high on 1 CPU: %v vs %v", four, one)
		}
	}
}
