package stream

import (
	"net/http/httptest"
	"strings"
	"testing"

	"uncharted/internal/core"
	"uncharted/internal/drift"
)

// TestHandlerConstructors exercises the shared endpoint constructors
// directly: nil data serves 503, each format sets its Content-Type,
// and an unknown format is a JSON 400.
func TestHandlerConstructors(t *testing.T) {
	prof := BuildProfile(core.Partial{}, 3, 0, 1)
	rep := &drift.DriftReport{}
	st := Status{State: "running", Workers: 2, Policy: "block"}

	type probe struct {
		name     string
		url      string
		wantCode int
		wantCT   string
		wantBody string
	}

	t.Run("profile", func(t *testing.T) {
		h := NewProfileHandler(func() *Profile { return prof })
		for _, p := range []probe{
			{"json", "/profile", 200, "application/json; charset=utf-8", `"seq"`},
			{"text", "/profile?format=text", 200, "text/plain; charset=utf-8", "rolling profile seq 3"},
			{"bad", "/profile?format=xml", 400, "application/json; charset=utf-8", "unsupported format"},
		} {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", p.url, nil))
			if rr.Code != p.wantCode || rr.Header().Get("Content-Type") != p.wantCT ||
				!strings.Contains(rr.Body.String(), p.wantBody) {
				t.Errorf("%s: code %d CT %q body %.80q; want %d %q containing %q",
					p.name, rr.Code, rr.Header().Get("Content-Type"), rr.Body.String(),
					p.wantCode, p.wantCT, p.wantBody)
			}
		}
		h = NewProfileHandler(func() *Profile { return nil })
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/profile", nil))
		if rr.Code != 503 {
			t.Errorf("nil profile: code %d, want 503", rr.Code)
		}
	})

	t.Run("drift", func(t *testing.T) {
		h := NewDriftHandler(func() *drift.DriftReport { return rep })
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/drift", nil))
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json; charset=utf-8" {
			t.Errorf("drift json: code %d CT %q", rr.Code, rr.Header().Get("Content-Type"))
		}
		h = NewDriftHandler(func() *drift.DriftReport { return nil })
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/drift", nil))
		if rr.Code != 503 {
			t.Errorf("nil drift: code %d, want 503", rr.Code)
		}
	})

	t.Run("status", func(t *testing.T) {
		h := NewStatusHandler(func() Status { return st })
		for _, p := range []probe{
			{"html", "/statusz", 200, "text/html; charset=utf-8", "<html"},
			{"json", "/statusz?format=json", 200, "application/json; charset=utf-8", `"state"`},
			{"text", "/statusz?format=text", 200, "text/plain; charset=utf-8", "state running"},
		} {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", p.url, nil))
			if rr.Code != p.wantCode || rr.Header().Get("Content-Type") != p.wantCT ||
				!strings.Contains(rr.Body.String(), p.wantBody) {
				t.Errorf("%s: code %d CT %q body %.80q; want %d %q containing %q",
					p.name, rr.Code, rr.Header().Get("Content-Type"), rr.Body.String(),
					p.wantCode, p.wantCT, p.wantBody)
			}
		}
	})
}

// TestEndpointsMap checks the shared route map the single-engine
// commands and the control-room service both mount.
func TestEndpointsMap(t *testing.T) {
	e := New(Config{Workers: 1})
	eps := Endpoints(e, nil)
	for _, want := range []string{"/profile", "/statusz", "/readyz"} {
		if eps[want] == nil {
			t.Errorf("Endpoints missing %s", want)
		}
	}
	if eps["/drift"] != nil {
		t.Error("drift endpoint present without a baseline")
	}
	if eps["/query"] != nil {
		t.Error("query endpoint present without a historian")
	}
}
