package stream

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"time"

	"uncharted/internal/obs/trace"
)

// StageStatus is one (stage, lane) row of the live pipeline topology:
// sampled-span latency quantiles from the flight recorder histograms.
type StageStatus struct {
	Stage string  `json:"stage"`
	Lane  string  `json:"lane"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// ReaderStatus is one parallel segment reader's live progress: the
// byte range it owns, how far it has read, and its observed rate.
type ReaderStatus struct {
	ID          int     `json:"id"`
	SegmentOff  int64   `json:"segment_off"`
	SegmentSize int64   `json:"segment_size"`
	BytesRead   int64   `json:"bytes_read"`
	MBPerSec    float64 `json:"mb_per_sec"`
	Done        bool    `json:"done"`
}

// ShardStatus is one shard's live health: queue occupancy (summed over
// its per-reader queues), the stage it is in right now, and its
// drop/stall attribution.
type ShardStatus struct {
	ID             int              `json:"id"`
	QueueLen       int              `json:"queue_len"`
	QueueCap       int              `json:"queue_cap"`
	Current        string           `json:"current_stage"`
	DroppedBatches int64            `json:"dropped_batches"`
	DroppedPackets int64            `json:"dropped_packets"`
	Stalls         map[string]int64 `json:"stalls_by_cause,omitempty"`
	DropCauses     map[string]int64 `json:"drops_by_cause,omitempty"`
}

// Status is the engine's /statusz document.
type Status struct {
	State          string        `json:"state"`
	UptimeSeconds  float64       `json:"uptime_seconds"`
	Workers        int           `json:"workers"`
	BatchSize      int           `json:"batch_size"`
	QueueDepth     int           `json:"queue_depth"`
	Policy         string        `json:"policy"`
	Packets        int64         `json:"packets"`
	Batches        int64         `json:"batches"`
	Snapshots      int64         `json:"snapshots"`
	DroppedBatches int64          `json:"dropped_batches"`
	DroppedPackets int64          `json:"dropped_packets"`
	Readers        []ReaderStatus `json:"readers,omitempty"`
	Stages         []StageStatus  `json:"stages,omitempty"`
	Shards         []ShardStatus  `json:"shards"`
}

func (p DropPolicy) String() string {
	if p == DropNewest {
		return "drop-newest"
	}
	return "block"
}

func stateName(s int32) string {
	switch s {
	case stateRunning:
		return "running"
	case stateDraining:
		return "draining"
	case stateDone:
		return "done"
	}
	return "idle"
}

// Status assembles the live pipeline view: engine state, per-shard
// queue occupancy and attribution, and — when a registry is attached —
// per-stage latency quantiles estimated from the flight recorder's
// sampled histograms.
func (e *Engine) Status() Status {
	st := Status{
		State:      stateName(e.state.Load()),
		Workers:    e.cfg.Workers,
		BatchSize:  e.cfg.BatchSize,
		QueueDepth: e.cfg.QueueDepth,
		Policy:     e.cfg.Policy.String(),
	}
	if started := e.started.Load(); started != 0 {
		st.UptimeSeconds = time.Since(time.Unix(0, started)).Seconds()
	}
	if m := e.metrics; m != nil {
		st.Packets = m.packets.Value()
		st.Batches = m.batches.Value()
		st.Snapshots = m.snapshots.Value()
		st.DroppedBatches, st.DroppedPackets = m.dropped()
	}
	if rs := e.readers.Load(); rs != nil {
		for i, rst := range *rs {
			r := ReaderStatus{
				ID:          i,
				SegmentOff:  rst.info.Off,
				SegmentSize: rst.info.Size,
				BytesRead:   rst.bytes.Load(),
			}
			elapsed := time.Since(rst.start)
			if end := rst.endNs.Load(); end != 0 {
				r.Done = true
				elapsed = time.Unix(0, end).Sub(rst.start)
			}
			if s := elapsed.Seconds(); s > 0 {
				r.MBPerSec = float64(r.BytesRead) / (1 << 20) / s
			}
			st.Readers = append(st.Readers, r)
		}
	}
	for _, sh := range e.shards {
		qlen, qcap := 0, 0
		for _, q := range sh.queues() {
			qlen += len(q)
			qcap += cap(q)
		}
		ss := ShardStatus{
			ID:       sh.id,
			QueueLen: qlen,
			QueueCap: qcap,
			Current:  causeName(sh.cur.Load()),
		}
		if m := e.metrics; m != nil && sh.id < len(m.shards) {
			sm := &m.shards[sh.id]
			ss.DroppedBatches = sm.dropB.Value()
			ss.DroppedPackets = sm.dropP.Value()
			for cause, c := range sm.stalls {
				if v := c.Value(); v > 0 {
					if ss.Stalls == nil {
						ss.Stalls = make(map[string]int64)
					}
					ss.Stalls[cause] = v
				}
			}
			for cause, c := range sm.dropBy {
				if v := c.Value(); v > 0 {
					if ss.DropCauses == nil {
						ss.DropCauses = make(map[string]int64)
					}
					ss.DropCauses[cause] = v
				}
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	if e.cfg.Registry != nil {
		for _, h := range e.cfg.Registry.Snapshot().Histograms {
			if h.Name != trace.StageSecondsMetric || h.Count == 0 {
				continue
			}
			st.Stages = append(st.Stages, StageStatus{
				Stage: h.Label("stage"),
				Lane:  h.Label("shard"),
				Count: h.Count,
				P50:   h.Quantile(0.50),
				P99:   h.Quantile(0.99),
			})
		}
		sort.Slice(st.Stages, func(i, j int) bool {
			if st.Stages[i].Lane != st.Stages[j].Lane {
				return st.Stages[i].Lane < st.Stages[j].Lane
			}
			return st.Stages[i].Stage < st.Stages[j].Stage
		})
	}
	return st
}

// StatuszHandler serves the live pipeline topology: HTML by default
// (auto-refreshing), ?format=json — the document cmd/unchartedtop
// polls — or ?format=text for terminals.
func (e *Engine) StatuszHandler() http.Handler {
	return NewStatusHandler(e.Status)
}

// WriteJSON renders the status document, indented.
func (st Status) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// WriteText renders the status document as a terminal-friendly
// summary: one header line, one line per shard, one per sampled stage.
func (st Status) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "state %s  uptime %.1fs  policy %s  workers %d  batch %d  queue %d\n",
		st.State, st.UptimeSeconds, st.Policy, st.Workers, st.BatchSize, st.QueueDepth)
	fmt.Fprintf(w, "packets %d  batches %d  snapshots %d  dropped %d batches / %d packets\n",
		st.Packets, st.Batches, st.Snapshots, st.DroppedBatches, st.DroppedPackets)
	for _, r := range st.Readers {
		fmt.Fprintf(w, "reader %d: segment @%d +%d  read %d  %.1f MB/s%s\n",
			r.ID, r.SegmentOff, r.SegmentSize, r.BytesRead, r.MBPerSec, doneSuffix(r.Done))
	}
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "shard %d: queue %d/%d  stage %s  dropped %d/%d  stalls %s  drops %s\n",
			sh.ID, sh.QueueLen, sh.QueueCap, sh.Current,
			sh.DroppedBatches, sh.DroppedPackets,
			causeMapString(sh.Stalls), causeMapString(sh.DropCauses))
	}
	for _, sg := range st.Stages {
		fmt.Fprintf(w, "stage %s/%s: spans %d  p50 %s  p99 %s\n",
			sg.Lane, sg.Stage, sg.Count, fmtSeconds(sg.P50), fmtSeconds(sg.P99))
	}
	return nil
}

func writeStatusHTML(w io.Writer, st Status) {
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta http-equiv="refresh" content="2"><title>uncharted /statusz</title>
<style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0 0 1.5em}
td,th{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}
td:first-child,th:first-child{text-align:left}
.bar{background:#cfc;height:0.8em;display:inline-block}
</style></head><body>
<h2>uncharted streaming pipeline</h2>
<p>state <b>%s</b> · uptime %.1fs · policy %s · %d workers · batch %d · queue %d</p>
<p>packets %d · batches %d · snapshots %d · dropped %d batches / %d packets</p>
`,
		html.EscapeString(st.State), st.UptimeSeconds, html.EscapeString(st.Policy),
		st.Workers, st.BatchSize, st.QueueDepth,
		st.Packets, st.Batches, st.Snapshots, st.DroppedBatches, st.DroppedPackets)

	if len(st.Readers) > 0 {
		fmt.Fprint(w, "<h3>readers</h3><table><tr><th>reader</th><th>segment</th><th>read</th><th>MB/s</th><th>state</th></tr>\n")
		for _, r := range st.Readers {
			pct := 0
			if r.SegmentSize > 0 {
				pct = int(100 * r.BytesRead / r.SegmentSize)
			}
			state := "reading"
			if r.Done {
				state = "done"
			}
			fmt.Fprintf(w, `<tr><td>%d</td><td>@%d +%d</td><td>%d (%d%%) <span class="bar" style="width:%dpx"></span></td><td>%.1f</td><td>%s</td></tr>`+"\n",
				r.ID, r.SegmentOff, r.SegmentSize, r.BytesRead, pct, pct, r.MBPerSec, state)
		}
		fmt.Fprint(w, "</table>\n")
	}

	fmt.Fprint(w, "<h3>shards</h3><table><tr><th>shard</th><th>queue</th><th>stage</th><th>dropped batches</th><th>dropped packets</th><th>stalls (cause)</th><th>drops (cause)</th></tr>\n")
	for _, sh := range st.Shards {
		fill := 0
		if sh.QueueCap > 0 {
			fill = 100 * sh.QueueLen / sh.QueueCap
		}
		fmt.Fprintf(w, `<tr><td>%d</td><td>%d/%d <span class="bar" style="width:%dpx"></span></td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td></tr>`+"\n",
			sh.ID, sh.QueueLen, sh.QueueCap, fill,
			html.EscapeString(sh.Current), sh.DroppedBatches, sh.DroppedPackets,
			html.EscapeString(causeMapString(sh.Stalls)), html.EscapeString(causeMapString(sh.DropCauses)))
	}
	fmt.Fprint(w, "</table>\n")

	if len(st.Stages) > 0 {
		fmt.Fprint(w, "<h3>stages (sampled)</h3><table><tr><th>lane</th><th>stage</th><th>spans</th><th>p50</th><th>p99</th></tr>\n")
		for _, sg := range st.Stages {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(sg.Lane), html.EscapeString(sg.Stage), sg.Count,
				fmtSeconds(sg.P50), fmtSeconds(sg.P99))
		}
		fmt.Fprint(w, "</table>\n")
	}
	fmt.Fprint(w, "</body></html>\n")
}

// causeMapString renders an attribution map as "feed:3 decode:1".
func causeMapString(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", k, m[k])
	}
	return out
}

func doneSuffix(done bool) string {
	if done {
		return "  done"
	}
	return ""
}

func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	}
	return fmt.Sprintf("%.3fs", s)
}
