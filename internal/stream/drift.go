package stream

import (
	"net/http"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/obs"
)

// noteDrift diffs the freshly merged rolling state against the
// configured baseline profile, publishes the report, and journals and
// alerts on findings not seen before in this run. Called from publish
// with e.mu held, so driftSeen needs no extra locking.
func (e *Engine) noteDrift(p core.Partial, seq int) {
	if e.cfg.Baseline == nil {
		return
	}
	th := drift.DefaultThresholds()
	if e.cfg.DriftThresholds != nil {
		th = *e.cfg.DriftThresholds
	}
	cur := drift.NewProfile("live", "stream", p, p.Last)
	rep := drift.Compare(e.cfg.Baseline, cur, th)
	e.driftRep.Store(rep)
	e.metrics.noteDrift(rep)

	var fresh []drift.Finding
	for _, f := range rep.Findings {
		key := f.Kind + "|" + f.Subject
		if e.driftSeen[key] {
			continue
		}
		e.driftSeen[key] = true
		fresh = append(fresh, f)
	}
	e.cfg.Journal.Log(p.Last, obs.EventDrift, "", map[string]any{
		"seq":          seq,
		"baseline":     e.cfg.Baseline.Meta.Label,
		"findings":     len(rep.Findings),
		"new":          len(fresh),
		"max_severity": rep.MaxSeverity(),
		"max_jsd":      rep.MaxTransitionJSD,
	})
	for _, f := range fresh {
		e.cfg.Journal.Log(p.Last, obs.EventDrift, f.Subject, map[string]any{
			"kind":     f.Kind,
			"severity": f.Severity,
			"detail":   f.Detail,
			"score":    f.Score,
		})
		if e.cfg.DriftAlerts != nil {
			e.cfg.DriftAlerts(f.Alert())
		}
	}
}

// DriftReport returns the report from the most recent snapshot's
// baseline comparison, or nil when no baseline is configured or no
// snapshot has been published yet.
func (e *Engine) DriftReport() *drift.DriftReport { return e.driftRep.Load() }

// DriftHandler serves the latest drift report — mount it at /drift
// next to /profile and /metrics. JSON by default, ?format=text for
// the profilediff rendering.
func (e *Engine) DriftHandler() http.Handler {
	return NewDriftHandler(e.DriftReport)
}
