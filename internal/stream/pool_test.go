package stream

import (
	"bytes"
	"context"
	"testing"
	"time"

	"uncharted/internal/core"
)

// TestBufferPoolLifecycleAcrossShards hammers the pooled raw path's
// recycle/reuse cycle: tiny batches and shallow queues force slabs
// through the pool as fast as four shards can drain them, and
// poison-on-release overwrites every slab with 0xDB the moment a shard
// returns it. A use-after-release anywhere — reader appending into a
// released slab, shard decoding after recycling — surfaces either as a
// race report under -race or as poisoned frames whose decode failures
// break the exact offline equivalence asserted at the end.
func TestBufferPoolLifecycleAcrossShards(t *testing.T) {
	sim, tr := simulate(t, 23, 3*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)

	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Workers:    4,
		BatchSize:  4,
		QueueDepth: 2,
		Names:      core.NamesFromTopology(sim.Network()),
	})
	e.pools.slabs.SetPoison(true)
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, want, e.Final())
}
