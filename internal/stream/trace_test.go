package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/historian"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pcap"
)

// decodedOnly hides a source's RawSource face so the engine takes the
// decoded read path.
type decodedOnly struct{ Source }

// TestEngineTracingRawPath: a traced 4-shard run over the raw fast
// path records spans for every hot-path stage, feeds the per-stage
// histograms, journals EventSpan lines, exports a loadable Chrome
// trace — and still produces exactly the offline profile.
func TestEngineTracingRawPath(t *testing.T) {
	sim, tr := simulate(t, 21, 5*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)

	histDir := t.TempDir()
	hist, err := historian.Open(histDir, historian.Options{FlushSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer hist.Close()

	reg := obs.NewRegistry()
	var journal bytes.Buffer
	rec := trace.New(trace.Config{SampleEvery: 1, RingSize: 1 << 14, Registry: reg})
	e := New(Config{
		Workers:       4,
		SnapshotEvery: 10 * time.Millisecond,
		Registry:      reg,
		Journal:       obs.NewJournal(&journal),
		Trace:         rec,
		Historian:     hist,
		Names:         core.NamesFromTopology(sim.Network()),
	})
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, want, e.Final())

	// Every raw-path stage shows up in some lane.
	stages := map[string]bool{}
	lanes := map[string]bool{}
	for _, ls := range rec.Snapshot() {
		lanes[ls.Lane] = true
		for _, s := range ls.Spans {
			stages[s.Stage.String()] = true
		}
	}
	for _, lane := range []string{"reader", "0", "1", "2", "3", "snapshot"} {
		if !lanes[lane] {
			t.Errorf("missing lane %q (have %v)", lane, lanes)
		}
	}
	for _, st := range []string{"read", "route", "enqueue", "decode", "feed", "historian", "merge", "publish"} {
		if !stages[st] {
			t.Errorf("no spans for stage %q (have %v)", st, stages)
		}
	}

	// The same spans fed the latency histograms...
	if h := reg.Histogram(trace.StageSecondsMetric, obs.DurationBuckets, "stage", "decode", "shard", "0"); h.Count() == 0 {
		t.Error("decode histogram for shard 0 is empty")
	}
	// ...and the journal received span events.
	if err := e.cfg.Journal.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(journal.Bytes(), []byte(`"type":"span"`)) {
		t.Error("journal has no span events")
	}

	// The Chrome export parses and names every stage.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
	}
	for _, st := range []string{"read", "route", "enqueue", "decode", "feed", "merge", "publish"} {
		if !seen[st] {
			t.Errorf("chrome export missing stage %q", st)
		}
	}
}

// TestEngineTracingDecodedPath: a Source without a raw face traces
// read/enqueue/feed but never route/decode — the shape cmd/tracecheck
// asserts for simulator-fed runs.
func TestEngineTracingDecodedPath(t *testing.T) {
	sim, tr := simulate(t, 22, 2*time.Minute)
	capture := tracePCAP(t, tr)

	rec := trace.New(trace.Config{SampleEvery: 1})
	e := New(Config{Workers: 2, Trace: rec, Names: core.NamesFromTopology(sim.Network())})
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), decodedOnly{src}); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, ls := range rec.Snapshot() {
		for _, s := range ls.Spans {
			stages[s.Stage.String()] = true
		}
	}
	for _, st := range []string{"read", "enqueue", "feed", "merge", "publish"} {
		if !stages[st] {
			t.Errorf("decoded path missing stage %q (have %v)", st, stages)
		}
	}
	if stages["route"] || stages["decode"] {
		t.Errorf("decoded path recorded raw-only stages: %v", stages)
	}
}

// TestEngineUntracedUnchanged: with no recorder configured the traced
// call sites are inert and the profile is still exact.
func TestEngineUntracedUnchanged(t *testing.T) {
	sim, tr := simulate(t, 23, 2*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)
	e := New(Config{Workers: 3, Names: core.NamesFromTopology(sim.Network())})
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, want, e.Final())
}

// TestStatuszAndReadiness: the /statusz document reflects the engine,
// and Ready flips through the lifecycle with machine-readable reasons.
func TestStatuszAndReadiness(t *testing.T) {
	sim, tr := simulate(t, 24, 2*time.Minute)
	capture := tracePCAP(t, tr)

	reg := obs.NewRegistry()
	rec := trace.New(trace.Config{SampleEvery: 1, Registry: reg})
	e := New(Config{Workers: 2, Registry: reg, Trace: rec, Names: core.NamesFromTopology(sim.Network())})

	if ready, reason := e.Ready(); ready || reason != "engine not started" {
		t.Fatalf("pre-run Ready = %v %q", ready, reason)
	}
	rr := httptest.NewRecorder()
	obs.ReadyHandler(e.Ready).ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 || !strings.Contains(rr.Body.String(), "engine not started") {
		t.Fatalf("pre-run /readyz = %d %q", rr.Code, rr.Body.String())
	}

	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if ready, reason := e.Ready(); ready || reason != "stopped" {
		t.Fatalf("post-run Ready = %v %q", ready, reason)
	}

	st := e.Status()
	if st.State != "done" || st.Workers != 2 || len(st.Shards) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.Packets == 0 || st.Batches == 0 {
		t.Fatalf("status counts empty: %+v", st)
	}
	if len(st.Stages) == 0 {
		t.Fatal("status has no stage rows despite tracing")
	}
	for _, sg := range st.Stages {
		if sg.P99 < sg.P50 {
			t.Errorf("stage %s/%s p99 %v < p50 %v", sg.Lane, sg.Stage, sg.P99, sg.P50)
		}
	}

	// JSON view round-trips.
	rr = httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=json", nil))
	if rr.Code != 200 {
		t.Fatalf("/statusz?format=json = %d", rr.Code)
	}
	var served Status
	if err := json.Unmarshal(rr.Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if served.State != "done" || served.Packets != st.Packets {
		t.Errorf("served status %+v, want %+v", served, st)
	}

	// HTML view serves and mentions the shards.
	rr = httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "shards") {
		t.Fatalf("/statusz HTML = %d", rr.Code)
	}
}

// TestBlockPolicyAttributesStalls: a wedged shard forces the Block
// reader to stall, and the stall is attributed to the stage the shard
// was observed in.
func TestBlockPolicyAttributesStalls(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Workers: 1, QueueDepth: 1, Registry: reg})
	sh := e.shards[0]
	sh.cur.Store(int32(trace.StageFeed)) // the shard "is" feeding

	mkBatch := func() batch {
		pb := e.pools.getDec()
		pb.pkts = append(pb.pkts, make([]pcap.Packet, 2)...)
		return batch{dec: pb}
	}
	ctx := context.Background()
	if !e.dispatch(ctx, 0, mkBatch()) { // fills the queue
		t.Fatal("first dispatch failed")
	}
	// Second dispatch blocks; free a slot shortly after so it lands.
	go func() {
		time.Sleep(20 * time.Millisecond)
		b := <-sh.queues()[0]
		e.pools.recycle(b)
	}()
	if !e.dispatch(ctx, 0, mkBatch()) {
		t.Fatal("second dispatch failed")
	}
	if got := reg.Counter(MetricStalls, "shard", "0", "cause", "feed").Value(); got != 1 {
		t.Fatalf("feed-attributed stalls = %d, want 1", got)
	}
	if h := reg.Histogram(MetricStallSeconds, obs.DurationBuckets, "shard", "0"); h.Count() != 1 {
		t.Fatalf("stall duration observations = %d, want 1", h.Count())
	}
	// Drain the remaining batch so nothing leaks into other tests.
	b := <-sh.queues()[0]
	e.pools.recycle(b)
}
