package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// simulate synthesizes a deterministic Y1 trace.
func simulate(t testing.TB, seed int64, dur time.Duration) (*scadasim.Simulator, *scadasim.Trace) {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = dur
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sim, tr
}

func tracePCAP(t testing.TB, tr *scadasim.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offlinePartial runs the classic single-analyzer pipeline.
func offlinePartial(t testing.TB, sim *scadasim.Simulator, capture []byte) core.Partial {
	t.Helper()
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(bytes.NewReader(capture)); err != nil {
		t.Fatal(err)
	}
	return a.Partial()
}

// runEngine streams the capture through an engine and returns its
// final state.
func runEngine(t testing.TB, sim *scadasim.Simulator, capture []byte, workers int) (*Engine, core.Partial) {
	t.Helper()
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: workers, Names: core.NamesFromTopology(sim.Network())})
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	return e, e.Final()
}

// assertEquivalent compares the aggregates that must be exactly equal
// between the offline pipeline and a sharded streamed run. Detected
// dialects are compared only as the non-compliant set: an endpoint
// whose traffic spans shards detects its dialect per shard, so the
// pinning moment (and with it StrictInvalid tallies) can differ even
// though the verdict does not.
func assertEquivalent(t *testing.T, want, got core.Partial) {
	t.Helper()
	if got.Packets != want.Packets || got.IECPackets != want.IECPackets {
		t.Errorf("packets %d/%d, want %d/%d", got.Packets, got.IECPackets, want.Packets, want.IECPackets)
	}
	if got.TotalASDUs != want.TotalASDUs {
		t.Errorf("ASDUs %d, want %d", got.TotalASDUs, want.TotalASDUs)
	}
	if !got.First.Equal(want.First) || !got.Last.Equal(want.Last) {
		t.Errorf("window [%v %v], want [%v %v]", got.First, got.Last, want.First, want.Last)
	}
	wf, gf := want.Flows, got.Flows
	if gf.ShortLived != wf.ShortLived || gf.LongLived != wf.LongLived ||
		gf.ShortLivedSubSec != wf.ShortLivedSubSec || gf.ShortLivedOverSec != wf.ShortLivedOverSec {
		t.Errorf("flow summary %+v, want %+v", gf, wf)
	}
	if len(gf.ShortLivedDuration) != len(wf.ShortLivedDuration) {
		t.Errorf("%d short-lived durations, want %d", len(gf.ShortLivedDuration), len(wf.ShortLivedDuration))
	}
	if !reflect.DeepEqual(got.TypeCounts, want.TypeCounts) {
		t.Errorf("type counts %v, want %v", got.TypeCounts, want.TypeCounts)
	}

	wc, gc := want.ComplianceReport(), got.ComplianceReport()
	if !reflect.DeepEqual(gc.NonCompliant, wc.NonCompliant) {
		t.Errorf("non-compliant %v, want %v", gc.NonCompliant, wc.NonCompliant)
	}
	wantFrames := map[string]int{}
	for _, sc := range wc.Stations {
		wantFrames[sc.Name] = sc.Frames
	}
	gotFrames := map[string]int{}
	for _, sc := range gc.Stations {
		gotFrames[sc.Name] = sc.Frames
	}
	if !reflect.DeepEqual(gotFrames, wantFrames) {
		t.Errorf("per-station frames %v, want %v", gotFrames, wantFrames)
	}

	wm, gm := want.MarkovReport(), got.MarkovReport()
	sortStrs := func(ss []string) []string { out := append([]string(nil), ss...); sort.Strings(out); return out }
	if !reflect.DeepEqual(sortStrs(gm.Point11), sortStrs(wm.Point11)) ||
		!reflect.DeepEqual(sortStrs(gm.Square), sortStrs(wm.Square)) ||
		!reflect.DeepEqual(sortStrs(gm.Ellipse), sortStrs(wm.Ellipse)) {
		t.Errorf("Fig.13 membership differs: got (%v,%v,%v) want (%v,%v,%v)",
			gm.Point11, gm.Square, gm.Ellipse, wm.Point11, wm.Square, wm.Ellipse)
	}
	if gm.Distribution != wm.Distribution {
		t.Errorf("class distribution %v, want %v", gm.Distribution, wm.Distribution)
	}
	wantChains := map[string][3]int{}
	for _, cc := range wm.Chains {
		wantChains[cc.Server+"-"+cc.Outstation] = [3]int{cc.Chain.Nodes(), cc.Chain.Edges(), cc.Chain.TotalTokens()}
	}
	for _, cc := range gm.Chains {
		if got, want := [3]int{cc.Chain.Nodes(), cc.Chain.Edges(), cc.Chain.TotalTokens()},
			wantChains[cc.Server+"-"+cc.Outstation]; got != want {
			t.Errorf("chain %s-%s shape %v, want %v", cc.Server, cc.Outstation, got, want)
		}
	}
	if len(gm.Chains) != len(wm.Chains) {
		t.Errorf("%d chains, want %d", len(gm.Chains), len(wm.Chains))
	}

	// Session features are sorted in partials; the offline analyzer
	// emits them in session order — compare as sorted multisets.
	wantFeats := append([]core.SessionFeature(nil), want.Features...)
	gotFeats := append([]core.SessionFeature(nil), got.Features...)
	less := func(a, b core.SessionFeature) bool {
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	}
	sort.Slice(wantFeats, func(i, j int) bool { return less(wantFeats[i], wantFeats[j]) })
	sort.Slice(gotFeats, func(i, j int) bool { return less(gotFeats[i], gotFeats[j]) })
	if !reflect.DeepEqual(gotFeats, wantFeats) {
		t.Errorf("session features differ (%d vs %d rows)", len(gotFeats), len(wantFeats))
	}

	if len(got.Physical) != len(want.Physical) {
		t.Fatalf("%d physical digests, want %d", len(got.Physical), len(want.Physical))
	}
	for i, gd := range got.Physical {
		wd := want.Physical[i]
		if gd.Key != wd.Key || gd.Count != wd.Count || gd.Min != wd.Min || gd.Max != wd.Max {
			t.Errorf("digest %v: got {n=%d min=%g max=%g}, want key %v {n=%d min=%g max=%g}",
				gd.Key, gd.Count, gd.Min, gd.Max, wd.Key, wd.Count, wd.Min, wd.Max)
			continue
		}
		// Means/variances merge in a different association order, so
		// allow float rounding.
		if !closeEnough(gd.Mean, wd.Mean) || !closeEnough(gd.NormalizedVariance(), wd.NormalizedVariance()) {
			t.Errorf("digest %v moments: mean %g/%g nvar %g/%g",
				gd.Key, gd.Mean, wd.Mean, gd.NormalizedVariance(), wd.NormalizedVariance())
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if ab := abs(a); ab > scale {
		scale = ab
	}
	return d <= 1e-9*scale
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestStreamedMatchesOffline(t *testing.T) {
	sim, tr := simulate(t, 11, 3*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)
	if want.Packets == 0 || want.TotalASDUs == 0 {
		t.Fatal("empty offline baseline")
	}
	for _, workers := range []int{1, 4} {
		_, got := runEngine(t, sim, capture, workers)
		t.Run(map[int]string{1: "one-shard", 4: "four-shards"}[workers], func(t *testing.T) {
			assertEquivalent(t, want, got)
		})
	}
}

func TestShardedClusteringDeterministic(t *testing.T) {
	// Merged features are sorted, so the seeded clustering must agree
	// between shard counts.
	sim, tr := simulate(t, 12, 3*time.Minute)
	capture := tracePCAP(t, tr)
	_, one := runEngine(t, sim, capture, 1)
	_, four := runEngine(t, sim, capture, 4)
	c1, err1 := one.ClusterReport(5, 42)
	c4, err4 := four.ClusterReport(5, 42)
	if err1 != nil || err4 != nil {
		t.Fatalf("clustering failed: %v / %v", err1, err4)
	}
	if !reflect.DeepEqual(c1.Sizes, c4.Sizes) || !reflect.DeepEqual(c1.Assign, c4.Assign) {
		t.Errorf("cluster results differ across shard counts: %v vs %v", c1.Sizes, c4.Sizes)
	}
}

func TestRecordSourceMatchesPCAP(t *testing.T) {
	// The in-process simulator feed (cmd/iec104live's path) must yield
	// the same profile as analyzing the recorded pcap offline.
	sim, tr := simulate(t, 13, 2*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)

	e := New(Config{Workers: 2, Names: core.NamesFromTopology(sim.Network())})
	if err := e.Run(context.Background(), NewRecordSource(tr.Records, 0)); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, want, e.Final())
}

func TestFollowSourceTailsGrowingFile(t *testing.T) {
	sim, tr := simulate(t, 14, 90*time.Second)
	capture := tracePCAP(t, tr)
	// Count the packets so we know when the engine has caught up.
	want := offlinePartial(t, sim, capture)

	path := filepath.Join(t.TempDir(), "grow.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Start with the header and the first third, including a torn
	// record: follow mode must wait for the remainder, not error.
	third := 24 + (len(capture)-24)/3
	if _, err := f.Write(capture[:third+7]); err != nil {
		t.Fatal(err)
	}

	src, err := NewFollowSource(path)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, PollInterval: time.Millisecond, Names: core.NamesFromTopology(sim.Network())})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, src) }()

	// Grow the file in two more steps.
	if _, err := f.Write(capture[third+7 : 2*third]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(capture[2*third:]); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if p := e.Snapshot(); p.Packets == want.Packets {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine saw %d packets, want %d", e.Snapshot().Packets, want.Packets)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	src.Close()
	assertEquivalent(t, want, e.Final())
}

func TestReplaySourceTimeScales(t *testing.T) {
	sim, tr := simulate(t, 15, 1*time.Minute)
	capture := tracePCAP(t, tr)
	want := offlinePartial(t, sim, capture)

	// 1 simulated minute at 6000x is ~10ms of wall time: fast enough
	// for a test, slow enough to exercise the ErrNotReady path.
	src, err := NewReplaySource(bytes.NewReader(capture), 6000)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, PollInterval: time.Millisecond, Names: core.NamesFromTopology(sim.Network())})
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if got := e.Final(); got.Packets != want.Packets || got.TotalASDUs != want.TotalASDUs {
		t.Errorf("replayed %d packets / %d ASDUs, want %d / %d",
			got.Packets, got.TotalASDUs, want.Packets, want.TotalASDUs)
	}
}

func TestDropPolicyCountsSheddedBatches(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Workers: 1, QueueDepth: 1, Policy: DropNewest, Registry: reg})
	// The shard goroutine is not running, so the queue fills and the
	// second dispatch must shed instead of blocking.
	mkBatch := func() batch {
		pb := e.pools.getDec()
		pb.pkts = append(pb.pkts, make([]pcap.Packet, 3)...)
		return batch{dec: pb}
	}
	ctx := context.Background()
	if !e.dispatch(ctx, 0, mkBatch()) || !e.dispatch(ctx, 0, mkBatch()) {
		t.Fatal("dispatch returned false without cancellation")
	}
	if got := reg.Counter(MetricDroppedBatches, "shard", "0").Value(); got != 1 {
		t.Fatalf("dropped batches %d, want 1", got)
	}
	if got := reg.Counter(MetricDroppedPackets, "shard", "0").Value(); got != 3 {
		t.Fatalf("dropped packets %d, want 3", got)
	}
	if got := reg.Counter(MetricBatches).Value(); got != 2 {
		t.Fatalf("batches %d, want 2", got)
	}
	// The shard goroutine never started, so the loss is attributed to
	// an idle shard.
	if got := reg.Counter(MetricDropCause, "shard", "0", "cause", "idle").Value(); got != 1 {
		t.Fatalf("idle-attributed drops %d, want 1", got)
	}
}

func TestRollingProfileAndHTTP(t *testing.T) {
	sim, tr := simulate(t, 16, 2*time.Minute)
	capture := tracePCAP(t, tr)
	reg := obs.NewRegistry()
	e := New(Config{
		Workers:       2,
		SnapshotEvery: 10 * time.Millisecond,
		ClusterK:      5,
		Registry:      reg,
		Names:         core.NamesFromTopology(sim.Network()),
	})
	src, err := NewPCAPSource(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	prof := e.Profile()
	if prof == nil {
		t.Fatal("no profile published")
	}
	if prof.Packets == 0 || prof.TotalASDUs == 0 || prof.Flows.Total == 0 {
		t.Fatalf("empty profile: %+v", prof)
	}
	if prof.Workers != 2 {
		t.Fatalf("profile workers %d", prof.Workers)
	}
	if len(prof.Markov.Connections) == 0 || len(prof.Physical) == 0 {
		t.Fatal("profile missing markov/physical sections")
	}

	// The profile is served over the shared obs mux.
	srv := httptest.NewServer(obs.HandlerWith(reg, nil, map[string]http.Handler{
		"/profile": e.ProfileHandler(),
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served Profile
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Packets != prof.Packets || served.Seq != prof.Seq {
		t.Fatalf("served profile %d/%d, want %d/%d", served.Packets, served.Seq, prof.Packets, prof.Seq)
	}
	// The Prometheus endpoint carries the engine counters.
	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if !bytes.Contains(body, []byte(MetricPackets)) {
		t.Fatal("stream metrics missing from /metrics")
	}
}

func TestObserverWiredPerShard(t *testing.T) {
	// Train a baseline on clean traffic, then stream an attacked trace
	// with per-shard online monitors: alerts must fire during the run.
	simClean, trClean := simulate(t, 21, 2*time.Minute)
	base := offlineAnalyzer(t, simClean, tracePCAP(t, trClean))
	baseline, err := ids.Train(base)
	if err != nil {
		t.Fatal(err)
	}

	cfgAtk := scadasim.DefaultConfig(topology.Y1, 21)
	cfgAtk.Duration = 2 * time.Minute
	simAtk, err := scadasim.New(cfgAtk)
	if err != nil {
		t.Fatal(err)
	}
	trAtk, err := simAtk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simAtk.InjectAttack(trAtk, scadasim.AttackConfig{
		Kind: scadasim.AttackRecon, At: cfgAtk.Start.Add(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var alerts []ids.Alert
	sink := func(al ids.Alert) {
		mu.Lock()
		alerts = append(alerts, al)
		mu.Unlock()
	}
	e := New(Config{
		Workers: 4,
		Names:   core.NamesFromTopology(simAtk.Network()),
		Observer: func(int) core.FrameObserver {
			return ids.NewMonitor(baseline, sink)
		},
	})
	if err := e.Run(context.Background(), NewRecordSource(trAtk.Records, 0)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var rogue bool
	for _, al := range alerts {
		if al.Kind == ids.AlertNewEndpoint {
			rogue = true
		}
	}
	if !rogue {
		t.Fatalf("recon attack raised no new-endpoint alert; %d alerts total", len(alerts))
	}
}

func offlineAnalyzer(t testing.TB, sim *scadasim.Simulator, capture []byte) *core.Analyzer {
	t.Helper()
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	if err := a.ReadPCAP(bytes.NewReader(capture)); err != nil {
		t.Fatal(err)
	}
	return a
}
