package stream

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/scadasim"
	"uncharted/internal/topology"
)

// goldenSavedAt is the fixed Meta.SavedAt stamp: profile bytes must not
// depend on the wall clock.
var goldenSavedAt = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// TestIEC104GoldenEquivalence pins the IEC 104-only analysis output,
// byte for byte, across refactors: the drift-codec encoding of a
// deterministic simulated capture's final Partial must match the
// committed fixture at 1 and at 4 shards. The fixtures were generated
// before the multi-protocol core refactor, so a pass here proves the
// refactored analyzer produces byte-identical output for IEC 104-only
// analysis. Regenerate (only for a deliberate format change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/stream -run GoldenEquivalence
//
// Shard counts are pinned separately because the dialect-detection
// pinning moment (and with it StrictInvalid tallies) legitimately
// differs when an endpoint's traffic spans shards.
func TestIEC104GoldenEquivalence(t *testing.T) {
	sim, tr := simulate(t, 7, 3*time.Minute)
	capture := tracePCAP(t, tr)

	encode := func(p core.Partial) []byte {
		return drift.NewProfile("golden", "scadasim:y1/seed7/3m", p, goldenSavedAt).Encode()
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("%dshard", workers), func(t *testing.T) {
			path := filepath.Join("testdata", fmt.Sprintf("golden_iec104_%dshard.drift", workers))
			_, part := runEngine(t, sim, capture, workers)
			got := encode(part)

			if workers == 1 {
				// The offline single-analyzer path must agree with the
				// 1-shard engine exactly. MergePartials normalizes the
				// report ordering the same way the engine's merge does.
				norm := core.MergePartials([]core.Partial{offlinePartial(t, sim, capture)})
				if off := encode(norm); !bytes.Equal(off, got) {
					op, _ := drift.DecodeProfile(off)
					ep, _ := drift.DecodeProfile(got)
					diffPartials(t, op.Partial, ep.Partial)
					t.Errorf("offline analyzer encoding differs from 1-shard engine (%d vs %d bytes)", len(off), len(got))
				}
			}

			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			// Decode both sides for a debuggable diff before failing on
			// the byte mismatch.
			wp, werr := drift.DecodeProfile(want)
			gp, gerr := drift.DecodeProfile(got)
			if werr != nil || gerr != nil {
				t.Fatalf("profile bytes changed (%d -> %d bytes); decode: golden %v, fresh %v",
					len(want), len(got), werr, gerr)
			}
			diffPartials(t, wp.Partial, gp.Partial)
			t.Errorf("profile bytes changed (%d -> %d bytes): IEC 104-only output is no longer byte-identical", len(want), len(got))
		})
	}
}

// TestMixedGoldenProfile pins the multi-protocol analysis output the
// same way: a deterministic mixed capture (IEC 104 + C37.118 + Modbus)
// analyzed in auto-detect mode must encode byte-identically to the
// committed fixture, at 1 and at 4 shards. This is the multi-protocol
// analogue of the IEC 104 golden: it freezes the dialect stats, token
// alphabets, proto-tagged chains, stream verdicts and cross-dialect
// physical series. Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/stream -run MixedGoldenProfile
func TestMixedGoldenProfile(t *testing.T) {
	cfg := scadasim.DefaultConfig(topology.Y1, 7)
	cfg.Duration = 3 * time.Minute
	cfg.EnableModbus = true
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	capture := tracePCAP(t, tr)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("%dshard", workers), func(t *testing.T) {
			path := filepath.Join("testdata", fmt.Sprintf("golden_mixed_%dshard.drift", workers))
			src, err := NewPCAPSource(bytes.NewReader(capture))
			if err != nil {
				t.Fatal(err)
			}
			e := New(Config{
				Workers:   workers,
				Names:     core.NamesFromTopology(sim.Network()),
				Protocols: []string{"auto"},
			})
			if err := e.Run(context.Background(), src); err != nil {
				t.Fatal(err)
			}
			part := e.Final()
			if len(part.Dialects) < 2 {
				t.Fatalf("mixed capture decoded too few dialects: %+v", part.Dialects)
			}
			got := drift.NewProfile("golden", "scadasim:y1/seed7/3m/mixed", part, goldenSavedAt).Encode()

			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			wp, werr := drift.DecodeProfile(want)
			gp, gerr := drift.DecodeProfile(got)
			if werr != nil || gerr != nil {
				t.Fatalf("profile bytes changed (%d -> %d bytes); decode: golden %v, fresh %v",
					len(want), len(got), werr, gerr)
			}
			diffPartials(t, wp.Partial, gp.Partial)
			t.Errorf("profile bytes changed (%d -> %d bytes): mixed-protocol output drifted", len(want), len(got))
		})
	}
}

// diffPartials reports which Partial sections differ, field by field,
// so a golden failure names the drifted aggregate instead of just
// "bytes changed".
func diffPartials(t *testing.T, want, got core.Partial) {
	t.Helper()
	wv := reflect.ValueOf(want)
	gv := reflect.ValueOf(got)
	for i := 0; i < wv.NumField(); i++ {
		name := wv.Type().Field(i).Name
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("Partial.%s differs:\n golden: %+v\n  fresh: %+v", name, wv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
}
