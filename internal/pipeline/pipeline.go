// Package pipeline is the composable runtime that turns the repo's
// analysis capabilities into declared segment graphs: a JSON/JSONC
// config names pipelines as DAGs of registered segments — inputs
// (finished captures, growing captures, the in-process simulator, a
// remote-probe partial receiver), filters (per-station, per-ASDU-type,
// per-IP-pair, sampling, tee), analysis stages (the sharded core
// analyzer, the online IDS, the drift comparator, the historian
// recorder) and outputs (snapshot HTTP endpoints, JSON/JSONL/CSV
// export, a JSONL journal, alert webhooks) — and one process runs a
// whole fleet's worth of them side by side (cmd/pipelined).
//
// Segments compose behind channels of Msg values: a packets edge
// carries decoded packet batches, a profiles edge carries published
// analysis snapshots, an alerts edge carries IDS/drift alerts. Edges
// are bounded, sends block (lossless backpressure, with stall
// accounting per segment), and every segment gets its own
// pipeline/segment-labeled obs metric series. The hand-wired commands
// (profiler, iec104live) are thin presets over this runtime — see
// ProfilerPreset and LivePreset — and produce identical profiles to
// the graphs they construct.
package pipeline

import (
	"context"
	"net/http"
	"sort"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/stream"
)

// PortType names what flows over an edge. A segment declares one In
// and one Out type; the config validator rejects edges whose endpoint
// types disagree.
type PortType string

// Port types.
const (
	// PortNone marks a missing port: inputs have no In, terminal
	// segments have no Out.
	PortNone PortType = ""
	// PortPackets edges carry batches of decoded packets.
	PortPackets PortType = "packets"
	// PortProfiles edges carry published analysis snapshots.
	PortProfiles PortType = "profiles"
	// PortAlerts edges carry IDS and drift alerts.
	PortAlerts PortType = "alerts"
)

// Role groups segments in the catalog: where they sit in a graph.
type Role string

// Roles.
const (
	RoleInput    Role = "input"
	RoleFilter   Role = "filter"
	RoleAnalysis Role = "analysis"
	RoleOutput   Role = "output"
)

// Snapshot is one published analysis state riding a profiles edge.
type Snapshot struct {
	// Seq is the publisher's snapshot sequence number.
	Seq int
	// Final marks the last snapshot of a drained publisher: the exact
	// end-of-stream state.
	Final bool
	// Partial is the merged analyzer state behind the snapshot.
	Partial core.Partial
	// Profile is the derived rolling profile document.
	Profile *stream.Profile
}

// Msg is the value flowing over an edge. Exactly one field is set,
// matching the edge's port type.
type Msg struct {
	Pkts  []pcap.Packet
	Snap  *Snapshot
	Alert *ids.Alert
	// Src is a whole-capture source handoff riding a packets edge: an
	// input that owns a seekable finished capture hands the source
	// itself to its (single) consumer instead of decoding inline, so a
	// segment-aware consumer can ingest it with N parallel readers.
	// The receiver owns Src and must Close it.
	Src stream.Source
}

// packets reports how many packets ride this message (for metrics).
func (m Msg) packets() int { return len(m.Pkts) }

// Emit forwards a message to every downstream consumer. Sends block
// when a consumer's queue is full (lossless backpressure; the stall is
// counted against the emitting segment).
type Emit func(Msg)

// Segment is one running node of a pipeline graph. Run processes
// until in is closed (inputs receive a nil in and run until their
// source is exhausted or ctx is canceled), emitting downstream via
// emit, and returns the segment's terminal error. The runtime closes
// downstream edges when Run returns.
type Segment interface {
	Run(ctx context.Context, in <-chan Msg, emit Emit) error
}

// Env is the per-pipeline environment segments build against: the
// pipeline-labeled metric registry, the shared journal, a logger and
// the pipeline's HTTP mount table.
type Env struct {
	// Pipeline is the owning pipeline's name.
	Pipeline string
	// Registry is a pipeline-labeled view of the process registry;
	// never nil (a throwaway registry is supplied when none is given).
	Registry *obs.Registry
	// Journal is the shared process journal; may be nil (obs.Journal
	// methods are nil-safe).
	Journal *obs.Journal
	// Logf logs operator-facing lines; never nil.
	Logf func(format string, args ...any)

	handlers map[string]http.Handler
	hooks    map[string]any
}

// Handle registers an HTTP handler on the pipeline's mount table.
// Paths must begin with "/"; cmd/pipelined serves them under
// /pipelines/{pipeline}{path}. Registering a taken path overwrites it.
func (e *Env) Handle(path string, h http.Handler) {
	if e.handlers == nil {
		e.handlers = make(map[string]http.Handler)
	}
	e.handlers[path] = h
}

// Handlers returns the pipeline's mount table, sorted for determinism.
func (e *Env) Handlers() map[string]http.Handler { return e.handlers }

// BuildCtx is what a Spec.Build receives: the validated params, the
// pipeline environment and the segment's identity.
type BuildCtx struct {
	// Pipeline / ID locate the segment in the config.
	Pipeline string
	ID       string
	// Params holds the validated segment parameters.
	Params Params
	// Env is the owning pipeline's environment.
	Env *Env
	// Hook is the programmatic override installed for this segment via
	// Options.Hooks (presets use it to inject in-process observers and
	// alert sinks that have no config-file representation); nil
	// otherwise.
	Hook any
}

// handlerPaths returns the sorted mount paths (for /statusz).
func (e *Env) handlerPaths() []string {
	paths := make([]string, 0, len(e.handlers))
	for p := range e.handlers {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
