package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// maxPartialBytes bounds one posted probe partial, matching the
// control-room service's limit.
const maxPartialBytes = 64 << 20

func init() {
	Register(Spec{
		Kind: "pcap",
		Role: RoleInput,
		Out:  PortPackets,
		Doc:  "read finished captures (a file, or every *.pcap/*.pcapng in a directory, sorted)",
		Params: []ParamSpec{
			{Name: "path", Type: ParamString, Required: true, Doc: "capture file or directory"},
			{Name: "batch", Type: ParamInt, Default: 64, Doc: "packets per emitted message"},
			{Name: "speed", Type: ParamFloat, Default: 0.0, Doc: "replay pacing (60 = one captured minute per wall second; 0 = as fast as possible; single file only)"},
			{Name: "readers", Type: ParamInt, Default: 0, Doc: "parallel segment readers: hand the capture to the consuming analyzer for N-reader ingest (0 = decode inline; needs a single unpaced file and exactly one analyzer consumer)"},
		},
		Build: buildPCAPInput,
	})
	Register(Spec{
		Kind: "follow",
		Role: RoleInput,
		Out:  PortPackets,
		Doc:  "tail a growing classic-pcap capture (never EOF; stops on drain)",
		Params: []ParamSpec{
			{Name: "path", Type: ParamString, Required: true, Doc: "capture file being written"},
			{Name: "batch", Type: ParamInt, Default: 64, Doc: "packets per emitted message"},
			{Name: "poll", Type: ParamDuration, Default: 25 * time.Millisecond, Doc: "sleep at the write frontier"},
		},
		Build: buildFollowInput,
	})
	Register(Spec{
		Kind: "sim",
		Role: RoleInput,
		Out:  PortPackets,
		Doc:  "feed the in-process grid simulator, optionally with an injected mid-feed attack",
		Params: []ParamSpec{
			{Name: "year", Type: ParamInt, Default: 1, Doc: "capture campaign to simulate (1 or 2)"},
			{Name: "seed", Type: ParamInt, Default: 1, Doc: "simulation seed"},
			{Name: "duration", Type: ParamDuration, Default: 2 * time.Minute, Doc: "simulated feed length"},
			{Name: "speed", Type: ParamFloat, Default: 0.0, Doc: "replay pacing (60 = one simulated minute per wall second; 0 = as fast as possible)"},
			{Name: "attack", Type: ParamString, Default: "", Doc: "inject an attack mid-feed: recon, breaker or setpoint"},
			{Name: "modbus", Type: ParamBool, Default: false, Doc: "add a Modbus/TCP polling association to the simulated tap"},
			{Name: "fault_timeout", Type: ParamFloat, Default: 0.0, Doc: "probability a device response is dropped (lossy field link)"},
			{Name: "fault_shortread", Type: ParamFloat, Default: 0.0, Doc: "probability a frame is torn across two TCP segments"},
			{Name: "batch", Type: ParamInt, Default: 64, Doc: "packets per emitted message"},
			{Name: "poll", Type: ParamDuration, Default: 25 * time.Millisecond, Doc: "sleep while paced replay has nothing due"},
		},
		Build: buildSimInput,
	})
	Register(Spec{
		Kind: "probe",
		Role: RoleInput,
		Out:  PortProfiles,
		Doc:  "receive drift-codec partials POSTed by remote probes at /{id}/partial and emit the merged fleet snapshot",
		Params: []ParamSpec{
			{Name: "cluster_k", Type: ParamInt, Default: 0, Doc: "session clustering K for the merged profile (0 = off)"},
		},
		Build: buildProbeInput,
	})
}

// batcher groups packets into emitted messages. Emitted slices are
// handed to consumers (who share them read-only across a fan-out), so
// a fresh slice backs every message.
type batcher struct {
	emit Emit
	size int
	buf  []pcap.Packet
}

func (b *batcher) add(p pcap.Packet) {
	if b.buf == nil {
		b.buf = make([]pcap.Packet, 0, b.size)
	}
	b.buf = append(b.buf, p)
	if len(b.buf) >= b.size {
		b.flush()
	}
}

func (b *batcher) flush() {
	if len(b.buf) == 0 {
		return
	}
	b.emit(Msg{Pkts: b.buf})
	b.buf = nil
}

// PCAPInput streams one or more finished captures. With readers > 0 it
// does not decode at all: the single capture file is handed whole to
// the consuming analyzer (Msg.Src), whose engine ingests it with N
// parallel segment readers.
type PCAPInput struct {
	files   []string
	batch   int
	speed   float64
	readers int
}

func buildPCAPInput(bc BuildCtx) (Segment, error) {
	path := bc.Params.Str("path")
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	s := &PCAPInput{batch: bc.Params.Int("batch"), speed: bc.Params.Float("speed"), readers: bc.Params.Int("readers")}
	if s.batch < 1 {
		s.batch = 64
	}
	if s.readers > 0 && s.speed > 0 {
		return nil, fmt.Errorf("readers and speed are mutually exclusive: paced replay is inherently sequential")
	}
	if !fi.IsDir() {
		s.files = []string{path}
		return s, nil
	}
	if s.readers > 0 {
		return nil, fmt.Errorf("readers needs a single capture file, %s is a directory", path)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".pcap", ".pcapng":
			s.files = append(s.files, filepath.Join(path, e.Name()))
		}
	}
	if len(s.files) == 0 {
		return nil, fmt.Errorf("no *.pcap or *.pcapng files in %s", path)
	}
	if s.speed > 0 && len(s.files) > 1 {
		return nil, fmt.Errorf("speed pacing needs a single capture file, %s holds %d", path, len(s.files))
	}
	sort.Strings(s.files)
	return s, nil
}

// Handoff reports whether this input hands its capture to the consumer
// as a whole source instead of decoding inline; the runner checks the
// receiving side can take it.
func (s *PCAPInput) Handoff() bool { return s.readers > 0 }

// Run implements Segment.
func (s *PCAPInput) Run(ctx context.Context, _ <-chan Msg, emit Emit) error {
	if s.readers > 0 {
		src, err := stream.NewFileSource(s.files[0])
		if err != nil {
			return err
		}
		emit(Msg{Src: src})
		return nil
	}
	b := &batcher{emit: emit, size: s.batch}
	for _, path := range s.files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var src stream.Source
		if s.speed > 0 {
			src, err = stream.NewReplaySource(f, s.speed)
		} else {
			src, err = stream.NewPCAPSource(f)
		}
		if err != nil {
			f.Close()
			return err
		}
		if rs, ok := src.(stream.RawSource); ok {
			err = pumpRawSource(ctx, rs, b, 25*time.Millisecond)
		} else {
			err = pumpSource(ctx, src, b, 25*time.Millisecond)
		}
		f.Close()
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	b.flush()
	return nil
}

// pumpSource drives one source into the batcher until io.EOF or ctx
// cancellation; ErrNotReady flushes in-flight work and polls. A
// canceled ctx is a drain, not an error.
func pumpSource(ctx context.Context, src stream.Source, b *batcher, poll time.Duration) error {
	for {
		if ctx.Err() != nil {
			b.flush()
			return nil
		}
		pkt, err := src.Next()
		switch {
		case err == nil:
			b.add(pkt)
		case errors.Is(err, stream.ErrNotReady):
			b.flush()
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
		case errors.Is(err, io.EOF):
			b.flush()
			return nil
		default:
			b.flush()
			return err
		}
	}
}

// slabSize sets how many decoded record bytes share one backing
// allocation in pumpRawSource.
const slabSize = 256 << 10

// pumpRawSource drives a RawSource into the batcher with amortized
// allocations: each record is read into a reused scratch buffer, then
// copied onto a shared slab (a fresh slab roughly every 256 KiB, never
// reused) and decoded in place, so the emitted packets — whose layer
// slices alias the slab — stay valid for every fan-out consumer at one
// allocation per slab instead of one per packet. Undecodable records
// are skipped, matching PCAPSource.Next. A canceled ctx is a drain.
func pumpRawSource(ctx context.Context, src stream.RawSource, b *batcher, poll time.Duration) error {
	var scratch, slab []byte
	for {
		if ctx.Err() != nil {
			b.flush()
			return nil
		}
		data, ci, link, err := src.NextRaw(scratch)
		switch {
		case err == nil:
			scratch = data
			if len(slab)+len(data) > cap(slab) {
				n := slabSize
				if len(data) > n {
					n = len(data)
				}
				slab = make([]byte, 0, n)
			}
			off := len(slab)
			slab = append(slab, data...)
			pkt, derr := pcap.DecodePacket(link, ci, slab[off:len(slab):len(slab)])
			if derr == nil {
				b.add(pkt)
			}
		case errors.Is(err, stream.ErrNotReady):
			b.flush()
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
		case errors.Is(err, io.EOF):
			b.flush()
			return nil
		default:
			b.flush()
			return err
		}
	}
}

// FollowInput tails a growing capture.
type FollowInput struct {
	src   *stream.FollowSource
	batch int
	poll  time.Duration
}

func buildFollowInput(bc BuildCtx) (Segment, error) {
	src, err := stream.NewFollowSource(bc.Params.Str("path"))
	if err != nil {
		return nil, err
	}
	return &FollowInput{src: src, batch: bc.Params.Int("batch"), poll: bc.Params.Dur("poll")}, nil
}

// Run implements Segment: a followed file never ends, so the segment
// runs until the drain.
func (s *FollowInput) Run(ctx context.Context, _ <-chan Msg, emit Emit) error {
	defer s.src.Close()
	return pumpRawSource(ctx, s.src, &batcher{emit: emit, size: s.batch}, s.poll)
}

// SimInput feeds a synthesized grid capture, optionally with an
// Industroyer-style attack injected mid-feed.
type SimInput struct {
	trace   *scadasim.Trace
	network *topology.Network
	speed   float64
	batch   int
	poll    time.Duration
}

func buildSimInput(bc BuildCtx) (Segment, error) {
	year := topology.Y1
	if bc.Params.Int("year") == 2 {
		year = topology.Y2
	}
	cfg := scadasim.DefaultConfig(year, int64(bc.Params.Int("seed")))
	cfg.Duration = bc.Params.Dur("duration")
	cfg.EnableModbus = bc.Params.Bool("modbus")
	cfg.Faults.TimeoutProb = bc.Params.Float("fault_timeout")
	cfg.Faults.ShortReadProb = bc.Params.Float("fault_shortread")
	attack := bc.Params.Str("attack")
	if attack != "" {
		// Long cycle period: general interrogations would otherwise
		// legitimise the attacker's recon tokens.
		cfg.CyclePeriod = 100 * time.Minute
	}
	sim, err := scadasim.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run()
	if err != nil {
		return nil, err
	}
	s := &SimInput{
		trace:   tr,
		network: sim.Network(),
		speed:   bc.Params.Float("speed"),
		batch:   bc.Params.Int("batch"),
		poll:    bc.Params.Dur("poll"),
	}
	if attack != "" {
		ac := scadasim.AttackConfig{At: cfg.Start.Add(cfg.Duration / 2)}
		switch attack {
		case "recon":
			ac.Kind = scadasim.AttackRecon
		case "breaker":
			ac.Kind = scadasim.AttackBreakerTrip
		case "setpoint":
			ac.Kind = scadasim.AttackSetpointTamper
			ac.Attacker = s.network.ServerAddr("C1")
		default:
			return nil, fmt.Errorf("unknown attack %q (want recon, breaker or setpoint)", attack)
		}
		n, err := sim.InjectAttack(tr, ac)
		if err != nil {
			return nil, err
		}
		bc.Env.Logf("segment %s: injected %s attack: %d packets at +%s", bc.ID, ac.Kind, n, cfg.Duration/2)
	}
	return s, nil
}

// Trace exposes the generated records (presets write the -pcap
// cross-check capture from it).
func (s *SimInput) Trace() *scadasim.Trace { return s.trace }

// Network exposes the simulated topology.
func (s *SimInput) Network() *topology.Network { return s.network }

// Run implements Segment.
func (s *SimInput) Run(ctx context.Context, _ <-chan Msg, emit Emit) error {
	src := stream.NewRecordSource(s.trace.Records, s.speed)
	return pumpSource(ctx, src, &batcher{emit: emit, size: s.batch}, s.poll)
}

// ProbeInput is the remote-probe receiver: probes POST drift-codec
// profiles (the same wire format the control-room service accepts) to
// /{id}/partial, and every accepted post re-merges the fleet and
// emits one Snapshot downstream.
type ProbeInput struct {
	env      *Env
	id       string
	clusterK int

	mu      sync.Mutex
	byProbe map[string]core.Partial
	ver     int

	dirty chan struct{}
}

func buildProbeInput(bc BuildCtx) (Segment, error) {
	s := &ProbeInput{
		env:      bc.Env,
		id:       bc.ID,
		clusterK: bc.Params.Int("cluster_k"),
		byProbe:  make(map[string]core.Partial),
		dirty:    make(chan struct{}, 1),
	}
	bc.Env.Handle("/"+bc.ID+"/partial", http.HandlerFunc(s.handlePartial))
	return s, nil
}

func (s *ProbeInput) handlePartial(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a drift-codec profile", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxPartialBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxPartialBytes {
		http.Error(w, "partial too large", http.StatusRequestEntityTooLarge)
		return
	}
	prof, err := drift.DecodeProfile(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	probe := req.URL.Query().Get("probe")
	if probe == "" {
		probe = prof.Meta.Label
	}
	if probe == "" {
		http.Error(w, "probe label missing: set ?probe= or the profile's label", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.byProbe[probe] = prof.Partial
	s.ver++
	ver, probes := s.ver, len(s.byProbe)
	s.mu.Unlock()
	select {
	case s.dirty <- struct{}{}:
	default:
	}
	s.env.Journal.Log(time.Now(), obs.EventPartial, probe, map[string]any{
		"pipeline": s.env.Pipeline,
		"segment":  s.id,
		"packets":  prof.Partial.Packets,
		"probes":   probes,
		"version":  ver,
	})
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"probe\":%q,\"probes\":%d,\"version\":%d}\n", probe, probes, ver)
}

// snapshot merges the current probe set; MergePartials is commutative
// and associative, so arrival order never matters.
func (s *ProbeInput) snapshot() *Snapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.byProbe))
	for n := range s.byProbe {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]core.Partial, 0, len(names))
	for _, n := range names {
		parts = append(parts, s.byProbe[n])
	}
	ver := s.ver
	s.mu.Unlock()
	if len(parts) == 0 {
		return nil
	}
	merged := core.MergePartials(parts)
	prof := stream.BuildProfile(merged, ver, s.clusterK, 1202)
	prof.Workers = len(parts)
	return &Snapshot{Seq: ver, Partial: merged, Profile: prof}
}

// Run implements Segment: it emits one merged snapshot per accepted
// post until the drain, then a final merged state.
func (s *ProbeInput) Run(ctx context.Context, _ <-chan Msg, emit Emit) error {
	for {
		select {
		case <-ctx.Done():
			if sn := s.snapshot(); sn != nil {
				sn.Final = true
				emit(Msg{Snap: sn})
			}
			return nil
		case <-s.dirty:
			if sn := s.snapshot(); sn != nil {
				emit(Msg{Snap: sn})
			}
		}
	}
}
