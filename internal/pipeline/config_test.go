package pipeline

import (
	"strings"
	"testing"
)

// golden is a JSONC document exercising comments, trailing commas and
// every declaration feature: multiple pipelines, fan-out, params.
const golden = `// a comment before everything
{
  /* block comment */
  "pipelines": [
    {
      "name": "main",
      "segments": [
        { "id": "src", "segment": "sim", "params": { "duration": "10s", "seed": 3 } },
        { "id": "keep", "segment": "station", "from": ["src"], "params": { "stations": ["C1"] } },
        { "id": "an", "segment": "analyzer", "from": ["keep"], "params": { "workers": 2 } }, // trailing comma next
        { "id": "ids", "segment": "ids", "from": ["keep"], "params": { "train_year": 1 } },
        { "id": "alerts", "segment": "log", "from": ["ids"], },
      ],
    },
    {
      "name": "side",
      "segments": [
        { "id": "src", "segment": "pcap", "params": { "path": "x.pcap" } },
        { "id": "an", "segment": "analyzer", "from": ["src"] },
      ],
    },
  ],
}
`

func TestParseGolden(t *testing.T) {
	cfg, err := Parse([]byte(golden), "golden.jsonc")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Pipelines) != 2 {
		t.Fatalf("got %d pipelines, want 2", len(cfg.Pipelines))
	}
	main := cfg.Pipelines[0]
	if main.Name != "main" || len(main.Nodes) != 5 {
		t.Fatalf("pipeline[0] = %q with %d nodes, want main with 5", main.Name, len(main.Nodes))
	}
	wantKinds := []string{"sim", "station", "analyzer", "ids", "log"}
	for i, k := range wantKinds {
		if main.Nodes[i].Kind != k {
			t.Errorf("main node %d kind = %q, want %q", i, main.Nodes[i].Kind, k)
		}
	}
	// Fan-out: both an and ids consume keep.
	if got := main.Nodes[2].From[0]; got != "keep" {
		t.Errorf("an.from = %q, want keep", got)
	}
	if got := main.Nodes[3].From[0]; got != "keep" {
		t.Errorf("ids.from = %q, want keep", got)
	}
	if cfg.Pipelines[1].Name != "side" {
		t.Errorf("pipeline[1] = %q, want side", cfg.Pipelines[1].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want []string // substrings that must all appear in the error
	}{
		{
			name: "syntax error names the line",
			doc:  "{\n  \"pipelines\": [\n    }\n  ]\n}\n",
			want: []string{"bad.jsonc:3"},
		},
		{
			name: "unknown segment kind",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "nope" }
			]}]}`,
			want: []string{"bad.jsonc:2", `unknown segment kind "nope"`, "pipelined -segments"},
		},
		{
			name: "duplicate segment id",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "sim" },
				{ "id": "src", "segment": "sim" }
			]}]}`,
			want: []string{"bad.jsonc:3", "duplicate segment id"},
		},
		{
			name: "missing required param",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "pcap" }
			]}]}`,
			want: []string{"bad.jsonc:2", `"path"`, "required"},
		},
		{
			name: "wrong param type",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "sim", "params": { "seed": "not-a-number" } }
			]}]}`,
			want: []string{"bad.jsonc:2", "seed"},
		},
		{
			name: "dangling edge",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "sim" },
				{ "id": "an", "segment": "analyzer", "from": ["ghost"] }
			]}]}`,
			want: []string{"bad.jsonc:3", "dangling edge", `"ghost"`},
		},
		{
			name: "port type mismatch",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "sim" },
				{ "id": "out", "segment": "export", "from": ["src"], "params": { "path": "x.json" } }
			]}]}`,
			want: []string{"bad.jsonc:3", "port type mismatch", "packets", "profiles"},
		},
		{
			name: "input with from",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "a", "segment": "sim" },
				{ "id": "b", "segment": "sim", "from": ["a"] }
			]}]}`,
			want: []string{"bad.jsonc:3", "input segment"},
		},
		{
			name: "no input segment",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "an", "segment": "analyzer", "from": ["an2"] },
				{ "id": "an2", "segment": "analyzer", "from": ["an"] }
			]}]}`,
			want: []string{"no input segment", "cycle", "an -> an2 -> an"},
		},
		{
			name: "no pipelines",
			doc:  `{"pipelines": []}`,
			want: []string{"declares no pipelines"},
		},
		{
			name: "multiple errors reported together",
			doc: `{"pipelines": [{"name": "p", "segments": [
				{ "id": "src", "segment": "nope" },
				{ "id": "an", "segment": "analyzer", "from": ["ghost"] }
			]}]}`,
			want: []string{"unknown segment kind", "dangling edge"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc), "bad.jsonc")
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\n  missing %q", err, w)
				}
			}
		})
	}
}

func TestPresetGraphsValidate(t *testing.T) {
	cfg, _ := ProfilerGraph(ProfilerPreset{Path: "x.pcap", Workers: 4, Names: true})
	if err := cfg.Validate(); err != nil {
		t.Errorf("ProfilerGraph config invalid: %v", err)
	}
	cfg, _ = LiveGraph(LivePreset{Year: 1, Seed: 1, Workers: 2})
	if err := cfg.Validate(); err != nil {
		t.Errorf("LiveGraph config invalid: %v", err)
	}
}
