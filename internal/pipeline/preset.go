package pipeline

import (
	"encoding/json"
	"fmt"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/ids"
	"uncharted/internal/obs/trace"
)

// The presets turn the hand-wired commands into declared graphs: the
// profiler's streaming path and iec104live construct the same
// input→analyzer pipelines a config file would, so every capability
// those commands expose is reachable from cmd/pipelined too — and the
// equivalence tests pin the profiles to be identical either way.

// presetNode builds one NodeConfig with marshalled params. Params values
// must be JSON-encodable; durations are emitted as nanosecond numbers,
// which the loader accepts.
func presetNode(id, kind string, from []string, params map[string]any) NodeConfig {
	nc := NodeConfig{ID: id, Kind: kind, From: from}
	if len(params) > 0 {
		raw, err := json.Marshal(params)
		if err != nil {
			// Preset params are program literals; a marshal failure is a
			// programming error.
			panic(fmt.Sprintf("pipeline: preset params: %v", err))
		}
		nc.Params = raw
	}
	return nc
}

// ProfilerPreset parameterises the profiler command's streaming path.
type ProfilerPreset struct {
	// Path is the capture; Follow tails it instead of reading to EOF.
	Path   string
	Follow bool
	// Workers / SnapshotEvery / IdleTimeout / PointCap / Names map to
	// the analyzer params of the same name. SnapshotEvery only applies
	// when following (a finished capture publishes the final profile
	// only), matching the command.
	Workers       int
	SnapshotEvery time.Duration
	IdleTimeout   time.Duration
	PointCap      int
	Names         bool
	// Readers > 1 on a finished capture routes through the source
	// handoff: the input hands the file to the analyzer, whose engine
	// ingests it with N parallel segment readers. Ignored when
	// following (a growing file cannot be segment-planned).
	Readers int
	// HistorianDir / BaselinePath / IDSBaselinePath arm the analyzer's
	// optional stages.
	HistorianDir    string
	BaselinePath    string
	IDSBaselinePath string
	// Protocols is the analyzer's protocol param: comma-separated extra
	// dialects, or "auto" (empty = IEC 104 only).
	Protocols string
	// Trace / Observer / DriftAlerts are the programmatic attachments
	// (flight recorder, per-shard monitors, drift alert sink).
	Trace       *trace.Recorder
	Observer    func(shard int) core.FrameObserver
	DriftAlerts func(ids.Alert)
}

// ProfilerGraph returns the declared graph equivalent to the
// profiler's hand-wired streaming engine — pipeline "profiler",
// segments "src" → "an" — plus the hooks to install via Options.Hooks.
func ProfilerGraph(p ProfilerPreset) (*Config, map[string]any) {
	srcKind := "pcap"
	if p.Follow {
		srcKind = "follow"
	}
	snapshot := time.Duration(0)
	if p.Follow {
		snapshot = p.SnapshotEvery
	}
	srcParams := map[string]any{"path": p.Path}
	if !p.Follow && p.Readers > 1 {
		srcParams["readers"] = p.Readers
	}
	cfg := &Config{Pipelines: []PipelineConfig{{
		Name: "profiler",
		Nodes: []NodeConfig{
			presetNode("src", srcKind, nil, srcParams),
			presetNode("an", "analyzer", []string{"src"}, map[string]any{
				"workers":      p.Workers,
				"readers":      p.Readers,
				"snapshot":     snapshot,
				"idle_timeout": p.IdleTimeout,
				"cluster_k":    5,
				"cluster_seed": 1202,
				"point_cap":    p.PointCap,
				"names":        p.Names,
				"historian":    p.HistorianDir,
				"baseline":     p.BaselinePath,
				"ids_baseline": p.IDSBaselinePath,
				"protocol":     p.Protocols,
			}),
		},
	}}}
	hooks := map[string]any{
		"profiler/an": AnalyzerHooks{Trace: p.Trace, Observer: p.Observer, DriftAlerts: p.DriftAlerts},
	}
	return cfg, hooks
}

// LivePreset parameterises the iec104live command's graph.
type LivePreset struct {
	// Year / Seed / Duration / Speed / Attack map to the sim input's
	// params of the same name.
	Year     int
	Seed     int
	Duration time.Duration
	Speed    float64
	Attack   string
	// Workers / Readers / SnapshotEvery / HistorianDir / PointCap map
	// to the analyzer params. Readers only engages when a capture is
	// handed off whole, so it is inert on the live simulator feed but
	// keeps the command-line surface uniform.
	Workers       int
	Readers       int
	SnapshotEvery time.Duration
	HistorianDir  string
	PointCap      int
	// Trace / Observer attach the flight recorder and the per-shard
	// attack monitors.
	Trace    *trace.Recorder
	Observer func(shard int) core.FrameObserver
}

// LiveGraph returns the declared graph equivalent to iec104live's
// hand-wired simulator→engine wiring — pipeline "live", segments
// "sim" → "an" — plus the hooks to install via Options.Hooks.
func LiveGraph(p LivePreset) (*Config, map[string]any) {
	cfg := &Config{Pipelines: []PipelineConfig{{
		Name: "live",
		Nodes: []NodeConfig{
			presetNode("sim", "sim", nil, map[string]any{
				"year":     p.Year,
				"seed":     p.Seed,
				"duration": p.Duration,
				"speed":    p.Speed,
				"attack":   p.Attack,
			}),
			presetNode("an", "analyzer", []string{"sim"}, map[string]any{
				"workers":      p.Workers,
				"readers":      p.Readers,
				"snapshot":     p.SnapshotEvery,
				"cluster_k":    5,
				"cluster_seed": 1202,
				"point_cap":    p.PointCap,
				"historian":    p.HistorianDir,
			}),
		},
	}}}
	hooks := map[string]any{
		"live/an": AnalyzerHooks{Trace: p.Trace, Observer: p.Observer},
	}
	return cfg, hooks
}
