package pipeline

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"

	"uncharted/internal/obs"
)

// SegmentStatus is one node of the live graph document.
type SegmentStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"segment"`
	Role     string   `json:"role"`
	In       string   `json:"in,omitempty"`
	Out      string   `json:"out,omitempty"`
	From     []string `json:"from,omitempty"`
	State    string   `json:"state"`
	QueueLen int      `json:"queue_len"`
	QueueCap int      `json:"queue_cap"`
	MsgsIn   int64    `json:"msgs_in"`
	MsgsOut  int64    `json:"msgs_out"`
	PktsIn   int64    `json:"packets_in"`
	PktsOut  int64    `json:"packets_out"`
	Stalls   int64    `json:"stalls"`
	Error    string   `json:"error,omitempty"`
}

// PipelineStatus is one pipeline's live graph.
type PipelineStatus struct {
	Name      string          `json:"name"`
	Endpoints []string        `json:"endpoints,omitempty"`
	Segments  []SegmentStatus `json:"segments"`
}

func nodeStateName(s int32) string {
	switch s {
	case nodeRunning:
		return "running"
	case nodeDone:
		return "done"
	case nodeFailed:
		return "failed"
	}
	return "idle"
}

// Status assembles the live graph of every hosted pipeline.
func (r *Runner) Status() []PipelineStatus {
	out := make([]PipelineStatus, 0, len(r.pipes))
	for _, p := range r.pipes {
		out = append(out, r.pipeStatus(p))
	}
	return out
}

func (r *Runner) pipeStatus(p *pipe) PipelineStatus {
	st := PipelineStatus{Name: p.name, Endpoints: p.env.handlerPaths()}
	for _, n := range p.nodes {
		ss := SegmentStatus{
			ID:      n.id,
			Kind:    n.kind,
			Role:    string(n.spec.Role),
			In:      string(n.spec.In),
			Out:     string(n.spec.Out),
			From:    n.from,
			State:   nodeStateName(n.state.Load()),
			MsgsIn:  n.msgsIn.Value(),
			MsgsOut: n.msgsOut.Value(),
			PktsIn:  n.pktsIn.Value(),
			PktsOut: n.pktsOut.Value(),
			Stalls:  n.stalls.Value(),
		}
		if n.in != nil {
			ss.QueueLen, ss.QueueCap = len(n.in), cap(n.in)
		}
		if err := n.Err(); err != nil {
			ss.Error = err.Error()
		}
		st.Segments = append(st.Segments, ss)
	}
	return st
}

// NewStatusHandler serves a pipeline-status document: auto-refreshing
// HTML by default, ?format=json for machines, ?format=text for
// terminals.
func NewStatusHandler(get func() []PipelineStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format, ok := obs.PickFormat(w, req, "html", "json", "text")
		if !ok {
			return
		}
		sts := get()
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(sts)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, st := range sts {
				writeStatusText(w, st)
			}
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeStatusesHTML(w, sts)
		}
	})
}

func writeStatusText(w io.Writer, st PipelineStatus) {
	fmt.Fprintf(w, "pipeline %s\n", st.Name)
	for _, s := range st.Segments {
		from := ""
		if len(s.From) > 0 {
			from = " <- " + strings.Join(s.From, ",")
		}
		fmt.Fprintf(w, "  %-14s %-12s %-8s %-8s queue %d/%d  msgs %d/%d  pkts %d/%d  stalls %d%s\n",
			s.ID, s.Kind, s.Role, s.State, s.QueueLen, s.QueueCap,
			s.MsgsIn, s.MsgsOut, s.PktsIn, s.PktsOut, s.Stalls, from)
		if s.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", s.Error)
		}
	}
}

func writeStatusesHTML(w io.Writer, sts []PipelineStatus) {
	fmt.Fprint(w, `<!DOCTYPE html>
<html><head><meta http-equiv="refresh" content="2"><title>uncharted pipelines</title>
<style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0 0 1.5em}
td,th{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}
td:first-child,th:first-child,td.l,th.l{text-align:left}
.failed{color:#b00;font-weight:bold}
.done{color:#060}
</style></head><body>
<h2>uncharted pipeline runtime</h2>
`)
	for _, st := range sts {
		fmt.Fprintf(w, "<h3>pipeline %s</h3>\n", html.EscapeString(st.Name))
		if len(st.Endpoints) > 0 {
			fmt.Fprint(w, "<p>")
			for i, ep := range st.Endpoints {
				if i > 0 {
					fmt.Fprint(w, " · ")
				}
				e := html.EscapeString(ep)
				fmt.Fprintf(w, `<a href="/pipelines/%s%s">%s</a>`, html.EscapeString(st.Name), e, e)
			}
			fmt.Fprint(w, "</p>\n")
		}
		fmt.Fprint(w, "<table><tr><th>segment</th><th>kind</th><th>role</th><th>state</th><th>from</th><th>queue</th><th>msgs in/out</th><th>pkts in/out</th><th>stalls</th></tr>\n")
		for _, s := range st.Segments {
			cls := ""
			if s.State == "failed" || s.State == "done" {
				cls = " " + s.State
			}
			fmt.Fprintf(w, `<tr><td>%s</td><td class="l">%s</td><td class="l">%s</td><td class="l%s">%s</td><td class="l">%s</td><td>%d/%d</td><td>%d/%d</td><td>%d/%d</td><td>%d</td></tr>`+"\n",
				html.EscapeString(s.ID), html.EscapeString(s.Kind), html.EscapeString(s.Role),
				cls, html.EscapeString(s.State), html.EscapeString(strings.Join(s.From, ", ")),
				s.QueueLen, s.QueueCap, s.MsgsIn, s.MsgsOut, s.PktsIn, s.PktsOut, s.Stalls)
			if s.Error != "" {
				fmt.Fprintf(w, `<tr><td></td><td colspan="8" class="l failed">%s</td></tr>`+"\n", html.EscapeString(s.Error))
			}
		}
		fmt.Fprint(w, "</table>\n")
	}
	fmt.Fprint(w, "</body></html>\n")
}
