package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"uncharted/internal/obs"
)

// Runner metric names, all labeled {pipeline, segment}.
const (
	// MetricMsgs counts messages, labeled dir=in|out.
	MetricMsgs = "uncharted_pipeline_msgs_total"
	// MetricPackets counts packets riding those messages, same labels.
	MetricPackets = "uncharted_pipeline_packets_total"
	// MetricStalls counts blocked sends (a downstream queue was full).
	MetricStalls = "uncharted_pipeline_stalls_total"
	// MetricStallSeconds accumulates time spent blocked on full queues.
	MetricStallSeconds = "uncharted_pipeline_stall_seconds"
	// MetricQueueDepth gauges a segment's input queue occupancy.
	MetricQueueDepth = "uncharted_pipeline_queue_depth"
)

// Options parameterises a Runner.
type Options struct {
	// Registry / Journal instrument every pipeline; both optional.
	Registry *obs.Registry
	Journal  *obs.Journal
	// Logf receives operator-facing lines (default log.Printf).
	Logf func(format string, args ...any)
	// QueueDepth is the per-edge buffer in messages (default 64).
	QueueDepth int
	// Hooks installs programmatic overrides keyed "pipeline/segment";
	// the matching BuildCtx.Hook receives the value. Presets use this
	// for in-process observers and alert sinks that no config file can
	// express.
	Hooks map[string]any
}

// node states, published for /statusz.
const (
	nodeIdle int32 = iota
	nodeRunning
	nodeDone
	nodeFailed
)

type node struct {
	id   string
	kind string
	spec Spec
	seg  Segment
	from []string

	in        chan Msg
	producers atomic.Int32
	consumers []*node

	state atomic.Int32
	errMu sync.Mutex
	err   error

	msgsIn, msgsOut *obs.Counter
	pktsIn, pktsOut *obs.Counter
	stalls          *obs.Counter
	stallSecs       *obs.Gauge
	queueDepth      *obs.Gauge
}

func (n *node) setErr(err error) {
	n.errMu.Lock()
	n.err = err
	n.errMu.Unlock()
}

func (n *node) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.err
}

type pipe struct {
	name  string
	env   *Env
	nodes []*node
	byID  map[string]*node
}

// Runner hosts every pipeline of a validated config in one process:
// built segments, wired edges, shared metrics. Create with NewRunner,
// drive with Run.
type Runner struct {
	opts  Options
	pipes []*pipe
}

// NewRunner validates cfg, builds every segment (files open, stores
// allocate — failures abort construction) and wires the edges.
func NewRunner(cfg *Config, opts Options) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	r := &Runner{opts: opts}
	for pi := range cfg.Pipelines {
		pc := &cfg.Pipelines[pi]
		env := &Env{
			Pipeline: pc.Name,
			Registry: reg.With("pipeline", pc.Name),
			Journal:  opts.Journal,
			Logf: func(format string, args ...any) {
				opts.Logf("["+pc.Name+"] "+format, args...)
			},
			hooks: opts.Hooks,
		}
		p := &pipe{name: pc.Name, env: env, byID: make(map[string]*node, len(pc.Nodes))}
		for ni := range pc.Nodes {
			nc := &pc.Nodes[ni]
			spec, _ := Lookup(nc.Kind)
			params, err := parseParams(spec.Params, nc.Params)
			if err != nil {
				// Unreachable after Validate; belt and braces.
				return nil, fmt.Errorf("pipeline %s segment %s: %w", pc.Name, nc.ID, err)
			}
			seg, err := spec.Build(BuildCtx{
				Pipeline: pc.Name,
				ID:       nc.ID,
				Params:   params,
				Env:      env,
				Hook:     opts.Hooks[pc.Name+"/"+nc.ID],
			})
			if err != nil {
				return nil, fmt.Errorf("pipeline %s segment %s (%s): %w", pc.Name, nc.ID, nc.Kind, err)
			}
			sreg := env.Registry.With("segment", nc.ID)
			n := &node{
				id:         nc.ID,
				kind:       nc.Kind,
				spec:       spec,
				seg:        seg,
				from:       nc.From,
				msgsIn:     sreg.Counter(MetricMsgs, "dir", "in"),
				msgsOut:    sreg.Counter(MetricMsgs, "dir", "out"),
				pktsIn:     sreg.Counter(MetricPackets, "dir", "in"),
				pktsOut:    sreg.Counter(MetricPackets, "dir", "out"),
				stalls:     sreg.Counter(MetricStalls),
				stallSecs:  sreg.Gauge(MetricStallSeconds),
				queueDepth: sreg.Gauge(MetricQueueDepth),
			}
			if spec.In != PortNone {
				n.in = make(chan Msg, opts.QueueDepth)
			}
			p.nodes = append(p.nodes, n)
			p.byID[nc.ID] = n
		}
		// Wire edges: each consumer registers on its producers.
		for _, n := range p.nodes {
			for _, from := range n.from {
				up := p.byID[from]
				up.consumers = append(up.consumers, n)
				n.producers.Add(1)
			}
		}
		// A source handoff moves ownership of one capture, so it cannot
		// be broadcast, and the receiver must know how to run it.
		for _, n := range p.nodes {
			h, ok := n.seg.(interface{ Handoff() bool })
			if !ok || !h.Handoff() {
				continue
			}
			if len(n.consumers) != 1 {
				return nil, fmt.Errorf("pipeline %s segment %s: a source handoff (readers > 0) needs exactly one consumer, has %d",
					pc.Name, n.id, len(n.consumers))
			}
			if _, ok := n.consumers[0].seg.(interface{ AcceptsHandoff() }); !ok {
				return nil, fmt.Errorf("pipeline %s segment %s: consumer %s (%s) cannot take a source handoff; wire readers > 0 into an analyzer",
					pc.Name, n.id, n.consumers[0].id, n.consumers[0].kind)
			}
		}
		r.pipes = append(r.pipes, p)
	}
	return r, nil
}

// Run drives every pipeline concurrently until all inputs exhaust and
// the graphs drain, or ctx is canceled (inputs stop, the drain still
// completes). The returned error joins every segment failure, labeled
// with its pipeline and id.
func (r *Runner) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, p := range r.pipes {
		for _, n := range p.nodes {
			wg.Add(1)
			go func(p *pipe, n *node) {
				defer wg.Done()
				r.runNode(ctx, p, n)
			}(p, n)
		}
	}
	wg.Wait()

	var errs []error
	for _, p := range r.pipes {
		for _, n := range p.nodes {
			if err := n.Err(); err != nil {
				errs = append(errs, fmt.Errorf("pipeline %s segment %s: %w", p.name, n.id, err))
			}
		}
	}
	return errors.Join(errs...)
}

// runNode wraps one segment's Run with metrics, edge close
// propagation and failure drain.
func (r *Runner) runNode(ctx context.Context, p *pipe, n *node) {
	n.state.Store(nodeRunning)
	in := r.meterIn(n)
	err := n.seg.Run(ctx, in, r.emitFor(n))
	if err != nil {
		n.setErr(err)
		n.state.Store(nodeFailed)
		p.env.Logf("segment %s (%s) failed: %v", n.id, n.kind, err)
	} else {
		n.state.Store(nodeDone)
	}
	// A segment that bailed early must keep draining its queue, or its
	// producers would block forever on a full edge.
	if in != nil {
		go func() {
			for range in {
			}
		}()
	}
	// Release the downstream edges: the last producer to finish closes
	// the consumer's queue, which is its EOF.
	for _, c := range n.consumers {
		if c.producers.Add(-1) == 0 {
			close(c.in)
		}
	}
}

// meterIn wraps a node's input queue with in-side accounting.
func (r *Runner) meterIn(n *node) <-chan Msg {
	if n.in == nil {
		return nil
	}
	metered := make(chan Msg)
	go func() {
		defer close(metered)
		for m := range n.in {
			n.msgsIn.Inc()
			n.pktsIn.Add(int64(m.packets()))
			n.queueDepth.Set(float64(len(n.in)))
			metered <- m
		}
	}()
	return metered
}

// emitFor builds a node's Emit: broadcast to every consumer, blocking
// on full queues with stall accounting. Terminal nodes get a no-op.
func (r *Runner) emitFor(n *node) Emit {
	if len(n.consumers) == 0 {
		return func(Msg) {}
	}
	return func(m Msg) {
		n.msgsOut.Inc()
		n.pktsOut.Add(int64(m.packets()))
		for _, c := range n.consumers {
			select {
			case c.in <- m:
			default:
				// Queue full: a real backpressure stall begins here.
				n.stalls.Inc()
				start := time.Now()
				c.in <- m
				n.stallSecs.Add(time.Since(start).Seconds())
			}
		}
	}
}

// Segment returns a built segment by pipeline name and id, or nil.
// Presets use it to reach concrete segment types (engine access, alert
// sinks) after construction.
func (r *Runner) Segment(pipeline, id string) Segment {
	for _, p := range r.pipes {
		if p.name == pipeline {
			if n := p.byID[id]; n != nil {
				return n.seg
			}
		}
	}
	return nil
}

// Pipelines returns the hosted pipeline names in config order.
func (r *Runner) Pipelines() []string {
	out := make([]string, len(r.pipes))
	for i, p := range r.pipes {
		out[i] = p.name
	}
	return out
}

// Endpoints assembles the full HTTP surface: every segment-registered
// handler under /pipelines/{pipeline}{path}, one
// /pipelines/{pipeline}/statusz per pipeline, and a combined /statusz
// showing the live graph of every pipeline.
func (r *Runner) Endpoints() map[string]http.Handler {
	eps := map[string]http.Handler{
		"/statusz": NewStatusHandler(r.Status),
	}
	for _, p := range r.pipes {
		p := p
		for path, h := range p.env.Handlers() {
			eps["/pipelines/"+p.name+path] = h
		}
		eps["/pipelines/"+p.name+"/statusz"] = NewStatusHandler(func() []PipelineStatus {
			return []PipelineStatus{r.pipeStatus(p)}
		})
	}
	return eps
}
