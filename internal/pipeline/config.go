package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// NodeConfig declares one segment instance in a pipeline graph.
type NodeConfig struct {
	// ID names the node inside its pipeline; edges reference it.
	ID string `json:"id"`
	// Kind is the registered segment kind.
	Kind string `json:"segment"`
	// From lists the upstream node IDs feeding this node. Empty for
	// inputs; every consumer of a node shares its output (implicit
	// fan-out/tee).
	From []string `json:"from,omitempty"`
	// Params is the segment's parameter object, validated against the
	// kind's declared schema.
	Params json.RawMessage `json:"params,omitempty"`
}

// PipelineConfig declares one named pipeline: a DAG of segments.
type PipelineConfig struct {
	// Name routes the pipeline's HTTP surface (/pipelines/{name}/...)
	// and labels its metrics. Must be a clean path element.
	Name string `json:"name"`
	// Nodes is the segment list. Declaration order is free: edges may
	// reference nodes declared later.
	Nodes []NodeConfig `json:"segments"`
}

// Config is the top-level document: every pipeline one process runs.
type Config struct {
	Pipelines []PipelineConfig `json:"pipelines"`
}

// ConfigError is one validation failure, locating the offending spot
// in the config file. Line is 0 when the error is not attributable to
// a single line (e.g. a cycle).
type ConfigError struct {
	File  string
	Line  int
	Where string
	Msg   string
}

func (e *ConfigError) Error() string {
	var b strings.Builder
	if e.File != "" {
		b.WriteString(e.File)
		if e.Line > 0 {
			fmt.Fprintf(&b, ":%d", e.Line)
		}
		b.WriteString(": ")
	}
	if e.Where != "" {
		b.WriteString(e.Where)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// Load reads, parses and validates a pipeline config file. JSONC is
// accepted: // and /* */ comments plus trailing commas are stripped
// before decoding. All validation failures are reported together.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data, path)
}

// Parse decodes and validates config bytes; file names the source in
// errors.
func Parse(data []byte, file string) (*Config, error) {
	clean := stripJSONC(data)
	var cfg Config
	if err := json.Unmarshal(clean, &cfg); err != nil {
		line := 0
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.As(err, &syn):
			line = lineAt(clean, syn.Offset)
		case errors.As(err, &typ):
			line = lineAt(clean, typ.Offset)
		}
		return nil, &ConfigError{File: file, Line: line, Msg: err.Error()}
	}
	if err := cfg.validate(file, nodeOffsets(clean)); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks a programmatically built config (presets, tests).
func (c *Config) Validate() error { return c.validate("", nil) }

// validate runs every graph check and joins all failures. offsets,
// when present, locates each node's declaration line ([pipeline
// index][node index], from nodeOffsets).
func (c *Config) validate(file string, offsets [][]int) error {
	var errs []error
	fail := func(pi, ni int, where, msg string) {
		line := 0
		if offsets != nil && pi < len(offsets) && ni >= 0 && ni < len(offsets[pi]) {
			line = offsets[pi][ni]
		}
		errs = append(errs, &ConfigError{File: file, Line: line, Where: where, Msg: msg})
	}

	if len(c.Pipelines) == 0 {
		errs = append(errs, &ConfigError{File: file, Msg: "config declares no pipelines"})
	}
	seenPipes := map[string]bool{}
	for pi := range c.Pipelines {
		p := &c.Pipelines[pi]
		pwhere := fmt.Sprintf("pipeline %q", p.Name)
		if p.Name == "" {
			pwhere = fmt.Sprintf("pipelines[%d]", pi)
			fail(pi, -1, pwhere, "pipeline has no name")
		} else if !cleanName(p.Name) {
			fail(pi, -1, pwhere, "name must be letters, digits, '-' or '_'")
		}
		if seenPipes[p.Name] {
			fail(pi, -1, pwhere, "duplicate pipeline name")
		}
		seenPipes[p.Name] = true
		if len(p.Nodes) == 0 {
			fail(pi, -1, pwhere, "pipeline has no segments")
			continue
		}

		byID := map[string]*NodeConfig{}
		for ni := range p.Nodes {
			n := &p.Nodes[ni]
			where := fmt.Sprintf("%s segment %q", pwhere, n.ID)
			if n.ID == "" {
				where = fmt.Sprintf("%s segments[%d]", pwhere, ni)
				fail(pi, ni, where, "segment has no id")
				continue
			}
			if !cleanName(n.ID) {
				fail(pi, ni, where, "id must be letters, digits, '-' or '_'")
			}
			if _, dup := byID[n.ID]; dup {
				fail(pi, ni, where, "duplicate segment id")
				continue
			}
			byID[n.ID] = n
		}

		hasInput := false
		for ni := range p.Nodes {
			n := &p.Nodes[ni]
			where := fmt.Sprintf("%s segment %q", pwhere, n.ID)
			spec, ok := Lookup(n.Kind)
			if !ok {
				fail(pi, ni, where, fmt.Sprintf("unknown segment kind %q (run `pipelined -segments` for the catalog)", n.Kind))
				continue
			}
			if _, err := parseParams(spec.Params, n.Params); err != nil {
				fail(pi, ni, where, err.Error())
			}
			if spec.In == PortNone {
				hasInput = true
				if len(n.From) > 0 {
					fail(pi, ni, where, fmt.Sprintf("%q is an input segment and cannot have \"from\"", n.Kind))
				}
				continue
			}
			if len(n.From) == 0 {
				fail(pi, ni, where, fmt.Sprintf("%q consumes %s but has no \"from\"", n.Kind, spec.In))
				continue
			}
			for _, from := range n.From {
				up, ok := byID[from]
				if !ok {
					fail(pi, ni, where, fmt.Sprintf("dangling edge: \"from\" references unknown segment %q", from))
					continue
				}
				if up == n {
					// Reported by the cycle check below with a clearer message.
					continue
				}
				upSpec, ok := Lookup(up.Kind)
				if !ok {
					continue // already reported on the upstream node
				}
				if upSpec.Out == PortNone {
					fail(pi, ni, where, fmt.Sprintf("segment %q (%s) is terminal and produces no output", from, up.Kind))
					continue
				}
				if upSpec.Out != spec.In {
					fail(pi, ni, where, fmt.Sprintf("port type mismatch: %q (%s) emits %s but %q consumes %s",
						from, up.Kind, upSpec.Out, n.Kind, spec.In))
				}
			}
		}
		if !hasInput && len(byID) > 0 {
			fail(pi, -1, pwhere, "pipeline has no input segment")
		}

		for _, cyc := range findCycles(p.Nodes) {
			fail(pi, -1, pwhere, "cycle: "+cyc)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}

// findCycles reports each cycle in the edge set once, rendered as
// "a -> b -> a".
func findCycles(nodes []NodeConfig) []string {
	idx := map[string]int{}
	for i := range nodes {
		if nodes[i].ID != "" {
			idx[nodes[i].ID] = i
		}
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, len(nodes))
	var stack []string
	var cycles []string
	var visit func(i int)
	visit = func(i int) {
		state[i] = inStack
		stack = append(stack, nodes[i].ID)
		for _, from := range nodes[i].From {
			j, ok := idx[from]
			if !ok {
				continue
			}
			switch state[j] {
			case inStack:
				// Render the cycle from its first occurrence on the stack.
				start := 0
				for k, id := range stack {
					if id == from {
						start = k
						break
					}
				}
				cycles = append(cycles, strings.Join(append(append([]string{}, stack[start:]...), from), " -> "))
			case unvisited:
				visit(j)
			}
		}
		stack = stack[:len(stack)-1]
		state[i] = done
	}
	for i := range nodes {
		if state[i] == unvisited {
			visit(i)
		}
	}
	return cycles
}

func cleanName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return s != ""
}

// stripJSONC blanks // and /* */ comments (newlines preserved, so
// byte offsets keep mapping to the original lines) and removes
// trailing commas before ] or }.
func stripJSONC(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	const (
		code = iota
		inString
		lineComment
		blockComment
	)
	state := code
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch state {
		case code:
			switch {
			case c == '"':
				state = inString
			case c == '/' && i+1 < len(out) && out[i+1] == '/':
				state = lineComment
				out[i] = ' '
			case c == '/' && i+1 < len(out) && out[i+1] == '*':
				state = blockComment
				out[i] = ' '
			}
		case inString:
			if c == '\\' {
				i++
			} else if c == '"' {
				state = code
			}
		case lineComment:
			if c == '\n' {
				state = code
			} else {
				out[i] = ' '
			}
		case blockComment:
			if c == '*' && i+1 < len(out) && out[i+1] == '/' {
				out[i], out[i+1] = ' ', ' '
				i++
				state = code
			} else if c != '\n' {
				out[i] = ' '
			}
		}
	}
	// Trailing commas: blank a comma whose next non-space byte closes a
	// container.
	state = code
	for i := 0; i < len(out); i++ {
		c := out[i]
		if state == inString {
			if c == '\\' {
				i++
			} else if c == '"' {
				state = code
			}
			continue
		}
		if c == '"' {
			state = inString
			continue
		}
		if c != ',' {
			continue
		}
		for j := i + 1; j < len(out); j++ {
			n := out[j]
			if n == ' ' || n == '\t' || n == '\n' || n == '\r' {
				continue
			}
			if n == ']' || n == '}' {
				out[i] = ' '
			}
			break
		}
	}
	return out
}

// lineAt converts a byte offset to a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

// nodeOffsets walks the JSON token stream and records, for each
// pipeline in document order, the line each of its segment objects
// starts on. It mirrors the shape json.Unmarshal decodes, so indexes
// line up with Config.Pipelines[i].Nodes[j].
func nodeOffsets(data []byte) [][]int {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out [][]int

	next := func() (json.Token, bool) {
		t, err := dec.Token()
		if err != nil {
			return nil, false
		}
		return t, true
	}
	var skip func() bool
	skip = func() bool {
		t, ok := next()
		if !ok {
			return false
		}
		if d, isDelim := t.(json.Delim); isDelim && (d == '{' || d == '[') {
			for dec.More() {
				if !skip() {
					return false
				}
			}
			_, ok = next() // closing delim
			return ok
		}
		return true
	}

	// Top-level object.
	if t, ok := next(); !ok {
		return nil
	} else if d, isDelim := t.(json.Delim); !isDelim || d != '{' {
		return nil
	}
	for dec.More() {
		key, ok := next()
		if !ok {
			return out
		}
		if key != "pipelines" {
			if !skip() {
				return out
			}
			continue
		}
		// pipelines: [ {...}, ... ]
		if t, ok := next(); !ok {
			return out
		} else if d, isDelim := t.(json.Delim); !isDelim || d != '[' {
			continue
		}
		for dec.More() {
			// One pipeline object.
			if t, ok := next(); !ok {
				return out
			} else if d, isDelim := t.(json.Delim); !isDelim || d != '{' {
				if _, isDelim := t.(json.Delim); isDelim {
					skipRest(dec)
				}
				continue
			}
			var lines []int
			for dec.More() {
				pkey, ok := next()
				if !ok {
					return out
				}
				if pkey != "segments" {
					if !skip() {
						return out
					}
					continue
				}
				if t, ok := next(); !ok {
					return out
				} else if d, isDelim := t.(json.Delim); !isDelim || d != '[' {
					continue
				}
				for dec.More() {
					// InputOffset points just past the previous token
					// (the '[' or the prior element); the element itself
					// starts at the next non-separator byte.
					lines = append(lines, lineAt(data, elemStart(data, dec.InputOffset())))
					if !skip() {
						return out
					}
				}
				next() // ]
			}
			next() // }
			out = append(out, lines)
		}
		next() // ]
	}
	return out
}

// elemStart advances past whitespace and the element separator to the
// first byte of the next array element.
func elemStart(data []byte, off int64) int64 {
	for off < int64(len(data)) {
		switch data[off] {
		case ' ', '\t', '\n', '\r', ',':
			off++
		default:
			return off
		}
	}
	return off
}

// skipRest drains the decoder after an unexpected delimiter so the
// walk can continue; malformed documents already failed Unmarshal.
func skipRest(dec *json.Decoder) {
	for {
		if _, err := dec.Token(); err != nil {
			return
		}
	}
}
