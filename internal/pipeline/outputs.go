package pipeline

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/stream"
)

func init() {
	Register(Spec{
		Kind: "snapshot_http",
		Role: RoleOutput,
		In:   PortProfiles,
		Doc:  "serve the latest snapshot's profile over HTTP (JSON, ?format=text for the operator summary)",
		Params: []ParamSpec{
			{Name: "path", Type: ParamString, Default: "", Doc: "mount path under the pipeline (default /{id})"},
		},
		Build: buildSnapshotHTTP,
	})
	Register(Spec{
		Kind: "export",
		Role: RoleOutput,
		In:   PortProfiles,
		Doc:  "write profiles to a file: json (final profile), jsonl (one profile per snapshot) or csv (one summary row per snapshot)",
		Params: []ParamSpec{
			{Name: "path", Type: ParamString, Required: true, Doc: "output file"},
			{Name: "format", Type: ParamString, Default: "json", Doc: "json, jsonl or csv"},
		},
		Build: buildExport,
	})
	Register(Spec{
		Kind: "journal",
		Role: RoleOutput,
		In:   PortProfiles,
		Doc:  "append one JSONL snapshot event per published profile to a file",
		Params: []ParamSpec{
			{Name: "path", Type: ParamString, Required: true, Doc: "JSONL output file"},
		},
		Build: buildJournalOutput,
	})
	Register(Spec{
		Kind: "webhook",
		Role: RoleOutput,
		In:   PortAlerts,
		Doc:  "POST one JSON document per alert to an HTTP endpoint (delivery failures are logged, not fatal)",
		Params: []ParamSpec{
			{Name: "url", Type: ParamString, Required: true, Doc: "webhook endpoint"},
			{Name: "timeout", Type: ParamDuration, Default: 5 * time.Second, Doc: "per-delivery timeout"},
		},
		Build: buildWebhook,
	})
	Register(Spec{
		Kind:  "log",
		Role:  RoleOutput,
		In:    PortAlerts,
		Doc:   "log every alert through the pipeline's logger",
		Build: buildLogOutput,
	})
}

// SnapshotHTTPOutput publishes the latest profile at a mount path.
type SnapshotHTTPOutput struct {
	prof atomic.Pointer[stream.Profile]
}

func buildSnapshotHTTP(bc BuildCtx) (Segment, error) {
	s := &SnapshotHTTPOutput{}
	path := bc.Params.Str("path")
	if path == "" {
		path = "/" + bc.ID
	}
	if path[0] != '/' {
		path = "/" + path
	}
	bc.Env.Handle(path, stream.NewProfileHandler(s.prof.Load))
	return s, nil
}

// Run implements Segment.
func (s *SnapshotHTTPOutput) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	for m := range in {
		if m.Snap != nil && m.Snap.Profile != nil {
			s.prof.Store(m.Snap.Profile)
		}
	}
	return nil
}

// ExportOutput writes profiles to a file in one of three formats.
type ExportOutput struct {
	path   string
	format string
}

func buildExport(bc BuildCtx) (Segment, error) {
	format := bc.Params.Str("format")
	switch format {
	case "json", "jsonl", "csv":
	default:
		return nil, fmt.Errorf("unknown format %q (want json, jsonl or csv)", format)
	}
	// Create eagerly so an unwritable path fails the build, not the run.
	f, err := os.Create(bc.Params.Str("path"))
	if err != nil {
		return nil, err
	}
	f.Close()
	return &ExportOutput{path: bc.Params.Str("path"), format: format}, nil
}

// Run implements Segment.
func (s *ExportOutput) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	var last *stream.Profile
	var cw *csv.Writer
	if s.format == "csv" {
		cw = csv.NewWriter(f)
		if err := cw.Write([]string{"seq", "last", "packets", "iec_packets", "flows", "asdus", "parse_errors", "seq_anomalies"}); err != nil {
			f.Close()
			return err
		}
	}
	for m := range in {
		sn := m.Snap
		if sn == nil || sn.Profile == nil {
			continue
		}
		switch s.format {
		case "jsonl":
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(sn.Profile); err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(buf.Bytes()); err != nil {
				f.Close()
				return err
			}
		case "csv":
			p := sn.Partial
			if err := cw.Write([]string{
				strconv.Itoa(sn.Seq),
				p.Last.UTC().Format(time.RFC3339Nano),
				strconv.Itoa(p.Packets),
				strconv.Itoa(p.IECPackets),
				strconv.Itoa(p.Flows.Total()),
				strconv.Itoa(p.TotalASDUs),
				strconv.Itoa(p.ParseErrors),
				strconv.Itoa(p.SeqAnomalies),
			}); err != nil {
				f.Close()
				return err
			}
		default:
			last = sn.Profile
		}
	}
	if s.format == "csv" {
		cw.Flush()
		if err := cw.Error(); err != nil {
			f.Close()
			return err
		}
	}
	if s.format == "json" && last != nil {
		if err := last.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// JournalOutput appends one obs snapshot event per published profile.
type JournalOutput struct {
	path string
}

func buildJournalOutput(bc BuildCtx) (Segment, error) {
	f, err := os.Create(bc.Params.Str("path"))
	if err != nil {
		return nil, err
	}
	f.Close()
	return &JournalOutput{path: bc.Params.Str("path")}, nil
}

// Run implements Segment.
func (s *JournalOutput) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	j := obs.NewJournal(f)
	for m := range in {
		sn := m.Snap
		if sn == nil {
			continue
		}
		p := sn.Partial
		j.Log(p.Last, obs.EventSnapshot, "", map[string]any{
			"seq":          sn.Seq,
			"final":        sn.Final,
			"packets":      p.Packets,
			"iec":          p.IECPackets,
			"flows":        p.Flows.Total(),
			"asdus":        p.TotalASDUs,
			"parse_errors": p.ParseErrors,
		})
	}
	j.Flush()
	err = j.Err()
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// WebhookOutput delivers alerts as JSON POSTs.
type WebhookOutput struct {
	env      *Env
	id       string
	url      string
	client   *http.Client
	failures *obs.Counter
}

func buildWebhook(bc BuildCtx) (Segment, error) {
	return &WebhookOutput{
		env:      bc.Env,
		id:       bc.ID,
		url:      bc.Params.Str("url"),
		client:   &http.Client{Timeout: bc.Params.Dur("timeout")},
		failures: bc.Env.Registry.With("segment", bc.ID).Counter("uncharted_pipeline_webhook_failures_total"),
	}, nil
}

// Run implements Segment. A failed delivery is counted and logged but
// never fails the pipeline: an alert sink being down must not stop
// analysis.
func (s *WebhookOutput) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	for m := range in {
		if m.Alert == nil {
			continue
		}
		body, err := json.Marshal(map[string]any{
			"pipeline": s.env.Pipeline,
			"segment":  s.id,
			"kind":     string(m.Alert.Kind),
			"severity": m.Alert.Severity,
			"subject":  m.Alert.Subject,
			"detail":   m.Alert.Detail,
		})
		if err != nil {
			s.failures.Inc()
			continue
		}
		resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
		if err != nil {
			s.failures.Inc()
			s.env.Logf("webhook %s: delivery failed: %v", s.id, err)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			s.failures.Inc()
			s.env.Logf("webhook %s: endpoint answered %s", s.id, resp.Status)
		}
	}
	return nil
}

// LogOutput logs alerts.
type LogOutput struct {
	env *Env
	id  string
	// onAlert is the optional hook sink (func(ids.Alert)).
	onAlert func(ids.Alert)
}

func buildLogOutput(bc BuildCtx) (Segment, error) {
	s := &LogOutput{env: bc.Env, id: bc.ID}
	s.onAlert, _ = bc.Hook.(func(ids.Alert))
	return s, nil
}

// Run implements Segment.
func (s *LogOutput) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	for m := range in {
		if m.Alert == nil {
			continue
		}
		s.env.Logf("ALERT [%s] %v", s.id, *m.Alert)
		if s.onAlert != nil {
			s.onAlert(*m.Alert)
		}
	}
	return nil
}
