package pipeline

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/drift"
	"uncharted/internal/historian"
	"uncharted/internal/ids"
	"uncharted/internal/obs"
	"uncharted/internal/obs/trace"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

func init() {
	Register(Spec{
		Kind: "analyzer",
		Role: RoleAnalysis,
		In:   PortPackets,
		Out:  PortProfiles,
		Doc:  "the sharded core analyzer: consumes packets, publishes rolling profiles, serves /{id}/profile, /{id}/statusz, /{id}/readyz (+/drift, /query when armed)",
		Params: []ParamSpec{
			{Name: "workers", Type: ParamInt, Default: 1, Doc: "analysis shards"},
			{Name: "readers", Type: ParamInt, Default: 0, Doc: "parallel capture readers for handed-off sources (0 = match workers; only effective when the input hands off a seekable capture)"},
			{Name: "snapshot", Type: ParamDuration, Default: time.Duration(0), Doc: "rolling-profile period (0 = final profile only)"},
			{Name: "batch", Type: ParamInt, Default: 64, Doc: "packets per shard-queue send"},
			{Name: "queue", Type: ParamInt, Default: 64, Doc: "per-shard queue capacity in batches"},
			{Name: "cluster_k", Type: ParamInt, Default: 5, Doc: "session clustering K (0 = off)"},
			{Name: "cluster_seed", Type: ParamInt, Default: 1202, Doc: "session clustering seed"},
			{Name: "idle_timeout", Type: ParamDuration, Default: time.Duration(0), Doc: "evict flows idle this long (0 = never)"},
			{Name: "point_cap", Type: ParamInt, Default: 0, Doc: "cap in-memory samples per series (0 = unbounded)"},
			{Name: "names", Type: ParamBool, Default: true, Doc: "label addresses with the simulated topology's names (C1, O30, ...)"},
			{Name: "protocol", Type: ParamString, Default: "", Doc: "extra dialects to decode, comma-separated (c37118, modbus), or \"auto\" to content-detect every registered dialect"},
			{Name: "historian", Type: ParamString, Default: "", Doc: "record measurements into the durable historian at this directory (adds /{id}/query)"},
			{Name: "baseline", Type: ParamString, Default: "", Doc: "stored drift profile: arms live drift detection (adds /{id}/drift)"},
			{Name: "ids_baseline", Type: ParamString, Default: "", Doc: "stored IDS baseline: arms one online monitor per shard"},
		},
		Build: buildAnalyzer,
	})
	Register(Spec{
		Kind: "ids",
		Role: RoleAnalysis,
		In:   PortPackets,
		Out:  PortAlerts,
		Doc:  "online intrusion detector: feeds packets through a whitelist monitor and emits one alert per violation",
		Params: []ParamSpec{
			{Name: "baseline", Type: ParamString, Default: "", Doc: "stored IDS baseline to load (alternative to train_*)"},
			{Name: "train_year", Type: ParamInt, Default: 0, Doc: "train the whitelist from a clean simulation of this campaign (1 or 2)"},
			{Name: "train_seed", Type: ParamInt, Default: 1, Doc: "training simulation seed"},
			{Name: "train_duration", Type: ParamDuration, Default: 2 * time.Minute, Doc: "training simulation length"},
		},
		Build: buildIDS,
	})
	Register(Spec{
		Kind: "drift",
		Role: RoleAnalysis,
		In:   PortProfiles,
		Out:  PortAlerts,
		Doc:  "two-era drift comparator: compares every snapshot against a stored baseline profile, serves /{id}/drift, emits one alert per new finding",
		Params: []ParamSpec{
			{Name: "baseline", Type: ParamString, Required: true, Doc: "stored drift profile to compare against"},
		},
		Build: buildDrift,
	})
	Register(Spec{
		Kind: "historian",
		Role: RoleAnalysis,
		In:   PortPackets,
		Doc:  "record every extracted measurement into the durable historian and serve /{id}/query",
		Params: []ParamSpec{
			{Name: "dir", Type: ParamString, Required: true, Doc: "historian directory"},
			{Name: "point_cap", Type: ParamInt, Default: 0, Doc: "cap in-memory samples per series (0 = unbounded)"},
		},
		Build: buildHistorian,
	})
}

// chanSource adapts a packets edge to the engine's Source contract:
// Next pops packets off the incoming batches and reports io.EOF once
// the edge closes. Blocking in Next is fine — the runtime's close
// cascade is the engine's end-of-stream signal.
type chanSource struct {
	in  <-chan Msg
	cur []pcap.Packet
	i   int
}

func (s *chanSource) Next() (pcap.Packet, error) {
	for {
		if s.i < len(s.cur) {
			p := s.cur[s.i]
			s.i++
			return p, nil
		}
		m, ok := <-s.in
		if !ok {
			return pcap.Packet{}, io.EOF
		}
		s.cur, s.i = m.Pkts, 0
	}
}

func (s *chanSource) Close() error { return nil }

// AnalyzerHooks is the Options.Hooks payload an analyzer segment
// accepts: programmatic attachments no config file can express.
type AnalyzerHooks struct {
	// Observer attaches a core.FrameObserver per shard (e.g. the
	// presets' alert-counting IDS monitors). Composed with (not
	// replaced by) the ids_baseline param's monitors.
	Observer func(shard int) core.FrameObserver
	// Trace attaches the flight recorder.
	Trace *trace.Recorder
	// DriftAlerts receives live drift alerts (on top of the built-in
	// journal + log wiring).
	DriftAlerts func(ids.Alert)
}

// AnalyzerSegment wraps the streaming engine — the exact same sharded
// analyzer the hand-wired commands use, so profiles are identical.
type AnalyzerSegment struct {
	env  *Env
	id   string
	eng  *stream.Engine
	hist *historian.Store

	fwd        chan *Snapshot
	fwdDropped *obs.Counter
}

func buildAnalyzer(bc BuildCtx) (Segment, error) {
	hooks, _ := bc.Hook.(AnalyzerHooks)
	s := &AnalyzerSegment{
		env:        bc.Env,
		id:         bc.ID,
		fwd:        make(chan *Snapshot, 8),
		fwdDropped: bc.Env.Registry.With("segment", bc.ID).Counter("uncharted_pipeline_snapshot_drops_total"),
	}

	var baseline *drift.Profile
	if path := bc.Params.Str("baseline"); path != "" {
		var err error
		baseline, err = drift.LoadProfile(path)
		if err != nil {
			return nil, err
		}
	}
	observer := hooks.Observer
	if path := bc.Params.Str("ids_baseline"); path != "" {
		base, err := drift.LoadBaseline(path)
		if err != nil {
			return nil, err
		}
		inner := observer
		observer = func(shard int) core.FrameObserver {
			mon := ids.NewMonitor(base, alertLogger(bc.Env, bc.ID, shard))
			if inner == nil {
				return mon
			}
			return core.Observers(inner(shard), mon)
		}
	}
	if dir := bc.Params.Str("historian"); dir != "" {
		st, err := historian.Open(dir, historian.Options{Registry: bc.Env.Registry.With("segment", bc.ID)})
		if err != nil {
			return nil, err
		}
		s.hist = st
	}

	var names map[netip.Addr]string
	if bc.Params.Bool("names") {
		names = core.NamesFromTopology(topology.Build())
	}
	protos, err := stream.ParseProtocols(bc.Params.Str("protocol"))
	if err != nil {
		return nil, err
	}
	readers := bc.Params.Int("readers")
	if readers <= 0 {
		readers = bc.Params.Int("workers")
	}
	s.eng = stream.New(stream.Config{
		Workers:         bc.Params.Int("workers"),
		Readers:         readers,
		BatchSize:       bc.Params.Int("batch"),
		QueueDepth:      bc.Params.Int("queue"),
		SnapshotEvery:   bc.Params.Dur("snapshot"),
		IdleTimeout:     bc.Params.Dur("idle_timeout"),
		ClusterK:        bc.Params.Int("cluster_k"),
		ClusterSeed:     int64(bc.Params.Int("cluster_seed")),
		Names:           names,
		Protocols:       protos,
		Registry:        bc.Env.Registry.With("segment", bc.ID),
		Journal:         bc.Env.Journal,
		Trace:           hooks.Trace,
		Observer:        observer,
		Historian:       s.hist,
		MaxPointSamples: bc.Params.Int("point_cap"),
		Baseline:        baseline,
		DriftAlerts: func(al ids.Alert) {
			bc.Env.Logf("DRIFT [%s] %v", bc.ID, al)
			if hooks.DriftAlerts != nil {
				hooks.DriftAlerts(al)
			}
		},
		// Forward published snapshots down the profiles edge. Called
		// with the engine lock held, so hand off without blocking; a
		// full buffer drops the stale intermediate (the final state is
		// emitted separately after the drain, losslessly).
		OnSnapshot: func(p core.Partial, prof *stream.Profile, final bool) {
			if final {
				return
			}
			select {
			case s.fwd <- &Snapshot{Seq: prof.Seq, Partial: p, Profile: prof}:
			default:
				s.fwdDropped.Inc()
			}
		},
	})
	for path, h := range stream.Endpoints(s.eng, s.hist) {
		bc.Env.Handle("/"+bc.ID+path, h)
	}
	return s, nil
}

// alertLogger is the built-in sink for ids_baseline monitors: journal,
// log, done. Monitors are per shard but share it; it serialises itself.
func alertLogger(env *Env, id string, shard int) func(ids.Alert) {
	var mu sync.Mutex
	return func(al ids.Alert) {
		mu.Lock()
		defer mu.Unlock()
		env.Logf("ALERT [%s shard %d] %v", id, shard, al)
		env.Journal.Log(time.Now(), obs.EventAlert, al.Subject, map[string]any{
			"segment": id, "shard": shard, "kind": string(al.Kind),
			"severity": al.Severity, "detail": al.Detail,
		})
	}
}

// Engine exposes the wrapped engine (presets print its final profile).
func (s *AnalyzerSegment) Engine() *stream.Engine { return s.eng }

// Historian exposes the segment's store, nil unless the historian
// param is set (presets mount the legacy /query endpoint from it).
func (s *AnalyzerSegment) Historian() *historian.Store { return s.hist }

// AcceptsHandoff marks the segment as a valid receiver for a
// whole-capture source handoff (Msg.Src); the runner checks this when
// an input declares Handoff.
func (s *AnalyzerSegment) AcceptsHandoff() {}

// Run implements Segment: the engine consumes the packets edge via a
// chanSource; snapshots forwarded by the OnSnapshot hook ride the
// profiles edge, and the exact final state follows the drain. When the
// first message carries a source handoff instead of packets, the
// engine runs straight over that source — seekable captures then get
// the N-reader segmented ingest path.
func (s *AnalyzerSegment) Run(_ context.Context, in <-chan Msg, emit Emit) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sn := range s.fwd {
			emit(Msg{Snap: sn})
		}
	}()
	// The engine runs under a background context: cancellation reaches
	// it as the close cascade on in (chanSource io.EOF), which drains
	// the shards and publishes the exact final profile.
	var src stream.Source
	first, ok := <-in
	if ok && first.Src != nil {
		src = first.Src
		// The edge still needs draining so the producer never blocks.
		go func() {
			for range in {
			}
		}()
	} else {
		src = &chanSource{in: in, cur: first.Pkts}
	}
	err := s.eng.Run(context.Background(), src)
	if first.Src != nil {
		if cerr := first.Src.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	close(s.fwd)
	wg.Wait()
	if prof := s.eng.Profile(); prof != nil {
		emit(Msg{Snap: &Snapshot{Seq: prof.Seq, Final: true, Partial: s.eng.Final(), Profile: prof}})
	}
	if s.hist != nil {
		if cerr := s.hist.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// IDSSegment feeds packets through a single whitelist monitor and
// emits alerts.
type IDSSegment struct {
	env  *Env
	id   string
	base *ids.Baseline
	// onAlert is the optional hook sink (func(ids.Alert)).
	onAlert func(ids.Alert)
	alerts  atomic.Int64
}

func buildIDS(bc BuildCtx) (Segment, error) {
	s := &IDSSegment{env: bc.Env, id: bc.ID}
	s.onAlert, _ = bc.Hook.(func(ids.Alert))
	switch {
	case bc.Params.Str("baseline") != "":
		base, err := drift.LoadBaseline(bc.Params.Str("baseline"))
		if err != nil {
			return nil, err
		}
		s.base = base
	case bc.Params.Int("train_year") > 0:
		base, err := TrainBaseline(trainYear(bc.Params.Int("train_year")),
			int64(bc.Params.Int("train_seed")), bc.Params.Dur("train_duration"))
		if err != nil {
			return nil, err
		}
		s.base = base
	default:
		return nil, fmt.Errorf("need baseline or train_year")
	}
	eps, conns, points := s.base.Size()
	bc.Env.Logf("segment %s: online detector armed: %d endpoints, %d connections, %d physical points whitelisted",
		bc.ID, eps, conns, points)
	return s, nil
}

func trainYear(y int) topology.Year {
	if y == 2 {
		return topology.Y2
	}
	return topology.Y1
}

// TrainBaseline builds a detector whitelist from a clean simulation of
// the given grid and length (like training on yesterday's capture).
// The long cycle period keeps general interrogations from
// legitimising attacker recon tokens.
func TrainBaseline(y topology.Year, seed int64, d time.Duration) (*ids.Baseline, error) {
	cfg := scadasim.DefaultConfig(y, seed)
	cfg.Duration = d
	cfg.CyclePeriod = 100 * time.Minute
	sim, err := scadasim.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run()
	if err != nil {
		return nil, err
	}
	a := core.NewAnalyzer(core.NamesFromTopology(sim.Network()))
	src := stream.NewRecordSource(tr.Records, 0)
	for {
		pkt, err := src.Next()
		if err != nil {
			break
		}
		a.FeedPacket(pkt)
	}
	return ids.Train(a)
}

// Alerts returns how many alerts the monitor has raised.
func (s *IDSSegment) Alerts() int64 { return s.alerts.Load() }

// Run implements Segment. The monitor's sink runs synchronously on
// this goroutine (FeedPacket calls it inline), so no locking is
// needed around emit.
func (s *IDSSegment) Run(_ context.Context, in <-chan Msg, emit Emit) error {
	an := core.NewAnalyzer(core.NamesFromTopology(topology.Build()))
	// The sink journals and emits but does not log: rendering alerts is
	// the downstream log/webhook segments' job.
	mon := ids.NewMonitor(s.base, func(al ids.Alert) {
		s.alerts.Add(1)
		s.env.Journal.Log(time.Now(), obs.EventAlert, al.Subject, map[string]any{
			"segment": s.id, "kind": string(al.Kind),
			"severity": al.Severity, "detail": al.Detail,
		})
		if s.onAlert != nil {
			s.onAlert(al)
		}
		a := al
		emit(Msg{Alert: &a})
	})
	an.SetFrameObserver(mon)
	for m := range in {
		for i := range m.Pkts {
			an.FeedPacket(m.Pkts[i])
		}
	}
	return nil
}

// DriftSegment compares every incoming snapshot against a stored
// baseline profile.
type DriftSegment struct {
	env  *Env
	id   string
	base *drift.Profile
	rep  atomic.Pointer[drift.DriftReport]
}

func buildDrift(bc BuildCtx) (Segment, error) {
	base, err := drift.LoadProfile(bc.Params.Str("baseline"))
	if err != nil {
		return nil, err
	}
	s := &DriftSegment{env: bc.Env, id: bc.ID, base: base}
	bc.Env.Handle("/"+bc.ID+"/drift", stream.NewDriftHandler(s.Report))
	return s, nil
}

// Report returns the latest comparison, or nil before the first
// snapshot arrives.
func (s *DriftSegment) Report() *drift.DriftReport { return s.rep.Load() }

// Run implements Segment: one Compare per snapshot, one alert per
// finding the first time it appears.
func (s *DriftSegment) Run(_ context.Context, in <-chan Msg, emit Emit) error {
	seen := make(map[string]bool)
	for m := range in {
		sn := m.Snap
		if sn == nil {
			continue
		}
		cur := drift.NewProfile("live", "pipeline:"+s.env.Pipeline, sn.Partial, sn.Partial.Last)
		rep := drift.Compare(s.base, cur, drift.DefaultThresholds())
		s.rep.Store(rep)
		s.env.Journal.Log(sn.Partial.Last, obs.EventDrift, "", map[string]any{
			"segment": s.id, "seq": sn.Seq,
			"findings": len(rep.Findings), "max_severity": rep.MaxSeverity(),
		})
		for _, f := range rep.Findings {
			key := f.Kind + "|" + f.Subject
			if seen[key] {
				continue
			}
			seen[key] = true
			al := f.Alert()
			s.env.Logf("DRIFT [%s] %v", s.id, al)
			emit(Msg{Alert: &al})
		}
	}
	return nil
}

// HistorianSegment records every extracted measurement into the
// durable store — a terminal packets consumer with a query surface.
type HistorianSegment struct {
	store *historian.Store
	an    *core.Analyzer
	rec   *historian.Recorder
}

func buildHistorian(bc BuildCtx) (Segment, error) {
	st, err := historian.Open(bc.Params.Str("dir"), historian.Options{Registry: bc.Env.Registry.With("segment", bc.ID)})
	if err != nil {
		return nil, err
	}
	an := core.NewAnalyzer(core.NamesFromTopology(topology.Build()))
	if pc := bc.Params.Int("point_cap"); pc > 0 {
		an.Physical().SetMaxSamplesPerSeries(pc)
	}
	rec := historian.NewRecorder(st)
	an.SetFrameObserver(rec)
	bc.Env.Handle("/"+bc.ID+"/query", historian.QueryHandler(st))
	return &HistorianSegment{store: st, an: an, rec: rec}, nil
}

// Run implements Segment.
func (s *HistorianSegment) Run(_ context.Context, in <-chan Msg, _ Emit) error {
	for m := range in {
		for i := range m.Pkts {
			s.an.FeedPacket(m.Pkts[i])
		}
	}
	err := s.rec.Err()
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
