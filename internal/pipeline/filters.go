package pipeline

import (
	"context"
	"fmt"
	"net/netip"
	"sort"

	"uncharted/internal/core"
	"uncharted/internal/iec104"
	"uncharted/internal/pcap"
	"uncharted/internal/topology"
)

func init() {
	Register(Spec{
		Kind: "station",
		Role: RoleFilter,
		In:   PortPackets,
		Out:  PortPackets,
		Doc:  "keep packets whose source or destination is one of the named stations (topology names or literal IPs)",
		Params: []ParamSpec{
			{Name: "stations", Type: ParamStrings, Required: true, Doc: "station names (C1, O17, ...) or IP addresses"},
		},
		Build: buildStationFilter,
	})
	Register(Spec{
		Kind: "ip_pair",
		Role: RoleFilter,
		In:   PortPackets,
		Out:  PortPackets,
		Doc:  "keep only traffic between two endpoints, either direction",
		Params: []ParamSpec{
			{Name: "a", Type: ParamString, Required: true, Doc: "first endpoint (station name or IP)"},
			{Name: "b", Type: ParamString, Required: true, Doc: "second endpoint (station name or IP)"},
		},
		Build: buildIPPairFilter,
	})
	Register(Spec{
		Kind: "asdu_type",
		Role: RoleFilter,
		In:   PortPackets,
		Out:  PortPackets,
		Doc:  "keep packets carrying at least one ASDU of the given type IDs (per-packet parse, no TCP reassembly)",
		Params: []ParamSpec{
			{Name: "types", Type: ParamInts, Required: true, Doc: "IEC 104 type IDs (e.g. 13 = M_ME_NC_1, 46 = C_DC_NA_1)"},
		},
		Build: buildASDUTypeFilter,
	})
	Register(Spec{
		Kind: "sample",
		Role: RoleFilter,
		In:   PortPackets,
		Out:  PortPackets,
		Doc:  "keep one packet in N (deterministic count-based downsampling)",
		Params: []ParamSpec{
			{Name: "every", Type: ParamInt, Required: true, Doc: "keep every Nth packet (N >= 1)"},
		},
		Build: buildSampleFilter,
	})
	Register(Spec{
		Kind:  "tee",
		Role:  RoleFilter,
		In:    PortPackets,
		Out:   PortPackets,
		Doc:   "pass packets through unchanged: an explicit fan-out point for graph shaping",
		Build: func(BuildCtx) (Segment, error) { return &TeeFilter{}, nil },
	})
}

// FilterSegment applies a per-packet predicate to every batch,
// emitting only the survivors.
type FilterSegment struct {
	keep func(*pcap.Packet) bool
}

// Run implements Segment.
func (f *FilterSegment) Run(_ context.Context, in <-chan Msg, emit Emit) error {
	for m := range in {
		var kept []pcap.Packet
		for i := range m.Pkts {
			if f.keep(&m.Pkts[i]) {
				kept = append(kept, m.Pkts[i])
			}
		}
		if len(kept) > 0 {
			emit(Msg{Pkts: kept})
		}
	}
	return nil
}

// resolveEndpoint maps a station name or literal IP to its address
// set against the paper's topology.
func resolveEndpoint(names map[netip.Addr]string, s string) (map[netip.Addr]bool, error) {
	if a, err := netip.ParseAddr(s); err == nil {
		return map[netip.Addr]bool{a: true}, nil
	}
	out := make(map[netip.Addr]bool)
	for addr, name := range names {
		if name == s {
			out[addr] = true
		}
	}
	if len(out) == 0 {
		known := make([]string, 0, len(names))
		for _, n := range names {
			known = append(known, n)
		}
		sort.Strings(known)
		max := 8
		if len(known) < max {
			max = len(known)
		}
		return nil, fmt.Errorf("unknown station %q (not an IP either; known: %v ...)", s, known[:max])
	}
	return out, nil
}

func buildStationFilter(bc BuildCtx) (Segment, error) {
	names := core.NamesFromTopology(topology.Build())
	allow := make(map[netip.Addr]bool)
	for _, s := range bc.Params.Strs("stations") {
		set, err := resolveEndpoint(names, s)
		if err != nil {
			return nil, err
		}
		for a := range set {
			allow[a] = true
		}
	}
	return &FilterSegment{keep: func(p *pcap.Packet) bool {
		return allow[p.IP.Src] || allow[p.IP.Dst]
	}}, nil
}

func buildIPPairFilter(bc BuildCtx) (Segment, error) {
	names := core.NamesFromTopology(topology.Build())
	a, err := resolveEndpoint(names, bc.Params.Str("a"))
	if err != nil {
		return nil, err
	}
	b, err := resolveEndpoint(names, bc.Params.Str("b"))
	if err != nil {
		return nil, err
	}
	return &FilterSegment{keep: func(p *pcap.Packet) bool {
		return (a[p.IP.Src] && b[p.IP.Dst]) || (b[p.IP.Src] && a[p.IP.Dst])
	}}, nil
}

func buildASDUTypeFilter(bc BuildCtx) (Segment, error) {
	want := make(map[iec104.TypeID]bool)
	for _, t := range bc.Params.IntsList("types") {
		if t < 0 || t > 255 {
			return nil, fmt.Errorf("type ID %d out of range 0..255", t)
		}
		want[iec104.TypeID(t)] = true
	}
	return &FilterSegment{keep: func(p *pcap.Packet) bool {
		if len(p.TCP.Payload) == 0 {
			return false
		}
		// Best-effort per-packet parse: APDUs split across segments are
		// not reassembled here (the analyzer's per-connection parser
		// handles that); a filter only needs the common whole-APDU case.
		apdus, _, _ := iec104.ParseAPDUs(p.TCP.Payload, iec104.Standard)
		for _, a := range apdus {
			if a.ASDU != nil && want[a.ASDU.Type] {
				return true
			}
		}
		return false
	}}, nil
}

func buildSampleFilter(bc BuildCtx) (Segment, error) {
	every := bc.Params.Int("every")
	if every < 1 {
		return nil, fmt.Errorf("every must be >= 1, got %d", every)
	}
	n := 0
	return &FilterSegment{keep: func(*pcap.Packet) bool {
		keep := n%every == 0
		n++
		return keep
	}}, nil
}

// TeeFilter passes every message through unchanged. Fan-out itself is
// implicit (any segment may feed several consumers); tee exists so a
// config can name the junction.
type TeeFilter struct{}

// Run implements Segment.
func (t *TeeFilter) Run(_ context.Context, in <-chan Msg, emit Emit) error {
	for m := range in {
		emit(m)
	}
	return nil
}
