package pipeline

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// ParamType is the declared type of one segment parameter.
type ParamType string

// Parameter types. Durations accept Go duration strings ("30s") or a
// number of nanoseconds; strings lists accept JSON arrays of strings;
// ints reject fractional JSON numbers.
const (
	ParamString   ParamType = "string"
	ParamInt      ParamType = "int"
	ParamFloat    ParamType = "float"
	ParamBool     ParamType = "bool"
	ParamDuration ParamType = "duration"
	ParamStrings  ParamType = "strings"
	ParamInts     ParamType = "ints"
)

// ParamSpec declares one parameter of a segment's config schema.
type ParamSpec struct {
	Name     string
	Type     ParamType
	Required bool
	// Default documents (and supplies) the value used when the param
	// is absent; nil means the zero value.
	Default any
	Doc     string
}

// Spec declares a registered segment kind: its ports, its parameter
// schema and its factory.
type Spec struct {
	// Kind is the registry key config files reference ("pcap", "analyzer", ...).
	Kind string
	// Role groups the segment in the catalog.
	Role Role
	// In / Out are the port types; PortNone for inputs' In and
	// terminal segments' Out.
	In, Out PortType
	// Doc is the one-line catalog description.
	Doc string
	// Params is the declared parameter schema, validated before Build.
	Params []ParamSpec
	// Build constructs the segment. It runs at Runner construction
	// time, so it may open files and allocate stores; errors abort the
	// whole runner.
	Build func(bc BuildCtx) (Segment, error)
}

var registry = map[string]Spec{}

// Register adds a segment kind; duplicate kinds panic (registration is
// an init-time programming act, not a runtime condition).
func Register(s Spec) {
	if s.Kind == "" || s.Build == nil {
		panic("pipeline: Register needs a kind and a build func")
	}
	if _, dup := registry[s.Kind]; dup {
		panic("pipeline: duplicate segment kind " + s.Kind)
	}
	registry[s.Kind] = s
}

// Lookup resolves a segment kind.
func Lookup(kind string) (Spec, bool) {
	s, ok := registry[kind]
	return s, ok
}

// Catalog returns every registered segment, inputs first, then
// filters, analysis and outputs, alphabetical within a role.
func Catalog() []Spec {
	order := map[Role]int{RoleInput: 0, RoleFilter: 1, RoleAnalysis: 2, RoleOutput: 3}
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if order[out[i].Role] != order[out[j].Role] {
			return order[out[i].Role] < order[out[j].Role]
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Params holds a segment's validated parameters. Getters return the
// spec's default (or the zero value) for absent params, so Build
// functions read them unconditionally.
type Params struct {
	spec   []ParamSpec
	values map[string]any
}

func (p Params) get(name string) (any, bool) {
	if v, ok := p.values[name]; ok {
		return v, true
	}
	for _, ps := range p.spec {
		if ps.Name == name && ps.Default != nil {
			return ps.Default, true
		}
	}
	return nil, false
}

// Str returns a string param.
func (p Params) Str(name string) string {
	if v, ok := p.get(name); ok {
		return v.(string)
	}
	return ""
}

// Int returns an int param.
func (p Params) Int(name string) int {
	if v, ok := p.get(name); ok {
		switch v := v.(type) {
		case int:
			return v
		case float64:
			return int(v)
		}
	}
	return 0
}

// Float returns a float param.
func (p Params) Float(name string) float64 {
	if v, ok := p.get(name); ok {
		switch v := v.(type) {
		case float64:
			return v
		case int:
			return float64(v)
		}
	}
	return 0
}

// Bool returns a bool param.
func (p Params) Bool(name string) bool {
	if v, ok := p.get(name); ok {
		return v.(bool)
	}
	return false
}

// Dur returns a duration param.
func (p Params) Dur(name string) time.Duration {
	if v, ok := p.get(name); ok {
		return v.(time.Duration)
	}
	return 0
}

// Strs returns a string-list param.
func (p Params) Strs(name string) []string {
	if v, ok := p.get(name); ok {
		return v.([]string)
	}
	return nil
}

// IntsList returns an int-list param.
func (p Params) IntsList(name string) []int {
	if v, ok := p.get(name); ok {
		return v.([]int)
	}
	return nil
}

// Has reports whether the param was set explicitly in the config.
func (p Params) Has(name string) bool {
	_, ok := p.values[name]
	return ok
}

// parseParams validates raw JSON params against a spec: unknown keys,
// missing required params and type mismatches are errors.
func parseParams(spec []ParamSpec, raw json.RawMessage) (Params, error) {
	byName := make(map[string]ParamSpec, len(spec))
	for _, ps := range spec {
		byName[ps.Name] = ps
	}
	values := make(map[string]any)
	if len(raw) > 0 {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return Params{}, fmt.Errorf("params must be an object: %w", err)
		}
		for key, rv := range m {
			ps, ok := byName[key]
			if !ok {
				return Params{}, fmt.Errorf("unknown param %q (valid: %s)", key, paramNames(spec))
			}
			v, err := parseParamValue(ps, rv)
			if err != nil {
				return Params{}, fmt.Errorf("param %q: %w", key, err)
			}
			values[key] = v
		}
	}
	for _, ps := range spec {
		if ps.Required {
			if _, ok := values[ps.Name]; !ok {
				return Params{}, fmt.Errorf("missing required param %q (%s)", ps.Name, ps.Type)
			}
		}
	}
	return Params{spec: spec, values: values}, nil
}

func parseParamValue(ps ParamSpec, raw json.RawMessage) (any, error) {
	switch ps.Type {
	case ParamString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("want string, got %s", raw)
		}
		return s, nil
	case ParamInt:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("want integer, got %s", raw)
		}
		if f != math.Trunc(f) {
			return nil, fmt.Errorf("want integer, got %s", raw)
		}
		return int(f), nil
	case ParamFloat:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("want number, got %s", raw)
		}
		return f, nil
	case ParamBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("want bool, got %s", raw)
		}
		return b, nil
	case ParamDuration:
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		switch v := v.(type) {
		case string:
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, err
			}
			return d, nil
		case float64:
			return time.Duration(v), nil
		}
		return nil, fmt.Errorf("want duration string or nanoseconds, got %s", raw)
	case ParamStrings:
		var ss []string
		if err := json.Unmarshal(raw, &ss); err != nil {
			return nil, fmt.Errorf("want array of strings, got %s", raw)
		}
		return ss, nil
	case ParamInts:
		var fs []float64
		if err := json.Unmarshal(raw, &fs); err != nil {
			return nil, fmt.Errorf("want array of integers, got %s", raw)
		}
		out := make([]int, len(fs))
		for i, f := range fs {
			if f != math.Trunc(f) {
				return nil, fmt.Errorf("want array of integers, got %s", raw)
			}
			out[i] = int(f)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unhandled param type %q", ps.Type)
}

func paramNames(spec []ParamSpec) string {
	if len(spec) == 0 {
		return "none"
	}
	out := ""
	for i, ps := range spec {
		if i > 0 {
			out += ", "
		}
		out += ps.Name
	}
	return out
}
