package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"uncharted/internal/core"
	"uncharted/internal/obs"
	"uncharted/internal/pcap"
	"uncharted/internal/scadasim"
	"uncharted/internal/stream"
	"uncharted/internal/topology"
)

// writeTestCapture synthesizes a short era-1 capture.
func writeTestCapture(t *testing.T, dur time.Duration, seed int64) string {
	t.Helper()
	cfg := scadasim.DefaultConfig(topology.Y1, seed)
	cfg.Duration = dur
	sim, err := scadasim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestProfilerPresetEquivalence pins the tentpole guarantee: the
// declared profiler graph produces exactly the analysis state and
// profile the hand-wired streaming engine produced before the
// refactor, at one shard and at four.
func TestProfilerPresetEquivalence(t *testing.T) {
	path := writeTestCapture(t, 20*time.Second, 11)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// The pre-refactor wiring: engine + pcap source by hand.
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			src, err := stream.NewPCAPSource(f)
			if err != nil {
				t.Fatal(err)
			}
			eng := stream.New(stream.Config{
				Workers:     workers,
				ClusterK:    5,
				ClusterSeed: 1202,
				Names:       core.NamesFromTopology(topology.Build()),
			})
			if err := eng.Run(context.Background(), src); err != nil {
				t.Fatalf("hand-wired run: %v", err)
			}
			src.Close()
			wantPartial := eng.Final()
			wantProfile := eng.Profile()

			// The declared graph.
			cfg, hooks := ProfilerGraph(ProfilerPreset{Path: path, Workers: workers, Names: true})
			runner, err := NewRunner(cfg, Options{Hooks: hooks, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			seg := runner.Segment("profiler", "an").(*AnalyzerSegment)
			if err := runner.Run(context.Background()); err != nil {
				t.Fatalf("pipeline run: %v", err)
			}
			gotPartial := seg.Engine().Final()
			gotProfile := seg.Engine().Profile()

			if gotPartial.Packets == 0 {
				t.Fatal("pipeline analyzed zero packets")
			}
			if !reflect.DeepEqual(wantPartial, gotPartial) {
				t.Errorf("final partial differs between hand-wired and pipeline paths\nhand-wired: packets=%d flows=%d asdus=%d\npipeline:   packets=%d flows=%d asdus=%d",
					wantPartial.Packets, wantPartial.Flows.Total(), wantPartial.TotalASDUs,
					gotPartial.Packets, gotPartial.Flows.Total(), gotPartial.TotalASDUs)
			}
			if !reflect.DeepEqual(wantProfile, gotProfile) {
				wj, _ := json.Marshal(wantProfile)
				gj, _ := json.Marshal(gotProfile)
				t.Errorf("profile differs between hand-wired and pipeline paths\nhand-wired: %s\npipeline:   %s", wj, gj)
			}
		})
	}
}

// TestProfilerHandoffEquivalence pins the parallel-ingest plumbing:
// a pcap input with readers > 1 hands the capture file to the analyzer
// whole, and the N-reader segmented engine produces exactly the state
// the inline-decoding graph produces.
func TestProfilerHandoffEquivalence(t *testing.T) {
	path := writeTestCapture(t, 20*time.Second, 13)

	run := func(readers int) core.Partial {
		cfg, hooks := ProfilerGraph(ProfilerPreset{Path: path, Workers: 2, Readers: readers, Names: true})
		runner, err := NewRunner(cfg, Options{Hooks: hooks, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return runner.Segment("profiler", "an").(*AnalyzerSegment).Engine().Final()
	}

	want := run(0) // inline decode, no handoff
	got := run(4)  // source handoff, 4 segment readers
	if want.Packets == 0 {
		t.Fatal("inline graph analyzed zero packets")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("handoff path differs from inline path: packets %d vs %d, asdus %d vs %d",
			want.Packets, got.Packets, want.TotalASDUs, got.TotalASDUs)
	}
}

// TestHandoffValidation pins the runner's topology check: a source
// handoff moves ownership of one file, so it must feed exactly one
// analyzer.
func TestHandoffValidation(t *testing.T) {
	path := writeTestCapture(t, 2*time.Second, 5)
	build := func(doc string) error {
		cfg, err := Parse([]byte(doc), "handoff.jsonc")
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewRunner(cfg, Options{Logf: t.Logf})
		return err
	}

	t.Run("fan-out rejected", func(t *testing.T) {
		err := build(fmt.Sprintf(`{"pipelines": [{"name": "p", "segments": [
		  { "id": "src", "segment": "pcap", "params": { "path": %q, "readers": 2 } },
		  { "id": "a1", "segment": "analyzer", "from": ["src"] },
		  { "id": "a2", "segment": "analyzer", "from": ["src"] }
		]}]}`, path))
		if err == nil {
			t.Fatal("handoff into two consumers built, want error")
		}
	})

	t.Run("non-analyzer consumer rejected", func(t *testing.T) {
		err := build(fmt.Sprintf(`{"pipelines": [{"name": "p", "segments": [
		  { "id": "src", "segment": "pcap", "params": { "path": %q, "readers": 2 } },
		  { "id": "f", "segment": "sample", "from": ["src"], "params": { "every": 2 } }
		]}]}`, path))
		if err == nil {
			t.Fatal("handoff into a filter built, want error")
		}
	})

	t.Run("paced handoff rejected", func(t *testing.T) {
		err := build(fmt.Sprintf(`{"pipelines": [{"name": "p", "segments": [
		  { "id": "src", "segment": "pcap", "params": { "path": %q, "readers": 2, "speed": 60 } },
		  { "id": "an", "segment": "analyzer", "from": ["src"] }
		]}]}`, path))
		if err == nil {
			t.Fatal("paced handoff built, want error")
		}
	})
}

// TestRunnerTwoPipelines is the fleet guarantee: one Runner hosts two
// declared pipelines side by side, both complete, and outputs land.
func TestRunnerTwoPipelines(t *testing.T) {
	dir := t.TempDir()
	exportPath := filepath.Join(dir, "p1.json")
	doc := fmt.Sprintf(`{
	  "pipelines": [
	    {
	      "name": "p1",
	      "segments": [
	        { "id": "src", "segment": "sim", "params": { "duration": "5s", "seed": 3 } },
	        { "id": "an", "segment": "analyzer", "from": ["src"] },
	        { "id": "out", "segment": "export", "from": ["an"], "params": { "path": %q } }
	      ]
	    },
	    {
	      "name": "p2",
	      "segments": [
	        { "id": "src", "segment": "sim", "params": { "duration": "5s", "seed": 4 } },
	        { "id": "an", "segment": "analyzer", "from": ["src"], "params": { "workers": 2 } },
	        { "id": "latest", "segment": "snapshot_http", "from": ["an"] }
	      ]
	    }
	  ]
	}`, exportPath)
	cfg, err := Parse([]byte(doc), "two.jsonc")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(cfg, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.Pipelines(); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("Pipelines() = %v, want [p1 p2]", got)
	}
	if err := runner.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"p1", "p2"} {
		seg := runner.Segment(name, "an").(*AnalyzerSegment)
		if p := seg.Engine().Final(); p.Packets == 0 {
			t.Errorf("pipeline %s analyzed zero packets", name)
		}
	}

	// The export output wrote p1's final profile.
	data, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	var prof stream.Profile
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatalf("export is not a profile: %v", err)
	}
	if want := runner.Segment("p1", "an").(*AnalyzerSegment).Engine().Final().Packets; prof.Packets != want {
		t.Errorf("exported profile has %d packets, engine final has %d", prof.Packets, want)
	}

	// The HTTP surface carries both pipelines' mounts.
	eps := runner.Endpoints()
	for _, path := range []string{"/statusz", "/pipelines/p1/an/profile", "/pipelines/p2/latest", "/pipelines/p2/statusz"} {
		if _, ok := eps[path]; !ok {
			t.Errorf("endpoint %s missing (have %d endpoints)", path, len(eps))
		}
	}

	// Status reflects completion.
	for _, st := range runner.Status() {
		for _, s := range st.Segments {
			if s.State != "done" {
				t.Errorf("pipeline %s segment %s state = %s, want done", st.Name, s.ID, s.State)
			}
		}
	}
}

// buildFilter constructs a registered filter segment directly, the way
// the runner would.
func buildFilter(t *testing.T, kind, params string) *FilterSegment {
	t.Helper()
	spec, ok := Lookup(kind)
	if !ok {
		t.Fatalf("kind %q not registered", kind)
	}
	p, err := parseParams(spec.Params, json.RawMessage(params))
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Pipeline: "test", Registry: obs.NewRegistry().With("pipeline", "test"), Logf: t.Logf}
	seg, err := spec.Build(BuildCtx{Pipeline: "test", ID: "f", Params: p, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	return seg.(*FilterSegment)
}

// runFilter pushes packets through a filter and collects the survivors.
func runFilter(t *testing.T, f *FilterSegment, pkts []pcap.Packet) []pcap.Packet {
	t.Helper()
	in := make(chan Msg, 1)
	in <- Msg{Pkts: pkts}
	close(in)
	var out []pcap.Packet
	if err := f.Run(context.Background(), in, func(m Msg) { out = append(out, m.Pkts...) }); err != nil {
		t.Fatal(err)
	}
	return out
}

func mkPacket(src, dst string) pcap.Packet {
	var p pcap.Packet
	p.IP.Src = netip.MustParseAddr(src)
	p.IP.Dst = netip.MustParseAddr(dst)
	return p
}

func TestFilters(t *testing.T) {
	// C1 is 10.0.0.1 in the paper topology.
	pkts := []pcap.Packet{
		mkPacket("10.0.0.1", "10.0.1.5"),
		mkPacket("10.0.1.5", "10.0.0.1"),
		mkPacket("10.0.9.9", "10.0.8.8"),
		mkPacket("10.0.0.2", "10.0.9.9"),
	}

	t.Run("station keeps either direction", func(t *testing.T) {
		f := buildFilter(t, "station", `{"stations": ["C1"]}`)
		got := runFilter(t, f, pkts)
		if len(got) != 2 {
			t.Fatalf("kept %d packets, want 2", len(got))
		}
	})

	t.Run("station accepts literal IPs", func(t *testing.T) {
		f := buildFilter(t, "station", `{"stations": ["10.0.9.9"]}`)
		if got := runFilter(t, f, pkts); len(got) != 2 {
			t.Fatalf("kept %d packets, want 2", len(got))
		}
	})

	t.Run("station rejects unknown names", func(t *testing.T) {
		spec, _ := Lookup("station")
		p, err := parseParams(spec.Params, json.RawMessage(`{"stations": ["XX99"]}`))
		if err != nil {
			t.Fatal(err)
		}
		env := &Env{Pipeline: "test", Registry: obs.NewRegistry(), Logf: t.Logf}
		if _, err := spec.Build(BuildCtx{Pipeline: "test", ID: "f", Params: p, Env: env}); err == nil {
			t.Fatal("building with unknown station succeeded, want error")
		}
	})

	t.Run("ip_pair matches both directions only", func(t *testing.T) {
		f := buildFilter(t, "ip_pair", `{"a": "C1", "b": "10.0.1.5"}`)
		got := runFilter(t, f, pkts)
		if len(got) != 2 {
			t.Fatalf("kept %d packets, want 2", len(got))
		}
	})

	t.Run("sample keeps one in N", func(t *testing.T) {
		f := buildFilter(t, "sample", `{"every": 2}`)
		got := runFilter(t, f, pkts)
		if len(got) != 2 {
			t.Fatalf("kept %d of %d packets at every=2, want 2", len(got), len(pkts))
		}
		// Deterministic: the first packet of the stream is always kept.
		if got[0].IP.Src != pkts[0].IP.Src || got[0].IP.Dst != pkts[0].IP.Dst {
			t.Error("sample did not keep the first packet")
		}
	})

	t.Run("tee passes everything", func(t *testing.T) {
		tee := &TeeFilter{}
		in := make(chan Msg, 1)
		in <- Msg{Pkts: pkts}
		close(in)
		var out []pcap.Packet
		if err := tee.Run(context.Background(), in, func(m Msg) { out = append(out, m.Pkts...) }); err != nil {
			t.Fatal(err)
		}
		if len(out) != len(pkts) {
			t.Fatalf("tee passed %d packets, want %d", len(out), len(pkts))
		}
	})
}

// TestRunnerDrain interrupts a paced live pipeline mid-feed and
// requires a clean drain with a final snapshot published.
func TestRunnerDrain(t *testing.T) {
	doc := `{
	  "pipelines": [
	    {
	      "name": "live",
	      "segments": [
	        { "id": "src", "segment": "sim", "params": { "duration": "5m", "speed": 60, "seed": 9 } },
	        { "id": "an", "segment": "analyzer", "from": ["src"], "params": { "snapshot": "200ms" } }
	      ]
	    }
	  ]
	}`
	cfg, err := Parse([]byte(doc), "drain.jsonc")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(cfg, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := runner.Run(ctx); err != nil {
		t.Fatalf("drain returned error: %v", err)
	}
	seg := runner.Segment("live", "an").(*AnalyzerSegment)
	if p := seg.Engine().Final(); p.Packets == 0 {
		t.Error("drained pipeline published no final state")
	}
}

// BenchmarkGraphVsHandwired measures the segment runtime's overhead
// against the hand-wired engine on the same capture; benchtables
// -bench runs the same comparison into BENCH_pipeline.json.
func BenchmarkGraphVsHandwired(b *testing.B) {
	cfg := scadasim.DefaultConfig(topology.Y1, 11)
	cfg.Duration = 30 * time.Second
	sim, err := scadasim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "capture.pcap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.WritePCAP(f); err != nil {
		b.Fatal(err)
	}
	f.Close()

	b.Run("handwired", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			src, err := stream.NewPCAPSource(f)
			if err != nil {
				b.Fatal(err)
			}
			// One full pre-refactor profiler invocation: name-map
			// construction included, like the graph op's runner
			// construction includes it.
			names := core.NamesFromTopology(topology.Build())
			e := stream.New(stream.Config{Workers: 1, ClusterK: 5, ClusterSeed: 1202, Names: names})
			if err := e.Run(context.Background(), src); err != nil {
				b.Fatal(err)
			}
			// Match the graph path's product: the final clustered
			// profile, which the analyzer segment publishes on drain.
			e.Profile()
			f.Close()
		}
	})
	b.Run("graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg, hooks := ProfilerGraph(ProfilerPreset{Path: path, Workers: 1, Names: true})
			runner, err := NewRunner(cfg, Options{Hooks: hooks, Logf: func(string, ...any) {}})
			if err != nil {
				b.Fatal(err)
			}
			if err := runner.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
