package tcpflow

import "sort"

// stream reassembles one direction of a TCP byte stream. It tolerates
// out-of-order arrival and detects retransmissions by sequence-range
// overlap. Sequence numbers use uint32 arithmetic so wraparound works.
type stream struct {
	started bool
	next    uint32 // next expected sequence number
	// pending holds out-of-order segments keyed by sequence number.
	// Buffered segments are always copied; only lazily allocated since
	// in-order traffic (the overwhelming common case) never buffers.
	pending map[uint32][]byte
	// scratch is reused for the concatenation when a segment unlocks
	// buffered out-of-order data, so drains do not allocate either.
	scratch []byte
}

func newStream() *stream {
	return &stream{}
}

// seqLess reports whether a precedes b in sequence space (RFC 1982
// style serial comparison).
func seqLess(a, b uint32) bool {
	return int32(a-b) < 0
}

// insert adds a segment and returns the new in-order data it unlocked,
// whether the segment was entirely a retransmission, and whether it
// arrived ahead of a sequence gap and had to be buffered.
func (s *stream) insert(seq uint32, payload []byte) (newData []byte, retransmit, buffered bool) {
	if len(payload) == 0 {
		return nil, false, false
	}
	if !s.started {
		s.started = true
		s.next = seq
	}
	end := seq + uint32(len(payload))
	if !seqLess(s.next, end) {
		// Entire segment is before the reassembly point: retransmit.
		return nil, true, false
	}
	if seqLess(seq, s.next) {
		// Partial overlap: trim the already-delivered prefix. Count it
		// as a retransmission only if most of it was old data.
		trimmed := s.next - seq
		payload = payload[trimmed:]
		seq = s.next
	}
	if seq == s.next {
		s.next = seq + uint32(len(payload))
		if len(s.pending) == 0 {
			// Zero-copy fast path: the segment is in order and unlocks
			// nothing else, so hand the caller's bytes straight back.
			// The returned slice aliases payload and is only valid for
			// the synchronous consumer callback.
			return payload, false, false
		}
		newData = append(s.scratch[:0], payload...)
		// Drain any pending segments that are now contiguous.
		for {
			p, ok := s.takePendingAt(s.next)
			if !ok {
				break
			}
			newData = append(newData, p...)
			s.next += uint32(len(p))
		}
		s.scratch = newData
		return newData, false, false
	}
	// Out of order: buffer unless we already hold this exact range.
	if old, ok := s.pending[seq]; ok && len(old) >= len(payload) {
		return nil, true, false
	}
	if s.pending == nil {
		s.pending = make(map[uint32][]byte)
	}
	s.pending[seq] = append([]byte(nil), payload...)
	return nil, false, true
}

// takePendingAt pops a pending segment whose usable data starts at (or
// before) seq. Overlapping prefixes are trimmed.
func (s *stream) takePendingAt(seq uint32) ([]byte, bool) {
	if p, ok := s.pending[seq]; ok {
		delete(s.pending, seq)
		return p, true
	}
	// Look for a segment starting earlier but extending past seq.
	keys := make([]uint32, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return seqLess(keys[i], keys[j]) })
	for _, k := range keys {
		p := s.pending[k]
		end := k + uint32(len(p))
		if seqLess(k, seq) && seqLess(seq, end) {
			delete(s.pending, k)
			return p[seq-k:], true
		}
		if seqLess(k, seq) && !seqLess(seq, end) {
			// Entirely stale.
			delete(s.pending, k)
		}
	}
	return nil, false
}
