package tcpflow

import "uncharted/internal/obs"

// Metric names exported by an instrumented Tracker.
const (
	MetricFlowsOpened = "uncharted_tcpflow_flows_opened_total"
	MetricFlowsClosed = "uncharted_tcpflow_flows_closed_total"
	MetricOpenFlows   = "uncharted_tcpflow_open_flows"
	MetricSegments    = "uncharted_tcpflow_segments_total"
	MetricRetransmits = "uncharted_tcpflow_retransmit_segments_total"
	MetricOutOfOrder  = "uncharted_tcpflow_out_of_order_segments_total"
	MetricFlowsEvict  = "uncharted_tcpflow_flows_evicted_total"
)

// trackerMetrics holds the pre-resolved handles one Tracker updates.
type trackerMetrics struct {
	flowsOpened  *obs.Counter
	flowsClosed  *obs.Counter
	openFlows    *obs.Gauge
	segments     *obs.Counter
	retransmits  *obs.Counter
	outOfOrder   *obs.Counter
	flowsEvicted *obs.Counter
}

func newTrackerMetrics(reg *obs.Registry) *trackerMetrics {
	reg.SetHelp(MetricFlowsOpened, "TCP 4-tuples first seen by the flow tracker.")
	reg.SetHelp(MetricFlowsClosed, "Tracked flows that reached a FIN or RST.")
	reg.SetHelp(MetricOpenFlows, "Tracked flows not yet closed by FIN or RST.")
	reg.SetHelp(MetricSegments, "TCP segments fed to the flow tracker.")
	reg.SetHelp(MetricRetransmits, "Payload segments carrying only already-delivered bytes.")
	reg.SetHelp(MetricOutOfOrder, "Payload segments buffered ahead of a sequence gap.")
	reg.SetHelp(MetricFlowsEvict, "Flows dropped by streaming-mode idle eviction.")
	return &trackerMetrics{
		flowsOpened:  reg.Counter(MetricFlowsOpened),
		flowsClosed:  reg.Counter(MetricFlowsClosed),
		openFlows:    reg.Gauge(MetricOpenFlows),
		segments:     reg.Counter(MetricSegments),
		retransmits:  reg.Counter(MetricRetransmits),
		outOfOrder:   reg.Counter(MetricOutOfOrder),
		flowsEvicted: reg.Counter(MetricFlowsEvict),
	}
}

// noteFlowOpened books a newly tracked 4-tuple. Nil-safe.
func (m *trackerMetrics) noteFlowOpened() {
	if m != nil {
		m.flowsOpened.Inc()
		m.openFlows.Add(1)
	}
}

// noteFlowClosed books the first FIN/RST seen on a flow. Nil-safe.
func (m *trackerMetrics) noteFlowClosed() {
	if m != nil {
		m.flowsClosed.Inc()
		m.openFlows.Add(-1)
	}
}

// noteFlowEvicted books an idle-evicted flow; flows never closed by
// FIN/RST leave the open-flow gauge too. Nil-safe.
func (m *trackerMetrics) noteFlowEvicted(wasClosed bool) {
	if m == nil {
		return
	}
	m.flowsEvicted.Inc()
	if !wasClosed {
		m.openFlows.Add(-1)
	}
}

// noteSegment books one fed segment and its reassembly outcome. Nil-safe.
func (m *trackerMetrics) noteSegment(retrans, buffered bool) {
	if m == nil {
		return
	}
	m.segments.Inc()
	if retrans {
		m.retransmits.Inc()
	}
	if buffered {
		m.outOfOrder.Inc()
	}
}
