package tcpflow

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"uncharted/internal/pcap"
)

var (
	hostA = netip.MustParseAddrPort("10.0.0.1:40000")
	hostB = netip.MustParseAddrPort("10.0.0.2:2404")
	t0    = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
)

// mkPacket builds a decoded packet without going through serialization.
func mkPacket(src, dst netip.AddrPort, at time.Time, flags uint8, seq, ack uint32, payload []byte) pcap.Packet {
	return pcap.Packet{
		Info: pcap.CaptureInfo{Timestamp: at},
		IP: pcap.IPv4{
			Src: src.Addr(), Dst: dst.Addr(), Protocol: pcap.IPProtoTCP,
			Payload: make([]byte, 20+len(payload)),
		},
		TCP: pcap.TCP{
			SrcPort: src.Port(), DstPort: dst.Port(),
			Seq: seq, Ack: ack, Flags: flags, Payload: payload,
		},
	}
}

func TestMakeKeySymmetric(t *testing.T) {
	if MakeKey(hostA, hostB) != MakeKey(hostB, hostA) {
		t.Fatal("key not direction-insensitive")
	}
}

func TestShortLivedFlow(t *testing.T) {
	tr := NewTracker(nil)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagSYN, 100, 0, nil))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(10*time.Millisecond), pcap.FlagSYN|pcap.FlagACK, 500, 101, nil))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(20*time.Millisecond), pcap.FlagACK, 101, 501, nil))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(300*time.Millisecond), pcap.FlagRST, 501, 0, nil))

	flows := tr.Flows()
	if len(flows) != 1 {
		t.Fatalf("%d flows", len(flows))
	}
	f := flows[0]
	if f.Class() != ShortLived {
		t.Fatalf("class %v", f.Class())
	}
	if f.Duration() != 300*time.Millisecond {
		t.Fatalf("duration %v", f.Duration())
	}
	if f.Initiator != hostA {
		t.Fatalf("initiator %v", f.Initiator)
	}
	s := tr.Summarize()
	if s.ShortLived != 1 || s.LongLived != 0 || s.ShortLivedSubSec != 1 {
		t.Fatalf("summary %+v", s)
	}
}

func TestLongLivedFlowNoSYN(t *testing.T) {
	// Flow already established before the capture: data only.
	tr := NewTracker(nil)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK|pcap.FlagPSH, 100, 1, []byte{1}))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(time.Second), pcap.FlagACK, 1, 101, nil))
	if got := tr.Flows()[0].Class(); got != LongLived {
		t.Fatalf("class %v", got)
	}
}

func TestLongLivedFlowNoClose(t *testing.T) {
	// SYN seen but the flow outlives the capture.
	tr := NewTracker(nil)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagSYN, 100, 0, nil))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(time.Millisecond), pcap.FlagSYN|pcap.FlagACK, 1, 101, nil))
	if got := tr.Flows()[0].Class(); got != LongLived {
		t.Fatalf("class %v", got)
	}
}

func TestSummaryOverOneSecond(t *testing.T) {
	tr := NewTracker(nil)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagSYN, 1, 0, nil))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(3*time.Second), pcap.FlagFIN|pcap.FlagACK, 2, 2, nil))
	s := tr.Summarize()
	if s.ShortLived != 1 || s.ShortLivedOverSec != 1 || s.ShortLivedSubSec != 0 {
		t.Fatalf("summary %+v", s)
	}
	if s.SubSecProportion() != 0 {
		t.Fatalf("subsec proportion %v", s.SubSecProportion())
	}
}

func TestDirectionStats(t *testing.T) {
	tr := NewTracker(nil)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK|pcap.FlagPSH, 10, 1, []byte{1, 2, 3}))
	tr.Feed(mkPacket(hostB, hostA, t0.Add(time.Millisecond), pcap.FlagACK|pcap.FlagPSH, 1, 13, []byte{9}))
	f := tr.Flows()[0]
	var fromA, fromB DirStats
	if f.Key.A == hostA {
		fromA, fromB = f.AtoB, f.BtoA
	} else {
		fromA, fromB = f.BtoA, f.AtoB
	}
	if fromA.PayloadBytes != 3 || fromB.PayloadBytes != 1 {
		t.Fatalf("payload accounting %+v %+v", fromA, fromB)
	}
	if f.Packets() != 2 {
		t.Fatalf("packets %d", f.Packets())
	}
}

type collectConsumer struct {
	chunks []StreamPayload
}

func (c *collectConsumer) OnPayload(p StreamPayload) { c.chunks = append(c.chunks, p) }

func TestReassemblyInOrder(t *testing.T) {
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 100, 1, []byte("hello ")))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 106, 1, []byte("world")))
	var got []byte
	for _, ch := range cc.chunks {
		got = append(got, ch.Data...)
	}
	if string(got) != "hello world" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 100, 1, []byte("abc")))
	// Segment 3 arrives before segment 2.
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 106, 1, []byte("ghi")))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(2*time.Millisecond), pcap.FlagACK, 103, 1, []byte("def")))
	var got []byte
	for _, ch := range cc.chunks {
		got = append(got, ch.Data...)
	}
	if string(got) != "abcdefghi" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestRetransmissionDetected(t *testing.T) {
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 100, 1, []byte("abc")))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 100, 1, []byte("abc")))
	f := tr.Flows()[0]
	if f.Retransmits() != 1 {
		t.Fatalf("retransmits %d", f.Retransmits())
	}
	// The duplicate chunk must be flagged and carry no new data.
	last := cc.chunks[len(cc.chunks)-1]
	if !last.Retransmit || len(last.Data) != 0 {
		t.Fatalf("retransmit chunk %+v", last)
	}
}

func TestPartialOverlapTrimmed(t *testing.T) {
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 100, 1, []byte("abcdef")))
	// Overlaps the tail and adds two bytes.
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 103, 1, []byte("defGH")))
	var got []byte
	for _, ch := range cc.chunks {
		got = append(got, ch.Data...)
	}
	if string(got) != "abcdefGH" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestSequenceWraparound(t *testing.T) {
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	seq := uint32(0xFFFFFFFE)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, seq, 1, []byte("ab")))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 0, 1, []byte("cd")))
	var got []byte
	for _, ch := range cc.chunks {
		got = append(got, ch.Data...)
	}
	if string(got) != "abcd" {
		t.Fatalf("reassembled %q across wrap", got)
	}
}

func TestSeparatePortsSeparateFlows(t *testing.T) {
	tr := NewTracker(nil)
	a2 := netip.MustParseAddrPort("10.0.0.1:40001")
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagSYN, 1, 0, nil))
	tr.Feed(mkPacket(a2, hostB, t0, pcap.FlagSYN, 1, 0, nil))
	if len(tr.Flows()) != 2 {
		t.Fatalf("%d flows, want 2", len(tr.Flows()))
	}
}

func TestSessions(t *testing.T) {
	ss := NewSessions()
	// Two flows, same host pair and direction → one session.
	a2 := netip.MustParseAddrPort("10.0.0.1:40001")
	ss.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 1, 1, []byte{1}))
	ss.Feed(mkPacket(a2, hostB, t0.Add(2*time.Second), pcap.FlagACK, 1, 1, []byte{2}))
	// Reverse direction → second session.
	ss.Feed(mkPacket(hostB, hostA, t0.Add(3*time.Second), pcap.FlagACK, 1, 1, []byte{3}))

	all := ss.All()
	if len(all) != 2 {
		t.Fatalf("%d sessions, want 2", len(all))
	}
	fwd := all[0]
	if fwd.Packets != 2 {
		t.Fatalf("forward packets %d", fwd.Packets)
	}
	if got := fwd.MeanInterArrival(); got != 2.0 {
		t.Fatalf("mean inter-arrival %v", got)
	}
	if all[1].MeanInterArrival() != 0 {
		t.Fatal("single-packet session must have zero inter-arrival")
	}
	sorted := ss.Sorted()
	if len(sorted) != 2 || sorted[0].Key.Src.Compare(sorted[1].Key.Src) > 0 {
		t.Fatal("sorted order broken")
	}
}

func TestReassemblyFeedsIEC104Frames(t *testing.T) {
	// An APDU split across two TCP segments must come out contiguous.
	apdu := []byte{0x68, 0x0E, 0x02, 0x00, 0x02, 0x00,
		13, 1, 3, 0, 1, 0, 100, 0, 0, 0x00, 0x00, 0x80, 0x3F, 0x00}
	cc := &collectConsumer{}
	tr := NewTracker(cc)
	tr.Feed(mkPacket(hostA, hostB, t0, pcap.FlagACK, 500, 1, apdu[:7]))
	tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Millisecond), pcap.FlagACK, 507, 1, apdu[7:]))
	var got []byte
	for _, ch := range cc.chunks {
		got = append(got, ch.Data...)
	}
	if !bytes.Equal(got, apdu) {
		t.Fatalf("reassembled % x", got)
	}
}

func TestIdleEviction(t *testing.T) {
	const n = 10000
	var evictCalls int
	tr := NewTracker(nil)
	tr.SetIdleTimeout(5 * time.Second)
	tr.OnEvict(func(f *Flow) { evictCalls++ })

	// 10k one-packet flows, one every 10ms: a 100s capture where almost
	// every flow goes idle long before the end.
	server := netip.MustParseAddrPort("10.0.0.2:2404")
	for i := 0; i < n; i++ {
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}), 40000)
		tr.Feed(mkPacket(src, server, t0.Add(time.Duration(i)*10*time.Millisecond), pcap.FlagACK|pcap.FlagPSH, 1, 1, []byte{1}))
	}

	live := len(tr.Flows())
	if live >= n/2 {
		t.Fatalf("eviction did not shrink the table: %d flows live", live)
	}
	if tr.EvictedFlows()+live != n {
		t.Fatalf("evicted %d + live %d != %d", tr.EvictedFlows(), live, n)
	}
	if evictCalls != tr.EvictedFlows() {
		t.Fatalf("OnEvict fired %d times, evicted %d", evictCalls, tr.EvictedFlows())
	}

	// Eviction must not lose taxonomy: the summary still covers all 10k.
	s := tr.Summarize()
	if s.Total() != n || s.LongLived != n {
		t.Fatalf("summary %+v, want %d long-lived", s, n)
	}

	first, last := tr.Window()
	if !first.Equal(t0) || !last.Equal(t0.Add((n-1)*10*time.Millisecond)) {
		t.Fatalf("window [%v, %v]", first, last)
	}

	// A final explicit sweep well past the capture drains everything.
	tr.EvictIdle(last.Add(time.Minute))
	if len(tr.Flows()) != 0 || tr.EvictedFlows() != n {
		t.Fatalf("after final sweep: %d live, %d evicted", len(tr.Flows()), tr.EvictedFlows())
	}
	if s := tr.Summarize(); s.Total() != n {
		t.Fatalf("summary after drain %+v", s)
	}
}

func TestIdleEvictionKeepsActiveFlow(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetIdleTimeout(5 * time.Second)
	// One long-running flow with steady traffic survives sweeps that
	// evict a quiet neighbour.
	quiet := netip.MustParseAddrPort("10.0.0.9:41000")
	tr.Feed(mkPacket(quiet, hostB, t0, pcap.FlagACK|pcap.FlagPSH, 1, 1, []byte{1}))
	for i := 0; i < 100; i++ {
		tr.Feed(mkPacket(hostA, hostB, t0.Add(time.Duration(i)*time.Second), pcap.FlagACK|pcap.FlagPSH, uint32(1+i), 1, []byte{1}))
	}
	if len(tr.Flows()) != 1 {
		t.Fatalf("%d flows live, want only the active one", len(tr.Flows()))
	}
	if tr.Flows()[0].Key != MakeKey(hostA, hostB) {
		t.Fatal("wrong flow survived")
	}
	if tr.EvictedFlows() != 1 {
		t.Fatalf("evicted %d, want 1", tr.EvictedFlows())
	}
}
